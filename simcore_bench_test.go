// BenchmarkSimCore is the simulator-core benchmark suite: the discrete-event
// engine (ns/event, allocs/event), the manager's placement path at fleet
// scale (ns/placement), and an end-to-end simulation cell (ns per trace
// event). scripts/bench_check.sh runs it against the committed BENCH_PR10.json
// baseline and fails CI on >25% regression, so core-speed wins cannot
// silently rot.
package deflation_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"deflation/internal/cascade"
	"deflation/internal/cluster"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/simclock"
	"deflation/internal/trace"
	"deflation/internal/vm"
)

// BenchmarkSimCoreEventQueue measures the event engine's steady-state
// schedule+fire cost under the classic hold model: a fixed population of
// pending events, each iteration pops the earliest and schedules a
// replacement a pseudo-random distance in the future.
func BenchmarkSimCoreEventQueue(b *testing.B) {
	clock := simclock.New()
	nop := func(time.Duration) {}
	const hold = 4096
	for i := 0; i < hold; i++ {
		clock.At(time.Duration(i)*time.Millisecond, nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.Step()
		// Pseudo-random gap in [0.5ms, 2.5ms): enough spread to exercise
		// bucket traversal without degenerating to one bucket.
		gap := time.Duration(500+(i*2654435761)%2000) * time.Microsecond
		clock.At(clock.Now()+gap, nop)
	}
}

// BenchmarkSimCoreEventQueueCancel measures schedule+cancel churn: every
// event is canceled before it can fire, and the queue is periodically
// drained past the tombstones.
func BenchmarkSimCoreEventQueueCancel(b *testing.B) {
	clock := simclock.New()
	nop := func(time.Duration) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := clock.At(clock.Now()+time.Duration(1+i%64)*time.Microsecond, nop)
		e.Cancel()
		if i%64 == 63 {
			clock.Advance(time.Millisecond)
		}
	}
}

// BenchmarkSimCorePlacement measures the manager's launch path on a
// 1000-node deflation-mode fleet at steady state: each iteration places one
// low-priority VM, recycling the oldest placements when the fleet
// saturates. This is the path the placement index takes from O(nodes)
// vector recomputation to an indexed descent.
func BenchmarkSimCorePlacement(b *testing.B) {
	const nodes = 1000
	servers := make([]cluster.Node, nodes)
	for j := range servers {
		h, err := hypervisor.NewHost(hypervisor.Config{
			Name: fmt.Sprintf("s%03d", j), Capacity: restypes.V(32, 131072, 4000, 4000),
		})
		if err != nil {
			b.Fatal(err)
		}
		servers[j] = cluster.NewLocalController(h, cascade.AllLevels(), cluster.ModeDeflation)
	}
	mgr, err := cluster.NewManager(servers, cluster.BestFit, 7)
	if err != nil {
		b.Fatal(err)
	}
	size := restypes.V(2, 4096, 50, 50)
	var live []string
	launch := func(i int) error {
		name := fmt.Sprintf("vm-%d", i)
		_, _, err := mgr.Launch(cluster.LaunchSpec{
			Name: name, Size: size, MinSize: size.Scale(0.25),
			Priority: vm.LowPriority, AppKind: "elastic",
		})
		if err == nil {
			live = append(live, name)
		}
		return err
	}
	// Pre-fill to ~half capacity so every placement scans a loaded fleet.
	for i := 0; i < nodes*8; i++ {
		if err := launch(-i - 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := launch(i); err != nil {
			b.StopTimer()
			// Saturated: recycle the oldest placements.
			for k := 0; k < 64 && len(live) > 0; k++ {
				_ = mgr.Release(live[0])
				live = live[1:]
			}
			b.StartTimer()
			if err := launch(i); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSimCoreSimulation is the end-to-end cell: a 300-node, 10k-event
// trace-driven simulation. It reports ns/event and allocs/event over the
// whole run — the numbers the 8c-xl scaling figure extrapolates from.
func BenchmarkSimCoreSimulation(b *testing.B) {
	cfg := cluster.SimConfig{
		Servers:          300,
		Policy:           cluster.BestFit,
		Mode:             cluster.ModeDeflation,
		TargetOvercommit: 1.5,
		Trace:            trace.Config{Count: 10000, Seed: 11},
		Seed:             11,
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.RunSim(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	events := float64(b.N) * float64(cfg.Trace.Count)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/events, "ns/event")
	b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/events, "allocs/event")
}
