#!/usr/bin/env bash
# Kill-and-recover smoke test for the durable manager.
#
# Starts two deflagent controllers and a deflated manager with -state-dir,
# launches VMs, SIGKILLs the manager mid-flight, restarts it on the same
# state directory, and asserts via `deflctl state -json` that every
# placement survived with zero reconciliation repairs (the agents — and
# their VMs — outlive the manager, so recovery should find the cluster
# exactly as the journal describes it).
#
# Requires: go, jq, curl. Exits nonzero on any divergence.
set -euo pipefail

WORK=$(mktemp -d)
BIN="$WORK/bin"
STATE="$WORK/state"
mkdir -p "$BIN" "$STATE"

AGENT1=127.0.0.1:17071
AGENT2=127.0.0.1:17072
MGR=127.0.0.1:17070

PIDS=()
cleanup() {
    for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

wait_http() { # url attempts
    local url=$1 tries=${2:-50}
    for _ in $(seq "$tries"); do
        if curl -fsS -o /dev/null "$url" 2>/dev/null; then return 0; fi
        sleep 0.2
    done
    echo "smoke: $url never came up" >&2
    return 1
}

echo "smoke: building binaries"
go build -o "$BIN" ./cmd/deflagent ./cmd/deflated ./cmd/deflctl

echo "smoke: starting agents"
"$BIN/deflagent" -listen "$AGENT1" -name agent-0 >"$WORK/agent-0.log" 2>&1 &
PIDS+=($!)
"$BIN/deflagent" -listen "$AGENT2" -name agent-1 >"$WORK/agent-1.log" 2>&1 &
PIDS+=($!)
wait_http "http://$AGENT1/v1/state"
wait_http "http://$AGENT2/v1/state"

start_manager() {
    # -sync-every 1: every record durable before the API call returns, so
    # a SIGKILL at any point loses nothing.
    "$BIN/deflated" -listen "$MGR" -state-dir "$STATE" -sync-every 1 \
        -controller "http://$AGENT1" -controller "http://$AGENT2" \
        >>"$WORK/deflated.log" 2>&1 &
    MGR_PID=$!
    PIDS+=($MGR_PID)
    wait_http "http://$MGR/v1/state"
}

echo "smoke: starting manager with -state-dir $STATE"
start_manager

echo "smoke: launching VMs"
"$BIN/deflctl" -manager "http://$MGR" launch -name web-0 -cpus 4 -mem-gb 8 -priority high
"$BIN/deflctl" -manager "http://$MGR" launch -name batch-0 -cpus 8 -mem-gb 16 -min-frac 0.25
"$BIN/deflctl" -manager "http://$MGR" launch -name batch-1 -cpus 8 -mem-gb 16 -min-frac 0.25
"$BIN/deflctl" -manager "http://$MGR" release -name batch-1
"$BIN/deflctl" -manager "http://$MGR" launch -name batch-2 -cpus 2 -mem-gb 4 -min-frac 0.5

BEFORE=$("$BIN/deflctl" -manager "http://$MGR" state -json | jq -S .placements)
echo "smoke: placements before kill: $BEFORE"
[ "$(echo "$BEFORE" | jq length)" -eq 3 ] || {
    echo "smoke: expected 3 placements before kill" >&2
    exit 1
}

echo "smoke: SIGKILL manager (pid $MGR_PID)"
kill -9 "$MGR_PID"
wait "$MGR_PID" 2>/dev/null || true

echo "smoke: restarting manager on the same state dir"
start_manager

STATE_JSON=$("$BIN/deflctl" -manager "http://$MGR" state -json)
AFTER=$(echo "$STATE_JSON" | jq -S .placements)
echo "smoke: placements after recovery: $AFTER"

if [ "$BEFORE" != "$AFTER" ]; then
    echo "smoke: FAIL: placements diverged across kill/recover" >&2
    exit 1
fi

REPAIRS=$(echo "$STATE_JSON" | jq '.recovery.adopted + .recovery.replaced
    + .recovery.lost + .recovery.reasserted + .recovery.stale_released')
if [ "$REPAIRS" != "0" ]; then
    echo "smoke: FAIL: recovery needed $REPAIRS repairs; journal was not faithful" >&2
    echo "$STATE_JSON" | jq .recovery >&2
    exit 1
fi

REPLAYED=$(echo "$STATE_JSON" | jq '.recovery.records_replayed + .recovery.snapshot_seq')
if [ "$REPLAYED" = "0" ]; then
    echo "smoke: FAIL: recovery saw no journal state at all" >&2
    exit 1
fi

echo "smoke: PASS: ${AFTER} survived SIGKILL with zero repairs"
