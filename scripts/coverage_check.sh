#!/usr/bin/env bash
# coverage_check.sh — run the test suite with a coverage profile, print the
# total, and fail if the sweep engine (internal/sweep) or the container
# substrate (internal/simcg) is under its floor.
#
# Usage: scripts/coverage_check.sh [profile-path]
#
# The sweep engine is the concurrency-critical core every figure sweep runs
# through; its unit tests must keep covering panic capture, cancellation,
# memoization, and the merge ordering, so its floor is enforced at 85%.
# The simcg substrate models the failure semantics the mixed-fleet figure
# rests on (resize floors, OOM kills, the shared page-cache pool), so it
# carries the same floor. The simclock calendar queue is the event engine
# every simulated second flows through; its differential/property/fuzz
# tests (diff_test.go) must keep exercising bucket resize, tombstone
# clearing, and the cancel paths, so it carries the same floor.
set -euo pipefail
cd "$(dirname "$0")/.."

profile="${1:-coverage.out}"
floor_pct=85.0

go test -short -count=1 -coverprofile="$profile" ./...

total=$(go tool cover -func="$profile" | awk '/^total:/ {print $NF}')
echo "total coverage: ${total}"

# Statement-weighted coverage for the sweep package alone: filter the
# profile down to its files and total that.
sweep_profile="${profile}.sweep"
{ head -1 "$profile"; grep "internal/sweep/" "$profile" || true; } > "$sweep_profile"
sweep_pct=$(go tool cover -func="$sweep_profile" | awk '/^total:/ { sub(/%$/, "", $NF); print $NF }')
echo "internal/sweep coverage: ${sweep_pct}% (floor ${floor_pct}%)"

awk -v got="$sweep_pct" -v floor="$floor_pct" 'BEGIN { exit !(got+0 >= floor+0) }' || {
  echo "FAIL: internal/sweep coverage ${sweep_pct}% is below the ${floor_pct}% floor" >&2
  exit 1
}

simcg_profile="${profile}.simcg"
{ head -1 "$profile"; grep "internal/simcg/" "$profile" || true; } > "$simcg_profile"
simcg_pct=$(go tool cover -func="$simcg_profile" | awk '/^total:/ { sub(/%$/, "", $NF); print $NF }')
echo "internal/simcg coverage: ${simcg_pct}% (floor ${floor_pct}%)"

awk -v got="$simcg_pct" -v floor="$floor_pct" 'BEGIN { exit !(got+0 >= floor+0) }' || {
  echo "FAIL: internal/simcg coverage ${simcg_pct}% is below the ${floor_pct}% floor" >&2
  exit 1
}

simclock_profile="${profile}.simclock"
{ head -1 "$profile"; grep "internal/simclock/" "$profile" || true; } > "$simclock_profile"
simclock_pct=$(go tool cover -func="$simclock_profile" | awk '/^total:/ { sub(/%$/, "", $NF); print $NF }')
echo "internal/simclock coverage: ${simclock_pct}% (floor ${floor_pct}%)"

awk -v got="$simclock_pct" -v floor="$floor_pct" 'BEGIN { exit !(got+0 >= floor+0) }' || {
  echo "FAIL: internal/simclock coverage ${simclock_pct}% is below the ${floor_pct}% floor" >&2
  exit 1
}
