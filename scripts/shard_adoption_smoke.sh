#!/usr/bin/env bash
# Shard-adoption smoke test: boot a real 3-shard federated control plane
# (three deflated processes sharing a state root), drive open-loop traffic
# with deflload, SIGKILL one shard leader mid-run, have a peer adopt the
# dead shard's journal via deflctl, and assert:
#
#   * the adoption is recorded in the gossiped shard map,
#   * zero acked registrations or launches were lost,
#   * zero failure-induced preemptions (no healthy-VM evictions),
#   * deflload's whole-run invariant sweep passes (exit 0).
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d /tmp/shard-smoke-XXXXXX)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building daemons"
go build -o "$WORK" ./cmd/deflated ./cmd/deflctl ./cmd/deflload

P0=7180 P1=7181 P2=7182
U0="http://127.0.0.1:$P0" U1="http://127.0.0.1:$P1" U2="http://127.0.0.1:$P2"

echo "== booting 3 federated shards under $WORK/state"
start_shard() { # id listen peers...
    local id=$1 port=$2; shift 2
    "$WORK/deflated" -shard-id "$id" -listen "127.0.0.1:$port" \
        -state-root "$WORK/state" -gossip 500ms "$@" \
        >"$WORK/$id.log" 2>&1 &
    PIDS+=($!)
}
start_shard shard-0 $P0 -peer "shard-1=$U1" -peer "shard-2=$U2"
start_shard shard-1 $P1 -peer "shard-0=$U0" -peer "shard-2=$U2"
start_shard shard-2 $P2 -peer "shard-0=$U0" -peer "shard-1=$U1"

for u in $U0 $U1 $U2; do
    for i in $(seq 1 50); do
        curl -fsS "$u/v1/shardmap" >/dev/null 2>&1 && break
        [ "$i" = 50 ] && { echo "FAIL: $u never served a shard map"; exit 1; }
        sleep 0.2
    done
done
"$WORK/deflctl" -manager "$U0" shardmap

echo "== starting deflload traffic (24 agents, open loop)"
"$WORK/deflload" -manager "$U0" -manager "$U1" -manager "$U2" \
    -agents 24 -rps 60 -ticks 60 -tick 100ms -heartbeat 300ms \
    -json "$WORK/report.json" >"$WORK/deflload.log" 2>&1 &
LOAD_PID=$!
PIDS+=($LOAD_PID)

sleep 2
# PIDS[1] is shard-1: shards were started in order before deflload.
echo "== SIGKILL shard-1 (pid ${PIDS[1]}) under traffic"
kill -9 "${PIDS[1]}"
sleep 1

echo "== adopting shard-1 into shard-0"
"$WORK/deflctl" -manager "$U0" adopt -shard shard-1

MAP=$("$WORK/deflctl" -manager "$U0" shardmap)
echo "$MAP"
echo "$MAP" | grep -q "dead; served by shard-0" \
    || { echo "FAIL: adoption not recorded in the shard map"; exit 1; }

echo "== waiting for deflload to finish"
if ! wait "$LOAD_PID"; then
    echo "FAIL: deflload reported an invariant violation or error"
    tail -20 "$WORK/deflload.log"
    exit 1
fi
tail -4 "$WORK/deflload.log"

grep -q '"invariants_ok": true' "$WORK/report.json" \
    || { echo "FAIL: report has invariants_ok=false"; cat "$WORK/report.json"; exit 1; }
grep -q '"lost_registrations"' "$WORK/report.json" \
    && { echo "FAIL: lost acked registrations"; cat "$WORK/report.json"; exit 1; }
grep -q '"lost_vm_names"' "$WORK/report.json" \
    && { echo "FAIL: lost acked launches"; cat "$WORK/report.json"; exit 1; }
grep -q '"failure_preemptions": 0' "$WORK/report.json" \
    || { echo "FAIL: healthy VMs were preempted"; cat "$WORK/report.json"; exit 1; }

echo "PASS: adoption recorded, zero lost registrations/launches, zero preemptions"
