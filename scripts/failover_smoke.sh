#!/usr/bin/env bash
# Leader-failover smoke test for manager high availability.
#
# Starts two deflagent controllers, a durable deflated leader, and a hot
# standby tailing the leader's WAL over HTTP. Launches VMs, waits for the
# replica to catch up, SIGKILLs the leader, and asserts within a bounded
# window via `deflctl state -json` against the standby that it promoted
# itself: role flipped to leader, the fencing epoch moved past the dead
# leader's term, every placement survived with zero reconciliation repairs
# (the agents — and their VMs — outlive the leader), and the new leader
# actually commands the fleet (a fresh launch lands).
#
# Requires: go, jq, curl. Exits nonzero on any divergence.
set -euo pipefail

WORK=$(mktemp -d)
BIN="$WORK/bin"
mkdir -p "$BIN" "$WORK/leader-state" "$WORK/standby-state"

AGENT1=127.0.0.1:17081
AGENT2=127.0.0.1:17082
LEADER=127.0.0.1:17080
STANDBY=127.0.0.1:17085

PIDS=()
cleanup() {
    for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

wait_http() { # url attempts
    local url=$1 tries=${2:-50}
    for _ in $(seq "$tries"); do
        if curl -fsS -o /dev/null "$url" 2>/dev/null; then return 0; fi
        sleep 0.2
    done
    echo "smoke: $url never came up" >&2
    return 1
}

echo "smoke: building binaries"
go build -o "$BIN" ./cmd/deflagent ./cmd/deflated ./cmd/deflctl

echo "smoke: starting agents"
"$BIN/deflagent" -listen "$AGENT1" -name agent-0 >"$WORK/agent-0.log" 2>&1 &
PIDS+=($!)
"$BIN/deflagent" -listen "$AGENT2" -name agent-1 >"$WORK/agent-1.log" 2>&1 &
PIDS+=($!)
wait_http "http://$AGENT1/v1/state"
wait_http "http://$AGENT2/v1/state"

echo "smoke: starting durable leader"
# -sync-every 1: every record durable (and replicable) before the API call
# returns, so the replica a SIGKILL promotes from is complete.
# -heartbeat 1s: the leader asserts its epoch on the agents every second,
# which is what the standby's corroboration probe measures the age of.
"$BIN/deflated" -listen "$LEADER" -state-dir "$WORK/leader-state" -sync-every 1 \
    -heartbeat 1s \
    -controller "http://$AGENT1" -controller "http://$AGENT2" \
    >"$WORK/leader.log" 2>&1 &
LEADER_PID=$!
PIDS+=($LEADER_PID)
wait_http "http://$LEADER/v1/state"

echo "smoke: starting hot standby tailing the leader"
# -corroborate-window 3s (three leader heartbeats): before promoting, the
# standby asks the agents how recently the leader's epoch was asserted; a
# genuinely dead leader stops asserting, so promotion clears ~3s after the
# SIGKILL, while an asymmetrically-partitioned live one keeps it held.
"$BIN/deflated" -listen "$STANDBY" -state-dir "$WORK/standby-state" -sync-every 1 \
    -standby-of "http://$LEADER" -poll-interval 100ms -dead-after 5 \
    -corroborate-window 3s \
    -controller "http://$AGENT1" -controller "http://$AGENT2" \
    >"$WORK/standby.log" 2>&1 &
PIDS+=($!)
wait_http "http://$STANDBY/v1/state"

echo "smoke: launching VMs through the leader"
"$BIN/deflctl" -manager "http://$LEADER" launch -name web-0 -cpus 4 -mem-gb 8 -priority high
"$BIN/deflctl" -manager "http://$LEADER" launch -name batch-0 -cpus 8 -mem-gb 16 -min-frac 0.25
"$BIN/deflctl" -manager "http://$LEADER" launch -name batch-1 -cpus 8 -mem-gb 16 -min-frac 0.25
"$BIN/deflctl" -manager "http://$LEADER" release -name batch-1
"$BIN/deflctl" -manager "http://$LEADER" launch -name batch-2 -cpus 2 -mem-gb 4 -min-frac 0.5

LEADER_JSON=$("$BIN/deflctl" -manager "http://$LEADER" state -json)
BEFORE=$(echo "$LEADER_JSON" | jq -S .placements)
OLD_EPOCH=$(echo "$LEADER_JSON" | jq .epoch)
echo "smoke: leader at epoch $OLD_EPOCH, placements: $BEFORE"
[ "$(echo "$BEFORE" | jq length)" -eq 3 ] || {
    echo "smoke: expected 3 placements on the leader" >&2
    exit 1
}
[ "$OLD_EPOCH" -ge 1 ] || {
    echo "smoke: durable leader did not assume a fenced epoch" >&2
    exit 1
}

echo "smoke: waiting for the replica to catch up"
for i in $(seq 50); do
    SBY=$(curl -fsS "http://$STANDBY/v1/state")
    if [ "$(echo "$SBY" | jq -S .placements)" = "$BEFORE" ] &&
       [ "$(echo "$SBY" | jq .replication.lag)" = "0" ]; then break; fi
    [ "$i" -eq 50 ] && { echo "smoke: replica never caught up: $SBY" >&2; exit 1; }
    sleep 0.2
done
[ "$(echo "$SBY" | jq -r .role)" = "standby" ] || {
    echo "smoke: standby serving wrong role: $SBY" >&2
    exit 1
}
echo "smoke: replica caught up at seq $(echo "$SBY" | jq .replication.applied_seq)"

echo "smoke: SIGKILL leader (pid $LEADER_PID)"
kill -9 "$LEADER_PID"
wait "$LEADER_PID" 2>/dev/null || true

# Lease = 5 missed polls at 100ms; give the takeover a 15s ceiling to
# expire the lease, reconcile against both agents, and swap handlers.
echo "smoke: waiting for the standby to promote itself"
for i in $(seq 75); do
    STATE_JSON=$(curl -fsS "http://$STANDBY/v1/state" || echo '{}')
    if [ "$(echo "$STATE_JSON" | jq -r .role)" = "leader" ]; then break; fi
    [ "$i" -eq 75 ] && { echo "smoke: standby never promoted: $STATE_JSON" >&2; exit 1; }
    sleep 0.2
done

AFTER=$(echo "$STATE_JSON" | jq -S .placements)
NEW_EPOCH=$(echo "$STATE_JSON" | jq .epoch)
echo "smoke: promoted at epoch $NEW_EPOCH, placements: $AFTER"

if [ "$BEFORE" != "$AFTER" ]; then
    echo "smoke: FAIL: placements diverged across failover" >&2
    exit 1
fi
if [ "$NEW_EPOCH" -le "$OLD_EPOCH" ]; then
    echo "smoke: FAIL: promotion did not fence the old term ($NEW_EPOCH <= $OLD_EPOCH)" >&2
    exit 1
fi
REPAIRS=$(echo "$STATE_JSON" | jq '.recovery.adopted + .recovery.replaced
    + .recovery.lost + .recovery.reasserted + .recovery.stale_released')
if [ "$REPAIRS" != "0" ]; then
    echo "smoke: FAIL: takeover needed $REPAIRS repairs; replica was not faithful" >&2
    echo "$STATE_JSON" | jq .recovery >&2
    exit 1
fi

echo "smoke: new leader commands the fleet"
"$BIN/deflctl" -manager "http://$STANDBY" launch -name post-failover-0 -cpus 2 -mem-gb 4 -min-frac 0.5
FINAL=$("$BIN/deflctl" -manager "http://$STANDBY" state -json | jq -S .placements)
[ "$(echo "$FINAL" | jq length)" -eq 4 ] || {
    echo "smoke: FAIL: post-failover launch did not land: $FINAL" >&2
    exit 1
}

echo "smoke: PASS: standby took over at epoch $NEW_EPOCH with zero repairs, ${AFTER} intact"
