#!/usr/bin/env bash
# bench_check.sh — run the BenchmarkSimCore suite and fail on >25%
# regression against the committed BENCH_PR10.json baseline.
#
# Usage: scripts/bench_check.sh [baseline-json]
#
# The suite tracks the simulator core rebuilt in PR 10: the calendar-queue
# event engine (ns/op, allocs/op under the hold model and under
# schedule/cancel churn), the indexed placement path on a 1000-node fleet
# (ns/op), and the end-to-end simulation cell (ns/event, allocs/event).
# Each measured metric must stay within BENCH_MAX_REGRESS (default 1.25,
# i.e. +25%) of its baseline; alloc metrics get +0.5 absolute slack so
# zero-alloc floors remain enforceable. allocs/op and allocs/event are
# hardware-independent and catch rot anywhere; the ns gates assume hardware
# comparable to the recorded host — on slower machines raise
# BENCH_MAX_REGRESS rather than loosening the committed baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:-BENCH_PR10.json}"
max_regress="${BENCH_MAX_REGRESS:-1.25}"
bench_time="${BENCH_TIME:-2s}"

out=$(go test -run '^$' -bench 'BenchmarkSimCore' -benchtime "$bench_time" -count=1 .)
echo "$out"
echo

echo "$out" | awk -v baseline="$baseline" -v max="$max_regress" '
  /^BenchmarkSimCore/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    for (i = 3; i <= NF; i++) {
      if ($i == "ns/op")        got[name ".ns_per_op"] = $(i-1)
      if ($i == "allocs/op")    got[name ".allocs_per_op"] = $(i-1)
      if ($i == "ns/event")     got[name ".ns_per_event"] = $(i-1)
      if ($i == "allocs/event") got[name ".allocs_per_event"] = $(i-1)
    }
  }
  END {
    # Pull the flat "Benchmark...metric": value pairs out of the baseline
    # section of the committed JSON (pre_refactor is informational only).
    inbase = 0
    while ((getline line < baseline) > 0) {
      if (line ~ /"baseline"/) { inbase = 1; continue }
      if (!inbase) continue
      if (line ~ /}/) break
      gsub(/[",]/, "", line)
      n = split(line, kv, ":")
      if (n < 2) continue
      key = kv[1]; gsub(/^[ \t]+|[ \t]+$/, "", key)
      if (key !~ /\./) continue
      base[key] = kv[2] + 0
    }
    if (length(base) == 0) { printf "bench_check: no baseline metrics read from %s\n", baseline; exit 1 }
    fail = 0
    for (k in base) {
      if (!(k in got)) { printf "%-52s MISSING from benchmark output\n", k; fail = 1; continue }
      limit = base[k] * max
      if (k ~ /allocs/) limit += 0.5
      ok = (got[k] + 0 <= limit)
      printf "%-52s base %11.1f  got %11.1f  limit %11.1f  %s\n", k, base[k], got[k], limit, ok ? "ok" : "REGRESSION"
      if (!ok) fail = 1
    }
    exit fail
  }'
