// Spark under deflation: run the ALS and K-means jobs on the mini-Spark
// engine, hit them with 50% resource pressure halfway through, and watch
// the §4.1 policy pick the cheaper mechanism per workload (VM-level for the
// shuffle-heavy ALS, self-deflation for the map-heavy K-means).
package main

import (
	"fmt"
	"log"

	"deflation/internal/spark"
	"deflation/internal/spark/workloads"
)

func main() {
	run("ALS (shuffle-heavy)", workloads.ALS)
	fmt.Println()
	run("K-means (map-heavy, cached input)", workloads.KMeans)
	fmt.Println()
	training()
}

func run(title string, build func(workloads.Params) (*spark.BatchJob, error)) {
	p := workloads.Params{}
	fmt.Printf("=== %s on %d workers ===\n", title, 8)

	baselineCluster, err := p.Cluster()
	if err != nil {
		log.Fatal(err)
	}
	job, err := build(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DAG: %d stages, shuffle volume %.1f GB, r-heuristic %.3f\n",
		len(job.Stages()), job.ShuffleBytesMB()/1024, job.ShuffleTimeFraction(0))

	base, err := spark.RunBatchScenario(baselineCluster, job, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %.0fs (%d tasks)\n", base.DurationSecs, base.TasksRun)

	deflation := []float64{0.55, 0.45, 0.55, 0.45, 0.55, 0.45, 0.55, 0.45}
	for _, mech := range []spark.PressureMechanism{
		spark.PressurePolicy, spark.PressureSelf, spark.PressureVMLevel, spark.PressurePreempt,
	} {
		cl, err := p.Cluster()
		if err != nil {
			log.Fatal(err)
		}
		job, err := build(p)
		if err != nil {
			log.Fatal(err)
		}
		res, err := spark.RunBatchScenario(cl, job, &spark.PressureSpec{
			AtProgress: 0.5, Deflation: deflation,
			Mechanism: mech, Estimator: spark.EstimatorHeuristic,
		})
		if err != nil {
			log.Fatal(err)
		}
		line := fmt.Sprintf("%-11s: %.2fx baseline (recompute %.0fs)",
			mech, res.DurationSecs/base.DurationSecs, res.RecomputeSecs)
		if mech == spark.PressurePolicy {
			line += fmt.Sprintf("  [policy chose %s: T_vm=%.2f T_self=%.2f r=%.2f]",
				res.Chosen, res.Decision.TVM, res.Decision.TSelf, res.Decision.R)
		}
		fmt.Println(line)
	}
}

func training() {
	fmt.Println("=== CNN training (synchronous, inelastic) ===")
	base, err := spark.NewTrainingRun(workloads.CNN(false))
	if err != nil {
		log.Fatal(err)
	}
	baseSecs, err := base.Run(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %.0fs for 80 iterations (%.0f records/s)\n", baseSecs, base.Throughput())

	deflation := make([]float64, 8)
	for i := range deflation {
		deflation[i] = 0.5
	}
	elapsed, chosen, err := spark.RunTrainingScenario(workloads.CNN(false), &spark.PressureSpec{
		AtProgress: 0.5, Deflation: deflation, Mechanism: spark.PressurePolicy,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("50%% deflation mid-job via %s: %.2fx baseline — the job never stops\n",
		chosen, elapsed/baseSecs)

	preempt, _, err := spark.RunTrainingScenario(workloads.CNN(true), &spark.PressureSpec{
		AtProgress: 0.5, Deflation: deflation, Mechanism: spark.PressurePreempt,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the preemption alternative (checkpoint + restart): %.2fx baseline\n",
		preempt/baseSecs)
}
