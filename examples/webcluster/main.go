// Web cluster under deflation: three web-server VMs behind a
// deflation-aware load balancer (the paper's footnote 2). A high-priority
// VM arrives on the shared host; the local controller deflates the web
// servers proportionally, their agents shrink their thread pools, and the
// balancer shifts traffic toward the healthier servers — the cluster keeps
// serving with bounded latency instead of losing a VM.
package main

import (
	"fmt"
	"log"

	"deflation/internal/apps/webapp"
	"deflation/internal/cascade"
	"deflation/internal/cluster"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/vm"
)

func main() {
	host, err := hypervisor.NewHost(hypervisor.Config{
		Name:     "edge-0",
		Capacity: restypes.V(16, 65536, 1600, 5000),
	})
	if err != nil {
		log.Fatal(err)
	}
	ctrl := cluster.NewLocalController(host, cascade.AllLevels(), cluster.ModeDeflation)

	size := restypes.V(4, 16384, 400, 1250)
	var apps []*webapp.App
	var vms []*vm.VM
	for i := 0; i < 3; i++ {
		app, err := webapp.NewApp(webapp.Config{Cores: size.CPU, DeflationAware: true})
		if err != nil {
			log.Fatal(err)
		}
		apps = append(apps, app)
		v, _, err := ctrl.LaunchVM(cluster.LaunchSpec{
			Name: fmt.Sprintf("web-%d", i), Size: size,
			MinSize: size.Scale(0.25), Priority: vm.LowPriority, Warm: true,
			NewApp: func(restypes.Vector) vm.Application { return app },
		})
		if err != nil {
			log.Fatal(err)
		}
		vms = append(vms, v)
	}
	lb, err := webapp.NewLoadBalancer(apps)
	if err != nil {
		log.Fatal(err)
	}

	envs := func() []hypervisor.Env {
		out := make([]hypervisor.Env, len(vms))
		for i, v := range vms {
			out[i] = v.Env()
		}
		return out
	}

	const offered = 3600.0 // RPS against 3×1600 capacity
	report := func(when string) {
		res, err := lb.Serve(envs(), offered)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s served %5.0f/%4.0f RPS, mean latency %5.1f ms, per-server %v threads %v\n",
			when, res.ServedRPS, offered, res.MeanLatencyMS,
			rounded(res.PerServerRPS), threads(apps))
	}

	report("steady state:")

	// A high-priority database VM arrives: 8 cores against 4 free.
	fmt.Println("\nhigh-priority arrival (8 cores, 32 GB) — deflating the web tier ...")
	_, rep, err := ctrl.LaunchVM(cluster.LaunchSpec{
		Name: "prod-db", Size: restypes.V(8, 32768, 400, 1250),
		Priority: vm.HighPriority, AppKind: "inelastic",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deflated %v, preempted %v, reclaim latency %v\n\n",
		rep.Deflated, rep.Preempted, rep.ReclaimLatency)

	report("under deflation:")

	fmt.Println("\nhigh-priority departure — reinflating ...")
	if err := ctrl.Release("prod-db"); err != nil {
		log.Fatal(err)
	}
	report("after reinflation:")
}

func rounded(xs []float64) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x + 0.5)
	}
	return out
}

func threads(apps []*webapp.App) []int {
	out := make([]int, len(apps))
	for i, a := range apps {
		out[i] = a.Threads()
	}
	return out
}
