// Quickstart: boot one deflatable VM running a deflation-aware memcached,
// reclaim half of its resources through cascade deflation, watch the three
// levels cooperate, and give the resources back.
package main

import (
	"fmt"
	"log"

	"deflation/internal/apps/memcache"
	"deflation/internal/cascade"
	"deflation/internal/guestos"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/vm"
)

func main() {
	// A physical host running the simulated KVM-like hypervisor.
	host, err := hypervisor.NewHost(hypervisor.Config{
		Name:     "host-0",
		Capacity: restypes.V(16, 65536, 1600, 5000),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Boot a 4-vCPU / 16 GB VM.
	size := restypes.V(4, 16384, 400, 1250)
	dom, err := host.CreateDomain("demo-vm", size, guestos.Config{})
	if err != nil {
		log.Fatal(err)
	}
	dom.MarkWarm() // long-running: all memory host-resident

	// Run a deflation-aware memcached in it: its agent resizes the cache
	// (LRU eviction) when memory is reclaimed.
	app, err := memcache.NewApp(memcache.AppConfig{
		CacheMB: 8000, DatasetMB: 9000, DeflationAware: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	v, err := vm.New(dom, app, vm.Config{Priority: vm.LowPriority})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("booted %s: allocation %v\n", v.Name(), v.Allocation())
	fmt.Printf("  throughput %.2f, cache %.0f MB, hit rate %.3f\n\n",
		v.Throughput(), app.CacheMB(), app.HitRate())

	// Resource pressure arrives: reclaim half of everything.
	ctrl := cascade.New(cascade.AllLevels())
	target := size.Scale(0.5)
	fmt.Printf("deflating by %v ...\n", target)
	rep, err := ctrl.Deflate(v, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  level 1 (application): relinquished %v in %v\n", rep.App.Reclaimed, rep.App.Latency)
	fmt.Printf("  level 2 (guest OS):    hot-unplugged %v in %v\n", rep.OS.Reclaimed, rep.OS.Latency)
	fmt.Printf("  level 3 (hypervisor):  overcommitted %v in %v\n", rep.Hyp.Reclaimed, rep.Hyp.Latency)
	fmt.Printf("  new allocation %v (total latency %v)\n", rep.NewAllocation, rep.TotalLatency)

	env := v.Env()
	fmt.Printf("  guest now sees %d vCPUs / %.0f MB; swapped %.0f MB\n",
		env.VCPUs, env.GuestMemMB, env.SwappedMB)
	fmt.Printf("  throughput %.2f, cache %.0f MB, hit rate %.3f\n\n",
		v.Throughput(), app.CacheMB(), app.HitRate())

	// Pressure passes: reinflate.
	fmt.Println("reinflating ...")
	if _, err := ctrl.Reinflate(v, target); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  allocation restored to %v\n", v.Allocation())
	fmt.Printf("  throughput %.2f, cache %.0f MB, hit rate %.3f\n",
		v.Throughput(), app.CacheMB(), app.HitRate())
}
