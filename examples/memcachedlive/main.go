// Live control plane: run a deflation-aware memcached behind a real HTTP
// deflation agent (§5's REST protocol), attach it to a VM through the
// RemoteApp proxy, and cascade-deflate over the wire. This is the deployment
// shape of the paper's prototype: the local deflation controller talks to
// the application's agent endpoint, not to the process directly.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"deflation/internal/agent"
	"deflation/internal/apps/memcache"
	"deflation/internal/cascade"
	"deflation/internal/guestos"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/vm"
)

func main() {
	// The application with its agent, served over real HTTP (loopback).
	app, err := memcache.NewApp(memcache.AppConfig{
		CacheMB: 8000, DatasetMB: 9000, DeflationAware: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := agent.NewServer(app)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, srv.Handler()); err != nil {
			log.Printf("agent server stopped: %v", err)
		}
	}()
	url := "http://" + ln.Addr().String()
	fmt.Printf("deflation agent listening on %s\n", url)

	// The VM side: the controller only knows the agent's URL.
	remote, err := agent.NewRemoteApp(url)
	if err != nil {
		log.Fatal(err)
	}
	host, err := hypervisor.NewHost(hypervisor.Config{
		Name: "host-0", Capacity: restypes.V(16, 65536, 1600, 5000),
	})
	if err != nil {
		log.Fatal(err)
	}
	dom, err := host.CreateDomain("live-vm", restypes.V(4, 16384, 400, 1250), guestos.Config{})
	if err != nil {
		log.Fatal(err)
	}
	dom.MarkWarm()
	v, err := vm.New(dom, remote, vm.Config{})
	if err != nil {
		log.Fatal(err)
	}

	st, err := remote.Status()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote app %q: rss %.0f MB (fetched over HTTP)\n\n", st.Name, st.RSSMB)

	// Cascade deflation: level 1 now crosses the network to the agent.
	target := restypes.V(2, 10000, 100, 300)
	fmt.Printf("deflating %v by %v ...\n", v.Name(), target)
	rep, err := cascade.New(cascade.AllLevels()).Deflate(v, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  application (over HTTP): relinquished %v\n", rep.App.Reclaimed)
	fmt.Printf("  guest OS:                unplugged %v\n", rep.OS.Reclaimed)
	fmt.Printf("  hypervisor:              overcommitted %v\n", rep.Hyp.Reclaimed)
	fmt.Printf("server-side cache resized to %.0f MB, hit rate %.3f\n", app.CacheMB(), app.HitRate())

	if _, err := cascade.New(cascade.AllLevels()).Reinflate(v, target); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reinflated: cache back to %.0f MB\n", app.CacheMB())
}
