// Cluster simulation: drive a 50-server deflation-managed cluster with a
// synthetic Eucalyptus-style trace at rising overcommitment targets, and
// compare low-priority preemption probability against the preemption-only
// baseline of today's clouds (the Fig. 8c experiment at reduced scale).
package main

import (
	"fmt"
	"log"
	"time"

	"deflation/internal/cluster"
	"deflation/internal/trace"
)

func main() {
	events, err := trace.Generate(trace.Config{Count: 2500, Seed: 7, MeanInterarrival: time.Second})
	if err != nil {
		log.Fatal(err)
	}
	st := trace.Summarize(events)
	fmt.Printf("trace: %d VMs (%d high-priority), lifetime median %v / mean %v\n\n",
		st.Count, st.HighPriority, st.MedianLifetime.Round(time.Second), st.MeanLifetime.Round(time.Second))

	fmt.Printf("%-12s %-18s %-10s %-12s %-10s\n", "overcommit%", "mode", "preempt-p", "achieved-oc", "rejections")
	for _, oc := range []float64{1.4, 1.6, 1.8} {
		for _, mode := range []cluster.Mode{cluster.ModeDeflation, cluster.ModePreemptionOnly} {
			res, err := cluster.RunSim(cluster.SimConfig{
				Servers:          50,
				Mode:             mode,
				Policy:           cluster.BestFit,
				TargetOvercommit: oc,
				Seed:             7,
				Trace: trace.Config{
					Count:            2500,
					Seed:             7,
					MeanInterarrival: time.Second,
					LifetimeMedian:   15 * time.Minute,
				},
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12.0f %-18s %-10.3f %-12.2f %-10d\n",
				(oc-1)*100, mode, res.PreemptionProbability, res.AchievedOvercommit, res.Rejections)
		}
	}
	fmt.Println("\ndeflation sustains >1x admitted load with near-zero preemptions;")
	fmt.Println("the preemption-only baseline revokes a large share of low-priority VMs.")
}
