// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§6), plus the ablation benchmarks DESIGN.md calls out and
// micro-benchmarks of the core mechanisms. Key reproduced quantities are
// published through b.ReportMetric so `go test -bench` output records the
// paper-facing numbers alongside wall-clock costs.
package deflation_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"deflation/internal/apps/apptest"
	"deflation/internal/apps/memcache"
	"deflation/internal/cascade"
	"deflation/internal/cluster"
	"deflation/internal/experiments"
	"deflation/internal/guestos"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/simcg"
	"deflation/internal/spark"
	"deflation/internal/spark/workloads"
	"deflation/internal/substrate"
	"deflation/internal/trace"
	"deflation/internal/vm"
)

// --- Figure benchmarks -------------------------------------------------

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			v, _ := r.SeriesValue("Memcached", 50)
			b.ReportMetric(v, "memcached@50%")
			v, _ = r.SeriesValue("Kcompile", 50)
			b.ReportMetric(v, "kcompile@50%")
		}
	}
}

func BenchmarkFig5a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5a()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Series[0].Values[5], "hyp-only@50%")
			b.ReportMetric(r.Series[2].Values[5], "hyp+os@50%")
		}
	}
}

func BenchmarkFig5b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5b()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			n := len(r.DeflationPct) - 1
			b.ReportMetric(r.Series[0].Values[n], "hyp-only@80%")
			b.ReportMetric(r.Series[1].Values[n], "os-only@80%")
		}
	}
}

func BenchmarkFig5c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5c()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			n := len(r.DeflationPct) - 1
			b.ReportMetric(r.Series[1].Values[n]/r.Series[0].Values[n], "aware/unmod@60%")
		}
	}
}

func BenchmarkFig5d(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5d()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			n := len(r.DeflationPct) - 1
			b.ReportMetric(r.Series[0].Values[n], "unmod-rt-us@60%")
			b.ReportMetric(r.Series[1].Values[n], "aware-rt-us@60%")
		}
	}
}

func benchFig6(b *testing.B, w experiments.Fig6Workload) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(w)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			vm50, _ := r.Value(spark.PressureVMLevel, 0.5)
			pre50, _ := r.Value(spark.PressurePreempt, 0.5)
			b.ReportMetric(vm50, "vm-norm@0.5")
			b.ReportMetric(pre50, "preempt-norm@0.5")
		}
	}
}

func BenchmarkFig6ALS(b *testing.B)    { benchFig6(b, experiments.WorkloadALS) }
func BenchmarkFig6KMeans(b *testing.B) { benchFig6(b, experiments.WorkloadKMeans) }
func BenchmarkFig6CNN(b *testing.B)    { benchFig6(b, experiments.WorkloadCNN) }
func BenchmarkFig6RNN(b *testing.B)    { benchFig6(b, experiments.WorkloadRNN) }

func BenchmarkFig7a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7a()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Series[0].Values[0], "self-norm@20%")
			b.ReportMetric(r.Series[1].Values[0], "vm-norm@20%")
		}
	}
}

func BenchmarkFig7b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7b()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Deflation.Mean(), "deflation-mean-rec/s")
			b.ReportMetric(r.Preemption.Mean(), "preempt-mean-rec/s")
		}
	}
}

func BenchmarkFig8a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8a()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Total.Max(), "peak-cluster-throughput")
		}
	}
}

func BenchmarkFig8b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8b()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			n := len(r.DeflationPct) - 1
			b.ReportMetric(r.Series[0].Values[n], "hyp-only-secs@55%")
			b.ReportMetric(r.Series[2].Values[n], "cascade-secs@55%")
		}
	}
}

func BenchmarkFig8c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8c(experiments.QuickFig8cConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Deflation.Values[0], "deflation-p@50%oc")
			b.ReportMetric(r.PreemptOnly.Values[0], "preempt-p@50%oc")
		}
	}
}

func BenchmarkFig8d(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8d(true, 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Mean[0], "bestfit-mean-oc")
			b.ReportMetric(r.Mean[1], "firstfit-mean-oc")
		}
	}
}

func BenchmarkFigMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.FigMigration(experiments.QuickFigMigrationConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Policy order: preempt-only, migration-only, deflation, deflate+migrate.
			b.ReportMetric(r.Preemption[1].Values[0], "mig-only-p@50%oc")
			b.ReportMetric(r.Preemption[3].Values[0], "dtm-p@50%oc")
			b.ReportMetric(r.MovedGB[1].Values[0], "mig-only-gb@50%oc")
			b.ReportMetric(r.MovedGB[3].Values[0], "dtm-gb@50%oc")
		}
	}
}

// BenchmarkFigSLO runs the quick interactive SLO-deflation sweep and
// reports cost per modeled request — the analytic PS model spreads each
// tick's arrivals into a fixed histogram, so millions of requests cost a
// handful of allocations.
func BenchmarkFigSLO(b *testing.B) {
	cfg := experiments.QuickFigSLOConfig()
	var requests float64
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.FigSLO(cfg)
		if err != nil {
			b.Fatal(err)
		}
		requests = r.TotalRequests()
		if i == 0 {
			p := r.Panels[0]
			b.ReportMetric(p.SLO.Values[2], "slo-p99@50%defl")
			b.ReportMetric(p.Utility.Values[2], "util-p99@50%defl")
			b.ReportMetric(p.SLOFrontierPct, "slo-frontier%")
			b.ReportMetric(p.UtilityFrontierPct, "util-frontier%")
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	total := requests * float64(b.N)
	if total > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/total, "ns/request")
		b.ReportMetric(float64(after.Mallocs-before.Mallocs)/total, "allocs/request")
	}
}

// BenchmarkFigMixed runs the quick multi-substrate sweep and reports the
// headline asymmetries: the container fleet's deeper violation-free
// frontier and the aggressive panel's container-only OOM kills.
func BenchmarkFigMixed(b *testing.B) {
	cfg := experiments.QuickFigMixedConfig()
	for i := 0; i < b.N; i++ {
		r, err := experiments.FigMixed(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			p := r.Panels[0]
			b.ReportMetric(p.VMFrontierPct, "vm-frontier%")
			b.ReportMetric(p.ContainerFrontierPct, "ctr-frontier%")
			for _, a := range r.Aggressive {
				if a.Fleet == "container" {
					b.ReportMetric(float64(a.Cell.OOMKills), "ctr-oom-kills")
					b.ReportMetric(a.Cell.MeanResizeMS, "ctr-resize-ms")
				}
				if a.Fleet == "vm" {
					b.ReportMetric(a.Cell.MeanResizeMS, "vm-resize-ms")
				}
			}
		}
	}
}

// --- Table benchmarks ---------------------------------------------------

// BenchmarkTable1Mechanisms exercises each application-level reclamation
// mechanism of Table 1 once per iteration: memcached LRU resize, JVM heap
// shrink, and Spark task termination (executor blacklisting).
func BenchmarkTable1Mechanisms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mc, err := memcache.NewApp(memcache.AppConfig{CacheMB: 2000, DatasetMB: 2400, DeflationAware: true})
		if err != nil {
			b.Fatal(err)
		}
		mc.SelfDeflate(restypes.V(0, 15000, 0, 0))

		cl, err := spark.NewCluster(4, 2, 1024)
		if err != nil {
			b.Fatal(err)
		}
		job, err := workloads.KMeans(workloads.Params{Workers: 4, Slots: 2, Partitions: 16, Iterations: 2})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := spark.RunBatchScenario(cl, job, &spark.PressureSpec{
			AtProgress: 0.4, Deflation: []float64{0.5, 0.5, 0.5, 0.5}, Mechanism: spark.PressureSelf,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Workloads runs a small instance of each Table 2 workload
// class end to end.
func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, build := range []func(workloads.Params) (*spark.BatchJob, error){workloads.ALS, workloads.KMeans} {
			p := workloads.Params{Workers: 4, Slots: 2, Partitions: 16, Iterations: 2}
			cl, err := p.Cluster()
			if err != nil {
				b.Fatal(err)
			}
			job, err := build(p)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := spark.RunBatchScenario(cl, job, nil); err != nil {
				b.Fatal(err)
			}
		}
		run, err := spark.NewTrainingRun(&spark.TrainingJob{
			Name: "cnn", Iterations: 10, IterSecs: 30, Workers: 4, RecordsPerIter: 720,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := run.Run(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §3) ---------------------------------

// BenchmarkAblationCascadeOrder compares reclamation latency with and
// without the upper cascade levels for an identical memory target.
func BenchmarkAblationCascadeOrder(b *testing.B) {
	configs := []struct {
		name   string
		levels cascade.Levels
	}{
		{"app-first", cascade.AllLevels()},
		{"os+hypervisor", cascade.VMLevel()},
		{"hypervisor-only", cascade.HypervisorOnly()},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			var lastSecs float64
			for i := 0; i < b.N; i++ {
				h, err := hypervisor.NewHost(hypervisor.Config{Name: "h", Capacity: restypes.V(16, 65536, 1000, 1000)})
				if err != nil {
					b.Fatal(err)
				}
				dom, err := h.CreateDomain("v", restypes.V(4, 16384, 100, 100), guestos.Config{})
				if err != nil {
					b.Fatal(err)
				}
				dom.MarkWarm()
				v, err := vm.New(dom, apptest.NewElastic("a", 12000, 2000), vm.Config{})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := cascade.New(cfg.levels).Deflate(v, restypes.V(0, 8192, 0, 0))
				if err != nil {
					b.Fatal(err)
				}
				lastSecs = rep.TotalLatency.Seconds()
			}
			b.ReportMetric(lastSecs, "reclaim-secs")
		})
	}
}

// BenchmarkAblationRecomputeEstimator compares the policy's three r
// estimators on the two batch workloads, reporting the normalized runtime
// the estimator's choice achieves.
func BenchmarkAblationRecomputeEstimator(b *testing.B) {
	for _, est := range []spark.Estimator{spark.EstimatorHeuristic, spark.EstimatorWorstCase, spark.EstimatorDAG} {
		for _, wname := range []string{"als", "kmeans"} {
			b.Run(fmt.Sprintf("%s/%s", est, wname), func(b *testing.B) {
				build := workloads.ALS
				if wname == "kmeans" {
					build = workloads.KMeans
				}
				var norm float64
				for i := 0; i < b.N; i++ {
					p := workloads.Params{}
					clBase, _ := p.Cluster()
					jobBase, _ := build(p)
					base, err := spark.RunBatchScenario(clBase, jobBase, nil)
					if err != nil {
						b.Fatal(err)
					}
					cl, _ := p.Cluster()
					job, _ := build(p)
					res, err := spark.RunBatchScenario(cl, job, &spark.PressureSpec{
						AtProgress: 0.5,
						Deflation:  []float64{0.55, 0.45, 0.55, 0.45, 0.55, 0.45, 0.55, 0.45},
						Mechanism:  spark.PressurePolicy,
						Estimator:  est,
					})
					if err != nil {
						b.Fatal(err)
					}
					norm = res.DurationSecs / base.DurationSecs
				}
				b.ReportMetric(norm, "norm-runtime")
			})
		}
	}
}

// BenchmarkAblationDeflatableFitness compares Eq. 4's free+deflatable
// placement fitness against a free-only score on the cluster simulation.
func BenchmarkAblationDeflatableFitness(b *testing.B) {
	for _, freeOnly := range []bool{false, true} {
		name := "availability-fitness"
		if freeOnly {
			name = "free-only-fitness"
		}
		b.Run(name, func(b *testing.B) {
			var rejected float64
			for i := 0; i < b.N; i++ {
				servers := make([]cluster.Node, 8)
				for j := range servers {
					h, err := hypervisor.NewHost(hypervisor.Config{
						Name: fmt.Sprintf("s%d", j), Capacity: restypes.V(16, 65536, 1000, 1000),
					})
					if err != nil {
						b.Fatal(err)
					}
					servers[j] = cluster.NewLocalController(h, cascade.AllLevels(), cluster.ModeDeflation)
				}
				mgr, err := cluster.NewManager(servers, cluster.BestFit, 7)
				if err != nil {
					b.Fatal(err)
				}
				mgr.SetFreeOnlyFitness(freeOnly)
				for k := 0; k < 48; k++ {
					size := restypes.V(4, 16384, 100, 100)
					mgr.Launch(cluster.LaunchSpec{
						Name: fmt.Sprintf("v%d", k), Size: size, MinSize: size.Scale(0.25),
						Priority: vm.LowPriority, AppKind: "elastic",
					})
				}
				rejected = float64(mgr.Rejected())
			}
			b.ReportMetric(rejected, "rejections")
		})
	}
}

// BenchmarkAblationDeflationSplit compares the proportional split against
// equal-share and largest-first splits, reporting the worst-deflated VM's
// remaining throughput (proportional should balance the pain).
func BenchmarkAblationDeflationSplit(b *testing.B) {
	for _, split := range []cluster.SplitPolicy{cluster.SplitProportional, cluster.SplitEqual, cluster.SplitLargestFirst} {
		b.Run(split.String(), func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				h, err := hypervisor.NewHost(hypervisor.Config{Name: "h", Capacity: restypes.V(16, 65536, 1000, 1000)})
				if err != nil {
					b.Fatal(err)
				}
				ctrl := cluster.NewLocalController(h, cascade.AllLevels(), cluster.ModeDeflation)
				ctrl.SetSplitPolicy(split)
				// Two big, two small residents; then a demanding arrival.
				for j, size := range []restypes.Vector{
					restypes.V(6, 24576, 200, 200), restypes.V(6, 24576, 200, 200),
					restypes.V(2, 8192, 100, 100), restypes.V(2, 8192, 100, 100),
				} {
					if _, _, err := ctrl.LaunchVM(cluster.LaunchSpec{
						Name: fmt.Sprintf("v%d", j), Size: size,
						Priority: vm.LowPriority, AppKind: "elastic",
					}); err != nil {
						b.Fatal(err)
					}
				}
				if _, _, err := ctrl.LaunchVM(cluster.LaunchSpec{
					Name: "new", Size: restypes.V(8, 32768, 200, 200),
					Priority: vm.LowPriority, AppKind: "elastic",
				}); err != nil {
					b.Fatal(err)
				}
				worst = 1.0
				for _, v := range ctrl.VMs() {
					if v.Name() == "new" {
						continue
					}
					if tp := v.Throughput(); tp < worst {
						worst = tp
					}
				}
			}
			b.ReportMetric(worst, "worst-vm-throughput")
		})
	}
}

// BenchmarkAblationBalloonVsHotplug compares the two guest-level memory
// mechanisms (§7): ballooning reclaims faster but leaves fragmentation;
// hot-unplug is slower but clean.
func BenchmarkAblationBalloonVsHotplug(b *testing.B) {
	for _, mech := range []cascade.MemMechanism{cascade.MemHotUnplug, cascade.MemBalloon} {
		b.Run(mech.String(), func(b *testing.B) {
			var reclaimSecs, effCores float64
			for i := 0; i < b.N; i++ {
				h, err := hypervisor.NewHost(hypervisor.Config{Name: "h", Capacity: restypes.V(16, 65536, 1000, 1000)})
				if err != nil {
					b.Fatal(err)
				}
				dom, err := h.CreateDomain("v", restypes.V(4, 16384, 100, 100), guestos.Config{})
				if err != nil {
					b.Fatal(err)
				}
				dom.MarkWarm()
				app := apptest.New("idle")
				app.RSSMB = 2000
				v, err := vm.New(dom, app, vm.Config{})
				if err != nil {
					b.Fatal(err)
				}
				c := cascade.New(cascade.VMLevel())
				c.SetMemMechanism(mech)
				rep, err := c.Deflate(v, restypes.V(0, 8192, 0, 0))
				if err != nil {
					b.Fatal(err)
				}
				reclaimSecs = rep.TotalLatency.Seconds()
				effCores = v.Env().EffectiveCores
			}
			b.ReportMetric(reclaimSecs, "reclaim-secs")
			b.ReportMetric(effCores, "steady-eff-cores")
		})
	}
}

// BenchmarkAblationMinSizeGuard compares minimum-size settings (§5's m_i):
// near-zero minimums avoid preemptions entirely but deflate low-priority
// VMs into the ground; larger minimums keep a performance floor at the cost
// of some preemptions.
func BenchmarkAblationMinSizeGuard(b *testing.B) {
	for _, minFrac := range []float64{0.02, 0.10, 0.25} {
		b.Run(fmt.Sprintf("min=%.0f%%", minFrac*100), func(b *testing.B) {
			var res cluster.SimResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = cluster.RunSim(cluster.SimConfig{
					Servers:          20,
					Mode:             cluster.ModeDeflation,
					TargetOvercommit: 1.8,
					MinSizeFraction:  minFrac,
					Seed:             42,
					Trace: trace.Config{
						Count:            800,
						MeanInterarrival: 2 * time.Second,
						LifetimeMedian:   20 * time.Minute,
					},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.PreemptionProbability, "preempt-p")
			b.ReportMetric(res.MeanLowThroughput, "low-throughput")
		})
	}
}

// --- Micro-benchmarks of core mechanisms --------------------------------

// BenchmarkCascadeDeflate measures one full cascade deflation round trip.
func BenchmarkCascadeDeflate(b *testing.B) {
	h, err := hypervisor.NewHost(hypervisor.Config{Name: "h", Capacity: restypes.V(64, 262144, 4000, 4000)})
	if err != nil {
		b.Fatal(err)
	}
	dom, err := h.CreateDomain("v", restypes.V(4, 16384, 100, 100), guestos.Config{})
	if err != nil {
		b.Fatal(err)
	}
	v, err := vm.New(dom, apptest.NewElastic("a", 8000, 2000), vm.Config{})
	if err != nil {
		b.Fatal(err)
	}
	c := cascade.New(cascade.AllLevels())
	target := restypes.V(2, 8192, 50, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Deflate(v, target); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Reinflate(v, target); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubstrateResize compares the modeled end-to-end resize latency
// of the two substrates for the same 2-core / 8 GB reclamation: the
// hypervisor path balloons pages and unplugs vCPUs, the container path is
// a single cgroup limit write.
func BenchmarkSubstrateResize(b *testing.B) {
	size := restypes.V(4, 16384, 100, 100)
	shrunk := size.Sub(restypes.V(2, 8192, 0, 0))
	newInstance := func(b *testing.B, container bool) substrate.Instance {
		b.Helper()
		if container {
			h, err := simcg.NewHost(simcg.Config{Name: "cg", Capacity: restypes.V(64, 262144, 4000, 4000)})
			if err != nil {
				b.Fatal(err)
			}
			inst, err := h.Spawn("c", size, guestos.Config{})
			if err != nil {
				b.Fatal(err)
			}
			return inst
		}
		h, err := hypervisor.NewHost(hypervisor.Config{Name: "kvm", Capacity: restypes.V(64, 262144, 4000, 4000)})
		if err != nil {
			b.Fatal(err)
		}
		dom, err := h.CreateDomain("v", size, guestos.Config{})
		if err != nil {
			b.Fatal(err)
		}
		dom.MarkWarm()
		return dom
	}
	for _, sub := range []struct {
		name      string
		container bool
	}{{"balloon", false}, {"cgroup-write", true}} {
		b.Run(sub.name, func(b *testing.B) {
			inst := newInstance(b, sub.container)
			var modeled time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lat, err := inst.SetAllocation(shrunk)
				if err != nil {
					b.Fatal(err)
				}
				modeled = lat
				if _, err := inst.SetAllocation(size); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(modeled.Seconds()*1000, "modeled-resize-ms")
		})
	}
}

// BenchmarkStoreOps measures the real LRU store under zipfian load.
func BenchmarkStoreOps(b *testing.B) {
	s, err := memcache.NewStore(64 << 20)
	if err != nil {
		b.Fatal(err)
	}
	w, err := memcache.NewWorkload(50000, 512, 1.1, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.Warm(s); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := w.Run(s, b.N); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineALS measures the mini-Spark engine scheduling a full ALS
// job.
func BenchmarkEngineALS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := workloads.Params{}
		cl, err := p.Cluster()
		if err != nil {
			b.Fatal(err)
		}
		job, err := workloads.ALS(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := spark.RunBatchScenario(cl, job, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlacement measures manager placement throughput on a 100-node
// cluster.
func BenchmarkPlacement(b *testing.B) {
	servers := make([]cluster.Node, 100)
	for j := range servers {
		h, err := hypervisor.NewHost(hypervisor.Config{
			Name: fmt.Sprintf("s%d", j), Capacity: restypes.V(32, 131072, 4000, 4000),
		})
		if err != nil {
			b.Fatal(err)
		}
		servers[j] = cluster.NewLocalController(h, cascade.AllLevels(), cluster.ModeDeflation)
	}
	mgr, err := cluster.NewManager(servers, cluster.BestFit, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("vm-%d", i)
		size := restypes.V(2, 4096, 50, 50)
		if _, _, err := mgr.Launch(cluster.LaunchSpec{
			Name: name, Size: size, MinSize: size.Scale(0.25),
			Priority: vm.LowPriority, AppKind: "elastic",
		}); err != nil {
			b.StopTimer()
			// Cluster saturated: recycle by releasing an old VM.
			_ = mgr.Release(fmt.Sprintf("vm-%d", i-3000))
			b.StartTimer()
		}
	}
}

// BenchmarkTraceGeneration measures the synthetic trace generator.
func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := trace.Generate(trace.Config{Count: 1000, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}
