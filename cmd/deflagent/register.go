package main

import (
	"bytes"
	"context"
	"encoding/json"
	"hash/fnv"
	"io"
	"log"
	"math/rand"
	"net/http"
	"time"

	"deflation/internal/cluster"
)

// runRegistration self-registers the agent with a manager and pushes
// heartbeats. The manager journals the registration before acking, and a
// federated plane ring-routes both calls (307) to the owning shard, so the
// agent only needs any live manager's URL. Heartbeat pacing is full-jitter
// around the base interval: a fleet of agents started together de-phases
// within one period instead of synchronizing fan-in spikes at the manager.
// A 404 on heartbeat means no shard knows the node (ownership moved, or a
// hand-off raced) — the agent re-registers through the ring.
func runRegistration(ctx context.Context, manager, name, selfURL string, base time.Duration, seed int64) {
	client := &http.Client{Timeout: 10 * time.Second}
	body, _ := json.Marshal(cluster.RegisterNodeRequest{Name: name, URL: selfURL})

	registerOnce := func() bool {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			manager+"/v1/nodes", bytes.NewReader(body))
		if err != nil {
			return false
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			log.Printf("deflagent: registering with %s: %v", manager, err)
			return false
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			log.Printf("deflagent: registering with %s: %s", manager, resp.Status)
			return false
		}
		return true
	}

	if seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(name))
		seed = int64(h.Sum64())
	}
	rng := rand.New(rand.NewSource(seed))
	for !registerOnce() {
		select {
		case <-ctx.Done():
			return
		case <-time.After(cluster.HeartbeatInterval(rng, base)):
		}
	}
	log.Printf("deflagent: registered %s with %s", name, manager)
	if base <= 0 {
		return
	}

	hbURL := manager + "/v1/nodes/" + name + "/heartbeat"
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(cluster.HeartbeatInterval(rng, base)):
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, hbURL, nil)
		if err != nil {
			continue
		}
		resp, err := client.Do(req)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			if registerOnce() {
				log.Printf("deflagent: re-registered %s (ownership moved)", name)
			}
		}
	}
}
