// Command deflagent runs a per-server local deflation controller and
// serves it over the REST control plane (§5). A simulated host — KVM
// domains (simkvm) or cgroup containers (simcg), per -substrate — is
// created with the given capacity; the centralized manager (cmd/deflated)
// connects to the /v1 API to place VMs and reclaim resources.
//
// Usage:
//
//	deflagent -listen :7070 -name server-0 -cpus 32 -mem-gb 128
//	deflagent -listen :7073 -name cg-0 -substrate container
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"deflation/internal/cascade"
	"deflation/internal/cluster"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/simcg"
	"deflation/internal/substrate"
	"deflation/internal/telemetry"
)

func main() {
	var (
		listen   = flag.String("listen", ":7070", "address to serve the controller API on")
		name     = flag.String("name", "server-0", "server name")
		cpus     = flag.Float64("cpus", 32, "physical CPU cores")
		memGB    = flag.Float64("mem-gb", 128, "physical memory (GB)")
		diskMBps = flag.Float64("disk-mbps", 4000, "disk bandwidth (MB/s)")
		netMBps  = flag.Float64("net-mbps", 4000, "network bandwidth (MB/s)")
		mode     = flag.String("mode", "deflation", "reclamation mode: deflation or preemption-only")
		subKind  = flag.String("substrate", "hypervisor", "virtualization substrate: hypervisor (simkvm) or container (simcg)")
		levels   = flag.String("levels", "all", "cascade levels: all, vm (os+hypervisor), hypervisor, os")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")

		register  = flag.String("register", "", "manager base URL to self-register with (federated planes ring-route the registration)")
		advertise = flag.String("advertise", "", "this agent's URL as the manager reaches it (default http://<listen>)")
		heartbeat = flag.Duration("heartbeat", 5*time.Second, "push-heartbeat base interval with -register (full-jitter so fleets de-phase; 0 disables)")
		hbSeed    = flag.Int64("heartbeat-seed", 0, "heartbeat jitter seed (0 = derive from -name)")
	)
	flag.Parse()

	capacity := restypes.V(*cpus, *memGB*1024, *diskMBps, *netMBps)
	var host substrate.Substrate
	var err error
	switch substrate.Kind(*subKind).Normalize() {
	case substrate.KindHypervisor:
		host, err = hypervisor.NewHost(hypervisor.Config{Name: *name, Capacity: capacity})
	case substrate.KindContainer:
		host, err = simcg.NewHost(simcg.Config{Name: *name, Capacity: capacity})
	default:
		log.Fatalf("deflagent: unknown substrate %q", *subKind)
	}
	if err != nil {
		log.Fatalf("deflagent: %v", err)
	}

	var lv cascade.Levels
	switch *levels {
	case "all":
		lv = cascade.AllLevels()
	case "vm":
		lv = cascade.VMLevel()
	case "hypervisor":
		lv = cascade.HypervisorOnly()
	case "os":
		lv = cascade.OSOnly()
	default:
		log.Fatalf("deflagent: unknown levels %q", *levels)
	}

	m := cluster.ModeDeflation
	if *mode == "preemption-only" {
		m = cluster.ModePreemptionOnly
	} else if *mode != "deflation" {
		log.Fatalf("deflagent: unknown mode %q", *mode)
	}

	ctrl := cluster.NewLocalController(host, lv, m)
	api, err := cluster.NewControllerAPI(ctrl)
	if err != nil {
		log.Fatalf("deflagent: %v", err)
	}

	// Telemetry: per-level cascade metrics and trace events, plus scrape-time
	// node allocation gauges. Served on the same listener as the API, so
	// graceful shutdown covers it.
	sink := telemetry.NewSink()
	ctrl.SetTelemetry(sink)
	api.AttachTelemetry(sink)
	mux := http.NewServeMux()
	mux.Handle("/v1/", api.Handler())
	sink.Attach(mux)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	srv := cluster.NewHTTPServer(*listen, mux)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("deflagent: serving %s (%g cores, %g GB, %s, levels %s) on %s",
		*name, *cpus, *memGB, m, lv, *listen)

	if *register != "" {
		self := *advertise
		if self == "" {
			h := *listen
			if strings.HasPrefix(h, ":") {
				h = "127.0.0.1" + h
			}
			self = "http://" + h
		}
		go runRegistration(ctx, *register, *name, self, *heartbeat, *hbSeed)
	}

	select {
	case err := <-errc:
		log.Fatalf("deflagent: %v", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		log.Printf("deflagent: shutting down (draining for up to %v)", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("deflagent: drain incomplete: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("deflagent: %v", err)
		}
		log.Printf("deflagent: stopped")
	}
}
