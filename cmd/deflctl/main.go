// Command deflctl is the operator CLI for the deflated cluster manager.
//
// Usage:
//
//	deflctl -manager http://localhost:7000 launch -name web-1 -cpus 4 -mem-gb 16 -app memcached-aware
//	deflctl -manager http://localhost:7000 launch -name batch-1 -app kcompile -priority low -min-frac 0.25
//	deflctl -manager http://localhost:7000 release -name web-1
//	deflctl -manager http://localhost:7000 migrate -name batch-1 -dest node-2
//	deflctl -manager http://localhost:7000 status -servers
//	deflctl -manager http://localhost:7000 state
//	deflctl -manager http://localhost:7000 metrics
//	deflctl metrics -node http://10.0.0.1:7070
//	deflctl trace -node http://10.0.0.1:7070 -n 20
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"deflation/internal/cluster"
	"deflation/internal/restypes"
	"deflation/internal/telemetry"
	"deflation/internal/vm"
)

// client is the shared HTTP client for every subcommand. The explicit
// timeout means a wedged daemon fails the CLI fast instead of hanging it
// forever (http.DefaultClient has no timeout at all).
var client = &http.Client{Timeout: 15 * time.Second}

func main() {
	manager := flag.String("manager", "http://localhost:7000", "manager base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}
	var err error
	switch args[0] {
	case "launch":
		err = launch(*manager, args[1:])
	case "release":
		err = release(*manager, args[1:])
	case "migrate":
		err = migrate(*manager, args[1:])
	case "status":
		err = status(*manager, args[1:])
	case "state":
		err = state(*manager, args[1:])
	case "metrics":
		err = metrics(*manager, args[1:])
	case "trace":
		err = traceCmd(*manager, args[1:])
	case "shardmap":
		err = shardmap(*manager, args[1:])
	case "adopt":
		err = adopt(*manager, args[1:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "deflctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: deflctl [-manager URL] <command> [flags]

commands:
  launch  -name NAME [-cpus N] [-mem-gb N] [-app KIND] [-priority low|high] [-min-frac F] [-warm]
  release -name NAME
  migrate -name NAME -dest NODE   live-migrate a VM to the named server
  status  [-servers]
  state   [-json]                dump durable state: role/epoch, placements, journal seq, replication lag
  metrics [-node URL] [-raw]     scrape and pretty-print a node's metrics registry
  trace   [-node URL] [-n K]     show the last K cascade decisions
  shardmap [-json] [-key NAME]   show a federated manager's shard map (and resolve a key)
  adopt   -shard ID              have this manager adopt a dead peer shard's journal`)
	os.Exit(2)
}

func launch(manager string, args []string) error {
	fs := flag.NewFlagSet("launch", flag.ExitOnError)
	name := fs.String("name", "", "VM name (required)")
	cpus := fs.Float64("cpus", 4, "vCPUs")
	memGB := fs.Float64("mem-gb", 16, "memory (GB)")
	diskMBps := fs.Float64("disk-mbps", 400, "disk bandwidth (MB/s)")
	netMBps := fs.Float64("net-mbps", 1250, "network bandwidth (MB/s)")
	app := fs.String("app", "elastic", "application kind (see cluster.AppKinds)")
	priority := fs.String("priority", "low", "low (deflatable) or high")
	minFrac := fs.Float64("min-frac", 0, "minimum size as a fraction of nominal")
	warm := fs.Bool("warm", true, "mark the guest long-running (memory host-resident)")
	sub := fs.String("substrate", "", "pin to a substrate kind: hypervisor or container (default: any)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("launch: -name is required")
	}
	size := restypes.V(*cpus, *memGB*1024, *diskMBps, *netMBps)
	spec := cluster.LaunchSpec{
		Name:      *name,
		Size:      size,
		MinSize:   size.Scale(*minFrac),
		AppKind:   *app,
		Warm:      *warm,
		Substrate: *sub,
	}
	if *priority == "high" {
		spec.Priority = vm.HighPriority
		spec.MinSize = restypes.Vector{}
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := client.Post(manager+"/v1/vms", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return httpError("launch", resp)
	}
	var lr cluster.LaunchResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		return err
	}
	fmt.Printf("launched %s on %s", *name, lr.Server)
	if len(lr.Report.Deflated) > 0 {
		fmt.Printf(" (deflated: %v)", lr.Report.Deflated)
	}
	if len(lr.Report.Preempted) > 0 {
		fmt.Printf(" (preempted: %v)", lr.Report.Preempted)
	}
	fmt.Println()
	return nil
}

func release(manager string, args []string) error {
	fs := flag.NewFlagSet("release", flag.ExitOnError)
	name := fs.String("name", "", "VM name (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("release: -name is required")
	}
	req, err := http.NewRequest(http.MethodDelete, manager+"/v1/vms/"+*name, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return httpError("release", resp)
	}
	fmt.Printf("released %s\n", *name)
	return nil
}

// migrate live-migrates a VM to a named destination server. On failure the
// VM keeps running on its source (pre-copy rolls back cleanly), so the error
// path is safe to retry against a different destination.
func migrate(manager string, args []string) error {
	fs := flag.NewFlagSet("migrate", flag.ExitOnError)
	name := fs.String("name", "", "VM name (required)")
	dest := fs.String("dest", "", "destination server name (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" || *dest == "" {
		return fmt.Errorf("migrate: -name and -dest are required")
	}
	body, err := json.Marshal(cluster.MigrateRequest{VM: *name, Dest: *dest})
	if err != nil {
		return err
	}
	resp, err := client.Post(manager+"/v1/migrate", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("migrate", resp)
	}
	var rep cluster.MigrationReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return err
	}
	fmt.Printf("migrated %s %s → %s: %.0f MB in %d rounds over %v at %.0f MB/s, downtime %v\n",
		rep.VM, rep.From, rep.To, rep.Result.TransferredMB, rep.Result.Rounds,
		rep.Result.Duration.Round(time.Millisecond), rep.RateMBps,
		rep.Result.Downtime.Round(time.Millisecond))
	return nil
}

func status(manager string, args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	servers := fs.Bool("servers", false, "include per-server detail")
	if err := fs.Parse(args); err != nil {
		return err
	}
	url := manager + "/v1/cluster"
	if *servers {
		url += "?servers=true"
	}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("status", resp)
	}
	var cs cluster.ClusterState
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		return err
	}
	fmt.Printf("vms: %d  rejected: %d  preemptions: %d  overcommit mean/max: %.2f/%.2f\n",
		cs.VMs, cs.Rejected, cs.Preemptions, cs.MeanOC, cs.MaxOC)
	for _, s := range cs.Servers {
		sub := s.Substrate
		if sub == "" {
			sub = "hypervisor" // nodes predating the substrate report
		}
		fmt.Printf("  %-12s substrate=%-10s mode=%-15s oc=%.2f free=%v\n",
			s.Name, sub, s.Mode, s.Overcommitment, s.Free)
		for _, v := range s.VMs {
			backend := v.Substrate
			if backend == "" {
				backend = "hypervisor"
			}
			fmt.Printf("    %-14s %-5s backend=%-10s app=%-16s alloc=%v tput=%.2f\n",
				v.Name, v.Priority, backend, v.App, v.Allocation, v.Throughput)
		}
	}
	return nil
}

// state dumps the manager's durable-state view: current placements, journal
// position, last snapshot age, and — when the manager recovered on start —
// the recovery report.
func state(manager string, args []string) error {
	fs := flag.NewFlagSet("state", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "print the raw JSON response")
	if err := fs.Parse(args); err != nil {
		return err
	}
	resp, err := client.Get(manager + "/v1/state")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("state", resp)
	}
	var st cluster.ManagerStateResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}
	durability := "in-memory only (no -state-dir)"
	if st.Durable {
		durability = "durable"
	}
	if st.Role != "" {
		fmt.Printf("role: %s  epoch: %d\n", st.Role, st.Epoch)
	}
	if r := st.Replication; r != nil {
		fmt.Printf("replicating: %s  applied=%d leader=%d lag=%d misses=%d",
			r.Leader, r.AppliedSeq, r.LeaderSeq, r.Lag, r.ConsecutiveMisses)
		if r.LeaderDead {
			fmt.Print("  LEASE EXPIRED")
		}
		fmt.Println()
	}
	fmt.Printf("vms: %d  state: %s\n", st.VMs, durability)
	if j := st.Journal; j != nil {
		fmt.Printf("journal: %s  seq=%d appended=%d fsyncs=%d", j.Dir, j.Seq, j.Appended, j.Fsyncs)
		if j.AppendErrors > 0 {
			fmt.Printf(" append-errors=%d", j.AppendErrors)
		}
		fmt.Println()
		fmt.Printf("snapshot: seq=%d size=%dB age=%.1fs\n", j.SnapshotSeq, j.SnapshotBytes, j.SnapshotAgeSecs)
	}
	if r := st.Recovery; r != nil {
		fmt.Printf("recovered: %d placements in %v (replayed %d records; "+
			"adopted=%d replaced=%d lost=%d reasserted=%d stale=%d",
			r.Placements, r.Duration.Round(time.Millisecond), r.RecordsReplayed,
			r.Adopted, r.Replaced, r.Lost, r.Reasserted, r.StaleReleased)
		if r.TornTail {
			fmt.Print("; torn tail truncated")
		}
		fmt.Println(")")
	}
	if len(st.Substrates) > 0 {
		// Deterministic order for scripting and smoke tests.
		nodes := make([]string, 0, len(st.Substrates))
		for name := range st.Substrates {
			nodes = append(nodes, name)
		}
		sort.Strings(nodes)
		fmt.Print("substrates:")
		for _, name := range nodes {
			kind := st.Substrates[name]
			if kind == "" {
				kind = "unknown"
			}
			fmt.Printf(" %s=%s", name, kind)
		}
		fmt.Println()
	}
	// Deterministic order for scripting and smoke tests.
	names := make([]string, 0, len(st.Placements))
	for name := range st.Placements {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-20s on %s\n", name, st.Placements[name])
	}
	return nil
}

// metrics scrapes a node's /metrics endpoint (the manager by default) and
// pretty-prints the registry: counters and gauges one per line, histograms
// with count, sum, and tail quantiles computed from the bucket counts.
func metrics(manager string, args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	node := fs.String("node", "", "node base URL (default: the manager)")
	raw := fs.Bool("raw", false, "print the raw Prometheus text exposition")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := *node
	if base == "" {
		base = manager
	}
	if *raw {
		resp, err := client.Get(base + "/metrics")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return httpError("metrics", resp)
		}
		_, err = io.Copy(os.Stdout, resp.Body)
		return err
	}
	resp, err := client.Get(base + "/metrics?format=json")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("metrics", resp)
	}
	var snaps []telemetry.MetricSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snaps); err != nil {
		return err
	}
	if len(snaps) == 0 {
		fmt.Println("no metrics registered")
		return nil
	}
	for _, m := range snaps {
		switch m.Type {
		case "histogram":
			fmt.Printf("%-58s count=%d sum=%.4g p50=%.4g p99=%.4g\n",
				metricLabel(m), m.Count, m.Sum, bucketQuantile(m, 0.5), bucketQuantile(m, 0.99))
		default:
			fmt.Printf("%-58s %g\n", metricLabel(m), m.Value)
		}
	}
	return nil
}

func metricLabel(m telemetry.MetricSnapshot) string {
	if len(m.Labels) == 0 {
		return m.Name
	}
	// Deterministic label order mirrors the exposition format.
	keys := make([]string, 0, len(m.Labels))
	for k := range m.Labels {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	s := m.Name + "{"
	for i, k := range keys {
		if i > 0 {
			s += ","
		}
		s += k + "=" + m.Labels[k]
	}
	return s + "}"
}

// bucketQuantile estimates a quantile from a snapshot's cumulative buckets
// with linear interpolation, mirroring telemetry.Histogram.Quantile.
func bucketQuantile(m telemetry.MetricSnapshot, q float64) float64 {
	if m.Count == 0 || len(m.Buckets) == 0 {
		return 0
	}
	rank := q * float64(m.Count)
	lower, prevCum := 0.0, uint64(0)
	for i, b := range m.Buckets {
		if float64(b.CumulativeCount) >= rank {
			upper := b.UpperBound
			if i == len(m.Buckets)-1 && i > 0 {
				return m.Buckets[i-1].UpperBound // +Inf bucket: clamp
			}
			width := upper - lower
			inBucket := float64(b.CumulativeCount - prevCum)
			if inBucket == 0 {
				return upper
			}
			return lower + width*(rank-float64(prevCum))/inBucket
		}
		lower, prevCum = b.UpperBound, b.CumulativeCount
	}
	return m.Buckets[len(m.Buckets)-1].UpperBound
}

// traceCmd fetches a node's /debug/trace ring and prints the cascade
// decisions chronologically.
func traceCmd(manager string, args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	node := fs.String("node", "", "node base URL (default: the manager)")
	n := fs.Int("n", 32, "number of most-recent events to show")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := *node
	if base == "" {
		base = manager
	}
	resp, err := client.Get(fmt.Sprintf("%s/debug/trace?n=%d", base, *n))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("trace", resp)
	}
	var tr telemetry.TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return err
	}
	fmt.Printf("%d cascade decisions recorded, %d retained\n", tr.Total, tr.Retained)
	for _, e := range tr.Events {
		fmt.Printf("#%-6d %s %-9s node=%s vm=%s levels=%s reached=%s target=%v dur=%v",
			e.Seq, e.Time.Format(time.RFC3339), e.Kind, e.Node, e.VM, e.Levels, e.LevelReached, e.Target, e.Duration)
		if !e.Shortfall.IsZero() {
			fmt.Printf(" shortfall=%v", e.Shortfall)
		}
		if e.DeadlineExceeded {
			fmt.Print(" deadline-exceeded")
		}
		if e.AppFailed {
			fmt.Print(" app-failed")
		}
		if e.OSFailed {
			fmt.Print(" os-failed")
		}
		if e.Err != "" {
			fmt.Printf(" err=%q", e.Err)
		}
		fmt.Println()
	}
	return nil
}

func httpError(op string, resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("%s: %s: %s", op, resp.Status, bytes.TrimSpace(msg))
}
