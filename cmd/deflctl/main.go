// Command deflctl is the operator CLI for the deflated cluster manager.
//
// Usage:
//
//	deflctl -manager http://localhost:7000 launch -name web-1 -cpus 4 -mem-gb 16 -app memcached-aware
//	deflctl -manager http://localhost:7000 launch -name batch-1 -app kcompile -priority low -min-frac 0.25
//	deflctl -manager http://localhost:7000 release -name web-1
//	deflctl -manager http://localhost:7000 status -servers
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"deflation/internal/cluster"
	"deflation/internal/restypes"
	"deflation/internal/vm"
)

func main() {
	manager := flag.String("manager", "http://localhost:7000", "manager base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}
	var err error
	switch args[0] {
	case "launch":
		err = launch(*manager, args[1:])
	case "release":
		err = release(*manager, args[1:])
	case "status":
		err = status(*manager, args[1:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "deflctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: deflctl [-manager URL] <command> [flags]

commands:
  launch  -name NAME [-cpus N] [-mem-gb N] [-app KIND] [-priority low|high] [-min-frac F] [-warm]
  release -name NAME
  status  [-servers]`)
	os.Exit(2)
}

func launch(manager string, args []string) error {
	fs := flag.NewFlagSet("launch", flag.ExitOnError)
	name := fs.String("name", "", "VM name (required)")
	cpus := fs.Float64("cpus", 4, "vCPUs")
	memGB := fs.Float64("mem-gb", 16, "memory (GB)")
	diskMBps := fs.Float64("disk-mbps", 400, "disk bandwidth (MB/s)")
	netMBps := fs.Float64("net-mbps", 1250, "network bandwidth (MB/s)")
	app := fs.String("app", "elastic", "application kind (see cluster.AppKinds)")
	priority := fs.String("priority", "low", "low (deflatable) or high")
	minFrac := fs.Float64("min-frac", 0, "minimum size as a fraction of nominal")
	warm := fs.Bool("warm", true, "mark the guest long-running (memory host-resident)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("launch: -name is required")
	}
	size := restypes.V(*cpus, *memGB*1024, *diskMBps, *netMBps)
	spec := cluster.LaunchSpec{
		Name:    *name,
		Size:    size,
		MinSize: size.Scale(*minFrac),
		AppKind: *app,
		Warm:    *warm,
	}
	if *priority == "high" {
		spec.Priority = vm.HighPriority
		spec.MinSize = restypes.Vector{}
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := http.Post(manager+"/v1/vms", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return httpError("launch", resp)
	}
	var lr cluster.LaunchResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		return err
	}
	fmt.Printf("launched %s on %s", *name, lr.Server)
	if len(lr.Report.Deflated) > 0 {
		fmt.Printf(" (deflated: %v)", lr.Report.Deflated)
	}
	if len(lr.Report.Preempted) > 0 {
		fmt.Printf(" (preempted: %v)", lr.Report.Preempted)
	}
	fmt.Println()
	return nil
}

func release(manager string, args []string) error {
	fs := flag.NewFlagSet("release", flag.ExitOnError)
	name := fs.String("name", "", "VM name (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("release: -name is required")
	}
	req, err := http.NewRequest(http.MethodDelete, manager+"/v1/vms/"+*name, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return httpError("release", resp)
	}
	fmt.Printf("released %s\n", *name)
	return nil
}

func status(manager string, args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	servers := fs.Bool("servers", false, "include per-server detail")
	if err := fs.Parse(args); err != nil {
		return err
	}
	url := manager + "/v1/cluster"
	if *servers {
		url += "?servers=true"
	}
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("status", resp)
	}
	var cs cluster.ClusterState
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		return err
	}
	fmt.Printf("vms: %d  rejected: %d  preemptions: %d  overcommit mean/max: %.2f/%.2f\n",
		cs.VMs, cs.Rejected, cs.Preemptions, cs.MeanOC, cs.MaxOC)
	for _, s := range cs.Servers {
		fmt.Printf("  %-12s mode=%-15s oc=%.2f free=%v\n", s.Name, s.Mode, s.Overcommitment, s.Free)
		for _, v := range s.VMs {
			fmt.Printf("    %-14s %-5s app=%-16s alloc=%v tput=%.2f\n",
				v.Name, v.Priority, v.App, v.Allocation, v.Throughput)
		}
	}
	return nil
}

func httpError(op string, resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("%s: %s: %s", op, resp.Status, bytes.TrimSpace(msg))
}
