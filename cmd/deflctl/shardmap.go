package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"

	"deflation/internal/cluster"
	"deflation/internal/shard"
)

// shardmap prints a federated manager's shard map: version, membership,
// and any adoption overlays, plus (with -key) which shard owns a given VM
// or node name.
func shardmap(manager string, args []string) error {
	fs := flag.NewFlagSet("shardmap", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "print the raw JSON response")
	key := fs.String("key", "", "also resolve this VM/node name to its owning shard")
	if err := fs.Parse(args); err != nil {
		return err
	}
	resp, err := client.Get(manager + "/v1/shardmap")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("shardmap", resp)
	}
	var m shard.Map
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	}
	v := shard.NewView(m)
	fmt.Printf("shard map v%d  (%d members)\n", m.Version, len(m.Members))
	for _, mem := range m.Members {
		note := ""
		if adopter, ok := m.Adopted[mem.ID]; ok {
			note = fmt.Sprintf("  [dead; served by %s]", adopter)
		}
		fmt.Printf("  %-12s %s%s\n", mem.ID, mem.URL, note)
	}
	if len(m.Adopted) > 0 {
		dead := make([]string, 0, len(m.Adopted))
		for d := range m.Adopted {
			dead = append(dead, d)
		}
		sort.Strings(dead)
		fmt.Printf("adoptions: %d (%v)\n", len(m.Adopted), dead)
	}
	if *key != "" {
		fmt.Printf("key %q: ring owner %s, served by %s\n", *key, v.RingOwner(*key), v.Owner(*key))
	}
	return nil
}

// adopt asks a federated manager to take over a dead peer's shard by
// replaying its journal from the shared state root. The peer must already
// be stopped: adoption fences it, but a live peer would keep serving until
// its next fenced command.
func adopt(manager string, args []string) error {
	fs := flag.NewFlagSet("adopt", flag.ExitOnError)
	dead := fs.String("shard", "", "dead shard ID to adopt (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dead == "" {
		return fmt.Errorf("adopt: -shard is required")
	}
	resp, err := client.Post(manager+"/v1/adopt?shard="+*dead, "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("adopt", resp)
	}
	var rep cluster.RecoveryReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return err
	}
	fmt.Printf("adopted %s: %d placements recovered (replayed %d records; %d adopted, %d replaced, %d lost, %d reasserted, %d stale released)\n",
		*dead, rep.Placements, rep.RecordsReplayed, rep.Adopted, rep.Replaced,
		rep.Lost, rep.Reasserted, rep.StaleReleased)
	return nil
}
