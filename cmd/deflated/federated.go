package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"deflation/internal/cluster"
	"deflation/internal/shard"
	"deflation/internal/telemetry"
)

// parsePolicy maps the -policy flag to a placement policy.
func parsePolicy(name string) (cluster.PlacementPolicy, error) {
	switch name {
	case "best-fit":
		return cluster.BestFit, nil
	case "first-fit":
		return cluster.FirstFit, nil
	case "2-choices":
		return cluster.TwoChoices, nil
	case "worst-fit":
		return cluster.WorstFit, nil
	}
	return cluster.BestFit, fmt.Errorf("unknown policy %q", name)
}

// federatedOptions carries the -shard-* flag values from main.
type federatedOptions struct {
	shardID     string
	listen      string
	advertise   string
	stateRoot   string
	peers       []string // "id=url"
	vnodes      int
	gossipEvery time.Duration
	policy      cluster.PlacementPolicy
	seed        int64
	snapEvery   int
	syncEvery   int
	heartbeat   time.Duration
	maxMisses   int
	drain       time.Duration
}

// runFederated serves one shard of a federated control plane: this
// manager recovers its own journal under <state-root>/<shard-id>, mounts
// it behind a shard.Router (ring-routing keyed requests, 307-redirecting
// the rest to peers), gossips the seq-versioned shard map, and exposes
// POST /v1/adopt?shard=ID so an operator (deflctl adopt) can have it take
// over a dead peer's journal — possible because every shard journals
// under the same shared state root.
func runFederated(opt federatedOptions) {
	if opt.stateRoot == "" {
		log.Fatalf("deflated: -shard-id requires -state-root (shared journal root; adoption opens peers' journals there)")
	}
	if opt.advertise == "" {
		host := opt.listen
		if strings.HasPrefix(host, ":") {
			host = "127.0.0.1" + host
		}
		opt.advertise = "http://" + host
	}
	members := []shard.Member{{ID: opt.shardID, URL: opt.advertise}}
	for _, p := range opt.peers {
		id, url, ok := strings.Cut(p, "=")
		if !ok || id == "" || url == "" {
			log.Fatalf("deflated: bad -peer %q (want id=url)", p)
		}
		members = append(members, shard.Member{ID: id, URL: url})
	}
	initial := shard.Map{Version: 1, VNodes: opt.vnodes, Members: members}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	sink := telemetry.NewSink()

	durFor := func(dir string) cluster.DurabilityConfig {
		return cluster.DurabilityConfig{
			Dir:           filepath.Join(opt.stateRoot, dir),
			LeaderID:      opt.shardID,
			SnapshotEvery: opt.snapEvery,
			SyncEvery:     opt.syncEvery,
			// Probe-free re-dial of journaled agents: an agent partitioned
			// at recovery time must NOT orphan its placements — it would be
			// double-placed when the partition heals.
			DialNode: func(name, url string) (cluster.Node, error) {
				return cluster.NewRemoteNodeNamed(name, url, cluster.RetryPolicy{}), nil
			},
		}
	}
	boot := func(dir string) (*cluster.ManagerAPI, *cluster.RecoveryReport, error) {
		mgr, rep, err := cluster.AdoptJournal(durFor(dir), nil, opt.policy, opt.seed)
		if err != nil {
			return nil, nil, err
		}
		mgr.SetHealthPolicy(cluster.HealthPolicy{MaxMisses: opt.maxMisses})
		mgr.SetTelemetry(sink)
		api, err := cluster.NewManagerAPI(mgr)
		if err != nil {
			return nil, nil, err
		}
		api.SetRecovery(rep)
		return api, rep, nil
	}

	api, rep, err := boot(opt.shardID)
	if err != nil {
		log.Fatalf("deflated: recovering shard %s: %v", opt.shardID, err)
	}
	api.AttachTelemetry(sink)
	log.Printf("deflated: shard %s recovered %d placements (replayed %d records)",
		opt.shardID, rep.Placements, rep.RecordsReplayed)

	rt := shard.NewRouter(opt.shardID, shard.NewMapStore(initial))
	rt.Mount(opt.shardID, api.Handler())

	// Served shards (own + adopted) for the failure-detector sweep.
	var mu sync.Mutex
	served := []*cluster.ManagerAPI{api}

	mux := http.NewServeMux()
	mux.Handle("/", rt.Handler())
	sink.Attach(mux)
	// Adoption is an explicit operator action (deflctl adopt): automatic
	// takeover without corroboration risks adopting a partitioned — not
	// dead — peer, and PR 6's corroborated-promotion machinery covers the
	// standby path. The caller must have SIGKILL'd (or otherwise fenced)
	// the peer first; the epoch bump in AdoptJournal fences any survivor.
	mux.HandleFunc("POST /v1/adopt", func(w http.ResponseWriter, r *http.Request) {
		dead := r.URL.Query().Get("shard")
		if dead == "" {
			http.Error(w, "deflated: /v1/adopt needs ?shard=ID", http.StatusBadRequest)
			return
		}
		if dead == opt.shardID {
			http.Error(w, "deflated: cannot adopt own shard", http.StatusConflict)
			return
		}
		for _, id := range rt.Mounted() {
			if id == dead {
				http.Error(w, fmt.Sprintf("deflated: %s already served here", dead), http.StatusConflict)
				return
			}
		}
		adoptedAPI, adoptedRep, err := boot(dead)
		if err != nil {
			http.Error(w, fmt.Sprintf("deflated: adopting %s: %v", dead, err), http.StatusInternalServerError)
			return
		}
		rt.Mount(dead, adoptedAPI.Handler())
		rt.Store().Adopt(dead, opt.shardID)
		mu.Lock()
		served = append(served, adoptedAPI)
		mu.Unlock()
		go rt.GossipOnce(context.Background(), nil)
		log.Printf("deflated: adopted shard %s (replayed %d records; %d lost, %d replaced)",
			dead, adoptedRep.RecordsReplayed, adoptedRep.Lost, adoptedRep.Replaced)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(adoptedRep)
	})

	if opt.gossipEvery > 0 {
		go rt.Gossip(ctx, &http.Client{Timeout: 5 * time.Second}, opt.gossipEvery)
	}
	if opt.heartbeat > 0 {
		go func() {
			tick := time.NewTicker(opt.heartbeat)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					mu.Lock()
					apis := append([]*cluster.ManagerAPI(nil), served...)
					mu.Unlock()
					for _, a := range apis {
						for _, ev := range a.ProbeHealth() {
							log.Printf("deflated: health: %s node=%s vm=%s", ev.Kind, ev.Node, ev.VM)
						}
					}
				}
			}
		}()
	}

	srv := cluster.NewHTTPServer(opt.listen, mux)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("deflated: shard %s serving on %s (%d members, gossip %v)",
		opt.shardID, opt.listen, len(members), opt.gossipEvery)

	select {
	case err := <-errc:
		log.Fatalf("deflated: %v", err)
	case <-ctx.Done():
		stop()
		log.Printf("deflated: shutting down (draining for up to %v)", opt.drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), opt.drain)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("deflated: drain incomplete: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("deflated: %v", err)
		}
		log.Printf("deflated: stopped")
	}
}
