// Command deflated runs the centralized deflation-aware cluster manager
// (§5). It either manages an in-process simulated cluster (-servers N) or
// connects to remote deflagent controllers (-controller URL, repeatable),
// and serves the manager REST API for cmd/deflctl.
//
// Usage:
//
//	deflated -listen :7000 -servers 8                       # simulated fleet
//	deflated -listen :7000 \
//	    -controller http://10.0.0.1:7070 \
//	    -controller http://10.0.0.2:7070                    # remote fleet
//	deflated -listen :7000 -state-dir /var/lib/deflated \
//	    -controller http://10.0.0.1:7070                    # durable manager
//
// With -state-dir, every placement and failure-detector transition is
// journaled; on start the manager recovers from the journal and reconciles
// against each node's actual VM inventory, so a SIGKILL'd manager restarts
// without evicting healthy workloads.
//
// With -standby-of, the process runs as a hot standby instead: it tails the
// leader's write-ahead log over HTTP into a warm in-memory replica and
// serves a read-only /v1/state reporting replication lag. When the leader
// misses -dead-after consecutive polls the lease is considered expired and
// the standby promotes itself — it adopts the fleet under a bumped fencing
// epoch (stale commands from the deposed leader are rejected by every
// controller), reconciles against live inventories without evicting
// healthy workloads, and swaps in the full manager API on the same
// listener:
//
//	deflated -listen :7001 -state-dir /var/lib/deflated-standby \
//	    -standby-of http://127.0.0.1:7000 \
//	    -controller http://10.0.0.1:7070                    # hot standby
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"deflation/internal/cascade"
	"deflation/internal/cluster"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/telemetry"
)

type urlList []string

func (u *urlList) String() string     { return strings.Join(*u, ",") }
func (u *urlList) Set(s string) error { *u = append(*u, s); return nil }

// swapHandler atomically swaps the /v1/ handler when a standby promotes.
type swapHandler struct{ h atomic.Value }

func (s *swapHandler) Set(h http.Handler) { s.h.Store(h) }
func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.Load().(http.Handler).ServeHTTP(w, r)
}

func main() {
	var controllers urlList
	var (
		listen    = flag.String("listen", ":7000", "address to serve the manager API on")
		servers   = flag.Int("servers", 0, "number of in-process simulated servers (ignored with -controller)")
		cpus      = flag.Float64("cpus", 32, "simulated servers: physical CPU cores")
		memGB     = flag.Float64("mem-gb", 128, "simulated servers: physical memory (GB)")
		policy    = flag.String("policy", "best-fit", "placement policy: best-fit, first-fit, 2-choices")
		seed      = flag.Int64("seed", 1, "seed for the 2-choices policy")
		heartbeat = flag.Duration("heartbeat", 10*time.Second, "failure-detector probe interval (0 disables)")
		maxMisses = flag.Int("max-misses", 3, "consecutive heartbeat misses before a node is declared dead")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
		stateDir  = flag.String("state-dir", "", "directory for the durable state journal (empty = in-memory only)")
		snapEvery = flag.Int("snapshot-every", 256, "journal records between compacted snapshots")
		syncEvery = flag.Int("sync-every", 8, "journal records between batched fsyncs")
		standbyOf = flag.String("standby-of", "", "run as hot standby of this leader URL; promote on lease expiry")
		pollEvery = flag.Duration("poll-interval", 500*time.Millisecond, "standby: WAL tailing interval")
		deadAfter = flag.Int("dead-after", 6, "standby: consecutive failed polls before the leader's lease expires")
		corrobWin = flag.Duration("corroborate-window", 30*time.Second, "standby: hold promotion if any controller saw the leader's epoch asserted this recently")

		shardID     = flag.String("shard-id", "", "run as one shard of a federated control plane under this member ID")
		advertise   = flag.String("advertise", "", "federated: this shard's URL as peers reach it (default http://<listen>)")
		stateRoot   = flag.String("state-root", "", "federated: shared journal root; each shard journals under <root>/<shard-id>")
		vnodes      = flag.Int("vnodes", 0, "federated: consistent-hash virtual nodes per shard (0 = default)")
		gossipEvery = flag.Duration("gossip", 2*time.Second, "federated: shard-map gossip interval (0 disables)")
	)
	var peers urlList
	flag.Var(&controllers, "controller", "remote deflagent URL (repeatable)")
	flag.Var(&peers, "peer", "federated: peer shard as id=url (repeatable)")
	flag.Parse()

	if *shardID != "" {
		pol, err := parsePolicy(*policy)
		if err != nil {
			log.Fatalf("deflated: %v", err)
		}
		runFederated(federatedOptions{
			shardID: *shardID, listen: *listen, advertise: *advertise,
			stateRoot: *stateRoot, peers: peers, vnodes: *vnodes,
			gossipEvery: *gossipEvery, policy: pol, seed: *seed,
			snapEvery: *snapEvery, syncEvery: *syncEvery,
			heartbeat: *heartbeat, maxMisses: *maxMisses, drain: *drain,
		})
		return
	}

	var nodes []cluster.Node
	switch {
	case len(controllers) > 0:
		for _, u := range controllers {
			n, err := cluster.NewRemoteNode(u)
			if err != nil {
				log.Fatalf("deflated: %v", err)
			}
			log.Printf("deflated: connected to %s (%s)", n.Name(), u)
			nodes = append(nodes, n)
		}
	default:
		if *servers <= 0 {
			*servers = 4
		}
		for i := 0; i < *servers; i++ {
			h, err := hypervisor.NewHost(hypervisor.Config{
				Name:     fmt.Sprintf("sim-%02d", i),
				Capacity: restypes.V(*cpus, *memGB*1024, 4000, 4000),
			})
			if err != nil {
				log.Fatalf("deflated: %v", err)
			}
			nodes = append(nodes, cluster.NewLocalController(h, cascade.AllLevels(), cluster.ModeDeflation))
		}
		log.Printf("deflated: simulating %d servers (%g cores / %g GB each)", *servers, *cpus, *memGB)
	}

	pol, err := parsePolicy(*policy)
	if err != nil {
		log.Fatalf("deflated: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Telemetry: cascade decisions, placement and failure-detector counters,
	// RPC latencies (remote fleets), replication lag (standbys), plus
	// scrape-time cluster gauges. Served on the same listener as the API, so
	// graceful shutdown covers it.
	sink := telemetry.NewSink()

	// Fail-stop on journal write errors: a manager whose WAL has lied once
	// must stop commanding the cluster so the standby's lease expires and it
	// takes over from the last durable state.
	walErrC := make(chan error, 1)
	// The fencing token is epoch + identity: the identity breaks same-epoch
	// ties between two managers that each self-allocated the same term (a
	// crashed leader's restart racing its standby's promotion). Host plus
	// state directory uniquely names a manager instance on a fleet.
	leaderID := ""
	if *stateDir != "" {
		host, _ := os.Hostname()
		dir := *stateDir
		if abs, err := filepath.Abs(dir); err == nil {
			dir = abs
		}
		leaderID = host + ":" + dir
	}
	dur := cluster.DurabilityConfig{
		Dir: *stateDir, LeaderID: leaderID, SnapshotEvery: *snapEvery, SyncEvery: *syncEvery,
		OnWALError: func(err error) {
			select {
			case walErrC <- err:
			default:
			}
		},
	}

	// lead wires a manager into the serving stack — manager API, telemetry,
	// heartbeat failure detector — and publishes it on the /v1/ handler. It
	// runs at startup for leaders and at promotion time for standbys.
	handler := &swapHandler{}
	var leader atomic.Pointer[cluster.Manager]
	deposedC := make(chan struct{}, 1)
	lead := func(mgr *cluster.Manager, recovery *cluster.RecoveryReport) {
		mgr.SetHealthPolicy(cluster.HealthPolicy{MaxMisses: *maxMisses})
		// Stand down the moment any node fences one of our commands: a
		// stale-epoch rejection proves a newer leader owns the fleet, and a
		// deposed manager that keeps serving is a zombie acking commands the
		// cluster will never obey.
		mgr.SetOnDeposed(func() {
			select {
			case deposedC <- struct{}{}:
			default:
			}
		})
		api, err := cluster.NewManagerAPI(mgr)
		if err != nil {
			log.Fatalf("deflated: %v", err)
		}
		api.SetRecovery(recovery)
		mgr.SetTelemetry(sink)
		api.AttachTelemetry(sink)
		if j := mgr.Journal(); j != nil {
			j.SetTelemetry(sink)
			recovery.Publish(sink)
		}
		// Failure detector: heartbeat every server, evict and re-place VMs
		// from nodes that miss too many probes in a row.
		if *heartbeat > 0 {
			go func() {
				tick := time.NewTicker(*heartbeat)
				defer tick.Stop()
				for {
					select {
					case <-ctx.Done():
						return
					case <-tick.C:
						for _, ev := range api.ProbeHealth() {
							switch ev.Kind {
							case cluster.NodeDown:
								log.Printf("deflated: node %s dead (%v); evacuating", ev.Node, ev.Err)
							case cluster.NodeUp:
								log.Printf("deflated: node %s rejoined", ev.Node)
							case cluster.VMEvicted:
								log.Printf("deflated: VM %s evicted from dead node %s", ev.VM, ev.Node)
							case cluster.VMReplaced:
								log.Printf("deflated: VM %s re-placed (preempted %v)", ev.VM, ev.Preempted)
							case cluster.VMLost:
								log.Printf("deflated: VM %s lost: %v", ev.VM, ev.Err)
							case cluster.VMAdopted:
								log.Printf("deflated: VM %s adopted from rejoined node %s", ev.VM, ev.Node)
							case cluster.VMStaleReleased:
								log.Printf("deflated: stale VM %s released from rejoined node %s", ev.VM, ev.Node)
							}
						}
					}
				}
			}()
		}
		leader.Store(mgr)
		handler.Set(api.Handler())
	}

	switch {
	case *standbyOf != "":
		if len(controllers) == 0 {
			log.Fatalf("deflated: -standby-of requires -controller URLs (the standby adopts the leader's fleet on promotion)")
		}
		if *stateDir == "" {
			log.Fatalf("deflated: -standby-of requires -state-dir (the journal for the standby's own term)")
		}
		f, err := cluster.NewFollower(cluster.FollowerConfig{
			Leader: *standbyOf, PollInterval: *pollEvery, DeadAfter: *deadAfter,
			Controllers: controllers, CorroborationWindow: *corrobWin,
		})
		if err != nil {
			log.Fatalf("deflated: %v", err)
		}
		f.SetTelemetry(sink)
		sapi, err := cluster.NewStandbyAPI(f)
		if err != nil {
			log.Fatalf("deflated: %v", err)
		}
		handler.Set(sapi.Handler())
		go func() {
			if !f.Run(ctx) {
				return // shutting down while still a standby
			}
			st := f.Status()
			log.Printf("deflated: leader %s lease expired (%d missed polls, replica at seq %d); promoting",
				*standbyOf, st.ConsecutiveMisses, st.AppliedSeq)
			mgr, rep, err := cluster.PromoteStandby(dur, f.ReplicaState(), nodes, pol, *seed)
			if err != nil {
				log.Fatalf("deflated: promoting: %v", err)
			}
			log.Printf("deflated: promoted to leader at epoch %d in %v "+
				"(%d placements; repairs: %d adopted, %d replaced, %d lost, %d reasserted, %d stale)",
				mgr.Epoch(), rep.Duration.Round(time.Millisecond), rep.Placements,
				rep.Adopted, rep.Replaced, rep.Lost, rep.Reasserted, rep.StaleReleased)
			lead(mgr, rep)
		}()
		log.Printf("deflated: standby for %s on %s (polling every %v, lease %d misses)",
			*standbyOf, *listen, *pollEvery, *deadAfter)

	case *stateDir != "":
		mgr, recovery, err := cluster.Recover(dur, nodes, pol, *seed)
		if err != nil {
			log.Fatalf("deflated: recovering from %s: %v", *stateDir, err)
		}
		log.Printf("deflated: recovered %d placements from %s in %v "+
			"(replayed %d records; repairs: %d adopted, %d replaced, %d lost, %d reasserted, %d stale)",
			recovery.Placements, *stateDir, recovery.Duration.Round(time.Millisecond),
			recovery.RecordsReplayed, recovery.Adopted, recovery.Replaced,
			recovery.Lost, recovery.Reasserted, recovery.StaleReleased)
		// A durable leader starts a new term: the epoch bump fences off any
		// deposed predecessor still holding connections to the fleet.
		log.Printf("deflated: assumed leadership at epoch %d", mgr.BecomeLeader())
		lead(mgr, recovery)

	default:
		mgr, err := cluster.NewManager(nodes, pol, *seed)
		if err != nil {
			log.Fatalf("deflated: %v", err)
		}
		lead(mgr, nil)
	}

	mux := http.NewServeMux()
	mux.Handle("/v1/", handler)
	sink.Attach(mux)

	srv := cluster.NewHTTPServer(*listen, mux)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("deflated: managing %d servers with %s placement on %s", len(nodes), pol, *listen)

	select {
	case err := <-errc:
		log.Fatalf("deflated: %v", err)
	case err := <-walErrC:
		// No drain: a poisoned journal means no command can be made durable,
		// so serving on would hand out acknowledgements the WAL cannot back.
		log.Printf("deflated: journal write failed: %v", err)
		log.Printf("deflated: failing stop so the standby can take over")
		os.Exit(1)
	case <-deposedC:
		// No drain here either: every mutating handler already refuses with
		// 503 once the manager latches deposed, and the sooner this process
		// exits the sooner a supervisor can restart it as a standby of the
		// new leader.
		log.Printf("deflated: fenced off by a newer leadership epoch; standing down")
		os.Exit(2)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		log.Printf("deflated: shutting down (draining for up to %v)", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("deflated: drain incomplete: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("deflated: %v", err)
		}
		if mgr := leader.Load(); mgr != nil {
			if j := mgr.Journal(); j != nil {
				j.Close()
			}
		}
		log.Printf("deflated: stopped")
	}
}
