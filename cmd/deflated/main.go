// Command deflated runs the centralized deflation-aware cluster manager
// (§5). It either manages an in-process simulated cluster (-servers N) or
// connects to remote deflagent controllers (-controller URL, repeatable),
// and serves the manager REST API for cmd/deflctl.
//
// Usage:
//
//	deflated -listen :7000 -servers 8                       # simulated fleet
//	deflated -listen :7000 \
//	    -controller http://10.0.0.1:7070 \
//	    -controller http://10.0.0.2:7070                    # remote fleet
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	"deflation/internal/cascade"
	"deflation/internal/cluster"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
)

type urlList []string

func (u *urlList) String() string     { return strings.Join(*u, ",") }
func (u *urlList) Set(s string) error { *u = append(*u, s); return nil }

func main() {
	var controllers urlList
	var (
		listen  = flag.String("listen", ":7000", "address to serve the manager API on")
		servers = flag.Int("servers", 0, "number of in-process simulated servers (ignored with -controller)")
		cpus    = flag.Float64("cpus", 32, "simulated servers: physical CPU cores")
		memGB   = flag.Float64("mem-gb", 128, "simulated servers: physical memory (GB)")
		policy  = flag.String("policy", "best-fit", "placement policy: best-fit, first-fit, 2-choices")
		seed    = flag.Int64("seed", 1, "seed for the 2-choices policy")
	)
	flag.Var(&controllers, "controller", "remote deflagent URL (repeatable)")
	flag.Parse()

	var nodes []cluster.Node
	switch {
	case len(controllers) > 0:
		for _, u := range controllers {
			n, err := cluster.NewRemoteNode(u)
			if err != nil {
				log.Fatalf("deflated: %v", err)
			}
			log.Printf("deflated: connected to %s (%s)", n.Name(), u)
			nodes = append(nodes, n)
		}
	default:
		if *servers <= 0 {
			*servers = 4
		}
		for i := 0; i < *servers; i++ {
			h, err := hypervisor.NewHost(hypervisor.Config{
				Name:     fmt.Sprintf("sim-%02d", i),
				Capacity: restypes.V(*cpus, *memGB*1024, 4000, 4000),
			})
			if err != nil {
				log.Fatalf("deflated: %v", err)
			}
			nodes = append(nodes, cluster.NewLocalController(h, cascade.AllLevels(), cluster.ModeDeflation))
		}
		log.Printf("deflated: simulating %d servers (%g cores / %g GB each)", *servers, *cpus, *memGB)
	}

	var pol cluster.PlacementPolicy
	switch *policy {
	case "best-fit":
		pol = cluster.BestFit
	case "first-fit":
		pol = cluster.FirstFit
	case "2-choices":
		pol = cluster.TwoChoices
	default:
		log.Fatalf("deflated: unknown policy %q", *policy)
	}

	mgr, err := cluster.NewManager(nodes, pol, *seed)
	if err != nil {
		log.Fatalf("deflated: %v", err)
	}
	api, err := cluster.NewManagerAPI(mgr)
	if err != nil {
		log.Fatalf("deflated: %v", err)
	}
	log.Printf("deflated: managing %d servers with %s placement on %s", len(nodes), pol, *listen)
	log.Fatal(http.ListenAndServe(*listen, api.Handler()))
}
