// Command deflated runs the centralized deflation-aware cluster manager
// (§5). It either manages an in-process simulated cluster (-servers N) or
// connects to remote deflagent controllers (-controller URL, repeatable),
// and serves the manager REST API for cmd/deflctl.
//
// Usage:
//
//	deflated -listen :7000 -servers 8                       # simulated fleet
//	deflated -listen :7000 \
//	    -controller http://10.0.0.1:7070 \
//	    -controller http://10.0.0.2:7070                    # remote fleet
//	deflated -listen :7000 -state-dir /var/lib/deflated \
//	    -controller http://10.0.0.1:7070                    # durable manager
//
// With -state-dir, every placement and failure-detector transition is
// journaled; on start the manager recovers from the journal and reconciles
// against each node's actual VM inventory, so a SIGKILL'd manager restarts
// without evicting healthy workloads.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"deflation/internal/cascade"
	"deflation/internal/cluster"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/telemetry"
)

type urlList []string

func (u *urlList) String() string     { return strings.Join(*u, ",") }
func (u *urlList) Set(s string) error { *u = append(*u, s); return nil }

func main() {
	var controllers urlList
	var (
		listen    = flag.String("listen", ":7000", "address to serve the manager API on")
		servers   = flag.Int("servers", 0, "number of in-process simulated servers (ignored with -controller)")
		cpus      = flag.Float64("cpus", 32, "simulated servers: physical CPU cores")
		memGB     = flag.Float64("mem-gb", 128, "simulated servers: physical memory (GB)")
		policy    = flag.String("policy", "best-fit", "placement policy: best-fit, first-fit, 2-choices")
		seed      = flag.Int64("seed", 1, "seed for the 2-choices policy")
		heartbeat = flag.Duration("heartbeat", 10*time.Second, "failure-detector probe interval (0 disables)")
		maxMisses = flag.Int("max-misses", 3, "consecutive heartbeat misses before a node is declared dead")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
		stateDir  = flag.String("state-dir", "", "directory for the durable state journal (empty = in-memory only)")
		snapEvery = flag.Int("snapshot-every", 256, "journal records between compacted snapshots")
		syncEvery = flag.Int("sync-every", 8, "journal records between batched fsyncs")
	)
	flag.Var(&controllers, "controller", "remote deflagent URL (repeatable)")
	flag.Parse()

	var nodes []cluster.Node
	switch {
	case len(controllers) > 0:
		for _, u := range controllers {
			n, err := cluster.NewRemoteNode(u)
			if err != nil {
				log.Fatalf("deflated: %v", err)
			}
			log.Printf("deflated: connected to %s (%s)", n.Name(), u)
			nodes = append(nodes, n)
		}
	default:
		if *servers <= 0 {
			*servers = 4
		}
		for i := 0; i < *servers; i++ {
			h, err := hypervisor.NewHost(hypervisor.Config{
				Name:     fmt.Sprintf("sim-%02d", i),
				Capacity: restypes.V(*cpus, *memGB*1024, 4000, 4000),
			})
			if err != nil {
				log.Fatalf("deflated: %v", err)
			}
			nodes = append(nodes, cluster.NewLocalController(h, cascade.AllLevels(), cluster.ModeDeflation))
		}
		log.Printf("deflated: simulating %d servers (%g cores / %g GB each)", *servers, *cpus, *memGB)
	}

	var pol cluster.PlacementPolicy
	switch *policy {
	case "best-fit":
		pol = cluster.BestFit
	case "first-fit":
		pol = cluster.FirstFit
	case "2-choices":
		pol = cluster.TwoChoices
	default:
		log.Fatalf("deflated: unknown policy %q", *policy)
	}

	var mgr *cluster.Manager
	var recovery *cluster.RecoveryReport
	if *stateDir != "" {
		var err error
		mgr, recovery, err = cluster.Recover(cluster.DurabilityConfig{
			Dir: *stateDir, SnapshotEvery: *snapEvery, SyncEvery: *syncEvery,
		}, nodes, pol, *seed)
		if err != nil {
			log.Fatalf("deflated: recovering from %s: %v", *stateDir, err)
		}
		log.Printf("deflated: recovered %d placements from %s in %v "+
			"(replayed %d records; repairs: %d adopted, %d replaced, %d lost, %d reasserted, %d stale)",
			recovery.Placements, *stateDir, recovery.Duration.Round(time.Millisecond),
			recovery.RecordsReplayed, recovery.Adopted, recovery.Replaced,
			recovery.Lost, recovery.Reasserted, recovery.StaleReleased)
	} else {
		var err error
		mgr, err = cluster.NewManager(nodes, pol, *seed)
		if err != nil {
			log.Fatalf("deflated: %v", err)
		}
	}
	mgr.SetHealthPolicy(cluster.HealthPolicy{MaxMisses: *maxMisses})
	api, err := cluster.NewManagerAPI(mgr)
	if err != nil {
		log.Fatalf("deflated: %v", err)
	}
	api.SetRecovery(recovery)

	// Telemetry: cascade decisions, placement and failure-detector counters,
	// RPC latencies (remote fleets), plus scrape-time cluster gauges. Served
	// on the same listener as the API, so graceful shutdown covers it.
	sink := telemetry.NewSink()
	mgr.SetTelemetry(sink)
	api.AttachTelemetry(sink)
	if j := mgr.Journal(); j != nil {
		j.SetTelemetry(sink)
		recovery.Publish(sink)
		defer j.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Failure detector: heartbeat every server, evict and re-place VMs from
	// nodes that miss too many probes in a row.
	if *heartbeat > 0 {
		go func() {
			tick := time.NewTicker(*heartbeat)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					for _, ev := range api.ProbeHealth() {
						switch ev.Kind {
						case cluster.NodeDown:
							log.Printf("deflated: node %s dead (%v); evacuating", ev.Node, ev.Err)
						case cluster.NodeUp:
							log.Printf("deflated: node %s rejoined", ev.Node)
						case cluster.VMEvicted:
							log.Printf("deflated: VM %s evicted from dead node %s", ev.VM, ev.Node)
						case cluster.VMReplaced:
							log.Printf("deflated: VM %s re-placed (preempted %v)", ev.VM, ev.Preempted)
						case cluster.VMLost:
							log.Printf("deflated: VM %s lost: %v", ev.VM, ev.Err)
						case cluster.VMAdopted:
							log.Printf("deflated: VM %s adopted from rejoined node %s", ev.VM, ev.Node)
						case cluster.VMStaleReleased:
							log.Printf("deflated: stale VM %s released from rejoined node %s", ev.VM, ev.Node)
						}
					}
				}
			}
		}()
	}

	mux := http.NewServeMux()
	mux.Handle("/v1/", api.Handler())
	sink.Attach(mux)

	srv := &http.Server{Addr: *listen, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("deflated: managing %d servers with %s placement on %s", len(nodes), pol, *listen)

	select {
	case err := <-errc:
		log.Fatalf("deflated: %v", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		log.Printf("deflated: shutting down (draining for up to %v)", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("deflated: drain incomplete: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("deflated: %v", err)
		}
		log.Printf("deflated: stopped")
	}
}
