// Command deflbench regenerates the paper's tables and figures from the
// repository's substrates and prints them as text tables.
//
// Usage:
//
//	deflbench -fig all          # every figure (slow: full 100-node sims)
//	deflbench -fig 1            # Figure 1
//	deflbench -fig 6 -quick     # Figure 6 panels, reduced sweep sizes
//
// Figures: 1, 5a, 5b, 5c, 5d, 6, 7a, 7b, 8a, 8b, 8c, 8d, plus the chaos
// fault-injection sweep (-fig chaos) and the migration-vs-deflation policy
// sweep (-fig migration).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"deflation/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure/table to regenerate (table1, table2, 1, 5a..5d, 6, 7a, 7b, 8a..8d, revenue, chaos, migration, all)")
	quick := flag.Bool("quick", false, "smaller sweeps for the cluster simulations")
	flag.Parse()

	runs := map[string]func(bool) (fmt.Stringer, error){
		"table1":    func(bool) (fmt.Stringer, error) { return wrap(experiments.Table1()) },
		"table2":    func(bool) (fmt.Stringer, error) { return wrap(experiments.Table2()) },
		"1":         func(bool) (fmt.Stringer, error) { return wrap(experiments.Fig1()) },
		"5a":        func(bool) (fmt.Stringer, error) { return wrap(experiments.Fig5a()) },
		"5b":        func(bool) (fmt.Stringer, error) { return wrap(experiments.Fig5b()) },
		"5c":        func(bool) (fmt.Stringer, error) { return wrap(experiments.Fig5c()) },
		"5d":        func(bool) (fmt.Stringer, error) { return wrap(experiments.Fig5d()) },
		"6":         runFig6,
		"7a":        func(bool) (fmt.Stringer, error) { return wrap(experiments.Fig7a()) },
		"7b":        func(bool) (fmt.Stringer, error) { return wrap(experiments.Fig7b()) },
		"8a":        func(bool) (fmt.Stringer, error) { return wrap(experiments.Fig8a()) },
		"8b":        func(bool) (fmt.Stringer, error) { return wrap(experiments.Fig8b()) },
		"8c":        runFig8c,
		"8d":        runFig8d,
		"revenue":   func(quick bool) (fmt.Stringer, error) { return wrap(experiments.Revenue(quick)) },
		"chaos":     runChaos,
		"migration": runMigration,
	}

	order := []string{"table1", "table2", "1", "5a", "5b", "5c", "5d", "6", "7a", "7b", "8a", "8b", "8c", "8d", "revenue", "chaos", "migration"}
	selected := order
	if *fig != "all" {
		if _, ok := runs[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "deflbench: unknown figure %q\n", *fig)
			os.Exit(2)
		}
		selected = []string{*fig}
	}

	for _, f := range selected {
		start := time.Now()
		out, err := runs[f](*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deflbench: figure %s: %v\n", f, err)
			os.Exit(1)
		}
		fmt.Println(out.String())
		fmt.Printf("(figure %s regenerated in %v)\n\n", f, time.Since(start).Round(time.Millisecond))
	}
}

// tabler adapts the experiment results' Table() to fmt.Stringer.
type tabler struct{ table string }

func (t tabler) String() string { return t.table }

func wrap[T interface{ Table() string }](r T, err error) (fmt.Stringer, error) {
	if err != nil {
		return nil, err
	}
	return tabler{r.Table()}, nil
}

func runFig6(bool) (fmt.Stringer, error) {
	out := ""
	for _, w := range experiments.Fig6Workloads() {
		r, err := experiments.Fig6(w)
		if err != nil {
			return nil, err
		}
		out += r.Table() + "\n"
	}
	return tabler{out}, nil
}

func runFig8c(quick bool) (fmt.Stringer, error) {
	cfg := experiments.Fig8cConfig{}
	if quick {
		cfg = experiments.QuickFig8cConfig()
	}
	return wrap(experiments.Fig8c(cfg))
}

func runFig8d(quick bool) (fmt.Stringer, error) {
	return wrap(experiments.Fig8d(quick, 0))
}

func runChaos(quick bool) (fmt.Stringer, error) {
	cfg := experiments.ChaosConfig{}
	if quick {
		cfg = experiments.QuickChaosConfig()
	}
	return wrap(experiments.Chaos(cfg))
}

func runMigration(quick bool) (fmt.Stringer, error) {
	cfg := experiments.FigMigrationConfig{}
	if quick {
		cfg = experiments.QuickFigMigrationConfig()
	}
	return wrap(experiments.FigMigration(cfg))
}
