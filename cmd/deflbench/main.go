// Command deflbench regenerates the paper's tables and figures from the
// repository's substrates and prints them as text tables.
//
// Usage:
//
//	deflbench -fig all              # every figure (slow: full 100-node sims)
//	deflbench -fig 1                # Figure 1
//	deflbench -fig 6 -quick         # Figure 6 panels, reduced sweep sizes
//	deflbench -fig fig8 -parallel 8 # Figure 8 panels, 8 sweep workers
//	deflbench -fig 8c -parallel 1   # exact legacy serial path
//
// Figures: 1, 5a, 5b, 5c, 5d, 6, 7a, 7b, 8a, 8b, 8c, 8d, plus the chaos
// fault-injection sweep (-fig chaos), the migration-vs-deflation policy
// sweep (-fig migration), the manager-HA failover sweep (-fig failover),
// the interactive SLO-deflation sweep (-fig slo): open-loop arrivals
// against a replicated web service, comparing the p99-targeting deflation
// policy with the utility-curve cascade across arrival rate × replica
// count × deflation fraction, and the multi-substrate sweep (-fig mixed):
// VM-only vs container-only vs alternating fleets across deflation
// fraction × workload mix, reporting reclamation depth, resize latency,
// p99, and OOM-kill counts. The scale sweep (-fig 8c-xl) extends Figure 8c
// along the fleet-size axis — 100/1k/10k nodes at constant per-server load,
// 1M arrivals in the 10k cell — and is excluded from "all" because of its
// size (-quick trims it to 100/1k nodes). Group aliases run whole panels:
// 5 (5a–5d), 7 (7a, 7b), 8 (8a–8d); a "fig" prefix is accepted everywhere
// (fig8c ≡ 8c).
//
// Every figure sweep fans its independent simulation cells out across
// -parallel workers (default GOMAXPROCS) with a deterministic merge, so
// output is bit-for-bit identical at any parallelism; -parallel 1 runs the
// legacy serial path. -memoize reuses results of identical simulation
// cells across sweeps (e.g. the chaos zero-fault row is exactly a Fig. 8c
// cell); it never changes results, only wall-clock time.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"deflation/internal/experiments"
	"deflation/internal/sweep"
)

func main() {
	fig := flag.String("fig", "all", "figure/table to regenerate (table1, table2, 1, 5a..5d, 6, 7a, 7b, 8a..8d, 8c-xl, revenue, chaos, migration, failover, slo, mixed, group aliases 5/7/8, all)")
	quick := flag.Bool("quick", false, "smaller sweeps for the cluster simulations")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep workers; 1 = exact legacy serial path, N>1 fans cells out over N goroutines")
	memoize := flag.Bool("memoize", true, "reuse results of identical simulation cells across sweeps (never changes output)")
	progress := flag.Bool("progress", true, "live sweep progress on stderr")
	flag.Parse()

	experiments.SetParallelism(*parallel)
	experiments.SetMemoization(*memoize)
	if *progress {
		experiments.SetSweepProgress(printProgress)
	}

	runs := map[string]func(bool) (fmt.Stringer, error){
		"table1":    func(bool) (fmt.Stringer, error) { return wrap(experiments.Table1()) },
		"table2":    func(bool) (fmt.Stringer, error) { return wrap(experiments.Table2()) },
		"1":         func(bool) (fmt.Stringer, error) { return wrap(experiments.Fig1()) },
		"5a":        func(bool) (fmt.Stringer, error) { return wrap(experiments.Fig5a()) },
		"5b":        func(bool) (fmt.Stringer, error) { return wrap(experiments.Fig5b()) },
		"5c":        func(bool) (fmt.Stringer, error) { return wrap(experiments.Fig5c()) },
		"5d":        func(bool) (fmt.Stringer, error) { return wrap(experiments.Fig5d()) },
		"6":         runFig6,
		"7a":        func(bool) (fmt.Stringer, error) { return wrap(experiments.Fig7a()) },
		"7b":        func(bool) (fmt.Stringer, error) { return wrap(experiments.Fig7b()) },
		"8a":        func(bool) (fmt.Stringer, error) { return wrap(experiments.Fig8a()) },
		"8b":        func(bool) (fmt.Stringer, error) { return wrap(experiments.Fig8b()) },
		"8c":        runFig8c,
		"8c-xl":     runFig8cXL,
		"8d":        runFig8d,
		"revenue":   func(quick bool) (fmt.Stringer, error) { return wrap(experiments.Revenue(quick)) },
		"chaos":     runChaos,
		"migration": runMigration,
		"failover":  runFailover,
		"slo":       runFigSLO,
		"mixed":     runFigMixed,
	}

	order := []string{"table1", "table2", "1", "5a", "5b", "5c", "5d", "6", "7a", "7b", "8a", "8b", "8c", "8d", "revenue", "chaos", "migration", "failover", "slo", "mixed"}
	groups := map[string][]string{
		"5": {"5a", "5b", "5c", "5d"},
		"7": {"7a", "7b"},
		"8": {"8a", "8b", "8c", "8d"},
	}

	selected := order
	if *fig != "all" {
		name := strings.TrimPrefix(strings.ToLower(*fig), "fig")
		if g, ok := groups[name]; ok {
			selected = g
		} else if _, ok := runs[name]; ok {
			selected = []string{name}
		} else {
			fmt.Fprintf(os.Stderr, "deflbench: unknown figure %q\n", *fig)
			os.Exit(2)
		}
	}

	for _, f := range selected {
		start := time.Now()
		out, err := runs[f](*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deflbench: figure %s: %v\n", f, err)
			os.Exit(1)
		}
		fmt.Println(out.String())
		fmt.Printf("(figure %s regenerated in %v)\n\n", f, time.Since(start).Round(time.Millisecond))
	}
}

// printProgress renders one sweep's live state on stderr, overwriting the
// line until the sweep completes.
func printProgress(p sweep.Progress) {
	var b strings.Builder
	fmt.Fprintf(&b, "\r%-12s %3d/%3d cells", p.Label, p.Done, p.Total)
	if p.CacheHits > 0 {
		fmt.Fprintf(&b, " (%d cached)", p.CacheHits)
	}
	if p.Errors > 0 {
		fmt.Fprintf(&b, " (%d failed)", p.Errors)
	}
	if p.ETA > 0 {
		fmt.Fprintf(&b, "  ETA %-8v", p.ETA.Round(time.Second))
	}
	if p.Done == p.Total {
		fmt.Fprintf(&b, "  done in %v", p.Elapsed.Round(time.Millisecond))
		b.WriteByte('\n')
	}
	fmt.Fprint(os.Stderr, b.String())
}

// tabler adapts the experiment results' Table() to fmt.Stringer.
type tabler struct{ table string }

func (t tabler) String() string { return t.table }

func wrap[T interface{ Table() string }](r T, err error) (fmt.Stringer, error) {
	if err != nil {
		return nil, err
	}
	return tabler{r.Table()}, nil
}

func runFig6(bool) (fmt.Stringer, error) {
	out := ""
	for _, w := range experiments.Fig6Workloads() {
		r, err := experiments.Fig6(w)
		if err != nil {
			return nil, err
		}
		out += r.Table() + "\n"
	}
	return tabler{out}, nil
}

func runFig8c(quick bool) (fmt.Stringer, error) {
	cfg := experiments.Fig8cConfig{}
	if quick {
		cfg = experiments.QuickFig8cConfig()
	}
	return wrap(experiments.Fig8c(cfg))
}

func runFig8cXL(quick bool) (fmt.Stringer, error) {
	cfg := experiments.Fig8cXLConfig{}
	if quick {
		cfg = experiments.QuickFig8cXLConfig()
	}
	return wrap(experiments.Fig8cXL(cfg))
}

func runFig8d(quick bool) (fmt.Stringer, error) {
	return wrap(experiments.Fig8d(quick, 0))
}

func runChaos(quick bool) (fmt.Stringer, error) {
	cfg := experiments.ChaosConfig{}
	if quick {
		cfg = experiments.QuickChaosConfig()
	}
	return wrap(experiments.Chaos(cfg))
}

func runMigration(quick bool) (fmt.Stringer, error) {
	cfg := experiments.FigMigrationConfig{}
	if quick {
		cfg = experiments.QuickFigMigrationConfig()
	}
	return wrap(experiments.FigMigration(cfg))
}

func runFailover(quick bool) (fmt.Stringer, error) {
	cfg := experiments.FailoverConfig{}
	if quick {
		cfg = experiments.QuickFailoverConfig()
	}
	return wrap(experiments.Failover(cfg))
}

func runFigSLO(quick bool) (fmt.Stringer, error) {
	cfg := experiments.FigSLOConfig{}
	if quick {
		cfg = experiments.QuickFigSLOConfig()
	}
	return wrap(experiments.FigSLO(cfg))
}

func runFigMixed(quick bool) (fmt.Stringer, error) {
	cfg := experiments.FigMixedConfig{}
	if quick {
		cfg = experiments.QuickFigMixedConfig()
	}
	return wrap(experiments.FigMixed(cfg))
}
