// Command deflload is the chaos load harness for the sharded control
// plane (§4 at production scale). It multiplexes a fleet of simulated
// node agents — each a real controller behind a real HTTP endpoint — and
// drives open-loop registrations, heartbeats, launches, and migrations
// against federated managers over real HTTP, measuring placement
// throughput, heartbeat fan-in, and launch/migrate p50/p99.
//
// By default it boots an in-process federation of -shards managers (each
// with its own journal under -state-root, so adoption is possible) and
// tears it down at exit; point -manager at external deflated processes to
// drive a remote plane instead.
//
// Chaos: -kill-shard crash-stops the busiest shard leader mid-run (or a
// named shard), keeps offered load arriving while it is down, has a peer
// adopt the dead shard's journal, and then verifies the invariants that
// make the run a pass/fail test rather than a benchmark:
//
//   - no lost acknowledged registrations or launches,
//   - zero failure-induced preemptions (no healthy-VM evictions),
//   - the dead leader's endpoint never acks a write (no split brain),
//   - the fleet reconverges within -converge-within.
//
// Usage:
//
//	deflload -shards 3 -agents 200 -rps 100 -ticks 40           # load only
//	deflload -shards 3 -agents 200 -kill-shard busiest \
//	    -json report.json                                       # chaos run
//	deflload -manager http://10.0.0.1:7000 -agents 500          # remote plane
//
// Exit status: 0 when every invariant held, 1 on harness error, 2 when an
// invariant was violated.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"deflation/internal/cluster"
	"deflation/internal/faults"
	"deflation/internal/interactive"
	"deflation/internal/shard"
)

type urlList []string

func (u *urlList) String() string     { return strings.Join(*u, ",") }
func (u *urlList) Set(s string) error { *u = append(*u, s); return nil }

// report is the JSON document written by -json: the load report plus the
// chaos outcome, consumed by scripts/shard_adoption_smoke.sh.
type report struct {
	Load            shard.LoadReport        `json:"load"`
	Invariants      shard.InvariantReport   `json:"invariants"`
	InvariantsOK    bool                    `json:"invariants_ok"`
	KilledShard     string                  `json:"killed_shard,omitempty"`
	Adopter         string                  `json:"adopter,omitempty"`
	Recovery        *cluster.RecoveryReport `json:"recovery,omitempty"`
	SplitBrainAcked bool                    `json:"split_brain_acked"`
	ConvergedIn     string                  `json:"converged_in,omitempty"`
}

func main() {
	var managers urlList
	var (
		shards     = flag.Int("shards", 3, "in-process federation size (ignored with -manager)")
		stateRoot  = flag.String("state-root", "", "federation journal root (default: a temp dir, removed at exit)")
		vnodes     = flag.Int("vnodes", 0, "ring virtual nodes per shard (0 = default)")
		agents     = flag.Int("agents", 64, "simulated node agents")
		agentCPUs  = flag.Float64("agent-cpus", 16, "per-agent CPU cores")
		agentMemGB = flag.Float64("agent-mem-gb", 64, "per-agent memory (GB)")
		rps        = flag.Float64("rps", 50, "open-loop launch arrival rate")
		profile    = flag.String("profile", "steady", "arrival profile: steady, diurnal, bursty")
		ticks      = flag.Int("ticks", 30, "generator ticks per load phase")
		tick       = flag.Duration("tick", 100*time.Millisecond, "generator tick interval")
		heartbeat  = flag.Duration("heartbeat", 250*time.Millisecond, "agent heartbeat base interval (full-jitter)")
		seed       = flag.Int64("seed", 1, "harness seed (agents, arrivals, jitter)")
		killShard  = flag.String("kill-shard", "", "chaos: crash-stop this shard mid-run (\"busiest\" picks the most loaded; requires in-process federation)")
		partitions = flag.Int("partitions", 0, "chaos: agents partitioned during the kill window")
		diskSlow   = flag.Float64("disk-slow-prob", 0, "chaos: per-op probability of a slow journal write")
		agentFlake = flag.Float64("agent-error-prob", 0, "chaos: per-request probability an agent 500s")
		converge   = flag.Duration("converge-within", 15*time.Second, "post-adoption convergence bound")
		timeout    = flag.Duration("timeout", 5*time.Minute, "whole-run deadline")
		jsonOut    = flag.String("json", "", "write the machine-readable report to this file")
	)
	flag.Var(&managers, "manager", "external manager base URL (repeatable; disables the in-process federation)")
	flag.Parse()

	prof, err := interactive.ProfileFromString(*profile)
	if err != nil {
		log.Fatalf("deflload: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// Control plane: in-process federation unless -manager is given.
	var fed *shard.Federation
	targets := []string(managers)
	if len(targets) == 0 {
		root := *stateRoot
		if root == "" {
			tmp, err := os.MkdirTemp("", "deflload-*")
			if err != nil {
				log.Fatalf("deflload: %v", err)
			}
			defer os.RemoveAll(tmp)
			root = tmp
		}
		ids := make([]string, *shards)
		for i := range ids {
			ids[i] = fmt.Sprintf("shard-%d", i)
		}
		cfg := shard.FederationConfig{
			Shards:    ids,
			StateRoot: root,
			VNodes:    *vnodes,
			Policy:    cluster.BestFit,
			Seed:      *seed,
		}
		if *diskSlow > 0 {
			slow := faults.New(faults.Config{Seed: *seed + 1, DiskSlowProb: *diskSlow})
			cfg.FailOp = func(_, op string) error { return slow.DiskFault(op) }
		}
		fed, err = shard.NewFederation(cfg)
		if err != nil {
			log.Fatalf("deflload: %v", err)
		}
		defer fed.Close()
		targets = fed.URLs()
		log.Printf("deflload: booted %d-shard federation under %s", *shards, root)
	} else if *killShard != "" {
		log.Fatalf("deflload: -kill-shard needs the in-process federation (drop -manager)")
	}

	lcfg := shard.LoadConfig{
		Agents:        *agents,
		AgentCPUs:     *agentCPUs,
		AgentMemGB:    *agentMemGB,
		Seed:          *seed,
		HeartbeatBase: *heartbeat,
		ArrivalRPS:    *rps,
		Profile:       prof,
		TickInterval:  *tick,
	}
	if *agentFlake > 0 {
		lcfg.Faults = faults.New(faults.Config{Seed: *seed + 2, HTTPErrorProb: *agentFlake})
	}
	l, err := shard.NewLoad(lcfg, targets)
	if err != nil {
		log.Fatalf("deflload: %v", err)
	}
	defer l.Close()

	if err := l.RegisterAll(ctx); err != nil {
		log.Fatalf("deflload: registering fleet: %v", err)
	}
	log.Printf("deflload: registered %d agents with %d managers", *agents, len(targets))
	l.StartHeartbeats(ctx)

	if err := l.Run(ctx, *ticks); err != nil {
		log.Fatalf("deflload: load phase: %v", err)
	}

	var rpt report
	if *killShard != "" {
		victim := *killShard
		if victim == "busiest" {
			victim = busiestShard(fed, l)
		}
		dead := fed.Shard(victim)
		if dead == nil {
			log.Fatalf("deflload: unknown shard %q", victim)
		}
		deadURL := dead.URL
		names := l.AgentNames()
		for i := 0; i < *partitions && i < len(names); i++ {
			l.Partition(names[i], true)
		}
		log.Printf("deflload: crash-stopping %s (%d agents partitioned)", victim, *partitions)
		if err := fed.Kill(victim); err != nil {
			log.Fatalf("deflload: %v", err)
		}
		killedAt := time.Now()
		rpt.KilledShard = victim

		// Offered load keeps arriving while the shard is down.
		if err := l.Run(ctx, *ticks/3+1); err != nil {
			log.Fatalf("deflload: load-while-down phase: %v", err)
		}
		adopter, rec, err := fed.Adopt(ctx, victim, "")
		if err != nil {
			log.Fatalf("deflload: adoption: %v", err)
		}
		rpt.Adopter, rpt.Recovery = adopter, rec
		log.Printf("deflload: %s adopted %s (replayed %d records; %d lost, %d replaced)",
			adopter, victim, rec.RecordsReplayed, rec.Lost, rec.Replaced)
		for i := 0; i < *partitions && i < len(names); i++ {
			l.Partition(names[i], false)
		}
		if err := l.Run(ctx, *ticks/3+1); err != nil {
			log.Fatalf("deflload: post-adoption phase: %v", err)
		}

		// The dead leader's endpoint must never ack a write.
		if acked, err := shard.ProbeWrite(ctx, deadURL, "deflload-split-brain-probe"); err == nil && acked {
			rpt.SplitBrainAcked = true
		}
		convCtx, convCancel := context.WithTimeout(ctx, *converge)
		conv, err := l.AwaitConvergence(convCtx, killedAt)
		convCancel()
		if err != nil {
			log.Printf("deflload: fleet did not reconverge within %v: %v", *converge, err)
		} else {
			rpt.ConvergedIn = conv.String()
			log.Printf("deflload: fleet reconverged %v after the kill", conv)
		}
	}

	l.StopHeartbeats()
	rpt.Load = l.Report()
	// Invariant sweep: through the in-process federation's map, or — for an
	// external plane — through the shard map gossiped by any live manager.
	// A non-federated external manager serves no map; such runs are
	// measured, not swept.
	view := (*shard.View)(nil)
	if fed != nil {
		view = fed.View()
	} else {
		client := &http.Client{Timeout: 10 * time.Second}
		for _, t := range targets {
			if m, err := shard.FetchMap(ctx, client, t); err == nil {
				view = shard.NewView(m)
				break
			}
		}
		if view == nil {
			log.Printf("deflload: no manager served a shard map; skipping invariant sweep")
		}
	}
	rpt.InvariantsOK = !rpt.SplitBrainAcked
	if view != nil {
		inv, err := l.CheckInvariants(ctx, view)
		if err != nil {
			log.Fatalf("deflload: invariant sweep: %v", err)
		}
		rpt.Invariants = inv
		rpt.InvariantsOK = inv.Ok() && !rpt.SplitBrainAcked
	}

	log.Printf("deflload: %d/%d launches acked (%.1f/s), launch p50=%.1fms p99=%.1fms, migrate p99=%.1fms, hb ok=%.0f fail=%.0f",
		rpt.Load.LaunchesAcked, rpt.Load.LaunchesSent, rpt.Load.ThroughputRPS,
		rpt.Load.LaunchP50MS, rpt.Load.LaunchP99MS, rpt.Load.MigrateP99MS,
		rpt.Load.HeartbeatsOK, rpt.Load.HeartbeatsFail)
	if view != nil {
		log.Printf("deflload: invariants: %d shards swept, %d nodes, %d VMs placed, lost regs=%d, lost VMs=%d, double-owned=%d, failure preemptions=%d, balloon-on-container=%d, split-brain acked=%v",
			rpt.Invariants.ShardsSwept, rpt.Invariants.NodesRegistered, rpt.Invariants.PlacedVMs,
			len(rpt.Invariants.LostRegistrations), len(rpt.Invariants.LostVMNames),
			len(rpt.Invariants.DoubleOwnedNodes), rpt.Invariants.FailurePreemptions,
			len(rpt.Invariants.BalloonOnContainer), rpt.SplitBrainAcked)
	}

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(rpt, "", "  ")
		if err != nil {
			log.Fatalf("deflload: %v", err)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			log.Fatalf("deflload: %v", err)
		}
		log.Printf("deflload: wrote %s", *jsonOut)
	}
	if !rpt.InvariantsOK {
		log.Printf("deflload: INVARIANT VIOLATION")
		os.Exit(2)
	}
	log.Printf("deflload: all invariants held")
}

// busiestShard picks the live shard owning the most registered agents —
// killing it maximizes the blast radius the adoption must absorb.
func busiestShard(fed *shard.Federation, l *shard.Load) string {
	v := fed.View()
	counts := make(map[string]int)
	for _, name := range l.AgentNames() {
		counts[v.RingOwner(name)]++
	}
	best, bestN := "", -1
	for _, id := range fed.Live() {
		if counts[id] > bestN {
			best, bestN = id, counts[id]
		}
	}
	return best
}
