package hypervisor

import (
	"errors"
	"testing"
	"time"

	"deflation/internal/guestos"
	"deflation/internal/restypes"
)

func newHost(t *testing.T) *Host {
	t.Helper()
	h, err := NewHost(Config{Name: "host0", Capacity: restypes.V(16, 65536, 400, 400)})
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	return h
}

func vmSize() restypes.Vector { return restypes.V(4, 16384, 100, 100) }

func mustDomain(t *testing.T, h *Host, name string) *Domain {
	t.Helper()
	d, err := h.CreateDomain(name, vmSize(), guestos.Config{})
	if err != nil {
		t.Fatalf("CreateDomain(%s): %v", name, err)
	}
	return d
}

func TestNewHostValidation(t *testing.T) {
	if _, err := NewHost(Config{Capacity: restypes.V(4, 0, 100, 100)}); err == nil {
		t.Error("zero-memory host accepted")
	}
}

func TestCreateDomainBookkeeping(t *testing.T) {
	h := newHost(t)
	d := mustDomain(t, h, "vm0")
	if d.Size() != vmSize() || d.Allocation() != vmSize() {
		t.Errorf("size/alloc = %v/%v", d.Size(), d.Allocation())
	}
	if d.Guest().CPUs() != 4 || d.Guest().MemoryMB() != 16384 {
		t.Errorf("guest booted with %d CPUs %g MB", d.Guest().CPUs(), d.Guest().MemoryMB())
	}
	if got := h.FreePhysical(); got != restypes.V(12, 49152, 300, 300) {
		t.Errorf("free = %v", got)
	}
	if _, err := h.CreateDomain("vm0", vmSize(), guestos.Config{}); !errors.Is(err, ErrDomainExists) {
		t.Errorf("duplicate create err = %v", err)
	}
	if _, err := h.Domain("vm0"); err != nil {
		t.Errorf("Domain lookup: %v", err)
	}
	if _, err := h.Domain("nope"); !errors.Is(err, ErrDomainNotFound) {
		t.Errorf("missing domain err = %v", err)
	}
}

func TestCreateDomainCapacity(t *testing.T) {
	h := newHost(t)
	for i := 0; i < 4; i++ {
		mustDomain(t, h, string(rune('a'+i)))
	}
	if _, err := h.CreateDomain("overflow", vmSize(), guestos.Config{}); !errors.Is(err, ErrInsufficientCapacity) {
		t.Errorf("create on full host err = %v", err)
	}
}

func TestDomainsSorted(t *testing.T) {
	h := newHost(t)
	mustDomain(t, h, "b")
	mustDomain(t, h, "a")
	ds := h.Domains()
	if len(ds) != 2 || ds[0].Name() != "a" || ds[1].Name() != "b" {
		t.Errorf("Domains() order wrong: %v, %v", ds[0].Name(), ds[1].Name())
	}
}

func TestDestroyReleasesCapacity(t *testing.T) {
	h := newHost(t)
	d := mustDomain(t, h, "vm0")
	d.Destroy()
	d.Destroy() // idempotent
	if !d.Destroyed() {
		t.Error("not destroyed")
	}
	if got := h.FreePhysical(); got != h.Capacity() {
		t.Errorf("free after destroy = %v, want full capacity", got)
	}
	if _, err := d.SetAllocation(vmSize()); !errors.Is(err, ErrDomainDestroyed) {
		t.Errorf("SetAllocation on destroyed err = %v", err)
	}
}

func TestSetAllocationClampsToSize(t *testing.T) {
	h := newHost(t)
	d := mustDomain(t, h, "vm0")
	if _, err := d.SetAllocation(restypes.V(100, 1e6, 1e3, 1e3)); err != nil {
		t.Fatalf("SetAllocation: %v", err)
	}
	if d.Allocation() != vmSize() {
		t.Errorf("allocation exceeded nominal size: %v", d.Allocation())
	}
}

func TestSetAllocationGrowthNeedsCapacity(t *testing.T) {
	h := newHost(t)
	d := mustDomain(t, h, "vm0")
	if _, err := d.SetAllocation(vmSize().Scale(0.5)); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	// Fill the host so growth cannot fit.
	for i := 0; i < 3; i++ {
		mustDomain(t, h, string(rune('a'+i)))
	}
	if _, err := h.CreateDomain("filler", restypes.V(2, 8192, 50, 50), guestos.Config{}); err != nil {
		t.Fatalf("filler: %v", err)
	}
	if _, err := d.SetAllocation(vmSize()); !errors.Is(err, ErrInsufficientCapacity) {
		t.Errorf("grow beyond capacity err = %v", err)
	}
}

func TestMemoryReclamationLatency(t *testing.T) {
	h := newHost(t)
	d := mustDomain(t, h, "vm0")
	d.Guest().SetAppFootprint(12000, 2000) // touched = 256+12000+2000 = 14256
	// Reclaim 8 GB of memory: resident drops 16384→8192 within touched.
	lat, err := d.SetAllocation(vmSize().With(restypes.Memory, 8192))
	if err != nil {
		t.Fatalf("SetAllocation: %v", err)
	}
	// Swap-out = 14256-8192 = 6064 MB at 200 MB/s * 1.15 overhead ≈ 34.9 s.
	want := time.Duration(6064.0 / 200.0 * 1.15 * float64(time.Second))
	if diff := lat - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("reclamation latency = %v, want %v", lat, want)
	}
	// Reclaiming only untouched memory is free.
	d2 := mustDomain(t, h, "vm1")
	d2.Guest().SetAppFootprint(1000, 0)
	lat, err = d2.SetAllocation(vmSize().With(restypes.Memory, 4096))
	if err != nil {
		t.Fatalf("SetAllocation: %v", err)
	}
	if lat != 0 {
		t.Errorf("latency for unbacking free memory = %v, want 0", lat)
	}
}

func TestEnvCPULockHolderPenalty(t *testing.T) {
	h := newHost(t)
	d := mustDomain(t, h, "vm0")

	// Full allocation: no penalty.
	env := d.Env()
	if env.EffectiveCores != 4 || env.PhysCores != 4 || env.VCPUs != 4 {
		t.Errorf("full env = %+v", env)
	}

	// Hypervisor-only CPU deflation to 1 core: 4 vCPUs on 1 core → LHP.
	if _, err := d.SetAllocation(vmSize().With(restypes.CPU, 1)); err != nil {
		t.Fatal(err)
	}
	env = d.Env()
	if env.PhysCores != 1 {
		t.Errorf("PhysCores = %g, want 1", env.PhysCores)
	}
	if env.EffectiveCores >= 1 || env.EffectiveCores < 0.7 {
		t.Errorf("EffectiveCores = %g, want LHP-penalized in [0.7,1)", env.EffectiveCores)
	}

	// OS-level deflation instead: unplug to 1 vCPU → no multiplexing, no LHP.
	d2 := mustDomain(t, h, "vm1")
	d2.Guest().UnplugCPUs(3)
	if _, err := d2.SetAllocation(vmSize().With(restypes.CPU, 1)); err != nil {
		t.Fatal(err)
	}
	env2 := d2.Env()
	if env2.EffectiveCores != 1 {
		t.Errorf("OS-level EffectiveCores = %g, want exactly 1 (no LHP)", env2.EffectiveCores)
	}
	if env2.EffectiveCores <= env.EffectiveCores {
		t.Error("OS-level deflation should beat hypervisor-level at equal physical CPU")
	}
}

func TestEnvMemorySwapState(t *testing.T) {
	h := newHost(t)
	d := mustDomain(t, h, "vm0")
	d.Guest().SetAppFootprint(12000, 0) // touched = 12256

	env := d.Env()
	if env.SwappedMB != 0 || env.LocalityFactor != 1 {
		t.Errorf("undeflated env has swap: %+v", env)
	}

	if _, err := d.SetAllocation(vmSize().With(restypes.Memory, 8192)); err != nil {
		t.Fatal(err)
	}
	env = d.Env()
	if env.ResidentMB != 8192 {
		t.Errorf("ResidentMB = %g, want 8192", env.ResidentMB)
	}
	if want := 12256.0 - 8192.0; env.SwappedMB != want {
		t.Errorf("SwappedMB = %g, want %g", env.SwappedMB, want)
	}
	if env.LocalityFactor != 0.5 {
		t.Errorf("LocalityFactor = %g, want black-box 0.5", env.LocalityFactor)
	}
	// Guest still believes it has full memory (black-box deflation).
	if env.GuestMemMB != 16384 {
		t.Errorf("GuestMemMB = %g, want 16384", env.GuestMemMB)
	}
}

func TestEnvIOThrottles(t *testing.T) {
	h := newHost(t)
	d := mustDomain(t, h, "vm0")
	if _, err := d.SetAllocation(vmSize().With(restypes.Disk, 25).With(restypes.Net, 10)); err != nil {
		t.Fatal(err)
	}
	env := d.Env()
	if env.DiskMBps != 25 || env.NetMBps != 10 {
		t.Errorf("throttles = %g/%g, want 25/10", env.DiskMBps, env.NetMBps)
	}
}

func TestEnvOOMPropagates(t *testing.T) {
	h := newHost(t)
	d := mustDomain(t, h, "vm0")
	d.Guest().SetAppFootprint(8000, 0)
	d.Guest().ForceUnplugMemory(12000)
	if !d.Env().OOMKilled {
		t.Error("OOM not visible in Env")
	}
}

func TestAllocationRoundTripRestoresCapacity(t *testing.T) {
	h := newHost(t)
	d := mustDomain(t, h, "vm0")
	if _, err := d.SetAllocation(vmSize().Scale(0.25)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.SetAllocation(vmSize()); err != nil {
		t.Fatalf("reinflate: %v", err)
	}
	if got := h.FreePhysical(); got != restypes.V(12, 49152, 300, 300) {
		t.Errorf("free after round trip = %v", got)
	}
}
