// Package hypervisor simulates a KVM-like hypervisor ("simkvm") with the VM
// overcommitment mechanisms the paper's hypervisor-level deflation uses
// (§3.2.3, §5): CPU capacity throttling via cgroup shares, physical memory
// limits with host swapping, and disk/network bandwidth throttling.
//
// The simulator exposes the same mechanism API as the paper's
// libvirt/cgroups prototype and encodes the black-box performance hazards
// the paper measures:
//
//   - multiplexing more vCPUs onto fewer physical cores causes lock-holder
//     preemption (perfmodel.LockHolderPenalty);
//   - memory limits below the guest's touched footprint force host swapping,
//     and because the hypervisor cannot see which guest pages are hot, the
//     effective access locality of the swapped set is degraded
//     (BlackboxLocalityFactor);
//   - reclaiming memory takes real (virtual) time bounded by swap-disk
//     bandwidth, run as an incremental control loop (§5: "large memory
//     reclamation operations can often fail, and we use a control loop").
package hypervisor

import (
	"fmt"
	"sort"
	"time"

	"deflation/internal/guestos"
	"deflation/internal/perfmodel"
	"deflation/internal/restypes"
	"deflation/internal/substrate"
)

// Sentinel errors returned by host and domain operations. These alias the
// substrate-level sentinels so errors.Is matches regardless of which
// substrate produced the error.
var (
	ErrInsufficientCapacity = substrate.ErrInsufficientCapacity
	ErrDomainExists         = substrate.ErrInstanceExists
	ErrDomainNotFound       = substrate.ErrInstanceNotFound
	ErrDomainDestroyed      = substrate.ErrInstanceDestroyed
)

// Compile-time proof that simkvm implements the substrate mechanism API.
var (
	_ substrate.Substrate   = (*Host)(nil)
	_ substrate.Instance    = (*Domain)(nil)
	_ substrate.GuestBacked = (*Domain)(nil)
)

// Config describes a physical host.
type Config struct {
	Name     string
	Capacity restypes.Vector // physical CPU cores, memory, disk bw, net bw

	// SwapDiskMBps is the host swap device bandwidth (default 200 MB/s;
	// swap-out dominates memory-reclamation latency, Fig. 8b).
	SwapDiskMBps float64
	// BlackboxLocalityFactor scales the guest workload's access locality
	// when the *hypervisor* chooses which pages to swap: it cannot tell hot
	// pages from cold, so host swapping evicts some hot pages (default 0.5).
	BlackboxLocalityFactor float64
	// ControlLoopOverhead multiplies reclamation latency to account for the
	// incremental retry loop used for large reclamations (default 1.15).
	ControlLoopOverhead float64
}

func (c Config) withDefaults() Config {
	if c.SwapDiskMBps == 0 {
		c.SwapDiskMBps = 200
	}
	if c.BlackboxLocalityFactor == 0 {
		c.BlackboxLocalityFactor = 0.5
	}
	if c.ControlLoopOverhead == 0 {
		c.ControlLoopOverhead = 1.15
	}
	return c
}

// Host is a simulated physical machine running simkvm. Not safe for
// concurrent use; the simulation is single-threaded.
type Host struct {
	cfg     Config
	domains map[string]*Domain

	// reserved is capacity set aside outside any domain's allocation —
	// live-migration streams reserve network bandwidth here so that new
	// domains cannot take it mid-copy. Always zero unless Reserve is used.
	reserved restypes.Vector
}

// NewHost creates a host with the given physical capacity.
func NewHost(cfg Config) (*Host, error) {
	cfg = cfg.withDefaults()
	if !cfg.Capacity.Positive() {
		return nil, fmt.Errorf("hypervisor: host capacity must be positive in all dimensions, got %v", cfg.Capacity)
	}
	return &Host{cfg: cfg, domains: make(map[string]*Domain)}, nil
}

// Name returns the host name.
func (h *Host) Name() string { return h.cfg.Name }

// Kind identifies the substrate implementation.
func (h *Host) Kind() substrate.Kind { return substrate.KindHypervisor }

// Capacity returns the host's physical capacity.
func (h *Host) Capacity() restypes.Vector { return h.cfg.Capacity }

// Allocated returns the sum of all domains' current physical allocations.
// Iteration is in sorted domain order so that floating-point summation is
// deterministic across runs.
func (h *Host) Allocated() restypes.Vector {
	var sum restypes.Vector
	for _, d := range h.Domains() {
		sum = sum.Add(d.alloc)
	}
	return sum
}

// FreePhysical returns unallocated, unreserved physical capacity.
func (h *Host) FreePhysical() restypes.Vector {
	return h.cfg.Capacity.Sub(h.Allocated()).Sub(h.reserved).ClampNonNegative()
}

// Reserve sets aside capacity outside any domain (e.g. network bandwidth for
// a migration stream). It fails when the reservation does not fit in free
// physical capacity.
func (h *Host) Reserve(v restypes.Vector) error {
	v = v.ClampNonNegative()
	if !v.Fits(h.FreePhysical()) {
		return fmt.Errorf("%w: reserving %v, free %v", ErrInsufficientCapacity, v, h.FreePhysical())
	}
	h.reserved = h.reserved.Add(v)
	return nil
}

// Unreserve returns previously reserved capacity.
func (h *Host) Unreserve(v restypes.Vector) {
	h.reserved = h.reserved.Sub(v.ClampNonNegative()).ClampNonNegative()
}

// Reserved returns the currently reserved capacity.
func (h *Host) Reserved() restypes.Vector { return h.reserved }

// Domains returns all live domains sorted by name (deterministic order).
func (h *Host) Domains() []*Domain {
	out := make([]*Domain, 0, len(h.domains))
	for _, d := range h.domains {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Domain looks up a live domain by name.
func (h *Host) Domain(name string) (*Domain, error) {
	d, ok := h.domains[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrDomainNotFound, name)
	}
	return d, nil
}

// Instances returns all live domains as substrate instances (sorted by
// name, like Domains).
func (h *Host) Instances() []substrate.Instance {
	doms := h.Domains()
	out := make([]substrate.Instance, len(doms))
	for i, d := range doms {
		out[i] = d
	}
	return out
}

// Lookup finds a live domain by name as a substrate instance.
func (h *Host) Lookup(name string) (substrate.Instance, error) {
	d, err := h.Domain(name)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// Spawn boots a domain — the substrate-interface spelling of CreateDomain.
func (h *Host) Spawn(name string, size restypes.Vector, guestCfg guestos.Config) (substrate.Instance, error) {
	d, err := h.CreateDomain(name, size, guestCfg)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// RestoreInstance materializes a migrated domain from a snapshot — the
// substrate-interface spelling of RestoreDomain. Snapshots from another
// substrate kind are rejected: a container checkpoint cannot boot as a VM.
func (h *Host) RestoreInstance(s substrate.Snapshot) (substrate.Instance, error) {
	d, err := h.RestoreDomain(s)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// CreateDomain boots a VM of the given nominal size with a matching guest
// OS. The initial physical allocation equals the nominal size, so creation
// fails with ErrInsufficientCapacity unless the size fits in free physical
// capacity — the cluster manager must deflate other VMs first (§5).
func (h *Host) CreateDomain(name string, size restypes.Vector, guestCfg guestos.Config) (*Domain, error) {
	if _, ok := h.domains[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDomainExists, name)
	}
	if !size.Positive() {
		return nil, fmt.Errorf("hypervisor: domain size must be positive in all dimensions, got %v", size)
	}
	if !size.Fits(h.FreePhysical()) {
		return nil, fmt.Errorf("%w: need %v, free %v", ErrInsufficientCapacity, size, h.FreePhysical())
	}
	if guestCfg.CPUs == 0 {
		guestCfg.CPUs = int(size.CPU)
	}
	if guestCfg.MemoryMB == 0 {
		guestCfg.MemoryMB = size.MemoryMB
	}
	g, err := guestos.New(guestCfg)
	if err != nil {
		return nil, err
	}
	d := &Domain{host: h, name: name, size: size, alloc: size, guest: g}
	d.everTouchedMB = d.touchedMB()
	h.domains[name] = d
	return d, nil
}

// Domain is a simulated VM: a nominal size, a guest OS, and the cgroup-style
// physical allocation the hypervisor currently grants it.
type Domain struct {
	host  *Host
	name  string
	size  restypes.Vector // nominal (booted) size
	alloc restypes.Vector // current physical allocation (cgroup limits)
	guest *guestos.GuestOS
	dead  bool

	// everTouchedMB is the high-water mark of guest memory that has ever
	// been materialized in the VM process. From the host's point of view
	// this — not the guest's current footprint — is what a memory limit
	// must swap against: guest pages freed internally still occupy host
	// frames until they are hot-unplugged (which releases them) or swapped.
	// A freshly booted guest has touched only its current footprint; a
	// long-running one has typically touched everything (see MarkWarm).
	everTouchedMB float64
}

// Name returns the domain name.
func (d *Domain) Name() string { return d.name }

// Kind identifies the backing substrate.
func (d *Domain) Kind() substrate.Kind { return substrate.KindHypervisor }

// ResizeFloorMB is zero for domains: a memory limit below the live
// footprint degrades into host swapping rather than killing the guest, so
// there is no hard floor the policy layer must honor.
func (d *Domain) ResizeFloorMB() float64 { return 0 }

// SetAppFootprint forwards the application's footprint to the guest OS.
func (d *Domain) SetAppFootprint(rssMB, pageCacheMB float64) {
	d.guest.SetAppFootprint(rssMB, pageCacheMB)
}

// DirtyRateMBps is the guest's page-dirtying rate (pre-copy convergence).
func (d *Domain) DirtyRateMBps() float64 { return d.guest.DirtyRateMBps() }

// Size returns the nominal booted size.
func (d *Domain) Size() restypes.Vector { return d.size }

// Allocation returns the current physical allocation (cgroup limits).
func (d *Domain) Allocation() restypes.Vector { return d.alloc }

// Guest returns the domain's guest OS.
func (d *Domain) Guest() *guestos.GuestOS { return d.guest }

// Destroyed reports whether the domain has been destroyed.
func (d *Domain) Destroyed() bool { return d.dead }

// Destroy terminates the domain and releases its physical allocation. This
// is the preemption mechanism: from the application's perspective it is a
// fail-stop failure.
func (d *Domain) Destroy() {
	if d.dead {
		return
	}
	d.dead = true
	delete(d.host.domains, d.name)
}

// SetAllocation adjusts the domain's physical allocation to target
// (element-wise clamped to the nominal size, and floored at a minimal
// viable allocation). Raising memory requires free physical capacity.
// It returns the reclamation latency: lowering the memory limit below the
// guest's touched footprint swaps pages out at swap-disk bandwidth.
func (d *Domain) SetAllocation(target restypes.Vector) (time.Duration, error) {
	if d.dead {
		return 0, ErrDomainDestroyed
	}
	target = target.Min(d.size).ClampNonNegative()

	// Growth must fit in free physical capacity (own current allocation is
	// already accounted, so only the delta matters).
	grow := target.Sub(d.alloc).ClampNonNegative()
	if !grow.Fits(d.host.FreePhysical()) {
		return 0, fmt.Errorf("%w: growing by %v, free %v", ErrInsufficientCapacity, grow, d.host.FreePhysical())
	}

	var latency time.Duration
	// Memory reclamation latency: swapping out the newly unbacked portion of
	// the host-resident (ever-touched) footprint.
	if target.MemoryMB < d.alloc.MemoryMB {
		touched := d.refreshEverTouched()
		oldResident := minf(d.alloc.MemoryMB, touched)
		newResident := minf(target.MemoryMB, touched)
		if swapOut := oldResident - newResident; swapOut > 0 {
			secs := swapOut / d.host.cfg.SwapDiskMBps * d.host.cfg.ControlLoopOverhead
			latency = time.Duration(secs * float64(time.Second))
		}
	}
	d.alloc = target
	return latency, nil
}

// MarkWarm records that the guest has been running long enough to have
// touched all of its memory (allocator and page-cache churn). Experiments
// call this to model a warmed-up VM; a fresh boot has touched only its
// current footprint.
func (d *Domain) MarkWarm() { d.everTouchedMB = d.guest.MemoryMB() }

// refreshEverTouched reconciles the high-water mark with the guest's
// current state: it can only grow through current footprint growth, and it
// shrinks when hot-unplug or balloon inflation physically releases frames.
func (d *Domain) refreshEverTouched() float64 {
	if mem := d.guest.MemoryMB() - d.guest.BalloonMB(); d.everTouchedMB > mem {
		d.everTouchedMB = mem
	}
	if t := d.touchedMB(); d.everTouchedMB < t {
		d.everTouchedMB = t
	}
	return d.everTouchedMB
}

// touchedMB is the guest memory the hypervisor must back with physical
// frames or swap: kernel, application RSS, and page cache. (Free guest
// pages are assumed hinted-free and need no backing.)
func (d *Domain) touchedMB() float64 {
	return d.guest.Config().KernelMemMB + d.guest.AppRSSMB() + d.guest.PageCacheMB()
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// DomainSnapshot is the transferable state of an instance, as shipped by
// live migration. For domains it carries the nominal size, the current
// (possibly deflated) allocation, the host-resident high-water mark, and
// the guest kernel's state. It is now an alias of the substrate-level
// tagged union so checkpoints flow through migration and the WAL
// regardless of substrate kind.
type DomainSnapshot = substrate.Snapshot

// Snapshot captures the domain's transferable state.
func (d *Domain) Snapshot() DomainSnapshot {
	g := d.guest.Snapshot()
	return DomainSnapshot{
		Kind:          substrate.KindHypervisor,
		Name:          d.name,
		Size:          d.size,
		Alloc:         d.alloc,
		EverTouchedMB: d.refreshEverTouched(),
		Guest:         &g,
	}
}

// RestoreDomain materializes a migrated domain from a snapshot. Admission is
// by the snapshot's *allocation*, not its nominal size: a deflated VM needs
// only its deflated footprint on the destination — the reason deflation and
// migration compose (a deflated VM fits more destinations). The domain may
// later reinflate toward its nominal size through SetAllocation, subject to
// the usual capacity checks.
func (h *Host) RestoreDomain(s DomainSnapshot) (*Domain, error) {
	if s.Kind.Normalize() != substrate.KindHypervisor {
		return nil, fmt.Errorf("%w: %q snapshot is %q", substrate.ErrKindMismatch, s.Name, s.Kind)
	}
	if s.Guest == nil {
		return nil, fmt.Errorf("hypervisor: snapshot %q has no guest state", s.Name)
	}
	if _, ok := h.domains[s.Name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDomainExists, s.Name)
	}
	if !s.Size.Positive() {
		return nil, fmt.Errorf("hypervisor: snapshot size must be positive in all dimensions, got %v", s.Size)
	}
	alloc := s.Alloc.Min(s.Size).ClampNonNegative()
	if !alloc.Fits(h.FreePhysical()) {
		return nil, fmt.Errorf("%w: restoring %v, free %v", ErrInsufficientCapacity, alloc, h.FreePhysical())
	}
	g, err := guestos.Restore(*s.Guest)
	if err != nil {
		return nil, err
	}
	d := &Domain{host: h, name: s.Name, size: s.Size, alloc: alloc, guest: g}
	d.everTouchedMB = s.EverTouchedMB
	d.refreshEverTouched()
	h.domains[s.Name] = d
	return d, nil
}

// Env is the effective execution environment a domain's application sees.
// Application performance models consume this snapshot. It is an alias of
// the substrate-level Env so performance models stay substrate-portable;
// the zero Kind means hypervisor, so existing Env literals are unchanged.
type Env = substrate.Env

// Env computes the domain's current effective environment.
func (d *Domain) Env() Env {
	vcpus := d.guest.CPUs()
	phys := minf(d.alloc.CPU, float64(vcpus))
	eff := phys
	locality := 1.0
	if float64(vcpus) > phys && phys > 0 {
		eff = phys * perfmodel.LockHolderPenalty(float64(vcpus)/phys)
	}
	// Balloon-induced fragmentation costs CPU (allocation stalls,
	// compaction) in proportion to the ballooned share of memory.
	eff *= d.guest.FragmentationPenalty()
	touched := d.refreshEverTouched()
	resident := minf(d.alloc.MemoryMB, touched)
	swapped := touched - resident
	if swapped > 0 {
		locality = d.host.cfg.BlackboxLocalityFactor
	}
	return Env{
		Kind:           substrate.KindHypervisor,
		VCPUs:          vcpus,
		PhysCores:      phys,
		EffectiveCores: eff,
		GuestMemMB:     d.guest.MemoryMB(),
		ResidentMB:     resident,
		SwappedMB:      swapped,
		EverTouchedMB:  touched,
		KernelMemMB:    d.guest.Config().KernelMemMB,
		LocalityFactor: locality,
		DiskMBps:       d.alloc.DiskMBps,
		NetMBps:        d.alloc.NetMBps,
		OOMKilled:      d.guest.OOMKilled(),
	}
}
