package cascade

import (
	"testing"

	"deflation/internal/apps/curveapp"
	"deflation/internal/guestos"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/vm"
)

// clampHalf is a test SLOPolicy: VMs named "guarded" may lose only half
// the requested CPU and no memory; everything else passes through.
type clampHalf struct{ calls int }

func (p *clampHalf) ClampTarget(v *vm.VM, target restypes.Vector) restypes.Vector {
	p.calls++
	if v.Name() != "guarded" {
		return target
	}
	out := target
	out.CPU /= 2
	out.MemoryMB = 0
	return out
}

func sloVM(t *testing.T, name string) *vm.VM {
	t.Helper()
	host, err := hypervisor.NewHost(hypervisor.Config{
		Name: "slo", Capacity: restypes.V(16, 65536, 1600, 5000),
	})
	if err != nil {
		t.Fatal(err)
	}
	size := restypes.V(4, 16384, 400, 1250)
	dom, err := host.CreateDomain(name, size, guestos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	dom.MarkWarm()
	app := curveapp.New(curveapp.Config{Name: "batch", Size: size, Elastic: true})
	v, err := vm.New(dom, app, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSLOPolicyClampsGuardedVM(t *testing.T) {
	p := &clampHalf{}
	c := New(AllLevels())
	c.SetSLOPolicy(p)
	v := sloVM(t, "guarded")
	rep, err := c.Deflate(v, restypes.V(2, 4096, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if p.calls != 1 {
		t.Errorf("policy consulted %d times, want 1", p.calls)
	}
	if rep.SLOWithheld.CPU != 1 || rep.SLOWithheld.MemoryMB != 4096 {
		t.Errorf("withheld %v, want {1, 4096}", rep.SLOWithheld)
	}
	// Report.Target preserves the caller's request.
	if rep.Target.CPU != 2 {
		t.Errorf("target %v rewritten", rep.Target)
	}
	if got := v.Allocation().CPU; got != 3 {
		t.Errorf("allocation %g cores, want 3 (only 1 of 2 reclaimed)", got)
	}
	if got := v.Allocation().MemoryMB; got != 16384 {
		t.Errorf("memory %g, want untouched 16384", got)
	}
}

func TestSLOPolicyPassesBatchThrough(t *testing.T) {
	c := New(AllLevels())
	c.SetSLOPolicy(&clampHalf{})
	v := sloVM(t, "batch-1")
	rep, err := c.Deflate(v, restypes.V(2, 4096, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SLOWithheld.IsZero() {
		t.Errorf("batch VM withheld %v", rep.SLOWithheld)
	}
	if got := v.Allocation().CPU; got != 2 {
		t.Errorf("allocation %g cores, want full reclamation to 2", got)
	}
}

// fullClamp withholds everything.
type fullClamp struct{}

func (fullClamp) ClampTarget(v *vm.VM, target restypes.Vector) restypes.Vector {
	return restypes.Vector{}
}

func TestSLOPolicyFullClampIsNoOp(t *testing.T) {
	c := New(AllLevels())
	c.SetSLOPolicy(fullClamp{})
	v := sloVM(t, "guarded")
	before := v.Allocation()
	rep, err := c.Deflate(v, restypes.V(2, 4096, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.SLOWithheld != restypes.V(2, 4096, 0, 0).ClampNonNegative() {
		t.Errorf("withheld %v, want full target", rep.SLOWithheld)
	}
	if v.Allocation() != before {
		t.Errorf("allocation changed: %v → %v", before, v.Allocation())
	}
	if rep.TotalLatency != 0 {
		t.Errorf("latency %v for a fully withheld deflation", rep.TotalLatency)
	}
}

// overClamp tries to clamp *upward* (policy bug); the controller must cap
// at the requested target.
type overClamp struct{}

func (overClamp) ClampTarget(v *vm.VM, target restypes.Vector) restypes.Vector {
	return target.Scale(3)
}

func TestSLOPolicyCannotRaiseTarget(t *testing.T) {
	c := New(AllLevels())
	c.SetSLOPolicy(overClamp{})
	v := sloVM(t, "guarded")
	rep, err := c.Deflate(v, restypes.V(1, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SLOWithheld.IsZero() {
		t.Errorf("withheld %v", rep.SLOWithheld)
	}
	if got := v.Allocation().CPU; got != 3 {
		t.Errorf("allocation %g, want 3 — target must not be amplified", got)
	}
}

func TestNoPolicyUnchanged(t *testing.T) {
	c := New(AllLevels())
	v := sloVM(t, "guarded")
	rep, err := c.Deflate(v, restypes.V(2, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SLOWithheld.IsZero() {
		t.Errorf("withheld %v with no policy installed", rep.SLOWithheld)
	}
}
