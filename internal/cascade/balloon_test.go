package cascade

import (
	"testing"

	"deflation/internal/apps/apptest"
	"deflation/internal/restypes"
	"deflation/internal/vm"
)

func TestMemMechanismString(t *testing.T) {
	if MemHotUnplug.String() != "hot-unplug" || MemBalloon.String() != "balloon" {
		t.Error("mechanism strings wrong")
	}
}

func TestBalloonMechanism(t *testing.T) {
	app := apptest.New("idle")
	app.RSSMB = 2000
	v := newVM(t, app, vm.Config{})
	v.Domain().MarkWarm()

	c := New(VMLevel())
	c.SetMemMechanism(MemBalloon)
	target := restypes.V(0, 8192, 0, 0)
	r, err := c.Deflate(v, target)
	if err != nil {
		t.Fatal(err)
	}
	g := v.Domain().Guest()
	if g.BalloonMB() != 8192 {
		t.Errorf("balloon = %g, want 8192", g.BalloonMB())
	}
	if g.MemoryMB() != 16384 {
		t.Errorf("guest memory = %g, want unchanged 16384 (balloon, not unplug)", g.MemoryMB())
	}
	if r.OS.Reclaimed.MemoryMB != 8192 {
		t.Errorf("OS reclaimed %g via balloon", r.OS.Reclaimed.MemoryMB)
	}
	// No swap: the balloon released the frames.
	if env := v.Env(); env.SwappedMB != 0 {
		t.Errorf("swapped = %g, want 0", env.SwappedMB)
	}
	// But fragmentation costs CPU.
	if env := v.Env(); env.EffectiveCores >= 4 {
		t.Errorf("effective cores = %g, want fragmentation penalty", env.EffectiveCores)
	}

	// Reinflation releases the balloon and restores full performance.
	if _, err := c.Reinflate(v, target); err != nil {
		t.Fatal(err)
	}
	if g.BalloonMB() != 0 {
		t.Errorf("balloon after reinflate = %g", g.BalloonMB())
	}
	if env := v.Env(); env.EffectiveCores != 4 {
		t.Errorf("effective cores after reinflate = %g, want 4", env.EffectiveCores)
	}
}

func TestBalloonFasterButSlowerSteadyState(t *testing.T) {
	// The paper's §7 comparison: ballooning reclaims faster than hotplug
	// but leaves the guest slower.
	mk := func() *vm.VM {
		app := apptest.New("idle")
		app.RSSMB = 2000
		v := newVM(t, app, vm.Config{})
		v.Domain().MarkWarm()
		return v
	}
	target := restypes.V(0, 8192, 0, 0)

	hot := New(VMLevel())
	vHot := mk()
	rHot, err := hot.Deflate(vHot, target)
	if err != nil {
		t.Fatal(err)
	}

	bal := New(VMLevel())
	bal.SetMemMechanism(MemBalloon)
	vBal := mk()
	rBal, err := bal.Deflate(vBal, target)
	if err != nil {
		t.Fatal(err)
	}

	if rBal.TotalLatency >= rHot.TotalLatency {
		t.Errorf("balloon latency %v not below hotplug %v", rBal.TotalLatency, rHot.TotalLatency)
	}
	if vBal.Env().EffectiveCores >= vHot.Env().EffectiveCores {
		t.Errorf("balloon steady-state cores %g not below hotplug %g",
			vBal.Env().EffectiveCores, vHot.Env().EffectiveCores)
	}
}
