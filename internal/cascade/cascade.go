// Package cascade implements the paper's central mechanism: multi-level
// cascade deflation (§3.2, Fig. 3). A reclamation target flows from the
// application (voluntary self-deflation), to the guest OS (best-effort
// hot-unplug), to the hypervisor (overcommitment), with each lower level
// picking up whatever slack the level above left.
//
// The controller can run with any subset of levels enabled, which is how the
// paper's single-level baselines (hypervisor-only, OS-only) and its
// "VM-level" combination (OS+hypervisor, no application support) are
// expressed — and how the ablation benchmarks isolate each level's
// contribution.
package cascade

import (
	"errors"
	"fmt"
	"math"
	"time"

	"deflation/internal/guestos"
	"deflation/internal/restypes"
	"deflation/internal/vm"
)

// Errors returned by Deflate and Reinflate.
var (
	ErrHighPriority      = errors.New("cascade: high-priority VMs are not deflatable")
	ErrExceedsDeflatable = errors.New("cascade: target exceeds the VM's deflatable resources")
	ErrPreempted         = errors.New("cascade: VM has been preempted")
)

// Levels selects which reclamation levels participate in a cascade.
type Levels struct {
	App        bool // application self-deflation (§3.2.1)
	OS         bool // guest hot-unplug (§3.2.2)
	Hypervisor bool // VM overcommitment (§3.2.3)
}

// AllLevels enables the full cascade: application, OS, and hypervisor.
func AllLevels() Levels { return Levels{App: true, OS: true, Hypervisor: true} }

// VMLevel is the paper's "VM-level deflation": OS + hypervisor, with no
// application participation (§4.1).
func VMLevel() Levels { return Levels{OS: true, Hypervisor: true} }

// HypervisorOnly reclaims exclusively via hypervisor overcommitment — the
// black-box baseline of Fig. 5a/5b.
func HypervisorOnly() Levels { return Levels{Hypervisor: true} }

// OSOnly reclaims exclusively via guest hot-unplug. With no hypervisor to
// fall through to, the unplug is forced to meet the target, which reproduces
// the OOM failures the paper reports for this mode at high memory deflation
// (Fig. 5a).
func OSOnly() Levels { return Levels{OS: true} }

// String renders the enabled levels, e.g. "app+os+hypervisor".
func (l Levels) String() string {
	s := ""
	add := func(name string, on bool) {
		if !on {
			return
		}
		if s != "" {
			s += "+"
		}
		s += name
	}
	add("app", l.App)
	add("os", l.OS)
	add("hypervisor", l.Hypervisor)
	if s == "" {
		return "none"
	}
	return s
}

// LevelReport describes what one level reclaimed and how long it took.
type LevelReport struct {
	Reclaimed restypes.Vector
	Latency   time.Duration
}

// Report summarizes one cascade deflation (or reinflation).
type Report struct {
	Target        restypes.Vector
	App, OS, Hyp  LevelReport
	NewAllocation restypes.Vector
	// Shortfall is the portion of the target no enabled level could
	// reclaim: the hypervisor level was disabled, a CPU floor applied, or
	// the substrate's resize floor withheld memory (a container's
	// memory.max is never written below its live RSS + runtime overhead —
	// the substrate would answer with an OOM kill, not a squeeze).
	Shortfall restypes.Vector
	// DeadlineExceeded reports that the controller's deadline truncated the
	// higher levels and the hypervisor picked up the remainder.
	DeadlineExceeded bool
	// AppFailed and OSFailed report that the level failed (or hung past the
	// budget) and the cascade degraded gracefully to the next level with
	// the remaining target, rather than aborting.
	AppFailed bool
	OSFailed  bool
	// SLOWithheld is the portion of the requested target an installed
	// SLOPolicy refused to reclaim from a latency-sensitive VM (zero for
	// batch VMs and when no policy is set). The caller's reclamation
	// budget must route this remainder elsewhere — deeper deflation of
	// batch VMs, or migration.
	SLOWithheld restypes.Vector
	// TotalLatency is the end-to-end reclamation latency; the levels run
	// sequentially per Fig. 3.
	TotalLatency time.Duration
}

// LevelFault is an injected failure for one cascade level, supplied by a
// FaultHook (chaos testing; see internal/faults).
type LevelFault struct {
	// Fail makes the level reclaim nothing (agent crash) — or, with
	// Fraction > 0, only that fraction of its target (partial hot-unplug).
	Fail bool
	// Fraction is the fraction of the level's target that still succeeds
	// when Fail is set (0 = total failure). Only meaningful for the OS
	// level.
	Fraction float64
	// Hang is extra latency the level consumes before responding or
	// failing; it burns the cascade's deadline budget.
	Hang time.Duration
}

// FaultHook supplies injected faults per level ("app" or "os"); nil (the
// default) injects nothing. The hypervisor level is the backstop and never
// fails short of whole-node crash-stop, which the cluster layer models.
type FaultHook func(level string) LevelFault

// SLOPolicy clamps deflation targets for latency-sensitive VMs before the
// cascade runs: ClampTarget returns the portion of target that can be
// reclaimed from v without violating the VM's service-level latency
// objective. Batch VMs (anything the policy does not recognize) must be
// returned unchanged, so they keep the existing utility-curve cascade.
// internal/interactive provides the p99-headroom implementation
// (Fuerst & Shenoy-style deflation for interactive applications).
type SLOPolicy interface {
	ClampTarget(v *vm.VM, target restypes.Vector) restypes.Vector
}

// MemMechanism selects the guest-level memory reclamation mechanism.
type MemMechanism int

const (
	// MemHotUnplug migrates free pages into contiguous zones and releases
	// them — slower, but leaves the guest unfragmented (the default; the
	// paper's choice, §3.2.2).
	MemHotUnplug MemMechanism = iota
	// MemBalloon pins scattered free pages via the balloon driver — much
	// faster, but the fragmentation costs steady-state performance (§7).
	MemBalloon
)

// String returns "hot-unplug" or "balloon".
func (m MemMechanism) String() string {
	if m == MemBalloon {
		return "balloon"
	}
	return "hot-unplug"
}

// Controller orchestrates cascade deflation for individual VMs. This is the
// per-server "local deflation controller" logic of §5 at single-VM
// granularity; internal/cluster runs one per server.
type Controller struct {
	levels   Levels
	memVia   MemMechanism
	deadline time.Duration        // 0 = unbounded
	faults   FaultHook            // nil = no injection
	slo      SLOPolicy            // nil = every VM keeps the utility-curve cascade
	tel      *controllerTelemetry // nil = no instrumentation
}

// New returns a controller with the given levels enabled.
func New(levels Levels) *Controller { return &Controller{levels: levels} }

// Levels returns the controller's enabled levels.
func (c *Controller) Levels() Levels { return c.levels }

// SetMemMechanism selects hot-unplug (default) or ballooning for the
// OS-level memory step.
func (c *Controller) SetMemMechanism(m MemMechanism) { c.memVia = m }

// SetDeadline bounds each deflation operation (§5: "deflation operations
// have a deadline... if a deflation operation times out, we proceed to the
// next level in cascade deflation"). The time budget is consumed by the
// application and OS levels in order — OS memory unplug is truncated to
// what page migration can move in the remaining budget — and the hypervisor
// level completes regardless, as the backstop. Zero means unbounded.
func (c *Controller) SetDeadline(d time.Duration) { c.deadline = d }

// SetSLOPolicy installs a latency-SLO clamp consulted once per deflation,
// before any level runs. Latency-sensitive VMs registered with the policy
// are deflated only down to their measured headroom (the withheld portion
// is reported in Report.SLOWithheld); unregistered VMs are unaffected.
// Nil (the default) disables clamping entirely.
func (c *Controller) SetSLOPolicy(p SLOPolicy) { c.slo = p }

// SetFaultHook installs a fault injector consulted once per level per
// deflation. Failures degrade gracefully: a failed or hung level is skipped
// (charging any hang against the deadline budget) and the remaining target
// falls through to the next level, extending the §5 deadline semantics from
// "slow" to "failed".
func (c *Controller) SetFaultHook(h FaultHook) { c.faults = h }

func (c *Controller) fault(level string) LevelFault {
	if c.faults == nil {
		return LevelFault{}
	}
	return c.faults(level)
}

// Deflate reclaims target resources from v using the enabled levels, per
// the Fig. 3 control flow. The target must fit within v.Deflatable();
// the caller (the cluster manager's proportional policy) is responsible for
// choosing feasible targets and for preempting VMs that cannot meet them.
func (c *Controller) Deflate(v *vm.VM, target restypes.Vector) (Report, error) {
	r, err := c.deflate(v, target)
	if c.tel != nil {
		c.tel.record("deflate", c.levels, v.Name(), r, err)
	}
	return r, err
}

func (c *Controller) deflate(v *vm.VM, target restypes.Vector) (Report, error) {
	r := Report{Target: target}
	if v.Preempted() {
		return r, ErrPreempted
	}
	if v.Priority() == vm.HighPriority {
		return r, ErrHighPriority
	}
	target = target.ClampNonNegative()
	if !target.Fits(v.Deflatable()) {
		return r, fmt.Errorf("%w: target %v, deflatable %v", ErrExceedsDeflatable, target, v.Deflatable())
	}
	if target.IsZero() {
		r.NewAllocation = v.Allocation()
		return r, nil
	}

	// SLO clamp: a latency-sensitive VM is deflated only down to its
	// measured p99 headroom; the withheld remainder is the caller's to
	// re-route. Runs before any level so the whole cascade sees one
	// consistent, feasible target.
	if c.slo != nil {
		allowed := c.slo.ClampTarget(v, target).ClampNonNegative().Min(target)
		r.SLOWithheld = target.Sub(allowed).ClampNonNegative()
		target = allowed
		if target.IsZero() {
			r.NewAllocation = v.Allocation()
			return r, nil
		}
	}

	// Level 1: application self-deflation (best-effort, may return zero).
	// A crashed or hung agent reclaims nothing; the full target falls
	// through to the OS level. A hang that outlives the whole deadline is
	// abandoned at the deadline — the controller does not wait forever on a
	// wedged agent.
	if c.levels.App {
		f := c.fault("app")
		switch {
		case c.deadline > 0 && f.Hang >= c.deadline:
			r.AppFailed = true
			r.DeadlineExceeded = true
			r.App = LevelReport{Latency: c.deadline}
		case f.Fail:
			r.AppFailed = true
			r.App = LevelReport{Latency: f.Hang}
		default:
			rel, lat := v.App().SelfDeflate(target)
			v.SyncFootprint()
			r.App = LevelReport{Reclaimed: rel.ClampNonNegative(), Latency: lat + f.Hang}
		}
	}

	// Level 2: guest OS hot-unplug. Per Fig. 3 the unplug target is
	// bounded by the overall target; resources the app just freed are now
	// part of the guest's safely-unpluggable pool, so unplugging them
	// returns them to the hypervisor without swap cost. With a deadline
	// set, the unplug is further bounded by what the remaining time budget
	// allows — the hypervisor backstop takes the rest. Only guest-backed
	// instances have this level at all: a container has no guest kernel,
	// no vCPUs to unplug and no balloon, so the whole target falls through
	// to the substrate resize.
	if g := v.Guest(); c.levels.OS && g != nil {
		osTarget := target
		// Injected partial hot-unplug failure: only a fraction of the
		// requested unplug completes; the rest falls through to the
		// hypervisor backstop (or becomes shortfall in OS-only mode).
		if f := c.fault("os"); f.Fail {
			r.OSFailed = true
			osTarget = osTarget.Scale(f.Fraction)
			r.OS.Latency += f.Hang
		}
		if c.deadline > 0 {
			remaining := c.deadline - r.App.Latency - r.OS.Latency
			if remaining <= 0 {
				// Budget exhausted (slow or hung upper level): skip the OS
				// level entirely — failed, not just slow.
				osTarget = restypes.Vector{}
				r.DeadlineExceeded = true
			} else if c.memVia == MemHotUnplug {
				budgetMB := remaining.Seconds() * g.Config().PageMigrateMBps
				if osTarget.MemoryMB > budgetMB {
					osTarget.MemoryMB = budgetMB
					r.DeadlineExceeded = true
				}
			}
		}
		if !osTarget.IsZero() {
			rep := c.osReclaim(g, v, osTarget, !c.levels.Hypervisor)
			rep.Latency += r.OS.Latency // injected hang, if any
			r.OS = rep
		}
	}

	// Level 3: substrate overcommitment reclaims the full remaining
	// physical target. Resources already unplugged are released for free;
	// the rest is taken black-box (swap, CPU multiplexing, throttling on a
	// hypervisor; a single cgroup write on a container). The substrate's
	// reported resize floor is honored here as a last line of defense: a
	// memory limit the substrate would answer with an OOM kill is never
	// written, and the withheld portion becomes shortfall for the caller
	// to re-route. (Planners already cap targets via vm.Deflatable, so
	// this triggers only when the footprint grew mid-cascade.)
	if c.levels.Hypervisor {
		newAlloc := v.Allocation().Sub(target)
		var floorWithheld restypes.Vector
		if floor := v.Instance().ResizeFloorMB(); floor > 0 && newAlloc.MemoryMB < floor {
			clamped := math.Min(floor, v.Allocation().MemoryMB)
			floorWithheld.MemoryMB = clamped - newAlloc.MemoryMB
			newAlloc.MemoryMB = clamped
		}
		lat, err := v.Instance().SetAllocation(newAlloc)
		if err != nil {
			return r, fmt.Errorf("cascade: hypervisor reclaim: %w", err)
		}
		r.Shortfall = r.Shortfall.Add(floorWithheld)
		r.Hyp = LevelReport{
			Reclaimed: target.Sub(r.OS.Reclaimed).Sub(floorWithheld).ClampNonNegative(),
			Latency:   lat,
		}
	} else {
		// Without the hypervisor level, only what the OS physically
		// unplugged can be released.
		if !r.OS.Reclaimed.IsZero() {
			newAlloc := v.Allocation().Sub(r.OS.Reclaimed)
			if _, err := v.Instance().SetAllocation(newAlloc); err != nil {
				return r, fmt.Errorf("cascade: releasing unplugged resources: %w", err)
			}
		}
		r.Shortfall = target.Sub(r.OS.Reclaimed).ClampNonNegative()
	}

	r.NewAllocation = v.Allocation()
	r.TotalLatency = r.App.Latency + r.OS.Latency + r.Hyp.Latency
	v.ObserveEnv()
	return r, nil
}

// osReclaim performs guest-level hot-unplug toward target. When force is
// set (OS-only mode, no hypervisor fall-through), memory unplug ignores the
// safety margin to meet the target — which can OOM-kill the application,
// exactly the failure mode the paper measures for this configuration.
// Whole-vCPU quantization lives here — and only here: it is a property of
// the guest hotplug mechanism, not of deflation, and must never apply to
// substrates with fractional CPU shares.
func (c *Controller) osReclaim(g *guestos.GuestOS, v *vm.VM, target restypes.Vector, force bool) LevelReport {
	var rep LevelReport

	// CPU: whole-vCPU granularity — "the final amount of resources
	// unplugged can be at most ⌊unplug_target⌋" (§3.2.2).
	if target.CPU > 0 {
		n, lat := g.UnplugCPUs(int(math.Floor(target.CPU)))
		rep.Reclaimed.CPU = float64(n)
		rep.Latency += lat
	}

	// Memory: best-effort unless forced.
	if target.MemoryMB > 0 {
		var freed float64
		var lat time.Duration
		switch {
		case force:
			freed, lat = g.ForceUnplugMemory(target.MemoryMB)
		case c.memVia == MemBalloon:
			freed, lat = g.InflateBalloon(target.MemoryMB)
		default:
			freed, lat = g.UnplugMemory(target.MemoryMB)
		}
		rep.Reclaimed.MemoryMB = freed
		rep.Latency += lat
	}

	// Disk and network are never hot-unplugged — "we don't hot unplug NICs
	// and disks because it is generally unsafe" (§3.2.2). They fall through
	// to hypervisor throttling.
	return rep
}

// Reinflate returns amount resources to v, running the cascade in reverse
// (§5): first the hypervisor raises the physical allocation, then the guest
// re-plugs CPUs and memory, and finally the application's deflation agent is
// told about the new availability.
func (c *Controller) Reinflate(v *vm.VM, amount restypes.Vector) (Report, error) {
	r, err := c.reinflate(v, amount)
	if c.tel != nil {
		c.tel.record("reinflate", c.levels, v.Name(), r, err)
	}
	return r, err
}

func (c *Controller) reinflate(v *vm.VM, amount restypes.Vector) (Report, error) {
	r := Report{Target: amount}
	if v.Preempted() {
		return r, ErrPreempted
	}
	amount = amount.ClampNonNegative()

	if c.levels.Hypervisor {
		newAlloc := v.Allocation().Add(amount).Min(v.Size())
		lat, err := v.Instance().SetAllocation(newAlloc)
		if err != nil {
			return r, fmt.Errorf("cascade: hypervisor reinflate: %w", err)
		}
		r.Hyp = LevelReport{Reclaimed: newAlloc.Sub(v.Allocation()), Latency: lat}
	}

	// Guest-backed instances re-plug CPUs and memory; containers have
	// nothing to re-plug — the cgroup write above already restored them.
	if g := v.Guest(); c.levels.OS && g != nil {
		var rep LevelReport
		// Re-plug up to the physical CPU allocation (whole cores).
		if wantCPU := int(math.Floor(v.Allocation().CPU)) - g.CPUs(); wantCPU > 0 {
			n, lat := g.PlugCPUs(wantCPU)
			rep.Reclaimed.CPU = float64(n)
			rep.Latency += lat
		}
		// Release ballooned memory first (it is instantly usable), then
		// re-plug hot-unplugged memory.
		if g.BalloonMB() > 0 {
			mb, lat := g.DeflateBalloon(amount.MemoryMB)
			rep.Reclaimed.MemoryMB += mb
			rep.Latency += lat
		}
		if wantMem := v.Allocation().MemoryMB - g.MemoryMB(); wantMem > 0 {
			mb, lat := g.PlugMemory(wantMem)
			rep.Reclaimed.MemoryMB += mb
			rep.Latency += lat
		}
		r.OS = rep
	}

	if c.levels.App {
		v.App().Reinflate(v.Env())
		v.SyncFootprint()
	}

	r.NewAllocation = v.Allocation()
	r.TotalLatency = r.App.Latency + r.OS.Latency + r.Hyp.Latency
	v.ObserveEnv()
	return r, nil
}
