package cascade

import (
	"errors"
	"testing"
	"time"

	"deflation/internal/apps/apptest"
	"deflation/internal/guestos"
	"deflation/internal/restypes"
	"deflation/internal/simcg"
	"deflation/internal/vm"
)

func newContainerVM(t *testing.T, app vm.Application, cfg vm.Config) *vm.VM {
	t.Helper()
	h, err := simcg.NewHost(simcg.Config{Name: "cg", Capacity: restypes.V(16, 65536, 400, 400)})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := h.Spawn("c0", size(), guestos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := vm.NewOn(inst, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// A container has no guest kernel: the full cascade must silently skip the
// OS level (no balloon, no hot-unplug) and reclaim via one cgroup write.
func TestContainerCascadeSkipsOSLevel(t *testing.T) {
	v := newContainerVM(t, apptest.New("a"), vm.Config{})
	c := New(AllLevels())

	target := restypes.V(2, 8192, 0, 0)
	rep, err := c.Deflate(v, target)
	if err != nil {
		t.Fatalf("Deflate: %v", err)
	}
	if !rep.OS.Reclaimed.IsZero() || rep.OS.Latency != 0 {
		t.Errorf("OS level ran on a container: %+v", rep.OS)
	}
	if rep.Hyp.Reclaimed != target {
		t.Errorf("substrate level reclaimed %v, want %v", rep.Hyp.Reclaimed, target)
	}
	if rep.Hyp.Latency != 2*time.Millisecond {
		t.Errorf("substrate resize latency = %v, want the 2ms cgroup write", rep.Hyp.Latency)
	}
	if got := v.Allocation(); got != size().Sub(target) {
		t.Errorf("allocation = %v", got)
	}
	if v.Env().OOMKilled {
		t.Error("in-floor deflation OOM-killed the container")
	}

	if _, err := c.Reinflate(v, target); err != nil {
		t.Fatalf("Reinflate: %v", err)
	}
	if got := v.Allocation(); got != size() {
		t.Errorf("allocation after reinflate = %v", got)
	}
}

// Regression: the cascade must never write memory.max below the substrate's
// reported resize floor (live RSS + runtime overhead) — that is an OOM kill,
// not a reclamation. Deflatable caps the planner's target, and the level-3
// clamp catches RSS growth between planning and the resize.
func TestContainerCascadeHonorsResizeFloor(t *testing.T) {
	app := apptest.New("a")
	app.RSSMB = 12000
	v := newContainerVM(t, app, vm.Config{})
	c := New(AllLevels())

	// Planning: Deflatable's memory is capped at alloc − floor.
	floor := v.Instance().ResizeFloorMB()
	if want := 12064.0; floor != want {
		t.Fatalf("floor = %g, want %g", floor, want)
	}
	d := v.Deflatable()
	if want := size().MemoryMB - floor; d.MemoryMB != want {
		t.Fatalf("deflatable memory = %g, want %g", d.MemoryMB, want)
	}

	// A target beyond the floor-capped deflatable is refused outright.
	over := restypes.Vector{MemoryMB: d.MemoryMB + 1}
	if _, err := c.Deflate(v, over); !errors.Is(err, ErrExceedsDeflatable) {
		t.Fatalf("beyond-floor target err = %v", err)
	}

	// Deflating by the full deflatable amount lands exactly on the floor
	// and must not trip the OOM killer.
	rep, err := c.Deflate(v, restypes.Vector{MemoryMB: d.MemoryMB})
	if err != nil {
		t.Fatalf("Deflate to floor: %v", err)
	}
	if got := v.Allocation().MemoryMB; got != floor {
		t.Errorf("memory.max = %g, want the %g floor", got, floor)
	}
	if v.Env().OOMKilled {
		t.Error("deflating to the reported floor OOM-killed the container")
	}
	if !rep.Shortfall.IsZero() {
		t.Errorf("shortfall = %v for an in-floor target", rep.Shortfall)
	}
}

// growingApp grows its resident set when asked to shrink — the worst case
// for the planning/resize race: the floor the planner saw is stale by the
// time the substrate resize runs.
type growingApp struct {
	*apptest.App
	growTo float64
}

func (a *growingApp) SelfDeflate(restypes.Vector) (restypes.Vector, time.Duration) {
	a.App.RSSMB = a.growTo
	return restypes.Vector{}, 0
}

// Regression for the planning/resize race: if the RSS grows mid-cascade
// (after the target was validated against Deflatable), the level-3 clamp
// withholds the unsafe portion (reported as Shortfall) instead of
// OOM-killing the workload.
func TestContainerCascadeClampsStaleTarget(t *testing.T) {
	app := &growingApp{App: apptest.New("a"), growTo: 9000}
	app.RSSMB = 4000
	v := newContainerVM(t, app, vm.Config{})
	c := New(AllLevels())

	// Fine at planning time (floor 4064); the app level grows RSS to 9000,
	// raising the floor to 9064 before the substrate resize runs.
	target := restypes.Vector{MemoryMB: 10000}
	rep, err := c.Deflate(v, target)
	if err != nil {
		t.Fatalf("Deflate: %v", err)
	}
	if got := v.Allocation().MemoryMB; got != 9064 {
		t.Errorf("memory.max = %g, want clamp to the grown 9064 floor", got)
	}
	if v.Env().OOMKilled {
		t.Error("stale target OOM-killed the container")
	}
	wantWithheld := 10000.0 - (size().MemoryMB - 9064)
	if got := rep.Shortfall.MemoryMB; got != wantWithheld {
		t.Errorf("shortfall = %g, want the %g the floor withheld", got, wantWithheld)
	}
	if got := rep.Hyp.Reclaimed.MemoryMB; got != size().MemoryMB-9064 {
		t.Errorf("reclaimed = %g", got)
	}
}

// The hypervisor substrate reports no resize floor: deep memory deflation
// keeps working there (swap absorbs it), bit-for-bit as before.
func TestHypervisorSubstrateHasNoFloor(t *testing.T) {
	v := newVM(t, apptest.New("a"), vm.Config{})
	if floor := v.Instance().ResizeFloorMB(); floor != 0 {
		t.Fatalf("hypervisor floor = %g, want 0", floor)
	}
	if d := v.Deflatable(); d != size() {
		t.Fatalf("deflatable = %v, want the full allocation", d)
	}
}
