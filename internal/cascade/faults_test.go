package cascade

import (
	"testing"
	"time"

	"deflation/internal/apps/apptest"
	"deflation/internal/restypes"
	"deflation/internal/vm"
)

// hookFor returns a FaultHook injecting the given faults per level.
func hookFor(m map[string]LevelFault) FaultHook {
	return func(level string) LevelFault { return m[level] }
}

func TestAppFailureFallsThrough(t *testing.T) {
	// The agent crashes; the cascade must still meet the full target via
	// the lower levels instead of aborting.
	app := apptest.NewElastic("crashy", 12000, 2000)
	v := newVM(t, app, vm.Config{})
	v.Domain().MarkWarm()
	c := New(AllLevels())
	c.SetFaultHook(hookFor(map[string]LevelFault{"app": {Fail: true}}))

	target := restypes.V(2, 8192, 0, 0)
	r, err := c.Deflate(v, target)
	if err != nil {
		t.Fatal(err)
	}
	if !r.AppFailed {
		t.Error("AppFailed not reported")
	}
	if !r.App.Reclaimed.IsZero() {
		t.Errorf("failed agent reclaimed %v", r.App.Reclaimed)
	}
	if len(app.Calls) != 0 {
		t.Errorf("agent invoked %d times despite crash", len(app.Calls))
	}
	if got := v.Allocation(); got != v.Size().Sub(target) {
		t.Errorf("allocation = %v, target missed after app failure", got)
	}
	if r.Shortfall != (restypes.Vector{}) {
		t.Errorf("shortfall %v with hypervisor backstop enabled", r.Shortfall)
	}
}

func TestAgentHangBurnsDeadlineBudget(t *testing.T) {
	// The agent hangs for the whole deadline: it is abandoned, the OS level
	// is skipped (no budget left), and the hypervisor takes everything.
	app := apptest.NewElastic("hung", 12000, 2000)
	v := newVM(t, app, vm.Config{})
	v.Domain().MarkWarm()
	c := New(AllLevels())
	c.SetDeadline(5 * time.Second)
	c.SetFaultHook(hookFor(map[string]LevelFault{"app": {Hang: time.Minute}}))

	target := restypes.V(0, 8192, 0, 0)
	r, err := c.Deflate(v, target)
	if err != nil {
		t.Fatal(err)
	}
	if !r.AppFailed || !r.DeadlineExceeded {
		t.Errorf("hung agent: AppFailed=%v DeadlineExceeded=%v", r.AppFailed, r.DeadlineExceeded)
	}
	if r.App.Latency != 5*time.Second {
		t.Errorf("abandoned at %v, want the 5s deadline", r.App.Latency)
	}
	if !r.OS.Reclaimed.IsZero() {
		t.Errorf("OS ran with an exhausted budget: %v", r.OS.Reclaimed)
	}
	if got := v.Allocation(); got.MemoryMB != v.Size().MemoryMB-8192 {
		t.Errorf("allocation = %v, target missed", got)
	}
}

func TestPartialOSFailureFallsThroughToHypervisor(t *testing.T) {
	// Hot-unplug half-fails; the hypervisor must absorb the rest so the
	// physical target is still met.
	app := apptest.New("idle")
	app.RSSMB = 2000
	v := newVM(t, app, vm.Config{})
	v.Domain().MarkWarm()
	c := New(VMLevel())
	c.SetFaultHook(hookFor(map[string]LevelFault{"os": {Fail: true, Fraction: 0.5}}))

	target := restypes.V(0, 8192, 0, 0)
	r, err := c.Deflate(v, target)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OSFailed {
		t.Error("OSFailed not reported")
	}
	if r.OS.Reclaimed.MemoryMB > 4096+1 {
		t.Errorf("partial unplug freed %g MB, want ≤ half the 8192 target", r.OS.Reclaimed.MemoryMB)
	}
	if got := v.Allocation(); got.MemoryMB != v.Size().MemoryMB-8192 {
		t.Errorf("allocation = %v, hypervisor did not absorb the failed unplug", got)
	}
	if v.Env().SwappedMB <= 0 {
		t.Error("no swap despite failed unplug (hypervisor level idle?)")
	}
}

func TestTotalOSFailureWithoutHypervisorIsShortfall(t *testing.T) {
	// OS-only mode with a total unplug failure cannot reclaim anything:
	// the report must say so rather than pretending success.
	app := apptest.New("idle")
	app.RSSMB = 2000
	v := newVM(t, app, vm.Config{})
	v.Domain().MarkWarm()
	c := New(OSOnly())
	c.SetFaultHook(hookFor(map[string]LevelFault{"os": {Fail: true, Fraction: 0}}))

	target := restypes.V(0, 4096, 0, 0)
	r, err := c.Deflate(v, target)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OSFailed {
		t.Error("OSFailed not reported")
	}
	if r.Shortfall.MemoryMB != 4096 {
		t.Errorf("shortfall = %v, want the full 4096 target", r.Shortfall)
	}
	if got := v.Allocation(); got != v.Size() {
		t.Errorf("allocation changed to %v despite total failure", got)
	}
}

func TestNilFaultHookIsNoop(t *testing.T) {
	app := apptest.NewElastic("ok", 12000, 2000)
	v := newVM(t, app, vm.Config{})
	v.Domain().MarkWarm()
	c := New(AllLevels())
	r, err := c.Deflate(v, restypes.V(1, 2048, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r.AppFailed || r.OSFailed {
		t.Errorf("faults reported with no hook: %+v", r)
	}
}
