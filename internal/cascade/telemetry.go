package cascade

import (
	"time"

	"deflation/internal/restypes"
	"deflation/internal/telemetry"
)

// Cascade latency buckets: simulated reclamation spans milliseconds (vCPU
// unplug) to minutes (swap-bound memory reclamation of a 100 GB VM,
// Fig. 8b), so the buckets grow geometrically from 1 ms to ~4 min.
func cascadeBuckets() []float64 { return telemetry.ExpBuckets(0.001, 4, 10) }

// levelMetrics holds one cascade level's pre-created instruments.
type levelMetrics struct {
	seconds   *telemetry.Histogram
	failures  *telemetry.Counter
	reclaimed [restypes.NumKinds]*telemetry.Counter
}

func (m *levelMetrics) observe(rep LevelReport, failed bool) {
	m.seconds.Observe(rep.Latency.Seconds())
	if failed {
		m.failures.Inc()
	}
	for _, k := range restypes.Kinds() {
		m.reclaimed[k].Add(rep.Reclaimed.At(k))
	}
}

// controllerTelemetry is the controller's instrument set, created once by
// SetTelemetry so the per-deflation cost is atomic adds only.
type controllerTelemetry struct {
	sink *telemetry.Sink
	node string

	deflations       *telemetry.Counter
	reinflations     *telemetry.Counter
	errors           *telemetry.Counter
	deadlineExceeded *telemetry.Counter
	shortfalls       *telemetry.Counter
	shortfallAmount  [restypes.NumKinds]*telemetry.Counter
	reclaimSeconds   *telemetry.Histogram
	app, os, hyp     levelMetrics
}

// SetTelemetry wires the controller to a telemetry sink: per-level latency
// histograms and reclaimed-amount counters, shortfall and failure counters,
// and one tracer event per cascade decision. node labels the metrics and
// events with the owning server's name. A nil sink detaches.
func (c *Controller) SetTelemetry(sink *telemetry.Sink, node string) {
	if sink == nil {
		c.tel = nil
		return
	}
	r := sink.Registry
	nl := telemetry.Labels{"node": node}
	level := func(name string) levelMetrics {
		m := levelMetrics{
			seconds: r.Histogram("deflation_cascade_level_seconds",
				"per-level cascade reclamation latency (simulated seconds)",
				cascadeBuckets(), telemetry.Labels{"node": node, "level": name}),
			failures: r.Counter("deflation_cascade_level_failures_total",
				"cascade levels that failed or hung and degraded to the next level",
				telemetry.Labels{"node": node, "level": name}),
		}
		for _, k := range restypes.Kinds() {
			m.reclaimed[k] = r.Counter("deflation_cascade_reclaimed_total",
				"resources reclaimed per cascade level (cores, MB, MB/s)",
				telemetry.Labels{"node": node, "level": name, "resource": k.String()})
		}
		return m
	}
	t := &controllerTelemetry{
		sink: sink,
		node: node,
		deflations: r.Counter("deflation_cascade_deflations_total",
			"cascade deflation operations", nl),
		reinflations: r.Counter("deflation_cascade_reinflations_total",
			"cascade reinflation operations", nl),
		errors: r.Counter("deflation_cascade_errors_total",
			"cascade operations that returned an error", nl),
		deadlineExceeded: r.Counter("deflation_cascade_deadline_exceeded_total",
			"deflations whose deadline truncated the upper levels", nl),
		shortfalls: r.Counter("deflation_cascade_shortfalls_total",
			"deflations that could not fully meet their target", nl),
		reclaimSeconds: r.Histogram("deflation_cascade_reclaim_seconds",
			"end-to-end cascade reclamation latency (simulated seconds)",
			cascadeBuckets(), nl),
		app: level("app"),
		os:  level("os"),
		hyp: level("hypervisor"),
	}
	for _, k := range restypes.Kinds() {
		t.shortfallAmount[k] = r.Counter("deflation_cascade_shortfall_total",
			"unmet reclamation demand by resource (cores, MB, MB/s)",
			telemetry.Labels{"node": node, "resource": k.String()})
	}
	c.tel = t
}

// levelReached names the deepest cascade level that reclaimed a nonzero
// amount ("none" when nothing was reclaimed).
func levelReached(r Report) string {
	switch {
	case !r.Hyp.Reclaimed.IsZero():
		return "hypervisor"
	case !r.OS.Reclaimed.IsZero():
		return "os"
	case !r.App.Reclaimed.IsZero():
		return "app"
	}
	return "none"
}

// record publishes one cascade decision to the metrics registry and the
// trace ring.
func (t *controllerTelemetry) record(kind string, levels Levels, vmName string, r Report, err error) {
	switch kind {
	case "deflate":
		t.deflations.Inc()
	default:
		t.reinflations.Inc()
	}
	if err != nil {
		t.errors.Inc()
	}
	if r.DeadlineExceeded {
		t.deadlineExceeded.Inc()
	}
	if !r.Shortfall.IsZero() {
		t.shortfalls.Inc()
		for _, k := range restypes.Kinds() {
			t.shortfallAmount[k].Add(r.Shortfall.At(k))
		}
	}
	if levels.App {
		t.app.observe(r.App, r.AppFailed)
	}
	if levels.OS {
		t.os.observe(r.OS, r.OSFailed)
	}
	if levels.Hypervisor {
		t.hyp.observe(r.Hyp, false)
	}
	t.reclaimSeconds.Observe(r.TotalLatency.Seconds())

	e := telemetry.CascadeEvent{
		Time:             time.Now(),
		Kind:             kind,
		Node:             t.node,
		VM:               vmName,
		Levels:           levels.String(),
		Target:           r.Target,
		AppReclaimed:     r.App.Reclaimed,
		OSReclaimed:      r.OS.Reclaimed,
		HypReclaimed:     r.Hyp.Reclaimed,
		LevelReached:     levelReached(r),
		AppFailed:        r.AppFailed,
		OSFailed:         r.OSFailed,
		DeadlineExceeded: r.DeadlineExceeded,
		Shortfall:        r.Shortfall,
		Duration:         r.TotalLatency,
	}
	if err != nil {
		e.Err = err.Error()
	}
	t.sink.Tracer.Record(e)
}
