package cascade

import (
	"errors"
	"testing"

	"deflation/internal/apps/apptest"
	"deflation/internal/guestos"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/vm"
)

func size() restypes.Vector { return restypes.V(4, 16384, 100, 100) }

func newVM(t *testing.T, app vm.Application, cfg vm.Config) *vm.VM {
	t.Helper()
	h, err := hypervisor.NewHost(hypervisor.Config{Name: "h", Capacity: restypes.V(16, 65536, 400, 400)})
	if err != nil {
		t.Fatal(err)
	}
	d, err := h.CreateDomain("vm0", size(), guestos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := vm.New(d, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestLevelsString(t *testing.T) {
	cases := map[string]Levels{
		"app+os+hypervisor": AllLevels(),
		"os+hypervisor":     VMLevel(),
		"hypervisor":        HypervisorOnly(),
		"os":                OSOnly(),
		"none":              {},
	}
	for want, l := range cases {
		if got := l.String(); got != want {
			t.Errorf("Levels%+v.String() = %q, want %q", l, got, want)
		}
	}
}

func TestDeflateGuards(t *testing.T) {
	c := New(AllLevels())

	hi := newVM(t, apptest.New("a"), vm.Config{Priority: vm.HighPriority})
	if _, err := c.Deflate(hi, restypes.V(1, 0, 0, 0)); !errors.Is(err, ErrHighPriority) {
		t.Errorf("high-priority deflate err = %v", err)
	}

	lo := newVM(t, apptest.New("a"), vm.Config{MinSize: restypes.V(2, 8192, 50, 50)})
	if _, err := c.Deflate(lo, restypes.V(3, 0, 0, 0)); !errors.Is(err, ErrExceedsDeflatable) {
		t.Errorf("beyond-deflatable err = %v", err)
	}

	dead := newVM(t, apptest.New("a"), vm.Config{})
	dead.Preempt()
	if _, err := c.Deflate(dead, restypes.V(1, 0, 0, 0)); !errors.Is(err, ErrPreempted) {
		t.Errorf("preempted deflate err = %v", err)
	}
}

func TestDeflateZeroTargetIsNoOp(t *testing.T) {
	v := newVM(t, apptest.New("a"), vm.Config{})
	r, err := New(AllLevels()).Deflate(v, restypes.Vector{})
	if err != nil {
		t.Fatal(err)
	}
	if r.NewAllocation != size() || r.TotalLatency != 0 {
		t.Errorf("no-op changed state: %+v", r)
	}
}

func TestHypervisorOnlyDeflation(t *testing.T) {
	app := apptest.New("memhog")
	app.RSSMB = 12000
	v := newVM(t, app, vm.Config{})
	target := restypes.V(2, 8192, 50, 50)

	r, err := New(HypervisorOnly()).Deflate(v, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Calls) != 0 {
		t.Error("hypervisor-only cascade called the application")
	}
	if got, want := v.Allocation(), size().Sub(target); got != want {
		t.Errorf("allocation = %v, want %v", got, want)
	}
	// Guest still sees 4 vCPUs and full memory: black-box deflation.
	if v.Domain().Guest().CPUs() != 4 || v.Domain().Guest().MemoryMB() != 16384 {
		t.Error("hypervisor-only deflation changed guest-visible resources")
	}
	// LHP penalty: 4 vCPUs on 2 physical cores.
	env := v.Env()
	if env.EffectiveCores >= 2 {
		t.Errorf("EffectiveCores = %g, want < 2 (LHP)", env.EffectiveCores)
	}
	// Swapping: touched 12256 vs 8192 resident ⇒ swap latency.
	if env.SwappedMB <= 0 {
		t.Error("expected host swapping")
	}
	if r.Hyp.Latency <= 0 {
		t.Error("expected swap-out latency")
	}
	if !r.Shortfall.IsZero() {
		t.Errorf("hypervisor-only shortfall = %v, want zero", r.Shortfall)
	}
}

func TestVMLevelDeflationUnplugsFirst(t *testing.T) {
	app := apptest.New("idle")
	app.RSSMB = 2000 // plenty of free guest memory
	v := newVM(t, app, vm.Config{})
	target := restypes.V(2, 8192, 0, 0)

	r, err := New(VMLevel()).Deflate(v, target)
	if err != nil {
		t.Fatal(err)
	}
	// OS unplugged 2 vCPUs and all 8192 MB (free memory was ample).
	if r.OS.Reclaimed.CPU != 2 {
		t.Errorf("OS reclaimed %g CPUs, want 2", r.OS.Reclaimed.CPU)
	}
	if r.OS.Reclaimed.MemoryMB != 8192 {
		t.Errorf("OS reclaimed %g MB, want 8192", r.OS.Reclaimed.MemoryMB)
	}
	// No multiplexing: guest CPUs == physical cores ⇒ no LHP penalty.
	env := v.Env()
	if env.VCPUs != 2 || env.EffectiveCores != 2 {
		t.Errorf("env = %+v, want 2 vCPUs at full efficiency", env)
	}
	// No swapping: memory was unplugged, not overcommitted.
	if env.SwappedMB != 0 {
		t.Errorf("SwappedMB = %g, want 0", env.SwappedMB)
	}
	if got, want := v.Allocation(), size().Sub(target); got != want {
		t.Errorf("allocation = %v, want %v", got, want)
	}
}

func TestVMLevelFallsThroughToHypervisor(t *testing.T) {
	// Busy guest: most memory in RSS, little safely unpluggable.
	app := apptest.New("busy")
	app.RSSMB = 14000
	v := newVM(t, app, vm.Config{})
	target := restypes.V(0, 8192, 0, 0)

	r, err := New(VMLevel()).Deflate(v, target)
	if err != nil {
		t.Fatal(err)
	}
	if r.OS.Reclaimed.MemoryMB >= 8192 {
		t.Errorf("OS reclaimed %g MB, want partial", r.OS.Reclaimed.MemoryMB)
	}
	// Hypervisor picked up the slack; full target met.
	if got := r.Hyp.Reclaimed.MemoryMB; got <= 0 {
		t.Errorf("hypervisor reclaimed %g, want > 0", got)
	}
	if v.Allocation().MemoryMB != 16384-8192 {
		t.Errorf("allocation mem = %g, want 8192", v.Allocation().MemoryMB)
	}
	// The unmet unplug becomes swap.
	if v.Env().SwappedMB <= 0 {
		t.Error("expected swapping for the non-unpluggable remainder")
	}
}

func TestFullCascadeAppFreesMemoryFirst(t *testing.T) {
	// Elastic app (like deflation-aware memcached) shrinks its RSS, so the
	// OS can unplug the freed memory and nothing swaps.
	app := apptest.NewElastic("memcached", 14000, 2000)
	v := newVM(t, app, vm.Config{})
	target := restypes.V(0, 8192, 0, 0)

	r, err := New(AllLevels()).Deflate(v, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Calls) != 1 || app.Calls[0] != target {
		t.Errorf("app saw calls %v, want one call with %v", app.Calls, target)
	}
	if r.App.Reclaimed.MemoryMB != 8192 {
		t.Errorf("app reclaimed %g MB, want 8192", r.App.Reclaimed.MemoryMB)
	}
	if app.RSSMB != 14000-8192 {
		t.Errorf("app RSS = %g, want %g", app.RSSMB, 14000.0-8192.0)
	}
	if r.OS.Reclaimed.MemoryMB <= 0 {
		t.Error("OS unplugged nothing after app freed memory")
	}
	if v.Env().SwappedMB != 0 {
		t.Errorf("SwappedMB = %g, want 0 after cooperative deflation", v.Env().SwappedMB)
	}
}

func TestOSOnlyForcedUnplugOOMs(t *testing.T) {
	// The Fig. 5a failure mode: OS-only memory deflation beyond the app's
	// footprint OOM-kills it.
	app := apptest.New("memcached")
	app.RSSMB = 12000
	v := newVM(t, app, vm.Config{})

	r, err := New(OSOnly()).Deflate(v, restypes.V(0, 8192, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Env().OOMKilled {
		t.Error("forced OS-only unplug did not OOM")
	}
	if v.Throughput() != 0 {
		t.Errorf("throughput after OOM = %g, want 0", v.Throughput())
	}
	if r.OS.Reclaimed.MemoryMB != 8192 {
		t.Errorf("forced unplug reclaimed %g, want 8192", r.OS.Reclaimed.MemoryMB)
	}
}

func TestOSOnlyModerateDeflationIsSafe(t *testing.T) {
	app := apptest.New("memcached")
	app.RSSMB = 8000
	v := newVM(t, app, vm.Config{})

	// 4 GB target fits in free memory: no OOM, and allocation shrinks by
	// exactly what was unplugged.
	r, err := New(OSOnly()).Deflate(v, restypes.V(0, 4096, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if v.Env().OOMKilled {
		t.Error("safe OS-only deflation OOMed")
	}
	if r.Shortfall.MemoryMB != 0 {
		t.Errorf("shortfall = %g, want 0", r.Shortfall.MemoryMB)
	}
	if v.Allocation().MemoryMB != 16384-4096 {
		t.Errorf("allocation mem = %g, want 12288", v.Allocation().MemoryMB)
	}
}

func TestOSOnlyCPUShortfall(t *testing.T) {
	v := newVM(t, apptest.New("a"), vm.Config{})
	// 3.5-core target: OS can unplug 3 whole vCPUs at most.
	r, err := New(OSOnly()).Deflate(v, restypes.V(3.5, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r.OS.Reclaimed.CPU != 3 {
		t.Errorf("unplugged %g CPUs, want 3", r.OS.Reclaimed.CPU)
	}
	if r.Shortfall.CPU != 0.5 {
		t.Errorf("CPU shortfall = %g, want 0.5", r.Shortfall.CPU)
	}
}

func TestFractionalCPUSplitsAcrossLevels(t *testing.T) {
	v := newVM(t, apptest.New("a"), vm.Config{})
	r, err := New(VMLevel()).Deflate(v, restypes.V(1.5, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r.OS.Reclaimed.CPU != 1 {
		t.Errorf("OS unplugged %g, want 1 (floor)", r.OS.Reclaimed.CPU)
	}
	if r.Hyp.Reclaimed.CPU != 0.5 {
		t.Errorf("hypervisor reclaimed %g, want 0.5", r.Hyp.Reclaimed.CPU)
	}
	if v.Allocation().CPU != 2.5 {
		t.Errorf("allocation CPU = %g, want 2.5", v.Allocation().CPU)
	}
	// 3 vCPUs on 2.5 cores: mild LHP.
	env := v.Env()
	if env.VCPUs != 3 || env.EffectiveCores >= 2.5 {
		t.Errorf("env = %+v, want 3 vCPUs with LHP on 2.5 cores", env)
	}
}

func TestIOAlwaysHypervisorThrottled(t *testing.T) {
	r, err := New(AllLevels()).Deflate(newVMWith(t), restypes.V(0, 0, 60, 70))
	if err != nil {
		t.Fatal(err)
	}
	if r.OS.Reclaimed.DiskMBps != 0 || r.OS.Reclaimed.NetMBps != 0 {
		t.Error("OS unplugged disk/net (unsafe)")
	}
	if r.Hyp.Reclaimed.DiskMBps != 60 || r.Hyp.Reclaimed.NetMBps != 70 {
		t.Errorf("hypervisor I/O reclaim = %v", r.Hyp.Reclaimed)
	}
	if r.NewAllocation.DiskMBps != 40 || r.NewAllocation.NetMBps != 30 {
		t.Errorf("new allocation = %v", r.NewAllocation)
	}
}

func newVMWith(t *testing.T) *vm.VM {
	t.Helper()
	return newVM(t, apptest.New("a"), vm.Config{})
}

func TestCascadeLatencyLowerWithAppDeflation(t *testing.T) {
	// Fig. 8b's mechanism: app-level deflation frees memory so the OS can
	// unplug it quickly, instead of the hypervisor swapping it out slowly.
	target := restypes.V(0, 8192, 0, 0)

	appAware := apptest.NewElastic("aware", 14000, 2000)
	v1 := newVM(t, appAware, vm.Config{})
	r1, err := New(AllLevels()).Deflate(v1, target)
	if err != nil {
		t.Fatal(err)
	}

	blind := apptest.New("blind")
	blind.RSSMB = 14000
	v2 := newVM(t, blind, vm.Config{})
	r2, err := New(VMLevel()).Deflate(v2, target)
	if err != nil {
		t.Fatal(err)
	}

	if r1.TotalLatency >= r2.TotalLatency {
		t.Errorf("cascade latency %v not lower than VM-level %v", r1.TotalLatency, r2.TotalLatency)
	}
}

func TestReinflateRestoresEverything(t *testing.T) {
	app := apptest.NewElastic("memcached", 14000, 2000)
	v := newVM(t, app, vm.Config{})
	c := New(AllLevels())
	target := restypes.V(2, 8192, 50, 50)
	if _, err := c.Deflate(v, target); err != nil {
		t.Fatal(err)
	}

	r, err := c.Reinflate(v, target)
	if err != nil {
		t.Fatal(err)
	}
	if v.Allocation() != size() {
		t.Errorf("allocation after reinflate = %v, want %v", v.Allocation(), size())
	}
	g := v.Domain().Guest()
	if g.CPUs() != 4 {
		t.Errorf("guest CPUs = %d, want 4", g.CPUs())
	}
	if g.MemoryMB() != 16384 {
		t.Errorf("guest memory = %g, want 16384", g.MemoryMB())
	}
	if app.Reinflations != 1 {
		t.Errorf("app reinflations = %d, want 1", app.Reinflations)
	}
	if r.NewAllocation != size() {
		t.Errorf("report allocation = %v", r.NewAllocation)
	}
}

func TestReinflateNeverExceedsSize(t *testing.T) {
	v := newVMWith(t)
	c := New(AllLevels())
	if _, err := c.Deflate(v, restypes.V(1, 1024, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reinflate(v, restypes.V(100, 1e6, 1e3, 1e3)); err != nil {
		t.Fatal(err)
	}
	if v.Allocation() != size() {
		t.Errorf("allocation = %v, want clamped to %v", v.Allocation(), size())
	}
}

func TestReinflatePreempted(t *testing.T) {
	v := newVMWith(t)
	v.Preempt()
	if _, err := New(AllLevels()).Reinflate(v, restypes.V(1, 0, 0, 0)); !errors.Is(err, ErrPreempted) {
		t.Errorf("err = %v, want ErrPreempted", err)
	}
}
