package cascade

import (
	"testing"
	"testing/quick"

	"deflation/internal/apps/apptest"
	"deflation/internal/guestos"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/vm"
)

// propVM builds a fresh standard VM for property runs.
func propVM(elastic bool) (*vm.VM, error) {
	h, err := hypervisor.NewHost(hypervisor.Config{Name: "h", Capacity: restypes.V(16, 65536, 400, 400)})
	if err != nil {
		return nil, err
	}
	d, err := h.CreateDomain("vm0", restypes.V(4, 16384, 100, 100), guestos.Config{})
	if err != nil {
		return nil, err
	}
	d.MarkWarm()
	var app vm.Application
	if elastic {
		app = apptest.NewElastic("e", 8000, 1000)
	} else {
		a := apptest.New("i")
		a.RSSMB = 8000
		app = a
	}
	return vm.New(d, app, vm.Config{})
}

// op decodes a fuzzed byte into a deflate/reinflate step.
type op struct {
	deflate bool
	frac    restypes.Vector
}

func decodeOps(raw []uint16) []op {
	ops := make([]op, 0, len(raw))
	for _, x := range raw {
		f := float64(x%64) / 100 // 0..0.63
		ops = append(ops, op{
			deflate: x%2 == 0,
			frac:    restypes.V(f*4, f*16384, f*100, f*100),
		})
	}
	return ops
}

// TestQuickCascadeInvariants drives random deflate/reinflate sequences
// through every level combination and checks the safety invariants:
// allocations stay within [0, size], the guest never goes below 1 vCPU, the
// elastic app is never OOM-killed, and host free capacity never goes
// negative.
func TestQuickCascadeInvariants(t *testing.T) {
	for _, levels := range []Levels{AllLevels(), VMLevel(), HypervisorOnly()} {
		levels := levels
		f := func(raw []uint16, elastic bool) bool {
			v, err := propVM(elastic)
			if err != nil {
				return false
			}
			c := New(levels)
			for _, o := range decodeOps(raw) {
				if o.deflate {
					target := o.frac.Min(v.Deflatable())
					if _, err := c.Deflate(v, target); err != nil {
						return false
					}
				} else {
					if _, err := c.Reinflate(v, o.frac); err != nil {
						return false
					}
				}
				alloc := v.Allocation()
				if !alloc.Fits(v.Size()) || alloc.Sub(restypes.Vector{}).ClampNonNegative() != alloc {
					return false
				}
				g := v.Domain().Guest()
				if g.CPUs() < 1 || g.MemoryMB() < 0 {
					return false
				}
				if v.Env().OOMKilled {
					return false // cascade must never OOM an app
				}
				if free := v.Domain().Env(); free.EffectiveCores < 0 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("levels %v: %v", levels, err)
		}
	}
}

// TestQuickDeflateReinflateRoundTrip: a full deflation followed by a full
// reinflation restores the exact nominal allocation and guest shape.
func TestQuickDeflateReinflateRoundTrip(t *testing.T) {
	f := func(x uint16, elastic bool) bool {
		v, err := propVM(elastic)
		if err != nil {
			return false
		}
		frac := float64(x%70) / 100
		target := v.Size().Scale(frac)
		c := New(AllLevels())
		if _, err := c.Deflate(v, target); err != nil {
			return false
		}
		if _, err := c.Reinflate(v, target); err != nil {
			return false
		}
		g := v.Domain().Guest()
		return v.Allocation() == v.Size() && g.CPUs() == 4 &&
			g.MemoryMB() == 16384 && g.BalloonMB() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeflationAlwaysMeetsTarget: with the hypervisor level enabled,
// the physical allocation always drops by exactly the target.
func TestQuickDeflationAlwaysMeetsTarget(t *testing.T) {
	f := func(x uint16, balloon bool) bool {
		v, err := propVM(true)
		if err != nil {
			return false
		}
		frac := float64(x%80) / 100
		target := v.Size().Scale(frac)
		c := New(AllLevels())
		if balloon {
			c.SetMemMechanism(MemBalloon)
		}
		before := v.Allocation()
		rep, err := c.Deflate(v, target)
		if err != nil {
			return false
		}
		want := before.Sub(target)
		got := rep.NewAllocation
		const eps = 1e-6
		return abs(got.CPU-want.CPU) < eps && abs(got.MemoryMB-want.MemoryMB) < eps &&
			abs(got.DiskMBps-want.DiskMBps) < eps && abs(got.NetMBps-want.NetMBps) < eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
