package cascade

import (
	"testing"
	"time"

	"deflation/internal/apps/apptest"
	"deflation/internal/restypes"
	"deflation/internal/vm"
)

func TestDeadlineTruncatesOSUnplug(t *testing.T) {
	// Unbounded: 8 GB of free memory is unplugged (≈6.8 s at 1200 MB/s).
	app := apptest.New("idle")
	app.RSSMB = 2000
	v1 := newVM(t, app, vm.Config{})
	v1.Domain().MarkWarm()
	c1 := New(VMLevel())
	r1, err := c1.Deflate(v1, restypes.V(0, 8192, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r1.DeadlineExceeded {
		t.Error("unbounded deflate reported deadline exceeded")
	}
	if r1.OS.Reclaimed.MemoryMB < 8000 {
		t.Fatalf("baseline unplug = %g, want ≈8192", r1.OS.Reclaimed.MemoryMB)
	}

	// A 2-second deadline only allows ≈2400 MB of migration; the
	// hypervisor must swap the rest.
	app2 := apptest.New("idle")
	app2.RSSMB = 2000
	v2 := newVM(t, app2, vm.Config{})
	v2.Domain().MarkWarm()
	c2 := New(VMLevel())
	c2.SetDeadline(2 * time.Second)
	r2, err := c2.Deflate(v2, restypes.V(0, 8192, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !r2.DeadlineExceeded {
		t.Error("deadline not reported")
	}
	if r2.OS.Reclaimed.MemoryMB > 2400+1 {
		t.Errorf("unplug = %g MB, want ≤ migration budget 2400", r2.OS.Reclaimed.MemoryMB)
	}
	// The target was still met — via hypervisor overcommitment.
	if v2.Allocation().MemoryMB != 16384-8192 {
		t.Errorf("allocation = %v, target missed", v2.Allocation())
	}
	if v2.Env().SwappedMB <= 0 {
		t.Error("no swap despite truncated unplug")
	}
}

func TestDeadlineConsumedByApplication(t *testing.T) {
	// A slow application level exhausts the whole budget: the OS memory
	// step is skipped and the hypervisor takes everything.
	app := apptest.NewElastic("slow", 12000, 2000)
	app.DeflateLatency = 10 * time.Second
	v := newVM(t, app, vm.Config{})
	v.Domain().MarkWarm()
	c := New(AllLevels())
	c.SetDeadline(5 * time.Second)
	r, err := c.Deflate(v, restypes.V(0, 8192, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !r.DeadlineExceeded {
		t.Error("deadline not reported")
	}
	if r.OS.Reclaimed.MemoryMB != 0 {
		t.Errorf("OS unplugged %g MB with an exhausted budget", r.OS.Reclaimed.MemoryMB)
	}
	if v.Allocation().MemoryMB != 16384-8192 {
		t.Errorf("allocation = %v, target missed", v.Allocation())
	}
}

func TestDeadlineIrrelevantForBalloon(t *testing.T) {
	// Ballooning is fast; a tight deadline still completes at the OS level.
	app := apptest.New("idle")
	app.RSSMB = 2000
	v := newVM(t, app, vm.Config{})
	v.Domain().MarkWarm()
	c := New(VMLevel())
	c.SetMemMechanism(MemBalloon)
	c.SetDeadline(2 * time.Second)
	r, err := c.Deflate(v, restypes.V(0, 8192, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r.OS.Reclaimed.MemoryMB != 8192 {
		t.Errorf("balloon reclaimed %g under deadline, want full 8192", r.OS.Reclaimed.MemoryMB)
	}
	if r.TotalLatency > 2*time.Second {
		t.Errorf("latency %v exceeds deadline", r.TotalLatency)
	}
}
