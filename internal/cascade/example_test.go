package cascade_test

import (
	"fmt"
	"log"

	"deflation/internal/apps/curveapp"
	"deflation/internal/cascade"
	"deflation/internal/guestos"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/vm"
)

// Example shows a full cascade deflation of a memory-elastic application:
// the application gives up what its sizing policy allows, the guest OS
// hot-unplugs the freed (and free) memory, and the hypervisor reclaims the
// rest.
func Example() {
	host, err := hypervisor.NewHost(hypervisor.Config{
		Name: "host-0", Capacity: restypes.V(16, 65536, 1600, 5000),
	})
	if err != nil {
		log.Fatal(err)
	}
	size := restypes.V(4, 16384, 400, 1250)
	dom, err := host.CreateDomain("demo", size, guestos.Config{})
	if err != nil {
		log.Fatal(err)
	}
	dom.MarkWarm()

	app := curveapp.New(curveapp.Config{Size: size, Elastic: true})
	v, err := vm.New(dom, app, vm.Config{})
	if err != nil {
		log.Fatal(err)
	}

	ctrl := cascade.New(cascade.AllLevels())
	rep, err := ctrl.Deflate(v, size.Scale(0.5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application freed %.0f MB\n", rep.App.Reclaimed.MemoryMB)
	fmt.Printf("guest unplugged %.0f CPUs\n", rep.OS.Reclaimed.CPU)
	fmt.Printf("allocation now %v\n", rep.NewAllocation)

	if _, err := ctrl.Reinflate(v, size.Scale(0.5)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored to %v\n", v.Allocation())
	// Output:
	// application freed 3661 MB
	// guest unplugged 2 CPUs
	// allocation now {cpu:2 mem:8192MB disk:200MB/s net:625MB/s}
	// restored to {cpu:4 mem:16384MB disk:400MB/s net:1250MB/s}
}
