// Package faults provides a seeded, deterministic fault injector for the
// deflation control plane. A real transiency-exploiting cluster sees server
// revocations, hung deflation agents, partially-failed hot-unplugs, and a
// flaky network between the manager and its local controllers; this package
// models all four so chaos experiments (internal/experiments.Chaos) can
// measure the system under them.
//
// Determinism is the design constraint: every decision is drawn from an
// independent per-category PRNG stream derived from Config.Seed, so two runs
// with the same seed inject byte-identical fault schedules regardless of
// which categories are enabled — enabling HTTP faults never perturbs the
// node-crash schedule. The injector composes with internal/simclock: it
// produces durations and outcomes, and the caller schedules them on the
// simulation clock (or applies them to real wall-clock operations).
package faults

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"
)

// Config parameterizes fault injection. The zero value disables every
// category; Enabled reports whether any category is active.
type Config struct {
	// Seed drives all injection decisions. Runs with equal seeds (and equal
	// workloads) produce identical fault schedules.
	Seed int64

	// CrashMTBF is the per-node mean time between crash-stop failures
	// (exponentially distributed). Zero disables node crashes.
	CrashMTBF time.Duration
	// RecoveryTime is how long a crashed node stays down before it reboots
	// empty and may rejoin (default 5m).
	RecoveryTime time.Duration

	// ManagerCrashMTBF is the mean time between crash-restart failures of
	// the centralized manager itself (exponentially distributed). The
	// manager loses all in-memory state and recovers from its journal; the
	// nodes keep running. Zero disables manager crashes.
	ManagerCrashMTBF time.Duration

	// AgentFailProb is the probability that the application deflation agent
	// fails outright during a cascade (reclaims nothing at its level).
	AgentFailProb float64
	// AgentHangProb is the probability that the agent hangs for
	// AgentHangDelay before responding (or failing), consuming the
	// cascade's time budget.
	AgentHangProb float64
	// AgentHangDelay is the hang duration (default 30s).
	AgentHangDelay time.Duration

	// OSFailProb is the probability that a guest hot-unplug partially
	// fails: only a fraction of the requested unplug completes and the
	// remainder falls through to the hypervisor level.
	OSFailProb float64
	// OSPartialMax bounds the fraction of the unplug target that still
	// succeeds on a partial failure; the achieved fraction is drawn
	// uniformly from [0, OSPartialMax] (default 0.5).
	OSPartialMax float64

	// HTTPErrorProb, HTTPDropProb, and HTTPDelayProb inject REST-plane
	// faults: a 5xx response, a dropped connection, or an added delay of up
	// to HTTPDelayMax (default 2s).
	HTTPErrorProb float64
	HTTPDropProb  float64
	HTTPDelayProb float64
	HTTPDelayMax  time.Duration

	// MigrationFailProb is the probability that a live migration fails
	// mid-copy (link error, destination qemu crash) after the pre-copy
	// stream has run; the VM rolls back to the source.
	MigrationFailProb float64

	// PartitionMTBF is the mean time between network partitions that cut
	// the active manager off from every local controller (exponentially
	// distributed). During a partition the old leader keeps running but none
	// of its node RPCs land — the dual-leader window fencing epochs exist
	// for. Zero disables partitions.
	PartitionMTBF time.Duration
	// PartitionDuration is how long each partition lasts before the network
	// heals (default 60s).
	PartitionDuration time.Duration

	// DiskFailProb is the per-operation probability that a journal disk
	// write or fsync fails. One failure poisons the journal (fail-stop), so
	// in practice this schedules the leader's first unrecoverable storage
	// error. Zero disables disk faults.
	DiskFailProb float64

	// DiskSlowProb is the per-operation probability that a journal disk
	// write or fsync stalls (a degraded device, a saturated virtio queue)
	// for up to DiskSlowMax before completing NORMALLY. Unlike DiskFailProb
	// this never poisons the journal — it stretches commit latency, which
	// is what surfaces ack-before-fsync bugs and slow-leader tail latency.
	DiskSlowProb float64
	// DiskSlowMax bounds each injected stall (default 50ms); the stall is
	// drawn uniformly from (0, DiskSlowMax].
	DiskSlowMax time.Duration
}

// Enabled reports whether any fault category is configured.
func (c Config) Enabled() bool {
	return c.CrashMTBF > 0 || c.ManagerCrashMTBF > 0 ||
		c.AgentFailProb > 0 || c.AgentHangProb > 0 ||
		c.OSFailProb > 0 ||
		c.HTTPErrorProb > 0 || c.HTTPDropProb > 0 || c.HTTPDelayProb > 0 ||
		c.MigrationFailProb > 0 ||
		c.PartitionMTBF > 0 || c.DiskFailProb > 0 || c.DiskSlowProb > 0
}

func (c Config) withDefaults() Config {
	if c.RecoveryTime == 0 {
		c.RecoveryTime = 5 * time.Minute
	}
	if c.AgentHangDelay == 0 {
		c.AgentHangDelay = 30 * time.Second
	}
	if c.OSPartialMax == 0 {
		c.OSPartialMax = 0.5
	}
	if c.HTTPDelayMax == 0 {
		c.HTTPDelayMax = 2 * time.Second
	}
	if c.PartitionDuration == 0 {
		c.PartitionDuration = 60 * time.Second
	}
	if c.DiskSlowMax == 0 {
		c.DiskSlowMax = 50 * time.Millisecond
	}
	return c
}

// Injector draws fault decisions from independent per-category streams.
// It is safe for concurrent use (the HTTP middleware runs on server
// goroutines).
type Injector struct {
	cfg Config

	mu      sync.Mutex
	streams map[string]*rand.Rand
}

// New builds an injector from cfg.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg.withDefaults(), streams: make(map[string]*rand.Rand)}
}

// Config returns the (defaulted) configuration.
func (in *Injector) Config() Config { return in.cfg }

// stream returns the named category's PRNG, creating it deterministically
// from the seed and the name. Callers must hold in.mu.
func (in *Injector) stream(name string) *rand.Rand {
	if r, ok := in.streams[name]; ok {
		return r
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	r := rand.New(rand.NewSource(in.cfg.Seed ^ int64(h.Sum64())))
	in.streams[name] = r
	return r
}

// NextCrash returns the time until the named node's next crash-stop failure
// (measured from "now", whatever clock the caller runs on). ok is false when
// node crashes are disabled. Each node has its own stream, so the crash
// schedule of one node is independent of how many others exist.
func (in *Injector) NextCrash(node string) (d time.Duration, ok bool) {
	if in.cfg.CrashMTBF <= 0 {
		return 0, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	r := in.stream("crash/" + node)
	return time.Duration(r.ExpFloat64() * float64(in.cfg.CrashMTBF)), true
}

// NextManagerCrash returns the time until the manager's next crash-restart
// failure. ok is false when manager crashes are disabled. The "manager"
// stream is independent of every node's crash stream, so enabling manager
// crashes never perturbs the node-crash schedule.
func (in *Injector) NextManagerCrash() (d time.Duration, ok bool) {
	if in.cfg.ManagerCrashMTBF <= 0 {
		return 0, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	r := in.stream("manager")
	return time.Duration(r.ExpFloat64() * float64(in.cfg.ManagerCrashMTBF)), true
}

// RecoveryTime returns how long the named node stays down after a crash.
func (in *Injector) RecoveryTime(node string) time.Duration {
	return in.cfg.RecoveryTime
}

// LevelOutcome describes an injected application-agent fault during one
// cascade deflation.
type LevelOutcome struct {
	Fail bool          // the agent reclaims nothing
	Hang time.Duration // extra latency consumed before responding/failing
}

// AgentFault draws the application-agent outcome for one cascade. The same
// number of random values is consumed regardless of outcome, keeping the
// stream stable across configurations.
func (in *Injector) AgentFault() LevelOutcome {
	in.mu.Lock()
	defer in.mu.Unlock()
	r := in.stream("agent")
	hang, fail := r.Float64(), r.Float64()
	var o LevelOutcome
	if hang < in.cfg.AgentHangProb {
		o.Hang = in.cfg.AgentHangDelay
	}
	o.Fail = fail < in.cfg.AgentFailProb
	return o
}

// UnplugOutcome describes an injected guest hot-unplug fault.
type UnplugOutcome struct {
	// Fail marks the unplug as partially failed; Fraction of the target
	// still succeeded (0 = total failure).
	Fail     bool
	Fraction float64
}

// OSFault draws the hot-unplug outcome for one cascade.
func (in *Injector) OSFault() UnplugOutcome {
	in.mu.Lock()
	defer in.mu.Unlock()
	r := in.stream("os")
	p, frac := r.Float64(), r.Float64()
	var o UnplugOutcome
	if p < in.cfg.OSFailProb {
		o.Fail = true
		o.Fraction = frac * in.cfg.OSPartialMax
	}
	return o
}

// MigrationFault draws whether one live migration fails mid-copy. The
// "migration" stream is independent of every other category, so enabling
// migration faults never perturbs crash, agent, OS, or HTTP schedules.
func (in *Injector) MigrationFault() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	r := in.stream("migration")
	return r.Float64() < in.cfg.MigrationFailProb
}

// NextPartition returns the time until the next manager↔controller network
// partition. ok is false when partitions are disabled. The "partition"
// stream is independent of every other category.
func (in *Injector) NextPartition() (d time.Duration, ok bool) {
	if in.cfg.PartitionMTBF <= 0 {
		return 0, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	r := in.stream("partition")
	return time.Duration(r.ExpFloat64() * float64(in.cfg.PartitionMTBF)), true
}

// PartitionDuration returns how long a partition lasts before the network
// heals.
func (in *Injector) PartitionDuration() time.Duration {
	return in.cfg.PartitionDuration
}

// DiskFault draws whether one journal disk operation (write or fsync)
// fails, from the independent "disk" stream. Suitable for wiring directly
// into journal.Options.FailOp; the error is stable text so fault schedules
// are reproducible byte-for-byte.
func (in *Injector) DiskFault(op string) error {
	if in.cfg.DiskSlowProb > 0 {
		in.mu.Lock()
		r := in.stream("disk-slow")
		stall := time.Duration(0)
		if r.Float64() < in.cfg.DiskSlowProb {
			stall = 1 + time.Duration(r.Int63n(int64(in.cfg.DiskSlowMax)))
		}
		in.mu.Unlock()
		// Sleep outside the lock: a stalled journal write must not also
		// stall every other fault stream.
		if stall > 0 {
			time.Sleep(stall)
		}
	}
	if in.cfg.DiskFailProb <= 0 {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	r := in.stream("disk")
	if r.Float64() < in.cfg.DiskFailProb {
		return fmt.Errorf("faults: injected disk error during %s", op)
	}
	return nil
}

// HTTPFaultKind enumerates REST-plane fault types.
type HTTPFaultKind int

const (
	// HTTPNone injects nothing.
	HTTPNone HTTPFaultKind = iota
	// HTTPError returns a 5xx without reaching the handler.
	HTTPError
	// HTTPDrop severs the connection without a response.
	HTTPDrop
	// HTTPDelay delays the request by Delay, then serves it normally.
	HTTPDelay
)

// HTTPOutcome is one drawn REST-plane fault.
type HTTPOutcome struct {
	Kind  HTTPFaultKind
	Delay time.Duration
}

// HTTPFault draws the fault (if any) for one HTTP request. The categories
// are disjoint: error, then drop, then delay, by cumulative probability.
func (in *Injector) HTTPFault() HTTPOutcome {
	in.mu.Lock()
	defer in.mu.Unlock()
	r := in.stream("http")
	p, scale := r.Float64(), r.Float64()
	cfg := in.cfg
	switch {
	case p < cfg.HTTPErrorProb:
		return HTTPOutcome{Kind: HTTPError}
	case p < cfg.HTTPErrorProb+cfg.HTTPDropProb:
		return HTTPOutcome{Kind: HTTPDrop}
	case p < cfg.HTTPErrorProb+cfg.HTTPDropProb+cfg.HTTPDelayProb:
		return HTTPOutcome{Kind: HTTPDelay, Delay: time.Duration(scale * float64(cfg.HTTPDelayMax))}
	}
	return HTTPOutcome{}
}
