package faults

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestZeroConfigDisabled(t *testing.T) {
	var c Config
	if c.Enabled() {
		t.Error("zero config reports enabled")
	}
	in := New(c)
	if _, ok := in.NextCrash("n0"); ok {
		t.Error("crash drawn with crashes disabled")
	}
	if o := in.AgentFault(); o.Fail || o.Hang != 0 {
		t.Errorf("agent fault with zero config: %+v", o)
	}
	if o := in.OSFault(); o.Fail {
		t.Errorf("os fault with zero config: %+v", o)
	}
	if o := in.HTTPFault(); o.Kind != HTTPNone {
		t.Errorf("http fault with zero config: %+v", o)
	}
}

func TestDeterministicStreams(t *testing.T) {
	cfg := Config{
		Seed: 7, CrashMTBF: time.Hour,
		AgentFailProb: 0.3, AgentHangProb: 0.3,
		OSFailProb:    0.5,
		HTTPErrorProb: 0.2, HTTPDropProb: 0.2, HTTPDelayProb: 0.2,
	}
	draw := func() (crashes []time.Duration, agents []LevelOutcome, oss []UnplugOutcome, https []HTTPOutcome) {
		in := New(cfg)
		for i := 0; i < 50; i++ {
			d, _ := in.NextCrash("node-a")
			crashes = append(crashes, d)
			agents = append(agents, in.AgentFault())
			oss = append(oss, in.OSFault())
			https = append(https, in.HTTPFault())
		}
		return
	}
	c1, a1, o1, h1 := draw()
	c2, a2, o2, h2 := draw()
	for i := range c1 {
		if c1[i] != c2[i] || a1[i] != a2[i] || o1[i] != o2[i] || h1[i] != h2[i] {
			t.Fatalf("draw %d differs across identical seeds", i)
		}
	}
}

func TestStreamsAreIndependent(t *testing.T) {
	// Drawing HTTP faults must not perturb the node-crash schedule.
	cfg := Config{Seed: 11, CrashMTBF: time.Hour, HTTPErrorProb: 0.5}
	a := New(cfg)
	b := New(cfg)
	for i := 0; i < 100; i++ {
		b.HTTPFault() // extra draws on an unrelated stream
	}
	for i := 0; i < 20; i++ {
		da, _ := a.NextCrash("n")
		db, _ := b.NextCrash("n")
		if da != db {
			t.Fatalf("crash schedule perturbed by http draws at %d: %v vs %v", i, da, db)
		}
	}
}

func TestPerNodeCrashStreams(t *testing.T) {
	in := New(Config{Seed: 3, CrashMTBF: time.Hour})
	a, _ := in.NextCrash("node-a")
	b, _ := in.NextCrash("node-b")
	if a == b {
		t.Error("different nodes drew identical crash times (shared stream?)")
	}
}

func TestAgentAndOSFaultRates(t *testing.T) {
	in := New(Config{Seed: 5, AgentFailProb: 1, OSFailProb: 1, OSPartialMax: 0.5})
	for i := 0; i < 10; i++ {
		if !in.AgentFault().Fail {
			t.Fatal("AgentFailProb=1 did not fail")
		}
		o := in.OSFault()
		if !o.Fail {
			t.Fatal("OSFailProb=1 did not fail")
		}
		if o.Fraction < 0 || o.Fraction > 0.5 {
			t.Fatalf("partial fraction %g outside [0, 0.5]", o.Fraction)
		}
	}
}

func TestMiddlewareInjectsErrorsAndDrops(t *testing.T) {
	in := New(Config{Seed: 1, HTTPErrorProb: 0.5, HTTPDropProb: 0.5})
	srv := httptest.NewServer(Middleware(in, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})))
	defer srv.Close()

	errors, drops := 0, 0
	for i := 0; i < 40; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			drops++
			continue
		}
		if resp.StatusCode == http.StatusInternalServerError {
			errors++
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if errors == 0 || drops == 0 {
		t.Errorf("middleware injected %d errors and %d drops, want both > 0", errors, drops)
	}
}

func TestTransportInjects(t *testing.T) {
	in := New(Config{Seed: 2, HTTPErrorProb: 0.3, HTTPDropProb: 0.3})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	client := &http.Client{Transport: &Transport{Injector: in}}

	errors, drops, oks := 0, 0, 0
	for i := 0; i < 40; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			drops++
			continue
		}
		if resp.StatusCode == http.StatusBadGateway {
			errors++
		} else {
			oks++
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if errors == 0 || drops == 0 || oks == 0 {
		t.Errorf("transport: %d errors, %d drops, %d oks — want all > 0", errors, drops, oks)
	}
}
