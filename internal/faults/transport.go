package faults

import (
	"fmt"
	"net/http"
	"time"
)

// Middleware wraps an HTTP handler with injected REST-plane faults: 5xx
// responses, dropped connections, and delays, drawn from the injector's
// "http" stream. It is how tests (and live chaos drills) make a controller
// endpoint flaky without touching the controller itself.
//
// Dropped connections abort via http.ErrAbortHandler, which the net/http
// server turns into a severed connection — the client sees an EOF / reset,
// exactly the ambiguous "did my request apply?" failure idempotency keys
// exist for.
func Middleware(in *Injector, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch f := in.HTTPFault(); f.Kind {
		case HTTPError:
			http.Error(w, "faults: injected server error", http.StatusInternalServerError)
			return
		case HTTPDrop:
			panic(http.ErrAbortHandler)
		case HTTPDelay:
			time.Sleep(f.Delay)
		}
		next.ServeHTTP(w, r)
	})
}

// Transport is a client-side http.RoundTripper that injects faults before
// the request leaves: errors become synthetic 502s, drops become transport
// errors, delays sleep. Useful to harden-test clients without a server.
type Transport struct {
	Injector *Injector
	// Base is the underlying transport (http.DefaultTransport when nil).
	Base http.RoundTripper
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	switch f := t.Injector.HTTPFault(); f.Kind {
	case HTTPError:
		resp := &http.Response{
			StatusCode: http.StatusBadGateway,
			Status:     "502 Bad Gateway (injected)",
			Body:       http.NoBody,
			Header:     make(http.Header),
			Request:    req,
		}
		return resp, nil
	case HTTPDrop:
		return nil, fmt.Errorf("faults: injected connection drop for %s %s", req.Method, req.URL.Path)
	case HTTPDelay:
		time.Sleep(f.Delay)
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}
