package simcg

import (
	"errors"
	"testing"
	"time"

	"deflation/internal/guestos"
	"deflation/internal/restypes"
	"deflation/internal/substrate"
)

func newHost(t *testing.T) *Host {
	t.Helper()
	h, err := NewHost(Config{Name: "cg0", Capacity: restypes.V(16, 65536, 400, 400)})
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	return h
}

func ctrSize() restypes.Vector { return restypes.V(4, 16384, 100, 100) }

func mustSpawn(t *testing.T, h *Host, name string) *Container {
	t.Helper()
	inst, err := h.Spawn(name, ctrSize(), guestos.Config{})
	if err != nil {
		t.Fatalf("Spawn(%s): %v", name, err)
	}
	return inst.(*Container)
}

func TestNewHostValidation(t *testing.T) {
	if _, err := NewHost(Config{Capacity: restypes.V(4, 0, 100, 100)}); err == nil {
		t.Error("zero-memory host accepted")
	}
}

func TestSpawnBookkeeping(t *testing.T) {
	h := newHost(t)
	if h.Kind() != substrate.KindContainer {
		t.Errorf("host kind = %q", h.Kind())
	}
	c := mustSpawn(t, h, "c0")
	if c.Kind() != substrate.KindContainer {
		t.Errorf("container kind = %q", c.Kind())
	}
	if c.Size() != ctrSize() || c.Allocation() != ctrSize() {
		t.Errorf("size/alloc = %v/%v", c.Size(), c.Allocation())
	}
	if got := h.FreePhysical(); got != restypes.V(12, 49152, 300, 300) {
		t.Errorf("free = %v", got)
	}
	if got := h.Allocated(); got != ctrSize() {
		t.Errorf("allocated = %v", got)
	}
	if _, err := h.Spawn("c0", ctrSize(), guestos.Config{}); !errors.Is(err, substrate.ErrInstanceExists) {
		t.Errorf("duplicate spawn err = %v", err)
	}
	if _, err := h.Spawn("c1", restypes.V(0, 1024, 10, 10), guestos.Config{}); err == nil {
		t.Error("zero-CPU container accepted")
	}
	if _, err := h.Spawn("huge", restypes.V(64, 1024, 10, 10), guestos.Config{}); !errors.Is(err, substrate.ErrInsufficientCapacity) {
		t.Errorf("oversized spawn err = %v", err)
	}
	if _, err := h.Lookup("c0"); err != nil {
		t.Errorf("Lookup: %v", err)
	}
	if _, err := h.Lookup("nope"); !errors.Is(err, substrate.ErrInstanceNotFound) {
		t.Errorf("missing lookup err = %v", err)
	}
}

func TestInstancesSorted(t *testing.T) {
	h := newHost(t)
	mustSpawn(t, h, "c2")
	mustSpawn(t, h, "c0")
	mustSpawn(t, h, "c1")
	got := h.Instances()
	if len(got) != 3 {
		t.Fatalf("instances = %d", len(got))
	}
	for i, want := range []string{"c0", "c1", "c2"} {
		if got[i].Name() != want {
			t.Errorf("instances[%d] = %q, want %q", i, got[i].Name(), want)
		}
	}
}

func TestReserveUnreserve(t *testing.T) {
	h := newHost(t)
	if err := h.Reserve(restypes.V(8, 32768, 200, 200)); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if got := h.Reserved(); got != restypes.V(8, 32768, 200, 200) {
		t.Errorf("reserved = %v", got)
	}
	// A spawn may not dip into the reservation.
	if _, err := h.Spawn("big", restypes.V(12, 16384, 100, 100), guestos.Config{}); !errors.Is(err, substrate.ErrInsufficientCapacity) {
		t.Errorf("spawn into reservation err = %v", err)
	}
	if err := h.Reserve(restypes.V(16, 0, 0, 0)); !errors.Is(err, substrate.ErrInsufficientCapacity) {
		t.Errorf("over-reserve err = %v", err)
	}
	h.Unreserve(restypes.V(8, 32768, 200, 200))
	if got := h.FreePhysical(); got != h.Capacity() {
		t.Errorf("free after unreserve = %v", got)
	}
}

func TestSetAllocationIsOneCgroupWrite(t *testing.T) {
	h := newHost(t)
	c := mustSpawn(t, h, "c0")
	lat, err := c.SetAllocation(restypes.V(1.5, 4096, 50, 50))
	if err != nil {
		t.Fatalf("SetAllocation: %v", err)
	}
	if lat != 2*time.Millisecond {
		t.Errorf("resize latency = %v, want the 2ms cgroup write", lat)
	}
	if got := c.Allocation(); got != restypes.V(1.5, 4096, 50, 50) {
		t.Errorf("alloc = %v", got)
	}
	// Reinflation past the nominal size clamps to it.
	if _, err := c.SetAllocation(restypes.V(8, 32768, 200, 200)); err != nil {
		t.Fatalf("reinflate: %v", err)
	}
	if got := c.Allocation(); got != ctrSize() {
		t.Errorf("alloc after over-reinflate = %v, want clamp to nominal", got)
	}
}

func TestSetAllocationGrowthNeedsFreeCapacity(t *testing.T) {
	h := newHost(t)
	c := mustSpawn(t, h, "c0")
	if _, err := c.SetAllocation(restypes.V(2, 8192, 50, 50)); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	// A hog claims everything the shrink freed (and then some): free is now
	// (1, 4096, 30, 30), less than the (2, 8192, 50, 50) regrowth needs.
	if _, err := h.Spawn("hog", restypes.V(13, 53248, 320, 320), guestos.Config{}); err != nil {
		t.Fatalf("hog: %v", err)
	}
	if _, err := c.SetAllocation(ctrSize()); !errors.Is(err, substrate.ErrInsufficientCapacity) {
		t.Errorf("regrow with no free capacity err = %v", err)
	}
}

func TestFractionalCPUNoQuantization(t *testing.T) {
	h := newHost(t)
	c := mustSpawn(t, h, "c0")
	if _, err := c.SetAllocation(restypes.V(2.5, 16384, 100, 100)); err != nil {
		t.Fatalf("SetAllocation: %v", err)
	}
	env := c.Env()
	if env.Kind != substrate.KindContainer {
		t.Errorf("env kind = %q", env.Kind)
	}
	if env.EffectiveCores != 2.5 || env.PhysCores != 2.5 {
		t.Errorf("effective/phys cores = %g/%g, want exactly the fractional quota", env.EffectiveCores, env.PhysCores)
	}
	if env.VCPUs != 3 {
		t.Errorf("VCPUs = %d, want ceil(2.5)", env.VCPUs)
	}
	if env.SwappedMB != 0 || env.LocalityFactor != 1 {
		t.Errorf("swapped/locality = %g/%g: containers never swap behind the app", env.SwappedMB, env.LocalityFactor)
	}
}

func TestResizeFloorTracksRSS(t *testing.T) {
	h := newHost(t)
	c := mustSpawn(t, h, "c0")
	if got := c.ResizeFloorMB(); got != 64 {
		t.Errorf("empty-container floor = %g, want the 64 MB runtime overhead", got)
	}
	c.SetAppFootprint(8000, 0)
	if got := c.ResizeFloorMB(); got != 8064 {
		t.Errorf("floor = %g, want rss+overhead", got)
	}
	if c.OOMKilled() {
		t.Error("OOM killer fired with RSS under memory.max")
	}
}

func TestUndershootingFloorOOMKills(t *testing.T) {
	h := newHost(t)
	c := mustSpawn(t, h, "c0")
	c.SetAppFootprint(8000, 0)
	// The mechanism performs the harmful resize — no refusal, no swap.
	if _, err := c.SetAllocation(restypes.V(4, 4096, 100, 100)); err != nil {
		t.Fatalf("undershooting resize refused: %v", err)
	}
	if !c.OOMKilled() {
		t.Error("memory.max below RSS+overhead did not OOM-kill")
	}
	if !c.Env().OOMKilled {
		t.Error("Env does not report the OOM kill")
	}
}

func TestRSSGrowthPastLimitOOMKills(t *testing.T) {
	h := newHost(t)
	c := mustSpawn(t, h, "c0")
	c.SetAppFootprint(16384, 0) // 16384 + 64 overhead > 16384 memory.max
	if !c.OOMKilled() {
		t.Error("RSS growth past memory.max did not OOM-kill")
	}
}

func TestSharedCachePoolClamp(t *testing.T) {
	h := newHost(t)
	c := mustSpawn(t, h, "c0")
	// Free host memory is 65536-16384 = 49152; cache appetite beyond the
	// shared pool is clamped to it.
	c.SetAppFootprint(1000, 60000)
	env := c.Env()
	wantResident := 1064.0 // rss + overhead, under memory.max
	if env.ResidentMB != wantResident {
		t.Errorf("resident = %g, want %g", env.ResidentMB, wantResident)
	}
	if got := env.EverTouchedMB - env.ResidentMB; got != 49152 {
		t.Errorf("cache = %g, want clamp to the 49152 MB shared pool", got)
	}
	// The cache is NOT charged against the container's limits: the host
	// still places new work in that memory.
	if got := h.FreePhysical(); got != restypes.V(12, 49152, 300, 300) {
		t.Errorf("free with hot cache = %v: cache must stay placeable", got)
	}
}

func TestSnapshotRestoreRoundtrip(t *testing.T) {
	src := newHost(t)
	c := mustSpawn(t, src, "c0")
	c.SetAppFootprint(4000, 2000)
	if _, err := c.SetAllocation(restypes.V(2, 8192, 50, 50)); err != nil {
		t.Fatalf("deflate: %v", err)
	}
	snap := c.Snapshot()
	if snap.Kind != substrate.KindContainer || snap.Container == nil || snap.Guest != nil {
		t.Fatalf("snapshot kind/container/guest = %q/%v/%v", snap.Kind, snap.Container, snap.Guest)
	}

	dst := newHost(t)
	inst, err := dst.RestoreInstance(snap)
	if err != nil {
		t.Fatalf("RestoreInstance: %v", err)
	}
	r := inst.(*Container)
	if r.Size() != ctrSize() || r.Allocation() != restypes.V(2, 8192, 50, 50) {
		t.Errorf("restored size/alloc = %v/%v", r.Size(), r.Allocation())
	}
	if r.ResizeFloorMB() != 4064 {
		t.Errorf("restored floor = %g, want the checkpointed RSS carried over", r.ResizeFloorMB())
	}
	if r.DirtyRateMBps() != 4000*0.02 {
		t.Errorf("restored dirty rate = %g", r.DirtyRateMBps())
	}

	if _, err := dst.RestoreInstance(snap); !errors.Is(err, substrate.ErrInstanceExists) {
		t.Errorf("duplicate restore err = %v", err)
	}
}

func TestRestoreRejectsForeignAndBrokenSnapshots(t *testing.T) {
	h := newHost(t)
	good := substrate.Snapshot{
		Kind: substrate.KindContainer, Name: "c0",
		Size: ctrSize(), Alloc: ctrSize(),
		Container: &substrate.ContainerState{RSSMB: 1000},
	}

	hyp := good
	hyp.Kind = substrate.KindHypervisor
	if _, err := h.RestoreInstance(hyp); !errors.Is(err, substrate.ErrKindMismatch) {
		t.Errorf("hypervisor snapshot err = %v", err)
	}

	noState := good
	noState.Container = nil
	if _, err := h.RestoreInstance(noState); err == nil {
		t.Error("stateless snapshot accepted")
	}

	zero := good
	zero.Size = restypes.Vector{}
	if _, err := h.RestoreInstance(zero); err == nil {
		t.Error("zero-size snapshot accepted")
	}

	fat := good
	fat.Container = &substrate.ContainerState{RSSMB: 17000}
	if _, err := h.RestoreInstance(fat); err == nil {
		t.Error("snapshot whose RSS overflows the restored memory.max accepted")
	}

	if _, err := h.Spawn("hog", restypes.V(14, 57344, 350, 350), guestos.Config{}); err != nil {
		t.Fatalf("hog: %v", err)
	}
	if _, err := h.RestoreInstance(good); !errors.Is(err, substrate.ErrInsufficientCapacity) {
		t.Errorf("restore without capacity err = %v", err)
	}
}

func TestDestroyReleasesCapacity(t *testing.T) {
	h := newHost(t)
	c := mustSpawn(t, h, "c0")
	c.MarkWarm() // no-op, must not panic
	c.Destroy()
	if !c.Destroyed() {
		t.Error("Destroyed() = false after Destroy")
	}
	c.Destroy() // idempotent
	if got := h.FreePhysical(); got != h.Capacity() {
		t.Errorf("free after destroy = %v", got)
	}
	if _, err := c.SetAllocation(ctrSize()); !errors.Is(err, substrate.ErrInstanceDestroyed) {
		t.Errorf("resize after destroy err = %v", err)
	}
	if _, err := h.Lookup("c0"); !errors.Is(err, substrate.ErrInstanceNotFound) {
		t.Errorf("lookup after destroy err = %v", err)
	}
}
