// Package simcg simulates an OS-level virtualization (cgroup/container)
// substrate — the second backend behind internal/substrate, grounded in
// Pokluda & Lutfiyya's dynamic resource management over OS-level
// virtualization. It models what a container runtime on cgroups v2 gives a
// deflation system, in deliberate contrast to the KVM model:
//
//   - Resizes are cgroup file writes (cpu.max / memory.max): effectively
//     instant (CgroupWriteLatency, default 2ms) with no balloon
//     convergence, no hotplug handshakes, and no incremental control loop.
//   - CPU shares are fractional. There is no whole-vCPU quantization and
//     no lock-holder preemption: the host scheduler runs container threads
//     directly, so 2.5 cores of quota is exactly 2.5 effective cores.
//   - The page cache is the host's, shared across containers and not
//     charged against memory.max in this model (cache-heavy workloads
//     deflate deeper for free).
//   - Isolation is weaker. There is no guest kernel to swap behind:
//     writing memory.max below the live RSS (plus runtime overhead) makes
//     the host OOM killer terminate the workload. The substrate reports
//     that boundary as ResizeFloorMB; the mechanism itself performs the
//     harmful resize when asked — honoring the floor is policy's job.
package simcg

import (
	"fmt"
	"math"
	"sort"
	"time"

	"deflation/internal/guestos"
	"deflation/internal/restypes"
	"deflation/internal/substrate"
)

// Compile-time proof that simcg implements the substrate mechanism API.
var (
	_ substrate.Substrate = (*Host)(nil)
	_ substrate.Instance  = (*Container)(nil)
)

// Config describes a physical host running a container runtime.
type Config struct {
	Name     string
	Capacity restypes.Vector // physical CPU cores, memory, disk bw, net bw

	// CgroupWriteLatency is the cost of one resize — a cgroup file write
	// plus the kernel applying the new limit (default 2ms). This is the
	// whole mechanism latency: the reason containers deflate in
	// milliseconds where VMs take balloon/hotplug/swap time.
	CgroupWriteLatency time.Duration
	// OverheadMB is the per-container runtime overhead (shim, rootfs
	// mounts, namespaces) charged against memory.max (default 64).
	OverheadMB float64
	// WriteIntensity is the fraction of the RSS dirtied per second, which
	// live migration's pre-copy convergence model consumes (default 0.02,
	// matching guestos).
	WriteIntensity float64
}

func (c Config) withDefaults() Config {
	if c.CgroupWriteLatency == 0 {
		c.CgroupWriteLatency = 2 * time.Millisecond
	}
	if c.OverheadMB == 0 {
		c.OverheadMB = 64
	}
	if c.WriteIntensity == 0 {
		c.WriteIntensity = 0.02
	}
	return c
}

// Host is a simulated machine running containers. Not safe for concurrent
// use; the simulation is single-threaded.
type Host struct {
	cfg        Config
	containers map[string]*Container
	reserved   restypes.Vector
}

// NewHost creates a container host with the given physical capacity.
func NewHost(cfg Config) (*Host, error) {
	cfg = cfg.withDefaults()
	if !cfg.Capacity.Positive() {
		return nil, fmt.Errorf("simcg: host capacity must be positive in all dimensions, got %v", cfg.Capacity)
	}
	return &Host{cfg: cfg, containers: make(map[string]*Container)}, nil
}

// Name returns the host name.
func (h *Host) Name() string { return h.cfg.Name }

// Kind identifies the substrate implementation.
func (h *Host) Kind() substrate.Kind { return substrate.KindContainer }

// Capacity returns the host's physical capacity.
func (h *Host) Capacity() restypes.Vector { return h.cfg.Capacity }

// Allocated returns the sum of all containers' current limits, iterated in
// sorted order so floating-point summation is deterministic.
func (h *Host) Allocated() restypes.Vector {
	var sum restypes.Vector
	for _, c := range h.sorted() {
		sum = sum.Add(c.alloc)
	}
	return sum
}

// FreePhysical returns unallocated, unreserved physical capacity. The
// shared page cache lives here: host memory not committed to any
// container's memory.max backs cache pages and is reclaimable on demand,
// so it stays placeable.
func (h *Host) FreePhysical() restypes.Vector {
	return h.cfg.Capacity.Sub(h.Allocated()).Sub(h.reserved).ClampNonNegative()
}

// Reserve sets aside capacity outside any container (migration streams).
func (h *Host) Reserve(v restypes.Vector) error {
	v = v.ClampNonNegative()
	if !v.Fits(h.FreePhysical()) {
		return fmt.Errorf("%w: reserving %v, free %v", substrate.ErrInsufficientCapacity, v, h.FreePhysical())
	}
	h.reserved = h.reserved.Add(v)
	return nil
}

// Unreserve returns previously reserved capacity.
func (h *Host) Unreserve(v restypes.Vector) {
	h.reserved = h.reserved.Sub(v.ClampNonNegative()).ClampNonNegative()
}

// Reserved returns the currently reserved capacity.
func (h *Host) Reserved() restypes.Vector { return h.reserved }

func (h *Host) sorted() []*Container {
	out := make([]*Container, 0, len(h.containers))
	for _, c := range h.containers {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Instances returns all live containers sorted by name.
func (h *Host) Instances() []substrate.Instance {
	cs := h.sorted()
	out := make([]substrate.Instance, len(cs))
	for i, c := range cs {
		out[i] = c
	}
	return out
}

// Lookup finds a live container by name.
func (h *Host) Lookup(name string) (substrate.Instance, error) {
	c, ok := h.containers[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", substrate.ErrInstanceNotFound, name)
	}
	return c, nil
}

// Spawn starts a container of the given nominal size. The guest config is
// the shared workload parameterization; a container has no guest kernel,
// so only the footprint-relevant field (the runtime overhead standing in
// for KernelMemMB) applies, and it comes from the host config instead.
func (h *Host) Spawn(name string, size restypes.Vector, _ guestos.Config) (substrate.Instance, error) {
	if _, ok := h.containers[name]; ok {
		return nil, fmt.Errorf("%w: %q", substrate.ErrInstanceExists, name)
	}
	if !size.Positive() {
		return nil, fmt.Errorf("simcg: container size must be positive in all dimensions, got %v", size)
	}
	if !size.Fits(h.FreePhysical()) {
		return nil, fmt.Errorf("%w: need %v, free %v", substrate.ErrInsufficientCapacity, size, h.FreePhysical())
	}
	c := &Container{host: h, name: name, size: size, alloc: size}
	h.containers[name] = c
	return c, nil
}

// RestoreInstance materializes a migrated container from a snapshot
// (checkpoint/restore). Admission is by the snapshot's possibly-deflated
// allocation, mirroring the hypervisor substrate, and snapshots from a
// different substrate kind are rejected.
func (h *Host) RestoreInstance(s substrate.Snapshot) (substrate.Instance, error) {
	if s.Kind != substrate.KindContainer {
		return nil, fmt.Errorf("%w: %q snapshot is %q", substrate.ErrKindMismatch, s.Name, s.Kind)
	}
	if s.Container == nil {
		return nil, fmt.Errorf("simcg: snapshot %q has no container state", s.Name)
	}
	if _, ok := h.containers[s.Name]; ok {
		return nil, fmt.Errorf("%w: %q", substrate.ErrInstanceExists, s.Name)
	}
	if !s.Size.Positive() {
		return nil, fmt.Errorf("simcg: snapshot size must be positive in all dimensions, got %v", s.Size)
	}
	alloc := s.Alloc.Min(s.Size).ClampNonNegative()
	if !alloc.Fits(h.FreePhysical()) {
		return nil, fmt.Errorf("%w: restoring %v, free %v", substrate.ErrInsufficientCapacity, alloc, h.FreePhysical())
	}
	if s.Container.RSSMB+h.cfg.OverheadMB > alloc.MemoryMB {
		return nil, fmt.Errorf("simcg: snapshot %q RSS %.0f MB does not fit restored memory.max %.0f MB",
			s.Name, s.Container.RSSMB, alloc.MemoryMB)
	}
	c := &Container{
		host: h, name: s.Name, size: s.Size, alloc: alloc,
		rssMB: s.Container.RSSMB, cacheMB: s.Container.PageCacheMB,
		oomKilled: s.Container.OOMKilled,
	}
	h.containers[s.Name] = c
	return c, nil
}

// Container is one cgroup: a nominal size and the cpu.max/memory.max
// limits currently written, plus the live application footprint.
type Container struct {
	host  *Host
	name  string
	size  restypes.Vector // nominal (requested) size
	alloc restypes.Vector // current limits (cpu.max, memory.max, io/net)

	rssMB     float64 // application resident set, charged against memory.max
	cacheMB   float64 // page-cache appetite, served from the host's shared cache
	oomKilled bool
	dead      bool
}

// Name returns the container name.
func (c *Container) Name() string { return c.name }

// Kind identifies the backing substrate.
func (c *Container) Kind() substrate.Kind { return substrate.KindContainer }

// Size returns the nominal (requested) size.
func (c *Container) Size() restypes.Vector { return c.size }

// Allocation returns the current limits.
func (c *Container) Allocation() restypes.Vector { return c.alloc }

// Destroyed reports whether the container has been destroyed.
func (c *Container) Destroyed() bool { return c.dead }

// Destroy terminates the container and releases its limits.
func (c *Container) Destroy() {
	if c.dead {
		return
	}
	c.dead = true
	delete(c.host.containers, c.name)
}

// MarkWarm is a no-op: a cgroup has no touched-footprint high-water mark —
// uncharged pages were never this container's to begin with.
func (c *Container) MarkWarm() {}

// ResizeFloorMB reports the memory.max below which the host OOM killer
// would fire: the live RSS plus the runtime overhead. The cascade and
// SLOGuard consult this; the mechanism itself will happily undershoot it.
func (c *Container) ResizeFloorMB() float64 { return c.rssMB + c.host.cfg.OverheadMB }

// SetAppFootprint records the application's resident set and page-cache
// appetite. RSS is charged against memory.max — growing it past the limit
// OOM-kills the container, exactly like a real cgroup. Cache is served
// from the host's shared pool and clamped to what that pool can hold.
func (c *Container) SetAppFootprint(rssMB, pageCacheMB float64) {
	c.rssMB = math.Max(0, rssMB)
	// The shared cache pool is host memory not committed to any cgroup.
	pool := c.host.FreePhysical().MemoryMB + c.cacheMB
	c.cacheMB = math.Min(math.Max(0, pageCacheMB), pool)
	c.checkOOM()
}

func (c *Container) checkOOM() {
	if c.rssMB+c.host.cfg.OverheadMB > c.alloc.MemoryMB {
		c.oomKilled = true
	}
}

// OOMKilled reports whether the host OOM killer fired in this cgroup.
func (c *Container) OOMKilled() bool { return c.oomKilled }

// DirtyRateMBps is the container's page-dirtying rate.
func (c *Container) DirtyRateMBps() float64 { return c.rssMB * c.host.cfg.WriteIntensity }

// SetAllocation writes new cpu.max/memory.max limits (element-wise clamped
// to the nominal size). Growth must fit in free physical capacity. The
// latency is one cgroup write — there is no balloon, no hotplug, and no
// swap: this is the millisecond resize that makes containers the cheap
// deflation substrate. The flip side is enforced here too: a memory limit
// below the live RSS plus overhead has nothing to swap to, so the host OOM
// killer terminates the workload (the mechanism does NOT refuse — policy
// must consult ResizeFloorMB).
func (c *Container) SetAllocation(target restypes.Vector) (time.Duration, error) {
	if c.dead {
		return 0, substrate.ErrInstanceDestroyed
	}
	target = target.Min(c.size).ClampNonNegative()
	grow := target.Sub(c.alloc).ClampNonNegative()
	if !grow.Fits(c.host.FreePhysical()) {
		return 0, fmt.Errorf("%w: growing by %v, free %v", substrate.ErrInsufficientCapacity, grow, c.host.FreePhysical())
	}
	c.alloc = target
	c.checkOOM()
	return c.host.cfg.CgroupWriteLatency, nil
}

// Env computes the container's effective execution environment. The
// differences from a domain's Env are the whole point of the substrate:
// EffectiveCores equals the fractional CPU quota exactly (no vCPU
// quantization, no lock-holder preemption, no balloon fragmentation), no
// memory is ever swapped, and locality is never degraded by blind host
// swapping. VCPUs is reported as the scheduler-visible ceil of the quota
// for sizing heuristics only.
func (c *Container) Env() substrate.Env {
	vcpus := int(math.Ceil(c.alloc.CPU))
	if vcpus < 1 {
		vcpus = 1
	}
	resident := math.Min(c.rssMB+c.host.cfg.OverheadMB, c.alloc.MemoryMB)
	return substrate.Env{
		Kind:           substrate.KindContainer,
		VCPUs:          vcpus,
		PhysCores:      c.alloc.CPU,
		EffectiveCores: c.alloc.CPU,
		GuestMemMB:     c.alloc.MemoryMB,
		ResidentMB:     resident,
		SwappedMB:      0,
		EverTouchedMB:  resident + c.cacheMB,
		KernelMemMB:    c.host.cfg.OverheadMB,
		LocalityFactor: 1,
		DiskMBps:       c.alloc.DiskMBps,
		NetMBps:        c.alloc.NetMBps,
		OOMKilled:      c.oomKilled,
	}
}

// Snapshot captures the container's transferable state (checkpoint).
func (c *Container) Snapshot() substrate.Snapshot {
	return substrate.Snapshot{
		Kind:  substrate.KindContainer,
		Name:  c.name,
		Size:  c.size,
		Alloc: c.alloc,
		Container: &substrate.ContainerState{
			RSSMB:       c.rssMB,
			PageCacheMB: c.cacheMB,
			OOMKilled:   c.oomKilled,
		},
	}
}
