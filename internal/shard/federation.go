package shard

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sort"
	"sync"

	"deflation/internal/cluster"
	"deflation/internal/telemetry"
)

// FederationConfig parameterizes an in-process federation: N manager
// shards, each serving a Router over a real 127.0.0.1 listener, each
// journaling under StateRoot/<shard-id>. Tests and the deflload harness
// use it to run the whole federated control plane — real HTTP, real WALs,
// real fencing — inside one process where chaos (crash-stop kill,
// partitions, slow disks) is a function call away.
type FederationConfig struct {
	// Shards are the member IDs (e.g. ["shard-0","shard-1","shard-2"]).
	Shards []string
	// StateRoot is the shared state directory; shard i journals under
	// StateRoot/<id>. Sharing the root is what makes adoption possible:
	// a peer opens a dead shard's journal directly.
	StateRoot string
	// VNodes is the ring's virtual-node count (0 = DefaultVNodes).
	VNodes int
	// Policy and Seed configure each shard's placement exactly as a
	// standalone manager's.
	Policy cluster.PlacementPolicy
	Seed   int64
	// SnapshotEvery/SyncEvery tune each shard's journal (0 = defaults).
	SnapshotEvery, SyncEvery int
	// FailOp injects disk faults into a shard's journal (nil = none);
	// keyed by shard ID so chaos can slow or poison one shard's disk.
	FailOp func(shardID, op string) error
	// DialNode overrides how managers (re)connect agents. The default
	// dials RemoteNodes without probing; in-process tests substitute their
	// own node fakes.
	DialNode cluster.NodeDialer
	// Telemetry instruments each shard's manager and API (nil = none).
	Telemetry *telemetry.Sink
}

// ManagerShard is one live shard of the federation: a durable manager, its
// API, and the router serving it (plus any adopted shards) over HTTP.
type ManagerShard struct {
	ID     string
	URL    string
	Router *Router
	API    *cluster.ManagerAPI

	ln    net.Listener
	srv   *http.Server
	alive bool
}

// Alive reports whether the shard's listener is still serving.
func (s *ManagerShard) Alive() bool { return s.alive }

// Federation is a set of in-process manager shards over real HTTP.
type Federation struct {
	cfg FederationConfig

	mu     sync.Mutex
	shards map[string]*ManagerShard
	order  []string
}

// NewFederation boots every shard: listeners first (the shard map needs
// the URLs), then per-shard recovery (first boot recovers an empty
// journal), fence-bump, and router mount. Each shard starts fenced at
// epoch ≥ 1 so every command it ever issues is refusable.
func NewFederation(cfg FederationConfig) (*Federation, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("shard: federation needs at least one shard")
	}
	if cfg.StateRoot == "" {
		return nil, fmt.Errorf("shard: federation needs a state root")
	}
	fed := &Federation{cfg: cfg, shards: make(map[string]*ManagerShard)}

	// Listeners first: the shard map carries every member's URL.
	members := make([]Member, 0, len(cfg.Shards))
	listeners := make(map[string]net.Listener, len(cfg.Shards))
	fail := func(err error) (*Federation, error) {
		for _, ln := range listeners {
			ln.Close()
		}
		fed.Close()
		return nil, err
	}
	for _, id := range cfg.Shards {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(fmt.Errorf("shard: listening for %s: %w", id, err))
		}
		listeners[id] = ln
		members = append(members, Member{ID: id, URL: "http://" + ln.Addr().String()})
	}
	initial := Map{Version: 1, VNodes: cfg.VNodes, Members: members}

	for _, id := range cfg.Shards {
		s, err := fed.bootShard(id, listeners[id], initial)
		if err != nil {
			return fail(err)
		}
		delete(listeners, id) // owned by the shard's server now
		fed.shards[id] = s
		fed.order = append(fed.order, id)
	}
	return fed, nil
}

// bootShard recovers one shard's manager from its journal directory and
// starts serving its router.
func (fed *Federation) bootShard(id string, ln net.Listener, initial Map) (*ManagerShard, error) {
	mgr, rep, err := cluster.AdoptJournal(fed.shardDurability(id, id), nil, fed.cfg.Policy, fed.cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("shard: recovering %s: %w", id, err)
	}
	api, err := cluster.NewManagerAPI(mgr)
	if err != nil {
		return nil, err
	}
	api.SetRecovery(rep)
	if fed.cfg.DialNode != nil {
		api.SetNodeDialer(fed.cfg.DialNode)
	}
	if fed.cfg.Telemetry != nil {
		mgr.SetTelemetry(fed.cfg.Telemetry)
		api.AttachTelemetry(fed.cfg.Telemetry)
	}

	rt := NewRouter(id, NewMapStore(initial))
	rt.Mount(id, api.Handler())
	srv := cluster.NewHTTPServer("", rt.Handler())
	s := &ManagerShard{
		ID:     id,
		URL:    "http://" + ln.Addr().String(),
		Router: rt,
		API:    api,
		ln:     ln,
		srv:    srv,
		alive:  true,
	}
	go srv.Serve(ln)
	return s, nil
}

// shardDurability builds the DurabilityConfig for shard `dir` operated by
// manager `operator` (self at boot; the adopter during adoption).
func (fed *Federation) shardDurability(dir, operator string) cluster.DurabilityConfig {
	cfg := cluster.DurabilityConfig{
		Dir:           filepath.Join(fed.cfg.StateRoot, dir),
		LeaderID:      operator,
		SnapshotEvery: fed.cfg.SnapshotEvery,
		SyncEvery:     fed.cfg.SyncEvery,
		DialNode:      fed.cfg.DialNode,
	}
	if cfg.DialNode == nil {
		cfg.DialNode = func(name, url string) (cluster.Node, error) {
			return cluster.NewRemoteNodeNamed(name, url, cluster.RetryPolicy{}), nil
		}
	}
	if fed.cfg.FailOp != nil {
		shardID := dir
		cfg.FailOp = func(op string) error { return fed.cfg.FailOp(shardID, op) }
	}
	return cfg
}

// Shard returns a shard by ID (nil if unknown).
func (fed *Federation) Shard(id string) *ManagerShard {
	fed.mu.Lock()
	defer fed.mu.Unlock()
	return fed.shards[id]
}

// Live returns the IDs of shards still serving, in boot order.
func (fed *Federation) Live() []string {
	fed.mu.Lock()
	defer fed.mu.Unlock()
	var out []string
	for _, id := range fed.order {
		if fed.shards[id].alive {
			out = append(out, id)
		}
	}
	return out
}

// URLs returns every live shard's base URL, in boot order.
func (fed *Federation) URLs() []string {
	fed.mu.Lock()
	defer fed.mu.Unlock()
	var out []string
	for _, id := range fed.order {
		if s := fed.shards[id]; s.alive {
			out = append(out, s.URL)
		}
	}
	return out
}

// Kill crash-stops a shard: its listener closes and every in-flight and
// future connection dies. The manager object and its journal are simply
// abandoned — exactly what SIGKILL leaves behind — so the only path back
// to its state is the journal on disk.
func (fed *Federation) Kill(id string) error {
	fed.mu.Lock()
	s := fed.shards[id]
	fed.mu.Unlock()
	if s == nil {
		return fmt.Errorf("shard: unknown shard %s", id)
	}
	if !s.alive {
		return nil
	}
	s.alive = false
	s.srv.Close()
	return nil
}

// Adopt has `adopter` (or, when adopter is "", the deterministic
// adopter-elect) take over dead's shard: replay its journal (re-dialing
// its registered agents), bump the fencing epoch past the cluster-wide
// maximum, anti-entropy reconcile, mount the rebuilt shard on the
// adopter's router, and gossip the bumped shard map. Returns the
// adopter's ID and the recovery report.
func (fed *Federation) Adopt(ctx context.Context, dead, adopter string) (string, *cluster.RecoveryReport, error) {
	fed.mu.Lock()
	deadShard := fed.shards[dead]
	if adopter == "" {
		for _, id := range fed.order {
			if fed.shards[id].alive {
				adopter = fed.shards[id].Router.Store().View().AdopterElect(dead)
				break
			}
		}
	}
	a := fed.shards[adopter]
	fed.mu.Unlock()
	if deadShard == nil {
		return "", nil, fmt.Errorf("shard: unknown shard %s", dead)
	}
	if deadShard.alive {
		return "", nil, fmt.Errorf("shard: refusing to adopt live shard %s", dead)
	}
	if a == nil || !a.alive {
		return "", nil, fmt.Errorf("shard: no live adopter for %s (elect %q)", dead, adopter)
	}

	mgr, rep, err := cluster.AdoptJournal(fed.shardDurability(dead, adopter), nil, fed.cfg.Policy, fed.cfg.Seed)
	if err != nil {
		return "", nil, fmt.Errorf("shard: adopting %s into %s: %w", dead, adopter, err)
	}
	api, err := cluster.NewManagerAPI(mgr)
	if err != nil {
		return "", nil, err
	}
	api.SetRecovery(rep)
	if fed.cfg.DialNode != nil {
		api.SetNodeDialer(fed.cfg.DialNode)
	}
	a.Router.Mount(dead, api.Handler())
	a.Router.Store().Adopt(dead, adopter)
	// Spread the bumped map immediately; periodic gossip would get there
	// eventually, but clients following redirects benefit from every live
	// manager agreeing now.
	fed.GossipAll(ctx)
	return adopter, rep, nil
}

// GossipAll runs one gossip round on every live shard.
func (fed *Federation) GossipAll(ctx context.Context) {
	client := &http.Client{}
	fed.mu.Lock()
	var live []*ManagerShard
	for _, id := range fed.order {
		if s := fed.shards[id]; s.alive {
			live = append(live, s)
		}
	}
	fed.mu.Unlock()
	for _, s := range live {
		s.Router.GossipOnce(ctx, client)
	}
}

// ProbeAll runs one failure-detector round on every live shard's managers
// (own and adopted are probed through the same API).
func (fed *Federation) ProbeAll() {
	fed.mu.Lock()
	var live []*ManagerShard
	for _, id := range fed.order {
		if s := fed.shards[id]; s.alive {
			live = append(live, s)
		}
	}
	fed.mu.Unlock()
	for _, s := range live {
		s.API.ProbeHealth()
	}
}

// View returns a live shard's current map view (the first in boot order).
func (fed *Federation) View() *View {
	fed.mu.Lock()
	defer fed.mu.Unlock()
	for _, id := range fed.order {
		if s := fed.shards[id]; s.alive {
			return s.Router.Store().View()
		}
	}
	return NewView(Map{})
}

// Close shuts every shard down.
func (fed *Federation) Close() {
	fed.mu.Lock()
	defer fed.mu.Unlock()
	ids := make([]string, 0, len(fed.shards))
	for id := range fed.shards {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		s := fed.shards[id]
		if s.alive {
			s.alive = false
			s.srv.Close()
		}
	}
}
