package shard

import (
	"fmt"
	"sort"
	"sync"
)

// Map is the seq-versioned shard map gossiped between managers and
// served to clients at GET /v1/shardmap. Ownership is computed from
// Members via the consistent-hash ring; Adopted overlays crash-stop
// takeovers (dead shard ID → adopter ID) without moving any other keys,
// so an adoption invalidates exactly the dead shard's ownership and
// nothing else.
//
// Version is a monotone sequence: any change to membership or adoption
// bumps it, and gossip merges by keeping the higher version. Managers
// stamp the version they routed under on every response as
// X-Deflation-Shard-Epoch so clients can detect stale maps.
type Map struct {
	Version uint64            `json:"version"`
	VNodes  int               `json:"vnodes,omitempty"`
	Members []Member          `json:"members"`
	Adopted map[string]string `json:"adopted,omitempty"`
}

// Clone deep-copies the map so a holder can mutate without racing
// readers of the original.
func (m Map) Clone() Map {
	out := Map{Version: m.Version, VNodes: m.VNodes}
	out.Members = make([]Member, len(m.Members))
	copy(out.Members, m.Members)
	if len(m.Adopted) > 0 {
		out.Adopted = make(map[string]string, len(m.Adopted))
		for k, v := range m.Adopted {
			out.Adopted[k] = v
		}
	}
	return out
}

// normalize sorts members by ID and dedupes, keeping the first
// occurrence of each ID, so maps compare and hash consistently.
func (m *Map) normalize() {
	sort.SliceStable(m.Members, func(a, b int) bool { return m.Members[a].ID < m.Members[b].ID })
	out := m.Members[:0]
	var last string
	for _, mem := range m.Members {
		if mem.ID == "" || mem.ID == last {
			continue
		}
		last = mem.ID
		out = append(out, mem)
	}
	m.Members = out
}

// MemberURL returns the URL for a member ID, or "" if unknown.
func (m Map) MemberURL(id string) string {
	for _, mem := range m.Members {
		if mem.ID == id {
			return mem.URL
		}
	}
	return ""
}

// resolveAdoption follows the adoption overlay from a ring owner to the
// member currently serving that shard, collapsing chains (A adopted by
// B, B adopted by C → C) and refusing cycles.
func (m Map) resolveAdoption(id string) string {
	for i := 0; i < len(m.Adopted)+1; i++ {
		next, ok := m.Adopted[id]
		if !ok || next == id {
			return id
		}
		id = next
	}
	return id
}

// View is an immutable snapshot of a Map with its ring built, safe for
// concurrent readers. Routing reads a View; gossip installs a new one.
type View struct {
	Map  Map
	ring *Ring
}

// NewView builds the ring for a map. The ring is built over members NOT
// currently marked adopted: an adopted (dead) shard keeps its key range
// via the overlay rather than rehashing, so adoption moves zero keys
// owned by healthy shards.
func NewView(m Map) *View {
	m = m.Clone()
	m.normalize()
	ids := make([]string, 0, len(m.Members))
	for _, mem := range m.Members {
		ids = append(ids, mem.ID)
	}
	return &View{Map: m, ring: NewRing(ids, m.VNodes)}
}

// Owner returns the member ID serving key: ring owner, then adoption
// overlay. "" on an empty map.
func (v *View) Owner(key string) string {
	return v.Map.resolveAdoption(v.ring.Owner(key))
}

// RingOwner returns the pre-adoption ring owner of key — the shard whose
// journal records for key live under the state root.
func (v *View) RingOwner(key string) string { return v.ring.Owner(key) }

// AdopterElect returns the deterministic successor that should adopt a
// dead member's shard: the next live (not dead, not itself adopted)
// member clockwise by ID. Every surviving manager computes the same
// answer from the same Map, so adoption needs no election. Returns ""
// when no live candidate exists.
func (v *View) AdopterElect(dead string) string {
	ids := v.ring.Members()
	i := sort.SearchStrings(ids, dead)
	for step := 0; step < len(ids); step++ {
		cand := ids[(i+step)%len(ids)]
		if cand == dead || v.Map.resolveAdoption(cand) != cand {
			continue // the dead member itself, or already adopted away
		}
		return cand
	}
	return ""
}

// MapStore holds a manager's current View and applies gossip merges.
// Safe for concurrent use.
type MapStore struct {
	mu   sync.RWMutex
	view *View
}

// NewMapStore installs the initial map.
func NewMapStore(m Map) *MapStore {
	return &MapStore{view: NewView(m)}
}

// View returns the current snapshot.
func (s *MapStore) View() *View {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.view
}

// Merge installs incoming if it is strictly newer than the current map.
// Returns true when the view changed.
func (s *MapStore) Merge(incoming Map) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if incoming.Version <= s.view.Map.Version {
		return false
	}
	s.view = NewView(incoming)
	return true
}

// Adopt records that adopter has taken over dead's shard, bumping the
// version. No-op (false) if the overlay already says so.
func (s *MapStore) Adopt(dead, adopter string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.view.Map.Clone()
	if m.resolveAdoption(dead) == adopter {
		return false
	}
	if m.Adopted == nil {
		m.Adopted = make(map[string]string)
	}
	m.Adopted[dead] = adopter
	m.Version++
	s.view = NewView(m)
	return true
}

// Validate rejects maps a manager cannot serve: empty membership or an
// adoption edge naming an unknown adopter.
func (m Map) Validate() error {
	if len(m.Members) == 0 {
		return fmt.Errorf("shard: map v%d has no members", m.Version)
	}
	for dead, adopter := range m.Adopted {
		if m.MemberURL(adopter) == "" {
			return fmt.Errorf("shard: map v%d adopts %s into unknown member %s", m.Version, dead, adopter)
		}
	}
	return nil
}
