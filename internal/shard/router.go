package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"deflation/internal/cluster"
)

// ShardEpochHeader carries the shard-map version a response was routed
// under. Clients cache the map and re-fetch when the header outruns their
// copy — after an adoption or rebalance, the first redirected request
// teaches them the new ownership.
const ShardEpochHeader = "X-Deflation-Shard-Epoch"

// shardMapPath serves (GET) and gossips (POST) the shard map.
const shardMapPath = "/v1/shardmap"

// Router is a federated manager's HTTP front door. Every request is keyed
// (VM name for VM commands, node name for registrations and heartbeats)
// and either dispatched to a locally mounted shard — this manager's own,
// plus any it has adopted — or redirected (307 + ShardEpochHeader) to the
// owning peer. Key-less reads (/v1/cluster, /v1/state, /v1/nodes) serve
// the local shard's view; ?shard=ID selects an adopted shard instead.
type Router struct {
	self  string
	store *MapStore

	mu    sync.RWMutex
	local map[string]http.Handler
}

// NewRouter builds a router for the manager identified by self.
func NewRouter(self string, store *MapStore) *Router {
	return &Router{self: self, store: store, local: make(map[string]http.Handler)}
}

// Self returns this manager's member ID.
func (rt *Router) Self() string { return rt.self }

// Store returns the router's shard-map store.
func (rt *Router) Store() *MapStore { return rt.store }

// Mount installs the handler serving shard id locally (this manager's own
// shard at boot, a dead peer's shard after adoption).
func (rt *Router) Mount(id string, h http.Handler) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.local[id] = h
}

// Unmount removes a locally served shard (hand-back after rebalance).
func (rt *Router) Unmount(id string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	delete(rt.local, id)
}

// Mounted lists the shard IDs this router serves locally.
func (rt *Router) Mounted() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	ids := make([]string, 0, len(rt.local))
	for id := range rt.local {
		ids = append(ids, id)
	}
	return ids
}

func (rt *Router) localHandler(id string) http.Handler {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.local[id]
}

// Handler returns the router's routes. VM commands key by VM name, node
// registration and heartbeats by node name; both domains hash onto the
// same ring so ownership is total and deterministic.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+shardMapPath, rt.handleMapGet)
	mux.HandleFunc("POST "+shardMapPath, rt.handleMapPost)

	mux.HandleFunc("POST /v1/vms", rt.keyedBody(func(body []byte) (string, error) {
		var spec cluster.LaunchSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return "", err
		}
		return spec.Name, nil
	}))
	mux.HandleFunc("DELETE /v1/vms/{name}", rt.keyedPath("name"))
	mux.HandleFunc("POST /v1/migrate", rt.keyedBody(func(body []byte) (string, error) {
		var req cluster.MigrateRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return "", err
		}
		return req.VM, nil
	}))
	mux.HandleFunc("POST /v1/nodes", rt.keyedBody(func(body []byte) (string, error) {
		var req cluster.RegisterNodeRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return "", err
		}
		// A nameless registration cannot be ring-routed; it lands on the
		// shard it reached, which probes the agent for its name.
		return req.Name, nil
	}))
	mux.HandleFunc("POST /v1/nodes/{name}/heartbeat", rt.keyedPath("name"))

	// Key-less per-shard routes: reads serve the local (or ?shard=ID) view;
	// DELETE /v1/nodes is an admin hand-off aimed at a specific shard, not
	// at the ring owner, so it is deliberately NOT ring-routed.
	for _, route := range []string{"GET /v1/cluster", "GET /v1/state", "GET /v1/nodes",
		"GET /v1/replica/wal", "DELETE /v1/nodes/{name}"} {
		mux.HandleFunc(route, rt.serveLocal)
	}
	return mux
}

// handleMapGet serves the current shard map.
func (rt *Router) handleMapGet(w http.ResponseWriter, _ *http.Request) {
	v := rt.store.View()
	w.Header().Set(ShardEpochHeader, strconv.FormatUint(v.Map.Version, 10))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v.Map)
}

// handleMapPost merges a gossiped map (kept iff strictly newer).
func (rt *Router) handleMapPost(w http.ResponseWriter, r *http.Request) {
	var m Map
	if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
		http.Error(w, "shard: bad map: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := m.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rt.store.Merge(m)
	v := rt.store.View()
	w.Header().Set(ShardEpochHeader, strconv.FormatUint(v.Map.Version, 10))
	w.WriteHeader(http.StatusNoContent)
}

// keyedPath routes by a path segment.
func (rt *Router) keyedPath(seg string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rt.route(w, r, r.PathValue(seg))
	}
}

// keyedBody routes by a key extracted from the JSON body, which is
// re-injected for the local handler (or discarded on redirect — a 307
// makes the client resend it).
func (rt *Router) keyedBody(extract func([]byte) (string, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, "shard: reading body: "+err.Error(), http.StatusBadRequest)
			return
		}
		key, err := extract(body)
		if err != nil {
			http.Error(w, "shard: bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		r.ContentLength = int64(len(body))
		rt.route(w, r, key)
	}
}

// route dispatches to the owning shard's local handler or redirects to
// the member serving that shard. Ownership is the RING owner — adoption
// never reassigns keys to a different shard, it only changes which member
// serves the dead shard's journal — so the local check is by shard ID
// (which is how adopted handlers are mounted) and only the redirect target
// resolves through the adoption overlay. An empty key serves locally (the
// request cannot be ring-routed; the local shard resolves it).
func (rt *Router) route(w http.ResponseWriter, r *http.Request, key string) {
	v := rt.store.View()
	version := strconv.FormatUint(v.Map.Version, 10)
	owner := rt.self
	if key != "" {
		if owner = v.RingOwner(key); owner == "" {
			http.Error(w, "shard: empty shard map", http.StatusServiceUnavailable)
			return
		}
	}
	if h := rt.localHandler(owner); h != nil {
		w.Header().Set(ShardEpochHeader, version)
		h.ServeHTTP(w, r)
		return
	}
	target := v.Map.MemberURL(v.Map.resolveAdoption(owner))
	if target == "" {
		http.Error(w, fmt.Sprintf("shard: no endpoint for owner %s of %q", owner, key),
			http.StatusServiceUnavailable)
		return
	}
	url := target + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	w.Header().Set(ShardEpochHeader, version)
	http.Redirect(w, r, url, http.StatusTemporaryRedirect)
}

// serveLocal serves a key-less read from the local shard (?shard=ID
// selects a specific mounted shard, e.g. one this manager adopted; an ID
// mounted elsewhere redirects there).
func (rt *Router) serveLocal(w http.ResponseWriter, r *http.Request) {
	v := rt.store.View()
	id := r.URL.Query().Get("shard")
	if id == "" {
		id = rt.self
	}
	if h := rt.localHandler(id); h != nil {
		w.Header().Set(ShardEpochHeader, strconv.FormatUint(v.Map.Version, 10))
		h.ServeHTTP(w, r)
		return
	}
	owner := v.Map.resolveAdoption(id)
	if target := v.Map.MemberURL(owner); owner != rt.self && target != "" {
		url := target + r.URL.Path
		if r.URL.RawQuery != "" {
			url += "?" + r.URL.RawQuery
		}
		http.Redirect(w, r, url, http.StatusTemporaryRedirect)
		return
	}
	http.Error(w, fmt.Sprintf("shard: %s not served here", id), http.StatusNotFound)
}

// GossipOnce pulls every peer's shard map and merges newer versions, then
// pushes the local map to any peer that answered with an older one.
// Unreachable peers are skipped — gossip is best-effort; correctness
// comes from redirects carrying ShardEpochHeader.
func (rt *Router) GossipOnce(ctx context.Context, client *http.Client) {
	if client == nil {
		client = http.DefaultClient
	}
	self := rt.store.View()
	for _, mem := range self.Map.Members {
		if mem.ID == rt.self || mem.URL == "" {
			continue
		}
		peer, err := FetchMap(ctx, client, mem.URL)
		if err != nil {
			continue
		}
		if peer.Version > rt.store.View().Map.Version {
			rt.store.Merge(peer)
		} else if peer.Version < rt.store.View().Map.Version {
			PushMap(ctx, client, mem.URL, rt.store.View().Map)
		}
	}
}

// Gossip runs GossipOnce every interval until ctx is done.
func (rt *Router) Gossip(ctx context.Context, client *http.Client, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.GossipOnce(ctx, client)
		}
	}
}

// FetchMap retrieves a manager's shard map.
func FetchMap(ctx context.Context, client *http.Client, baseURL string) (Map, error) {
	var m Map
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+shardMapPath, nil)
	if err != nil {
		return m, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return m, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return m, fmt.Errorf("shard: fetching map from %s: %s", baseURL, resp.Status)
	}
	return m, json.NewDecoder(resp.Body).Decode(&m)
}

// PushMap offers a map to a peer (kept iff newer than the peer's own).
func PushMap(ctx context.Context, client *http.Client, baseURL string, m Map) error {
	body, err := json.Marshal(m)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+shardMapPath, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("shard: pushing map to %s: %s", baseURL, resp.Status)
	}
	return nil
}
