package shard

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"deflation/internal/cluster"
)

func newTestFederation(t *testing.T, shards int) *Federation {
	t.Helper()
	ids := make([]string, shards)
	for i := range ids {
		ids[i] = fmt.Sprintf("shard-%d", i)
	}
	fed, err := NewFederation(FederationConfig{
		Shards:    ids,
		StateRoot: t.TempDir(),
		Policy:    cluster.BestFit,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fed.Close)
	return fed
}

func newTestLoad(t *testing.T, fed *Federation, agents int) *Load {
	t.Helper()
	l, err := NewLoad(LoadConfig{
		Agents:        agents,
		Seed:          3,
		HeartbeatBase: 40 * time.Millisecond,
		ArrivalRPS:    60,
		TickInterval:  25 * time.Millisecond,
	}, fed.URLs())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	return l
}

// agentInventory snapshots which VM runs on which agent, straight from the
// simulated hypervisors — the ground truth the control plane must not
// disturb.
func agentInventory(l *Load) map[string]string {
	out := map[string]string{}
	for _, a := range l.agents {
		inv, err := a.ctrl.Inventory()
		if err != nil {
			continue
		}
		for _, vs := range inv {
			out[vs.Name] = a.name
		}
	}
	return out
}

// TestFederationAdoptionUnderLoad is the headline scenario: a 3-shard
// federation under live load loses one shard leader (crash-stop); a peer
// adopts its journal. Nothing acked may be lost, no healthy VM may be
// evicted, and every agent must converge back to a heartbeating steady
// state through the new ownership.
func TestFederationAdoptionUnderLoad(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	fed := newTestFederation(t, 3)
	l := newTestLoad(t, fed, 9)

	if err := l.RegisterAll(ctx); err != nil {
		t.Fatal(err)
	}
	l.StartHeartbeats(ctx)
	if err := l.Run(ctx, 20); err != nil {
		t.Fatal(err)
	}
	pre := agentInventory(l)
	if len(pre) == 0 {
		t.Fatal("no VMs placed before chaos")
	}

	// Crash-stop the shard owning the most agents, then adopt.
	victim := busiestShard(fed, l)
	if err := fed.Kill(victim); err != nil {
		t.Fatal(err)
	}
	killedAt := time.Now()
	adopter, rep, err := fed.Adopt(ctx, victim, "")
	if err != nil {
		t.Fatal(err)
	}
	if adopter == victim {
		t.Fatal("shard adopted itself")
	}
	if rep == nil || rep.Lost != 0 || rep.Replaced != 0 {
		t.Fatalf("adoption disturbed healthy VMs: %+v", rep)
	}

	// Keep load flowing through the adopted topology.
	if err := l.Run(ctx, 10); err != nil {
		t.Fatal(err)
	}

	// Convergence: every agent heartbeats 2xx through the new ownership
	// within a lease-scale bound.
	convCtx, convCancel := context.WithTimeout(ctx, 10*time.Second)
	defer convCancel()
	conv, err := l.AwaitConvergence(convCtx, killedAt)
	if err != nil {
		t.Fatalf("convergence: %v", err)
	}
	t.Logf("converged %v after kill; adoption report: adopted=%d replayed=%d",
		conv, rep.Adopted, rep.RecordsReplayed)

	inv, err := l.CheckInvariants(ctx, fed.View())
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Ok() {
		t.Fatalf("invariants violated after adoption: %+v", inv)
	}
	// Ground truth: every VM alive before the kill is still alive on the
	// same host — control-plane failover must not touch the data plane.
	post := agentInventory(l)
	for name, host := range pre {
		if post[name] != host {
			t.Errorf("VM %s moved/died during failover: %s → %s", name, host, post[name])
		}
	}
	rpt := l.Report()
	if rpt.LaunchesAcked == 0 || rpt.HeartbeatsOK == 0 {
		t.Fatalf("harness generated no load: %+v", rpt)
	}
}

// busiestShard returns the shard owning the most fleet agents.
func busiestShard(fed *Federation, l *Load) string {
	v := fed.View()
	counts := map[string]int{}
	for _, name := range l.AgentNames() {
		counts[v.Owner(name)]++
	}
	best, bestN := fed.Live()[0], -1
	for id, n := range counts {
		if n > bestN {
			best, bestN = id, n
		}
	}
	return best
}

// TestCrossShardFailoverAtEveryWALEvent extends the PR-6 property test
// across shard boundaries: a scripted op sequence (registrations, launches,
// a migrate, a release) runs over HTTP against a 3-shard federation; after
// every prefix of the script, the shard that owns the last-touched key is
// crash-stopped and adopted by a peer. At every crash point the adopted
// control plane must hold every acked registration and placement, with
// structurally zero healthy-VM evictions.
func TestCrossShardFailoverAtEveryWALEvent(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-federation property test")
	}
	type op struct {
		kind string // "register", "launch", "migrate", "release"
		key  string
	}
	script := []op{
		{"register", "load-node-000"},
		{"register", "load-node-001"},
		{"register", "load-node-002"},
		{"register", "load-node-003"},
		{"register", "load-node-004"},
		{"register", "load-node-005"},
		{"register", "load-node-006"},
		{"register", "load-node-007"},
		{"launch", "pvm-0"},
		{"launch", "pvm-1"},
		{"launch", "pvm-2"},
		{"migrate", "pvm-0"},
		{"release", "pvm-1"},
		{"launch", "pvm-3"},
	}

	for crashPoint := 1; crashPoint <= len(script); crashPoint++ {
		crashPoint := crashPoint
		t.Run(fmt.Sprintf("crash-after-%d-%s", crashPoint, script[crashPoint-1].kind), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 45*time.Second)
			defer cancel()
			fed := newTestFederation(t, 3)
			l, err := NewLoad(LoadConfig{Agents: 8, Seed: 11}, fed.URLs())
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()

			acked := map[string]bool{} // acked VM names
			registered := map[string]bool{}
			released := map[string]bool{}
			for i := 0; i < crashPoint; i++ {
				step := script[i]
				switch step.kind {
				case "register":
					a := l.byName[step.key]
					if a == nil {
						t.Fatalf("script references unknown agent %s", step.key)
					}
					if err := l.registerAgent(ctx, a); err != nil {
						t.Fatalf("step %d register %s: %v", i, step.key, err)
					}
					a.registered.Store(true)
					registered[step.key] = true
				case "launch":
					l.launchOne(ctx, step.key)
					acked[step.key] = true
				case "migrate":
					dest := ""
					// Migration is shard-local: the destination must be a
					// registered node of the VM's own shard.
					cur := agentInventory(l)[step.key]
					v := fed.View()
					for _, name := range l.AgentNames() {
						if registered[name] && name != cur && v.RingOwner(name) == v.RingOwner(step.key) {
							dest = name
							break
						}
					}
					if dest == "" {
						t.Fatal("no migrate destination")
					}
					mustPost(t, ctx, l, "/v1/migrate",
						fmt.Sprintf(`{"vm":%q,"dest":%q}`, step.key, dest))
				case "release":
					mustDelete(t, ctx, l, "/v1/vms/"+step.key)
					l.MarkReleased(step.key)
					delete(acked, step.key)
					released[step.key] = true
				}
			}
			// Sanity: the launches the harness acked are what we think.
			gotAcked := map[string]bool{}
			for _, n := range l.AckedVMs() {
				if !released[n] {
					gotAcked[n] = true
				}
			}

			pre := agentInventory(l)
			victim := fed.View().Owner(script[crashPoint-1].key)
			if err := fed.Kill(victim); err != nil {
				t.Fatal(err)
			}
			adopter, rep, err := fed.Adopt(ctx, victim, "")
			if err != nil {
				t.Fatalf("adopt %s: %v", victim, err)
			}
			if rep.Lost != 0 || rep.Replaced != 0 {
				t.Fatalf("adoption disturbed healthy VMs at crash point %d: %+v", crashPoint, rep)
			}

			inv, err := l.CheckInvariants(ctx, fed.View())
			if err != nil {
				t.Fatal(err)
			}
			if !inv.Ok() {
				t.Fatalf("crash point %d (victim %s → %s): invariants violated: %+v",
					crashPoint, victim, adopter, inv)
			}
			post := agentInventory(l)
			for name, host := range pre {
				if released[name] {
					continue
				}
				if post[name] != host {
					t.Errorf("crash point %d: VM %s moved/died: %s → %s", crashPoint, name, host, post[name])
				}
			}
			for name := range gotAcked {
				if post[name] == "" {
					t.Errorf("crash point %d: acked VM %s not alive on any agent", crashPoint, name)
				}
			}
		})
	}
}

func mustPost(t *testing.T, ctx context.Context, l *Load, path, body string) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		l.managers[0]+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := l.client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := readAll(resp)
	if resp.StatusCode >= 300 {
		t.Fatalf("POST %s: %s: %s", path, resp.Status, b)
	}
}

func mustDelete(t *testing.T, ctx context.Context, l *Load, path string) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, l.managers[0]+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := l.client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := readAll(resp)
	if resp.StatusCode >= 300 {
		t.Fatalf("DELETE %s: %s: %s", path, resp.Status, b)
	}
}

// TestDeadShardRefusesWrites: after a crash-stop the deposed shard must
// accept nothing — a probe write directly against its old URL has to fail
// (connection refused), never ack. With SIGKILL semantics this is
// structural; the test pins it so a future "graceful" kill cannot
// accidentally leave a write path open.
func TestDeadShardRefusesWrites(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	fed := newTestFederation(t, 3)
	victim := fed.Live()[0]
	url := fed.Shard(victim).URL
	if err := fed.Kill(victim); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fed.Adopt(ctx, victim, ""); err != nil {
		t.Fatal(err)
	}
	acked, err := ProbeWrite(ctx, url, "split-brain-probe")
	if err == nil && acked {
		t.Fatal("deposed shard acked a write — split brain")
	}
}

// TestSingleShardFederationMatchesStandalone pins the shards=1 degenerate
// case: one shard must behave exactly like the pre-federation durable
// manager — same placements, same VM count, no redirects ever issued.
func TestSingleShardFederationMatchesStandalone(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	runOps := func(base string, l *Load) cluster.ManagerStateResponse {
		for _, a := range l.agents {
			if err := l.registerAgent(ctx, a); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 6; i++ {
			l.launchOne(ctx, fmt.Sprintf("eq-vm-%d", i))
		}
		mustDelete(t, ctx, l, "/v1/vms/eq-vm-3")
		var st cluster.ManagerStateResponse
		if err := l.getJSON(ctx, base+"/v1/state", &st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	// Federated, one shard.
	fed := newTestFederation(t, 1)
	lf, err := NewLoad(LoadConfig{Agents: 3, Seed: 5}, fed.URLs())
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	fedState := runOps(fed.URLs()[0], lf)

	// Standalone durable manager with the same op sequence.
	mgr, rep, err := cluster.AdoptJournal(cluster.DurabilityConfig{
		Dir:      t.TempDir(),
		LeaderID: "standalone",
		DialNode: func(name, url string) (cluster.Node, error) {
			return cluster.NewRemoteNodeNamed(name, url, cluster.RetryPolicy{}), nil
		},
	}, nil, cluster.BestFit, 7)
	if err != nil {
		t.Fatal(err)
	}
	api, err := cluster.NewManagerAPI(mgr)
	if err != nil {
		t.Fatal(err)
	}
	api.SetRecovery(rep)
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()
	ls, err := NewLoad(LoadConfig{Agents: 3, Seed: 5}, []string{srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	soloState := runOps(srv.URL, ls)

	if len(fedState.Placements) != len(soloState.Placements) || fedState.VMs != soloState.VMs {
		t.Fatalf("single-shard federation diverged from standalone:\nfed:  %+v\nsolo: %+v",
			fedState, soloState)
	}
	for vmName, node := range soloState.Placements {
		if fedState.Placements[vmName] != node {
			t.Errorf("placement of %s: federated %s, standalone %s",
				vmName, fedState.Placements[vmName], node)
		}
	}
}

// TestReconcileRepairsDoubleOwnership plants a registration on the WRONG
// shard (bypassing the ring, as a hand-off race would) and verifies one
// reconciliation pass moves it home without disturbing anything else.
func TestReconcileRepairsDoubleOwnership(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fed := newTestFederation(t, 3)
	l := newTestLoad(t, fed, 6)
	if err := l.RegisterAll(ctx); err != nil {
		t.Fatal(err)
	}

	// Pick an agent and a shard that does NOT own it; register it there
	// directly against the shard's API (bypassing the router, as a stale
	// client racing a rebalance would land it).
	v := fed.View()
	agent := l.agents[0]
	owner := v.Owner(agent.name)
	var wrong string
	for _, id := range fed.Live() {
		if id != owner {
			wrong = id
			break
		}
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/nodes",
		strings.NewReader(fmt.Sprintf(`{"name":%q,"url":%q}`, agent.name, agent.url)))
	req.Header.Set("Content-Type", "application/json")
	fed.Shard(wrong).API.Handler().ServeHTTP(rec, req)
	if rec.Code >= 300 {
		t.Fatalf("planting misowned registration: %d %s", rec.Code, rec.Body)
	}

	rep, err := fed.ReconcileAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.DoubleOwned) != 1 || rep.DoubleOwned[0] != agent.name {
		t.Fatalf("double-owned detection: %+v", rep)
	}
	found := false
	for _, mv := range rep.Moves {
		if mv.Node == agent.name && mv.From == wrong && mv.To == owner {
			found = true
		}
	}
	if !found {
		t.Fatalf("misowned node not repaired: %+v", rep)
	}

	// After repair the fleet is single-owned again.
	inv, err := l.CheckInvariants(ctx, fed.View())
	if err != nil {
		t.Fatal(err)
	}
	if len(inv.DoubleOwnedNodes) != 0 {
		t.Fatalf("double ownership survived reconciliation: %+v", inv)
	}
	if !inv.Ok() {
		t.Fatalf("reconciliation broke invariants: %+v", inv)
	}
}
