package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"deflation/internal/cascade"
	"deflation/internal/cluster"
	"deflation/internal/faults"
	"deflation/internal/hypervisor"
	"deflation/internal/interactive"
	"deflation/internal/restypes"
	"deflation/internal/substrate"
	"deflation/internal/telemetry"
	"deflation/internal/vm"
)

// The deflload harness: thousands of simulated node agents — each a real
// LocalController behind a real ControllerAPI — multiplexed onto ONE
// listener under /agents/<name>/v1/..., driven against real federated
// managers over HTTP. Open-loop launch/migrate arrivals (reusing the
// interactive arrival profiles), full-jitter push heartbeats, and latency
// histograms make it a load generator; per-agent partition gates plus the
// federation's Kill/Adopt make it a chaos harness. Everything it acks it
// remembers, so CheckInvariants can prove nothing acked was lost.

// LoadConfig parameterizes a load run. Zero values get sensible defaults.
type LoadConfig struct {
	// Agents is the number of simulated node agents (default 8).
	Agents int
	// AgentCPUs/AgentMemGB size each simulated host (default 16 / 64).
	AgentCPUs, AgentMemGB float64
	// Seed drives arrivals, heartbeat jitter, and migrate targets.
	Seed int64
	// HeartbeatBase is the mean heartbeat interval; each sleep is drawn
	// full-jitter over [base/2, 3·base/2) (default 250ms — compressed
	// timescale, as everything in the harness).
	HeartbeatBase time.Duration
	// ArrivalRPS is the open-loop launch rate (default 20/s).
	ArrivalRPS float64
	// Profile shapes arrivals (Steady, Diurnal, Bursty).
	Profile interactive.Profile
	// TickInterval is the real-time length of one generator tick
	// (default 100ms).
	TickInterval time.Duration
	// VMCores/VMMemMB size each launched VM (default 1 / 2048).
	VMCores, VMMemMB float64
	// MigrateEvery issues one migrate per N acked launches (0 = every 4).
	MigrateEvery int
	// Faults optionally injects REST-plane faults (5xx, drops, delays)
	// in front of every agent.
	Faults *faults.Injector
	// Registry receives the harness's histograms and counters (created
	// when nil).
	Registry *telemetry.Registry
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Agents == 0 {
		c.Agents = 8
	}
	if c.AgentCPUs == 0 {
		c.AgentCPUs = 16
	}
	if c.AgentMemGB == 0 {
		c.AgentMemGB = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.HeartbeatBase == 0 {
		c.HeartbeatBase = 250 * time.Millisecond
	}
	if c.ArrivalRPS == 0 {
		c.ArrivalRPS = 20
	}
	if c.TickInterval == 0 {
		c.TickInterval = 100 * time.Millisecond
	}
	if c.VMCores == 0 {
		c.VMCores = 1
	}
	if c.VMMemMB == 0 {
		c.VMMemMB = 2048
	}
	if c.MigrateEvery == 0 {
		c.MigrateEvery = 4
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
	return c
}

// simAgent is one simulated node agent: a real controller served under the
// fleet listener, with a partition gate in front.
type simAgent struct {
	name string
	url  string
	ctrl *cluster.LocalController

	partitioned atomic.Bool
	registered  atomic.Bool // ack received and not since 404'd
	lastBeat    atomic.Int64
}

// Load is one harness instance: the agent fleet plus the workload driver.
type Load struct {
	cfg      LoadConfig
	managers []string // manager base URLs, tried round-robin

	ln     net.Listener
	srv    *http.Server
	agents []*simAgent
	byName map[string]*simAgent
	client *http.Client

	launchLat  *telemetry.Histogram
	migrateLat *telemetry.Histogram
	hbOK       *telemetry.Counter
	hbFail     *telemetry.Counter

	mu          sync.Mutex
	ackedVMs    []string
	releasedVMs map[string]bool
	counts      LoadCounts
	start       time.Time
	elapsed     time.Duration
	wg          sync.WaitGroup
	stopBeats   context.CancelFunc
	beatsCtx    context.Context
	nextManager atomic.Int64
}

// LoadCounts are the harness's raw event counts.
type LoadCounts struct {
	RegistrationsSent  int `json:"registrations_sent"`
	RegistrationsAcked int `json:"registrations_acked"`
	LaunchesSent       int `json:"launches_sent"`
	LaunchesAcked      int `json:"launches_acked"`
	LaunchesRejected   int `json:"launches_rejected"` // 409/422-style definitive refusals
	LaunchesFailed     int `json:"launches_failed"`   // transport errors, 5xx
	MigratesSent       int `json:"migrates_sent"`
	MigratesAcked      int `json:"migrates_acked"`
	MigratesFailed     int `json:"migrates_failed"`
}

// LoadReport is the harness's summary: counts, latency quantiles, and
// heartbeat fan-in totals.
type LoadReport struct {
	LoadCounts
	Elapsed        time.Duration `json:"elapsed"`
	ThroughputRPS  float64       `json:"throughput_rps"` // acked launches per second
	LaunchP50MS    float64       `json:"launch_p50_ms"`
	LaunchP99MS    float64       `json:"launch_p99_ms"`
	MigrateP50MS   float64       `json:"migrate_p50_ms"`
	MigrateP99MS   float64       `json:"migrate_p99_ms"`
	HeartbeatsOK   float64       `json:"heartbeats_ok"`
	HeartbeatsFail float64       `json:"heartbeats_fail"`
}

// NewLoad builds the agent fleet (one listener, every agent mounted under
// /agents/<name>/v1/...) aimed at the given manager base URLs. Close
// releases the listener.
func NewLoad(cfg LoadConfig, managers []string) (*Load, error) {
	cfg = cfg.withDefaults()
	if len(managers) == 0 {
		return nil, fmt.Errorf("shard: load needs at least one manager URL")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	base := "http://" + ln.Addr().String()

	l := &Load{
		cfg:      cfg,
		managers: append([]string(nil), managers...),
		ln:       ln,
		byName:   make(map[string]*simAgent),
		client:   &http.Client{Timeout: 10 * time.Second},

		launchLat: cfg.Registry.Histogram("deflload_launch_latency_ms",
			"end-to-end /v1/vms latency (ms)", latencyBucketsMS(), nil),
		migrateLat: cfg.Registry.Histogram("deflload_migrate_latency_ms",
			"end-to-end /v1/migrate latency (ms)", latencyBucketsMS(), nil),
		hbOK: cfg.Registry.Counter("deflload_heartbeats_ok_total",
			"agent heartbeats acknowledged", nil),
		hbFail: cfg.Registry.Counter("deflload_heartbeats_fail_total",
			"agent heartbeats failed or refused", nil),
	}

	mux := http.NewServeMux()
	for i := 0; i < cfg.Agents; i++ {
		name := fmt.Sprintf("load-node-%03d", i)
		host, err := hypervisor.NewHost(hypervisor.Config{
			Name:     name,
			Capacity: restypes.V(cfg.AgentCPUs, cfg.AgentMemGB*1024, 4000, 4000),
		})
		if err != nil {
			ln.Close()
			return nil, err
		}
		ctrl := cluster.NewLocalController(host, cascade.AllLevels(), cluster.ModeDeflation)
		api, err := cluster.NewControllerAPI(ctrl)
		if err != nil {
			ln.Close()
			return nil, err
		}
		a := &simAgent{name: name, url: base + "/agents/" + name, ctrl: ctrl}
		var h http.Handler = api.Handler()
		if cfg.Faults != nil {
			h = faults.Middleware(cfg.Faults, h)
		}
		h = a.gate(h)
		mux.Handle("/agents/"+name+"/v1/", http.StripPrefix("/agents/"+name, h))
		l.agents = append(l.agents, a)
		l.byName[name] = a
	}
	l.srv = cluster.NewHTTPServer("", mux)
	go l.srv.Serve(ln)
	return l, nil
}

// gate drops every connection while the agent is partitioned — the
// manager-side view of a network partition.
func (a *simAgent) gate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if a.partitioned.Load() {
			panic(http.ErrAbortHandler)
		}
		next.ServeHTTP(w, r)
	})
}

// Partition cuts (or heals) one agent off from the managers.
func (l *Load) Partition(name string, cut bool) {
	if a := l.byName[name]; a != nil {
		a.partitioned.Store(cut)
	}
}

// AgentNames lists the fleet in index order.
func (l *Load) AgentNames() []string {
	out := make([]string, len(l.agents))
	for i, a := range l.agents {
		out[i] = a.name
	}
	return out
}

// managerBase returns the next manager base URL, round-robin so load and
// redirects spread across the federation.
func (l *Load) managerBase() string {
	n := l.nextManager.Add(1)
	return l.managers[int(n)%len(l.managers)]
}

// RegisterAll registers every agent with the federation (ring-routed by
// the managers; the client follows redirects). An agent counts as acked
// only after a 2xx — the manager journals before acking, so every ack is
// durable and CheckInvariants may demand it survives chaos.
func (l *Load) RegisterAll(ctx context.Context) error {
	var firstErr error
	for _, a := range l.agents {
		l.mu.Lock()
		l.counts.RegistrationsSent++
		l.mu.Unlock()
		if err := l.registerAgent(ctx, a); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		a.registered.Store(true)
		l.mu.Lock()
		l.counts.RegistrationsAcked++
		l.mu.Unlock()
	}
	return firstErr
}

func (l *Load) registerAgent(ctx context.Context, a *simAgent) error {
	body, err := json.Marshal(cluster.RegisterNodeRequest{Name: a.name, URL: a.url})
	if err != nil {
		return err
	}
	var lastErr error
	for try := 0; try < len(l.managers); try++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			l.managerBase()+"/v1/nodes", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := l.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		drain(resp)
		if resp.StatusCode < 300 {
			return nil
		}
		lastErr = fmt.Errorf("shard: registering %s: %s", a.name, resp.Status)
	}
	return lastErr
}

// StartHeartbeats starts one push-heartbeat goroutine per agent with
// full-jitter pacing. A 404 means no shard knows the node (post-adoption
// window, or a hand-off raced) — the agent re-registers through the ring,
// which is the self-repair loop convergence is measured by.
func (l *Load) StartHeartbeats(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	l.beatsCtx, l.stopBeats = ctx, cancel
	for i, a := range l.agents {
		rng := rand.New(rand.NewSource(seedFor(l.cfg.Seed, a.name)))
		l.wg.Add(1)
		go func(a *simAgent, rng *rand.Rand, i int) {
			defer l.wg.Done()
			for {
				d := cluster.HeartbeatInterval(rng, l.cfg.HeartbeatBase)
				select {
				case <-ctx.Done():
					return
				case <-time.After(d):
				}
				l.beatOnce(ctx, a)
			}
		}(a, rng, i)
	}
}

// beatOnce sends one heartbeat; on 404 it re-registers.
func (l *Load) beatOnce(ctx context.Context, a *simAgent) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		l.managerBase()+"/v1/nodes/"+a.name+"/heartbeat", nil)
	if err != nil {
		return
	}
	resp, err := l.client.Do(req)
	if err != nil {
		l.hbFail.Inc()
		return
	}
	drain(resp)
	switch {
	case resp.StatusCode < 300:
		l.hbOK.Inc()
		a.lastBeat.Store(time.Now().UnixNano())
	case resp.StatusCode == http.StatusNotFound:
		l.hbFail.Inc()
		a.registered.Store(false)
		if err := l.registerAgent(ctx, a); err == nil {
			a.registered.Store(true)
		}
	default:
		l.hbFail.Inc()
	}
}

// StopHeartbeats stops the heartbeat goroutines and waits them out.
func (l *Load) StopHeartbeats() {
	if l.stopBeats != nil {
		l.stopBeats()
		l.wg.Wait()
		l.stopBeats = nil
	}
}

// Run drives `ticks` generator ticks of open-loop launches (plus one
// migrate per MigrateEvery acks) against the federation. Open loop means
// arrivals don't wait for completions: a slow or failing-over control
// plane faces the same offered rate, which is exactly what exposes it.
func (l *Load) Run(ctx context.Context, ticks int) error {
	gen, err := interactive.NewGenerator(interactive.ArrivalConfig{
		Seed:        l.cfg.Seed,
		BaseRPS:     l.cfg.ArrivalRPS,
		Profile:     l.cfg.Profile,
		TickSeconds: l.cfg.TickInterval.Seconds(),
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seedFor(l.cfg.Seed, "driver")))
	l.mu.Lock()
	if l.start.IsZero() {
		l.start = time.Now()
	}
	l.mu.Unlock()

	var vmSeq int
	l.mu.Lock()
	vmSeq = l.counts.LaunchesSent
	l.mu.Unlock()

	t := time.NewTicker(l.cfg.TickInterval)
	defer t.Stop()
	for tick := 0; tick < ticks; tick++ {
		select {
		case <-ctx.Done():
			l.noteElapsed()
			return ctx.Err()
		case <-t.C:
		}
		n := gen.Next()
		for j := 0; j < n; j++ {
			name := fmt.Sprintf("load-vm-%05d", vmSeq)
			vmSeq++
			l.launchOne(ctx, name)
			l.mu.Lock()
			acked := l.counts.LaunchesAcked
			migDue := acked > 0 && l.cfg.MigrateEvery > 0 && acked%l.cfg.MigrateEvery == 0 &&
				l.counts.MigratesSent < acked/l.cfg.MigrateEvery
			l.mu.Unlock()
			if migDue {
				l.migrateOne(ctx, rng)
			}
		}
	}
	l.noteElapsed()
	return nil
}

func (l *Load) noteElapsed() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.start.IsZero() {
		l.elapsed = time.Since(l.start)
	}
}

// launchOne sends one POST /v1/vms and records the outcome.
func (l *Load) launchOne(ctx context.Context, name string) {
	spec := cluster.LaunchSpec{
		Name:     name,
		Size:     restypes.V(l.cfg.VMCores, l.cfg.VMMemMB, 50, 50),
		MinSize:  restypes.V(l.cfg.VMCores/4, l.cfg.VMMemMB/4, 12, 12),
		Priority: vm.LowPriority,
		AppKind:  "elastic",
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return
	}
	l.mu.Lock()
	l.counts.LaunchesSent++
	l.mu.Unlock()

	begin := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		l.managerBase()+"/v1/vms", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := l.client.Do(req)
	if err != nil {
		l.mu.Lock()
		l.counts.LaunchesFailed++
		l.mu.Unlock()
		return
	}
	drain(resp)
	l.launchLat.Observe(float64(time.Since(begin).Milliseconds()) + 0.5)
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case resp.StatusCode < 300:
		l.counts.LaunchesAcked++
		l.ackedVMs = append(l.ackedVMs, name)
	case resp.StatusCode >= 500:
		l.counts.LaunchesFailed++
	default:
		l.counts.LaunchesRejected++
	}
}

// migrateOne migrates a random acked VM to a random registered agent.
func (l *Load) migrateOne(ctx context.Context, rng *rand.Rand) {
	l.mu.Lock()
	if len(l.ackedVMs) == 0 {
		l.mu.Unlock()
		return
	}
	vmName := l.ackedVMs[rng.Intn(len(l.ackedVMs))]
	l.counts.MigratesSent++
	l.mu.Unlock()
	dest := l.agents[rng.Intn(len(l.agents))].name

	body, err := json.Marshal(cluster.MigrateRequest{VM: vmName, Dest: dest})
	if err != nil {
		return
	}
	begin := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		l.managerBase()+"/v1/migrate", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := l.client.Do(req)
	if err != nil {
		l.mu.Lock()
		l.counts.MigratesFailed++
		l.mu.Unlock()
		return
	}
	drain(resp)
	l.migrateLat.Observe(float64(time.Since(begin).Milliseconds()) + 0.5)
	l.mu.Lock()
	defer l.mu.Unlock()
	if resp.StatusCode < 300 {
		l.counts.MigratesAcked++
	} else {
		l.counts.MigratesFailed++
	}
}

// AwaitConvergence waits until every acked agent has heartbeated
// successfully SINCE `after` (post-chaos proof of life through the new
// ownership), returning how long that took. It fails fast when ctx ends.
func (l *Load) AwaitConvergence(ctx context.Context, after time.Time) (time.Duration, error) {
	begin := time.Now()
	for {
		converged := true
		for _, a := range l.agents {
			if !a.registered.Load() || a.lastBeat.Load() < after.UnixNano() {
				converged = false
				break
			}
		}
		if converged {
			return time.Since(begin), nil
		}
		select {
		case <-ctx.Done():
			var lagging []string
			for _, a := range l.agents {
				if !a.registered.Load() || a.lastBeat.Load() < after.UnixNano() {
					lagging = append(lagging, a.name)
				}
			}
			return time.Since(begin), fmt.Errorf("shard: convergence timed out; lagging agents: %v", lagging)
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// Report summarizes the run so far.
func (l *Load) Report() LoadReport {
	l.mu.Lock()
	defer l.mu.Unlock()
	rep := LoadReport{
		LoadCounts:     l.counts,
		Elapsed:        l.elapsed,
		LaunchP50MS:    l.launchLat.Quantile(0.50),
		LaunchP99MS:    l.launchLat.Quantile(0.99),
		MigrateP50MS:   l.migrateLat.Quantile(0.50),
		MigrateP99MS:   l.migrateLat.Quantile(0.99),
		HeartbeatsOK:   l.hbOK.Value(),
		HeartbeatsFail: l.hbFail.Value(),
	}
	if l.elapsed > 0 {
		rep.ThroughputRPS = float64(l.counts.LaunchesAcked) / l.elapsed.Seconds()
	}
	return rep
}

// AckedVMs returns every acked launch not since marked released.
func (l *Load) AckedVMs() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.ackedVMs))
	for _, name := range l.ackedVMs {
		if !l.releasedVMs[name] {
			out = append(out, name)
		}
	}
	return out
}

// MarkReleased records that a VM was deliberately released out-of-band
// (test scripts that DELETE /v1/vms themselves), so CheckInvariants stops
// demanding its presence.
func (l *Load) MarkReleased(name string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.releasedVMs == nil {
		l.releasedVMs = make(map[string]bool)
	}
	l.releasedVMs[name] = true
}

// Close stops heartbeats and the fleet listener.
func (l *Load) Close() {
	l.StopHeartbeats()
	l.srv.Close()
}

// InvariantReport is the harness's verdict on the robustness headline: did
// chaos lose anything the control plane had acknowledged?
type InvariantReport struct {
	// ShardsSwept counts shards whose state was aggregated.
	ShardsSwept int `json:"shards_swept"`
	// NodesRegistered is the aggregated distinct registered-node count.
	NodesRegistered int `json:"nodes_registered"`
	// LostRegistrations lists acked agents missing from every shard.
	LostRegistrations []string `json:"lost_registrations,omitempty"`
	// PlacedVMs is the aggregated distinct placed-VM count.
	PlacedVMs int `json:"placed_vms"`
	// LostVMNames lists acked launches missing from every shard's placement map.
	LostVMNames []string `json:"lost_vm_names,omitempty"`
	// DoubleOwnedNodes lists nodes registered with more than one shard.
	DoubleOwnedNodes []string `json:"double_owned_nodes,omitempty"`
	// FailurePreemptions sums every shard's failure-induced preemptions —
	// the structurally-zero headline: deflation-first reclamation plus
	// fenced failover must never evict a healthy VM.
	FailurePreemptions int `json:"failure_preemptions"`
	// LostVMs sums every shard's unreplaceable failure losses.
	LostVMs int `json:"lost_vms"`
	// BalloonOnContainer lists container-backed VMs reporting nonzero
	// balloon telemetry — structurally impossible (cgroup instances have no
	// guest kernel, so no balloon driver); any entry means a substrate was
	// mislabeled somewhere between launch, journal, and recovery.
	BalloonOnContainer []string `json:"balloon_on_container,omitempty"`
}

// Ok reports whether every invariant held.
func (r InvariantReport) Ok() bool {
	return len(r.LostRegistrations) == 0 && len(r.LostVMNames) == 0 &&
		r.FailurePreemptions == 0 && r.LostVMs == 0 &&
		len(r.BalloonOnContainer) == 0
}

// CheckInvariants aggregates every shard's registered fleet and placement
// map (through any live manager; redirects and ?shard= reach adopted
// shards) and verifies nothing acked was lost. Call after chaos has been
// repaired (adoption done, convergence reached): DURING a failover a dead
// shard's state is legitimately unreachable.
func (l *Load) CheckInvariants(ctx context.Context, v *View) (InvariantReport, error) {
	var rep InvariantReport
	nodesSeen := make(map[string]int)
	vmsSeen := make(map[string]bool)

	shardIDs := make([]string, 0, len(v.Map.Members))
	for _, mem := range v.Map.Members {
		shardIDs = append(shardIDs, mem.ID)
	}
	sort.Strings(shardIDs)
	for _, sid := range shardIDs {
		base := v.Map.MemberURL(v.Map.resolveAdoption(sid))
		if base == "" {
			continue
		}
		nodes, err := listNodes(ctx, l.client, base, sid)
		if err != nil {
			continue
		}
		rep.ShardsSwept++
		for name := range nodes.Nodes {
			nodesSeen[name]++
		}
		var cs cluster.ClusterState
		if err := l.getJSON(ctx, base+"/v1/cluster?servers=true&shard="+sid, &cs); err != nil {
			continue
		}
		rep.FailurePreemptions += cs.FailurePreemptions
		rep.LostVMs += cs.LostVMs
		for _, srv := range cs.Servers {
			for _, v := range srv.VMs {
				if v.Substrate == string(substrate.KindContainer) && v.BalloonMB > 0 {
					rep.BalloonOnContainer = append(rep.BalloonOnContainer,
						fmt.Sprintf("%s@%s", v.Name, srv.Name))
				}
			}
		}
		// Placements come from /v1/state — the journal-backed map, which is
		// exactly what an ack promised to make durable.
		var ms cluster.ManagerStateResponse
		if err := l.getJSON(ctx, base+"/v1/state?shard="+sid, &ms); err != nil {
			continue
		}
		for name := range ms.Placements {
			vmsSeen[name] = true
		}
	}

	rep.NodesRegistered = len(nodesSeen)
	rep.PlacedVMs = len(vmsSeen)
	for name, n := range nodesSeen {
		if n > 1 {
			rep.DoubleOwnedNodes = append(rep.DoubleOwnedNodes, name)
		}
	}
	sort.Strings(rep.DoubleOwnedNodes)
	sort.Strings(rep.BalloonOnContainer)
	for _, a := range l.agents {
		if a.registered.Load() && nodesSeen[a.name] == 0 {
			rep.LostRegistrations = append(rep.LostRegistrations, a.name)
		}
	}
	for _, name := range l.AckedVMs() {
		if !vmsSeen[name] {
			rep.LostVMNames = append(rep.LostVMNames, name)
		}
	}
	return rep, nil
}

func (l *Load) getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := l.client.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard: GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// ProbeWrite attempts a throwaway launch DIRECTLY against one manager
// (no redirects) and reports whether it was acked. After an adoption the
// deposed shard must refuse writes — an ack here is a split-brain write,
// the thing fencing epochs exist to make structurally impossible.
func ProbeWrite(ctx context.Context, baseURL, vmName string) (acked bool, err error) {
	spec := cluster.LaunchSpec{
		Name:     vmName,
		Size:     restypes.V(0.25, 512, 10, 10),
		Priority: vm.LowPriority,
		AppKind:  "elastic",
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return false, err
	}
	client := &http.Client{
		Timeout: 5 * time.Second,
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse // a redirect is a refusal, not an ack
		},
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/vms", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return false, err // unreachable = crash-stopped = certainly no ack
	}
	drain(resp)
	return resp.StatusCode < 300, nil
}

// latencyBucketsMS spans 0.5ms–~8s exponentially.
func latencyBucketsMS() []float64 { return telemetry.ExpBuckets(0.5, 1.6, 21) }

// seedFor derives a per-stream seed from the run seed and a name, so every
// agent's jitter stream is independent yet reproducible.
func seedFor(seed int64, name string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d#%s", seed, name)
	return int64(h.Sum64())
}
