package shard

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"deflation/internal/cluster"
	"deflation/internal/faults"
	"deflation/internal/interactive"
)

// TestDeflloadChaosRun is the full harness exercise from the issue: a
// 3-shard federation with slow disks, a fleet with flaky agent HTTP and a
// partitioned agent, live open-loop load, a shard-leader SIGKILL mid-run,
// adoption, and then the invariant sweep: zero lost acked registrations,
// zero healthy-VM evictions, no split-brain write path, convergence.
func TestDeflloadChaosRun(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	slow := faults.New(faults.Config{Seed: 21, DiskSlowProb: 0.05, DiskSlowMax: 5 * time.Millisecond})
	fed, err := NewFederation(FederationConfig{
		Shards:    []string{"shard-0", "shard-1", "shard-2"},
		StateRoot: t.TempDir(),
		Policy:    cluster.BestFit,
		Seed:      7,
		FailOp:    func(_, op string) error { return slow.DiskFault(op) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()

	agentFaults := faults.New(faults.Config{Seed: 33, HTTPErrorProb: 0.01,
		HTTPDelayProb: 0.02, HTTPDelayMax: 10 * time.Millisecond})
	l, err := NewLoad(LoadConfig{
		Agents:        12,
		Seed:          9,
		HeartbeatBase: 40 * time.Millisecond,
		ArrivalRPS:    80,
		Profile:       interactive.Bursty,
		TickInterval:  25 * time.Millisecond,
		Faults:        agentFaults,
	}, fed.URLs())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	if err := l.RegisterAll(ctx); err != nil {
		t.Fatal(err)
	}
	l.StartHeartbeats(ctx)
	if err := l.Run(ctx, 15); err != nil {
		t.Fatal(err)
	}

	// Chaos: partition one agent, then SIGKILL a shard leader mid-load.
	partitioned := l.AgentNames()[0]
	l.Partition(partitioned, true)
	victim := busiestShard(fed, l)
	deadURL := fed.Shard(victim).URL
	if err := fed.Kill(victim); err != nil {
		t.Fatal(err)
	}
	killedAt := time.Now()
	if err := l.Run(ctx, 5); err != nil { // offered load keeps arriving while down
		t.Fatal(err)
	}
	if _, _, err := fed.Adopt(ctx, victim, ""); err != nil {
		t.Fatal(err)
	}
	l.Partition(partitioned, false)
	if err := l.Run(ctx, 10); err != nil {
		t.Fatal(err)
	}

	// Split-brain probe: the dead leader's endpoint must not ack writes.
	if acked, err := ProbeWrite(ctx, deadURL, "chaos-split-brain-probe"); err == nil && acked {
		t.Fatal("crash-stopped shard acked a write")
	}

	convCtx, convCancel := context.WithTimeout(ctx, 15*time.Second)
	defer convCancel()
	conv, err := l.AwaitConvergence(convCtx, killedAt)
	if err != nil {
		t.Fatalf("convergence after adoption: %v", err)
	}

	inv, err := l.CheckInvariants(ctx, fed.View())
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Ok() {
		t.Fatalf("chaos run violated invariants: %+v", inv)
	}
	rep := l.Report()
	if rep.LaunchesAcked == 0 || rep.HeartbeatsOK == 0 {
		t.Fatalf("no load generated: %+v", rep)
	}
	t.Logf("chaos run: %d/%d launches acked, hb ok=%.0f fail=%.0f, launch p99=%.1fms, migrate p99=%.1fms, converged %v",
		rep.LaunchesAcked, rep.LaunchesSent, rep.HeartbeatsOK, rep.HeartbeatsFail,
		rep.LaunchP99MS, rep.MigrateP99MS, conv)
}

// TestHeartbeatJitterSpreadAndDeterminism pins the satellite contract for
// agent heartbeat pacing: every drawn interval stays inside the full-jitter
// window [base/2, 3·base/2), identical seeds reproduce identical streams,
// and a synchronized fleet de-phases (the draws do not cluster).
func TestHeartbeatJitterSpreadAndDeterminism(t *testing.T) {
	const base = 100 * time.Millisecond
	lo, hi := base/2, base+base/2

	draw := func(seed int64, n int) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = cluster.HeartbeatInterval(rng, base)
		}
		return out
	}

	a, b := draw(42, 500), draw(42, 500)
	buckets := make(map[int]int)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d not deterministic: %v vs %v", i, a[i], b[i])
		}
		if a[i] < lo || a[i] >= hi {
			t.Fatalf("draw %d = %v outside [%v, %v)", i, a[i], lo, hi)
		}
		buckets[int(a[i]/(10*time.Millisecond))]++
	}
	// Spread: the window spans 10 buckets of 10ms; a degenerate jitter
	// would pile everything into a few.
	if len(buckets) < 8 {
		t.Errorf("jitter clusters into %d buckets: %v", len(buckets), buckets)
	}
	// Distinct agents (per-name seeds) must not share a stream.
	c := draw(43, 500)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 50 {
		t.Errorf("distinct seeds collide on %d/500 draws", same)
	}
	// Nil rng falls back to fixed cadence.
	if got := cluster.HeartbeatInterval(nil, base); got != base {
		t.Errorf("nil rng interval = %v, want %v", got, base)
	}
}

// BenchmarkDeflloadHeartbeat measures heartbeat fan-in: one ring-routed
// POST /v1/nodes/{name}/heartbeat per op, round-robin across agents and
// managers, so ns/op is the end-to-end cost of one liveness report.
func BenchmarkDeflloadHeartbeat(b *testing.B) {
	fed, err := NewFederation(FederationConfig{
		Shards:    []string{"shard-0", "shard-1", "shard-2"},
		StateRoot: b.TempDir(),
		Policy:    cluster.BestFit,
		Seed:      7,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer fed.Close()
	l, err := NewLoad(LoadConfig{Agents: 12, Seed: 5}, fed.URLs())
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	ctx := context.Background()
	if err := l.RegisterAll(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		l.beatOnce(ctx, l.agents[i%len(l.agents)])
	}
	elapsed := time.Since(start)
	b.StopTimer()
	rep := l.Report()
	if rep.HeartbeatsOK == 0 {
		b.Fatalf("no heartbeats acked: %+v", rep)
	}
	b.ReportMetric(rep.HeartbeatsOK/elapsed.Seconds(), "heartbeats/s")
}

// BenchmarkDeflloadThroughput measures placement throughput of a 3-shard
// federation under the deflload driver: acked launches per second, end to
// end through routing, journaling, and simulated hypervisors.
func BenchmarkDeflloadThroughput(b *testing.B) {
	fed, err := NewFederation(FederationConfig{
		Shards:    []string{"shard-0", "shard-1", "shard-2"},
		StateRoot: b.TempDir(),
		Policy:    cluster.BestFit,
		Seed:      7,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer fed.Close()
	l, err := NewLoad(LoadConfig{Agents: 12, Seed: 5, AgentCPUs: 64, AgentMemGB: 256}, fed.URLs())
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	ctx := context.Background()
	if err := l.RegisterAll(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		l.launchOne(ctx, fmt.Sprintf("bench-vm-%06d", i))
	}
	elapsed := time.Since(start)
	b.StopTimer()
	rep := l.Report()
	if rep.LaunchesAcked == 0 {
		b.Fatalf("no launches acked: %+v", rep)
	}
	b.ReportMetric(float64(rep.LaunchesAcked)/elapsed.Seconds(), "launches/s")
	b.ReportMetric(rep.LaunchP99MS, "p99-ms")
}
