package shard

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// echoShard is a stand-in shard handler that reports which shard served
// the request.
func echoShard(id string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "served-by:%s", id)
	})
}

// twoRouterFixture builds two routers over real listeners, each serving
// its own shard, sharing one map.
func twoRouterFixture(t *testing.T) (a, b *Router, aURL, bURL string) {
	t.Helper()
	srvA := httptest.NewServer(nil)
	srvB := httptest.NewServer(nil)
	t.Cleanup(srvA.Close)
	t.Cleanup(srvB.Close)
	m := Map{Version: 1, Members: []Member{
		{ID: "shard-a", URL: srvA.URL},
		{ID: "shard-b", URL: srvB.URL},
	}}
	a = NewRouter("shard-a", NewMapStore(m))
	b = NewRouter("shard-b", NewMapStore(m))
	a.Mount("shard-a", echoShard("shard-a"))
	b.Mount("shard-b", echoShard("shard-b"))
	srvA.Config.Handler = a.Handler()
	srvB.Config.Handler = b.Handler()
	return a, b, srvA.URL, srvB.URL
}

// keyOwnedBy finds a VM name the given shard owns under the fixture's map.
func keyOwnedBy(t *testing.T, v *View, shard string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("vm-%d", i)
		if v.Owner(k) == shard {
			return k
		}
	}
	t.Fatal("no key found for shard", shard)
	return ""
}

func TestRouterLocalDispatchAndRedirect(t *testing.T) {
	a, _, aURL, bURL := twoRouterFixture(t)
	v := a.Store().View()

	client := &http.Client{} // follows 307s, re-sending the body
	for _, shard := range []string{"shard-a", "shard-b"} {
		key := keyOwnedBy(t, v, shard)
		body := fmt.Sprintf(`{"name":%q}`, key)
		resp, err := client.Post(aURL+"/v1/vms", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := readAll(resp)
		if want := "served-by:" + shard; got != want {
			t.Errorf("key %s (owner %s) served by %q", key, shard, got)
		}
		if resp.Header.Get(ShardEpochHeader) != "1" {
			t.Errorf("missing/wrong %s: %q", ShardEpochHeader, resp.Header.Get(ShardEpochHeader))
		}
	}

	// Without following redirects the foreign-owned key must 307 to the peer.
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	key := keyOwnedBy(t, v, "shard-b")
	resp, err := noFollow.Post(aURL+"/v1/vms", "application/json",
		strings.NewReader(fmt.Sprintf(`{"name":%q}`, key)))
	if err != nil {
		t.Fatal(err)
	}
	readAll(resp)
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("foreign key status = %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, bURL) {
		t.Errorf("redirect location = %q, want prefix %q", loc, bURL)
	}
}

func TestRouterHeartbeatRoutesByPathKey(t *testing.T) {
	a, _, aURL, _ := twoRouterFixture(t)
	v := a.Store().View()
	client := &http.Client{}
	for _, shard := range []string{"shard-a", "shard-b"} {
		key := keyOwnedBy(t, v, shard)
		resp, err := client.Post(aURL+"/v1/nodes/"+key+"/heartbeat", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := readAll(resp); got != "served-by:"+shard {
			t.Errorf("heartbeat for %s served by %q, want %s", key, got, shard)
		}
	}
}

func TestRouterServeLocalShardSelector(t *testing.T) {
	a, b, aURL, _ := twoRouterFixture(t)
	// shard-a adopts shard-b's handler (as adoption would mount it).
	a.Mount("shard-b", echoShard("shard-b-adopted"))
	client := &http.Client{}

	resp, err := client.Get(aURL + "/v1/cluster?shard=shard-b")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := readAll(resp); got != "served-by:shard-b-adopted" {
		t.Errorf("?shard=shard-b on adopter served %q", got)
	}

	// An unmounted foreign shard redirects to wherever the map says it lives.
	a.Unmount("shard-b")
	resp, err = client.Get(aURL + "/v1/cluster?shard=shard-b")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := readAll(resp); got != "served-by:shard-b" {
		t.Errorf("?shard=shard-b after unmount served %q", got)
	}
	_ = b
}

func TestRouterGossipSpreadsNewerMap(t *testing.T) {
	a, b, _, _ := twoRouterFixture(t)
	// b learns of an adoption (version bump); a still has v1.
	b.Store().Adopt("shard-a", "shard-b")
	bumped := b.Store().View().Map.Version
	if bumped <= 1 {
		t.Fatal("Adopt did not bump version")
	}
	b.GossipOnce(context.Background(), nil) // push: b is newer
	if got := a.Store().View().Map.Version; got != bumped {
		t.Fatalf("gossip did not spread: a at v%d, want v%d", got, bumped)
	}
	if got := a.Store().View().Owner(keyOwnedBy(t, NewView(Map{Version: 1, Members: a.Store().View().Map.Members}), "shard-a")); got != "shard-b" {
		t.Errorf("adopted ownership not visible on peer: owner = %s", got)
	}
}

func TestRouterEmptyKeyServesLocally(t *testing.T) {
	_, _, aURL, _ := twoRouterFixture(t)
	client := &http.Client{}
	// A nameless registration cannot be ring-routed; the reached shard keeps it.
	resp, err := client.Post(aURL+"/v1/nodes", "application/json", strings.NewReader(`{"url":"http://x"}`))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := readAll(resp); got != "served-by:shard-a" {
		t.Errorf("nameless registration served by %q, want local shard", got)
	}
}

func readAll(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
