// Package shard federates the deflation control plane across N manager
// shards. A consistent-hash ring (virtual nodes over FNV-64a) assigns
// every node agent — and every VM command, keyed by VM name — to exactly
// one shard; each shard runs the existing WAL/fencing/Recover machinery
// (internal/cluster) on its own journal under a shared state root, so a
// peer manager can adopt a dead shard by replaying its journal,
// fence-bumping past the cluster-wide epoch maximum, and anti-entropy
// reconciling against the dead shard's live agents.
//
// The package has four layers:
//
//   - the ring (this file) and the seq-versioned shard Map (map.go):
//     deterministic ownership, gossiped between managers;
//   - Router (router.go): the HTTP front door of each manager — requests
//     for keys the local shard owns are served, everything else is
//     redirected (307 + X-Deflation-Shard-Epoch) to the owner;
//   - Federation (federation.go): N shards over real HTTP listeners with
//     crash-stop Kill, journal adoption, and cross-shard reconciliation
//     (reconcile.go) repairing double-owned or orphaned nodes;
//   - the deflload harness (load.go): thousands of in-process node agents
//     driving open-loop registrations/heartbeats/launches/migrations at
//     the federation while chaos (leader kill, partitions, slow disks)
//     runs, asserting no lost acknowledged registrations, no split-brain
//     writes, and bounded convergence after adoption.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per member when a Map does not
// specify one. 64 vnodes keeps the max/mean ownership skew under ~1.25
// for small member counts while the ring stays tiny (N×64 points).
const DefaultVNodes = 64

// Member is one manager shard in the ring: a stable identity plus the
// base URL peers and clients use to reach it.
type Member struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Ring is an immutable consistent-hash ring over a set of members.
// Construction is deterministic: the same members (in any order, with
// duplicates) always produce the same ring, so every manager that holds
// the same Map computes identical ownership without coordination.
type Ring struct {
	points []ringPoint // sorted by hash
	ids    []string    // deduped, sorted member IDs
}

type ringPoint struct {
	hash uint64
	id   string
}

// NewRing builds a ring with the given virtual-node count (0 means
// DefaultVNodes). Duplicate IDs are deduped; order does not matter. An
// empty id list yields an empty ring whose Owner returns "".
func NewRing(ids []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(ids))
	uniq := make([]string, 0, len(ids))
	for _, id := range ids {
		if id == "" || seen[id] {
			continue
		}
		seen[id] = true
		uniq = append(uniq, id)
	}
	sort.Strings(uniq)
	r := &Ring{ids: uniq}
	if len(uniq) == 0 {
		return r
	}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for _, id := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hashPoint(id, i), id: id})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Ties (astronomically rare with 64-bit hashes, but possible with
		// adversarial IDs) break deterministically by ID so all managers
		// agree.
		return r.points[a].id < r.points[b].id
	})
	return r
}

// hashPoint derives the ring position of one virtual node.
func hashPoint(id string, vnode int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	h.Write([]byte{'#'})
	var buf [4]byte
	buf[0] = byte(vnode >> 24)
	buf[1] = byte(vnode >> 16)
	buf[2] = byte(vnode >> 8)
	buf[3] = byte(vnode)
	h.Write(buf[:])
	return mix64(h.Sum64())
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is a full-avalanche 64-bit finalizer (the murmur3 fmix64
// constants). Raw FNV-64a of short, similar strings — exactly what shard
// IDs and node names are — leaves enough correlation in the high bits to
// skew ring arcs 3:1; finalizing restores uniform dispersion.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Members returns the deduped, sorted member IDs on the ring.
func (r *Ring) Members() []string {
	out := make([]string, len(r.ids))
	copy(out, r.ids)
	return out
}

// Len returns the number of distinct members on the ring.
func (r *Ring) Len() int { return len(r.ids) }

// Owner returns the member owning key: the first virtual node clockwise
// from the key's hash, wrapping at the top of the ring. An empty ring
// owns nothing and returns "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].id
}

// Successor returns the live member that follows id clockwise on the
// ring of member identities — the deterministic adopter-elect for a dead
// shard. Every surviving manager computes the same answer from the same
// Map, so adoption needs no election. Returns "" when id is the only
// member or the ring is empty.
func (r *Ring) Successor(id string) string {
	if len(r.ids) == 0 {
		return ""
	}
	i := sort.SearchStrings(r.ids, id)
	if i == len(r.ids) || r.ids[i] != id {
		// id is not a member: its successor is the owner of its hash,
		// which is what a rebalance would compute.
		return r.Owner(id)
	}
	if len(r.ids) == 1 {
		return ""
	}
	return r.ids[(i+1)%len(r.ids)]
}

// String renders the ring for logs.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d members, %d points)", len(r.ids), len(r.points))
}
