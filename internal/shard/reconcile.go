package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"deflation/internal/cluster"
)

// Cross-shard reconciliation. Rebalances and adoptions can transiently
// leave a node agent double-owned (registered with two shards — e.g. its
// re-registration raced a hand-off) or owned by the wrong shard (the ring
// moved but the node's registration did not). ReconcileOnce walks every
// shard's registered fleet, compares each node against the ring, and
// repairs: the node is first registered with its ring owner (which adopts
// the node's live VM inventory), then removed from every other shard via
// the hand-off path — which drops bookkeeping WITHOUT releasing anything,
// so repair can never evict a healthy VM. Orphaned agents (registered
// nowhere) repair themselves: their heartbeats 404 everywhere, and the
// agent re-registers through the ring, landing on its owner.

// ReconcileMove records one repaired node: removed From a shard, now
// registered with To.
type ReconcileMove struct {
	Node string `json:"node"`
	From string `json:"from"`
	To   string `json:"to"`
}

// ReconcileReport summarizes one cross-shard reconciliation pass.
type ReconcileReport struct {
	// ShardsSwept counts shards whose fleets were listed successfully.
	ShardsSwept int `json:"shards_swept"`
	// Moves are the repaired (mis- or double-owned) registrations.
	Moves []ReconcileMove `json:"moves,omitempty"`
	// DoubleOwned lists nodes found registered with more than one shard.
	DoubleOwned []string `json:"double_owned,omitempty"`
}

// ReconcileOnce runs one cross-shard reconciliation pass against a live
// federation, addressed through its shard map view. Dead, not-yet-adopted
// shards are skipped (their journals reconcile during adoption).
func ReconcileOnce(ctx context.Context, client *http.Client, v *View) (ReconcileReport, error) {
	if client == nil {
		client = http.DefaultClient
	}
	var rep ReconcileReport

	type owned struct {
		shard string // shard the registration lives in
		url   string // agent endpoint ("" = static, cannot be moved)
	}
	fleet := make(map[string][]owned) // node name → registrations

	shardIDs := make([]string, 0, len(v.Map.Members))
	for _, mem := range v.Map.Members {
		shardIDs = append(shardIDs, mem.ID)
	}
	sort.Strings(shardIDs)
	for _, sid := range shardIDs {
		serving := v.Map.resolveAdoption(sid)
		base := v.Map.MemberURL(serving)
		if base == "" {
			continue
		}
		nodes, err := listNodes(ctx, client, base, sid)
		if err != nil {
			continue // dead or unreachable; adoption reconciles its journal
		}
		rep.ShardsSwept++
		for name, url := range nodes.Nodes {
			fleet[name] = append(fleet[name], owned{shard: sid, url: url})
		}
	}

	names := make([]string, 0, len(fleet))
	for name := range fleet {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		regs := fleet[name]
		properShard := v.RingOwner(name)
		if len(regs) > 1 {
			rep.DoubleOwned = append(rep.DoubleOwned, name)
		}
		misowned := false
		var url string
		for _, reg := range regs {
			if reg.shard == properShard {
				continue
			}
			misowned = true
			if reg.url != "" {
				url = reg.url
			}
		}
		if !misowned {
			continue
		}
		// Register with the ring owner first — the node must never be
		// unmanaged — then hand it off from every other shard.
		ownerBase := v.Map.MemberURL(v.Map.resolveAdoption(properShard))
		if ownerBase == "" || url == "" {
			continue // owner dead (pending adoption) or static fleet member
		}
		if err := registerNode(ctx, client, ownerBase, name, url); err != nil {
			continue
		}
		for _, reg := range regs {
			if reg.shard == properShard {
				continue
			}
			servingBase := v.Map.MemberURL(v.Map.resolveAdoption(reg.shard))
			if servingBase == "" {
				continue
			}
			if err := forgetNode(ctx, client, servingBase, reg.shard, name); err != nil {
				continue
			}
			rep.Moves = append(rep.Moves, ReconcileMove{Node: name, From: reg.shard, To: properShard})
		}
	}
	return rep, nil
}

// ReconcileAll runs one reconciliation pass using the federation's own
// view (in-process federations; external planes call ReconcileOnce with a
// fetched map).
func (fed *Federation) ReconcileAll(ctx context.Context) (ReconcileReport, error) {
	return ReconcileOnce(ctx, &http.Client{}, fed.View())
}

func listNodes(ctx context.Context, client *http.Client, base, shardID string) (cluster.NodeListResponse, error) {
	var out cluster.NodeListResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/nodes?shard="+shardID, nil)
	if err != nil {
		return out, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return out, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("shard: listing nodes of %s: %s", shardID, resp.Status)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

func registerNode(ctx context.Context, client *http.Client, base, name, url string) error {
	body, err := json.Marshal(cluster.RegisterNodeRequest{Name: name, URL: url})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/nodes", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode >= 300 {
		return fmt.Errorf("shard: registering %s: %s", name, resp.Status)
	}
	return nil
}

func forgetNode(ctx context.Context, client *http.Client, base, shardID, name string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		base+"/v1/nodes/"+name+"?shard="+shardID, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode >= 300 && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("shard: removing %s from %s: %s", name, shardID, resp.Status)
	}
	return nil
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
