package shard

import (
	"fmt"
	"math"
	"testing"
)

func shardIDs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("shard-%d", i)
	}
	return out
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%04d", i)
	}
	return out
}

func TestRingDeterministicAndTotal(t *testing.T) {
	a := NewRing(shardIDs(3), DefaultVNodes)
	b := NewRing([]string{"shard-2", "shard-0", "shard-1"}, DefaultVNodes) // order must not matter
	if a.Len() != 3 {
		t.Fatalf("ring len = %d", a.Len())
	}
	for _, k := range keys(500) {
		oa, ob := a.Owner(k), b.Owner(k)
		if oa == "" {
			t.Fatalf("key %s unowned", k)
		}
		if oa != ob {
			t.Fatalf("ownership depends on member order: %s vs %s for %s", oa, ob, k)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(shardIDs(4), DefaultVNodes)
	counts := map[string]int{}
	const n = 4000
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	for id, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.25) > 0.12 {
			t.Errorf("shard %s owns %.1f%% of keys (want ~25%%)", id, frac*100)
		}
	}
}

// TestRingMinimalMovement is the consistent-hashing contract: adding one
// member to N moves about K/(N+1) keys, and every moved key moves TO the
// new member, never between old members.
func TestRingMinimalMovement(t *testing.T) {
	before := NewRing(shardIDs(3), DefaultVNodes)
	after := NewRing(shardIDs(4), DefaultVNodes)
	const n = 4000
	moved := 0
	for _, k := range keys(n) {
		ob, oa := before.Owner(k), after.Owner(k)
		if ob == oa {
			continue
		}
		moved++
		if oa != "shard-3" {
			t.Fatalf("key %s moved between old members: %s → %s", k, ob, oa)
		}
	}
	frac := float64(moved) / n
	if frac > 0.40 { // ideal 1/4; generous bound for hash noise
		t.Errorf("adding 1 of 4 members moved %.1f%% of keys", frac*100)
	}
	if moved == 0 {
		t.Error("new member owns nothing")
	}
}

func TestRingEdgeCases(t *testing.T) {
	if o := NewRing(nil, 8).Owner("x"); o != "" {
		t.Errorf("empty ring owner = %q", o)
	}
	one := NewRing([]string{"only"}, 8)
	if o := one.Owner("anything"); o != "only" {
		t.Errorf("single-member owner = %q", o)
	}
	dup := NewRing([]string{"a", "a", "b"}, 8)
	if dup.Len() != 2 {
		t.Errorf("duplicate members not deduped: len = %d", dup.Len())
	}
}

func TestAdoptionOverlayMovesNoHealthyKeys(t *testing.T) {
	m := Map{Version: 1, Members: []Member{
		{ID: "shard-0", URL: "http://a"},
		{ID: "shard-1", URL: "http://b"},
		{ID: "shard-2", URL: "http://c"},
	}}
	v := NewView(m)

	adopted := m.Clone()
	adopted.Adopted = map[string]string{"shard-1": "shard-2"}
	adopted.Version = 2
	va := NewView(adopted)

	for _, k := range keys(2000) {
		before, after := v.Owner(k), va.Owner(k)
		switch before {
		case "shard-1":
			if after != "shard-2" {
				t.Fatalf("dead shard's key %s went to %s, not the adopter", k, after)
			}
		default:
			if after != before {
				t.Fatalf("healthy key %s moved %s → %s during adoption", k, before, after)
			}
		}
		// The ring itself must be untouched by the overlay.
		if va.RingOwner(k) != before {
			t.Fatalf("ring ownership changed under overlay for %s", k)
		}
	}
}

func TestAdoptionChainsResolve(t *testing.T) {
	m := Map{Version: 3, Members: []Member{{ID: "a"}, {ID: "b"}, {ID: "c"}},
		Adopted: map[string]string{"a": "b", "b": "c"}}
	if got := m.resolveAdoption("a"); got != "c" {
		t.Errorf("chain a→b→c resolved to %q", got)
	}
}

func TestAdopterElectSkipsDeadAndAdopted(t *testing.T) {
	m := Map{Version: 1, Members: []Member{{ID: "a"}, {ID: "b"}, {ID: "c"}},
		Adopted: map[string]string{"b": "c"}}
	v := NewView(m)
	// a's clockwise successor is b, but b is itself adopted (dead); the
	// elect must land on c.
	if got := v.AdopterElect("a"); got != "c" {
		t.Errorf("adopter-elect for a = %q, want c", got)
	}
	if got := v.AdopterElect("c"); got != "a" {
		t.Errorf("adopter-elect for c = %q, want a (wraparound)", got)
	}
}

func TestMapStoreMergeKeepsNewest(t *testing.T) {
	s := NewMapStore(Map{Version: 2, Members: []Member{{ID: "a"}}})
	s.Merge(Map{Version: 1, Members: []Member{{ID: "stale"}}})
	if got := s.View().Map.Members[0].ID; got != "a" {
		t.Errorf("older map overwrote newer: member = %s", got)
	}
	s.Merge(Map{Version: 5, Members: []Member{{ID: "b"}}})
	if got := s.View().Map.Version; got != 5 {
		t.Errorf("newer map not kept: version = %d", got)
	}
}
