package shard

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzShardRing drives ring construction and ownership with arbitrary
// member sets (including empties, duplicates, and junk bytes) and asserts
// the structural contract: construction never panics, ownership is total
// over non-empty rings, order-independent, and adding a member moves keys
// ONLY onto the new member (the consistent-hashing ≤~K/N movement bound in
// its exact form).
func FuzzShardRing(f *testing.F) {
	f.Add("shard-0\nshard-1\nshard-2", "node-1", 8)
	f.Add("", "anything", 4)
	f.Add("a", "a", 1)
	f.Add("a\na\na", "k", 0)
	f.Add("x\ny\nz\nw\nv", "node-\x00\xff", 64)
	f.Fuzz(func(t *testing.T, memberBlob, key string, vnodes int) {
		if vnodes < 0 || vnodes > 256 {
			vnodes = vnodes%256 + 1
			if vnodes < 0 {
				vnodes = -vnodes
			}
		}
		ids := strings.Split(memberBlob, "\n")
		r := NewRing(ids, vnodes)

		// Totality: a non-empty ring owns every key; an empty ring owns none.
		owner := r.Owner(key)
		if r.Len() == 0 && owner != "" {
			t.Fatalf("empty ring owns %q", key)
		}
		if r.Len() > 0 && owner == "" {
			t.Fatalf("key %q unowned on %d-member ring", key, r.Len())
		}

		// Order independence.
		rev := make([]string, len(ids))
		for i, id := range ids {
			rev[len(ids)-1-i] = id
		}
		if got := NewRing(rev, vnodes).Owner(key); got != owner {
			t.Fatalf("ownership depends on member order: %q vs %q", got, owner)
		}

		// Single-member ring: everything lands there.
		if r.Len() == 1 && owner != r.Members()[0] {
			t.Fatalf("single-member ring owner = %q", owner)
		}

		// Movement: grow the ring by one synthetic member; every key that
		// changes owner must change TO the new member.
		const extra = "fuzz-added-member"
		hasExtra := false
		for _, id := range r.Members() {
			if id == extra {
				hasExtra = true
			}
		}
		if r.Len() > 0 && !hasExtra {
			grown := NewRing(append(r.Members(), extra), vnodes)
			for i := 0; i < 64; i++ {
				k := fmt.Sprintf("%s#%d", key, i)
				before, after := r.Owner(k), grown.Owner(k)
				if before != after && after != extra {
					t.Fatalf("key %q moved between pre-existing members %q → %q", k, before, after)
				}
			}
		}
	})
}
