// Package curveapp provides a generic deflatable application driven by a
// calibrated utility curve — the workhorse for cluster-scale experiments
// (Fig. 8), where hundreds of VMs run workloads whose individual deflation
// behaviour is already captured by the Figure-1 curves.
package curveapp

import (
	"math"
	"time"

	"deflation/internal/hypervisor"
	"deflation/internal/perfmodel"
	"deflation/internal/restypes"
)

// Config describes a curve-driven application.
type Config struct {
	Name string
	// Curve maps allocation fraction to normalized performance. Defaults
	// to the SpecJBB curve.
	Curve *perfmodel.UtilityCurve
	// Size is the VM's nominal allocation, used to normalize fractions.
	Size restypes.Vector
	// RSSFraction and CacheFraction set the memory footprint as fractions
	// of nominal memory (defaults 0.5 and 0.2).
	RSSFraction, CacheFraction float64
	// Elastic lets the app relinquish memory (shrink its RSS) down to
	// MinRSSFraction of nominal memory (default 0.25) when asked.
	Elastic        bool
	MinRSSFraction float64
	// SwapPenaltyRatio inflates slowdown per unit of hot-swapped RSS
	// fraction (default 5).
	SwapPenaltyRatio float64
}

func (c Config) withDefaults() Config {
	if c.Curve == nil {
		c.Curve = perfmodel.CurveSpecJBB
	}
	if c.RSSFraction == 0 {
		c.RSSFraction = 0.5
	}
	if c.CacheFraction == 0 {
		c.CacheFraction = 0.2
	}
	if c.MinRSSFraction == 0 {
		c.MinRSSFraction = 0.25
	}
	if c.SwapPenaltyRatio == 0 {
		c.SwapPenaltyRatio = 5
	}
	return c
}

// App implements vm.Application from a Config.
type App struct {
	cfg     Config
	rssMB   float64
	availMB float64 // believed memory availability inside the VM
}

// New builds a curve-driven application sized for cfg.Size.
func New(cfg Config) *App {
	cfg = cfg.withDefaults()
	return &App{cfg: cfg, rssMB: cfg.RSSFraction * cfg.Size.MemoryMB, availMB: cfg.Size.MemoryMB}
}

// memHeadroomMB is the guest memory left free by the sizing policy.
const memHeadroomMB = 256 + 128

// Name implements vm.Application.
func (a *App) Name() string {
	if a.cfg.Name != "" {
		return a.cfg.Name
	}
	return "curveapp:" + a.cfg.Curve.Name()
}

// Footprint implements vm.Application.
func (a *App) Footprint() (float64, float64) {
	return a.rssMB, a.cfg.CacheFraction * a.cfg.Size.MemoryMB
}

// SelfDeflate implements vm.Application: elastic apps shrink their RSS to
// fit the post-deflation memory availability; inelastic ones ignore the
// request.
func (a *App) SelfDeflate(target restypes.Vector) (restypes.Vector, time.Duration) {
	if !a.cfg.Elastic || target.MemoryMB <= 0 {
		return restypes.Vector{}, 0
	}
	a.availMB -= target.MemoryMB
	if a.availMB < 0 {
		a.availMB = 0
	}
	newRSS := a.availMB - memHeadroomMB - a.cfg.CacheFraction*a.cfg.Size.MemoryMB
	if floor := a.cfg.MinRSSFraction * a.cfg.Size.MemoryMB; newRSS < floor {
		newRSS = floor
	}
	if want := a.cfg.RSSFraction * a.cfg.Size.MemoryMB; newRSS > want {
		newRSS = want
	}
	if newRSS >= a.rssMB {
		return restypes.Vector{}, 0
	}
	freed := a.rssMB - newRSS
	a.rssMB = newRSS
	if freed > target.MemoryMB {
		freed = target.MemoryMB
	}
	return restypes.Vector{MemoryMB: freed}, time.Duration(freed / 2048 * float64(time.Second))
}

// Reinflate implements vm.Application: grow back toward the configured RSS.
func (a *App) Reinflate(env hypervisor.Env) {
	if !a.cfg.Elastic {
		return
	}
	a.availMB = env.GuestMemMB
	want := a.cfg.RSSFraction * a.cfg.Size.MemoryMB
	avail := env.GuestMemMB - memHeadroomMB - a.cfg.CacheFraction*a.cfg.Size.MemoryMB
	a.rssMB = math.Min(want, math.Max(a.rssMB, avail))
}

// Throughput implements vm.Application: the utility curve evaluated at the
// effective allocation fraction, with a swap penalty for hot pages taken by
// the host.
func (a *App) Throughput(env hypervisor.Env) float64 {
	if env.OOMKilled {
		return 0
	}
	frac := 1.0
	if a.cfg.Size.CPU > 0 {
		frac = math.Min(frac, env.EffectiveCores/a.cfg.Size.CPU)
	}
	if a.cfg.Size.MemoryMB > 0 && env.EverTouchedMB > 0 {
		frac = math.Min(frac, env.ResidentMB/env.EverTouchedMB)
	}
	if a.cfg.Size.DiskMBps > 0 {
		frac = math.Min(frac, env.DiskMBps/a.cfg.Size.DiskMBps)
	}
	if a.cfg.Size.NetMBps > 0 {
		frac = math.Min(frac, env.NetMBps/a.cfg.Size.NetMBps)
	}
	perf := a.cfg.Curve.At(frac)

	if env.SwappedMB > 0 && a.rssMB > 0 {
		coldPool := env.EverTouchedMB - a.rssMB - env.KernelMemMB
		if coldPool < 0 {
			coldPool = 0
		}
		hot := math.Max(0, env.SwappedMB-coldPool)
		if hot > a.rssMB {
			hot = a.rssMB
		}
		perf /= 1 + hot/a.rssMB*a.cfg.SwapPenaltyRatio
	}
	return perf
}
