package curveapp

import (
	"testing"
	"testing/quick"

	"deflation/internal/hypervisor"
	"deflation/internal/perfmodel"
	"deflation/internal/restypes"
)

func size() restypes.Vector { return restypes.V(4, 16384, 400, 400) }

func fullEnv() hypervisor.Env {
	return hypervisor.Env{
		VCPUs: 4, PhysCores: 4, EffectiveCores: 4,
		GuestMemMB: 16384, ResidentMB: 16384, EverTouchedMB: 16384,
		KernelMemMB: 256, LocalityFactor: 1, DiskMBps: 400, NetMBps: 400,
	}
}

func TestDefaultsAndName(t *testing.T) {
	a := New(Config{Size: size()})
	if a.Name() != "curveapp:SpecJBB" {
		t.Errorf("name = %q", a.Name())
	}
	b := New(Config{Size: size(), Name: "my-app"})
	if b.Name() != "my-app" {
		t.Errorf("name = %q", b.Name())
	}
	rss, cache := a.Footprint()
	if rss != 0.5*16384 || cache != 0.2*16384 {
		t.Errorf("footprint = %g/%g", rss, cache)
	}
}

func TestBaselineThroughput(t *testing.T) {
	a := New(Config{Size: size()})
	if got := a.Throughput(fullEnv()); got != 1 {
		t.Errorf("baseline = %g", got)
	}
	env := fullEnv()
	env.OOMKilled = true
	if a.Throughput(env) != 0 {
		t.Error("OOM throughput nonzero")
	}
}

func TestThroughputFollowsCurveOnBindingDimension(t *testing.T) {
	a := New(Config{Size: size(), Curve: perfmodel.CurveKcompile})
	env := fullEnv()
	env.EffectiveCores = 2 // CPU binds at 0.5
	want := perfmodel.CurveKcompile.At(0.5)
	if got := a.Throughput(env); got != want {
		t.Errorf("throughput = %g, want curve(0.5) = %g", got, want)
	}
	// Disk binds harder than CPU.
	env.DiskMBps = 100 // 0.25
	want = perfmodel.CurveKcompile.At(0.25)
	if got := a.Throughput(env); got != want {
		t.Errorf("throughput = %g, want curve(0.25) = %g", got, want)
	}
}

func TestInelasticIgnoresDeflation(t *testing.T) {
	a := New(Config{Size: size()})
	rel, lat := a.SelfDeflate(restypes.V(0, 8000, 0, 0))
	if !rel.IsZero() || lat != 0 {
		t.Error("inelastic app relinquished")
	}
}

func TestElasticSizesToAvailability(t *testing.T) {
	a := New(Config{Size: size(), Elastic: true})
	// Plenty of slack: rss 8192, cache 3277, kernel+headroom 384 →
	// footprint 11853 of 16384. A 2 GB deflation fits in slack.
	rel, _ := a.SelfDeflate(restypes.V(0, 2000, 0, 0))
	if !rel.IsZero() {
		t.Errorf("needless shrink: %v", rel)
	}
	// 8 GB deflation forces a shrink: avail 6384 → rss 6384-384-3277=2723.
	rel, lat := a.SelfDeflate(restypes.V(0, 6192, 0, 0))
	if rel.MemoryMB <= 0 {
		t.Fatalf("relinquished %v", rel)
	}
	if lat <= 0 {
		t.Error("no eviction latency")
	}
	rss, _ := a.Footprint()
	if rss >= 8192 {
		t.Errorf("rss = %g, want shrunk", rss)
	}
	// Floor: huge target cannot shrink below MinRSSFraction.
	a.SelfDeflate(restypes.V(0, 1e9, 0, 0))
	rss, _ = a.Footprint()
	if want := 0.25 * 16384; rss != want {
		t.Errorf("rss = %g, want floor %g", rss, want)
	}
}

func TestReinflateRestoresRSS(t *testing.T) {
	a := New(Config{Size: size(), Elastic: true})
	a.SelfDeflate(restypes.V(0, 12000, 0, 0))
	a.Reinflate(fullEnv())
	rss, _ := a.Footprint()
	if rss != 0.5*16384 {
		t.Errorf("rss after reinflate = %g", rss)
	}
}

func TestSwapPenalty(t *testing.T) {
	a := New(Config{Size: size()})
	env := fullEnv()
	// Swap beyond the cold pool digs into RSS.
	env.SwappedMB = 12000 // cold pool = 16384 - 8192 - 256 = 7936
	env.ResidentMB = env.EverTouchedMB - env.SwappedMB
	got := a.Throughput(env)
	full := a.Throughput(fullEnv())
	if got >= full {
		t.Errorf("swap did not penalize: %g vs %g", got, full)
	}
}

func TestQuickThroughputBounded(t *testing.T) {
	a := New(Config{Size: size(), Elastic: true})
	f := func(cores, mem, swapped uint16) bool {
		env := fullEnv()
		env.EffectiveCores = float64(cores % 5)
		env.ResidentMB = float64(mem % 16384)
		env.EverTouchedMB = 16384
		env.SwappedMB = float64(swapped % 16384)
		tp := a.Throughput(env)
		return tp >= 0 && tp <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickElasticNeverBelowFloor(t *testing.T) {
	f := func(targets []uint16) bool {
		a := New(Config{Size: size(), Elastic: true})
		floor := 0.25 * 16384
		for _, tg := range targets {
			a.SelfDeflate(restypes.V(0, float64(tg), 0, 0))
			rss, _ := a.Footprint()
			if rss < floor-1e-9 || rss > 0.5*16384+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
