// Package webapp models a web-server cluster — the fourth application class
// of Table 1 ("Web servers - CPU: reduce size of thread pool") and the
// paper's footnote on deflation-aware load balancing: "web-application
// clusters ... can use a deflation-aware load-balancer for cascade
// deflation".
//
// Each server runs a worker-thread pool; its deflation policy shrinks the
// pool when CPU is reclaimed ("adjust the load-balancing rules accordingly
// — serve less traffic from deflated servers"). The LoadBalancer
// distributes offered load across servers in proportion to their live
// capacity, so a deflated server receives less traffic instead of building
// an unbounded queue.
package webapp

import (
	"fmt"
	"math"
	"time"

	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
)

// Config describes one web-server VM.
type Config struct {
	// Threads is the worker pool size at boot (default 64).
	Threads int
	// ThreadsPerCore is the pool size the server runs per vCPU without
	// oversubscription penalties (default 16).
	ThreadsPerCore float64
	// RPSPerThread is each worker's request throughput (default 25).
	RPSPerThread float64
	// BaseLatencyMS is the unloaded request latency (default 4ms).
	BaseLatencyMS float64
	// RSSMB is the server's resident set (default 1024); web serving also
	// generates page cache for static content (default 1024).
	RSSMB, CacheMB float64
	// Cores is the booted vCPU count (default 4).
	Cores float64
	// DeflationAware enables the Table 1 policy: shrink the pool to match
	// reclaimed CPU. Unmodified servers keep their threads and suffer
	// oversubscription instead.
	DeflationAware bool
	// MinThreads bounds shrinking (default 4).
	MinThreads int
}

// WithDefaults returns c with zero fields replaced by their documented
// defaults — the sizing the SLO-targeting deflation policy inverts when it
// converts a required capacity back into cores.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Threads == 0 {
		c.Threads = 64
	}
	if c.ThreadsPerCore == 0 {
		c.ThreadsPerCore = 16
	}
	if c.RPSPerThread == 0 {
		c.RPSPerThread = 25
	}
	if c.BaseLatencyMS == 0 {
		c.BaseLatencyMS = 4
	}
	if c.RSSMB == 0 {
		c.RSSMB = 1024
	}
	if c.CacheMB == 0 {
		c.CacheMB = 1024
	}
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.MinThreads == 0 {
		c.MinThreads = 4
	}
	return c
}

// App is one web server as a deflatable application (vm.Application).
type App struct {
	cfg     Config
	threads int
	baseRPS float64
}

// NewApp builds a web server.
func NewApp(cfg Config) (*App, error) {
	cfg = cfg.withDefaults()
	if cfg.Threads < cfg.MinThreads {
		return nil, fmt.Errorf("webapp: threads %d below minimum %d", cfg.Threads, cfg.MinThreads)
	}
	a := &App{cfg: cfg, threads: cfg.Threads}
	a.baseRPS = a.capacityWith(cfg.Threads, cfg.Cores)
	return a, nil
}

// Name implements vm.Application.
func (a *App) Name() string { return "webserver" }

// Threads returns the current pool size.
func (a *App) Threads() int { return a.threads }

// Footprint implements vm.Application. Thread stacks are small; the
// footprint is dominated by the configured RSS and static-content cache.
func (a *App) Footprint() (float64, float64) {
	return a.cfg.RSSMB + float64(a.threads)*2, a.cfg.CacheMB
}

// capacityWith returns the sustainable RPS for a pool size on the given
// effective cores: workers deliver full throughput while the pool is at or
// under ThreadsPerCore×cores; oversubscribed workers contend for CPU.
func (a *App) capacityWith(threads int, cores float64) float64 {
	if threads <= 0 || cores <= 0 {
		return 0
	}
	sustainable := a.cfg.ThreadsPerCore * cores
	n := float64(threads)
	if n <= sustainable {
		return n * a.cfg.RPSPerThread
	}
	// Oversubscription: the CPU caps useful work at the sustainable pool,
	// and context switching shaves throughput as the ratio grows.
	overs := n / sustainable
	return sustainable * a.cfg.RPSPerThread / (1 + 0.15*(overs-1))
}

// SelfDeflate implements vm.Application: the aware policy shrinks the
// thread pool to match the post-deflation CPU ("reduce size of thread
// pool"), cheaply and instantly; the load balancer will route less traffic
// here. Unmodified servers ignore the request.
func (a *App) SelfDeflate(target restypes.Vector) (restypes.Vector, time.Duration) {
	if !a.cfg.DeflationAware || target.CPU <= 0 {
		return restypes.Vector{}, 0
	}
	want := a.poolFor(a.cfg.Cores - target.CPU)
	if want >= a.threads {
		return restypes.Vector{}, 0
	}
	freedThreads := a.threads - want
	a.threads = want
	// Draining worker threads is quick (~5ms per worker to finish in-flight
	// requests), and frees their CPU share.
	freedCores := float64(freedThreads) / a.cfg.ThreadsPerCore
	if freedCores > target.CPU {
		freedCores = target.CPU
	}
	return restypes.Vector{CPU: freedCores},
		time.Duration(freedThreads) * 5 * time.Millisecond
}

// Reinflate implements vm.Application: grow the pool back to what the
// restored CPU sustains.
func (a *App) Reinflate(env hypervisor.Env) {
	if !a.cfg.DeflationAware {
		return
	}
	want := int(math.Floor(a.cfg.ThreadsPerCore * env.EffectiveCores))
	if want > a.cfg.Threads {
		want = a.cfg.Threads
	}
	if want > a.threads {
		a.threads = want
	}
}

// PlannedCapacityRPS predicts the server's capacity after the cascade
// reclaims reclaimCPU cores and the resulting envelope provides effCores:
// the aware policy shrinks the pool exactly as SelfDeflate would, the
// unmodified server keeps its current pool. This is the planning view the
// SLO-targeting deflation policy inverts; it never mutates the server.
func (a *App) PlannedCapacityRPS(reclaimCPU, effCores float64) float64 {
	threads := a.threads
	if a.cfg.DeflationAware && reclaimCPU > 0 {
		if want := a.poolFor(a.cfg.Cores - reclaimCPU); want < threads {
			threads = want
		}
	}
	return a.capacityWith(threads, effCores)
}

// poolFor returns the pool size the aware policy keeps for the given cores.
func (a *App) poolFor(cores float64) int {
	if cores < 0 {
		cores = 0
	}
	want := int(math.Floor(a.cfg.ThreadsPerCore * cores))
	if want < a.cfg.MinThreads {
		want = a.cfg.MinThreads
	}
	return want
}

// CapacityRPS returns the server's sustainable request rate in env.
func (a *App) CapacityRPS(env hypervisor.Env) float64 {
	if env.OOMKilled {
		return 0
	}
	return a.capacityWith(a.threads, env.EffectiveCores)
}

// LatencyMS returns the mean request latency at the given offered rate
// (M/M/1-style queueing against the capacity in env; +Inf when saturated).
func (a *App) LatencyMS(env hypervisor.Env, offeredRPS float64) float64 {
	cap := a.CapacityRPS(env)
	if cap <= 0 || offeredRPS >= cap {
		return math.Inf(1)
	}
	return a.cfg.BaseLatencyMS / (1 - offeredRPS/cap)
}

// Throughput implements vm.Application: capacity normalized to boot.
func (a *App) Throughput(env hypervisor.Env) float64 {
	if a.baseRPS == 0 {
		return 0
	}
	t := a.CapacityRPS(env) / a.baseRPS
	if t > 1 {
		t = 1
	}
	return t
}

// LoadBalancer spreads offered traffic across a pool of web servers in
// proportion to their current capacity — the deflation-aware balancing of
// footnote 2. Servers are identified by index.
type LoadBalancer struct {
	apps []*App
}

// NewLoadBalancer builds a balancer over servers.
func NewLoadBalancer(apps []*App) (*LoadBalancer, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("webapp: balancer needs servers")
	}
	return &LoadBalancer{apps: apps}, nil
}

// Weights returns the current traffic share per server given each server's
// environment, proportional to capacity. When every server has zero live
// capacity (fully deflated pool, OOM-killed fleet) the returned weights
// are all zero — callers must treat that as overload, as Serve does.
func (lb *LoadBalancer) Weights(envs []hypervisor.Env) ([]float64, error) {
	if len(envs) != len(lb.apps) {
		return nil, fmt.Errorf("webapp: %d envs for %d servers", len(envs), len(lb.apps))
	}
	weights := make([]float64, len(lb.apps))
	var total float64
	for i, a := range lb.apps {
		weights[i] = a.CapacityRPS(envs[i])
		total += weights[i]
	}
	if total == 0 {
		return weights, nil
	}
	for i := range weights {
		weights[i] /= total
	}
	return weights, nil
}

// ServeResult summarizes balanced traffic.
type ServeResult struct {
	ServedRPS     float64
	DroppedRPS    float64
	MeanLatencyMS float64
	PerServerRPS  []float64
	// Overloaded reports that the pool had zero live capacity: nothing
	// was served and the entire offered load was dropped, explicitly,
	// instead of being silently stranded.
	Overloaded bool
}

// Serve distributes offeredRPS across the pool by capacity weights and
// reports the aggregate service quality. A pool with zero live capacity
// (every replica fully deflated or OOM-killed) returns an explicit
// overload result — the whole offered load counted as dropped — rather
// than dividing by zero or under-reporting the loss.
func (lb *LoadBalancer) Serve(envs []hypervisor.Env, offeredRPS float64) (ServeResult, error) {
	weights, err := lb.Weights(envs)
	if err != nil {
		return ServeResult{}, err
	}
	var res ServeResult
	res.PerServerRPS = make([]float64, len(lb.apps))
	var live float64
	for _, w := range weights {
		live += w
	}
	if live == 0 {
		res.Overloaded = true
		res.DroppedRPS = offeredRPS
		return res, nil
	}
	var latWeighted float64
	for i, a := range lb.apps {
		share := offeredRPS * weights[i]
		cap := a.CapacityRPS(envs[i])
		served := share
		if cap > 0 && served > cap*0.95 {
			served = cap * 0.95 // admission control at 95% utilization
		}
		res.PerServerRPS[i] = served
		res.ServedRPS += served
		res.DroppedRPS += share - served
		if served > 0 {
			latWeighted += served * a.LatencyMS(envs[i], served)
		}
	}
	if res.ServedRPS > 0 {
		res.MeanLatencyMS = latWeighted / res.ServedRPS
	}
	return res, nil
}
