package webapp

import (
	"math"
	"testing"

	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
)

func fullEnv() hypervisor.Env {
	return hypervisor.Env{
		VCPUs: 4, PhysCores: 4, EffectiveCores: 4,
		GuestMemMB: 16384, ResidentMB: 16384, EverTouchedMB: 16384,
		KernelMemMB: 256, LocalityFactor: 1, DiskMBps: 100, NetMBps: 1250,
	}
}

func newApp(t *testing.T, aware bool) *App {
	t.Helper()
	a, err := NewApp(Config{DeflationAware: aware})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAppValidation(t *testing.T) {
	if _, err := NewApp(Config{Threads: 2, MinThreads: 8}); err == nil {
		t.Error("threads below minimum accepted")
	}
}

func TestBaseline(t *testing.T) {
	a := newApp(t, true)
	// 64 threads on 4 cores × 16/core: exactly sustainable → 64×25 RPS.
	if got := a.CapacityRPS(fullEnv()); got != 1600 {
		t.Errorf("capacity = %g, want 1600", got)
	}
	if got := a.Throughput(fullEnv()); got != 1 {
		t.Errorf("throughput = %g", got)
	}
	if lat := a.LatencyMS(fullEnv(), 800); lat <= 4 || lat > 10 {
		t.Errorf("half-load latency = %g, want ≈8ms", lat)
	}
	if !math.IsInf(a.LatencyMS(fullEnv(), 1600), 1) {
		t.Error("saturated latency finite")
	}
}

func TestOversubscriptionPenalty(t *testing.T) {
	a := newApp(t, false) // unmodified keeps 64 threads
	env := fullEnv()
	env.EffectiveCores = 2 // 64 threads on 2 cores: 2x oversubscribed
	cap := a.CapacityRPS(env)
	// Sustainable = 32×25 = 800, minus context-switch shaving.
	if cap >= 800 || cap < 600 {
		t.Errorf("oversubscribed capacity = %g, want (600, 800)", cap)
	}
}

func TestAwareShrinksPool(t *testing.T) {
	a := newApp(t, true)
	rel, lat := a.SelfDeflate(restypes.V(2, 0, 0, 0))
	if a.Threads() != 32 {
		t.Errorf("threads = %d, want 32", a.Threads())
	}
	if rel.CPU <= 0 || rel.CPU > 2 {
		t.Errorf("relinquished %v", rel)
	}
	if lat <= 0 {
		t.Error("no drain latency")
	}
	// The shrunk pool avoids oversubscription entirely at 2 cores.
	env := fullEnv()
	env.EffectiveCores = 2
	if got := a.CapacityRPS(env); got != 800 {
		t.Errorf("aware capacity at 2 cores = %g, want clean 800", got)
	}
}

func TestAwareBeatsUnmodifiedUnderCPUDeflation(t *testing.T) {
	aware := newApp(t, true)
	unmod := newApp(t, false)
	aware.SelfDeflate(restypes.V(2, 0, 0, 0))
	env := fullEnv()
	env.EffectiveCores = 2
	if aware.CapacityRPS(env) <= unmod.CapacityRPS(env) {
		t.Errorf("aware %g not above unmodified %g",
			aware.CapacityRPS(env), unmod.CapacityRPS(env))
	}
}

func TestShrinkFloorsAndReinflate(t *testing.T) {
	a := newApp(t, true)
	a.SelfDeflate(restypes.V(100, 0, 0, 0))
	if a.Threads() != 4 {
		t.Errorf("threads = %d, want floor 4", a.Threads())
	}
	if rel, _ := a.SelfDeflate(restypes.V(1, 0, 0, 0)); !rel.IsZero() {
		t.Error("shrank below floor")
	}
	a.Reinflate(fullEnv())
	if a.Threads() != 64 {
		t.Errorf("threads after reinflate = %d, want 64", a.Threads())
	}
}

func TestUnmodifiedIgnores(t *testing.T) {
	a := newApp(t, false)
	if rel, lat := a.SelfDeflate(restypes.V(2, 0, 0, 0)); !rel.IsZero() || lat != 0 {
		t.Error("unmodified server reacted")
	}
	if a.Threads() != 64 {
		t.Error("pool changed")
	}
}

func TestFootprintIncludesStacks(t *testing.T) {
	a := newApp(t, true)
	rss, cache := a.Footprint()
	if rss != 1024+128 || cache != 1024 {
		t.Errorf("footprint = %g/%g", rss, cache)
	}
	a.SelfDeflate(restypes.V(2, 0, 0, 0))
	rss2, _ := a.Footprint()
	if rss2 >= rss {
		t.Error("footprint did not shrink with the pool")
	}
}

func TestLoadBalancerWeightsFollowCapacity(t *testing.T) {
	if _, err := NewLoadBalancer(nil); err == nil {
		t.Error("empty balancer accepted")
	}
	apps := []*App{newApp(t, true), newApp(t, true), newApp(t, true)}
	lb, err := NewLoadBalancer(apps)
	if err != nil {
		t.Fatal(err)
	}
	envs := []hypervisor.Env{fullEnv(), fullEnv(), fullEnv()}

	w, err := lb.Weights(envs)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range w {
		if math.Abs(x-1.0/3) > 1e-9 {
			t.Errorf("uniform weights = %v", w)
		}
	}

	// Deflate server 0 by half its CPU: its weight drops accordingly.
	apps[0].SelfDeflate(restypes.V(2, 0, 0, 0))
	envs[0].EffectiveCores = 2
	w, err = lb.Weights(envs)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] >= w[1] {
		t.Errorf("deflated server weight %g not below healthy %g", w[0], w[1])
	}
	if math.Abs(w[0]+w[1]+w[2]-1) > 1e-9 {
		t.Errorf("weights not normalized: %v", w)
	}

	if _, err := lb.Weights(envs[:1]); err == nil {
		t.Error("mismatched envs accepted")
	}
}

func TestServeUnderDeflation(t *testing.T) {
	apps := []*App{newApp(t, true), newApp(t, true), newApp(t, true)}
	lb, _ := NewLoadBalancer(apps)
	envs := []hypervisor.Env{fullEnv(), fullEnv(), fullEnv()}

	// 3 servers × 1600 capacity; offer 3600 RPS (75% load).
	before, err := lb.Serve(envs, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if before.DroppedRPS != 0 {
		t.Errorf("dropped %g at 75%% load", before.DroppedRPS)
	}

	// Deflate one server: the cluster sheds a little capacity but keeps
	// serving, with the deflated server taking a smaller share.
	apps[0].SelfDeflate(restypes.V(2, 0, 0, 0))
	envs[0].EffectiveCores = 2
	after, err := lb.Serve(envs, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if after.PerServerRPS[0] >= after.PerServerRPS[1] {
		t.Errorf("deflated server serving %g ≥ healthy %g",
			after.PerServerRPS[0], after.PerServerRPS[1])
	}
	if after.ServedRPS < before.ServedRPS*0.85 {
		t.Errorf("served %g collapsed from %g", after.ServedRPS, before.ServedRPS)
	}
	if math.IsInf(after.MeanLatencyMS, 1) || after.MeanLatencyMS <= before.MeanLatencyMS {
		t.Errorf("latency %g, want finite and above %g", after.MeanLatencyMS, before.MeanLatencyMS)
	}
}

// TestServeZeroLiveCapacityOverloads: a pool whose every replica has zero
// live capacity (fully deflated or OOM-killed) must report explicit
// overload with the full offered load dropped — regression test for the
// divide-by-zero / silently-stranded-load path.
func TestServeZeroLiveCapacityOverloads(t *testing.T) {
	apps := []*App{newApp(t, true), newApp(t, true)}
	lb, _ := NewLoadBalancer(apps)
	dead := fullEnv()
	dead.OOMKilled = true
	envs := []hypervisor.Env{dead, dead}

	w, err := lb.Weights(envs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range w {
		if x != 0 || math.IsNaN(x) {
			t.Errorf("weight[%d] = %g, want exactly 0", i, x)
		}
	}

	res, err := lb.Serve(envs, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Overloaded {
		t.Error("zero-capacity pool not flagged Overloaded")
	}
	if res.ServedRPS != 0 || res.DroppedRPS != 2500 {
		t.Errorf("served %g dropped %g, want 0/2500", res.ServedRPS, res.DroppedRPS)
	}
	if math.IsNaN(res.MeanLatencyMS) || math.IsInf(res.MeanLatencyMS, 0) {
		t.Errorf("latency %g, want finite zero", res.MeanLatencyMS)
	}
	for i, rps := range res.PerServerRPS {
		if rps != 0 {
			t.Errorf("dead server %d assigned %g rps", i, rps)
		}
	}

	// A live pool never reports overload.
	live, err := lb.Serve([]hypervisor.Env{fullEnv(), fullEnv()}, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if live.Overloaded {
		t.Error("healthy pool flagged Overloaded")
	}
}
