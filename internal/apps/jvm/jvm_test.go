package jvm

import (
	"math"
	"testing"

	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
)

func fullEnv() hypervisor.Env {
	return hypervisor.Env{
		VCPUs: 4, PhysCores: 4, EffectiveCores: 4,
		GuestMemMB: 16384, ResidentMB: 16384, EverTouchedMB: 16384,
		KernelMemMB: 256, LocalityFactor: 1, DiskMBps: 100, NetMBps: 100,
	}
}

func newApp(t *testing.T, aware bool) *App {
	t.Helper()
	a, err := NewApp(AppConfig{MaxHeapMB: 12000, LiveMB: 4000, DeflationAware: aware})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAppValidation(t *testing.T) {
	if _, err := NewApp(AppConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewApp(AppConfig{MaxHeapMB: 1000, LiveMB: 950}); err == nil {
		t.Error("heap below live floor accepted")
	}
}

func TestBaseline(t *testing.T) {
	a := newApp(t, false)
	if got := a.Throughput(fullEnv()); got < 0.999 || got > 1 {
		t.Errorf("baseline throughput = %g, want 1", got)
	}
	rt := a.ResponseTimeUS(fullEnv())
	if rt < 900 || rt > 1000 {
		t.Errorf("baseline RT = %g, want ≈900µs + small GC", rt)
	}
}

func TestFootprintTracksHeap(t *testing.T) {
	a := newApp(t, true)
	rss, cache := a.Footprint()
	if rss != 12500 || cache != 0 {
		t.Errorf("footprint = %g/%g, want 12500/0", rss, cache)
	}
	a.SelfDeflate(restypes.V(0, 7500, 0, 0))
	rss, _ = a.Footprint()
	if rss != 8500 { // heap sized to 8884-884 = 8000, plus 500 overhead
		t.Errorf("footprint after shrink = %g, want 8500", rss)
	}
}

func TestUnmodifiedIgnoresDeflation(t *testing.T) {
	a := newApp(t, false)
	rel, lat := a.SelfDeflate(restypes.V(0, 4000, 0, 0))
	if !rel.IsZero() || lat != 0 || a.HeapMB() != 12000 {
		t.Error("unmodified JVM reacted to deflation")
	}
}

func TestSelfDeflateKeepsHeadroom(t *testing.T) {
	// A 2 GB deflation of the 16 GB VM leaves the 12 GB heap resident.
	a := newApp(t, true)
	rel, _ := a.SelfDeflate(restypes.V(0, 2000, 0, 0))
	if !rel.IsZero() || a.HeapMB() != 12000 {
		t.Errorf("needless shrink: rel=%v heap=%g", rel, a.HeapMB())
	}
}

func TestSelfDeflateShrinksHeapWithGCPause(t *testing.T) {
	a := newApp(t, true)
	rel, lat := a.SelfDeflate(restypes.V(0, 7500, 0, 0))
	if rel.MemoryMB != 4000 || a.HeapMB() != 8000 {
		t.Errorf("relinquished %g, heap %g", rel.MemoryMB, a.HeapMB())
	}
	if lat <= 0 {
		t.Error("GC pause latency = 0")
	}
}

func TestSelfDeflateRespectsLiveFloor(t *testing.T) {
	a := newApp(t, true)
	rel, _ := a.SelfDeflate(restypes.V(0, 1e6, 0, 0))
	if got, want := a.HeapMB(), 4000*1.15; got != want {
		t.Errorf("heap = %g, want floor %g", got, want)
	}
	if rel.MemoryMB != 12000-4600 {
		t.Errorf("relinquished %g", rel.MemoryMB)
	}
	if rel2, _ := a.SelfDeflate(restypes.V(0, 100, 0, 0)); !rel2.IsZero() {
		t.Error("deflated below floor")
	}
}

func TestShrinkingHeapRaisesGCOverhead(t *testing.T) {
	a := newApp(t, true)
	rtBig := a.ResponseTimeUS(fullEnv())
	a.SelfDeflate(restypes.V(0, 10000, 0, 0))
	rtSmall := a.ResponseTimeUS(fullEnv())
	if rtSmall <= rtBig {
		t.Errorf("RT did not rise with smaller heap: %g -> %g", rtBig, rtSmall)
	}
	// But it stays finite and sane (< 2x).
	if rtSmall > 2*rtBig {
		t.Errorf("GC-only penalty too harsh: %g -> %g", rtBig, rtSmall)
	}
}

func TestSwappedHeapIsWorseThanShrunkHeap(t *testing.T) {
	// The §4 tradeoff: higher GC on a small heap beats paging on a big one.
	aware := newApp(t, true)
	unmod := newApp(t, false)

	// VM memory deflated to 8 GB. Aware shrinks its heap to fit.
	aware.SelfDeflate(restypes.V(0, 16384-8192, 0, 0))
	envA := fullEnv()
	envA.GuestMemMB = 8192
	rtAware := aware.ResponseTimeUS(envA)

	// Unmodified keeps a 12.5 GB footprint in 8 GB: swapping.
	envU := fullEnv()
	envU.EverTouchedMB = 12500 + 256
	envU.ResidentMB = 8192
	envU.SwappedMB = envU.EverTouchedMB - 8192
	envU.LocalityFactor = 0.5
	rtUnmod := unmod.ResponseTimeUS(envU)

	if rtAware >= rtUnmod {
		t.Errorf("aware RT %g not better than swapped RT %g", rtAware, rtUnmod)
	}
}

func TestReinflateGrowsHeap(t *testing.T) {
	a := newApp(t, true)
	a.SelfDeflate(restypes.V(0, 9000, 0, 0))
	a.Reinflate(fullEnv())
	if a.HeapMB() != 12000 {
		t.Errorf("heap after reinflate = %g, want 12000 (config max)", a.HeapMB())
	}
	// Reinflate into a smaller VM grows only to what fits.
	b := newApp(t, true)
	b.SelfDeflate(restypes.V(0, 10000, 0, 0))
	env := fullEnv()
	env.GuestMemMB = 8192
	b.Reinflate(env)
	if want := 8192.0 - 256 - 500 - 128; b.HeapMB() != want {
		t.Errorf("heap = %g, want %g", b.HeapMB(), want)
	}
}

func TestCPUDeflationRaisesResponseTime(t *testing.T) {
	a := newApp(t, false)
	base := a.ResponseTimeUS(fullEnv())

	// The fixed inject rate saturates 2.8 of 4 cores; at 2 effective cores
	// the capacity deficit inflates RT by 2.8/2 = 1.4×.
	env := fullEnv()
	env.EffectiveCores = 2
	rt := a.ResponseTimeUS(env)
	if math.Abs(rt-1.4*base) > base*0.01 {
		t.Errorf("RT at half CPU = %g, want ≈1.4x base %g", rt, base)
	}

	// Mild CPU deflation within the headroom is free.
	env.EffectiveCores = 3
	if got := a.ResponseTimeUS(env); math.Abs(got-base) > base*0.01 {
		t.Errorf("RT at 3 cores = %g, want ≈base %g (headroom)", got, base)
	}
}

func TestOOMKilled(t *testing.T) {
	a := newApp(t, false)
	env := fullEnv()
	env.OOMKilled = true
	if !math.IsInf(a.ResponseTimeUS(env), 1) || a.Throughput(env) != 0 {
		t.Error("OOM-killed JVM still serving")
	}
}
