// Package jvm models a JVM-based application (SpecJBB 2015 in fixed-IR
// mode, per Table 2) with the paper's JVM deflation policy (§4): in response
// to memory deflation, trigger garbage collection and reduce the maximum
// heap size so the heap fits in available memory — trading GC overhead for
// the absence of swapping.
//
// The model follows the classical GC cost tradeoff (perfmodel.GCOverhead):
// shrinking the heap raises collection frequency; letting the heap spill to
// swap is far worse because collections scan the whole heap, touching
// swapped pages.
package jvm

import (
	"fmt"
	"math"
	"time"

	"deflation/internal/hypervisor"
	"deflation/internal/perfmodel"
	"deflation/internal/restypes"
)

// AppConfig configures a JVM application instance.
type AppConfig struct {
	// MaxHeapMB is the configured -Xmx (and the committed heap at boot:
	// SpecJBB touches its whole heap).
	MaxHeapMB float64
	// LiveMB is the live data set the collector must retain.
	LiveMB float64
	// OverheadMB is JVM native memory outside the heap (default 500).
	OverheadMB float64
	// Cores is the booted vCPU count (default 4).
	Cores float64
	// CPUNeedFraction is the share of the booted cores the fixed inject
	// rate saturates (default 0.7): below that capacity, response time
	// rises with the capacity deficit.
	CPUNeedFraction float64
	// BaseResponseUS is the request response time at full resources
	// (default 900µs, the Fig. 5d baseline magnitude).
	BaseResponseUS float64
	// DeflationAware enables the §4 heap-resize policy (the paper's ~30
	// lines of JMX against IBM J9's runtime-adjustable max heap).
	DeflationAware bool
	// HeapFloorFactor bounds shrinking: heap ≥ LiveMB × factor (default 1.15).
	HeapFloorFactor float64
	// GCScanMBps is the collector's scan rate, which sets the latency of
	// the shrink operation (default 2000 MB/s).
	GCScanMBps float64
	// SwapPenaltyRatio is the response-time inflation per unit of faulting
	// heap fraction (default 2.5: GC cycles touch swapped heap pages).
	SwapPenaltyRatio float64
	// WrongVictimRate mirrors the memcache model: fraction of cold-pool
	// swap victims that are actually hot pages (default 0.08).
	WrongVictimRate float64
	// VMMemoryMB is the hosting VM's memory (default 16384); the aware
	// policy sizes the heap to availability, integrating deflation targets.
	VMMemoryMB float64
}

func (c AppConfig) withDefaults() AppConfig {
	if c.OverheadMB == 0 {
		c.OverheadMB = 500
	}
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.BaseResponseUS == 0 {
		c.BaseResponseUS = 900
	}
	if c.HeapFloorFactor == 0 {
		c.HeapFloorFactor = 1.15
	}
	if c.CPUNeedFraction == 0 {
		c.CPUNeedFraction = 0.7
	}
	if c.GCScanMBps == 0 {
		c.GCScanMBps = 2000
	}
	if c.SwapPenaltyRatio == 0 {
		c.SwapPenaltyRatio = 2.5
	}
	if c.WrongVictimRate == 0 {
		c.WrongVictimRate = 0.08
	}
	if c.VMMemoryMB == 0 {
		c.VMMemoryMB = 16384
	}
	return c
}

// memHeadroomMB is the guest memory left free by the heap-sizing policy.
const memHeadroomMB = 256 + 128

// App is the JVM workload as a deflatable application (vm.Application).
type App struct {
	cfg     AppConfig
	heapMB  float64 // current max (and committed) heap
	availMB float64 // believed memory availability inside the VM
	baseRT  float64 // response time at full resources, for normalization
}

// NewApp builds a JVM application.
func NewApp(cfg AppConfig) (*App, error) {
	cfg = cfg.withDefaults()
	if cfg.MaxHeapMB <= 0 || cfg.LiveMB <= 0 {
		return nil, fmt.Errorf("jvm: MaxHeapMB and LiveMB must be positive, got %g/%g", cfg.MaxHeapMB, cfg.LiveMB)
	}
	if cfg.LiveMB*cfg.HeapFloorFactor > cfg.MaxHeapMB {
		return nil, fmt.Errorf("jvm: heap %gMB cannot hold live set %gMB with floor factor %g",
			cfg.MaxHeapMB, cfg.LiveMB, cfg.HeapFloorFactor)
	}
	a := &App{cfg: cfg, heapMB: cfg.MaxHeapMB, availMB: cfg.VMMemoryMB}
	a.baseRT = a.rtWithHeap(cfg.MaxHeapMB, 1, 0)
	return a, nil
}

// Name implements vm.Application.
func (a *App) Name() string { return "specjbb" }

// HeapMB returns the current maximum heap size.
func (a *App) HeapMB() float64 { return a.heapMB }

// Footprint implements vm.Application: the committed heap plus native
// overhead, all anonymous memory.
func (a *App) Footprint() (float64, float64) { return a.cfg.OverheadMB + a.heapMB, 0 }

// SelfDeflate implements vm.Application: trigger GC and shrink the max heap
// to fit the post-deflation memory availability ("we set the max heap size
// to the actual physical memory availability to avoid swapping", §4),
// bounded below by the live set with headroom. The latency is a full
// collection scanning the live data.
func (a *App) SelfDeflate(target restypes.Vector) (restypes.Vector, time.Duration) {
	if !a.cfg.DeflationAware || target.MemoryMB <= 0 {
		return restypes.Vector{}, 0
	}
	a.availMB -= target.MemoryMB
	if a.availMB < 0 {
		a.availMB = 0
	}
	newHeap := a.availMB - memHeadroomMB - a.cfg.OverheadMB
	if floor := a.cfg.LiveMB * a.cfg.HeapFloorFactor; newHeap < floor {
		newHeap = floor
	}
	if newHeap > a.cfg.MaxHeapMB {
		newHeap = a.cfg.MaxHeapMB
	}
	if newHeap >= a.heapMB {
		return restypes.Vector{}, 0 // enough headroom already
	}
	freed := a.heapMB - newHeap
	a.heapMB = newHeap
	lat := time.Duration(a.cfg.LiveMB / a.cfg.GCScanMBps * float64(time.Second))
	if freed > target.MemoryMB {
		freed = target.MemoryMB
	}
	return restypes.Vector{MemoryMB: freed}, lat
}

// Reinflate implements vm.Application: grow the heap back into restored
// guest memory, leaving the kernel reserve, native overhead, and headroom.
func (a *App) Reinflate(env hypervisor.Env) {
	if !a.cfg.DeflationAware {
		return
	}
	a.availMB = env.GuestMemMB
	newHeap := math.Min(a.cfg.MaxHeapMB, env.GuestMemMB-memHeadroomMB-a.cfg.OverheadMB)
	if newHeap > a.heapMB {
		a.heapMB = newHeap
	}
}

// hotSwappedFraction estimates what fraction of the heap is swapped out,
// using the same cold-pool/wrong-victim host model as memcache.
func (a *App) hotSwappedFraction(env hypervisor.Env) float64 {
	if env.SwappedMB <= 0 {
		return 0
	}
	rss, _ := a.Footprint()
	coldPool := env.EverTouchedMB - rss - env.KernelMemMB
	if coldPool < 0 {
		coldPool = 0
	}
	hot := env.SwappedMB - coldPool
	if hot < 0 {
		hot = 0
	}
	hot += a.cfg.WrongVictimRate * math.Min(env.SwappedMB, coldPool) * rss / env.EverTouchedMB
	if hot > rss {
		hot = rss
	}
	return hot / rss
}

// rtWithHeap computes the response time for a given heap size, CPU factor,
// and swapped-heap fraction.
func (a *App) rtWithHeap(heapMB, cpuFactor, swapFrac float64) float64 {
	gc := perfmodel.GCOverhead(a.cfg.LiveMB, heapMB)
	if math.IsInf(gc, 1) {
		return math.Inf(1)
	}
	return a.cfg.BaseResponseUS / cpuFactor * (1 + gc) * (1 + swapFrac*a.cfg.SwapPenaltyRatio)
}

// ResponseTimeUS returns the request response time in the given environment
// — the Fig. 5d metric. Returns +Inf once OOM-killed.
func (a *App) ResponseTimeUS(env hypervisor.Env) float64 {
	if env.OOMKilled {
		return math.Inf(1)
	}
	cpu := env.EffectiveCores / (a.cfg.Cores * a.cfg.CPUNeedFraction)
	if cpu > 1 {
		cpu = 1
	}
	if cpu <= 0 {
		return math.Inf(1)
	}
	return a.rtWithHeap(a.heapMB, cpu, a.hotSwappedFraction(env))
}

// Throughput implements vm.Application: the fixed-IR throughput is inversely
// proportional to response time.
func (a *App) Throughput(env hypervisor.Env) float64 {
	rt := a.ResponseTimeUS(env)
	if math.IsInf(rt, 1) || rt <= 0 {
		return 0
	}
	t := a.baseRT / rt
	if t > 1 {
		t = 1
	}
	return t
}
