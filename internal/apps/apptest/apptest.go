// Package apptest provides a configurable fake vm.Application for testing
// the cascade controller, cluster manager, and control plane without pulling
// in the full workload models.
package apptest

import (
	"time"

	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
)

// App is a scriptable fake application.
//
// By default it is inelastic (ignores deflation requests) with a 1 GB
// resident set. Set Elastic to make it relinquish memory down to MinRSSMB.
type App struct {
	AppName string
	RSSMB   float64
	CacheMB float64

	// Elastic controls whether SelfDeflate relinquishes memory.
	Elastic bool
	// MinRSSMB is the floor the fake will not shrink below (default 0).
	MinRSSMB float64
	// DeflateLatency is returned from SelfDeflate when anything was freed.
	DeflateLatency time.Duration

	// ThroughputFn overrides the default throughput model if non-nil.
	ThroughputFn func(env hypervisor.Env) float64

	// Calls records the SelfDeflate targets received, and Reinflations the
	// number of Reinflate calls, for assertions.
	Calls        []restypes.Vector
	Reinflations int
}

// New returns an inelastic fake with a 1 GB resident set.
func New(name string) *App { return &App{AppName: name, RSSMB: 1024} }

// NewElastic returns an elastic fake that can shrink from rssMB to minMB.
func NewElastic(name string, rssMB, minMB float64) *App {
	return &App{AppName: name, RSSMB: rssMB, MinRSSMB: minMB, Elastic: true}
}

// Name implements vm.Application.
func (a *App) Name() string { return a.AppName }

// Footprint implements vm.Application.
func (a *App) Footprint() (float64, float64) { return a.RSSMB, a.CacheMB }

// SelfDeflate implements vm.Application. Elastic fakes free memory toward
// the target; inelastic fakes ignore the request (the paper's policy for
// applications without reclamation mechanisms).
func (a *App) SelfDeflate(target restypes.Vector) (restypes.Vector, time.Duration) {
	a.Calls = append(a.Calls, target)
	if !a.Elastic || target.MemoryMB <= 0 {
		return restypes.Vector{}, 0
	}
	freeable := a.RSSMB - a.MinRSSMB
	freed := target.MemoryMB
	if freed > freeable {
		freed = freeable
	}
	if freed <= 0 {
		return restypes.Vector{}, 0
	}
	a.RSSMB -= freed
	return restypes.Vector{MemoryMB: freed}, a.DeflateLatency
}

// Reinflate implements vm.Application.
func (a *App) Reinflate(hypervisor.Env) { a.Reinflations++ }

// Throughput implements vm.Application. The default model is the minimum of
// the CPU fraction and the swap-adjusted memory fraction.
func (a *App) Throughput(env hypervisor.Env) float64 {
	if env.OOMKilled {
		return 0
	}
	if a.ThroughputFn != nil {
		return a.ThroughputFn(env)
	}
	cpu := env.EffectiveCores / 4
	if cpu > 1 {
		cpu = 1
	}
	mem := 1.0
	if touched := env.ResidentMB + env.SwappedMB; touched > 0 {
		mem = env.ResidentMB / touched
	}
	if cpu < mem {
		return cpu
	}
	return mem
}
