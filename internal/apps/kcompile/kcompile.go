// Package kcompile models the Linux-kernel-compile workload (Table 2): a
// CPU-bound parallel batch job with a file-backed working set (source tree
// and object files in the page cache).
//
// Kernel compile is the paper's exemplar of a deflation-friendly inelastic
// application: it has no deflation mechanisms of its own (SelfDeflate is a
// no-op), yet tolerates deep CPU deflation because its parallel efficiency
// is far from perfect — the paper measures only a 30% slowdown at 75% CPU
// deflation with OS-level unplug (Fig. 5b). The CPU scaling is therefore
// taken from the calibrated Figure-1 utility curve; the hypervisor-vs-OS gap
// emerges from the lock-holder-preemption penalty already applied to
// Env.EffectiveCores.
package kcompile

import (
	"math"
	"time"

	"deflation/internal/hypervisor"
	"deflation/internal/perfmodel"
	"deflation/internal/restypes"
)

// AppConfig configures a kernel-compile instance.
type AppConfig struct {
	// Cores is the booted vCPU count (default 4).
	Cores float64
	// RSSMB is the compiler processes' resident set (default 1500).
	RSSMB float64
	// PageCacheMB is the source/object file cache (default 2500).
	PageCacheMB float64
	// NeedDiskMBps is the disk bandwidth at which the job stops being
	// disk-bound (default 40 MB/s).
	NeedDiskMBps float64
	// SwapPenaltyRatio inflates compile time per unit of swapped RSS
	// fraction (default 4).
	SwapPenaltyRatio float64
}

func (c AppConfig) withDefaults() AppConfig {
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.RSSMB == 0 {
		c.RSSMB = 1500
	}
	if c.PageCacheMB == 0 {
		c.PageCacheMB = 2500
	}
	if c.NeedDiskMBps == 0 {
		c.NeedDiskMBps = 40
	}
	if c.SwapPenaltyRatio == 0 {
		c.SwapPenaltyRatio = 4
	}
	return c
}

// App is the kernel-compile workload as a deflatable application.
type App struct {
	cfg AppConfig
}

// NewApp builds a kernel-compile application.
func NewApp(cfg AppConfig) *App { return &App{cfg: cfg.withDefaults()} }

// Name implements vm.Application.
func (a *App) Name() string { return "kcompile" }

// Footprint implements vm.Application.
func (a *App) Footprint() (float64, float64) { return a.cfg.RSSMB, a.cfg.PageCacheMB }

// SelfDeflate implements vm.Application: kernel compile is inelastic; the
// application-level policy is to ignore the request and let the OS and
// hypervisor deflate (§3.2.1).
func (a *App) SelfDeflate(restypes.Vector) (restypes.Vector, time.Duration) {
	return restypes.Vector{}, 0
}

// Reinflate implements vm.Application (no-op: nothing was relinquished).
func (a *App) Reinflate(hypervisor.Env) {}

// Throughput implements vm.Application: compile throughput is the product
// of CPU scaling (calibrated curve over effective cores), a disk-bandwidth
// bound, and a swap penalty on the compilers' resident set.
func (a *App) Throughput(env hypervisor.Env) float64 {
	if env.OOMKilled {
		return 0
	}
	cpu := perfmodel.CurveKcompile.At(env.EffectiveCores / a.cfg.Cores)

	disk := 1.0
	if env.DiskMBps > 0 && env.DiskMBps < a.cfg.NeedDiskMBps {
		disk = env.DiskMBps / a.cfg.NeedDiskMBps
	}

	swap := 1.0
	if env.SwappedMB > 0 {
		// Page cache and the cold pool absorb swap first; only RSS faults hurt.
		coldPool := env.EverTouchedMB - a.cfg.RSSMB - env.KernelMemMB
		if coldPool < 0 {
			coldPool = 0
		}
		hot := math.Max(0, env.SwappedMB-coldPool)
		if hot > a.cfg.RSSMB {
			hot = a.cfg.RSSMB
		}
		swap = 1 / (1 + hot/a.cfg.RSSMB*a.cfg.SwapPenaltyRatio)
	}

	return cpu * disk * swap
}
