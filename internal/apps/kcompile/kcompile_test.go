package kcompile

import (
	"testing"

	"deflation/internal/hypervisor"
	"deflation/internal/perfmodel"
	"deflation/internal/restypes"
)

func fullEnv() hypervisor.Env {
	return hypervisor.Env{
		VCPUs: 4, PhysCores: 4, EffectiveCores: 4,
		GuestMemMB: 16384, ResidentMB: 16384, EverTouchedMB: 16384,
		KernelMemMB: 256, LocalityFactor: 1, DiskMBps: 100, NetMBps: 100,
	}
}

func TestBaseline(t *testing.T) {
	a := NewApp(AppConfig{})
	if got := a.Throughput(fullEnv()); got != 1 {
		t.Errorf("baseline throughput = %g, want 1", got)
	}
}

func TestInelastic(t *testing.T) {
	a := NewApp(AppConfig{})
	rel, lat := a.SelfDeflate(restypes.V(2, 4000, 50, 50))
	if !rel.IsZero() || lat != 0 {
		t.Error("kcompile relinquished resources")
	}
	a.Reinflate(fullEnv()) // must not panic
}

func TestFootprint(t *testing.T) {
	a := NewApp(AppConfig{})
	rss, cache := a.Footprint()
	if rss != 1500 || cache != 2500 {
		t.Errorf("footprint = %g/%g", rss, cache)
	}
}

func TestCPUDeflationMatchesPaperShape(t *testing.T) {
	// Fig. 5b: OS-level deflation to 1 of 4 cores loses only ≈30%.
	a := NewApp(AppConfig{})
	env := fullEnv()
	env.VCPUs = 1
	env.PhysCores = 1
	env.EffectiveCores = 1
	osLevel := a.Throughput(env)
	if osLevel < 0.65 || osLevel > 0.75 {
		t.Errorf("OS-level 75%% CPU deflation throughput = %g, want ≈0.70", osLevel)
	}

	// Hypervisor-level: 4 vCPUs multiplexed on 1 core — LHP penalty.
	env2 := fullEnv()
	env2.PhysCores = 1
	env2.EffectiveCores = 1 * perfmodel.LockHolderPenalty(4)
	hypLevel := a.Throughput(env2)
	if hypLevel >= osLevel {
		t.Errorf("hypervisor-level %g not worse than OS-level %g", hypLevel, osLevel)
	}
	// Paper: up to 22% worse.
	gap := (osLevel - hypLevel) / osLevel
	if gap < 0.05 || gap > 0.30 {
		t.Errorf("hypervisor-vs-OS gap = %.0f%%, want roughly 10-25%%", gap*100)
	}
}

func TestDiskThrottleBindsWhenDeep(t *testing.T) {
	a := NewApp(AppConfig{})
	env := fullEnv()
	env.DiskMBps = 10 // below the 40 MB/s need
	got := a.Throughput(env)
	if got != 0.25 {
		t.Errorf("disk-bound throughput = %g, want 0.25", got)
	}
}

func TestSwapPenaltyOnlyForHotPages(t *testing.T) {
	a := NewApp(AppConfig{})

	// Swap within the cold pool: harmless.
	env := fullEnv()
	env.SwappedMB = 8000 // cold pool = 16384-1500-256 = 14628
	env.ResidentMB = env.EverTouchedMB - env.SwappedMB
	if got := a.Throughput(env); got != 1 {
		t.Errorf("cold-pool swap throughput = %g, want 1", got)
	}

	// Swap that digs into RSS hurts.
	env.SwappedMB = 15300 // 672 MB into RSS
	env.ResidentMB = env.EverTouchedMB - env.SwappedMB
	got := a.Throughput(env)
	if got >= 1 || got < 0.2 {
		t.Errorf("hot swap throughput = %g, want penalized but alive", got)
	}
}

func TestOOM(t *testing.T) {
	a := NewApp(AppConfig{})
	env := fullEnv()
	env.OOMKilled = true
	if a.Throughput(env) != 0 {
		t.Error("OOM-killed compile still running")
	}
}
