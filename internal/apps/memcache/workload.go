package memcache

import (
	"fmt"
	"math/rand"
)

// Workload is a YCSB-style closed-loop load generator with Zipf-skewed key
// popularity, standing in for the paper's YCSB / memtier_benchmark drivers
// (Table 2). It is deterministic for a given seed.
type Workload struct {
	// Keys is the number of distinct keys in the key space.
	Keys int
	// ValueBytes is the value size for every item.
	ValueBytes int
	// ZipfS is the Zipf exponent (>1); larger = more skew. YCSB's default
	// "zipfian" distribution corresponds to s ≈ 1.1.
	ZipfS float64
	// SetFraction is the fraction of operations that are SETs (rest GETs).
	SetFraction float64

	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewWorkload builds a generator over keys distinct keys with the given
// value size and skew, seeded deterministically.
func NewWorkload(keys, valueBytes int, zipfS float64, seed int64) (*Workload, error) {
	if keys <= 0 || valueBytes <= 0 {
		return nil, fmt.Errorf("memcache: workload needs positive keys and value size, got %d/%d", keys, valueBytes)
	}
	if zipfS <= 1 {
		return nil, fmt.Errorf("memcache: zipf exponent must be > 1, got %g", zipfS)
	}
	rng := rand.New(rand.NewSource(seed))
	w := &Workload{Keys: keys, ValueBytes: valueBytes, ZipfS: zipfS, SetFraction: 0.05, rng: rng}
	w.zipf = rand.NewZipf(rng, zipfS, 1, uint64(keys-1))
	return w, nil
}

// Key returns the i-th key's string form.
func (w *Workload) Key(i uint64) string { return fmt.Sprintf("key-%08d", i) }

// NextKey draws a key index from the Zipf popularity distribution.
func (w *Workload) NextKey() uint64 { return w.zipf.Uint64() }

// value synthesizes a deterministic payload for a key.
func (w *Workload) value(i uint64) []byte {
	v := make([]byte, w.ValueBytes)
	b := byte(i)
	for j := range v {
		v[j] = b + byte(j)
	}
	return v
}

// Warm populates the store with every key, most popular keys inserted last
// so they start at the MRU end (a warmed cache).
func (w *Workload) Warm(s *Store) error {
	for i := w.Keys - 1; i >= 0; i-- {
		if err := s.Set(w.Key(uint64(i)), w.value(uint64(i))); err != nil {
			return err
		}
	}
	return nil
}

// RunResult summarizes a generator run.
type RunResult struct {
	Ops, Gets, Hits, Sets int
}

// HitRate returns the GET hit rate over the run.
func (r RunResult) HitRate() float64 {
	if r.Gets == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Gets)
}

// Run performs ops operations against the store: Zipf-popular GETs with a
// SetFraction mix of SETs. Missed GETs are followed by a SET of that key
// (read-through fill), as a YCSB-style client would do.
func (w *Workload) Run(s *Store, ops int) (RunResult, error) {
	var res RunResult
	for i := 0; i < ops; i++ {
		res.Ops++
		k := w.NextKey()
		if w.rng.Float64() < w.SetFraction {
			if err := s.Set(w.Key(k), w.value(k)); err != nil {
				return res, err
			}
			res.Sets++
			continue
		}
		res.Gets++
		if _, ok := s.Get(w.Key(k)); ok {
			res.Hits++
		} else if err := s.Set(w.Key(k), w.value(k)); err != nil { // read-through fill
			return res, err
		}
	}
	return res, nil
}

// MeasureHitRate runs a GET-only sample against the store without
// read-through fills, returning the observed hit rate. Used by the
// throughput model to measure the real cache's behaviour at its current
// size.
func (w *Workload) MeasureHitRate(s *Store, samples int) float64 {
	hits := 0
	for i := 0; i < samples; i++ {
		if _, ok := s.Get(w.Key(w.NextKey())); ok {
			hits++
		}
	}
	if samples == 0 {
		return 0
	}
	return float64(hits) / float64(samples)
}
