package memcache

import (
	"fmt"
	"math"
	"time"

	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
)

// AppConfig configures a memcached application instance.
//
// The store it manages is real (real LRU, real zipf-driven hit rates); only
// the byte magnitudes are scaled down by Scale so that a simulated 14 GB
// cache does not require 14 GB of test memory.
type AppConfig struct {
	// CacheMB is the configured maximum cache size (simulated MB).
	CacheMB float64
	// DatasetMB is the total size of the backing dataset (simulated MB);
	// keys beyond the cache capacity miss.
	DatasetMB float64
	// OverheadMB is the non-cache process footprint (default 300).
	OverheadMB float64
	// Cores is the booted vCPU count used for CPU-scaling (default 4).
	Cores float64
	// CPUNeedFraction is the share of the booted cores the peak load
	// actually saturates (default 0.55): memcached on 4 cores has CPU
	// headroom, so moderate CPU deflation is free (Fig. 1's plateau).
	CPUNeedFraction float64
	// BaseKGETS is the peak GET throughput in kGETs/s at full resources
	// (default 150, matching the paper's ≈150 kGETS/s ceiling in Fig. 5c).
	BaseKGETS float64
	// DeflationAware enables the §4 application-level deflation policy:
	// shrink the cache via LRU eviction instead of letting the VM swap.
	DeflationAware bool
	// MinCacheMB is the smallest cache the policy will shrink to (default 64).
	MinCacheMB float64
	// Theta is the workload's Zipf locality used in the analytic fault
	// model (default 0.8).
	Theta float64
	// SwapIOPS is the swap device's random-read capacity that bounds
	// fault-serving throughput (default 8000, an SSD).
	SwapIOPS float64
	// SwapLatencyRatio is the per-fault service-time inflation relative to
	// an in-memory GET (default 7: ≈700µs fault vs ≈100µs GET).
	SwapLatencyRatio float64
	// WrongVictimRate is the fraction of host-LRU swap victims that are
	// actually hot application pages when the host evicts from the cold
	// pool — the black-box "wrong pages" effect of §3.1 (default 0.08).
	WrongVictimRate float64
	// VMMemoryMB is the memory of the VM hosting the store (default
	// 16384). The deflation-aware policy sizes the cache to the memory
	// availability inside the VM (§4), integrating deflation targets
	// against this figure.
	VMMemoryMB float64
	// Scale divides simulated bytes to size the real backing store
	// (default 256: a 14 GB simulated cache uses ~56 MB).
	Scale float64
	// Seed seeds the workload generator (default 1).
	Seed int64
}

func (c AppConfig) withDefaults() AppConfig {
	if c.OverheadMB == 0 {
		c.OverheadMB = 300
	}
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.BaseKGETS == 0 {
		c.BaseKGETS = 150
	}
	if c.CPUNeedFraction == 0 {
		c.CPUNeedFraction = 0.55
	}
	if c.MinCacheMB == 0 {
		c.MinCacheMB = 64
	}
	if c.Theta == 0 {
		c.Theta = 0.8
	}
	if c.SwapIOPS == 0 {
		c.SwapIOPS = 8000
	}
	if c.SwapLatencyRatio == 0 {
		c.SwapLatencyRatio = 7
	}
	if c.WrongVictimRate == 0 {
		c.WrongVictimRate = 0.08
	}
	if c.Scale == 0 {
		c.Scale = 256
	}
	if c.VMMemoryMB == 0 {
		c.VMMemoryMB = 16384
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// realValueBytes is the payload size of items in the scaled-down real store.
const realValueBytes = 1024

// App is the memcached workload as a deflatable application (vm.Application).
// The deflation-aware variant implements the paper's policy: application-
// level deflation for memory (cache resize + LRU eviction), VM-level
// deflation for everything else.
type App struct {
	cfg     AppConfig
	store   *Store
	wl      *Workload
	cacheMB float64 // current simulated max cache size
	availMB float64 // believed memory availability inside the VM

	hitRate      float64 // measured on the real store; refreshed when dirty
	hitRateDirty bool

	baselineKGETS float64 // kGETS at full resources, for normalization
}

// NewApp builds a memcached instance with a warmed, real backing store.
func NewApp(cfg AppConfig) (*App, error) {
	cfg = cfg.withDefaults()
	if cfg.CacheMB <= 0 || cfg.DatasetMB <= 0 {
		return nil, fmt.Errorf("memcache: CacheMB and DatasetMB must be positive, got %g/%g", cfg.CacheMB, cfg.DatasetMB)
	}
	if cfg.DatasetMB < cfg.CacheMB {
		cfg.DatasetMB = cfg.CacheMB
	}

	bytesPerKey := float64(realValueBytes + perItemOverhead + 12) // value + overhead + key
	keys := int(cfg.DatasetMB * 1e6 / cfg.Scale / bytesPerKey)
	if keys < 16 {
		return nil, fmt.Errorf("memcache: dataset too small for scale %g (only %d real keys)", cfg.Scale, keys)
	}
	wl, err := NewWorkload(keys, realValueBytes, 1.1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	store, err := NewStore(int64(cfg.CacheMB * 1e6 / cfg.Scale))
	if err != nil {
		return nil, err
	}
	if err := wl.Warm(store); err != nil {
		return nil, err
	}
	a := &App{cfg: cfg, store: store, wl: wl, cacheMB: cfg.CacheMB, availMB: cfg.VMMemoryMB, hitRateDirty: true}
	a.baselineKGETS = cfg.BaseKGETS * a.HitRate()
	return a, nil
}

// memHeadroomMB is the guest memory the sizing policy leaves free: the
// kernel reserve plus a small buffer.
const memHeadroomMB = 256 + 128

// Name implements vm.Application.
func (a *App) Name() string { return "memcached" }

// Store exposes the real backing store (for the live control-plane example
// and integration tests).
func (a *App) Store() *Store { return a.store }

// Workload exposes the load generator.
func (a *App) Workload() *Workload { return a.wl }

// CacheMB returns the current simulated cache capacity.
func (a *App) CacheMB() float64 { return a.cacheMB }

// usedMB converts real store bytes back to simulated MB.
func (a *App) usedMB() float64 { return float64(a.store.UsedBytes()) * a.cfg.Scale / 1e6 }

// Footprint implements vm.Application: memcached is anonymous memory, no
// page cache.
func (a *App) Footprint() (float64, float64) { return a.cfg.OverheadMB + a.usedMB(), 0 }

// HitRate measures the GET hit rate of the real store at its current size.
// The measurement is cached until the cache is resized.
func (a *App) HitRate() float64 {
	if a.hitRateDirty {
		a.hitRate = a.wl.MeasureHitRate(a.store, 4000)
		a.hitRateDirty = false
	}
	return a.hitRate
}

// SelfDeflate implements vm.Application. The deflation-aware policy
// "dynamically adjusts the maximum cache size based on the memory
// availability inside the VM" (§4): it integrates the deflation target into
// its availability estimate and shrinks the cache (LRU eviction) only as
// far as needed to keep the footprint resident. The unmodified application
// ignores the request.
func (a *App) SelfDeflate(target restypes.Vector) (restypes.Vector, time.Duration) {
	if !a.cfg.DeflationAware || target.MemoryMB <= 0 {
		return restypes.Vector{}, 0
	}
	a.availMB -= target.MemoryMB
	if a.availMB < 0 {
		a.availMB = 0
	}
	newCache := a.availMB - memHeadroomMB - a.cfg.OverheadMB
	if newCache < a.cfg.MinCacheMB {
		newCache = a.cfg.MinCacheMB
	}
	if newCache > a.cfg.CacheMB {
		newCache = a.cfg.CacheMB
	}
	if newCache >= a.cacheMB {
		return restypes.Vector{}, 0 // enough headroom: nothing to give up
	}
	freedCapacity := a.cacheMB - newCache
	before := a.usedMB()
	if err := a.store.Resize(int64(newCache * 1e6 / a.cfg.Scale)); err != nil {
		return restypes.Vector{}, 0
	}
	a.cacheMB = newCache
	a.hitRateDirty = true
	freed := before - a.usedMB()
	if freed < 0 {
		freed = 0
	}
	// Eviction walks the LRU list and frees items: fast, memory-bandwidth
	// bound (~2 GB/s of simulated data).
	lat := time.Duration(freed / 2048 * float64(time.Second))
	// Report the capacity given up (bounded by the request).
	if freedCapacity > target.MemoryMB {
		freedCapacity = target.MemoryMB
	}
	return restypes.Vector{MemoryMB: freedCapacity}, lat
}

// Reinflate implements vm.Application: grow the cache back into the restored
// guest memory, leaving the kernel reserve, process overhead, and a small
// headroom free. The cache refills through read-through misses, which the
// real store will serve over subsequent runs.
func (a *App) Reinflate(env hypervisor.Env) {
	if !a.cfg.DeflationAware {
		return
	}
	a.availMB = env.GuestMemMB
	newCache := math.Min(a.cfg.CacheMB, env.GuestMemMB-memHeadroomMB-a.cfg.OverheadMB)
	if newCache <= a.cacheMB {
		return
	}
	if err := a.store.Resize(int64(newCache * 1e6 / a.cfg.Scale)); err != nil {
		return
	}
	a.cacheMB = newCache
	// Model the eventual refill: clients re-fetch and read-through-fill the
	// popular keys.
	if err := a.wl.Warm(a.store); err == nil {
		a.hitRateDirty = true
	}
}

// KGETS returns the successful-GET throughput (cache hits, in thousands per
// second) in the given environment — the Fig. 5c metric.
func (a *App) KGETS(env hypervisor.Env) float64 {
	if env.OOMKilled {
		return 0
	}
	cpu := env.EffectiveCores / (a.cfg.Cores * a.cfg.CPUNeedFraction)
	if cpu > 1 {
		cpu = 1
	}
	rate := a.cfg.BaseKGETS * cpu

	// Swap faults: how much of the application's own resident set did host
	// swapping take? The host evicts its coldest pages first — the "cold
	// pool" of ever-touched-but-now-free guest memory — but a fraction of
	// victims are wrongly-chosen hot pages (black-box reclamation, §3.1).
	rss, _ := a.Footprint()
	faultRate := 0.0
	if env.SwappedMB > 0 && rss > 0 {
		coldPool := env.EverTouchedMB - rss - env.KernelMemMB
		if coldPool < 0 {
			coldPool = 0
		}
		hotSwapped := env.SwappedMB - coldPool
		if hotSwapped < 0 {
			hotSwapped = 0
		}
		hotSwapped += a.cfg.WrongVictimRate * math.Min(env.SwappedMB, coldPool) * rss / env.EverTouchedMB
		if hotSwapped > rss {
			hotSwapped = rss
		}
		frac := (rss - hotSwapped) / rss
		effTheta := a.cfg.Theta * env.LocalityFactor
		faultRate = 1 - math.Pow(frac, 1-effTheta)
	}

	if faultRate > 0 {
		// Latency path: each faulting GET is SwapLatencyRatio times slower.
		rate = rate / (1 + faultRate*a.cfg.SwapLatencyRatio)
		// Device path: the swap device can serve only SwapIOPS faults/s.
		if iopsBound := a.cfg.SwapIOPS / faultRate / 1000; iopsBound < rate {
			rate = iopsBound
		}
	}

	// Network can cap throughput: each GET returns ~1 KB of payload, so
	// 1 MB/s of network carries ~1 kGETS.
	if env.NetMBps > 0 && env.NetMBps < rate {
		rate = env.NetMBps
	}

	return rate * a.HitRate()
}

// Throughput implements vm.Application: KGETS normalized to the
// full-resource baseline.
func (a *App) Throughput(env hypervisor.Env) float64 {
	if a.baselineKGETS == 0 {
		return 0
	}
	t := a.KGETS(env) / a.baselineKGETS
	if t > 1 {
		t = 1
	}
	return t
}
