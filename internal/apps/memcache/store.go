// Package memcache implements an in-memory LRU key-value store modeled on
// memcached, together with the application-level deflation policy of §4:
// when memory is deflated, the store shrinks its maximum cache size and
// evicts least-recently-used objects, trading hit rate for the absence of
// swapping.
package memcache

import (
	"container/list"
	"fmt"
	"sync"
	"time"
)

// perItemOverhead approximates memcached's per-item metadata cost (item
// header, hash chain pointer, LRU pointers, key copy).
const perItemOverhead = 64

// Stats is a snapshot of store counters.
type Stats struct {
	Gets, Hits, Misses uint64
	Sets               uint64
	Evictions          uint64
	Items              int
	UsedBytes          int64
	MaxBytes           int64
}

// HitRate returns Hits/Gets, or 0 before any GET.
func (s Stats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// Store is an LRU key-value cache with a dynamically resizable capacity —
// the resize is the deflation mechanism ("LRU object eviction to reduce
// memory footprint", Table 1). Store is safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	maxBytes int64
	used     int64
	items    map[string]*list.Element
	lru      *list.List // front = most recently used

	gets, hits, sets, evictions uint64

	// now returns the current time; replaceable for deterministic expiry
	// tests.
	now func() time.Time
}

type entry struct {
	key       string
	val       []byte
	expiresAt time.Time // zero = never
}

func (e *entry) expired(now time.Time) bool {
	return !e.expiresAt.IsZero() && !now.Before(e.expiresAt)
}

// NewStore creates a store capped at maxBytes of item data plus overhead.
func NewStore(maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		return nil, fmt.Errorf("memcache: max bytes must be positive, got %d", maxBytes)
	}
	return &Store{
		maxBytes: maxBytes,
		items:    make(map[string]*list.Element),
		lru:      list.New(),
		now:      time.Now,
	}, nil
}

func itemSize(key string, val []byte) int64 {
	return int64(len(key) + len(val) + perItemOverhead)
}

// Get returns the value for key and whether it was present (and not
// expired), promoting the item to most-recently-used. Expired items are
// lazily evicted on access, as memcached does.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*entry)
	if e.expired(s.now()) {
		s.removeElement(el)
		return nil, false
	}
	s.hits++
	s.lru.MoveToFront(el)
	return e.val, true
}

// Set stores key=val with no expiry.
func (s *Store) Set(key string, val []byte) error {
	return s.SetWithTTL(key, val, 0)
}

// SetWithTTL stores key=val, expiring after ttl (0 = never), evicting LRU
// items as needed. Items larger than the cache capacity are rejected with
// an error.
func (s *Store) SetWithTTL(key string, val []byte, ttl time.Duration) error {
	sz := itemSize(key, val)
	s.mu.Lock()
	defer s.mu.Unlock()
	if sz > s.maxBytes {
		return fmt.Errorf("memcache: item %q (%d bytes) exceeds cache capacity %d", key, sz, s.maxBytes)
	}
	var expiresAt time.Time
	if ttl > 0 {
		expiresAt = s.now().Add(ttl)
	}
	s.sets++
	if el, ok := s.items[key]; ok {
		e := el.Value.(*entry)
		s.used += int64(len(val)) - int64(len(e.val))
		e.val = val
		e.expiresAt = expiresAt
		s.lru.MoveToFront(el)
	} else {
		s.used += sz
		s.items[key] = s.lru.PushFront(&entry{key: key, val: val, expiresAt: expiresAt})
	}
	s.evictToFit()
	return nil
}

// Delete removes key, reporting whether it was present.
func (s *Store) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return false
	}
	s.removeElement(el)
	return true
}

// Resize changes the capacity, evicting LRU items if shrinking. This is the
// §4 deflation mechanism: invoked by the deflation agent when the VM's
// memory is reclaimed, and again (growing) on reinflation.
func (s *Store) Resize(maxBytes int64) error {
	if maxBytes <= 0 {
		return fmt.Errorf("memcache: max bytes must be positive, got %d", maxBytes)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxBytes = maxBytes
	s.evictToFit()
	return nil
}

func (s *Store) evictToFit() {
	for s.used > s.maxBytes {
		back := s.lru.Back()
		if back == nil {
			return
		}
		s.removeElement(back)
		s.evictions++
	}
}

func (s *Store) removeElement(el *list.Element) {
	e := el.Value.(*entry)
	s.lru.Remove(el)
	delete(s.items, e.key)
	s.used -= itemSize(e.key, e.val)
}

// UsedBytes returns the bytes currently consumed by items and overhead.
func (s *Store) UsedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// MaxBytes returns the current capacity.
func (s *Store) MaxBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxBytes
}

// Len returns the number of items.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Gets: s.gets, Hits: s.hits, Misses: s.gets - s.hits,
		Sets: s.sets, Evictions: s.evictions,
		Items: len(s.items), UsedBytes: s.used, MaxBytes: s.maxBytes,
	}
}

// ResetStats zeroes the counters (capacity and contents are unchanged).
func (s *Store) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets, s.hits, s.sets, s.evictions = 0, 0, 0, 0
}
