package memcache

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func mustStore(t *testing.T, maxBytes int64) *Store {
	t.Helper()
	s, err := NewStore(maxBytes)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	return s
}

func TestNewStoreValidation(t *testing.T) {
	if _, err := NewStore(0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewStore(-5); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestGetSetRoundTrip(t *testing.T) {
	s := mustStore(t, 1<<20)
	if _, ok := s.Get("k"); ok {
		t.Error("Get on empty store hit")
	}
	if err := s.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get("k")
	if !ok || string(v) != "v" {
		t.Errorf("Get = %q/%v, want v/true", v, ok)
	}
	st := s.Stats()
	if st.Gets != 2 || st.Hits != 1 || st.Misses != 1 || st.Sets != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate = %g, want 0.5", st.HitRate())
	}
}

func TestSetOverwriteAdjustsUsage(t *testing.T) {
	s := mustStore(t, 1<<20)
	if err := s.Set("k", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	u1 := s.UsedBytes()
	if err := s.Set("k", make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	if got := s.UsedBytes(); got != u1-50 {
		t.Errorf("used after shrinking overwrite = %d, want %d", got, u1-50)
	}
	if s.Len() != 1 {
		t.Errorf("len = %d, want 1", s.Len())
	}
}

func TestOversizedItemRejected(t *testing.T) {
	s := mustStore(t, 128)
	if err := s.Set("k", make([]byte, 1000)); err == nil {
		t.Error("oversized item accepted")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// Room for roughly 3 items of 100B + overhead.
	s := mustStore(t, 3*(100+64+2))
	for i := 0; i < 3; i++ {
		if err := s.Set(fmt.Sprintf("k%d", i), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k0 so k1 becomes LRU.
	s.Get("k0")
	if err := s.Set("k3", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k1"); ok {
		t.Error("LRU item k1 survived eviction")
	}
	if _, ok := s.Get("k0"); !ok {
		t.Error("recently-used k0 was evicted")
	}
	if s.Stats().Evictions == 0 {
		t.Error("no evictions recorded")
	}
}

func TestDelete(t *testing.T) {
	s := mustStore(t, 1<<20)
	s.Set("k", []byte("v"))
	if !s.Delete("k") {
		t.Error("Delete existing = false")
	}
	if s.Delete("k") {
		t.Error("Delete missing = true")
	}
	if s.UsedBytes() != 0 || s.Len() != 0 {
		t.Errorf("store not empty after delete: used=%d len=%d", s.UsedBytes(), s.Len())
	}
}

func TestResizeEvicts(t *testing.T) {
	s := mustStore(t, 1<<20)
	for i := 0; i < 100; i++ {
		if err := s.Set(fmt.Sprintf("k%03d", i), make([]byte, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	half := s.UsedBytes() / 2
	if err := s.Resize(half); err != nil {
		t.Fatal(err)
	}
	if s.UsedBytes() > half {
		t.Errorf("used %d exceeds new capacity %d", s.UsedBytes(), half)
	}
	if s.Len() >= 100 || s.Len() == 0 {
		t.Errorf("len after resize = %d", s.Len())
	}
	// Growing evicts nothing.
	n := s.Len()
	if err := s.Resize(1 << 20); err != nil {
		t.Fatal(err)
	}
	if s.Len() != n {
		t.Error("grow resize evicted items")
	}
	if err := s.Resize(0); err == nil {
		t.Error("Resize(0) accepted")
	}
}

func TestResetStats(t *testing.T) {
	s := mustStore(t, 1<<20)
	s.Set("k", []byte("v"))
	s.Get("k")
	s.ResetStats()
	st := s.Stats()
	if st.Gets != 0 || st.Sets != 0 || st.Hits != 0 {
		t.Errorf("stats after reset = %+v", st)
	}
	if st.Items != 1 {
		t.Error("reset cleared contents")
	}
}

func TestStatsHitRateEmpty(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Error("hit rate with no gets != 0")
	}
}

// Property: usage never exceeds capacity, whatever the op sequence.
func TestQuickUsageWithinCapacity(t *testing.T) {
	f := func(ops []uint16) bool {
		s, err := NewStore(8192)
		if err != nil {
			return false
		}
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op%64)
			switch op % 3 {
			case 0:
				s.Set(key, make([]byte, int(op%512)))
			case 1:
				s.Get(key)
			case 2:
				s.Delete(key)
			}
			if s.UsedBytes() > s.MaxBytes() || s.UsedBytes() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: stats counters are consistent: hits ≤ gets, items = Len.
func TestQuickStatsConsistent(t *testing.T) {
	f := func(ops []uint16) bool {
		s, err := NewStore(4096)
		if err != nil {
			return false
		}
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op%32)
			if op%2 == 0 {
				s.Set(key, make([]byte, 64))
			} else {
				s.Get(key)
			}
		}
		st := s.Stats()
		return st.Hits <= st.Gets && st.Items == s.Len() && st.Hits+st.Misses == st.Gets
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTTLExpiry(t *testing.T) {
	s := mustStore(t, 1<<20)
	// Deterministic clock.
	now := time.Unix(1000, 0)
	s.now = func() time.Time { return now }

	if err := s.SetWithTTL("ephemeral", []byte("v"), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("forever", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("ephemeral"); !ok {
		t.Error("fresh TTL item missing")
	}

	now = now.Add(11 * time.Second)
	if _, ok := s.Get("ephemeral"); ok {
		t.Error("expired item served")
	}
	if _, ok := s.Get("forever"); !ok {
		t.Error("non-expiring item lost")
	}
	// Lazy eviction removed the expired item's bytes.
	if s.Len() != 1 {
		t.Errorf("len = %d, want 1", s.Len())
	}

	// Overwriting resets the expiry.
	if err := s.SetWithTTL("ephemeral", []byte("v2"), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	now = now.Add(5 * time.Second)
	if v, ok := s.Get("ephemeral"); !ok || string(v) != "v2" {
		t.Errorf("refreshed item = %q/%v", v, ok)
	}
}
