package memcache

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
)

func startServer(t *testing.T, maxBytes int64) (*Client, *Store, *TCPServer) {
	t.Helper()
	store := mustStore(t, maxBytes)
	srv, err := NewTCPServer(store)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, store, srv
}

func TestNewTCPServerValidation(t *testing.T) {
	if _, err := NewTCPServer(nil); err == nil {
		t.Error("nil store accepted")
	}
}

func TestProtocolRoundTrip(t *testing.T) {
	c, _, _ := startServer(t, 1<<20)

	if err := c.Set("greeting", 42, []byte("hello, world")); err != nil {
		t.Fatal(err)
	}
	v, flags, ok, err := c.Get("greeting")
	if err != nil {
		t.Fatal(err)
	}
	if !ok || flags != 42 || !bytes.Equal(v, []byte("hello, world")) {
		t.Errorf("get = %q/%d/%v", v, flags, ok)
	}

	// Binary-safe payloads.
	payload := []byte{0, 1, 2, '\r', '\n', 255}
	if err := c.Set("bin", 0, payload); err != nil {
		t.Fatal(err)
	}
	v, _, ok, err = c.Get("bin")
	if err != nil || !ok || !bytes.Equal(v, payload) {
		t.Errorf("binary get = %v/%v/%v", v, ok, err)
	}

	// Miss.
	if _, _, ok, err := c.Get("missing"); err != nil || ok {
		t.Errorf("miss = %v/%v", ok, err)
	}

	// Delete.
	if existed, err := c.Delete("greeting"); err != nil || !existed {
		t.Errorf("delete = %v/%v", existed, err)
	}
	if existed, _ := c.Delete("greeting"); existed {
		t.Error("double delete reported DELETED")
	}
}

func TestProtocolStats(t *testing.T) {
	c, _, _ := startServer(t, 1<<20)
	c.Set("k", 0, []byte("v"))
	c.Get("k")
	c.Get("nope")
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["cmd_set"] != "1" || st["get_hits"] != "1" || st["get_misses"] != "1" || st["curr_items"] != "1" {
		t.Errorf("stats = %v", st)
	}
}

func TestProtocolResizeEvicts(t *testing.T) {
	c, store, _ := startServer(t, 1<<20)
	for i := 0; i < 50; i++ {
		if err := c.Set(fmt.Sprintf("k%02d", i), 0, make([]byte, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	before := store.Len()
	if err := c.Resize(10_000); err != nil {
		t.Fatal(err)
	}
	if store.Len() >= before {
		t.Errorf("resize did not evict: %d -> %d", before, store.Len())
	}
	if store.MaxBytes() != 10_000 {
		t.Errorf("max bytes = %d", store.MaxBytes())
	}
	if err := c.Resize(-5); err == nil {
		t.Error("negative resize accepted")
	}
}

func TestProtocolErrors(t *testing.T) {
	c, _, _ := startServer(t, 1<<20)
	resp, err := c.roundTrip("bogus\r\n")
	if err != nil || resp != "ERROR" {
		t.Errorf("bogus cmd = %q/%v", resp, err)
	}
	resp, err = c.roundTrip("set onlykey\r\n")
	if err != nil || !strings.HasPrefix(resp, "CLIENT_ERROR") {
		t.Errorf("bad set = %q/%v", resp, err)
	}
	resp, err = c.roundTrip("delete\r\n")
	if err != nil || !strings.HasPrefix(resp, "CLIENT_ERROR") {
		t.Errorf("bad delete = %q/%v", resp, err)
	}
	resp, err = c.roundTrip("version\r\n")
	if err != nil || !strings.HasPrefix(resp, "VERSION") {
		t.Errorf("version = %q/%v", resp, err)
	}
}

func TestProtocolMultiGet(t *testing.T) {
	c, _, _ := startServer(t, 1<<20)
	c.Set("a", 1, []byte("va"))
	c.Set("b", 2, []byte("vb"))
	// Raw multi-get: two VALUE blocks then END.
	if _, err := fmt.Fprintf(c.w, "get a b missing\r\n"); err != nil {
		t.Fatal(err)
	}
	c.w.Flush()
	var got []string
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimRight(line, "\r\n")
		got = append(got, line)
		if line == "END" {
			break
		}
	}
	joined := strings.Join(got, "|")
	if !strings.Contains(joined, "VALUE a 1 2") || !strings.Contains(joined, "VALUE b 2 2") {
		t.Errorf("multi-get response: %v", got)
	}
}

func TestConcurrentClients(t *testing.T) {
	c0, store, _ := startServer(t, 8<<20)
	addr := c0.conn.RemoteAddr().String()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				if err := c.Set(key, uint32(g), []byte(key)); err != nil {
					errs <- err
					return
				}
				v, _, ok, err := c.Get(key)
				if err != nil || !ok || string(v) != key {
					errs <- fmt.Errorf("get %s = %q/%v/%v", key, v, ok, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if store.Len() != 400 {
		t.Errorf("items = %d, want 400", store.Len())
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	c, _, srv := startServer(t, 1<<20)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("k", 0, []byte("v")); err == nil {
		t.Error("set succeeded after server close")
	}
}

// TestProtocolRobustness throws pseudo-random garbage lines at the server:
// it must answer with protocol errors, never crash, and keep serving valid
// clients afterwards.
func TestProtocolRobustness(t *testing.T) {
	c, _, _ := startServer(t, 1<<20)
	garbage := []string{
		"\r\n",
		"set\r\n",
		"set k notanumber 0 5\r\nhello\r\n",
		"set k 0 0 -3\r\n",
		"set k 0 0 99999999999\r\n",
		"get\r\n",
		"resize\r\n",
		"resize banana\r\n",
		"stats extra args\r\n",
		"\x00\x01\x02\r\n",
		strings.Repeat("x", 4096) + "\r\n",
	}
	for _, g := range garbage {
		if _, err := fmt.Fprint(c.w, g); err != nil {
			t.Fatal(err)
		}
		c.w.Flush()
		// Drain whatever the server answered (possibly multiple lines for
		// stats); resync on a version probe.
		if _, err := fmt.Fprint(c.w, "version\r\n"); err != nil {
			t.Fatal(err)
		}
		c.w.Flush()
		for {
			line, err := c.r.ReadString('\n')
			if err != nil {
				t.Fatalf("connection died after %q: %v", g, err)
			}
			if strings.HasPrefix(line, "VERSION") {
				break
			}
		}
	}
	// Still serving correctly.
	if err := c.Set("after", 0, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	v, _, ok, err := c.Get("after")
	if err != nil || !ok || string(v) != "ok" {
		t.Errorf("post-garbage get = %q/%v/%v", v, ok, err)
	}
}
