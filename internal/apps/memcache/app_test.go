package memcache

import (
	"testing"

	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
)

func TestWorkloadValidation(t *testing.T) {
	if _, err := NewWorkload(0, 10, 1.1, 1); err == nil {
		t.Error("zero keys accepted")
	}
	if _, err := NewWorkload(10, 0, 1.1, 1); err == nil {
		t.Error("zero value size accepted")
	}
	if _, err := NewWorkload(10, 10, 1.0, 1); err == nil {
		t.Error("zipf s=1 accepted")
	}
}

func TestWorkloadZipfSkew(t *testing.T) {
	w, err := NewWorkload(10000, 64, 1.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	// The most popular key should appear far more often than uniform.
	counts := make(map[uint64]int)
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[w.NextKey()]++
	}
	if counts[0] < draws/100 {
		t.Errorf("key 0 drawn %d times of %d, want heavy skew", counts[0], draws)
	}
}

func TestWorkloadWarmAndRun(t *testing.T) {
	w, err := NewWorkload(1000, 256, 1.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	s := mustStore(t, 1<<30) // everything fits
	if err := w.Warm(s); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1000 {
		t.Errorf("warmed store has %d items, want 1000", s.Len())
	}
	res, err := w.Run(s, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 5000 || res.Gets+res.Sets != 5000 {
		t.Errorf("run accounting: %+v", res)
	}
	if res.HitRate() != 1 {
		t.Errorf("hit rate with full cache = %g, want 1", res.HitRate())
	}
}

func TestWorkloadHitRateDropsWithSmallCache(t *testing.T) {
	w, err := NewWorkload(2000, 256, 1.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	full := mustStore(t, 1<<30)
	w.Warm(full)
	fullRate := w.MeasureHitRate(full, 3000)

	w2, _ := NewWorkload(2000, 256, 1.1, 7)
	tiny := mustStore(t, 64*(256+64+12))
	w2.Warm(tiny)
	tinyRate := w2.MeasureHitRate(tiny, 3000)

	if fullRate != 1 {
		t.Errorf("full-cache hit rate = %g, want 1", fullRate)
	}
	if tinyRate >= fullRate || tinyRate <= 0 {
		t.Errorf("tiny-cache hit rate = %g, want in (0, %g)", tinyRate, fullRate)
	}
	// Zipf skew: 3% of keys should still catch a disproportionate share.
	if tinyRate < 0.15 {
		t.Errorf("tiny-cache hit rate = %g, want ≥0.15 (zipf head)", tinyRate)
	}
}

func fullEnv() hypervisor.Env {
	return hypervisor.Env{
		VCPUs: 4, PhysCores: 4, EffectiveCores: 4,
		GuestMemMB: 16384, ResidentMB: 16384, EverTouchedMB: 16384,
		KernelMemMB: 256, LocalityFactor: 1, DiskMBps: 100, NetMBps: 1250,
	}
}

func newApp(t *testing.T, aware bool) *App {
	t.Helper()
	a, err := NewApp(AppConfig{CacheMB: 8000, DatasetMB: 9000, DeflationAware: aware})
	if err != nil {
		t.Fatalf("NewApp: %v", err)
	}
	return a
}

func TestNewAppValidation(t *testing.T) {
	if _, err := NewApp(AppConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewApp(AppConfig{CacheMB: 1, DatasetMB: 1, Scale: 1e9}); err == nil {
		t.Error("absurd scale accepted")
	}
}

func TestAppFootprint(t *testing.T) {
	a := newApp(t, false)
	rss, cache := a.Footprint()
	if cache != 0 {
		t.Errorf("page cache = %g, want 0 (anonymous memory)", cache)
	}
	// Warm store ≈ cache size (±overheads) plus 300 MB process overhead.
	if rss < 7000 || rss > 9000 {
		t.Errorf("rss = %g, want ≈ 8000+300", rss)
	}
}

func TestAppBaselineThroughput(t *testing.T) {
	a := newApp(t, false)
	got := a.Throughput(fullEnv())
	if got < 0.99 || got > 1 {
		t.Errorf("full-resource throughput = %g, want ≈1", got)
	}
}

func TestUnmodifiedIgnoresDeflation(t *testing.T) {
	a := newApp(t, false)
	rel, lat := a.SelfDeflate(restypes.V(0, 4000, 0, 0))
	if !rel.IsZero() || lat != 0 {
		t.Errorf("unmodified app relinquished %v", rel)
	}
	if a.CacheMB() != 8000 {
		t.Errorf("cache changed: %g", a.CacheMB())
	}
}

func TestAwareSelfDeflateKeepsHeadroom(t *testing.T) {
	// 8 GB cache on a 16 GB VM: a 4 GB deflation still leaves room for the
	// full cache, so the policy relinquishes nothing (the guest's free
	// memory covers the reclamation).
	a := newApp(t, true)
	rel, _ := a.SelfDeflate(restypes.V(0, 4000, 0, 0))
	if !rel.IsZero() || a.CacheMB() != 8000 {
		t.Errorf("needless shrink: rel=%v cache=%g", rel, a.CacheMB())
	}
}

func TestAwareSelfDeflateShrinksCache(t *testing.T) {
	a := newApp(t, true)
	before := a.usedMB()
	// 10 GB deflation leaves 6384 MB: cache must shrink to 5700.
	rel, lat := a.SelfDeflate(restypes.V(0, 10000, 0, 0))
	if rel.MemoryMB != 8000-5700 {
		t.Errorf("relinquished %g MB, want 2300", rel.MemoryMB)
	}
	if lat <= 0 {
		t.Error("eviction latency = 0")
	}
	if a.CacheMB() != 5700 {
		t.Errorf("cache = %g, want 5700", a.CacheMB())
	}
	if a.usedMB() >= before {
		t.Error("no items evicted")
	}
	if a.Store().Stats().Evictions == 0 {
		t.Error("no LRU evictions recorded")
	}
	// Hit rate drops but stays well above zero (zipf head retained).
	hr := a.HitRate()
	if hr <= 0.5 || hr >= 1 {
		t.Errorf("hit rate after 50%% shrink = %g, want in (0.5, 1)", hr)
	}
}

func TestAwareSelfDeflateRespectsFloor(t *testing.T) {
	a := newApp(t, true)
	rel, _ := a.SelfDeflate(restypes.V(0, 1e6, 0, 0))
	if got := a.CacheMB(); got != 64 {
		t.Errorf("cache = %g, want floor 64", got)
	}
	if rel.MemoryMB >= 8000 {
		t.Errorf("relinquished %g, want < full cache", rel.MemoryMB)
	}
	// A second huge request relinquishes nothing.
	rel, _ = a.SelfDeflate(restypes.V(0, 1e6, 0, 0))
	if !rel.IsZero() {
		t.Errorf("second deflate relinquished %v", rel)
	}
}

func TestReinflateGrowsAndRefills(t *testing.T) {
	a := newApp(t, true)
	a.SelfDeflate(restypes.V(0, 12000, 0, 0))
	low := a.HitRate()
	a.Reinflate(fullEnv())
	if a.CacheMB() != 8000 {
		t.Errorf("cache after reinflate = %g, want 8000", a.CacheMB())
	}
	if a.HitRate() <= low {
		t.Errorf("hit rate did not recover: %g -> %g", low, a.HitRate())
	}
}

func TestSwappingCrushesThroughput(t *testing.T) {
	a := newApp(t, false)
	rss, _ := a.Footprint()
	touched := rss + 256
	env := fullEnv()
	// Host swapped out 40% of the app's own pages (no cold pool).
	env.EverTouchedMB = touched
	env.ResidentMB = touched * 0.6
	env.SwappedMB = touched * 0.4
	env.LocalityFactor = 0.5
	got := a.Throughput(env)
	if got >= 0.35 {
		t.Errorf("throughput with 40%% of RSS swapped = %g, want deep collapse", got)
	}
	if got <= 0 {
		t.Error("throughput hit zero without OOM")
	}
}

func TestColdPoolSwapIsCheap(t *testing.T) {
	// Swapping only ever-touched-but-free memory (cold pool) barely hurts.
	a := newApp(t, false)
	env := fullEnv()
	env.SwappedMB = 4000 // cold pool is 16384-256-rss ≈ 7800 > 4000
	env.ResidentMB = env.EverTouchedMB - env.SwappedMB
	env.LocalityFactor = 0.5
	got := a.Throughput(env)
	if got < 0.80 {
		t.Errorf("cold-pool swap throughput = %g, want ≥ 0.80", got)
	}
}

func TestOOMZerosThroughput(t *testing.T) {
	a := newApp(t, false)
	env := fullEnv()
	env.OOMKilled = true
	if a.Throughput(env) != 0 || a.KGETS(env) != 0 {
		t.Error("OOM-killed app has throughput")
	}
}

func TestCPUDeflationScalesThroughput(t *testing.T) {
	a := newApp(t, false)

	// Peak load saturates 2.2 of 4 cores: half-CPU deflation barely hurts…
	env := fullEnv()
	env.EffectiveCores = 2
	if got := a.Throughput(env); got < 0.85 {
		t.Errorf("half-CPU throughput = %g, want ≥0.85 (headroom)", got)
	}
	// …but deep CPU deflation scales throughput with capacity.
	env.EffectiveCores = 1
	got := a.Throughput(env)
	if got < 0.40 || got > 0.52 {
		t.Errorf("quarter-CPU throughput = %g, want ≈0.45", got)
	}
}

func TestNetworkCapsThroughput(t *testing.T) {
	a := newApp(t, false)
	env := fullEnv()
	env.NetMBps = 50 // 50 kGETS cap vs 150 base
	if got := a.KGETS(env); got > 50 {
		t.Errorf("KGETS = %g, want ≤ 50 (net cap)", got)
	}
}

func TestAwareBeatsUnmodifiedUnderMemoryPressure(t *testing.T) {
	// The Fig. 5c comparison at 50% memory deflation, memory-stressed config.
	cfg := AppConfig{CacheMB: 14000, DatasetMB: 15000}
	unmod, err := NewApp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DeflationAware = true
	aware, err := NewApp(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Unmodified: VM-level deflation to 8 GB swaps most of the cache.
	rssU, _ := unmod.Footprint()
	envU := fullEnv()
	envU.EverTouchedMB = rssU + 256 + 100
	envU.ResidentMB = 8192
	envU.SwappedMB = envU.EverTouchedMB - 8192
	envU.LocalityFactor = 0.5
	ku := unmod.KGETS(envU)

	// Aware: cache resized to fit 8 GB; no swap.
	aware.SelfDeflate(restypes.V(0, 16384-8192, 0, 0))
	envA := fullEnv()
	envA.GuestMemMB = 8192
	ka := aware.KGETS(envA)

	if ka < 3*ku {
		t.Errorf("aware %g kGETS vs unmodified %g: want ≥3x advantage (paper: up to 6x)", ka, ku)
	}
}
