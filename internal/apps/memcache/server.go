package memcache

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TCPServer serves the memcached text protocol over a Store: get/gets, set,
// delete, stats, version, quit — plus a non-standard administrative verb,
// "resize <maxbytes>", which is the deflation hook (the agent shrinks the
// cache through it, triggering LRU eviction exactly as §4 describes).
//
// Item flags are preserved by prefixing stored values with a 4-byte
// big-endian flag word.
type TCPServer struct {
	store *Store

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewTCPServer wraps a store.
func NewTCPServer(store *Store) (*TCPServer, error) {
	if store == nil {
		return nil, errors.New("memcache: nil store")
	}
	return &TCPServer{store: store, conns: make(map[net.Conn]struct{})}, nil
}

// Serve accepts connections on ln until Close. It returns nil after Close.
func (s *TCPServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("memcache: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting and closes live connections.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *TCPServer) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimRight(line, "\r\n"))
		if len(fields) == 0 {
			continue
		}
		quit, err := s.dispatch(fields, r, w)
		if err != nil {
			return
		}
		if err := w.Flush(); err != nil || quit {
			return
		}
	}
}

func (s *TCPServer) dispatch(fields []string, r *bufio.Reader, w *bufio.Writer) (quit bool, err error) {
	switch fields[0] {
	case "get", "gets":
		return false, s.cmdGet(fields[1:], w)
	case "set":
		return false, s.cmdSet(fields[1:], r, w)
	case "delete":
		return false, s.cmdDelete(fields[1:], w)
	case "stats":
		return false, s.cmdStats(w)
	case "resize":
		return false, s.cmdResize(fields[1:], w)
	case "version":
		_, err = io.WriteString(w, "VERSION deflation-0.1\r\n")
		return false, err
	case "quit":
		return true, nil
	default:
		_, err = io.WriteString(w, "ERROR\r\n")
		return false, err
	}
}

func (s *TCPServer) cmdGet(keys []string, w *bufio.Writer) error {
	for _, key := range keys {
		raw, ok := s.store.Get(key)
		if !ok || len(raw) < 4 {
			continue
		}
		flags := binary.BigEndian.Uint32(raw[:4])
		data := raw[4:]
		if _, err := fmt.Fprintf(w, "VALUE %s %d %d\r\n", key, flags, len(data)); err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\r\n"); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "END\r\n")
	return err
}

func (s *TCPServer) cmdSet(args []string, r *bufio.Reader, w *bufio.Writer) error {
	if len(args) < 4 {
		_, err := io.WriteString(w, "CLIENT_ERROR bad set arguments\r\n")
		return err
	}
	key := args[0]
	flags, err1 := strconv.ParseUint(args[1], 10, 32)
	expSecs, err3 := strconv.Atoi(args[2])
	size, err2 := strconv.Atoi(args[3])
	if err1 != nil || err2 != nil || err3 != nil || expSecs < 0 || size < 0 || size > 8<<20 {
		_, err := io.WriteString(w, "CLIENT_ERROR bad set arguments\r\n")
		return err
	}
	data := make([]byte, size+2) // payload + trailing \r\n
	if _, err := io.ReadFull(r, data); err != nil {
		return err
	}
	raw := make([]byte, 4+size)
	binary.BigEndian.PutUint32(raw[:4], uint32(flags))
	copy(raw[4:], data[:size])
	if err := s.store.SetWithTTL(key, raw, time.Duration(expSecs)*time.Second); err != nil {
		_, werr := fmt.Fprintf(w, "SERVER_ERROR %s\r\n", err)
		return werr
	}
	_, err := io.WriteString(w, "STORED\r\n")
	return err
}

func (s *TCPServer) cmdDelete(args []string, w *bufio.Writer) error {
	if len(args) < 1 {
		_, err := io.WriteString(w, "CLIENT_ERROR bad delete arguments\r\n")
		return err
	}
	if s.store.Delete(args[0]) {
		_, err := io.WriteString(w, "DELETED\r\n")
		return err
	}
	_, err := io.WriteString(w, "NOT_FOUND\r\n")
	return err
}

func (s *TCPServer) cmdStats(w *bufio.Writer) error {
	st := s.store.Stats()
	for _, kv := range [][2]string{
		{"cmd_get", strconv.FormatUint(st.Gets, 10)},
		{"get_hits", strconv.FormatUint(st.Hits, 10)},
		{"get_misses", strconv.FormatUint(st.Misses, 10)},
		{"cmd_set", strconv.FormatUint(st.Sets, 10)},
		{"evictions", strconv.FormatUint(st.Evictions, 10)},
		{"curr_items", strconv.Itoa(st.Items)},
		{"bytes", strconv.FormatInt(st.UsedBytes, 10)},
		{"limit_maxbytes", strconv.FormatInt(st.MaxBytes, 10)},
	} {
		if _, err := fmt.Fprintf(w, "STAT %s %s\r\n", kv[0], kv[1]); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "END\r\n")
	return err
}

func (s *TCPServer) cmdResize(args []string, w *bufio.Writer) error {
	if len(args) < 1 {
		_, err := io.WriteString(w, "CLIENT_ERROR bad resize arguments\r\n")
		return err
	}
	maxBytes, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil || maxBytes <= 0 {
		_, werr := io.WriteString(w, "CLIENT_ERROR bad resize arguments\r\n")
		return werr
	}
	if err := s.store.Resize(maxBytes); err != nil {
		_, werr := fmt.Fprintf(w, "SERVER_ERROR %s\r\n", err)
		return werr
	}
	_, err = io.WriteString(w, "OK\r\n")
	return err
}

// Client is a minimal memcached text-protocol client for the TCPServer.
// Client methods are safe for sequential use; wrap with your own pool for
// concurrency.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a memcached server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(cmd string) (string, error) {
	if _, err := io.WriteString(c.w, cmd); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	return strings.TrimRight(line, "\r\n"), err
}

// Set stores key=value with the given flags.
func (c *Client) Set(key string, flags uint32, value []byte) error {
	cmd := fmt.Sprintf("set %s %d 0 %d\r\n%s\r\n", key, flags, len(value), value)
	resp, err := c.roundTrip(cmd)
	if err != nil {
		return err
	}
	if resp != "STORED" {
		return fmt.Errorf("memcache: set %q: %s", key, resp)
	}
	return nil
}

// Get fetches key; ok is false on miss.
func (c *Client) Get(key string) (value []byte, flags uint32, ok bool, err error) {
	resp, err := c.roundTrip("get " + key + "\r\n")
	if err != nil {
		return nil, 0, false, err
	}
	if resp == "END" {
		return nil, 0, false, nil
	}
	var rkey string
	var size int
	if _, err := fmt.Sscanf(resp, "VALUE %s %d %d", &rkey, &flags, &size); err != nil {
		return nil, 0, false, fmt.Errorf("memcache: get %q: bad response %q", key, resp)
	}
	data := make([]byte, size+2)
	if _, err := io.ReadFull(c.r, data); err != nil {
		return nil, 0, false, err
	}
	end, err := c.r.ReadString('\n')
	if err != nil {
		return nil, 0, false, err
	}
	if strings.TrimRight(end, "\r\n") != "END" {
		return nil, 0, false, fmt.Errorf("memcache: get %q: missing END", key)
	}
	return data[:size], flags, true, nil
}

// Delete removes key, reporting whether it existed.
func (c *Client) Delete(key string) (bool, error) {
	resp, err := c.roundTrip("delete " + key + "\r\n")
	if err != nil {
		return false, err
	}
	return resp == "DELETED", nil
}

// Resize issues the deflation extension verb.
func (c *Client) Resize(maxBytes int64) error {
	resp, err := c.roundTrip(fmt.Sprintf("resize %d\r\n", maxBytes))
	if err != nil {
		return err
	}
	if resp != "OK" {
		return fmt.Errorf("memcache: resize: %s", resp)
	}
	return nil
}

// Stats fetches the server counters as a map.
func (c *Client) Stats() (map[string]string, error) {
	if _, err := io.WriteString(c.w, "stats\r\n"); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "END" {
			return out, nil
		}
		var k, v string
		if _, err := fmt.Sscanf(line, "STAT %s %s", &k, &v); err == nil {
			out[k] = v
		}
	}
}
