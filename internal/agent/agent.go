// Package agent implements the application deflation agent of §5: a REST
// endpoint through which the local deflation controller sends deflation
// vectors to applications and receives the amount of voluntarily
// relinquished resources. It also provides the client side (RemoteApp),
// which lets an application running behind HTTP participate in cascade
// deflation as a vm.Application.
package agent

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/telemetry"
	"deflation/internal/vm"
)

// DeflateRequest is the wire form of a deflation vector sent to an agent.
type DeflateRequest struct {
	Target restypes.Vector `json:"target"`
}

// DeflateResponse reports what the application relinquished.
type DeflateResponse struct {
	Relinquished restypes.Vector `json:"relinquished"`
	LatencyMS    float64         `json:"latency_ms"`
}

// ReinflateRequest notifies the application of restored resources.
type ReinflateRequest struct {
	Env hypervisor.Env `json:"env"`
}

// StatusResponse describes the application's current state.
type StatusResponse struct {
	Name    string  `json:"name"`
	RSSMB   float64 `json:"rss_mb"`
	CacheMB float64 `json:"cache_mb"`
}

// Server exposes a vm.Application as a deflation agent over HTTP. All
// handlers are safe for concurrent use; calls into the application are
// serialized.
type Server struct {
	mu  sync.Mutex
	app vm.Application

	sink *telemetry.Sink // nil = no instrumentation
	tel  struct {
		deflates     *telemetry.Counter
		reinflates   *telemetry.Counter
		relinquished [restypes.NumKinds]*telemetry.Counter
	}
}

// NewServer wraps app.
func NewServer(app vm.Application) (*Server, error) {
	if app == nil {
		return nil, fmt.Errorf("agent: nil application")
	}
	return &Server{app: app}, nil
}

// SetTelemetry instruments the agent: deflation/reinflation request
// counters and relinquished-amount counters per resource dimension. The
// sink's introspection endpoints (/metrics, /debug/trace, /debug/pprof)
// are mounted by Handler. A nil sink detaches.
func (s *Server) SetTelemetry(sink *telemetry.Sink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink = sink
	if sink == nil {
		return
	}
	r := sink.Registry
	s.tel.deflates = r.Counter("deflation_agent_deflates_total",
		"deflation vectors received from the local controller", nil)
	s.tel.reinflates = r.Counter("deflation_agent_reinflates_total",
		"reinflation notifications received", nil)
	for _, k := range restypes.Kinds() {
		s.tel.relinquished[k] = r.Counter("deflation_agent_relinquished_total",
			"resources voluntarily relinquished by the application (cores, MB, MB/s)",
			telemetry.Labels{"resource": k.String()})
	}
}

// Handler returns the agent's HTTP routes:
//
//	POST /deflate   — body DeflateRequest, response DeflateResponse
//	POST /reinflate — body ReinflateRequest
//	GET  /status    — response StatusResponse
//
// When a telemetry sink is set, the sink's introspection endpoints
// (/metrics, /debug/trace, /debug/pprof) are mounted too.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /deflate", s.handleDeflate)
	mux.HandleFunc("POST /reinflate", s.handleReinflate)
	mux.HandleFunc("GET /status", s.handleStatus)
	s.mu.Lock()
	sink := s.sink
	s.mu.Unlock()
	if sink != nil {
		sink.Attach(mux)
	}
	return mux
}

func (s *Server) handleDeflate(w http.ResponseWriter, r *http.Request) {
	var req DeflateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "agent: bad deflate request: "+err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	rel, lat := s.app.SelfDeflate(req.Target)
	if s.sink != nil {
		s.tel.deflates.Inc()
		for _, k := range restypes.Kinds() {
			s.tel.relinquished[k].Add(rel.At(k))
		}
	}
	s.mu.Unlock()
	writeJSON(w, DeflateResponse{Relinquished: rel, LatencyMS: float64(lat) / float64(time.Millisecond)})
}

func (s *Server) handleReinflate(w http.ResponseWriter, r *http.Request) {
	var req ReinflateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "agent: bad reinflate request: "+err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.app.Reinflate(req.Env)
	if s.sink != nil {
		s.tel.reinflates.Inc()
	}
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	rss, cache := s.app.Footprint()
	name := s.app.Name()
	s.mu.Unlock()
	writeJSON(w, StatusResponse{Name: name, RSSMB: rss, CacheMB: cache})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// RemoteApp is a vm.Application proxy that forwards deflation requests to a
// remote agent endpoint. Failures are treated as the application declining
// to deflate — the safe interpretation under cascade deflation, where lower
// levels pick up the slack (§3.2).
type RemoteApp struct {
	baseURL string
	client  *http.Client

	mu         sync.Mutex
	lastStatus StatusResponse
	haveStatus bool
}

// NewRemoteApp points a proxy at an agent's base URL (e.g.
// "http://127.0.0.1:7070").
func NewRemoteApp(baseURL string) (*RemoteApp, error) {
	if baseURL == "" {
		return nil, fmt.Errorf("agent: empty base URL")
	}
	return &RemoteApp{
		baseURL: baseURL,
		client:  &http.Client{Timeout: 10 * time.Second},
	}, nil
}

// Name implements vm.Application, using the last known status.
func (a *RemoteApp) Name() string {
	st, err := a.Status()
	if err != nil {
		return "remote-app"
	}
	return st.Name
}

// Status fetches (and caches) the remote application's status.
func (a *RemoteApp) Status() (StatusResponse, error) {
	resp, err := a.client.Get(a.baseURL + "/status")
	if err != nil {
		a.mu.Lock()
		defer a.mu.Unlock()
		if a.haveStatus {
			return a.lastStatus, nil
		}
		return StatusResponse{}, err
	}
	defer resp.Body.Close()
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return StatusResponse{}, err
	}
	a.mu.Lock()
	a.lastStatus, a.haveStatus = st, true
	a.mu.Unlock()
	return st, nil
}

// Footprint implements vm.Application from the agent's status endpoint.
func (a *RemoteApp) Footprint() (float64, float64) {
	st, err := a.Status()
	if err != nil {
		return 0, 0
	}
	return st.RSSMB, st.CacheMB
}

// SelfDeflate implements vm.Application by POSTing the deflation vector to
// the agent. On any error the application is treated as having relinquished
// nothing.
func (a *RemoteApp) SelfDeflate(target restypes.Vector) (restypes.Vector, time.Duration) {
	body, err := json.Marshal(DeflateRequest{Target: target})
	if err != nil {
		return restypes.Vector{}, 0
	}
	resp, err := a.client.Post(a.baseURL+"/deflate", "application/json", bytes.NewReader(body))
	if err != nil {
		return restypes.Vector{}, 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return restypes.Vector{}, 0
	}
	var dr DeflateResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		return restypes.Vector{}, 0
	}
	return dr.Relinquished, time.Duration(dr.LatencyMS * float64(time.Millisecond))
}

// Reinflate implements vm.Application by POSTing the new environment.
func (a *RemoteApp) Reinflate(env hypervisor.Env) {
	body, err := json.Marshal(ReinflateRequest{Env: env})
	if err != nil {
		return
	}
	resp, err := a.client.Post(a.baseURL+"/reinflate", "application/json", bytes.NewReader(body))
	if err != nil {
		return
	}
	resp.Body.Close()
}

// Throughput implements vm.Application. The remote protocol does not carry
// a performance model; the proxy reports 1 unless the VM was OOM-killed.
// Local performance accounting should wrap RemoteApp if needed.
func (a *RemoteApp) Throughput(env hypervisor.Env) float64 {
	if env.OOMKilled {
		return 0
	}
	return 1
}
