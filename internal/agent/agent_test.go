package agent

import (
	"net/http/httptest"
	"testing"
	"time"

	"deflation/internal/apps/apptest"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
)

func newAgent(t *testing.T, app *apptest.App) (*httptest.Server, *RemoteApp) {
	t.Helper()
	s, err := NewServer(app)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	remote, err := NewRemoteApp(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return srv, remote
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Error("nil app accepted")
	}
	if _, err := NewRemoteApp(""); err == nil {
		t.Error("empty URL accepted")
	}
}

func TestStatusRoundTrip(t *testing.T) {
	app := apptest.NewElastic("memcached", 4000, 500)
	app.CacheMB = 100
	_, remote := newAgent(t, app)

	if got := remote.Name(); got != "memcached" {
		t.Errorf("remote name = %q", got)
	}
	rss, cache := remote.Footprint()
	if rss != 4000 || cache != 100 {
		t.Errorf("remote footprint = %g/%g", rss, cache)
	}
}

func TestDeflateOverHTTP(t *testing.T) {
	app := apptest.NewElastic("a", 4000, 1000)
	app.DeflateLatency = 250 * time.Millisecond
	_, remote := newAgent(t, app)

	rel, lat := remote.SelfDeflate(restypes.V(0, 2000, 0, 0))
	if rel.MemoryMB != 2000 {
		t.Errorf("relinquished %v", rel)
	}
	if lat != 250*time.Millisecond {
		t.Errorf("latency = %v", lat)
	}
	if app.RSSMB != 2000 {
		t.Errorf("server-side app RSS = %g", app.RSSMB)
	}
	if len(app.Calls) != 1 {
		t.Errorf("app saw %d calls", len(app.Calls))
	}
}

func TestReinflateOverHTTP(t *testing.T) {
	app := apptest.NewElastic("a", 4000, 1000)
	_, remote := newAgent(t, app)
	remote.Reinflate(hypervisor.Env{GuestMemMB: 16384})
	if app.Reinflations != 1 {
		t.Errorf("reinflations = %d", app.Reinflations)
	}
}

func TestRemoteAppFailureIsDecline(t *testing.T) {
	// An unreachable agent relinquishes nothing — safe under cascade.
	remote, err := NewRemoteApp("http://127.0.0.1:1") // nothing listens
	if err != nil {
		t.Fatal(err)
	}
	rel, lat := remote.SelfDeflate(restypes.V(0, 1000, 0, 0))
	if !rel.IsZero() || lat != 0 {
		t.Errorf("unreachable agent relinquished %v", rel)
	}
	rss, cache := remote.Footprint()
	if rss != 0 || cache != 0 {
		t.Errorf("unreachable footprint = %g/%g", rss, cache)
	}
	remote.Reinflate(hypervisor.Env{}) // must not panic
}

func TestThroughputProxy(t *testing.T) {
	_, remote := newAgent(t, apptest.New("a"))
	if got := remote.Throughput(hypervisor.Env{}); got != 1 {
		t.Errorf("proxy throughput = %g", got)
	}
	if got := remote.Throughput(hypervisor.Env{OOMKilled: true}); got != 0 {
		t.Errorf("OOM proxy throughput = %g", got)
	}
}

func TestBadRequestBodies(t *testing.T) {
	app := apptest.New("a")
	s, err := NewServer(app)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	for _, path := range []string{"/deflate", "/reinflate"} {
		resp, err := srv.Client().Post(srv.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("POST %s with empty body: %s", path, resp.Status)
		}
	}
}
