package spark

import (
	"fmt"
	"math"
)

// Mechanism is the deflation mechanism the policy selects between (§4.1):
// application self-deflation (kill tasks, blacklist executors) or VM-level
// deflation (OS + hypervisor reclamation; executors slow down).
type Mechanism int

const (
	// MechVMLevel leaves the application alone and lets the OS/hypervisor
	// reclaim: deflated VMs run tasks slower and straggle.
	MechVMLevel Mechanism = iota
	// MechSelf terminates tasks and blacklists executors on deflated VMs:
	// even load on survivors, but lost outputs must be recomputed.
	MechSelf
)

// String returns "vm-level" or "self".
func (m Mechanism) String() string {
	if m == MechSelf {
		return "self"
	}
	return "vm-level"
}

// Estimator selects how the policy estimates r, the recomputation fraction
// (§4.1 offers three choices).
type Estimator int

const (
	// EstimatorHeuristic uses r = synchronous (shuffle) work fraction — the
	// paper's default middle ground.
	EstimatorHeuristic Estimator = iota
	// EstimatorWorstCase uses r = 1.
	EstimatorWorstCase
	// EstimatorDAG uses the exact lineage-derived recomputation cost.
	EstimatorDAG
)

// String names the estimator.
func (e Estimator) String() string {
	switch e {
	case EstimatorHeuristic:
		return "heuristic"
	case EstimatorWorstCase:
		return "worst-case"
	case EstimatorDAG:
		return "dag"
	}
	return fmt.Sprintf("Estimator(%d)", int(e))
}

// PolicyInputs carries the master's view when deflation requests arrive.
type PolicyInputs struct {
	// Progress is c, the fraction of the job completed (estimated as the
	// fraction of stage work done).
	Progress float64
	// Deflation is the deflation vector d: the requested deflation fraction
	// for each worker VM (0 for undeflated workers).
	Deflation []float64
	// ShuffleFraction is the measured synchronous-work share, the
	// heuristic's r.
	ShuffleFraction float64
	// NextStageIsShuffle forces r = 1 ("the terminated tasks will not have
	// their RDDs cached, and will require recomputation").
	NextStageIsShuffle bool
	// DAGRecomputeFraction is the exact lineage estimate (recompute work /
	// total job work), used by EstimatorDAG.
	DAGRecomputeFraction float64
}

// Decision is the policy's output, with the two runtime estimates for
// inspection.
type Decision struct {
	Mechanism Mechanism
	R         float64 // recomputation fraction used
	TVM       float64 // Eq. 1 estimate, normalized to undeflated runtime T
	TSelf     float64 // Eq. 3 estimate
}

// Decide implements the paper's running-time-minimizing deflation policy:
// it estimates the normalized running time under VM-level deflation (Eq. 1)
// and under self-deflation (Eq. 3) and picks the minimum.
//
//	T_vm   = c + (1-c)/(1-max d)
//	T_self = c + (r·c + 1-c)/(1-mean d)
func Decide(in PolicyInputs, est Estimator) (Decision, error) {
	if in.Progress < 0 || in.Progress > 1 {
		return Decision{}, fmt.Errorf("spark: progress %g out of [0,1]", in.Progress)
	}
	if len(in.Deflation) == 0 {
		return Decision{}, fmt.Errorf("spark: empty deflation vector")
	}
	maxD, sumD := 0.0, 0.0
	for _, d := range in.Deflation {
		if d < 0 || d >= 1 {
			return Decision{}, fmt.Errorf("spark: deflation fraction %g out of [0,1)", d)
		}
		sumD += d
		if d > maxD {
			maxD = d
		}
	}
	meanD := sumD / float64(len(in.Deflation))

	var r float64
	switch est {
	case EstimatorHeuristic:
		r = in.ShuffleFraction
		if in.NextStageIsShuffle {
			r = 1
		}
	case EstimatorWorstCase:
		r = 1
	case EstimatorDAG:
		r = in.DAGRecomputeFraction
	default:
		return Decision{}, fmt.Errorf("spark: unknown estimator %d", int(est))
	}
	r = math.Min(math.Max(r, 0), 1)

	c := in.Progress
	tvm := c + (1-c)/(1-maxD)
	tself := c + (r*c+1-c)/(1-meanD)

	d := Decision{R: r, TVM: tvm, TSelf: tself, Mechanism: MechVMLevel}
	if tself < tvm {
		d.Mechanism = MechSelf
	}
	return d, nil
}

// ChooseVictims picks which executors self-deflation should blacklist for a
// given deflation vector: the engine frees resources by killing whole
// executors whose combined share matches the mean deflation, preferring the
// most-deflated VMs (their resources are being reclaimed anyway). Executor
// i corresponds to Deflation[i].
func ChooseVictims(c *Cluster, deflation []float64) []string {
	execs := c.Executors()
	n := len(execs)
	if len(deflation) < n {
		n = len(deflation)
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += deflation[i]
	}
	kills := int(math.Round(sum))
	if kills <= 0 {
		return nil
	}
	alive := 0
	for _, x := range execs[:n] {
		if x.Alive() {
			alive++
		}
	}
	if kills >= alive {
		kills = alive - 1 // always keep one executor
	}
	// Sort candidate indices by deflation fraction, most deflated first;
	// stable on index for determinism.
	idx := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if execs[i].Alive() {
			idx = append(idx, i)
		}
	}
	for i := 1; i < len(idx); i++ { // insertion sort, stable
		for j := i; j > 0 && deflation[idx[j]] > deflation[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	var out []string
	for _, i := range idx {
		if len(out) >= kills {
			break
		}
		out = append(out, execs[i].ID)
	}
	return out
}
