// Package spark implements a miniature data-parallel processing engine with
// the Spark semantics the paper's deflation policy depends on (§4.1):
// RDDs with narrow and wide (shuffle) dependencies, BSP stage execution,
// in-memory caching, lineage-based recomputation of lost partitions, task
// kill + executor blacklisting for self-deflation, and the online
// running-time-minimizing deflation policy of Eq. 1–3.
package spark

import "fmt"

// RDD is a resilient distributed dataset: a partitioned dataset defined by
// its lineage (dependencies on parent RDDs) rather than by materialized
// data. Work and output sizes are per partition, in seconds-at-unit-speed
// and MB respectively.
type RDD struct {
	ctx        *Context
	id         int
	name       string
	partitions int
	work       float64 // compute seconds per partition at speed 1.0
	outMB      float64 // output MB per partition (cache/shuffle footprint)
	deps       []Dep
	cached     bool
	driverHeld bool
}

// Dep is a dependency on a parent RDD. Wide dependencies require a shuffle
// (every child partition reads from every parent partition). Broadcast
// dependencies also need every parent partition (the parent is broadcast to
// all tasks) but move negligible data and are not shuffles — e.g. K-means
// cluster centers consumed by the next iteration.
type Dep struct {
	Parent    *RDD
	Wide      bool
	Broadcast bool
}

// Context builds RDD graphs; it assigns stable ids so that DAGs are
// deterministic.
type Context struct {
	nextID int
	rdds   []*RDD
}

// NewContext returns an empty RDD context.
func NewContext() *Context { return &Context{} }

func (c *Context) newRDD(name string, partitions int, work, outMB float64, deps ...Dep) *RDD {
	if partitions <= 0 {
		panic(fmt.Sprintf("spark: RDD %q needs positive partitions, got %d", name, partitions))
	}
	if work < 0 || outMB < 0 {
		panic(fmt.Sprintf("spark: RDD %q has negative work/output", name))
	}
	r := &RDD{ctx: c, id: c.nextID, name: name, partitions: partitions, work: work, outMB: outMB, deps: deps}
	c.nextID++
	c.rdds = append(c.rdds, r)
	return r
}

// Source creates an input RDD (e.g. reading from distributed storage):
// partitions tasks, each spending work seconds and producing outMB.
func (c *Context) Source(name string, partitions int, work, outMB float64) *RDD {
	return c.newRDD(name, partitions, work, outMB)
}

// Transform creates an RDD with an explicit dependency mix — for DAGs that
// the Map/Shuffle/Join helpers cannot express, such as an iteration that
// narrowly reuses a cached dataset while consuming the previous iteration's
// (shuffled) result.
func (c *Context) Transform(name string, partitions int, work, outMB float64, deps ...Dep) *RDD {
	return c.newRDD(name, partitions, work, outMB, deps...)
}

// RDDs returns every RDD created in this context, in creation order.
func (c *Context) RDDs() []*RDD { return c.rdds }

// ID returns the RDD's stable identifier.
func (r *RDD) ID() int { return r.id }

// Name returns the RDD's name.
func (r *RDD) Name() string { return r.name }

// Partitions returns the partition count.
func (r *RDD) Partitions() int { return r.partitions }

// Deps returns the RDD's dependencies.
func (r *RDD) Deps() []Dep { return r.deps }

// Cached reports whether Cache was called.
func (r *RDD) Cached() bool { return r.cached }

// Map applies a narrow transformation: same partitioning, per-partition
// work, new per-partition output size.
func (r *RDD) Map(name string, work, outMB float64) *RDD {
	return r.ctx.newRDD(name, r.partitions, work, outMB, Dep{Parent: r})
}

// Filter applies a selective narrow transformation: same partitioning,
// cheap per-partition work, output scaled by selectivity ∈ (0,1].
func (r *RDD) Filter(name string, work, selectivity float64) *RDD {
	if selectivity <= 0 || selectivity > 1 {
		panic(fmt.Sprintf("spark: filter %q selectivity %g out of (0,1]", name, selectivity))
	}
	return r.ctx.newRDD(name, r.partitions, work, r.outMB*selectivity, Dep{Parent: r})
}

// Shuffle applies a wide transformation (reduceByKey, groupBy, repartition):
// each of the child's partitions depends on all parent partitions.
func (r *RDD) Shuffle(name string, partitions int, work, outMB float64) *RDD {
	return r.ctx.newRDD(name, partitions, work, outMB, Dep{Parent: r, Wide: true})
}

// Join produces an RDD with wide dependencies on both r and other.
func (r *RDD) Join(other *RDD, name string, partitions int, work, outMB float64) *RDD {
	return r.ctx.newRDD(name, partitions, work, outMB,
		Dep{Parent: r, Wide: true}, Dep{Parent: other, Wide: true})
}

// Cache marks the RDD's partitions for in-memory storage on the executors
// that compute them; cached partitions short-circuit lineage recomputation
// while their executor is alive.
func (r *RDD) Cache() *RDD {
	r.cached = true
	return r
}

// CollectToDriver marks the RDD's (small) result as materialized at the
// driver — like a collect() whose value feeds the next iteration via
// broadcast. Driver-held outputs survive executor loss, so they never need
// recomputation. It implies a stage boundary, like Cache.
func (r *RDD) CollectToDriver() *RDD {
	r.driverHeld = true
	return r
}

// DriverHeld reports whether CollectToDriver was called.
func (r *RDD) DriverHeld() bool { return r.driverHeld }
