package spark_test

import (
	"fmt"
	"log"

	"deflation/internal/spark"
	"deflation/internal/spark/workloads"
)

// ExampleDecide shows the §4.1 running-time-minimizing policy choosing
// between self-deflation and VM-level deflation.
func ExampleDecide() {
	// Halfway through a job, workers are deflated unevenly (max 0.7,
	// mean 0.4), and recomputation would be cheap (r = 0.05): killing
	// tasks on the most-deflated VMs beats straggling behind them.
	dec, err := spark.Decide(spark.PolicyInputs{
		Progress:        0.5,
		Deflation:       []float64{0.7, 0.1},
		ShuffleFraction: 0.05,
	}, spark.EstimatorHeuristic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T_vm = %.2f, T_self = %.2f -> %s\n", dec.TVM, dec.TSelf, dec.Mechanism)

	// With a shuffle pending, the worst case (r = 1) applies and VM-level
	// deflation wins.
	dec, err = spark.Decide(spark.PolicyInputs{
		Progress:           0.5,
		Deflation:          []float64{0.7, 0.1},
		ShuffleFraction:    0.05,
		NextStageIsShuffle: true,
	}, spark.EstimatorHeuristic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T_vm = %.2f, T_self = %.2f -> %s\n", dec.TVM, dec.TSelf, dec.Mechanism)
	// Output:
	// T_vm = 2.17, T_self = 1.37 -> self
	// T_vm = 2.17, T_self = 2.17 -> vm-level
}

// ExampleRunBatchScenario runs K-means through 50% mid-job deflation with
// the cascade policy choosing the mechanism.
func ExampleRunBatchScenario() {
	p := workloads.Params{}
	cluster, err := p.Cluster()
	if err != nil {
		log.Fatal(err)
	}
	job, err := workloads.KMeans(p)
	if err != nil {
		log.Fatal(err)
	}
	res, err := spark.RunBatchScenario(cluster, job, &spark.PressureSpec{
		AtProgress: 0.5,
		Deflation:  []float64{0.55, 0.45, 0.55, 0.45, 0.55, 0.45, 0.55, 0.45},
		Mechanism:  spark.PressurePolicy,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy chose %s; job finished with %.0fs of recomputation\n",
		res.Chosen, res.RecomputeSecs)
	// Output:
	// policy chose Self; job finished with 14s of recomputation
}
