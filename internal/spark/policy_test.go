package spark

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDecideValidation(t *testing.T) {
	if _, err := Decide(PolicyInputs{Progress: -0.1, Deflation: []float64{0.5}}, EstimatorHeuristic); err == nil {
		t.Error("negative progress accepted")
	}
	if _, err := Decide(PolicyInputs{Progress: 0.5}, EstimatorHeuristic); err == nil {
		t.Error("empty deflation vector accepted")
	}
	if _, err := Decide(PolicyInputs{Progress: 0.5, Deflation: []float64{1.0}}, EstimatorHeuristic); err == nil {
		t.Error("deflation=1 accepted")
	}
	if _, err := Decide(PolicyInputs{Progress: 0.5, Deflation: []float64{0.5}}, Estimator(99)); err == nil {
		t.Error("unknown estimator accepted")
	}
}

func TestDecideEquationValues(t *testing.T) {
	// Uniform d=0.5 at c=0.5 with r=0.2:
	// T_vm = 0.5 + 0.5/0.5 = 1.5; T_self = 0.5 + (0.1+0.5)/0.5 = 1.7.
	dec, err := Decide(PolicyInputs{
		Progress:        0.5,
		Deflation:       []float64{0.5, 0.5, 0.5, 0.5},
		ShuffleFraction: 0.2,
	}, EstimatorHeuristic)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dec.TVM-1.5) > 1e-12 || math.Abs(dec.TSelf-1.7) > 1e-12 {
		t.Errorf("TVM/TSelf = %g/%g, want 1.5/1.7", dec.TVM, dec.TSelf)
	}
	if dec.Mechanism != MechVMLevel {
		t.Errorf("mechanism = %v, want vm-level", dec.Mechanism)
	}
}

func TestDecideSkewFavorsSelfForLowR(t *testing.T) {
	// Uneven deflation: max 0.7, mean 0.4. Cheap recompute (r=0.05):
	// T_vm = 0.5 + 0.5/0.3 = 2.17; T_self = 0.5 + 0.525/0.6 = 1.375.
	dec, err := Decide(PolicyInputs{
		Progress:        0.5,
		Deflation:       []float64{0.7, 0.1},
		ShuffleFraction: 0.05,
	}, EstimatorHeuristic)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Mechanism != MechSelf {
		t.Errorf("mechanism = %v, want self (TVM=%g TSelf=%g)", dec.Mechanism, dec.TVM, dec.TSelf)
	}
}

func TestDecideNextShuffleForcesWorstCase(t *testing.T) {
	dec, err := Decide(PolicyInputs{
		Progress:           0.5,
		Deflation:          []float64{0.7, 0.1},
		ShuffleFraction:    0.05,
		NextStageIsShuffle: true,
	}, EstimatorHeuristic)
	if err != nil {
		t.Fatal(err)
	}
	if dec.R != 1 {
		t.Errorf("r = %g, want 1 (pending shuffle)", dec.R)
	}
	if dec.Mechanism != MechVMLevel {
		t.Errorf("mechanism = %v, want vm-level under worst-case r", dec.Mechanism)
	}
}

func TestDecideEstimators(t *testing.T) {
	in := PolicyInputs{
		Progress:             0.5,
		Deflation:            []float64{0.5},
		ShuffleFraction:      0.3,
		DAGRecomputeFraction: 0.1,
	}
	h, _ := Decide(in, EstimatorHeuristic)
	w, _ := Decide(in, EstimatorWorstCase)
	d, _ := Decide(in, EstimatorDAG)
	if h.R != 0.3 || w.R != 1 || d.R != 0.1 {
		t.Errorf("r per estimator = %g/%g/%g, want 0.3/1/0.1", h.R, w.R, d.R)
	}
}

func TestDecideLateJobPrefersVMLevel(t *testing.T) {
	// Near completion, recomputation risk dominates: "our policy tends to
	// use VM overcommitment for jobs that are close to completion".
	dec, err := Decide(PolicyInputs{
		Progress:        0.95,
		Deflation:       []float64{0.6, 0.2},
		ShuffleFraction: 0.5,
	}, EstimatorHeuristic)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Mechanism != MechVMLevel {
		t.Errorf("late-job mechanism = %v, want vm-level", dec.Mechanism)
	}
}

func TestMechanismEstimatorStrings(t *testing.T) {
	if MechSelf.String() != "self" || MechVMLevel.String() != "vm-level" {
		t.Error("mechanism strings wrong")
	}
	if EstimatorHeuristic.String() != "heuristic" || EstimatorWorstCase.String() != "worst-case" ||
		EstimatorDAG.String() != "dag" {
		t.Error("estimator strings wrong")
	}
}

func TestQuickDecideEstimatesAreSane(t *testing.T) {
	f := func(c, d1, d2, r uint8) bool {
		in := PolicyInputs{
			Progress:        float64(c%100) / 100,
			Deflation:       []float64{float64(d1%90) / 100, float64(d2%90) / 100},
			ShuffleFraction: float64(r%100) / 100,
		}
		dec, err := Decide(in, EstimatorHeuristic)
		if err != nil {
			return false
		}
		// Both estimates are ≥ 1 (deflation never speeds a job up) and the
		// chosen mechanism has the smaller estimate.
		if dec.TVM < 1-1e-9 || dec.TSelf < 1-1e-9 {
			return false
		}
		if dec.Mechanism == MechSelf {
			return dec.TSelf < dec.TVM
		}
		return dec.TVM <= dec.TSelf
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChooseVictims(t *testing.T) {
	c := mustCluster(t, 4, 2, 100)

	// Sum 2.0 → kill 2, the most deflated first.
	got := ChooseVictims(c, []float64{0.9, 0.3, 0.5, 0.3})
	if len(got) != 2 || got[0] != "exec-0" || got[1] != "exec-2" {
		t.Errorf("victims = %v, want [exec-0 exec-2]", got)
	}

	// Tiny total deflation → no kills.
	if got := ChooseVictims(c, []float64{0.1, 0.1, 0.1, 0.1}); got != nil {
		t.Errorf("victims = %v, want none", got)
	}

	// Never kills the last executor.
	got = ChooseVictims(c, []float64{0.99, 0.99, 0.99, 0.99})
	if len(got) != 3 {
		t.Errorf("kill count = %d, want 3 (one survivor)", len(got))
	}

	// Dead executors are not re-selected.
	c.Executor("exec-0").alive = false
	got = ChooseVictims(c, []float64{0.9, 0.9, 0.2, 0.2})
	for _, id := range got {
		if id == "exec-0" {
			t.Error("dead executor selected as victim")
		}
	}
}
