package spark

import (
	"math"
	"testing"
)

func trainJob(ckpt bool) *TrainingJob {
	j := &TrainingJob{
		Name: "t", Iterations: 40, IterSecs: 10, Workers: 8,
		RecordsPerIter: 800, RestartSecs: 50,
	}
	if ckpt {
		j.CheckpointEvery = 10
		j.CheckpointOverhead = 0.2
	}
	return j
}

func TestTrainingValidation(t *testing.T) {
	if _, err := NewTrainingRun(&TrainingJob{Name: "x"}); err == nil {
		t.Error("empty job accepted")
	}
	if _, err := NewTrainingRun(&TrainingJob{Name: "x", Iterations: 1, IterSecs: 1, Workers: 1, CheckpointEvery: -1}); err == nil {
		t.Error("negative checkpoint accepted")
	}
}

func TestTrainingBaseline(t *testing.T) {
	r, err := NewTrainingRun(trainJob(false))
	if err != nil {
		t.Fatal(err)
	}
	elapsed, err := r.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 400 {
		t.Errorf("elapsed = %g, want 40×10 = 400", elapsed)
	}
	if !r.Done() || r.Completed() != 40 {
		t.Errorf("completed = %d", r.Completed())
	}
	if got := r.Throughput(); math.Abs(got-80) > 1e-9 {
		t.Errorf("throughput = %g, want 800/10 = 80", got)
	}
}

func TestCheckpointingCostsThroughput(t *testing.T) {
	r, err := NewTrainingRun(trainJob(true))
	if err != nil {
		t.Fatal(err)
	}
	elapsed, err := r.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(elapsed-480) > 1e-9 {
		t.Errorf("elapsed with checkpointing = %g, want 480 (20%% overhead)", elapsed)
	}
}

func TestVMDeflationSlowsViaBarrier(t *testing.T) {
	r, err := NewTrainingRun(trainJob(false))
	if err != nil {
		t.Fatal(err)
	}
	// One straggler sets the pace for all 8 workers.
	if err := r.SetWorkerSpeed(3, 0.5); err != nil {
		t.Fatal(err)
	}
	slowIter := r.IterSecs()
	want := 10 / CurveCNNTraining.At(0.5)
	if math.Abs(slowIter-want) > 1e-9 {
		t.Errorf("iteration = %g, want %g (curve at 0.5)", slowIter, want)
	}
	// Deflating a second worker less deeply changes nothing (min rules).
	r.SetWorkerSpeed(4, 0.8)
	if r.IterSecs() != slowIter {
		t.Error("barrier not governed by slowest worker")
	}
}

func TestSetWorkerSpeedValidation(t *testing.T) {
	r, _ := NewTrainingRun(trainJob(false))
	if err := r.SetWorkerSpeed(99, 0.5); err == nil {
		t.Error("bad index accepted")
	}
	if err := r.SetWorkerSpeed(0, 0); err == nil {
		t.Error("zero speed accepted")
	}
	if err := r.SetWorkerSpeed(0, 1.5); err == nil {
		t.Error("speed > 1 accepted")
	}
}

func TestKillWorkersRestartsFromCheckpoint(t *testing.T) {
	r, err := NewTrainingRun(trainJob(true))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.KillWorkers(4); err != nil {
		t.Fatal(err)
	}
	if r.Completed() != 20 {
		t.Errorf("completed after kill = %d, want checkpoint 20", r.Completed())
	}
	// Iterations now slower: half the workers with scale-out loss.
	it := r.IterSecs()
	minWant := 10.0 * 2 * 1.2 // ≥ linear 2x plus checkpoint overhead
	if it < minWant {
		t.Errorf("post-kill iteration = %g, want ≥ %g", it, minWant)
	}
	if _, err := r.Run(nil); err != nil {
		t.Fatal(err)
	}
	if !r.Done() {
		t.Error("job did not finish after kill")
	}
}

func TestKillWithoutCheckpointRestartsFromZero(t *testing.T) {
	r, err := NewTrainingRun(trainJob(false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		r.Step()
	}
	r.KillWorkers(1)
	if r.Completed() != 0 {
		t.Errorf("completed = %d, want 0 (no checkpoints)", r.Completed())
	}
}

func TestKillAllWorkersRejected(t *testing.T) {
	r, _ := NewTrainingRun(trainJob(false))
	if err := r.KillWorkers(8); err == nil {
		t.Error("killing every worker accepted")
	}
	if err := r.KillWorkers(0); err != nil {
		t.Errorf("killing zero workers errored: %v", err)
	}
}

func TestStepAfterDoneErrors(t *testing.T) {
	r, _ := NewTrainingRun(trainJob(false))
	r.Run(nil)
	if err := r.Step(); err == nil {
		t.Error("Step after done accepted")
	}
}

func TestTrainingDeflationBeatsKill(t *testing.T) {
	// The §6.2 claim: for synchronous training, VM-level deflation (slower
	// iterations) beats killing workers (restart + fewer workers).
	deflated, err := NewTrainingRun(trainJob(false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		deflated.Step()
	}
	for i := 0; i < 8; i++ {
		deflated.SetWorkerSpeed(i, 0.5)
	}
	dElapsed, _ := deflated.Run(nil)

	killed, _ := NewTrainingRun(trainJob(true))
	for i := 0; i < 20; i++ {
		killed.Step()
	}
	killed.KillWorkers(4)
	kElapsed, _ := killed.Run(nil)

	if dElapsed >= kElapsed {
		t.Errorf("deflation %g not faster than kill+restart %g", dElapsed, kElapsed)
	}
}
