package spark

import (
	"fmt"
	"math"
)

// PressureMechanism selects how a resource-pressure event is handled in a
// scenario run — the four series of Fig. 6.
type PressureMechanism int

const (
	// PressureVMLevel: OS+hypervisor deflation; executors slow down.
	PressureVMLevel PressureMechanism = iota
	// PressureSelf: the application kills tasks and blacklists executors.
	PressureSelf
	// PressurePreempt: today's clouds — the deflated share of VMs is
	// revoked outright (fail-stop).
	PressurePreempt
	// PressurePolicy: cascade deflation with the §4.1 policy choosing
	// between self and VM-level.
	PressurePolicy
)

// String names the mechanism as the paper's figure legends do.
func (m PressureMechanism) String() string {
	switch m {
	case PressureVMLevel:
		return "VM"
	case PressureSelf:
		return "Self"
	case PressurePreempt:
		return "Preemption"
	case PressurePolicy:
		return "Cascade"
	}
	return fmt.Sprintf("PressureMechanism(%d)", int(m))
}

// PressureSpec describes one resource-pressure event during a job.
type PressureSpec struct {
	// AtProgress triggers the event at the first stage boundary with
	// progress ≥ this fraction.
	AtProgress float64
	// Deflation is the per-worker deflation vector d.
	Deflation []float64
	// Mechanism handles the event.
	Mechanism PressureMechanism
	// Estimator configures the policy's r estimate (PressurePolicy only).
	Estimator Estimator
	// RestartSecs is the job-restart overhead charged on preemption
	// (default 30).
	RestartSecs float64
}

// ScenarioResult reports a pressure-scenario run.
type ScenarioResult struct {
	Result
	// Chosen is the mechanism that actually handled the event (differs
	// from the spec only for PressurePolicy).
	Chosen PressureMechanism
	// Decision is the policy's estimate detail (PressurePolicy only).
	Decision Decision
	// Fired reports whether the pressure event triggered.
	Fired bool
}

// AddDelaySecs advances the engine clock without doing work (restart
// overheads and similar).
func (e *Engine) AddDelaySecs(secs float64) { e.nowSecs += secs }

// vmOvercommitIntensity calibrates the residual cost of VM-level deflation
// beyond the proportional CPU loss: executor heaps under memory pressure,
// fractional-core multiplexing, and interference. Measured VM-level task
// speed is (1-d)/(1+intensity·d).
const vmOvercommitIntensity = 0.8

// VMLevelSpeedFactor returns the per-slot task-speed factor of an executor
// whose VM is deflated by fraction d under OS+hypervisor (VM-level)
// deflation.
func VMLevelSpeedFactor(d float64) float64 {
	if d <= 0 {
		return 1
	}
	if d >= 1 {
		return 0.01
	}
	return (1 - d) / (1 + vmOvercommitIntensity*d)
}

// RunBatchScenario executes job on cluster, injecting the pressure event
// (if non-nil) at its progress point. The cluster and engine must be fresh.
func RunBatchScenario(cluster *Cluster, job *BatchJob, p *PressureSpec) (ScenarioResult, error) {
	eng, err := NewEngine(cluster, job)
	if err != nil {
		return ScenarioResult{}, err
	}
	var out ScenarioResult
	var hookErr error
	hook := func(progress float64, e *Engine) {
		if p == nil || out.Fired || progress < p.AtProgress || progress >= 1 {
			return
		}
		out.Fired = true
		out.Chosen, out.Decision, hookErr = ApplyPressure(e, cluster, job, *p)
	}
	res, err := eng.Run(hook)
	if err != nil {
		return out, err
	}
	if hookErr != nil {
		return out, hookErr
	}
	out.Result = res
	return out, nil
}

// ApplyPressure applies one pressure event to a running engine, returning
// the mechanism actually used.
func ApplyPressure(e *Engine, cluster *Cluster, job *BatchJob, p PressureSpec) (PressureMechanism, Decision, error) {
	mech := p.Mechanism
	var dec Decision
	if mech == PressurePolicy {
		victims := ChooseVictims(cluster, p.Deflation)
		dagFrac := 0.0
		if total := job.TotalPlannedWork(); total > 0 {
			dagFrac = e.EstimateRecomputeWork(victims) / total
		}
		var err error
		dec, err = Decide(PolicyInputs{
			Progress:             e.Progress(),
			Deflation:            p.Deflation,
			ShuffleFraction:      e.MeasuredShuffleFraction(),
			NextStageIsShuffle:   e.NextStageIsShuffle(),
			DAGRecomputeFraction: dagFrac,
		}, p.Estimator)
		if err != nil {
			return mech, dec, err
		}
		if dec.Mechanism == MechSelf {
			mech = PressureSelf
		} else {
			mech = PressureVMLevel
		}
	}

	switch mech {
	case PressureVMLevel:
		factors := make(map[string]float64)
		execs := cluster.Executors()
		for i, d := range p.Deflation {
			if i >= len(execs) {
				break
			}
			factors[execs[i].ID] = VMLevelSpeedFactor(d)
		}
		cluster.SetSpeed(factors)
	case PressureSelf:
		e.Blacklist(ChooseVictims(cluster, p.Deflation))
	case PressurePreempt:
		e.Blacklist(ChooseVictims(cluster, p.Deflation))
		restart := p.RestartSecs
		if restart == 0 {
			restart = 30
		}
		e.AddDelaySecs(restart)
	default:
		return mech, dec, fmt.Errorf("spark: unknown pressure mechanism %d", int(mech))
	}
	return mech, dec, nil
}

// RunTrainingScenario executes a training job with a pressure event at the
// given progress, handled by the chosen mechanism. For training, the policy
// always prefers VM-level deflation: killing any worker of a synchronous
// job forces a checkpoint restart, i.e. r ≈ 1 (§4.1, §6.2).
func RunTrainingScenario(job *TrainingJob, p *PressureSpec) (float64, PressureMechanism, error) {
	run, err := NewTrainingRun(job)
	if err != nil {
		return 0, 0, err
	}
	mech := PressureVMLevel
	if p != nil {
		mech = p.Mechanism
	}
	fired := false
	var hookErr error
	hook := func(progress float64, r *TrainingRun) {
		if p == nil || fired || progress < p.AtProgress || r.Done() {
			return
		}
		fired = true
		m := p.Mechanism
		if m == PressurePolicy {
			// Synchronous training: task kill restarts the whole job, so
			// the estimated T_self always exceeds T_vm; choose VM-level.
			m = PressureVMLevel
		}
		mech = m
		switch m {
		case PressureVMLevel:
			for i, d := range p.Deflation {
				if d <= 0 {
					continue
				}
				if err := r.SetWorkerSpeed(i, 1-d); err != nil {
					hookErr = err
					return
				}
			}
		case PressureSelf, PressurePreempt:
			var sum float64
			for _, d := range p.Deflation {
				sum += d
			}
			if err := r.KillWorkers(int(math.Round(sum))); err != nil {
				hookErr = err
				return
			}
			if m == PressurePreempt {
				// Abrupt revocation pays full job resubmission and input
				// re-provisioning on top of the checkpoint restart.
				extra := p.RestartSecs
				if extra == 0 {
					extra = 300
				}
				r.AddDelaySecs(extra)
			}
		}
	}
	elapsed, err := run.Run(hook)
	if err != nil {
		return elapsed, mech, err
	}
	return elapsed, mech, hookErr
}
