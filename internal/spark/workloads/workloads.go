// Package workloads builds the paper's four distributed workloads (Table 2)
// on the mini-Spark engine: ALS and K-means as RDD DAG jobs with the
// structural traits the paper's Fig. 6 behaviour depends on (ALS
// shuffle-heavy, K-means map-heavy over a cached input), and CNN/RNN as
// synchronous training jobs.
package workloads

import (
	"fmt"

	"deflation/internal/spark"
)

// Params sizes the batch workloads. The defaults mirror the paper's setup:
// 8 worker VMs with 4 vCPUs each.
type Params struct {
	Workers    int // default 8
	Slots      int // per worker, default 4
	Partitions int // default 64
	Iterations int // default 6
	// SerialSecs is the driver overhead per stage (default 6s) — the
	// source of sublinear executor scaling.
	SerialSecs float64
	// ExecMemMB is executor storage memory (default 8192).
	ExecMemMB float64
}

func (p Params) withDefaults() Params {
	if p.Workers == 0 {
		p.Workers = 8
	}
	if p.Slots == 0 {
		p.Slots = 4
	}
	if p.Partitions == 0 {
		p.Partitions = 64
	}
	if p.Iterations == 0 {
		p.Iterations = 6
	}
	if p.SerialSecs == 0 {
		p.SerialSecs = 2.5
	}
	if p.ExecMemMB == 0 {
		p.ExecMemMB = 8192
	}
	return p
}

// Cluster builds a fresh executor cluster matching the params.
func (p Params) Cluster() (*spark.Cluster, error) {
	p = p.withDefaults()
	return spark.NewCluster(p.Workers, p.Slots, p.ExecMemMB)
}

// ALS builds the mllib Alternating-Least-Squares job (100 GB ratings):
// every iteration alternates two shuffles (solve user factors from item
// factors and vice versa), making the DAG shuffle-heavy — recomputation
// after losing executors is expensive, so the paper's policy picks VM-level
// deflation for it (Fig. 6a).
func ALS(p Params) (*spark.BatchJob, error) {
	p = p.withDefaults()
	ctx := spark.NewContext()
	ratings := ctx.Source("ratings", p.Partitions, 4.0, 80)
	cur := ratings.Map("blockify", 1.5, 60)
	for i := 0; i < p.Iterations; i++ {
		cur = cur.Shuffle(fmt.Sprintf("user-solve-%d", i), p.Partitions, 3.2, 40)
		cur = cur.Shuffle(fmt.Sprintf("item-solve-%d", i), p.Partitions, 3.2, 40)
	}
	final := cur.Shuffle("rmse", 8, 0.3, 1)
	return spark.NewBatchJob("als", final, p.SerialSecs)
}

// KMeans builds the mllib dense K-means job (50 GB points): the input is
// cached, iterations are dominated by the assignment map with only a tiny
// center-aggregation shuffle — recomputation after executor loss is cheap,
// so self-deflation wins (Fig. 6b).
func KMeans(p Params) (*spark.BatchJob, error) {
	p = p.withDefaults()
	ctx := spark.NewContext()
	points := ctx.Source("points", p.Partitions, 2.5, 60).Cache()
	var centers *spark.RDD
	for i := 0; i < p.Iterations; i++ {
		deps := []spark.Dep{{Parent: points}}
		if centers != nil {
			// Each iteration reuses the cached points and consumes the
			// previous iteration's centers (a tiny shuffled dataset).
			deps = append(deps, spark.Dep{Parent: centers, Broadcast: true})
		}
		assign := ctx.Transform(fmt.Sprintf("assign-%d", i), p.Partitions, 2.2, 1, deps...)
		centers = assign.Shuffle(fmt.Sprintf("update-centers-%d", i), 8, 0.15, 1).CollectToDriver()
	}
	return spark.NewBatchJob("kmeans", centers, p.SerialSecs)
}

// CNN builds the BigDL ResNet/CIFAR-10 training job (batch size 720,
// depth 20): synchronous iterations on 8 workers.
func CNN(checkpointing bool) *spark.TrainingJob {
	j := &spark.TrainingJob{
		Name:           "cnn",
		Iterations:     80,
		IterSecs:       30,
		Workers:        8,
		RecordsPerIter: 720 * 30, // ≈720 records/s at full speed
		RestartSecs:    90,
		Curve:          spark.CurveCNNTraining,
	}
	if checkpointing {
		j.CheckpointEvery = 10
		j.CheckpointOverhead = 0.20
	}
	return j
}

// RNN builds the BigDL recurrent-network job over the Shakespeare corpus.
func RNN(checkpointing bool) *spark.TrainingJob {
	j := &spark.TrainingJob{
		Name:           "rnn",
		Iterations:     80,
		IterSecs:       24,
		Workers:        8,
		RecordsPerIter: 4096,
		RestartSecs:    90,
		Curve:          spark.CurveRNNTraining,
	}
	if checkpointing {
		j.CheckpointEvery = 10
		j.CheckpointOverhead = 0.20
	}
	return j
}
