package workloads

import (
	"testing"

	"deflation/internal/spark"
)

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Workers != 8 || p.Slots != 4 || p.Partitions != 64 || p.Iterations != 6 {
		t.Errorf("defaults = %+v", p)
	}
	c, err := Params{}.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Executors()) != 8 {
		t.Errorf("cluster size = %d", len(c.Executors()))
	}
}

func TestALSStructure(t *testing.T) {
	j, err := ALS(Params{})
	if err != nil {
		t.Fatal(err)
	}
	// 1 input stage + 12 solve stages + rmse.
	if got := len(j.Stages()); got != 14 {
		t.Errorf("ALS stages = %d, want 14", got)
	}
	// Shuffle-heavy: nearly all stages consume shuffles.
	if f := j.ShuffleWorkFraction(); f < 0.7 {
		t.Errorf("ALS shuffle work fraction = %g, want ≥ 0.7", f)
	}
	if j.ShuffleBytesMB() < 10000 {
		t.Errorf("ALS shuffle volume = %g MB, want large", j.ShuffleBytesMB())
	}
}

func TestKMeansStructure(t *testing.T) {
	j, err := KMeans(Params{})
	if err != nil {
		t.Fatal(err)
	}
	// points + 6×(assign, update).
	if got := len(j.Stages()); got != 13 {
		t.Errorf("KMeans stages = %d, want 13", got)
	}
	// Assign stages must not be shuffle consumers (broadcast centers).
	shuffles := 0
	for _, s := range j.Stages() {
		if s.IsShuffle() {
			shuffles++
		}
	}
	if shuffles != 6 {
		t.Errorf("KMeans shuffle stages = %d, want 6 (updates only)", shuffles)
	}
	// Tiny shuffle volume compared to ALS.
	als, _ := ALS(Params{})
	if j.ShuffleBytesMB() >= als.ShuffleBytesMB()/10 {
		t.Errorf("KMeans shuffles %g MB vs ALS %g MB: not map-heavy",
			j.ShuffleBytesMB(), als.ShuffleBytesMB())
	}
}

func TestHeuristicSeparatesWorkloads(t *testing.T) {
	// The policy's r heuristic must clearly separate the two DAG classes.
	als, _ := ALS(Params{})
	km, _ := KMeans(Params{})
	ra := als.ShuffleTimeFraction(0)
	rk := km.ShuffleTimeFraction(0)
	if rk >= ra {
		t.Errorf("r(kmeans)=%g not below r(als)=%g", rk, ra)
	}
}

func TestTrainingJobs(t *testing.T) {
	for _, tc := range []struct {
		name string
		job  *spark.TrainingJob
		ckpt bool
	}{
		{"cnn", CNN(false), false},
		{"cnn-ckpt", CNN(true), true},
		{"rnn", RNN(false), false},
		{"rnn-ckpt", RNN(true), true},
	} {
		if err := tc.job.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
		if (tc.job.CheckpointEvery > 0) != tc.ckpt {
			t.Errorf("%s: checkpointing = %d, want enabled=%v", tc.name, tc.job.CheckpointEvery, tc.ckpt)
		}
	}
}

func TestWorkloadBaselinesRun(t *testing.T) {
	for _, build := range []func(Params) (*spark.BatchJob, error){ALS, KMeans} {
		c, err := Params{}.Cluster()
		if err != nil {
			t.Fatal(err)
		}
		j, err := build(Params{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := spark.RunBatchScenario(c, j, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.DurationSecs <= 0 || res.RecomputeSecs != 0 {
			t.Errorf("%s baseline: %+v", j.Name, res.Result)
		}
	}
}
