package spark

import (
	"math"
	"strings"
	"testing"
)

func mustCluster(t *testing.T, n, slots int, memMB float64) *Cluster {
	t.Helper()
	c, err := NewCluster(n, slots, memMB)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustRun(t *testing.T, c *Cluster, j *BatchJob, hook ProgressHook) Result {
	t.Helper()
	e, err := NewEngine(c, j)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(hook)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(0, 4, 100); err == nil {
		t.Error("zero executors accepted")
	}
	if _, err := NewCluster(2, 0, 100); err == nil {
		t.Error("zero slots accepted")
	}
}

func TestClusterLookup(t *testing.T) {
	c := mustCluster(t, 3, 2, 100)
	if x := c.Executor("exec-1"); x == nil || x.ID != "exec-1" {
		t.Error("lookup failed")
	}
	if c.Executor("nope") != nil {
		t.Error("bogus lookup succeeded")
	}
	if len(c.Alive()) != 3 || len(c.Executors()) != 3 {
		t.Error("counts wrong")
	}
}

func TestEngineValidation(t *testing.T) {
	c := mustCluster(t, 1, 1, 100)
	if _, err := NewEngine(nil, chainJob(t)); err == nil {
		t.Error("nil cluster accepted")
	}
	if _, err := NewEngine(c, nil); err == nil {
		t.Error("nil job accepted")
	}
}

func TestRunBaselineDeterministic(t *testing.T) {
	r1 := mustRun(t, mustCluster(t, 2, 2, 1000), chainJob(t), nil)
	r2 := mustRun(t, mustCluster(t, 2, 2, 1000), chainJob(t), nil)
	if r1 != r2 {
		t.Errorf("nondeterministic runs: %+v vs %+v", r1, r2)
	}
	if r1.RecomputeSecs != 0 {
		t.Errorf("baseline recompute = %g, want 0", r1.RecomputeSecs)
	}
	if r1.TasksRun != 12 { // 8 map-side + 4 reduce-side
		t.Errorf("tasks = %d, want 12", r1.TasksRun)
	}
	if r1.StageRuns != 2 {
		t.Errorf("stage runs = %d, want 2", r1.StageRuns)
	}
}

func TestWaveScheduling(t *testing.T) {
	// 8 tasks of 1.5s on 2 execs × 2 slots: 2 waves each → 3s parallel,
	// plus serial 1 and shuffle-move time on stage 2.
	r := mustRun(t, mustCluster(t, 2, 2, 1000), chainJob(t), nil)
	// map: 2 waves × 1.5 + 1 = 4; reduce: 4 tasks on 4 slots = 1 wave ×
	// 2.25 + 1 + move(64MB/1000) = 3.314.
	want := 4.0 + 3.25 + 64.0/1000
	if math.Abs(r.DurationSecs-want) > 1e-9 {
		t.Errorf("duration = %g, want %g", r.DurationSecs, want)
	}
}

func TestStragglerDominatesStage(t *testing.T) {
	fast := mustRun(t, mustCluster(t, 4, 2, 1000), chainJob(t), nil)

	slow := mustCluster(t, 4, 2, 1000)
	slow.SetSpeed(map[string]float64{"exec-3": 0.25})
	r := mustRun(t, slow, chainJob(t), nil)
	if r.DurationSecs <= fast.DurationSecs {
		t.Errorf("straggler run %g not slower than %g", r.DurationSecs, fast.DurationSecs)
	}
	// The greedy scheduler offloads most work, so the slowdown is bounded.
	if r.DurationSecs > fast.DurationSecs*4 {
		t.Errorf("straggler run %g unreasonably slow vs %g", r.DurationSecs, fast.DurationSecs)
	}
}

func TestProgressMonotonic(t *testing.T) {
	var progress []float64
	mustRun(t, mustCluster(t, 2, 2, 1000), chainJob(t), func(p float64, _ *Engine) {
		progress = append(progress, p)
	})
	if len(progress) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(progress))
	}
	if progress[0] <= 0 || progress[0] >= 1 {
		t.Errorf("mid progress = %g", progress[0])
	}
	if progress[1] != 1 {
		t.Errorf("final progress = %g, want 1", progress[1])
	}
}

func TestBlacklistTriggersLineageRecompute(t *testing.T) {
	ctx := NewContext()
	final := ctx.Source("src", 8, 1.0, 10).
		Shuffle("s1", 8, 1.0, 10).
		Shuffle("s2", 8, 1.0, 10).
		Shuffle("s3", 8, 1.0, 10)
	j, err := NewBatchJob("deep", final, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	c := mustCluster(t, 4, 2, 1000)
	e, err := NewEngine(c, j)
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	res, err := e.Run(func(p float64, e *Engine) {
		if !fired && p >= 0.5 {
			fired = true
			e.Blacklist([]string{"exec-0", "exec-1"})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RecomputeSecs <= 0 {
		t.Error("no recomputation after losing half the executors mid-job")
	}
	base := mustRun(t, mustCluster(t, 4, 2, 1000), mustJob(t, "deep"), nil)
	_ = base
	if res.TasksRun <= 32 { // 4 stages × 8 tasks = 32 without recompute
		t.Errorf("tasks = %d, want > 32 (recomputed)", res.TasksRun)
	}
}

// mustJob rebuilds the deep job used above.
func mustJob(t *testing.T, _ string) *BatchJob {
	t.Helper()
	ctx := NewContext()
	final := ctx.Source("src", 8, 1.0, 10).
		Shuffle("s1", 8, 1.0, 10).
		Shuffle("s2", 8, 1.0, 10).
		Shuffle("s3", 8, 1.0, 10)
	j, err := NewBatchJob("deep", final, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestDriverHeldOutputsSurviveLoss(t *testing.T) {
	ctx := NewContext()
	small := ctx.Source("centers", 4, 0.5, 1).CollectToDriver()
	big := ctx.Source("points", 8, 1.0, 10).Cache()
	final := ctx.Transform("use", 8, 0.5, 1,
		Dep{Parent: big}, Dep{Parent: small, Broadcast: true}).
		Shuffle("agg", 4, 0.2, 1)
	j, err := NewBatchJob("dh", final, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := mustCluster(t, 4, 2, 1000)
	e, err := NewEngine(c, j)
	if err != nil {
		t.Fatal(err)
	}
	kills := 0
	res, err := e.Run(func(p float64, e *Engine) {
		if kills == 0 && p >= 0.6 {
			kills++
			e.Blacklist([]string{"exec-0"})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cached "points" partitions on exec-0 may be recomputed, but the
	// driver-held "centers" never are: estimate for killing everything
	// else should exclude the centers stage.
	_ = res
	est := e.EstimateRecomputeWork([]string{"exec-1", "exec-2", "exec-3"})
	// centers work = 4×0.5 = 2; the estimate must not include it.
	if est > j.TotalPlannedWork() {
		t.Errorf("estimate %g exceeds total work", est)
	}
}

func TestNoExecutorsError(t *testing.T) {
	c := mustCluster(t, 1, 2, 1000)
	e, err := NewEngine(c, chainJob(t))
	if err != nil {
		t.Fatal(err)
	}
	e.Blacklist([]string{"exec-0"})
	if _, err := e.Run(nil); err == nil || !strings.Contains(err.Error(), "no live executors") {
		t.Errorf("err = %v, want no-live-executors", err)
	}
}

func TestCacheEviction(t *testing.T) {
	// Tiny storage memory: caching 8 × 10MB partitions in 15MB evicts.
	ctx := NewContext()
	cached := ctx.Source("src", 8, 1.0, 10).Cache()
	final := cached.Map("use", 0.1, 1).Shuffle("agg", 2, 0.1, 1)
	j, err := NewBatchJob("evict", final, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := mustCluster(t, 1, 4, 15)
	e, err := NewEngine(c, j)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(nil); err != nil {
		t.Fatal(err)
	}
	x := c.Executor("exec-0")
	if x.UsedMemMB() > 15+10 {
		t.Errorf("storage memory %g far exceeds cap 15", x.UsedMemMB())
	}
}

func TestEstimateRecomputeWork(t *testing.T) {
	j := chainJob(t)
	c := mustCluster(t, 2, 2, 1000)
	e, err := NewEngine(c, j)
	if err != nil {
		t.Fatal(err)
	}
	// Before anything runs, killing executors costs nothing extra for
	// remaining stages beyond what is already missing... everything is
	// missing, so the estimate equals full upstream work.
	est0 := e.EstimateRecomputeWork(nil)
	if est0 <= 0 {
		t.Errorf("pre-run estimate = %g, want > 0 (nothing computed yet)", est0)
	}
	if _, err := e.Run(nil); err != nil {
		t.Fatal(err)
	}
	// After completion, nothing remains to run: estimate 0.
	if est := e.EstimateRecomputeWork([]string{"exec-0", "exec-1"}); est != 0 {
		t.Errorf("post-run estimate = %g, want 0", est)
	}
}

func TestBlacklistIdempotentAndUnknown(t *testing.T) {
	c := mustCluster(t, 2, 2, 1000)
	e, err := NewEngine(c, chainJob(t))
	if err != nil {
		t.Fatal(err)
	}
	e.Blacklist([]string{"exec-0", "exec-0", "ghost"})
	if len(c.Alive()) != 1 {
		t.Errorf("alive = %d, want 1", len(c.Alive()))
	}
}

func TestTraceRecordsStageRuns(t *testing.T) {
	c := mustCluster(t, 4, 2, 1000)
	j := mustJob(t, "deep")
	e, err := NewEngine(c, j)
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	if _, err := e.Run(func(p float64, e *Engine) {
		if !fired && p >= 0.5 {
			fired = true
			e.Blacklist([]string{"exec-0", "exec-1"})
		}
	}); err != nil {
		t.Fatal(err)
	}
	trace := e.Trace()
	if len(trace) <= 4 {
		t.Fatalf("trace entries = %d, want > 4 (recomputations included)", len(trace))
	}
	sawRecompute := false
	var sum float64
	for _, sr := range trace {
		if sr.Parts <= 0 || sr.ElapsedSecs <= 0 || sr.Name == "" {
			t.Errorf("bad trace entry: %+v", sr)
		}
		if sr.Recompute {
			sawRecompute = true
		}
		sum += sr.ElapsedSecs
	}
	if !sawRecompute {
		t.Error("no recompute entries after executor loss")
	}
	if sum <= 0 || sum > e.NowSecs() {
		t.Errorf("trace time %g inconsistent with engine time %g", sum, e.NowSecs())
	}
}
