package spark

import (
	"math"
	"testing"
)

// chainJob builds src(8) -> map -> shuffle(4) -> map -> result.
func chainJob(t *testing.T) *BatchJob {
	t.Helper()
	ctx := NewContext()
	final := ctx.Source("src", 8, 1.0, 10).
		Map("parse", 0.5, 8).
		Shuffle("agg", 4, 2.0, 4).
		Map("post", 0.25, 4)
	j, err := NewBatchJob("chain", final, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestStageSplitAtShuffle(t *testing.T) {
	j := chainJob(t)
	stages := j.Stages()
	if len(stages) != 2 {
		t.Fatalf("stages = %d, want 2 (map side, reduce side)", len(stages))
	}
	mapSide, reduceSide := stages[0], stages[1]
	// Map side: src + parse pipelined, 8 tasks of 1.5s.
	if mapSide.Tasks() != 8 || math.Abs(mapSide.WorkPerTask()-1.5) > 1e-12 {
		t.Errorf("map side: %d tasks × %g s", mapSide.Tasks(), mapSide.WorkPerTask())
	}
	if mapSide.IsShuffle() {
		t.Error("map side marked as shuffle consumer")
	}
	// Reduce side: agg + post pipelined, 4 tasks of 2.25s, wide parent.
	if reduceSide.Tasks() != 4 || math.Abs(reduceSide.WorkPerTask()-2.25) > 1e-12 {
		t.Errorf("reduce side: %d tasks × %g s", reduceSide.Tasks(), reduceSide.WorkPerTask())
	}
	if !reduceSide.IsShuffle() {
		t.Error("reduce side not marked as shuffle consumer")
	}
	if len(reduceSide.Parents()) != 1 || !reduceSide.Parents()[0].AllParts ||
		!reduceSide.Parents()[0].Shuffle || reduceSide.Parents()[0].Stage != mapSide {
		t.Errorf("reduce parents wrong: %+v", reduceSide.Parents())
	}
	if j.FinalStage() != reduceSide {
		t.Error("final stage wrong")
	}
}

func TestStageSplitAtCache(t *testing.T) {
	ctx := NewContext()
	cached := ctx.Source("src", 8, 1.0, 10).Cache()
	final := cached.Map("use", 0.5, 1)
	j, err := NewBatchJob("c", final, 0)
	if err != nil {
		t.Fatal(err)
	}
	stages := j.Stages()
	if len(stages) != 2 {
		t.Fatalf("stages = %d, want 2 (cache boundary)", len(stages))
	}
	if !stages[0].cacheOutput {
		t.Error("cached stage not marked cacheOutput")
	}
	dep := stages[1].Parents()[0]
	if dep.AllParts || dep.Shuffle {
		t.Errorf("cache dep should be narrow non-shuffle: %+v", dep)
	}
}

func TestBroadcastDep(t *testing.T) {
	ctx := NewContext()
	small := ctx.Source("small", 2, 0.1, 1).CollectToDriver()
	big := ctx.Source("big", 8, 1.0, 10)
	final := ctx.Transform("use", 8, 0.5, 1,
		Dep{Parent: big}, Dep{Parent: small, Broadcast: true})
	j, err := NewBatchJob("b", final, 0)
	if err != nil {
		t.Fatal(err)
	}
	fs := j.FinalStage()
	if fs.IsShuffle() {
		t.Error("broadcast dep counted as shuffle")
	}
	var bcast *StageDep
	for i := range fs.Parents() {
		if fs.Parents()[i].AllParts {
			bcast = &fs.Parents()[i]
		}
	}
	if bcast == nil || bcast.Shuffle {
		t.Errorf("broadcast dep wrong: %+v", fs.Parents())
	}
	// big is pipelined into the final stage (narrow, uncached).
	if math.Abs(fs.WorkPerTask()-1.5) > 1e-12 {
		t.Errorf("work per task = %g, want 1.5 (big pipelined)", fs.WorkPerTask())
	}
	if !stageByID(j, small.ID()).driverHeld {
		t.Error("driver-held stage not marked")
	}
}

func stageByID(j *BatchJob, id int) *Stage {
	for _, s := range j.Stages() {
		if s.ID() == id {
			return s
		}
	}
	return nil
}

func TestTopologicalOrder(t *testing.T) {
	ctx := NewContext()
	a := ctx.Source("a", 4, 1, 1)
	b := ctx.Source("b", 4, 1, 1)
	final := a.Shuffle("sa", 4, 1, 1).Join(b.Shuffle("sb", 4, 1, 1), "j", 2, 1, 1)
	j, err := NewBatchJob("diamond", final, 0)
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, s := range j.Stages() {
		pos[s.ID()] = i
	}
	for _, s := range j.Stages() {
		for _, dep := range s.Parents() {
			if pos[dep.Stage.ID()] >= pos[s.ID()] {
				t.Errorf("parent %q not before child %q", dep.Stage.Name(), s.Name())
			}
		}
	}
}

func TestPlannedWorkAndShuffleMetrics(t *testing.T) {
	j := chainJob(t)
	// map: 8×1.5+1, reduce: 4×2.25+1.
	want := 8*1.5 + 1 + 4*2.25 + 1
	if got := j.TotalPlannedWork(); math.Abs(got-want) > 1e-9 {
		t.Errorf("TotalPlannedWork = %g, want %g", got, want)
	}
	if got := j.ShuffleBytesMB(); got != 8*8 {
		t.Errorf("ShuffleBytesMB = %g, want 64 (8 parts × 8MB)", got)
	}
	swf := j.ShuffleWorkFraction()
	if swf <= 0 || swf >= 1 {
		t.Errorf("ShuffleWorkFraction = %g", swf)
	}
	stf := j.ShuffleTimeFraction(0)
	if stf <= 0 || stf >= 0.5 {
		t.Errorf("ShuffleTimeFraction = %g, want small positive", stf)
	}
	// More bandwidth, smaller sync fraction.
	if j.ShuffleTimeFraction(10000) >= stf {
		t.Error("shuffle fraction not decreasing in bandwidth")
	}
}

func TestNewBatchJobValidation(t *testing.T) {
	if _, err := NewBatchJob("x", nil, 0); err == nil {
		t.Error("nil final accepted")
	}
	ctx := NewContext()
	if _, err := NewBatchJob("x", ctx.Source("s", 1, 1, 1), -1); err == nil {
		t.Error("negative serial accepted")
	}
}
