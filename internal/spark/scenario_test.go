package spark

import (
	"testing"
)

// shuffleHeavyJob mimics ALS structure: long chain of big shuffles.
func shuffleHeavyJob(t *testing.T) *BatchJob {
	t.Helper()
	ctx := NewContext()
	cur := ctx.Source("in", 32, 2.0, 40)
	for i := 0; i < 8; i++ {
		cur = cur.Shuffle("solve", 32, 2.0, 40)
	}
	j, err := NewBatchJob("heavy", cur, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// mapHeavyJob mimics K-means structure: cached input, iterated maps with
// tiny driver-held aggregations.
func mapHeavyJob(t *testing.T) *BatchJob {
	t.Helper()
	ctx := NewContext()
	points := ctx.Source("points", 32, 2.0, 40).Cache()
	var centers *RDD
	for i := 0; i < 8; i++ {
		deps := []Dep{{Parent: points}}
		if centers != nil {
			deps = append(deps, Dep{Parent: centers, Broadcast: true})
		}
		assign := ctx.Transform("assign", 32, 2.0, 1, deps...)
		centers = assign.Shuffle("update", 4, 0.1, 1).CollectToDriver()
	}
	j, err := NewBatchJob("maps", centers, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func jitter(n int, d float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		if i%2 == 0 {
			out[i] = d * 1.1
		} else {
			out[i] = d * 0.9
		}
		if out[i] >= 0.95 {
			out[i] = 0.95
		}
	}
	return out
}

func runScenario(t *testing.T, build func(*testing.T) *BatchJob, mech PressureMechanism, d float64) ScenarioResult {
	t.Helper()
	c := mustCluster(t, 8, 4, 8192)
	res, err := RunBatchScenario(c, build(t), &PressureSpec{
		AtProgress: 0.5, Deflation: jitter(8, d), Mechanism: mech, Estimator: EstimatorHeuristic,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fired {
		t.Fatal("pressure did not fire")
	}
	return res
}

func baseline(t *testing.T, build func(*testing.T) *BatchJob) float64 {
	t.Helper()
	c := mustCluster(t, 8, 4, 8192)
	res, err := RunBatchScenario(c, build(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.DurationSecs
}

func TestScenarioOrderingShuffleHeavy(t *testing.T) {
	// Fig. 6a shape: VM < Self < Preemption; policy picks VM-level.
	base := baseline(t, shuffleHeavyJob)
	vm := runScenario(t, shuffleHeavyJob, PressureVMLevel, 0.5)
	self := runScenario(t, shuffleHeavyJob, PressureSelf, 0.5)
	pre := runScenario(t, shuffleHeavyJob, PressurePreempt, 0.5)
	pol := runScenario(t, shuffleHeavyJob, PressurePolicy, 0.5)

	nv, ns, np := vm.DurationSecs/base, self.DurationSecs/base, pre.DurationSecs/base
	if !(nv < ns && ns < np) {
		t.Errorf("ordering violated: VM %.2f, Self %.2f, Preempt %.2f", nv, ns, np)
	}
	if nv < 1.2 || nv > 2.0 {
		t.Errorf("VM-level at 50%% = %.2f, want ≈1.5", nv)
	}
	if pol.Chosen != PressureVMLevel {
		t.Errorf("policy chose %v for shuffle-heavy job, want VM", pol.Chosen)
	}
	if self.RecomputeSecs <= 0 {
		t.Error("self-deflation caused no recomputation on a shuffle-heavy job")
	}
	// Self beats preemption (restart overhead), by a modest margin (§6.2:
	// ≈15%).
	if np/ns < 1.03 {
		t.Errorf("preemption %.2f not meaningfully worse than self %.2f", np, ns)
	}
}

func TestScenarioOrderingMapHeavy(t *testing.T) {
	// Fig. 6b shape: Self ≤ VM; policy picks self.
	base := baseline(t, mapHeavyJob)
	vm := runScenario(t, mapHeavyJob, PressureVMLevel, 0.5)
	self := runScenario(t, mapHeavyJob, PressureSelf, 0.5)
	pol := runScenario(t, mapHeavyJob, PressurePolicy, 0.5)

	nv, ns := vm.DurationSecs/base, self.DurationSecs/base
	if ns >= nv {
		t.Errorf("self %.2f not better than VM %.2f for map-heavy job", ns, nv)
	}
	if ns < 1.1 || ns > 1.8 {
		t.Errorf("self at 50%% = %.2f, want ≈1.4", ns)
	}
	if pol.Chosen != PressureSelf {
		t.Errorf("policy chose %v for map-heavy job, want Self", pol.Chosen)
	}
}

func TestScenarioDeflationPointCrossover(t *testing.T) {
	// Fig. 7a shape: early deflation favors self (little to recompute);
	// late deflation favors VM-level.
	relAt := func(mech PressureMechanism, at float64) float64 {
		c := mustCluster(t, 8, 4, 8192)
		res, err := RunBatchScenario(c, shuffleHeavyJob(t), &PressureSpec{
			AtProgress: at, Deflation: jitter(8, 0.5), Mechanism: mech,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.DurationSecs / baseline(t, shuffleHeavyJob)
	}
	earlySelf, earlyVM := relAt(PressureSelf, 0.15), relAt(PressureVMLevel, 0.15)
	lateSelf, lateVM := relAt(PressureSelf, 0.7), relAt(PressureVMLevel, 0.7)
	if earlySelf >= earlyVM {
		t.Errorf("early: self %.2f not better than VM %.2f", earlySelf, earlyVM)
	}
	if lateSelf <= lateVM {
		t.Errorf("late: self %.2f not worse than VM %.2f", lateSelf, lateVM)
	}
}

func TestScenarioOverheadDecreasesWithLaterDeflation(t *testing.T) {
	// Fig. 7a: "the overhead trends downwards for both techniques since a
	// smaller fraction of the job needs to run with reduced resources."
	prev := 10.0
	for _, at := range []float64{0.2, 0.45, 0.7} {
		c := mustCluster(t, 8, 4, 8192)
		res, err := RunBatchScenario(c, shuffleHeavyJob(t), &PressureSpec{
			AtProgress: at, Deflation: jitter(8, 0.5), Mechanism: PressureVMLevel,
		})
		if err != nil {
			t.Fatal(err)
		}
		n := res.DurationSecs / baseline(t, shuffleHeavyJob)
		if n >= prev {
			t.Errorf("VM-level overhead at progress %.2f = %.2f, not below %.2f", at, n, prev)
		}
		prev = n
	}
}

func TestScenarioNoPressureMatchesBaseline(t *testing.T) {
	c := mustCluster(t, 8, 4, 8192)
	res, err := RunBatchScenario(c, shuffleHeavyJob(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fired {
		t.Error("pressure fired with nil spec")
	}
	if res.DurationSecs != baseline(t, shuffleHeavyJob) {
		t.Error("nil-pressure run differs from baseline")
	}
}

func TestVMLevelSpeedFactor(t *testing.T) {
	if VMLevelSpeedFactor(0) != 1 {
		t.Error("zero deflation has a penalty")
	}
	if VMLevelSpeedFactor(1) != 0.01 {
		t.Error("full deflation floor wrong")
	}
	// Deflating 50% costs more than 50% of speed (overcommit residue).
	f := VMLevelSpeedFactor(0.5)
	if f >= 0.5 || f <= 0.2 {
		t.Errorf("factor at 0.5 = %g, want in (0.2, 0.5)", f)
	}
	if VMLevelSpeedFactor(0.25) <= f {
		t.Error("factor not monotone")
	}
}

func TestTrainingScenarioShapes(t *testing.T) {
	// Fig. 6c shape: VM-level mild, kill-based mechanisms harsh, policy
	// picks VM-level.
	cnn := func(ckpt bool) *TrainingJob {
		j := &TrainingJob{Name: "cnn", Iterations: 80, IterSecs: 30, Workers: 8,
			RecordsPerIter: 720 * 30, RestartSecs: 90, Curve: CurveCNNTraining}
		if ckpt {
			j.CheckpointEvery = 10
			j.CheckpointOverhead = 0.2
		}
		return j
	}
	base, _, err := RunTrainingScenario(cnn(false), nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := func(m PressureMechanism) *PressureSpec {
		return &PressureSpec{AtProgress: 0.5, Deflation: jitter(8, 0.5), Mechanism: m}
	}
	vmEl, chosen, err := RunTrainingScenario(cnn(false), spec(PressureVMLevel))
	if err != nil || chosen != PressureVMLevel {
		t.Fatalf("vm: %v %v", err, chosen)
	}
	selfEl, _, err := RunTrainingScenario(cnn(true), spec(PressureSelf))
	if err != nil {
		t.Fatal(err)
	}
	preEl, _, err := RunTrainingScenario(cnn(true), spec(PressurePreempt))
	if err != nil {
		t.Fatal(err)
	}
	polEl, polChosen, err := RunTrainingScenario(cnn(false), spec(PressurePolicy))
	if err != nil {
		t.Fatal(err)
	}

	nv, ns, np := vmEl/base, selfEl/base, preEl/base
	if nv < 1.1 || nv > 1.45 {
		t.Errorf("CNN VM-level at 50%% = %.2f, want ≈1.2-1.3 (paper: 20%%)", nv)
	}
	if ns <= nv || np <= ns {
		t.Errorf("ordering violated: VM %.2f, Self %.2f, Preempt %.2f", nv, ns, np)
	}
	// Paper: deflation ≈2× better than preemption for CNN.
	if np/nv < 1.5 {
		t.Errorf("preempt/VM ratio = %.2f, want ≥1.5 (paper ≈2)", np/nv)
	}
	if polChosen != PressureVMLevel {
		t.Errorf("policy chose %v for training, want VM", polChosen)
	}
	_ = polEl
}
