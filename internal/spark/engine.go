package spark

import (
	"fmt"
	"math"
)

// Executor models a Spark executor hosted on one worker VM: a number of
// task slots, a per-slot speed factor (1.0 = an undeflated core; VM-level
// deflation lowers it), and storage memory for cached partitions.
type Executor struct {
	ID     string
	Slots  int
	Speed  float64 // per-slot work rate; <1 under VM-level deflation
	MemMB  float64 // storage memory for cached RDD partitions
	alive  bool
	usedMB float64
	// cacheLRU orders this executor's cached partitions, oldest first.
	cacheLRU []partKey
}

// Alive reports whether the executor is schedulable.
func (x *Executor) Alive() bool { return x.alive }

// UsedMemMB returns the storage memory in use.
func (x *Executor) UsedMemMB() float64 { return x.usedMB }

// Cluster is the set of executors available to the engine, one per worker
// VM.
type Cluster struct {
	execs []*Executor
}

// NewCluster creates n executors ("exec-0".."exec-n-1") with the given
// slots and storage memory each, all at speed 1.0.
func NewCluster(n, slots int, memMB float64) (*Cluster, error) {
	if n <= 0 || slots <= 0 {
		return nil, fmt.Errorf("spark: cluster needs positive executors and slots, got %d/%d", n, slots)
	}
	c := &Cluster{}
	for i := 0; i < n; i++ {
		c.execs = append(c.execs, &Executor{
			ID: fmt.Sprintf("exec-%d", i), Slots: slots, Speed: 1, MemMB: memMB, alive: true,
		})
	}
	return c, nil
}

// Executors returns all executors (alive and dead), in stable order.
func (c *Cluster) Executors() []*Executor { return c.execs }

// Alive returns the live executors in stable order.
func (c *Cluster) Alive() []*Executor {
	var out []*Executor
	for _, x := range c.execs {
		if x.alive {
			out = append(out, x)
		}
	}
	return out
}

// Executor returns the executor with the given id, or nil.
func (c *Cluster) Executor(id string) *Executor {
	for _, x := range c.execs {
		if x.ID == id {
			return x
		}
	}
	return nil
}

// SetSpeed applies a per-slot speed factor to every executor — how
// VM-level deflation manifests to the engine (deflated VMs run tasks
// slower; stragglers emerge at stage barriers).
func (c *Cluster) SetSpeed(factors map[string]float64) {
	for id, f := range factors {
		if x := c.Executor(id); x != nil {
			x.Speed = f
		}
	}
}

// partKey identifies one partition of one stage's output.
type partKey struct {
	stage int
	part  int
}

// Engine executes batch jobs over a cluster, tracking output locations so
// that lost partitions (dead executors, evicted cache) are recomputed
// through their lineage — Spark's recovery mechanism, and the source of
// self-deflation's short-term cost (§4.1).
type Engine struct {
	cluster *Cluster
	job     *BatchJob

	// outputs[k] = executor holding partition k, if computed.
	outputs map[partKey]*Executor

	nowSecs       float64
	syncSecs      float64 // time spent moving shuffle data
	recomputeSecs float64
	tasksRun      int
	stageRuns     int
	netMBps       float64 // aggregate shuffle bandwidth

	completedPlanned float64 // first-run planned work, for progress
	firstRun         map[int]bool
	driverHeld       map[int]bool // stages whose outputs live at the driver
	stageCursor      int          // index of next top-level stage
	trace            []StageRun
}

// NewEngine prepares an engine to run job on cluster.
func NewEngine(cluster *Cluster, job *BatchJob) (*Engine, error) {
	if cluster == nil || job == nil {
		return nil, fmt.Errorf("spark: engine needs a cluster and a job")
	}
	driverHeld := make(map[int]bool)
	for _, s := range job.Stages() {
		if s.driverHeld {
			driverHeld[s.id] = true
		}
	}
	return &Engine{
		cluster:    cluster,
		job:        job,
		outputs:    make(map[partKey]*Executor),
		firstRun:   make(map[int]bool),
		driverHeld: driverHeld,
		netMBps:    DefaultShuffleNetMBps,
	}, nil
}

// ProgressHook is invoked after each top-level stage completes, with the
// fraction of planned work done. It is the injection point for resource
// pressure (deflation, preemption) in experiments.
type ProgressHook func(progress float64, e *Engine)

// StageRun records one stage execution for post-run analysis.
type StageRun struct {
	Name        string
	Parts       int
	ElapsedSecs float64
	Recompute   bool
}

// Result summarizes a job run.
type Result struct {
	DurationSecs  float64
	RecomputeSecs float64
	TasksRun      int
	StageRuns     int
}

// Trace returns the engine's per-stage execution log (first runs and
// recomputations, in order).
func (e *Engine) Trace() []StageRun { return e.trace }

// Run executes the job's stages in order, invoking hook (if non-nil) after
// every top-level stage.
func (e *Engine) Run(hook ProgressHook) (Result, error) {
	stages := e.job.Stages()
	for e.stageCursor < len(stages) {
		s := stages[e.stageCursor]
		if err := e.runStage(s, allParts(s.tasks), false); err != nil {
			return Result{}, err
		}
		e.stageCursor++
		if hook != nil {
			hook(e.Progress(), e)
		}
	}
	return Result{
		DurationSecs:  e.nowSecs,
		RecomputeSecs: e.recomputeSecs,
		TasksRun:      e.tasksRun,
		StageRuns:     e.stageRuns,
	}, nil
}

// Progress returns the fraction of planned work completed (first runs
// only; recomputation does not advance progress).
func (e *Engine) Progress() float64 {
	total := e.job.TotalPlannedWork()
	if total == 0 {
		return 1
	}
	return e.completedPlanned / total
}

// NowSecs returns accumulated virtual job time.
func (e *Engine) NowSecs() float64 { return e.nowSecs }

// MeasuredShuffleFraction returns the observed synchronous-time share —
// the paper's r heuristic, r = synchronous execution time / total running
// time, measured over the run so far.
func (e *Engine) MeasuredShuffleFraction() float64 {
	if e.nowSecs == 0 {
		return 0
	}
	return e.syncSecs / e.nowSecs
}

// NextStageIsShuffle reports whether the next pending top-level stage
// consumes a *significant* shuffle — the policy's look-ahead (§4.1:
// "determines if a shuffle operation is scheduled in the immediate future
// by looking at the RDD DAG"). A shuffle is significant when moving its
// data costs at least 1% of the job's planned time; tiny aggregations (a
// K-means center update) do not force the worst-case r.
func (e *Engine) NextStageIsShuffle() bool {
	stages := e.job.Stages()
	if e.stageCursor >= len(stages) {
		return false
	}
	s := stages[e.stageCursor]
	if !s.IsShuffle() {
		return false
	}
	moveSecs := s.ShuffleInputMB() / e.netMBps
	if e.nowSecs == 0 {
		return moveSecs > 0
	}
	return moveSecs/e.nowSecs >= 0.01
}

func allParts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// runStage ensures parent outputs exist (recursively recomputing lost
// partitions), then executes the requested partitions.
func (e *Engine) runStage(s *Stage, parts []int, recompute bool) error {
	if len(parts) == 0 {
		return nil
	}
	// Ensure parents.
	for _, dep := range s.parents {
		var need []int
		if dep.AllParts {
			need = allParts(dep.Stage.tasks)
		} else {
			need = parts
		}
		var missing []int
		for _, p := range need {
			if !e.available(partKey{dep.Stage.id, p}) {
				missing = append(missing, p)
			}
		}
		if len(missing) > 0 {
			if err := e.runStage(dep.Stage, missing, true); err != nil {
				return err
			}
		}
	}

	execs := e.cluster.Alive()
	if len(execs) == 0 {
		return fmt.Errorf("spark: no live executors for stage %q", s.Name())
	}

	// Greedy wave scheduling: assign each task to the executor with the
	// earliest projected finish; an executor running n tasks of duration t
	// on k slots finishes in ceil(n/k)·t.
	counts := make([]int, len(execs))
	finish := func(i int, extra int) float64 {
		n := counts[i] + extra
		waves := math.Ceil(float64(n) / float64(execs[i].Slots))
		return waves * s.workPerTask / execs[i].Speed
	}
	assignment := make([]int, len(parts))
	for i := range parts {
		best, bestT := 0, math.Inf(1)
		for x := range execs {
			if t := finish(x, 1); t < bestT {
				best, bestT = x, t
			}
		}
		counts[best]++
		assignment[i] = best
	}
	var elapsed float64
	for i := range execs {
		if t := finish(i, 0); counts[i] > 0 && t > elapsed {
			elapsed = t
		}
	}
	elapsed += s.serialWork
	// Shuffle data movement: the running tasks pull their share of every
	// shuffle parent's output across the network — this is the job's
	// synchronous time, the numerator of the paper's r heuristic.
	if mb := s.ShuffleInputMB(); mb > 0 {
		moveSecs := mb / e.netMBps * float64(len(parts)) / float64(s.tasks)
		elapsed += moveSecs
		e.syncSecs += moveSecs
	}

	// Record outputs and cache accounting.
	for i, p := range parts {
		x := execs[assignment[i]]
		k := partKey{s.id, p}
		e.outputs[k] = x
		if s.cacheOutput {
			e.cachePut(x, k, s.outMBOfTask)
		}
	}

	e.nowSecs += elapsed
	e.tasksRun += len(parts)
	e.stageRuns++
	e.trace = append(e.trace, StageRun{
		Name: s.Name(), Parts: len(parts), ElapsedSecs: elapsed, Recompute: recompute,
	})
	if recompute {
		e.recomputeSecs += elapsed
	} else if !e.firstRun[s.id] {
		e.firstRun[s.id] = true
		e.completedPlanned += s.PlannedWork()
	}
	return nil
}

// available reports whether a stage output partition is usable: computed,
// and its executor still alive (shuffle files and cache die with the
// executor), and (for cached outputs) not evicted. Driver-held results
// survive executor loss.
func (e *Engine) available(k partKey) bool {
	x, ok := e.outputs[k]
	if !ok {
		return false
	}
	if e.driverHeld[k.stage] {
		return true
	}
	return x != nil && x.alive
}

// cachePut stores a cached partition on an executor, evicting the oldest
// cached partitions if storage memory is exhausted (Spark's storage-memory
// eviction).
func (e *Engine) cachePut(x *Executor, k partKey, mb float64) {
	x.usedMB += mb
	x.cacheLRU = append(x.cacheLRU, k)
	for x.usedMB > x.MemMB && len(x.cacheLRU) > 1 {
		victim := x.cacheLRU[0]
		x.cacheLRU = x.cacheLRU[1:]
		if victim == k {
			continue
		}
		delete(e.outputs, victim)
		x.usedMB -= mb // partitions of comparable size; fine-grained sizes not tracked per key
		if x.usedMB < 0 {
			x.usedMB = 0
		}
	}
}

// Blacklist removes executors from scheduling — the self-deflation and
// preemption mechanism ("we kill running tasks and blacklist their
// executors", §4.1). Their shuffle files and cached partitions die with
// them; recomputation of lost partitions still benefits from the surviving
// executors' caches, which is why graceful self-deflation ends up cheaper
// than preemption (preemption additionally pays a job-restart overhead —
// the paper's measured ≈15% gap).
func (e *Engine) Blacklist(ids []string) {
	for _, id := range ids {
		x := e.cluster.Executor(id)
		if x == nil || !x.alive {
			continue
		}
		x.alive = false
		x.cacheLRU = nil
		x.usedMB = 0
	}
}

// EstimateRecomputeWork returns the planned seconds of recomputation that
// losing the given executors would trigger for the *remaining* stages — the
// DAG-exact recomputation estimator the paper describes as the accurate
// alternative to the synchronous-time heuristic.
func (e *Engine) EstimateRecomputeWork(ids []string) float64 {
	dying := make(map[string]bool, len(ids))
	for _, id := range ids {
		dying[id] = true
	}
	lost := func(k partKey) bool {
		x, ok := e.outputs[k]
		if ok && e.driverHeld[k.stage] {
			return false
		}
		return !ok || x == nil || !x.alive || dying[x.ID]
	}
	// Walk stages the job still needs and sum the work of transitively
	// missing partitions. Each partition is recomputed (and therefore
	// charged) at most once, however many downstream stages need it.
	counted := make(map[partKey]bool)
	var cost func(s *Stage, part int) float64
	cost = func(s *Stage, part int) float64 {
		k := partKey{s.id, part}
		if !lost(k) || counted[k] {
			return 0
		}
		counted[k] = true
		c := s.workPerTask
		for _, dep := range s.parents {
			if dep.AllParts {
				for p := 0; p < dep.Stage.tasks; p++ {
					c += cost(dep.Stage, p)
				}
			} else {
				c += cost(dep.Stage, part)
			}
		}
		return c
	}
	var total float64
	stages := e.job.Stages()
	for i := e.stageCursor; i < len(stages); i++ {
		s := stages[i]
		for _, dep := range s.parents {
			for p := 0; p < dep.Stage.tasks; p++ {
				total += cost(dep.Stage, p)
			}
		}
	}
	return total
}
