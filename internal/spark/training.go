package spark

import (
	"fmt"
	"math"

	"deflation/internal/perfmodel"
)

// TrainingJob models synchronous data-parallel neural-network training
// (BigDL-on-Spark CNN/RNN, Table 2): iterations separated by global
// parameter-synchronization barriers. The job is inelastic — losing any
// worker stalls the whole application, and recovery means restarting from
// the last model checkpoint (§4.1, §6.2).
type TrainingJob struct {
	Name string
	// Iterations is the total iteration count.
	Iterations int
	// IterSecs is the iteration time at full cluster resources.
	IterSecs float64
	// Workers is the initial worker count.
	Workers int
	// RecordsPerIter is the global mini-batch size, for throughput
	// reporting (records/second, the Fig. 7b metric).
	RecordsPerIter float64
	// CheckpointEvery saves a model checkpoint every n iterations; 0
	// disables checkpointing (the deflation deployment does not need it).
	CheckpointEvery int
	// CheckpointOverhead is the fractional iteration-time cost of
	// checkpointing when enabled (the paper measures ≈20%, Fig. 7b).
	CheckpointOverhead float64
	// RestartSecs is the job restart cost after losing a worker
	// (resubmission, parameter redistribution).
	RestartSecs float64
	// Curve maps the per-worker resource fraction to iteration speed:
	// training is not perfectly CPU-bound, so 50% deflation costs well
	// under 50% throughput (Fig. 6c/6d). Defaults to CurveCNNTraining.
	Curve *perfmodel.UtilityCurve
	// ScaleOutExponent models the efficiency loss of re-partitioning onto
	// fewer workers after a kill: iteration time scales with
	// (Workers/alive)^exponent. Values above 1 reflect the extra
	// communication rounds and worse statistical efficiency of larger
	// per-worker batches (default 1.3).
	ScaleOutExponent float64
}

// Calibrated iteration-speed curves for the two training workloads, set so
// the measured slowdowns match Fig. 6c/6d: CNN at 50% VM-level deflation
// runs ≈1.2× longer overall; RNN ≈1.25×.
var (
	// CurveCNNTraining: compute/communication overlap absorbs deflation.
	CurveCNNTraining = perfmodel.MustUtilityCurve("CNN-training", map[float64]float64{
		0: 0, 0.25: 0.45, 0.5: 0.70, 0.75: 0.88, 0.875: 0.94, 1: 1,
	})
	// CurveRNNTraining: more serialized time steps, slightly steeper.
	CurveRNNTraining = perfmodel.MustUtilityCurve("RNN-training", map[float64]float64{
		0: 0, 0.25: 0.40, 0.5: 0.62, 0.75: 0.85, 0.875: 0.93, 1: 1,
	})
)

// Validate checks job parameters.
func (j *TrainingJob) Validate() error {
	if j.Iterations <= 0 || j.IterSecs <= 0 || j.Workers <= 0 {
		return fmt.Errorf("spark: training job %q needs positive iterations/time/workers", j.Name)
	}
	if j.CheckpointEvery < 0 || j.CheckpointOverhead < 0 {
		return fmt.Errorf("spark: training job %q has negative checkpoint settings", j.Name)
	}
	return nil
}

// TrainingRun is an in-progress training job.
type TrainingRun struct {
	job *TrainingJob

	speed       []float64 // per-worker resource fraction (1 = undeflated)
	aliveCount  int
	completed   int
	checkpoint  int // last checkpointed iteration
	elapsedSecs float64
}

// NewTrainingRun starts a run of job.
func NewTrainingRun(job *TrainingJob) (*TrainingRun, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	if job.Curve == nil {
		job.Curve = CurveCNNTraining
	}
	if job.ScaleOutExponent == 0 {
		job.ScaleOutExponent = 1.3
	}
	speed := make([]float64, job.Workers)
	for i := range speed {
		speed[i] = 1
	}
	return &TrainingRun{job: job, speed: speed, aliveCount: job.Workers}, nil
}

// ElapsedSecs returns virtual time spent so far.
func (r *TrainingRun) ElapsedSecs() float64 { return r.elapsedSecs }

// AddDelaySecs advances the run's clock without training progress
// (restart and resubmission overheads).
func (r *TrainingRun) AddDelaySecs(secs float64) { r.elapsedSecs += secs }

// Completed returns completed iterations.
func (r *TrainingRun) Completed() int { return r.completed }

// Done reports whether all iterations have finished.
func (r *TrainingRun) Done() bool { return r.completed >= r.job.Iterations }

// SetWorkerSpeed applies VM-level deflation to worker i: its resource
// fraction drops. Training continues — this is the mechanism that lets
// inelastic synchronous jobs survive reclamation.
func (r *TrainingRun) SetWorkerSpeed(i int, fraction float64) error {
	if i < 0 || i >= len(r.speed) {
		return fmt.Errorf("spark: worker %d out of range", i)
	}
	if fraction <= 0 || fraction > 1 {
		return fmt.Errorf("spark: worker speed fraction %g out of (0,1]", fraction)
	}
	if r.speed[i] != 0 {
		r.speed[i] = fraction
	}
	return nil
}

// KillWorkers removes n workers (self-deflation's task kill, or
// preemption). Synchronous training cannot continue through worker loss:
// the job restarts from the last checkpoint (or iteration 0 without
// checkpointing) on the surviving workers.
func (r *TrainingRun) KillWorkers(n int) error {
	if n <= 0 {
		return nil
	}
	if n >= r.aliveCount {
		return fmt.Errorf("spark: killing %d of %d workers leaves none", n, r.aliveCount)
	}
	killed := 0
	for i := range r.speed {
		if killed == n {
			break
		}
		if r.speed[i] > 0 {
			r.speed[i] = 0
			killed++
		}
	}
	r.aliveCount -= n
	r.completed = r.checkpoint
	r.elapsedSecs += r.job.RestartSecs
	return nil
}

// ReviveWorkers brings n previously killed workers back (capacity restored
// after transient pressure). Rejoining a synchronous job re-partitions the
// data, which — like a loss — restarts from the last checkpoint.
func (r *TrainingRun) ReviveWorkers(n int) error {
	if n <= 0 {
		return nil
	}
	revived := 0
	for i := range r.speed {
		if revived == n {
			break
		}
		if r.speed[i] == 0 {
			r.speed[i] = 1
			revived++
		}
	}
	if revived == 0 {
		return fmt.Errorf("spark: no dead workers to revive")
	}
	r.aliveCount += revived
	r.completed = r.checkpoint
	r.elapsedSecs += r.job.RestartSecs
	return nil
}

// IterSecs returns the current per-iteration time: the global barrier makes
// the slowest worker determine the pace, surviving workers absorb the dead
// workers' data shards, and checkpointing (if enabled) adds its overhead.
func (r *TrainingRun) IterSecs() float64 {
	minSpeed := math.Inf(1)
	for _, s := range r.speed {
		if s > 0 && s < minSpeed {
			minSpeed = s
		}
	}
	if math.IsInf(minSpeed, 1) {
		return math.Inf(1)
	}
	t := r.job.IterSecs * math.Pow(float64(r.job.Workers)/float64(r.aliveCount), r.job.ScaleOutExponent) / r.job.Curve.At(minSpeed)
	if r.job.CheckpointEvery > 0 {
		t *= 1 + r.job.CheckpointOverhead
	}
	return t
}

// Throughput returns the current training throughput in records/second —
// the Fig. 7b metric.
func (r *TrainingRun) Throughput() float64 {
	t := r.IterSecs()
	if math.IsInf(t, 1) || t <= 0 {
		return 0
	}
	return r.job.RecordsPerIter / t
}

// Step executes one iteration, advancing elapsed time and taking a
// checkpoint when due.
func (r *TrainingRun) Step() error {
	if r.Done() {
		return fmt.Errorf("spark: training job %q already done", r.job.Name)
	}
	t := r.IterSecs()
	if math.IsInf(t, 1) {
		return fmt.Errorf("spark: training job %q has no live workers", r.job.Name)
	}
	r.elapsedSecs += t
	r.completed++
	if r.job.CheckpointEvery > 0 && r.completed%r.job.CheckpointEvery == 0 {
		r.checkpoint = r.completed
	}
	return nil
}

// Run executes iterations to completion, invoking hook (if non-nil) after
// each iteration with the completed fraction.
func (r *TrainingRun) Run(hook func(progress float64, run *TrainingRun)) (float64, error) {
	for !r.Done() {
		if err := r.Step(); err != nil {
			return r.elapsedSecs, err
		}
		if hook != nil {
			hook(float64(r.completed)/float64(r.job.Iterations), r)
		}
	}
	return r.elapsedSecs, nil
}
