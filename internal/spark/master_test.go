package spark

import (
	"testing"

	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
)

// masterJob builds a map-heavy job over a cached source (self-deflation
// friendly) or a shuffle-heavy one.
func masterJob(t *testing.T, shuffleHeavy bool) (*Cluster, *BatchJob, *Master) {
	t.Helper()
	cluster := mustCluster(t, 8, 4, 8192)
	var job *BatchJob
	var err error
	if shuffleHeavy {
		job = shuffleHeavyJob(t)
	} else {
		job = mapHeavyJob(t)
	}
	m, err := NewMaster(cluster, job, EstimatorHeuristic)
	if err != nil {
		t.Fatal(err)
	}
	return cluster, job, m
}

func TestMasterBaselineRun(t *testing.T) {
	_, _, m := masterJob(t, true)
	res, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.DurationSecs <= 0 || len(m.Decisions()) != 0 {
		t.Errorf("baseline: %+v, decisions %v", res, m.Decisions())
	}
	if m.Engine().Progress() < 1 {
		t.Error("job incomplete")
	}
}

func TestMasterPolicyAtStageBoundary(t *testing.T) {
	cluster, _, m := masterJob(t, true)
	fired := false
	_, err := m.Run(func(progress float64, _ *Engine) {
		if fired || progress < 0.5 || progress >= 1 {
			return
		}
		fired = true
		for i := 0; i < 8; i++ {
			f := 0.45
			if i%2 == 0 {
				f = 0.55
			}
			if err := m.RequestDeflation(i, f); err != nil {
				t.Fatal(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	decs := m.Decisions()
	if len(decs) != 1 {
		t.Fatalf("decisions = %d, want 1 (requests coalesced into one wave)", len(decs))
	}
	// Shuffle-heavy: VM-level; nobody blacklisted.
	if decs[0].Mechanism != MechVMLevel {
		t.Errorf("chose %v, want vm-level", decs[0].Mechanism)
	}
	if len(cluster.Alive()) != 8 {
		t.Errorf("alive = %d, want 8", len(cluster.Alive()))
	}
}

func TestMasterDuplicateRequestsKeepMax(t *testing.T) {
	_, _, m := masterJob(t, false)
	if err := m.RequestDeflation(0, 0.3); err != nil {
		t.Fatal(err)
	}
	if err := m.RequestDeflation(0, 0.6); err != nil {
		t.Fatal(err)
	}
	if err := m.RequestDeflation(0, 0.1); err != nil {
		t.Fatal(err)
	}
	if got := m.pending[0]; got != 0.6 {
		t.Errorf("pending = %g, want max 0.6", got)
	}
}

func TestMasterClampsFraction(t *testing.T) {
	_, _, m := masterJob(t, false)
	if err := m.RequestDeflation(0, 1.0); err == nil {
		t.Error("fraction 1 accepted")
	}
	if err := m.RequestDeflation(8, 0.5); err == nil {
		t.Error("out-of-range worker accepted")
	}
}

func TestWorkerAppLifecycle(t *testing.T) {
	cluster, _, m := masterJob(t, false)
	size := restypes.V(4, 16384, 400, 1250)
	w, err := NewWorkerApp(m, 2, size)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "spark-worker-2" {
		t.Errorf("name = %q", w.Name())
	}
	rss, cache := w.Footprint()
	if rss != 8192 || cache != 16384*0.2 {
		t.Errorf("footprint = %g/%g", rss, cache)
	}

	// SelfDeflate relays and defers.
	rel, lat := w.SelfDeflate(restypes.V(2, 8192, 0, 0))
	if !rel.IsZero() || lat != 0 {
		t.Errorf("worker relinquished directly: %v", rel)
	}
	if got := m.pending[2]; got != 0.5 {
		t.Errorf("relayed fraction = %g, want 0.5 (binding dimension)", got)
	}

	// Over-full targets clamp below 1.
	w.SelfDeflate(size)
	if got := m.pending[2]; got != 0.95 {
		t.Errorf("clamped fraction = %g, want 0.95", got)
	}

	// ObserveEnv drives the executor speed.
	env := hypervisor.Env{EffectiveCores: 2}
	w.ObserveEnv(env)
	if got := cluster.Executors()[2].Speed; got != 0.5 {
		t.Errorf("executor speed = %g, want 0.5", got)
	}
	if got := w.Throughput(env); got != 0.5 {
		t.Errorf("throughput = %g", got)
	}
	if got := w.Throughput(hypervisor.Env{OOMKilled: true}); got != 0 {
		t.Errorf("OOM throughput = %g", got)
	}

	// Reinflate restores speed.
	w.Reinflate(hypervisor.Env{EffectiveCores: 4})
	if got := cluster.Executors()[2].Speed; got != 1 {
		t.Errorf("speed after reinflate = %g", got)
	}

	// Dead executors keep zero throughput and ignore env pushes.
	m.eng.Blacklist([]string{"exec-2"})
	w.ObserveEnv(env)
	if got := w.Throughput(env); got != 0 {
		t.Errorf("dead worker throughput = %g", got)
	}
}

func TestMasterAccessors(t *testing.T) {
	_, job, m := masterJob(t, false)
	if m.Engine() == nil {
		t.Error("nil engine")
	}
	if m.Engine().NowSecs() != 0 {
		t.Error("fresh engine has elapsed time")
	}
	_ = job
}

func TestTrainingReviveWorkers(t *testing.T) {
	j := &TrainingJob{Name: "t", Iterations: 40, IterSecs: 10, Workers: 8,
		RecordsPerIter: 800, RestartSecs: 50, CheckpointEvery: 10, CheckpointOverhead: 0.2}
	r, err := NewTrainingRun(j)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		r.Step()
	}
	if err := r.KillWorkers(4); err != nil {
		t.Fatal(err)
	}
	slow := r.IterSecs()
	elapsedBefore := r.ElapsedSecs()
	if err := r.ReviveWorkers(4); err != nil {
		t.Fatal(err)
	}
	if r.ElapsedSecs() <= elapsedBefore {
		t.Error("revive charged no restart time")
	}
	if r.Completed() != 10 {
		t.Errorf("completed = %d, want checkpoint 10", r.Completed())
	}
	if r.IterSecs() >= slow {
		t.Errorf("iteration time %g not restored below %g", r.IterSecs(), slow)
	}
	if err := r.ReviveWorkers(1); err == nil {
		t.Error("revive with no dead workers accepted")
	}
	if err := r.ReviveWorkers(0); err != nil {
		t.Error(err)
	}
}
