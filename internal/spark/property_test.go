package spark

import (
	"testing"
	"testing/quick"
)

// randomJob builds a small deterministic DAG shaped by the fuzz input:
// alternating maps, filters, and shuffles over a cached or uncached source.
func randomJob(shape []uint8) (*BatchJob, error) {
	ctx := NewContext()
	cur := ctx.Source("src", 8, 1.0, 10)
	if len(shape) > 0 && shape[0]%2 == 0 {
		cur.Cache()
	}
	for i, s := range shape {
		switch s % 3 {
		case 0:
			cur = cur.Map("m", 0.5, 8)
		case 1:
			cur = cur.Filter("f", 0.1, 0.5)
		case 2:
			cur = cur.Shuffle("s", 4+int(s%5), 1.0, 6)
		}
		if s%7 == 0 {
			cur.Cache()
		}
		if i > 6 {
			break
		}
	}
	return NewBatchJob("fuzz", cur, 0.5)
}

// TestQuickJobsCompleteUnderKills: whatever the DAG and whenever executors
// die, the engine finishes the job through lineage recomputation as long as
// one executor survives — Spark's core fault-tolerance property.
func TestQuickJobsCompleteUnderKills(t *testing.T) {
	f := func(shape []uint8, killAt uint8, nKill uint8) bool {
		job, err := randomJob(shape)
		if err != nil {
			return false
		}
		cluster, err := NewCluster(4, 2, 200)
		if err != nil {
			return false
		}
		eng, err := NewEngine(cluster, job)
		if err != nil {
			return false
		}
		kills := int(nKill % 4) // 0..3: always at least one survivor
		at := float64(killAt%90) / 100
		fired := false
		res, err := eng.Run(func(progress float64, e *Engine) {
			if fired || progress < at {
				return
			}
			fired = true
			ids := []string{"exec-0", "exec-1", "exec-2"}[:kills]
			e.Blacklist(ids)
		})
		if err != nil {
			return false
		}
		// Completion invariants.
		if res.DurationSecs <= 0 || eng.Progress() < 1-1e-9 {
			return false
		}
		// Recomputation never happens without kills.
		if kills == 0 && res.RecomputeSecs != 0 {
			return false
		}
		// Sync time is part of total time.
		return eng.MeasuredShuffleFraction() >= 0 && eng.MeasuredShuffleFraction() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickRunsDeterministic: the same DAG and kill schedule always produce
// identical results.
func TestQuickRunsDeterministic(t *testing.T) {
	f := func(shape []uint8, killAt uint8) bool {
		run := func() (Result, error) {
			job, err := randomJob(shape)
			if err != nil {
				return Result{}, err
			}
			cluster, err := NewCluster(4, 2, 200)
			if err != nil {
				return Result{}, err
			}
			eng, err := NewEngine(cluster, job)
			if err != nil {
				return Result{}, err
			}
			fired := false
			return eng.Run(func(progress float64, e *Engine) {
				if fired || progress < float64(killAt%90)/100 {
					return
				}
				fired = true
				e.Blacklist([]string{"exec-1"})
			})
		}
		a, errA := run()
		b, errB := run()
		if errA != nil || errB != nil {
			return errA != nil && errB != nil
		}
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickEstimateNeverNegative: the DAG recompute estimator is
// non-negative and bounded by total upstream work for any kill set.
func TestQuickEstimateNeverNegative(t *testing.T) {
	f := func(shape []uint8, mask uint8) bool {
		job, err := randomJob(shape)
		if err != nil {
			return false
		}
		cluster, err := NewCluster(4, 2, 200)
		if err != nil {
			return false
		}
		eng, err := NewEngine(cluster, job)
		if err != nil {
			return false
		}
		if _, err := eng.Run(nil); err != nil {
			return false
		}
		var ids []string
		for i := 0; i < 4; i++ {
			if mask&(1<<i) != 0 {
				ids = append(ids, cluster.Executors()[i].ID)
			}
		}
		est := eng.EstimateRecomputeWork(ids)
		return est >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFilterValidation(t *testing.T) {
	ctx := NewContext()
	src := ctx.Source("s", 4, 1, 10)
	f := src.Filter("f", 0.1, 0.25)
	if f.Partitions() != 4 {
		t.Errorf("filter partitions = %d", f.Partitions())
	}
	job, err := NewBatchJob("j", f.Shuffle("agg", 2, 0.1, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Filter halves... quarters the shuffle volume: 4 parts × 2.5MB.
	if got := job.ShuffleBytesMB(); got != 10 {
		t.Errorf("shuffle bytes = %g, want 10", got)
	}
	mustPanic(t, "selectivity 0", func() { src.Filter("f", 0.1, 0) })
	mustPanic(t, "selectivity 2", func() { src.Filter("f", 0.1, 2) })
}
