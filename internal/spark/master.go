package spark

import (
	"fmt"
	"math"
	"time"

	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
)

// Master is the Spark driver's deflation endpoint (§4.1): worker VMs relay
// the deflation requests they receive from their local deflation
// controllers ("Spark workers relay the deflation requests to the Spark
// master, which then executes the policy"). The master buffers requests
// into the deflation vector d and, at the next stage boundary, runs the
// running-time-minimizing policy:
//
//   - self-deflation: kill tasks and blacklist the deflated executors;
//     survivors run at full speed, lost partitions recompute via lineage;
//   - VM-level: executors stay scheduled and simply run slower (their
//     WorkerApps track the deflated environment).
//
// Either way the physical resources flow back through the OS and
// hypervisor levels of the cascade; the policy only decides whether the
// application cooperates by vacating the deflated VMs.
type Master struct {
	cluster   *Cluster
	job       *BatchJob
	eng       *Engine
	estimator Estimator

	pending   map[int]float64 // worker index → requested deflation fraction
	decisions []Decision
}

// NewMaster prepares a master for one job on a cluster.
func NewMaster(cluster *Cluster, job *BatchJob, est Estimator) (*Master, error) {
	eng, err := NewEngine(cluster, job)
	if err != nil {
		return nil, err
	}
	return &Master{
		cluster:   cluster,
		job:       job,
		eng:       eng,
		estimator: est,
		pending:   make(map[int]float64),
	}, nil
}

// Engine exposes the underlying engine (progress, estimates).
func (m *Master) Engine() *Engine { return m.eng }

// Decisions returns the policy decisions taken so far, in order.
func (m *Master) Decisions() []Decision { return m.decisions }

// RequestDeflation is the worker-agent entry point: worker idx's VM is
// being deflated by the given fraction. The request is buffered; the policy
// runs at the next stage boundary (task granularity — Spark cannot
// reconfigure mid-task).
func (m *Master) RequestDeflation(workerIdx int, fraction float64) error {
	if workerIdx < 0 || workerIdx >= len(m.cluster.Executors()) {
		return fmt.Errorf("spark: worker index %d out of range", workerIdx)
	}
	if fraction < 0 || fraction >= 1 {
		return fmt.Errorf("spark: deflation fraction %g out of [0,1)", fraction)
	}
	if fraction > m.pending[workerIdx] {
		m.pending[workerIdx] = fraction
	}
	return nil
}

// processPending runs the policy over the buffered deflation vector.
func (m *Master) processPending(progress float64, e *Engine) error {
	if len(m.pending) == 0 {
		return nil
	}
	execs := m.cluster.Executors()
	d := make([]float64, len(execs))
	for i, f := range m.pending {
		d[i] = f
	}
	m.pending = make(map[int]float64)

	victims := ChooseVictims(m.cluster, d)
	dagFrac := 0.0
	if total := m.job.TotalPlannedWork(); total > 0 {
		dagFrac = e.EstimateRecomputeWork(victims) / total
	}
	dec, err := Decide(PolicyInputs{
		Progress:             progress,
		Deflation:            d,
		ShuffleFraction:      e.MeasuredShuffleFraction(),
		NextStageIsShuffle:   e.NextStageIsShuffle(),
		DAGRecomputeFraction: dagFrac,
	}, m.estimator)
	if err != nil {
		return err
	}
	m.decisions = append(m.decisions, dec)
	if dec.Mechanism == MechSelf {
		e.Blacklist(victims)
	}
	// MechVMLevel: nothing to do — the deflated WorkerApps have already
	// lowered their executors' speeds from the observed environments.
	return nil
}

// Run executes the job, processing buffered deflation requests at every
// stage boundary; extra (if non-nil) runs after the policy at each boundary
// — the injection point for tests and experiments.
func (m *Master) Run(extra ProgressHook) (Result, error) {
	var hookErr error
	res, err := m.eng.Run(func(progress float64, e *Engine) {
		if hookErr != nil {
			return
		}
		if extra != nil {
			extra(progress, e)
		}
		if err := m.processPending(progress, e); err != nil {
			hookErr = err
		}
	})
	if err != nil {
		return res, err
	}
	return res, hookErr
}

// WorkerApp is the Spark worker's deflation agent as a vm.Application: it
// runs inside each worker VM, relays deflation requests to the master, and
// tracks the VM's effective environment so its executor's task speed
// reflects VM-level deflation.
type WorkerApp struct {
	master *Master
	idx    int
	size   restypes.Vector

	// ExecMemFraction is the share of VM memory held by the executor heap
	// (default 0.5); CacheFraction is shuffle/page cache (default 0.2).
	ExecMemFraction, CacheFraction float64
}

// NewWorkerApp builds the worker agent for worker idx of the master's
// cluster, hosted in a VM of the given nominal size.
func NewWorkerApp(master *Master, idx int, size restypes.Vector) (*WorkerApp, error) {
	if master == nil {
		return nil, fmt.Errorf("spark: nil master")
	}
	if idx < 0 || idx >= len(master.cluster.Executors()) {
		return nil, fmt.Errorf("spark: worker index %d out of range", idx)
	}
	return &WorkerApp{
		master: master, idx: idx, size: size,
		ExecMemFraction: 0.5, CacheFraction: 0.2,
	}, nil
}

// Name implements vm.Application.
func (w *WorkerApp) Name() string { return fmt.Sprintf("spark-worker-%d", w.idx) }

// Footprint implements vm.Application.
func (w *WorkerApp) Footprint() (float64, float64) {
	return w.ExecMemFraction * w.size.MemoryMB, w.CacheFraction * w.size.MemoryMB
}

// SelfDeflate implements vm.Application: relay the request to the master
// and relinquish nothing directly — the resources flow back through the
// lower cascade levels; the master decides whether this executor vacates
// (self-deflation) or runs slower (VM-level).
func (w *WorkerApp) SelfDeflate(target restypes.Vector) (restypes.Vector, time.Duration) {
	frac := target.FractionOf(w.size).MaxComponent()
	if frac >= 1 {
		frac = 0.95
	}
	if frac > 0 {
		_ = w.master.RequestDeflation(w.idx, frac)
	}
	return restypes.Vector{}, 0
}

// Reinflate implements vm.Application.
func (w *WorkerApp) Reinflate(env hypervisor.Env) { w.ObserveEnv(env) }

// ObserveEnv implements vm.EnvObserver: the executor's per-slot speed
// follows the VM's effective CPU (and any swap pressure is reflected in
// EffectiveCores being the binding factor for compute-bound tasks).
func (w *WorkerApp) ObserveEnv(env hypervisor.Env) {
	x := w.master.cluster.Executors()[w.idx]
	if !x.Alive() {
		return
	}
	speed := 1.0
	if w.size.CPU > 0 {
		speed = env.EffectiveCores / w.size.CPU
	}
	x.Speed = math.Min(1, math.Max(0.01, speed))
}

// Throughput implements vm.Application: the worker's share of the job's
// progress rate — its executor's current speed if scheduled, 0 if
// blacklisted or OOM-killed.
func (w *WorkerApp) Throughput(env hypervisor.Env) float64 {
	if env.OOMKilled {
		return 0
	}
	x := w.master.cluster.Executors()[w.idx]
	if !x.Alive() {
		return 0
	}
	return x.Speed
}
