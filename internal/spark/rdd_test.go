package spark

import "testing"

func TestRDDBuilders(t *testing.T) {
	ctx := NewContext()
	src := ctx.Source("in", 8, 1.0, 10)
	if src.ID() != 0 || src.Name() != "in" || src.Partitions() != 8 {
		t.Errorf("source = %d/%q/%d", src.ID(), src.Name(), src.Partitions())
	}
	m := src.Map("m", 0.5, 5)
	if m.Partitions() != 8 {
		t.Errorf("map partitions = %d, want parent's 8", m.Partitions())
	}
	if len(m.Deps()) != 1 || m.Deps()[0].Wide || m.Deps()[0].Parent != src {
		t.Errorf("map deps wrong: %+v", m.Deps())
	}
	sh := m.Shuffle("s", 4, 0.2, 2)
	if sh.Partitions() != 4 || !sh.Deps()[0].Wide {
		t.Error("shuffle dep not wide or partitions wrong")
	}
	j := sh.Join(m, "j", 2, 0.1, 1)
	if len(j.Deps()) != 2 || !j.Deps()[0].Wide || !j.Deps()[1].Wide {
		t.Errorf("join deps wrong: %+v", j.Deps())
	}
	tr := ctx.Transform("t", 8, 0.1, 1, Dep{Parent: src}, Dep{Parent: sh, Broadcast: true})
	if len(tr.Deps()) != 2 || !tr.Deps()[1].Broadcast {
		t.Error("transform deps wrong")
	}
	if len(ctx.RDDs()) != 5 {
		t.Errorf("context has %d RDDs, want 5", len(ctx.RDDs()))
	}
}

func TestRDDFlags(t *testing.T) {
	ctx := NewContext()
	r := ctx.Source("in", 4, 1, 1)
	if r.Cached() || r.DriverHeld() {
		t.Error("fresh RDD has flags set")
	}
	if r.Cache() != r || !r.Cached() {
		t.Error("Cache not chainable/effective")
	}
	if r.CollectToDriver() != r || !r.DriverHeld() {
		t.Error("CollectToDriver not chainable/effective")
	}
}

func TestRDDValidationPanics(t *testing.T) {
	ctx := NewContext()
	mustPanic(t, "zero partitions", func() { ctx.Source("x", 0, 1, 1) })
	mustPanic(t, "negative work", func() { ctx.Source("x", 1, -1, 1) })
	mustPanic(t, "negative out", func() { ctx.Source("x", 1, 1, -1) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}
