package spark

import "fmt"

// Stage is a unit of BSP execution: a pipelined chain of narrow-dependency
// transformations ending at a boundary RDD (a shuffle input, a cached RDD,
// or the job's final RDD). All tasks of a stage run before any task of a
// dependent stage starts — the BSP structure Eq. 1 relies on.
type Stage struct {
	id          int
	boundary    *RDD
	tasks       int
	workPerTask float64 // pipelined compute seconds per task at speed 1.0
	outMBOfTask float64
	cacheOutput bool // outputs live in executor memory (cached RDD)
	driverHeld  bool // outputs are materialized at the driver (loss-proof)
	parents     []StageDep
	serialWork  float64 // driver-side seconds per execution (scheduling, DAG bookkeeping)
}

// StageDep is a dependency on a parent stage.
type StageDep struct {
	Stage *Stage
	// AllParts means every task of the child needs every parent partition
	// (shuffle or broadcast); otherwise tasks need only the same-numbered
	// partition (cached narrow dependency).
	AllParts bool
	// Shuffle means the dependency moves shuffle data across the network —
	// the "synchronous" operations of the paper's r heuristic.
	Shuffle bool
}

// ID returns the stage id (its boundary RDD id).
func (s *Stage) ID() int { return s.id }

// Name returns the boundary RDD's name.
func (s *Stage) Name() string { return s.boundary.name }

// Tasks returns the stage's task count.
func (s *Stage) Tasks() int { return s.tasks }

// WorkPerTask returns the pipelined per-task compute seconds.
func (s *Stage) WorkPerTask() float64 { return s.workPerTask }

// Parents returns the stage's dependencies.
func (s *Stage) Parents() []StageDep { return s.parents }

// IsShuffle reports whether the stage consumes a shuffle — the paper's
// "synchronous" stages.
func (s *Stage) IsShuffle() bool {
	for _, p := range s.parents {
		if p.Shuffle {
			return true
		}
	}
	return false
}

// ShuffleInputMB returns the shuffle data volume the stage pulls in.
func (s *Stage) ShuffleInputMB() float64 {
	var mb float64
	for _, p := range s.parents {
		if p.Shuffle {
			mb += float64(p.Stage.tasks) * p.Stage.outMBOfTask
		}
	}
	return mb
}

// PlannedWork returns the stage's total planned seconds at unit speed:
// parallel task work plus driver-side serial work.
func (s *Stage) PlannedWork() float64 {
	return float64(s.tasks)*s.workPerTask + s.serialWork
}

// BatchJob is an RDD DAG with an action on its final RDD, compiled into
// stages.
type BatchJob struct {
	Name   string
	final  *RDD
	stages []*Stage // topological order, final stage last
}

// NewBatchJob compiles the DAG rooted at final into stages.
// serialPerStage is the driver-side overhead charged per stage execution
// (seconds); it models scheduling, shuffle coordination, and result
// aggregation, and is what makes Spark jobs scale sublinearly with executor
// count.
func NewBatchJob(name string, final *RDD, serialPerStage float64) (*BatchJob, error) {
	if final == nil {
		return nil, fmt.Errorf("spark: job %q has no final RDD", name)
	}
	if serialPerStage < 0 {
		return nil, fmt.Errorf("spark: job %q has negative serial overhead", name)
	}
	j := &BatchJob{Name: name, final: final}
	j.buildStages(serialPerStage)
	return j, nil
}

// buildStages walks the lineage graph and splits it into stages at wide
// dependencies and cached RDDs, the same boundaries Spark's DAGScheduler
// uses.
func (j *BatchJob) buildStages(serial float64) {
	memo := make(map[int]*Stage)
	var order []*Stage

	var stageOf func(boundary *RDD) *Stage
	stageOf = func(boundary *RDD) *Stage {
		if s, ok := memo[boundary.id]; ok {
			return s
		}
		s := &Stage{
			id:          boundary.id,
			boundary:    boundary,
			tasks:       boundary.partitions,
			outMBOfTask: boundary.outMB,
			cacheOutput: boundary.cached,
			driverHeld:  boundary.driverHeld,
			serialWork:  serial,
		}
		memo[boundary.id] = s

		// Pipeline narrow, uncached ancestors into this stage; every stage
		// boundary encountered becomes a parent dependency.
		var walk func(r *RDD)
		walk = func(r *RDD) {
			s.workPerTask += r.work
			for _, d := range r.deps {
				switch {
				case d.Wide:
					s.parents = append(s.parents, StageDep{Stage: stageOf(d.Parent), AllParts: true, Shuffle: true})
				case d.Broadcast:
					s.parents = append(s.parents, StageDep{Stage: stageOf(d.Parent), AllParts: true})
				case d.Parent.cached || d.Parent.driverHeld:
					s.parents = append(s.parents, StageDep{Stage: stageOf(d.Parent)})
				default:
					walk(d.Parent)
				}
			}
		}
		walk(boundary)
		order = append(order, s)
		return s
	}
	stageOf(j.final)
	j.stages = order // children appended after parents: topological
}

// Stages returns the job's stages in execution (topological) order.
func (j *BatchJob) Stages() []*Stage { return j.stages }

// FinalStage returns the result stage.
func (j *BatchJob) FinalStage() *Stage { return j.stages[len(j.stages)-1] }

// TotalPlannedWork returns the job's planned seconds at unit speed across
// all stages (each stage counted once).
func (j *BatchJob) TotalPlannedWork() float64 {
	var sum float64
	for _, s := range j.stages {
		sum += s.PlannedWork()
	}
	return sum
}

// ShuffleWorkFraction returns the fraction of planned work in stages that
// consume a shuffle. A coarse structural measure; the policy prefers
// ShuffleTimeFraction.
func (j *BatchJob) ShuffleWorkFraction() float64 {
	total := j.TotalPlannedWork()
	if total == 0 {
		return 0
	}
	var sync float64
	for _, s := range j.stages {
		if s.IsShuffle() {
			sync += s.PlannedWork()
		}
	}
	return sync / total
}

// DefaultShuffleNetMBps is the aggregate shuffle bandwidth assumed by the
// synchronous-time heuristic.
const DefaultShuffleNetMBps = 1000

// ShuffleBytesMB returns the total data volume moved through shuffles: for
// every shuffle dependency, all of the parent stage's output.
func (j *BatchJob) ShuffleBytesMB() float64 {
	var mb float64
	for _, s := range j.stages {
		mb += s.ShuffleInputMB()
	}
	return mb
}

// ShuffleTimeFraction returns the paper's r heuristic, "synchronous
// execution time / total running time": the time spent moving shuffle data
// (at netMBps aggregate bandwidth; pass 0 for the default) as a fraction of
// the job's planned time. Shuffle-heavy jobs (ALS) score high — killing
// executors would lose expensive shuffle outputs — while map-heavy jobs
// over cached inputs (K-means) score near zero.
func (j *BatchJob) ShuffleTimeFraction(netMBps float64) float64 {
	if netMBps <= 0 {
		netMBps = DefaultShuffleNetMBps
	}
	sync := j.ShuffleBytesMB() / netMBps
	total := j.TotalPlannedWork() + sync
	if total == 0 {
		return 0
	}
	return sync / total
}
