// Package metrics provides lightweight time-series and summary statistics
// for experiments: throughput timelines (Figs. 7b, 8a), latency
// distributions, and quantile summaries.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Point is one sample of a time series.
type Point struct {
	T time.Duration
	V float64
}

// TimeSeries is an append-only series of (time, value) samples.
type TimeSeries struct {
	Name   string
	points []Point
}

// NewTimeSeries creates an empty named series.
func NewTimeSeries(name string) *TimeSeries { return &TimeSeries{Name: name} }

// Add appends a sample. Samples must be appended in non-decreasing time
// order; out-of-order samples are rejected with an error.
func (s *TimeSeries) Add(t time.Duration, v float64) error {
	if n := len(s.points); n > 0 && t < s.points[n-1].T {
		return fmt.Errorf("metrics: sample at %v precedes last sample at %v", t, s.points[n-1].T)
	}
	s.points = append(s.points, Point{T: t, V: v})
	return nil
}

// Len returns the sample count.
func (s *TimeSeries) Len() int { return len(s.points) }

// Points returns the underlying samples (do not mutate).
func (s *TimeSeries) Points() []Point { return s.points }

// At returns the most recent value at or before t (step interpolation), or
// 0 if t precedes the first sample.
func (s *TimeSeries) At(t time.Duration) float64 {
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].T > t })
	if i == 0 {
		return 0
	}
	return s.points[i-1].V
}

// Mean returns the time-weighted mean over the sampled interval (simple
// mean when all samples share a timestamp or there is a single sample).
func (s *TimeSeries) Mean() float64 {
	n := len(s.points)
	if n == 0 {
		return 0
	}
	if n == 1 || s.points[n-1].T == s.points[0].T {
		var sum float64
		for _, p := range s.points {
			sum += p.V
		}
		return sum / float64(n)
	}
	var area float64
	for i := 1; i < n; i++ {
		dt := (s.points[i].T - s.points[i-1].T).Seconds()
		area += s.points[i-1].V * dt
	}
	return area / (s.points[n-1].T - s.points[0].T).Seconds()
}

// Max returns the maximum sampled value (0 for an empty series).
func (s *TimeSeries) Max() float64 {
	m := math.Inf(-1)
	for _, p := range s.points {
		if p.V > m {
			m = p.V
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Table renders the series as aligned "time value" rows — the textual
// equivalent of a figure's timeline.
func (s *TimeSeries) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Name)
	for _, p := range s.points {
		fmt.Fprintf(&b, "%10.1f %12.3f\n", p.T.Seconds(), p.V)
	}
	return b.String()
}

// Summary holds order statistics of a sample set.
type Summary struct {
	Count              int
	Mean, Min, Max     float64
	P50, P90, P95, P99 float64
	StdDev             float64
}

// Summarize computes order statistics over xs.
func Summarize(xs []float64) Summary {
	var s Summary
	s.Count = len(xs)
	if s.Count == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	s.Mean = sum / float64(s.Count)
	s.Min, s.Max = sorted[0], sorted[s.Count-1]
	s.P50 = Quantile(sorted, 0.50)
	s.P90 = Quantile(sorted, 0.90)
	s.P95 = Quantile(sorted, 0.95)
	s.P99 = Quantile(sorted, 0.99)
	variance := sumSq/float64(s.Count) - s.Mean*s.Mean
	if variance > 0 {
		s.StdDev = math.Sqrt(variance)
	}
	return s
}

// Quantile returns the q-quantile of an ascending-sorted slice, with linear
// interpolation between ranks.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
