package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeSeriesAddOrdering(t *testing.T) {
	s := NewTimeSeries("x")
	if err := s.Add(time.Second, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(time.Second, 2); err != nil {
		t.Fatal(err) // equal timestamps allowed
	}
	if err := s.Add(500*time.Millisecond, 3); err == nil {
		t.Error("out-of-order sample accepted")
	}
	if s.Len() != 2 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestTimeSeriesAt(t *testing.T) {
	s := NewTimeSeries("x")
	s.Add(10*time.Second, 1)
	s.Add(20*time.Second, 2)
	if got := s.At(5 * time.Second); got != 0 {
		t.Errorf("At before first = %g", got)
	}
	if got := s.At(10 * time.Second); got != 1 {
		t.Errorf("At(10s) = %g", got)
	}
	if got := s.At(15 * time.Second); got != 1 {
		t.Errorf("At(15s) = %g (step)", got)
	}
	if got := s.At(25 * time.Second); got != 2 {
		t.Errorf("At(25s) = %g", got)
	}
}

func TestTimeSeriesMean(t *testing.T) {
	s := NewTimeSeries("x")
	if s.Mean() != 0 {
		t.Error("empty mean != 0")
	}
	s.Add(0, 10)
	if s.Mean() != 10 {
		t.Errorf("single-sample mean = %g", s.Mean())
	}
	// 10 for 10s, then 20 for 10s: time-weighted mean 15.
	s.Add(10*time.Second, 20)
	s.Add(20*time.Second, 20)
	if got := s.Mean(); math.Abs(got-15) > 1e-9 {
		t.Errorf("time-weighted mean = %g, want 15", got)
	}
}

func TestTimeSeriesMaxAndTable(t *testing.T) {
	s := NewTimeSeries("throughput")
	if s.Max() != 0 {
		t.Error("empty max != 0")
	}
	s.Add(0, 3)
	s.Add(time.Second, 7)
	s.Add(2*time.Second, 5)
	if s.Max() != 7 {
		t.Errorf("max = %g", s.Max())
	}
	tab := s.Table()
	if !strings.Contains(tab, "throughput") || !strings.Contains(tab, "7.000") {
		t.Errorf("table rendering:\n%s", tab)
	}
	if len(s.Points()) != 3 {
		t.Error("points accessor wrong")
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 {
		t.Errorf("empty summary: %+v", s)
	}
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Errorf("summary: %+v", s)
	}
	if s.StdDev <= 0 {
		t.Error("zero stddev for varied data")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 0.25: 2, 0.5: 3, 0.75: 4, 1: 5}
	for q, want := range cases {
		if got := Quantile(sorted, q); math.Abs(got-want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", q, got, want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile != 0")
	}
	// Interpolation between ranks.
	if got := Quantile([]float64{0, 10}, 0.5); got != 5 {
		t.Errorf("interpolated median = %g, want 5", got)
	}
}

func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		// Order statistics are ordered.
		return s.Min <= s.P50+1e-9 && s.P50 <= s.P90+1e-9 &&
			s.P90 <= s.P95+1e-9 && s.P95 <= s.P99+1e-9 && s.P99 <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
