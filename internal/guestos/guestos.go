// Package guestos simulates the guest operating system of a deflatable VM,
// in particular the resource hot-plug/hot-unplug mechanisms that OS-level
// deflation relies on (§3.2.2 of the paper).
//
// The simulation reproduces the semantics the paper's design depends on:
//
//   - CPU hot-unplug works at whole-vCPU granularity only, and CPUs with
//     pinned tasks cannot be safely unplugged.
//   - Memory hot-unplug is best-effort: only free pages (and droppable page
//     cache) can be migrated into a contiguous zone and released, some
//     fraction is lost to fragmentation, and the operation takes time
//     proportional to the pages migrated.
//   - Unplugging memory below the application's resident set is unsafe; a
//     forced unplug (used by the paper's "OS only" comparison, Fig. 5a)
//     triggers the OOM killer and terminates the application.
package guestos

import (
	"fmt"
	"time"
)

// Config describes the booted shape of a guest.
type Config struct {
	CPUs        int     // vCPUs the guest booted with
	MemoryMB    float64 // memory the guest booted with
	KernelMemMB float64 // unreclaimable kernel/reserved memory (default 256)
	PinnedCPUs  int     // CPUs hosting pinned tasks, never unpluggable (default 0)

	// MigrationEfficiency is the fraction of theoretically-free memory that
	// page migration can actually coalesce and release (default 0.92; the
	// remainder is lost to fragmentation and busy pages).
	MigrationEfficiency float64
	// PageMigrateMBps is the page-migration bandwidth for memory unplug
	// (default 1200 MB/s; calibrated so that hot-unplugging half of a
	// 100 GB VM takes tens of seconds, per Fig. 8b).
	PageMigrateMBps float64
	// CPUHotplugLatency is the per-vCPU hot(un)plug latency (default 100ms).
	CPUHotplugLatency time.Duration

	// BalloonMBps is the balloon driver's page-grab rate (default
	// 8000 MB/s — ballooning pins scattered free pages without migrating
	// them, so it is far faster than hot-unplug).
	BalloonMBps float64
	// BalloonFragPenalty scales the performance cost of the memory
	// fragmentation ballooning leaves behind (default 0.10: a fully
	// ballooned guest loses ~10% throughput to allocation stalls and
	// compaction — the reason the paper prefers hotplug, §7).
	BalloonFragPenalty float64

	// WriteIntensity is the fraction of the application's resident set the
	// workload re-dirties per second (default 0.02: a 16 GB RSS redirties
	// ~330 MB/s). It drives the dirty-page rate that pre-copy live
	// migration must outrun, so deflating a VM — shrinking its RSS — also
	// shrinks its dirty rate.
	WriteIntensity float64
}

func (c Config) withDefaults() Config {
	if c.KernelMemMB == 0 {
		c.KernelMemMB = 256
	}
	if c.MigrationEfficiency == 0 {
		c.MigrationEfficiency = 0.92
	}
	if c.PageMigrateMBps == 0 {
		c.PageMigrateMBps = 1200
	}
	if c.CPUHotplugLatency == 0 {
		c.CPUHotplugLatency = 100 * time.Millisecond
	}
	if c.BalloonMBps == 0 {
		c.BalloonMBps = 8000
	}
	if c.BalloonFragPenalty == 0 {
		c.BalloonFragPenalty = 0.10
	}
	if c.WriteIntensity == 0 {
		c.WriteIntensity = 0.02
	}
	return c
}

// GuestOS is a simulated guest kernel. It tracks plugged resources and the
// application's memory footprint, and implements best-effort hot-unplug.
// GuestOS is not safe for concurrent use.
type GuestOS struct {
	cfg Config

	cpus  int     // currently plugged vCPUs
	memMB float64 // currently plugged memory

	appRSSMB    float64 // application resident set
	pageCacheMB float64 // droppable page cache
	balloonMB   float64 // pages pinned by the balloon driver

	oomKilled bool
}

// New boots a guest with the given configuration.
func New(cfg Config) (*GuestOS, error) {
	cfg = cfg.withDefaults()
	if cfg.CPUs < 1 {
		return nil, fmt.Errorf("guestos: need ≥1 CPU, got %d", cfg.CPUs)
	}
	if cfg.MemoryMB <= cfg.KernelMemMB {
		return nil, fmt.Errorf("guestos: memory %gMB does not cover kernel reserve %gMB",
			cfg.MemoryMB, cfg.KernelMemMB)
	}
	if cfg.PinnedCPUs < 0 || cfg.PinnedCPUs > cfg.CPUs {
		return nil, fmt.Errorf("guestos: pinned CPUs %d out of range [0,%d]", cfg.PinnedCPUs, cfg.CPUs)
	}
	return &GuestOS{cfg: cfg, cpus: cfg.CPUs, memMB: cfg.MemoryMB}, nil
}

// Config returns the boot configuration (with defaults applied).
func (g *GuestOS) Config() Config { return g.cfg }

// CPUs returns the number of currently plugged vCPUs.
func (g *GuestOS) CPUs() int { return g.cpus }

// MemoryMB returns the currently plugged guest memory.
func (g *GuestOS) MemoryMB() float64 { return g.memMB }

// OOMKilled reports whether the OOM killer has terminated the application.
func (g *GuestOS) OOMKilled() bool { return g.oomKilled }

// SetAppFootprint records the application's memory use as seen by the guest:
// its resident set plus the page cache it is generating. The guest uses this
// to compute safely-unpluggable memory. Setting a resident set larger than
// plugged memory immediately OOM-kills the application (the guest has no
// swap device, as is typical for cloud VMs; host-level swap is the
// hypervisor's business).
func (g *GuestOS) SetAppFootprint(rssMB, pageCacheMB float64) {
	if rssMB < 0 || pageCacheMB < 0 {
		panic(fmt.Sprintf("guestos: negative footprint rss=%g cache=%g", rssMB, pageCacheMB))
	}
	g.appRSSMB = rssMB
	// The page cache can never exceed what physically fits: under memory
	// pressure the kernel drops cache pages before anything else.
	if avail := g.memMB - g.cfg.KernelMemMB - rssMB; pageCacheMB > avail {
		pageCacheMB = avail
		if pageCacheMB < 0 {
			pageCacheMB = 0
		}
	}
	g.pageCacheMB = pageCacheMB
	g.checkOOM()
}

// AppRSSMB returns the recorded application resident set.
func (g *GuestOS) AppRSSMB() float64 { return g.appRSSMB }

// DirtyRateMBps returns the rate at which the workload re-dirties pages:
// the application's resident set scaled by the configured write intensity.
// This is the rate a pre-copy migration stream has to keep ahead of.
func (g *GuestOS) DirtyRateMBps() float64 { return g.appRSSMB * g.cfg.WriteIntensity }

// PageCacheMB returns the recorded page cache size.
func (g *GuestOS) PageCacheMB() float64 { return g.pageCacheMB }

func (g *GuestOS) checkOOM() {
	if g.appRSSMB+g.cfg.KernelMemMB > g.memMB {
		g.oomKilled = true
	}
}

// FreeMemMB returns memory neither used by the kernel, the application, the
// page cache, nor pinned by the balloon.
func (g *GuestOS) FreeMemMB() float64 {
	free := g.memMB - g.cfg.KernelMemMB - g.appRSSMB - g.pageCacheMB - g.balloonMB
	if free < 0 {
		return 0
	}
	return free
}

// BalloonMB returns the memory currently pinned by the balloon driver.
func (g *GuestOS) BalloonMB() float64 { return g.balloonMB }

// InflateBalloon pins up to mb of guest memory (free pages first, then
// droppable page cache) so the hypervisor can reclaim the backing frames.
// Unlike hot-unplug, ballooning grabs scattered pages without migration —
// fast, but it fragments the guest's memory (see FragmentationPenalty). It
// returns the amount actually pinned and the operation latency.
func (g *GuestOS) InflateBalloon(mb float64) (pinnedMB float64, latency time.Duration) {
	if mb <= 0 {
		return 0, 0
	}
	if max := g.FreeMemMB() + g.pageCacheMB; mb > max {
		mb = max
	}
	// Consume free pages first, dropping cache for the remainder.
	if overflow := mb - g.FreeMemMB(); overflow > 0 {
		g.pageCacheMB -= overflow
		if g.pageCacheMB < 0 {
			g.pageCacheMB = 0
		}
	}
	g.balloonMB += mb
	return mb, time.Duration(mb / g.cfg.BalloonMBps * float64(time.Second))
}

// DeflateBalloon releases up to mb of ballooned memory back to the guest.
func (g *GuestOS) DeflateBalloon(mb float64) (releasedMB float64, latency time.Duration) {
	if mb <= 0 {
		return 0, 0
	}
	if mb > g.balloonMB {
		mb = g.balloonMB
	}
	g.balloonMB -= mb
	return mb, time.Duration(mb / g.cfg.BalloonMBps * float64(time.Second))
}

// FragmentationPenalty returns the multiplicative throughput factor (≤1)
// the guest suffers from balloon-induced fragmentation: the balloon's
// scattered pinned pages force allocation stalls and compaction in
// proportion to the ballooned share of memory.
func (g *GuestOS) FragmentationPenalty() float64 {
	if g.balloonMB <= 0 || g.memMB <= 0 {
		return 1
	}
	return 1 / (1 + g.cfg.BalloonFragPenalty*g.balloonMB/g.memMB)
}

// SafelyUnpluggableMB returns how much memory a best-effort unplug could
// release right now: free memory plus droppable page cache, scaled by the
// migration efficiency.
func (g *GuestOS) SafelyUnpluggableMB() float64 {
	return (g.FreeMemMB() + g.pageCacheMB) * g.cfg.MigrationEfficiency
}

// SafelyUnpluggableCPUs returns how many vCPUs can be unplugged: everything
// above the pinned set, always leaving one CPU online.
func (g *GuestOS) SafelyUnpluggableCPUs() int {
	floor := g.cfg.PinnedCPUs
	if floor < 1 {
		floor = 1
	}
	n := g.cpus - floor
	if n < 0 {
		return 0
	}
	return n
}

// UnplugCPUs offlines up to n vCPUs, best-effort. It returns how many were
// actually unplugged and the operation latency.
func (g *GuestOS) UnplugCPUs(n int) (unplugged int, latency time.Duration) {
	if n <= 0 {
		return 0, 0
	}
	if max := g.SafelyUnpluggableCPUs(); n > max {
		n = max
	}
	g.cpus -= n
	return n, time.Duration(n) * g.cfg.CPUHotplugLatency
}

// PlugCPUs onlines up to n vCPUs, never exceeding the boot count. It returns
// how many were plugged and the operation latency.
func (g *GuestOS) PlugCPUs(n int) (plugged int, latency time.Duration) {
	if n <= 0 {
		return 0, 0
	}
	if g.cpus+n > g.cfg.CPUs {
		n = g.cfg.CPUs - g.cpus
	}
	g.cpus += n
	return n, time.Duration(n) * g.cfg.CPUHotplugLatency
}

// UnplugMemory releases up to mb of guest memory back to the hypervisor,
// best-effort: the released amount never exceeds SafelyUnpluggableMB. Page
// cache is dropped as needed (cheapest pages first: free memory, then
// cache). It returns the memory actually released and the page-migration
// latency.
func (g *GuestOS) UnplugMemory(mb float64) (freedMB float64, latency time.Duration) {
	if mb <= 0 {
		return 0, 0
	}
	if max := g.SafelyUnpluggableMB(); mb > max {
		mb = max
	}
	g.applyMemUnplug(mb)
	return mb, g.migrationLatency(mb)
}

// ForceUnplugMemory releases exactly mb of guest memory regardless of
// safety, modelling an administrator-forced OS-level reclamation (the
// paper's "OS only" mode). If the remaining memory cannot hold the kernel
// plus the application's resident set, the OOM killer fires and the
// application is terminated. The released amount is capped only by the
// kernel reserve (the guest cannot unplug its own kernel).
func (g *GuestOS) ForceUnplugMemory(mb float64) (freedMB float64, latency time.Duration) {
	if mb <= 0 {
		return 0, 0
	}
	if max := g.memMB - g.cfg.KernelMemMB; mb > max {
		mb = max
	}
	g.applyMemUnplug(mb)
	g.checkOOM()
	return mb, g.migrationLatency(mb)
}

func (g *GuestOS) applyMemUnplug(mb float64) {
	g.memMB -= mb
	// Dropping memory consumes free pages first, then page cache.
	overflow := g.cfg.KernelMemMB + g.appRSSMB + g.pageCacheMB - g.memMB
	if overflow > 0 {
		g.pageCacheMB -= overflow
		if g.pageCacheMB < 0 {
			g.pageCacheMB = 0
		}
	}
}

// PlugMemory returns mb of memory to the guest, never exceeding the boot
// size. It returns the amount plugged; hot-add is fast (no migration), so
// latency is a single hotplug round trip.
func (g *GuestOS) PlugMemory(mb float64) (pluggedMB float64, latency time.Duration) {
	if mb <= 0 {
		return 0, 0
	}
	if g.memMB+mb > g.cfg.MemoryMB {
		mb = g.cfg.MemoryMB - g.memMB
	}
	g.memMB += mb
	return mb, g.cfg.CPUHotplugLatency
}

func (g *GuestOS) migrationLatency(mb float64) time.Duration {
	return time.Duration(mb / g.cfg.PageMigrateMBps * float64(time.Second))
}

// Snapshot is the transferable state of a guest kernel, as captured for live
// migration. An OOM-killed guest is not snapshotable — there is nothing left
// worth moving — so Snapshot carries no kill flag.
type Snapshot struct {
	Config      Config  `json:"config"`
	CPUs        int     `json:"cpus"`
	MemoryMB    float64 `json:"memory_mb"`
	AppRSSMB    float64 `json:"app_rss_mb"`
	PageCacheMB float64 `json:"page_cache_mb"`
	BalloonMB   float64 `json:"balloon_mb"`
}

// Snapshot captures the guest's current plugged resources and footprint.
func (g *GuestOS) Snapshot() Snapshot {
	return Snapshot{
		Config:      g.cfg,
		CPUs:        g.cpus,
		MemoryMB:    g.memMB,
		AppRSSMB:    g.appRSSMB,
		PageCacheMB: g.pageCacheMB,
		BalloonMB:   g.balloonMB,
	}
}

// Restore boots a guest from a snapshot, re-validating it as wire data: the
// plugged state must fit within the boot configuration and keep the
// application alive (a snapshot whose resident set does not fit would have
// been OOM-killed on the source and is rejected here).
func Restore(s Snapshot) (*GuestOS, error) {
	g, err := New(s.Config)
	if err != nil {
		return nil, err
	}
	if s.CPUs < 1 || s.CPUs > g.cfg.CPUs {
		return nil, fmt.Errorf("guestos: snapshot CPUs %d out of range [1,%d]", s.CPUs, g.cfg.CPUs)
	}
	if s.MemoryMB <= g.cfg.KernelMemMB || s.MemoryMB > g.cfg.MemoryMB {
		return nil, fmt.Errorf("guestos: snapshot memory %gMB out of range (%gMB,%gMB]",
			s.MemoryMB, g.cfg.KernelMemMB, g.cfg.MemoryMB)
	}
	if s.AppRSSMB < 0 || s.PageCacheMB < 0 || s.BalloonMB < 0 {
		return nil, fmt.Errorf("guestos: snapshot has negative footprint")
	}
	if s.AppRSSMB+g.cfg.KernelMemMB > s.MemoryMB {
		return nil, fmt.Errorf("guestos: snapshot RSS %gMB does not fit %gMB memory (OOM on source)",
			s.AppRSSMB, s.MemoryMB)
	}
	g.cpus = s.CPUs
	g.memMB = s.MemoryMB
	g.balloonMB = s.BalloonMB
	g.SetAppFootprint(s.AppRSSMB, s.PageCacheMB)
	return g, nil
}
