package guestos

import (
	"testing"
	"testing/quick"
	"time"
)

func newGuest(t *testing.T, cfg Config) *GuestOS {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g
}

func std(t *testing.T) *GuestOS {
	return newGuest(t, Config{CPUs: 4, MemoryMB: 16384})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{CPUs: 0, MemoryMB: 1024}); err == nil {
		t.Error("zero CPUs accepted")
	}
	if _, err := New(Config{CPUs: 1, MemoryMB: 100}); err == nil {
		t.Error("memory below kernel reserve accepted")
	}
	if _, err := New(Config{CPUs: 2, MemoryMB: 1024, PinnedCPUs: 3}); err == nil {
		t.Error("pinned > CPUs accepted")
	}
}

func TestDefaults(t *testing.T) {
	g := std(t)
	cfg := g.Config()
	if cfg.KernelMemMB != 256 || cfg.MigrationEfficiency != 0.92 ||
		cfg.PageMigrateMBps != 1200 || cfg.CPUHotplugLatency != 100*time.Millisecond {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestCPUUnplugGranularityAndFloor(t *testing.T) {
	g := std(t)
	n, lat := g.UnplugCPUs(2)
	if n != 2 || g.CPUs() != 2 {
		t.Errorf("UnplugCPUs(2) = %d, CPUs = %d", n, g.CPUs())
	}
	if lat != 200*time.Millisecond {
		t.Errorf("latency = %v, want 200ms", lat)
	}
	// Can never unplug the last CPU.
	n, _ = g.UnplugCPUs(10)
	if n != 1 || g.CPUs() != 1 {
		t.Errorf("unplug to floor: n=%d CPUs=%d, want 1 CPU left", n, g.CPUs())
	}
	n, _ = g.UnplugCPUs(1)
	if n != 0 {
		t.Errorf("unplugged last CPU: n=%d", n)
	}
}

func TestPinnedCPUsNotUnpluggable(t *testing.T) {
	g := newGuest(t, Config{CPUs: 4, MemoryMB: 16384, PinnedCPUs: 3})
	if got := g.SafelyUnpluggableCPUs(); got != 1 {
		t.Errorf("SafelyUnpluggableCPUs = %d, want 1", got)
	}
	n, _ := g.UnplugCPUs(4)
	if n != 1 || g.CPUs() != 3 {
		t.Errorf("unplug with pins: n=%d CPUs=%d, want n=1 CPUs=3", n, g.CPUs())
	}
}

func TestCPUPlugCap(t *testing.T) {
	g := std(t)
	g.UnplugCPUs(3)
	n, _ := g.PlugCPUs(10)
	if n != 3 || g.CPUs() != 4 {
		t.Errorf("replug: n=%d CPUs=%d, want back to 4", n, g.CPUs())
	}
	if n, _ := g.PlugCPUs(1); n != 0 {
		t.Errorf("plug beyond boot size: n=%d", n)
	}
}

func TestMemoryUnplugBestEffort(t *testing.T) {
	g := std(t)
	g.SetAppFootprint(8000, 2000)
	// free = 16384-256-8000-2000 = 6128; unpluggable = (6128+2000)*0.92
	wantMax := (6128.0 + 2000.0) * 0.92
	if got := g.SafelyUnpluggableMB(); got != wantMax {
		t.Errorf("SafelyUnpluggableMB = %g, want %g", got, wantMax)
	}
	freed, lat := g.UnplugMemory(100000)
	if freed != wantMax {
		t.Errorf("freed = %g, want best-effort cap %g", freed, wantMax)
	}
	if lat <= 0 {
		t.Error("memory unplug reported zero latency")
	}
	if g.OOMKilled() {
		t.Error("best-effort unplug OOM-killed the app")
	}
	// RSS must still fit.
	if g.MemoryMB() < g.AppRSSMB()+g.Config().KernelMemMB {
		t.Errorf("best-effort unplug went below RSS: mem=%g rss=%g", g.MemoryMB(), g.AppRSSMB())
	}
}

func TestMemoryUnplugDropsPageCache(t *testing.T) {
	g := std(t)
	g.SetAppFootprint(10000, 4000)
	// free = 16384-256-10000-4000 = 2128. Unplug more than free: cache drops.
	freed, _ := g.UnplugMemory(5000)
	if freed != 5000 {
		t.Fatalf("freed = %g, want 5000", freed)
	}
	if g.PageCacheMB() >= 4000 {
		t.Errorf("page cache not dropped: %g", g.PageCacheMB())
	}
	if g.FreeMemMB() != 0 {
		t.Errorf("free after unplug = %g, want 0", g.FreeMemMB())
	}
}

func TestForceUnplugTriggersOOM(t *testing.T) {
	g := std(t)
	g.SetAppFootprint(12000, 0)
	// Force below kernel+rss = 12256.
	freed, _ := g.ForceUnplugMemory(8000)
	if freed != 8000 {
		t.Errorf("forced freed = %g, want 8000", freed)
	}
	if !g.OOMKilled() {
		t.Error("forced unplug below RSS did not OOM-kill")
	}
}

func TestForceUnplugCannotTakeKernel(t *testing.T) {
	g := std(t)
	freed, _ := g.ForceUnplugMemory(1e9)
	if want := 16384.0 - 256.0; freed != want {
		t.Errorf("forced freed = %g, want %g (kernel reserve kept)", freed, want)
	}
	if g.MemoryMB() != 256 {
		t.Errorf("memory after max force-unplug = %g, want 256", g.MemoryMB())
	}
}

func TestSetFootprintOOM(t *testing.T) {
	g := std(t)
	g.SetAppFootprint(17000, 0)
	if !g.OOMKilled() {
		t.Error("RSS beyond plugged memory did not OOM")
	}
}

func TestPlugMemoryCap(t *testing.T) {
	g := std(t)
	g.UnplugMemory(4000)
	plugged, _ := g.PlugMemory(1e9)
	if g.MemoryMB() != 16384 {
		t.Errorf("memory after replug = %g, want 16384", g.MemoryMB())
	}
	if plugged <= 0 {
		t.Errorf("plugged = %g, want > 0", plugged)
	}
	if p, _ := g.PlugMemory(100); p != 0 {
		t.Errorf("plug beyond boot size = %g", p)
	}
}

func TestNegativeRequestsAreNoOps(t *testing.T) {
	g := std(t)
	if n, lat := g.UnplugCPUs(-1); n != 0 || lat != 0 {
		t.Error("negative CPU unplug did something")
	}
	if mb, lat := g.UnplugMemory(-5); mb != 0 || lat != 0 {
		t.Error("negative mem unplug did something")
	}
	if mb, lat := g.ForceUnplugMemory(0); mb != 0 || lat != 0 {
		t.Error("zero force unplug did something")
	}
	if n, lat := g.PlugCPUs(0); n != 0 || lat != 0 {
		t.Error("zero CPU plug did something")
	}
	if mb, lat := g.PlugMemory(-1); mb != 0 || lat != 0 {
		t.Error("negative mem plug did something")
	}
}

func TestNegativeFootprintPanics(t *testing.T) {
	g := std(t)
	defer func() {
		if recover() == nil {
			t.Fatal("negative footprint did not panic")
		}
	}()
	g.SetAppFootprint(-1, 0)
}

// Property: best-effort unplug never reduces memory below kernel + RSS, for
// any footprint and request size.
func TestQuickBestEffortUnplugSafe(t *testing.T) {
	f := func(rss, cache, req uint32) bool {
		g, err := New(Config{CPUs: 4, MemoryMB: 16384})
		if err != nil {
			return false
		}
		r := float64(rss % 16000)
		c := float64(cache % 8000)
		g.SetAppFootprint(r, c)
		if g.OOMKilled() {
			return true // footprint alone exceeded memory; unplug irrelevant
		}
		g.UnplugMemory(float64(req % 60000))
		return !g.OOMKilled() && g.MemoryMB() >= r+g.Config().KernelMemMB-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: plug/unplug round trips never exceed boot resources.
func TestQuickPlugBounds(t *testing.T) {
	f := func(ops []uint16) bool {
		g, err := New(Config{CPUs: 8, MemoryMB: 8192})
		if err != nil {
			return false
		}
		for i, op := range ops {
			if i%2 == 0 {
				g.UnplugCPUs(int(op % 10))
				g.UnplugMemory(float64(op % 4096))
			} else {
				g.PlugCPUs(int(op % 10))
				g.PlugMemory(float64(op % 4096))
			}
			if g.CPUs() < 1 || g.CPUs() > 8 || g.MemoryMB() < 0 || g.MemoryMB() > 8192 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDirtyRateTracksRSS(t *testing.T) {
	g, err := New(Config{CPUs: 4, MemoryMB: 16384})
	if err != nil {
		t.Fatal(err)
	}
	if g.DirtyRateMBps() != 0 {
		t.Errorf("idle guest dirty rate %g, want 0", g.DirtyRateMBps())
	}
	g.SetAppFootprint(8192, 1024)
	full := g.DirtyRateMBps()
	if full != 8192*0.02 {
		t.Errorf("dirty rate %g, want RSS * default write intensity", full)
	}
	// Deflation shrinks the RSS and, with it, the dirty rate — the
	// deflate-then-migrate premise.
	g.SetAppFootprint(2048, 0)
	if got := g.DirtyRateMBps(); got >= full {
		t.Errorf("deflated dirty rate %g not below full %g", got, full)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	g, err := New(Config{CPUs: 8, MemoryMB: 16384, WriteIntensity: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	g.SetAppFootprint(4096, 2048)
	g.UnplugCPUs(3)
	g.UnplugMemory(2000)
	g.InflateBalloon(512)

	r, err := Restore(g.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if r.CPUs() != g.CPUs() || r.MemoryMB() != g.MemoryMB() ||
		r.AppRSSMB() != g.AppRSSMB() || r.PageCacheMB() != g.PageCacheMB() ||
		r.BalloonMB() != g.BalloonMB() || r.DirtyRateMBps() != g.DirtyRateMBps() {
		t.Errorf("restore diverges:\n%+v\n%+v", r.Snapshot(), g.Snapshot())
	}
	if r.OOMKilled() {
		t.Error("restored guest spuriously OOM-killed")
	}
}

func TestRestoreRejectsCorruptSnapshots(t *testing.T) {
	g, err := New(Config{CPUs: 4, MemoryMB: 8192})
	if err != nil {
		t.Fatal(err)
	}
	g.SetAppFootprint(2048, 0)
	base := g.Snapshot()

	for name, mutate := range map[string]func(*Snapshot){
		"cpus-over-boot":   func(s *Snapshot) { s.CPUs = 5 },
		"cpus-zero":        func(s *Snapshot) { s.CPUs = 0 },
		"mem-over-boot":    func(s *Snapshot) { s.MemoryMB = 9000 },
		"mem-under-kernel": func(s *Snapshot) { s.MemoryMB = 100 },
		"rss-oom":          func(s *Snapshot) { s.AppRSSMB = 8100 },
		"negative-cache":   func(s *Snapshot) { s.PageCacheMB = -1 },
	} {
		s := base
		mutate(&s)
		if _, err := Restore(s); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", name)
		}
	}
}
