package guestos

import (
	"testing"
	"time"
)

func TestBalloonInflateDeflate(t *testing.T) {
	g := std(t)
	g.SetAppFootprint(8000, 2000)
	// free = 16384-256-8000-2000 = 6128; balloon can also drop cache.
	pinned, lat := g.InflateBalloon(7000)
	if pinned != 7000 {
		t.Errorf("pinned = %g, want 7000", pinned)
	}
	if lat <= 0 || lat > time.Second {
		t.Errorf("balloon latency = %v, want fast", lat)
	}
	if g.BalloonMB() != 7000 {
		t.Errorf("BalloonMB = %g", g.BalloonMB())
	}
	if g.PageCacheMB() >= 2000 {
		t.Errorf("page cache not squeezed: %g", g.PageCacheMB())
	}
	if g.FreeMemMB() != 0 {
		t.Errorf("free = %g, want 0", g.FreeMemMB())
	}

	released, _ := g.DeflateBalloon(3000)
	if released != 3000 || g.BalloonMB() != 4000 {
		t.Errorf("release = %g, balloon = %g", released, g.BalloonMB())
	}
	released, _ = g.DeflateBalloon(1e9)
	if released != 4000 || g.BalloonMB() != 0 {
		t.Errorf("full release = %g, balloon = %g", released, g.BalloonMB())
	}
}

func TestBalloonBoundedBySafeMemory(t *testing.T) {
	g := std(t)
	g.SetAppFootprint(12000, 2000)
	// free = 2128; free+cache = 4128. The balloon never touches RSS.
	pinned, _ := g.InflateBalloon(1e9)
	if want := 16384.0 - 256 - 12000; pinned != want {
		t.Errorf("pinned = %g, want %g", pinned, want)
	}
	if g.OOMKilled() {
		t.Error("ballooning OOM-killed the app")
	}
}

func TestBalloonFasterThanUnplug(t *testing.T) {
	a := std(t)
	a.SetAppFootprint(8000, 0)
	_, unplugLat := a.UnplugMemory(4000)

	b := std(t)
	b.SetAppFootprint(8000, 0)
	_, balloonLat := b.InflateBalloon(4000)

	if balloonLat >= unplugLat {
		t.Errorf("balloon %v not faster than unplug %v", balloonLat, unplugLat)
	}
}

func TestFragmentationPenalty(t *testing.T) {
	g := std(t)
	if g.FragmentationPenalty() != 1 {
		t.Error("penalty without balloon != 1")
	}
	g.InflateBalloon(8192) // half the guest
	p := g.FragmentationPenalty()
	if p >= 1 || p < 0.9 {
		t.Errorf("penalty at 50%% ballooned = %g, want ≈0.95", p)
	}
	g.InflateBalloon(1e9)
	if g.FragmentationPenalty() >= p {
		t.Error("penalty not increasing with balloon size")
	}
}

func TestBalloonNoOps(t *testing.T) {
	g := std(t)
	if mb, lat := g.InflateBalloon(-1); mb != 0 || lat != 0 {
		t.Error("negative inflate did something")
	}
	if mb, lat := g.DeflateBalloon(0); mb != 0 || lat != 0 {
		t.Error("zero deflate did something")
	}
}
