package simclock

import (
	"testing"
	"time"
)

func TestNowStartsAtZero(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Errorf("Now = %v, want 0", c.Now())
	}
}

func TestAtOrdering(t *testing.T) {
	c := New()
	var order []int
	c.At(3*time.Second, func(time.Duration) { order = append(order, 3) })
	c.At(1*time.Second, func(time.Duration) { order = append(order, 1) })
	c.At(2*time.Second, func(time.Duration) { order = append(order, 2) })
	c.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("events ran in order %v, want [1 2 3]", order)
	}
	if c.Now() != 3*time.Second {
		t.Errorf("final Now = %v, want 3s", c.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(time.Second, func(time.Duration) { order = append(order, i) })
	}
	c.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("same-instant events ran out of order: %v", order)
		}
	}
}

func TestAfter(t *testing.T) {
	c := New()
	var fired time.Duration
	c.After(5*time.Second, func(now time.Duration) { fired = now })
	c.Run()
	if fired != 5*time.Second {
		t.Errorf("fired at %v, want 5s", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	c := New()
	c.At(10*time.Second, func(time.Duration) {})
	c.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At in the past did not panic")
		}
	}()
	c.At(time.Second, func(time.Duration) {})
}

func TestNegativeAfterPanics(t *testing.T) {
	c := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	c.After(-time.Second, func(time.Duration) {})
}

func TestCancel(t *testing.T) {
	c := New()
	ran := false
	e := c.After(time.Second, func(time.Duration) { ran = true })
	e.Cancel()
	c.Run()
	if ran {
		t.Error("canceled event ran")
	}
}

func TestRunUntil(t *testing.T) {
	c := New()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4} {
		c.At(d*time.Second, func(now time.Duration) { fired = append(fired, now) })
	}
	c.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Errorf("RunUntil(2s) fired %d events, want 2", len(fired))
	}
	if c.Now() != 2*time.Second {
		t.Errorf("Now = %v, want 2s", c.Now())
	}
	if c.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", c.Pending())
	}
	c.Run()
	if len(fired) != 4 {
		t.Errorf("after Run, fired %d events, want 4", len(fired))
	}
}

func TestRunUntilAdvancesWithNoEvents(t *testing.T) {
	c := New()
	c.RunUntil(time.Minute)
	if c.Now() != time.Minute {
		t.Errorf("Now = %v, want 1m", c.Now())
	}
}

func TestRunUntilPastPanics(t *testing.T) {
	c := New()
	c.RunUntil(time.Minute)
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil in the past did not panic")
		}
	}()
	c.RunUntil(time.Second)
}

func TestAdvance(t *testing.T) {
	c := New()
	c.Advance(30 * time.Second)
	c.Advance(30 * time.Second)
	if c.Now() != time.Minute {
		t.Errorf("Now = %v, want 1m", c.Now())
	}
}

func TestEvery(t *testing.T) {
	c := New()
	var ticks []time.Duration
	c.Every(time.Second, func(now time.Duration) bool {
		ticks = append(ticks, now)
		return len(ticks) < 3
	})
	c.Run()
	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Errorf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestEveryStop(t *testing.T) {
	c := New()
	n := 0
	stop := c.Every(time.Second, func(time.Duration) bool { n++; return true })
	c.RunUntil(3 * time.Second)
	stop()
	c.RunUntil(10 * time.Second)
	if n != 3 {
		t.Errorf("ticks after stop = %d, want 3", n)
	}
}

func TestEveryBadIntervalPanics(t *testing.T) {
	c := New()
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	c.Every(0, func(time.Duration) bool { return false })
}

func TestNestedScheduling(t *testing.T) {
	// Events scheduled from within callbacks must still run in time order.
	c := New()
	var order []string
	c.At(time.Second, func(time.Duration) {
		order = append(order, "a")
		c.After(time.Second, func(time.Duration) { order = append(order, "c") })
	})
	c.At(1500*time.Millisecond, func(time.Duration) { order = append(order, "b") })
	c.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Errorf("order = %v, want [a b c]", order)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	c := New()
	if c.Step() {
		t.Error("Step on empty queue returned true")
	}
	e := c.After(time.Second, func(time.Duration) {})
	e.Cancel()
	if c.Step() {
		t.Error("Step with only canceled events returned true")
	}
}
