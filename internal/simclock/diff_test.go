package simclock

// This file proves the calendar-queue engine behaviorally identical to the
// binary-heap engine it replaced. The heap lives on below as refClock — the
// reference model — and the differential driver runs byte-scripted
// schedule/cancel/Every/Step/RunUntil sequences against both engines,
// asserting identical firing order (including same-instant FIFO ties),
// identical Pending counts after every operation, and identical final
// clocks. FuzzEventQueue feeds the same driver from the fuzzer.

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// --- Reference model: the original container/heap engine, verbatim -------

type refClock struct {
	now    time.Duration
	queue  refQueue
	nextID uint64
}

type refEvent struct {
	id       uint64
	at       time.Duration
	fn       func(now time.Duration)
	canceled bool
	index    int
}

func (e *refEvent) Cancel() { e.canceled = true }

func (c *refClock) Now() time.Duration { return c.now }
func (c *refClock) Pending() int       { return c.queue.Len() }

func (c *refClock) At(t time.Duration, fn func(now time.Duration)) *refEvent {
	if t < c.now {
		panic(fmt.Sprintf("refclock: scheduling at %v which is before now %v", t, c.now))
	}
	c.nextID++
	e := &refEvent{id: c.nextID, at: t, fn: fn}
	heap.Push(&c.queue, e)
	return e
}

func (c *refClock) After(d time.Duration, fn func(now time.Duration)) *refEvent {
	if d < 0 {
		panic(fmt.Sprintf("refclock: negative delay %v", d))
	}
	return c.At(c.now+d, fn)
}

func (c *refClock) Every(interval time.Duration, fn func(now time.Duration) bool) (stop func()) {
	if interval <= 0 {
		panic(fmt.Sprintf("refclock: non-positive interval %v", interval))
	}
	stopped := false
	var schedule func()
	schedule = func() {
		c.After(interval, func(now time.Duration) {
			if stopped {
				return
			}
			if fn(now) {
				schedule()
			}
		})
	}
	schedule()
	return func() { stopped = true }
}

func (c *refClock) Step() bool {
	for c.queue.Len() > 0 {
		e := heap.Pop(&c.queue).(*refEvent)
		if e.canceled {
			continue
		}
		c.now = e.at
		e.fn(c.now)
		return true
	}
	return false
}

func (c *refClock) Run() {
	for c.Step() {
	}
}

func (c *refClock) RunUntil(t time.Duration) {
	if t < c.now {
		panic(fmt.Sprintf("refclock: RunUntil(%v) is before now %v", t, c.now))
	}
	for c.queue.Len() > 0 {
		e := c.queue[0]
		if e.at > t {
			break
		}
		c.Step()
	}
	c.now = t
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }

func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].id < q[j].id
}

func (q refQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *refQueue) Push(x any) {
	e := x.(*refEvent)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// --- Engine adapters ------------------------------------------------------

type canceler interface{ Cancel() }

// testEngine is the surface the differential driver exercises.
type testEngine interface {
	Now() time.Duration
	Pending() int
	At(time.Duration, func(time.Duration)) canceler
	Every(time.Duration, func(time.Duration) bool) func()
	Step() bool
	RunUntil(time.Duration)
}

type calEngine struct{ c *Clock }

func (e calEngine) Now() time.Duration { return e.c.Now() }
func (e calEngine) Pending() int       { return e.c.Pending() }
func (e calEngine) At(t time.Duration, fn func(time.Duration)) canceler {
	return e.c.At(t, fn)
}
func (e calEngine) Every(iv time.Duration, fn func(time.Duration) bool) func() {
	return e.c.Every(iv, fn)
}
func (e calEngine) Step() bool               { return e.c.Step() }
func (e calEngine) RunUntil(t time.Duration) { e.c.RunUntil(t) }

type refEngine struct{ c *refClock }

func (e refEngine) Now() time.Duration { return e.c.Now() }
func (e refEngine) Pending() int       { return e.c.Pending() }
func (e refEngine) At(t time.Duration, fn func(time.Duration)) canceler {
	return e.c.At(t, fn)
}
func (e refEngine) Every(iv time.Duration, fn func(time.Duration) bool) func() {
	return e.c.Every(iv, fn)
}
func (e refEngine) Step() bool               { return e.c.Step() }
func (e refEngine) RunUntil(t time.Duration) { e.c.RunUntil(t) }

// --- Byte-scripted driver -------------------------------------------------

const (
	maxScriptOps    = 4096
	maxNestedLabels = 50000
)

// execScript interprets script as a deterministic operation sequence against
// eng and returns the full observation trace: every firing (with label and
// virtual time), every operation's resulting Pending count, and the final
// clock state. Two engines are behaviorally identical iff their traces match
// on every script.
func execScript(eng testEngine, script []byte) []string {
	var trace []string
	var handles []canceler
	var stops []func()
	label := 0
	// mkFire records a firing; a slice of callbacks (label ≡ 0 mod 5) also
	// schedule a follow-up event, exercising nested scheduling. Labels are
	// allocated in firing order, so identical traces imply identical
	// callback execution order across engines.
	var mkFire func(l int) func(time.Duration)
	mkFire = func(l int) func(time.Duration) {
		return func(now time.Duration) {
			trace = append(trace, fmt.Sprintf("F%d@%d", l, now))
			if l%5 == 0 && l < maxNestedLabels {
				label++
				nl := label
				d := time.Duration(l%7) * time.Millisecond
				handles = append(handles, eng.At(now+d, mkFire(nl)))
			}
		}
	}
	pos := 0
	next := func() byte {
		if pos >= len(script) {
			return 0
		}
		b := script[pos]
		pos++
		return b
	}
	for op := 0; pos < len(script) && op < maxScriptOps; op++ {
		b := next()
		switch b % 8 {
		case 0, 1: // schedule a single event; coarse delays force exact ties
			d := time.Duration(next()%32) * time.Millisecond
			label++
			l := label
			handles = append(handles, eng.At(eng.Now()+d, mkFire(l)))
		case 2: // cancel a previously returned handle
			if len(handles) > 0 {
				i := int(next()) % len(handles)
				handles[i].Cancel()
				trace = append(trace, fmt.Sprintf("C%d", i))
			}
		case 3: // single step
			ran := eng.Step()
			trace = append(trace, fmt.Sprintf("S%v@%d", ran, eng.Now()))
		case 4: // advance virtual time
			d := time.Duration(next()%64) * time.Millisecond
			eng.RunUntil(eng.Now() + d)
		case 5: // periodic ticker with a bounded run count
			iv := time.Duration(1+next()%16) * time.Millisecond
			limit := int(next() % 5)
			label++
			l := label
			n := 0
			stops = append(stops, eng.Every(iv, func(now time.Duration) bool {
				trace = append(trace, fmt.Sprintf("E%d@%d", l, now))
				n++
				return n < limit
			}))
		case 6: // stop a ticker
			if len(stops) > 0 {
				stops[int(next())%len(stops)]()
			}
		case 7: // same-instant burst: the FIFO-tie stress
			k := 1 + int(next()%4)
			at := eng.Now() + 5*time.Millisecond
			for j := 0; j < k; j++ {
				label++
				l := label
				handles = append(handles, eng.At(at, mkFire(l)))
			}
		}
		trace = append(trace, fmt.Sprintf("P%d", eng.Pending()))
	}
	// Drain: fire everything left (tickers are bounded, nesting is capped).
	for i := 0; i < 100000 && eng.Step(); i++ {
	}
	trace = append(trace, fmt.Sprintf("end N%d P%d", eng.Now(), eng.Pending()))
	return trace
}

func diffEngines(t *testing.T, script []byte) {
	t.Helper()
	cal := execScript(calEngine{New()}, script)
	ref := execScript(refEngine{&refClock{}}, script)
	if len(cal) != len(ref) {
		t.Fatalf("trace lengths differ: calendar %d vs heap %d\ncalendar tail: %v\nheap tail: %v",
			len(cal), len(ref), tail(cal), tail(ref))
	}
	for i := range cal {
		if cal[i] != ref[i] {
			t.Fatalf("traces diverge at step %d: calendar %q vs heap %q", i, cal[i], ref[i])
		}
	}
}

func tail(s []string) []string {
	if len(s) > 10 {
		return s[len(s)-10:]
	}
	return s
}

// --- Tests ----------------------------------------------------------------

// TestDifferentialRandom drives both engines through thousands of seeded
// random operation sequences and requires bit-identical traces.
func TestDifferentialRandom(t *testing.T) {
	seeds := 400
	opsPerSeed := 700
	if testing.Short() {
		seeds = 50
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		script := make([]byte, opsPerSeed)
		rng.Read(script)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			diffEngines(t, script)
		})
	}
}

// TestDifferentialSameInstantFIFO hammers the tie-order contract: bursts of
// events at identical instants, interleaved with cancellations, must fire in
// schedule order on both engines.
func TestDifferentialSameInstantFIFO(t *testing.T) {
	// Ops 7 (burst) and 2 (cancel) dominate; op 3 steps through ties.
	var script []byte
	for i := 0; i < 300; i++ {
		script = append(script, 7, byte(i), 2, byte(i*13), 3)
	}
	diffEngines(t, script)
}

// TestRunUntilCanceledHeadQuirk pins a deliberate behavioral quirk of the
// original engine that RunUntil preserves: a canceled event at the queue
// head with timestamp ≤ t still triggers a Step, which fires the next live
// event even when that event lies beyond t — after which the clock rewinds
// to exactly t. Both engines must agree.
func TestRunUntilCanceledHeadQuirk(t *testing.T) {
	for _, eng := range []struct {
		name string
		mk   func() testEngine
	}{
		{"calendar", func() testEngine { return calEngine{New()} }},
		{"heap", func() testEngine { return refEngine{&refClock{}} }},
	} {
		t.Run(eng.name, func(t *testing.T) {
			e := eng.mk()
			var fired []time.Duration
			h := e.At(1*time.Second, func(now time.Duration) { fired = append(fired, now) })
			e.At(5*time.Second, func(now time.Duration) { fired = append(fired, now) })
			h.Cancel()
			e.RunUntil(2 * time.Second)
			if len(fired) != 1 || fired[0] != 5*time.Second {
				t.Errorf("fired = %v, want [5s] (canceled head triggers the next live event)", fired)
			}
			if e.Now() != 2*time.Second {
				t.Errorf("Now = %v, want 2s", e.Now())
			}
		})
	}
}

// TestCalendarResizeStress pushes enough load through one clock to force
// repeated calendar grows, shrinks, and year-wrap jumps, checking against
// the reference model throughout.
func TestCalendarResizeStress(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	script := make([]byte, 8192)
	rng.Read(script)
	diffEngines(t, script)
}

// FuzzEventQueue feeds arbitrary byte scripts through the differential
// driver: the engines must never panic, never fire canceled events, never
// fire out of order, and never disagree with each other.
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{0, 10, 0, 10, 3, 3})
	f.Add([]byte{7, 3, 2, 0, 4, 63, 3, 3, 3})
	f.Add([]byte{5, 4, 3, 4, 40, 6, 0, 2, 1})
	rng := rand.New(rand.NewSource(7))
	big := make([]byte, 512)
	rng.Read(big)
	f.Add(big)
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 4096 {
			script = script[:4096]
		}
		diffEngines(t, script)
	})
}
