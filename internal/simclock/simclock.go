// Package simclock provides a deterministic discrete-event simulation clock.
//
// The paper's evaluation runs on a physical testbed and measures wall-clock
// time. This reproduction replaces the testbed with simulators, so time
// itself is simulated: every component that "takes time" (swapping out
// memory, running a Spark task, migrating pages for hot-unplug) schedules
// events on a shared Clock. Experiments then advance the clock and read the
// resulting virtual timestamps, which makes every figure exactly
// reproducible.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock is a discrete-event scheduler over virtual time. The zero value is
// not usable; create one with New. Clock is not safe for concurrent use: the
// whole simulation runs single-threaded for determinism.
type Clock struct {
	now    time.Duration
	queue  eventQueue
	nextID uint64
}

// New returns a Clock positioned at virtual time zero with no pending events.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Event is a handle to a scheduled callback, usable for cancellation.
type Event struct {
	id       uint64
	at       time.Duration
	fn       func(now time.Duration)
	canceled bool
	index    int // heap index, -1 once popped
}

// Time returns the virtual time the event is (or was) scheduled for.
func (e *Event) Time() time.Duration { return e.at }

// Cancel prevents the event's callback from running. Canceling an event that
// already fired is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// At schedules fn to run at virtual time t. Scheduling in the past (t <
// Now()) panics: in a discrete-event simulation that is always a logic bug.
func (c *Clock) At(t time.Duration, fn func(now time.Duration)) *Event {
	if t < c.now {
		panic(fmt.Sprintf("simclock: scheduling at %v which is before now %v", t, c.now))
	}
	c.nextID++
	e := &Event{id: c.nextID, at: t, fn: fn}
	heap.Push(&c.queue, e)
	return e
}

// After schedules fn to run d after the current virtual time.
func (c *Clock) After(d time.Duration, fn func(now time.Duration)) *Event {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative delay %v", d))
	}
	return c.At(c.now+d, fn)
}

// Every schedules fn to run every interval, starting one interval from now,
// until fn returns false. It returns a handle to the next pending firing;
// cancel via the returned stop function, which is safe to call at any time.
func (c *Clock) Every(interval time.Duration, fn func(now time.Duration) bool) (stop func()) {
	if interval <= 0 {
		panic(fmt.Sprintf("simclock: non-positive interval %v", interval))
	}
	stopped := false
	var schedule func()
	schedule = func() {
		c.After(interval, func(now time.Duration) {
			if stopped {
				return
			}
			if fn(now) {
				schedule()
			}
		})
	}
	schedule()
	return func() { stopped = true }
}

// Pending reports the number of events still queued (including canceled ones
// that have not yet been discarded).
func (c *Clock) Pending() int { return c.queue.Len() }

// Step runs the single earliest pending event, advancing the clock to its
// timestamp. It reports whether an event ran.
func (c *Clock) Step() bool {
	for c.queue.Len() > 0 {
		e := heap.Pop(&c.queue).(*Event)
		if e.canceled {
			continue
		}
		c.now = e.at
		e.fn(c.now)
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// RunUntil executes events with timestamps ≤ t, then advances the clock to
// exactly t. Events scheduled for after t remain pending.
func (c *Clock) RunUntil(t time.Duration) {
	if t < c.now {
		panic(fmt.Sprintf("simclock: RunUntil(%v) is before now %v", t, c.now))
	}
	for c.queue.Len() > 0 {
		e := c.queue[0]
		if e.at > t {
			break
		}
		c.Step()
	}
	c.now = t
}

// Advance is shorthand for RunUntil(Now()+d).
func (c *Clock) Advance(d time.Duration) { c.RunUntil(c.now + d) }

// eventQueue is a min-heap of events ordered by (time, id); the id tiebreak
// gives FIFO ordering among events scheduled for the same instant, which
// keeps simulations deterministic.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].id < q[j].id
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}
