// Package simclock provides a deterministic discrete-event simulation clock.
//
// The paper's evaluation runs on a physical testbed and measures wall-clock
// time. This reproduction replaces the testbed with simulators, so time
// itself is simulated: every component that "takes time" (swapping out
// memory, running a Spark task, migrating pages for hot-unplug) schedules
// events on a shared Clock. Experiments then advance the clock and read the
// resulting virtual timestamps, which makes every figure exactly
// reproducible.
//
// The scheduler is a calendar queue (R. Brown, CACM 1988): pending events
// hash into time-bucketed slots of a circular "year", the cursor walks the
// buckets in time order, and the bucket count and width track the live event
// population, giving O(1) amortized schedule and pop against the binary
// heap's O(log n) — the difference that lets the 10k-node cluster sweeps of
// experiments.Fig8cXL finish in seconds. Events are slab-allocated in chunks
// so the per-event steady-state allocation rate is ~0, and same-instant
// events carry a monotone sequence number that preserves the heap engine's
// FIFO tie order exactly (the differential tests in simclock_test.go drive
// both engines side by side and require identical firing order).
package simclock

import (
	"fmt"
	"sort"
	"time"
)

const (
	// minBuckets/maxBuckets bound the calendar's size; within them the
	// bucket count tracks 2× the live event population.
	minBuckets = 16
	maxBuckets = 1 << 20
	// slabChunk is how many Event structs are allocated at once.
	slabChunk = 256
	// bigBucket is the size above which a bucket is sorted with sort.Slice
	// instead of insertion sort.
	bigBucket = 32
)

// Clock is a discrete-event scheduler over virtual time. The zero value is
// not usable; create one with New. Clock is not safe for concurrent use: the
// whole simulation runs single-threaded for determinism.
type Clock struct {
	now     time.Duration
	nextSeq uint64

	// The calendar. Each bucket holds the events whose timestamp hashes to
	// it — from the cursor's current year and from later wraps mixed
	// together. Only the cursor's bucket is kept sorted (ascending by
	// (at, seq)); head is its consumed prefix. sorted==false implies
	// head==0.
	buckets [][]*Event
	width   time.Duration // bucket width, >= 1ns
	cur     int           // cursor bucket index
	curTop  time.Duration // exclusive upper bound of the cursor's window
	head    int           // consumed prefix of buckets[cur]
	sorted  bool          // whether buckets[cur] is sorted

	queued   int // events in buckets, including undiscarded canceled ones
	canceled int // canceled events still occupying bucket slots

	slab []Event // current allocation chunk for pooled events
}

// New returns a Clock positioned at virtual time zero with no pending events.
func New() *Clock {
	c := &Clock{
		buckets: make([][]*Event, minBuckets),
		width:   time.Millisecond,
	}
	c.curTop = c.width
	return c
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Event is a handle to a scheduled callback, usable for cancellation.
// Events are pooled in slabs owned by their Clock and must not be retained
// past the Clock's life.
type Event struct {
	at       time.Duration
	seq      uint64
	fn       func(now time.Duration)
	c        *Clock
	canceled bool
	done     bool // fired or discarded; Cancel is a no-op from here on
}

// Time returns the virtual time the event is (or was) scheduled for.
func (e *Event) Time() time.Duration { return e.at }

// Cancel prevents the event's callback from running. Canceling an event that
// already fired is a no-op.
func (e *Event) Cancel() {
	if e.canceled || e.done {
		return
	}
	e.canceled = true
	e.c.canceled++
}

// alloc hands out a pooled Event from the current slab chunk.
func (c *Clock) alloc() *Event {
	if len(c.slab) == 0 {
		c.slab = make([]Event, slabChunk)
	}
	e := &c.slab[0]
	c.slab = c.slab[1:]
	return e
}

// At schedules fn to run at virtual time t. Scheduling in the past (t <
// Now()) panics: in a discrete-event simulation that is always a logic bug.
func (c *Clock) At(t time.Duration, fn func(now time.Duration)) *Event {
	if t < c.now {
		panic(fmt.Sprintf("simclock: scheduling at %v which is before now %v", t, c.now))
	}
	c.nextSeq++
	e := c.alloc()
	*e = Event{at: t, seq: c.nextSeq, fn: fn, c: c}
	c.enqueue(e)
	return e
}

// After schedules fn to run d after the current virtual time.
func (c *Clock) After(d time.Duration, fn func(now time.Duration)) *Event {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative delay %v", d))
	}
	return c.At(c.now+d, fn)
}

// Every schedules fn to run every interval, starting one interval from now,
// until fn returns false. It returns a handle to the next pending firing;
// cancel via the returned stop function, which is safe to call at any time.
func (c *Clock) Every(interval time.Duration, fn func(now time.Duration) bool) (stop func()) {
	if interval <= 0 {
		panic(fmt.Sprintf("simclock: non-positive interval %v", interval))
	}
	stopped := false
	var schedule func()
	schedule = func() {
		c.After(interval, func(now time.Duration) {
			if stopped {
				return
			}
			if fn(now) {
				schedule()
			}
		})
	}
	schedule()
	return func() { stopped = true }
}

// Pending reports the number of events still queued (including canceled ones
// that have not yet been discarded).
func (c *Clock) Pending() int { return c.queued }

// Step runs the single earliest pending event, advancing the clock to its
// timestamp. It reports whether an event ran.
func (c *Clock) Step() bool {
	e, ok := c.pop()
	if !ok {
		return false
	}
	c.now = e.at
	e.fn(c.now)
	return true
}

// Run executes events until the queue is empty.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// RunUntil executes events with timestamps ≤ t, then advances the clock to
// exactly t. Events scheduled for after t remain pending.
//
// The stop condition deliberately consults the earliest *queued* event —
// canceled or not — exactly as the reference heap peeked its root: a
// canceled head with timestamp ≤ t still triggers a Step, which fires the
// next live event even if it lies beyond t. The differential tests pin this
// behavior, so the two engines stay interchangeable.
func (c *Clock) RunUntil(t time.Duration) {
	if t < c.now {
		panic(fmt.Sprintf("simclock: RunUntil(%v) is before now %v", t, c.now))
	}
	for c.queued > 0 {
		at, ok := c.peekAny()
		if !ok || at > t {
			break
		}
		c.Step()
	}
	c.now = t
}

// Advance is shorthand for RunUntil(Now()+d).
func (c *Clock) Advance(d time.Duration) { c.RunUntil(c.now + d) }

// --- Calendar mechanics ------------------------------------------------

func (c *Clock) live() int { return c.queued - c.canceled }

func (c *Clock) bucketFor(t time.Duration) int {
	return int(uint64(t/c.width) % uint64(len(c.buckets)))
}

// enqueue files an event into its calendar slot, growing the calendar when
// the population outruns the bucket count.
func (c *Clock) enqueue(e *Event) {
	if c.queued >= 2*len(c.buckets) && len(c.buckets) < maxBuckets {
		c.resize()
	}
	c.queued++
	if e.at < c.curTop-c.width {
		// The cursor scanned ahead of now (peeks advance it while hunting
		// for the next event) and this event lands behind its window. Pull
		// the window back so the cursor rediscovers the event in order.
		c.compactCur()
		c.cur = c.bucketFor(e.at)
		c.curTop = (e.at/c.width)*c.width + c.width
		c.sorted = false
	}
	i := c.bucketFor(e.at)
	b := c.buckets[i]
	if i == c.cur && c.sorted {
		// The cursor's bucket is sorted; binary-insert to keep it that way.
		// All resident events have smaller seq, so the slot for e is after
		// every event with at <= e.at — which also keeps same-instant FIFO.
		lo, hi := c.head, len(b)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if b[mid].at <= e.at {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		b = append(b, nil)
		copy(b[lo+1:], b[lo:])
		b[lo] = e
		c.buckets[i] = b
		return
	}
	c.buckets[i] = append(b, e)
}

// peekMin positions the cursor on the earliest pending live event and
// returns its timestamp. A canceled event is discarded exactly when it
// becomes the global head — in the cursor's window, sorted first — which is
// the same instant the reference heap would have popped and dropped it, so
// tombstones never outlive their scheduled slot yet Pending and RunUntil
// observe them on the reference engine's schedule. Reports false when
// nothing live is pending.
func (c *Clock) peekMin() (time.Duration, bool) {
	if c.live() == 0 {
		return 0, false
	}
	scanned := 0
	for {
		if !c.sorted {
			c.sortCur()
		}
		b := c.buckets[c.cur]
		for c.head < len(b) && b[c.head].at < c.curTop && b[c.head].canceled {
			b[c.head].done = true
			c.head++
			c.queued--
			c.canceled--
		}
		if c.head < len(b) && b[c.head].at < c.curTop {
			return b[c.head].at, true
		}
		if c.live() == 0 {
			return 0, false
		}
		c.advanceCursor()
		scanned++
		if scanned > len(c.buckets) {
			// A whole year of empty windows: the next event is far out.
			// Jump the cursor straight to it instead of spinning.
			c.jumpToMin()
			scanned = 0
		}
	}
}

// peekAny reports the timestamp of the earliest queued event, canceled or
// not — the calendar analogue of peeking the reference heap's root. It never
// discards tombstones; RunUntil's stop condition must see them.
func (c *Clock) peekAny() (time.Duration, bool) {
	if c.queued == 0 {
		return 0, false
	}
	scanned := 0
	for {
		if !c.sorted {
			c.sortCur()
		}
		b := c.buckets[c.cur]
		if c.head < len(b) && b[c.head].at < c.curTop {
			return b[c.head].at, true
		}
		c.advanceCursor()
		scanned++
		if scanned > len(c.buckets) {
			c.jumpToMin()
			scanned = 0
		}
	}
}

// pop removes and returns the earliest pending live event.
func (c *Clock) pop() (*Event, bool) {
	if c.queued > 0 && c.queued < len(c.buckets)/8 && len(c.buckets) > minBuckets {
		c.resize()
	}
	if _, ok := c.peekMin(); !ok {
		if c.queued > 0 {
			c.clearTombstones()
		}
		return nil, false
	}
	e := c.buckets[c.cur][c.head]
	e.done = true
	c.head++
	c.queued--
	return e, true
}

// sortCur sorts the cursor's bucket ascending by (at, seq) — the
// (time, schedule-order) total order that reproduces the reference heap's
// firing order, including same-instant FIFO ties. Canceled events are kept
// in place; peekMin discards them only once they reach the head.
// Precondition: head == 0 (a bucket is only unsorted before consumption).
func (c *Clock) sortCur() {
	b := c.buckets[c.cur]
	if len(b) > bigBucket {
		sort.Slice(b, func(i, j int) bool {
			if b[i].at != b[j].at {
				return b[i].at < b[j].at
			}
			return b[i].seq < b[j].seq
		})
	} else {
		for i := 1; i < len(b); i++ {
			e := b[i]
			j := i - 1
			for j >= 0 && (b[j].at > e.at || (b[j].at == e.at && b[j].seq > e.seq)) {
				b[j+1] = b[j]
				j--
			}
			b[j+1] = e
		}
	}
	c.sorted = true
}

// compactCur drops the cursor bucket's consumed prefix, reusing the slice.
func (c *Clock) compactCur() {
	if c.head == 0 {
		return
	}
	b := c.buckets[c.cur]
	n := copy(b, b[c.head:])
	for i := n; i < len(b); i++ {
		b[i] = nil
	}
	c.buckets[c.cur] = b[:n]
	c.head = 0
}

// advanceCursor moves to the next bucket's window.
func (c *Clock) advanceCursor() {
	c.compactCur()
	c.cur = (c.cur + 1) % len(c.buckets)
	c.curTop += c.width
	c.sorted = false
}

// jumpToMin aims the cursor directly at the globally earliest queued event
// (canceled included, so peekAny and tombstone discard both make progress) —
// the calendar's escape hatch for a sparse far-future schedule.
func (c *Clock) jumpToMin() {
	var best *Event
	for i, b := range c.buckets {
		start := 0
		if i == c.cur {
			start = c.head
		}
		for _, e := range b[start:] {
			if best == nil || e.at < best.at || (e.at == best.at && e.seq < best.seq) {
				best = e
			}
		}
	}
	if best == nil {
		return // empty calendar; callers guard on queued
	}
	nb := c.bucketFor(best.at)
	if nb != c.cur {
		c.compactCur()
		c.cur = nb
		c.sorted = false
	}
	c.curTop = (best.at/c.width)*c.width + c.width
}

// resize rebuilds the calendar around the current population: bucket count
// ~2× the queued events (so ~1 event per visited bucket), width ~the mean
// gap between the earliest and latest pending timestamps. Canceled events
// are rehashed along with live ones — they must stay observable until they
// reach the head, to match the reference heap. The cursor is re-aligned to
// now's window.
func (c *Clock) resize() {
	all := make([]*Event, 0, c.queued)
	var minAt, maxAt time.Duration
	for i, b := range c.buckets {
		start := 0
		if i == c.cur {
			start = c.head
		}
		for _, e := range b[start:] {
			if len(all) == 0 || e.at < minAt {
				minAt = e.at
			}
			if len(all) == 0 || e.at > maxAt {
				maxAt = e.at
			}
			all = append(all, e)
		}
	}

	n := minBuckets
	for n < 2*len(all) && n < maxBuckets {
		n <<= 1
	}
	width := time.Duration(1)
	if len(all) > 1 {
		width = (maxAt - minAt) / time.Duration(len(all))
		if width < 1 {
			width = 1
		}
	} else {
		width = c.width // keep the old estimate for a near-empty calendar
	}
	c.width = width
	c.buckets = make([][]*Event, n)
	for _, e := range all {
		i := c.bucketFor(e.at)
		c.buckets[i] = append(c.buckets[i], e)
	}
	c.cur = c.bucketFor(c.now)
	c.curTop = (c.now/c.width)*c.width + c.width
	c.head = 0
	c.sorted = false
}

// clearTombstones empties a queue that holds only canceled events.
func (c *Clock) clearTombstones() {
	for i, b := range c.buckets {
		for j, e := range b {
			if e != nil {
				e.done = true
			}
			b[j] = nil
		}
		c.buckets[i] = b[:0]
	}
	c.queued, c.canceled = 0, 0
	c.head = 0
	c.sorted = false
}
