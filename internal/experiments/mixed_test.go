package experiments

import (
	"reflect"
	"strings"
	"testing"
)

func quickMixed(t *testing.T) FigMixedResult {
	t.Helper()
	r, err := FigMixed(QuickFigMixedConfig())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestFigMixedZeroDeflationIdenticalAcrossSubstrates: with no deflation the
// substrate never enters the model — the same seeded arrival stream on the
// same webapp fleet must produce byte-identical measurements whether the
// replicas are KVM domains, containers, or an alternating mix.
func TestFigMixedZeroDeflationIdenticalAcrossSubstrates(t *testing.T) {
	r := quickMixed(t)
	for _, p := range r.Panels {
		if p.vm[0] != p.container[0] || p.vm[0] != p.mixed[0] {
			t.Errorf("mix %s: zero-deflation rows differ across substrates:\nvm  %+v\nctr %+v\nmix %+v",
				p.Mix, p.vm[0], p.container[0], p.mixed[0])
		}
		if p.vm[0].SLOViolated {
			t.Errorf("mix %s: zero-deflation row violates the SLO", p.Mix)
		}
	}
}

// TestFigMixedContainerFrontierStrictlyDeeper is the headline acceptance:
// the container fleet sustains strictly deeper violation-free deflation
// than the VM fleet, because the cgroup write applies the exact fractional
// quota while the hypervisor path quantizes to whole vCPUs and pays LHP.
func TestFigMixedContainerFrontierStrictlyDeeper(t *testing.T) {
	r := quickMixed(t)
	for _, p := range r.Panels {
		if !(p.ContainerFrontierPct > p.VMFrontierPct) {
			t.Errorf("mix %s: container frontier %g%% not strictly deeper than vm %g%%",
				p.Mix, p.ContainerFrontierPct, p.VMFrontierPct)
		}
		// The mixed fleet is never better than the pure container fleet
		// and never worse than the pure VM fleet.
		if p.MixedFrontierPct > p.ContainerFrontierPct || p.MixedFrontierPct < p.VMFrontierPct {
			t.Errorf("mix %s: mixed frontier %g%% outside [vm %g%%, container %g%%]",
				p.Mix, p.MixedFrontierPct, p.VMFrontierPct, p.ContainerFrontierPct)
		}
		// At every fraction the container p99 is no worse than the VM p99
		// (equal exactly at whole-vCPU fractions), and the cascade path
		// never OOM-kills anything — the resize floor clamps the target.
		for k := range p.vm {
			if p.container[k].P99MS > p.vm[k].P99MS {
				t.Errorf("mix %s, defl %g%%: container p99 %g above vm %g",
					p.Mix, r.DeflationPct[k], p.container[k].P99MS, p.vm[k].P99MS)
			}
			for _, c := range []mixedCellResult{p.vm[k], p.container[k], p.mixed[k]} {
				if c.OOMKills != 0 {
					t.Errorf("mix %s, defl %g%%: cascade path OOM-killed %d instances",
						p.Mix, r.DeflationPct[k], c.OOMKills)
				}
			}
		}
	}
}

// TestFigMixedResizeLatency: the container resize is a constant-time cgroup
// write regardless of depth; the VM resize grows with the reclaimed amount
// (balloon pages + vCPU unplug) and is orders of magnitude slower.
func TestFigMixedResizeLatency(t *testing.T) {
	r := quickMixed(t)
	for _, p := range r.Panels {
		for k := range p.vm {
			if r.DeflationPct[k] == 0 {
				continue
			}
			ctr, vmLat := p.ContainerResize.Values[k], p.VMResize.Values[k]
			if ctr != 2 {
				t.Errorf("mix %s, defl %g%%: container resize %g ms, want the 2 ms cgroup write",
					p.Mix, r.DeflationPct[k], ctr)
			}
			if vmLat < 100*ctr {
				t.Errorf("mix %s, defl %g%%: vm resize %g ms not ≫ container %g ms",
					p.Mix, r.DeflationPct[k], vmLat, ctr)
			}
		}
	}
}

// TestFigMixedAggressiveOOMAsymmetry: the blind resize past the substrate
// floor OOM-kills containers but never VMs — the hypervisor absorbs the
// memory overcommit in swap.
func TestFigMixedAggressiveOOMAsymmetry(t *testing.T) {
	r := quickMixed(t)
	byFleet := map[string]MixedAggressiveCell{}
	for _, a := range r.Aggressive {
		byFleet[a.Fleet] = a
	}
	if got := byFleet[fleetVM].Cell.OOMKills; got != 0 {
		t.Errorf("aggressive vm fleet OOM-killed %d instances, want 0 (swap absorbs)", got)
	}
	if got := byFleet[fleetContainer].Cell.OOMKills; got == 0 {
		t.Error("aggressive container fleet shows zero OOM kills, want every replica killed")
	}
	if got := byFleet[fleetMixed].Cell.OOMKills; got == 0 {
		t.Error("aggressive mixed fleet shows zero OOM kills, want the container half killed")
	}
	if byFleet[fleetMixed].Cell.OOMKills >= byFleet[fleetContainer].Cell.OOMKills {
		t.Errorf("mixed fleet OOM kills %d not below container fleet %d",
			byFleet[fleetMixed].Cell.OOMKills, byFleet[fleetContainer].Cell.OOMKills)
	}
}

// TestFigMixedMemoizationSafe: cells are pure functions of their config, so
// the cross-sweep cache never changes the result.
func TestFigMixedMemoizationSafe(t *testing.T) {
	defer func() {
		SetMemoization(false)
		SetParallelism(0)
	}()
	SetMemoization(false)
	SetParallelism(4)
	plain := quickMixed(t)
	SetMemoization(true)
	warm := quickMixed(t)
	cached := quickMixed(t)
	if !reflect.DeepEqual(plain, warm) || !reflect.DeepEqual(plain, cached) {
		t.Error("memoization changed FigMixed results")
	}
	if plain.Table() != cached.Table() {
		t.Error("memoization changed the FigMixed table")
	}
}

func TestFigMixedTable(t *testing.T) {
	r := quickMixed(t)
	table := r.Table()
	for _, want := range []string{
		"fig-mixed", "vm p99", "ctr p99", "mix p99", "frontier",
		"aggressive", "oom-kills",
	} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	if r.TotalRequests() < 1e5 {
		t.Errorf("quick sweep modeled only %g requests", r.TotalRequests())
	}
}
