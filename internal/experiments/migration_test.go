package experiments

import (
	"strings"
	"testing"
)

func TestFigMigrationQuickShapeClaims(t *testing.T) {
	cfg := QuickFigMigrationConfig()
	r, err := FigMigration(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Preemption) != 4 || len(r.Migrations) != 4 || len(r.MovedGB) != 4 {
		t.Fatalf("series count: %d policies", len(r.Preemption))
	}
	// Index by the policy table order.
	const (
		preemptOnly = iota
		migrationOnly
		deflation
		deflateMigrate
	)

	// The migration-disabled rows ARE the Fig. 8c curves — byte-identical,
	// not approximately equal (the zero reclaim policy takes the exact
	// pre-migration code path).
	fig8c, err := Fig8c(QuickFig8cConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.OvercommitPct {
		if got, want := r.Preemption[preemptOnly].Values[i], fig8c.PreemptOnly.Values[i]; got != want {
			t.Errorf("oc=%g%%: preempt-only %.6f != Fig 8c preempt-only %.6f",
				r.OvercommitPct[i], got, want)
		}
		if got, want := r.Preemption[deflation].Values[i], fig8c.Deflation.Values[i]; got != want {
			t.Errorf("oc=%g%%: deflation %.6f != Fig 8c deflation %.6f",
				r.OvercommitPct[i], got, want)
		}
	}

	for i, oc := range r.OvercommitPct {
		// Migration-disabled policies move nothing; migration-enabled ones
		// actually migrate.
		for _, p := range []int{preemptOnly, deflation} {
			if r.Migrations[p].Values[i] != 0 || r.MovedGB[p].Values[i] != 0 {
				t.Errorf("oc=%g%%: %s migrated (%v migrations, %v GB) with migration disabled",
					oc, migrationPolicies[p].Name, r.Migrations[p].Values[i], r.MovedGB[p].Values[i])
			}
		}
		for _, p := range []int{migrationOnly, deflateMigrate} {
			if r.Migrations[p].Values[i] == 0 {
				t.Errorf("oc=%g%%: %s performed no migrations", oc, migrationPolicies[p].Name)
			}
		}
		// Migrating victims out of the way preempts fewer of them than
		// killing them outright.
		if mo, po := r.Preemption[migrationOnly].Values[i], r.Preemption[preemptOnly].Values[i]; mo >= po {
			t.Errorf("oc=%g%%: migration-only preemption %.4f not below preempt-only %.4f", oc, mo, po)
		}
		// The headline claim: deflating victims before migrating them moves
		// fewer bytes and pauses VMs for less total downtime than migrating
		// them at full size — at every overcommit level ≥1.5× in the sweep.
		if dm, mo := r.MovedGB[deflateMigrate].Values[i], r.MovedGB[migrationOnly].Values[i]; dm >= mo {
			t.Errorf("oc=%g%%: deflate+migrate moved %.1f GB, not below migration-only %.1f GB", oc, dm, mo)
		}
		if dm, mo := r.DowntimeSec[deflateMigrate].Values[i], r.DowntimeSec[migrationOnly].Values[i]; dm >= mo {
			t.Errorf("oc=%g%%: deflate+migrate downtime %.1fs not below migration-only %.1fs", oc, dm, mo)
		}
	}

	table := r.Table()
	for _, want := range []string{"preemption probability", "data moved (GB)", "stop-and-copy downtime",
		"Preempt-only", "Migration-only", "Deflation", "Deflate+migrate"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q", want)
		}
	}
}
