package experiments

import (
	"context"
	"fmt"

	"deflation/internal/spark"
	"deflation/internal/spark/workloads"
	"deflation/internal/sweep"
)

// Fig6Workload identifies one of the four Spark workloads of Figure 6.
type Fig6Workload string

// The Figure 6 workloads.
const (
	WorkloadALS    Fig6Workload = "als"
	WorkloadKMeans Fig6Workload = "kmeans"
	WorkloadCNN    Fig6Workload = "cnn"
	WorkloadRNN    Fig6Workload = "rnn"
)

// Fig6Workloads lists the workloads in the paper's panel order.
func Fig6Workloads() []Fig6Workload {
	return []Fig6Workload{WorkloadALS, WorkloadKMeans, WorkloadCNN, WorkloadRNN}
}

// fig6Deflations returns the paper's x-axis per workload.
func fig6Deflations(w Fig6Workload) []float64 {
	if w == WorkloadCNN || w == WorkloadRNN {
		return []float64{0.125, 0.25, 0.5}
	}
	return []float64{0.25, 0.5}
}

// fig6Mechanisms lists the four series of each panel.
func fig6Mechanisms() []spark.PressureMechanism {
	return []spark.PressureMechanism{
		spark.PressurePolicy, spark.PressureSelf, spark.PressureVMLevel, spark.PressurePreempt,
	}
}

// Fig6Result reproduces one panel of Figure 6: normalized running time of a
// Spark workload deflated halfway through execution, for cascade (policy),
// self-deflation, VM-level deflation, and preemption.
type Fig6Result struct {
	Workload  Fig6Workload
	Deflation []float64
	Series    []series // indexed like fig6Mechanisms()
	// Chosen records which mechanism the policy series actually used per
	// deflation level.
	Chosen []spark.PressureMechanism
}

// Table renders the panel.
func (r Fig6Result) Table() string {
	return renderTable(fmt.Sprintf("Figure 6 (%s): normalized running time, deflated at 50%% progress", r.Workload),
		"fraction", r.Deflation, r.Series)
}

// Value returns the normalized runtime for a mechanism at a deflation
// fraction.
func (r Fig6Result) Value(m spark.PressureMechanism, d float64) (float64, error) {
	for si, mech := range fig6Mechanisms() {
		if mech != m {
			continue
		}
		for i, x := range r.Deflation {
			if x == d {
				return r.Series[si].Values[i], nil
			}
		}
	}
	return 0, fmt.Errorf("experiments: no fig6 point %v @ %g", m, d)
}

// jitteredDeflation produces the slightly uneven per-VM deflation vector a
// proportional cluster policy yields in practice (±10% around the mean).
func jitteredDeflation(n int, d float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		if i%2 == 0 {
			out[i] = d * 1.1
		} else {
			out[i] = d * 0.9
		}
		if out[i] >= 0.95 {
			out[i] = 0.95
		}
	}
	return out
}

// fig6Cell is one (deflation, mechanism) point of a Figure 6 panel.
type fig6Cell struct {
	Norm   float64
	Chosen spark.PressureMechanism
}

// Fig6 runs one workload panel. Every (deflation, mechanism) point is an
// independent sweep cell: each builds its own Spark cluster and baseline.
func Fig6(w Fig6Workload) (Fig6Result, error) {
	res := Fig6Result{Workload: w, Deflation: fig6Deflations(w)}
	mechs := fig6Mechanisms()
	for _, m := range mechs {
		res.Series = append(res.Series, series{Name: m.String()})
	}
	var cells []sweep.Cell[fig6Cell]
	for _, d := range res.Deflation {
		for _, m := range mechs {
			d, m := d, m
			cells = append(cells, sweep.Cell[fig6Cell]{
				Run: func(context.Context) (fig6Cell, error) {
					norm, chosen, err := fig6Run(w, m, d)
					return fig6Cell{Norm: norm, Chosen: chosen}, err
				},
			})
		}
	}
	vals, err := runCells("fig6-"+string(w), cells)
	if err != nil {
		return res, err
	}
	for di := range res.Deflation {
		for si, m := range mechs {
			c := vals[di*len(mechs)+si]
			res.Series[si].Values = append(res.Series[si].Values, c.Norm)
			if m == spark.PressurePolicy {
				res.Chosen = append(res.Chosen, c.Chosen)
			}
		}
	}
	return res, nil
}

func fig6Run(w Fig6Workload, m spark.PressureMechanism, d float64) (float64, spark.PressureMechanism, error) {
	spec := &spark.PressureSpec{
		AtProgress: 0.5,
		Deflation:  jitteredDeflation(8, d),
		Mechanism:  m,
		Estimator:  spark.EstimatorHeuristic,
	}
	switch w {
	case WorkloadALS, WorkloadKMeans:
		build := workloads.ALS
		if w == WorkloadKMeans {
			build = workloads.KMeans
		}
		base, err := runBatch(build, nil)
		if err != nil {
			return 0, 0, err
		}
		run, chosen, err := runBatchWithChoice(build, spec)
		if err != nil {
			return 0, 0, err
		}
		return run / base, chosen, nil
	case WorkloadCNN, WorkloadRNN:
		build := workloads.CNN
		if w == WorkloadRNN {
			build = workloads.RNN
		}
		// Kill-based mechanisms deploy with checkpointing; deflation-based
		// ones do not need it (§6.2, Fig. 7b).
		ckpt := m == spark.PressureSelf || m == spark.PressurePreempt
		baseRun, err := spark.NewTrainingRun(build(false))
		if err != nil {
			return 0, 0, err
		}
		base, err := baseRun.Run(nil)
		if err != nil {
			return 0, 0, err
		}
		elapsed, chosen, err := spark.RunTrainingScenario(build(ckpt), spec)
		if err != nil {
			return 0, 0, err
		}
		return elapsed / base, chosen, nil
	}
	return 0, 0, fmt.Errorf("experiments: unknown workload %q", w)
}

func runBatch(build func(workloads.Params) (*spark.BatchJob, error), spec *spark.PressureSpec) (float64, error) {
	secs, _, err := runBatchWithChoice(build, spec)
	return secs, err
}

func runBatchWithChoice(build func(workloads.Params) (*spark.BatchJob, error), spec *spark.PressureSpec) (float64, spark.PressureMechanism, error) {
	p := workloads.Params{}
	cl, err := p.Cluster()
	if err != nil {
		return 0, 0, err
	}
	job, err := build(p)
	if err != nil {
		return 0, 0, err
	}
	res, err := spark.RunBatchScenario(cl, job, spec)
	if err != nil {
		return 0, 0, err
	}
	return res.DurationSecs, res.Chosen, nil
}
