package experiments

import (
	"context"
	"sync"
	"sync/atomic"

	"deflation/internal/cluster"
	"deflation/internal/sweep"
	"deflation/internal/telemetry"
)

// The experiments package fans every figure sweep out through one shared
// sweep engine. Each cell of a sweep (one simulated cluster, one host+VM
// deflation, one Spark run) owns its entire state — its own hypervisor,
// RNGs, and simclock — so the merged results are bit-for-bit identical at
// any parallelism, a property proven by the determinism tests alongside
// this package.

var (
	// parallelism is the configured worker count; 0 means GOMAXPROCS.
	parallelism atomic.Int64

	// engineMu guards the optional engine attachments below (set once by
	// the harness at startup, read at each sweep launch).
	engineMu      sync.RWMutex
	sweepProgress func(sweep.Progress)
	sweepSink     *telemetry.Sink
	sweepCache    *sweep.Cache
)

// SetParallelism bounds sweep concurrency across all figure experiments:
// n > 1 fans cells out over n workers, n = 1 forces the exact legacy
// serial path, and n <= 0 restores the default (GOMAXPROCS workers).
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// Parallelism reports the configured worker bound (0 = GOMAXPROCS).
func Parallelism() int { return int(parallelism.Load()) }

// SetSweepProgress installs a live progress callback invoked after every
// sweep cell completes (nil disables). Calls are serialized.
func SetSweepProgress(fn func(sweep.Progress)) {
	engineMu.Lock()
	defer engineMu.Unlock()
	sweepProgress = fn
}

// SetSweepTelemetry accrues sweep counters and per-cell latency histograms
// into sink's registry (nil disables).
func SetSweepTelemetry(sink *telemetry.Sink) {
	engineMu.Lock()
	defer engineMu.Unlock()
	sweepSink = sink
}

// SetMemoization toggles cross-sweep result memoization: identical cells
// (same simulation config) reuse the first computed result instead of
// re-running — e.g. the chaos sweep's zero-fault row is exactly a Fig. 8c
// cell. Off by default so timing comparisons and determinism tests always
// exercise real runs; enabling it never changes results, only wall-clock.
func SetMemoization(on bool) {
	engineMu.Lock()
	defer engineMu.Unlock()
	if on {
		if sweepCache == nil {
			sweepCache = sweep.NewCache()
		}
	} else {
		sweepCache = nil
	}
}

// engine assembles the sweep engine from the package configuration.
func engine() *sweep.Engine {
	engineMu.RLock()
	defer engineMu.RUnlock()
	return &sweep.Engine{
		Workers:   Parallelism(),
		Cache:     sweepCache,
		Telemetry: sweepSink,
		Progress:  sweepProgress,
	}
}

// runCells fans the cells of one figure sweep out through the configured
// engine, returning results in submission order.
func runCells[T any](label string, cells []sweep.Cell[T]) ([]T, error) {
	return sweep.Run(context.Background(), engine(), label, cells)
}

// simCell builds a memoizable sweep cell around one cluster simulation.
// Configs carrying live attachments (a revenue meter, a telemetry sink)
// have side effects beyond the returned result, so those cells are never
// memoized.
func simCell(figure string, cfg cluster.SimConfig) sweep.Cell[cluster.SimResult] {
	key := ""
	if cfg.Meter == nil && cfg.Telemetry == nil {
		// The key spans the full SimConfig: any two sims with equal JSON
		// forms are the same deterministic computation, whichever figure
		// asks for them — so the namespace is the cell type, not the figure.
		key = sweep.Key("cluster.RunSim", cfg)
	}
	return sweep.Cell[cluster.SimResult]{
		Key: key,
		Run: func(context.Context) (cluster.SimResult, error) {
			return cluster.RunSim(cfg)
		},
	}
}
