package experiments

import (
	"context"
	"fmt"
	"strings"

	"deflation/internal/apps/jvm"
	"deflation/internal/apps/webapp"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/spark"
	"deflation/internal/spark/workloads"
	"deflation/internal/sweep"
)

// Table1Result reproduces Table 1 (application-level deflation mechanisms)
// as a live demonstration: each mechanism is exercised once and its effect
// reported.
type Table1Result struct {
	Rows []Table1Row
}

// Table1Row is one mechanism demonstration.
type Table1Row struct {
	Application string
	Resource    string
	Mechanism   string
	Effect      string
}

// Table renders the table.
func (r Table1Result) Table() string {
	var b strings.Builder
	b.WriteString("# Table 1: application-level deflation mechanisms (live)\n")
	fmt.Fprintf(&b, "%-12s %-8s %-38s %s\n", "application", "resource", "mechanism", "measured effect")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %-8s %-38s %s\n", row.Application, row.Resource, row.Mechanism, row.Effect)
	}
	return b.String()
}

// Table1 exercises every Table 1 mechanism.
func Table1() (Table1Result, error) {
	var r Table1Result

	// Memcached: LRU object eviction.
	mc, err := memcacheAppFig5a(true)
	if err != nil {
		return r, err
	}
	before := mc.CacheMB()
	mc.SelfDeflate(restypes.V(0, 12000, 0, 0))
	r.Rows = append(r.Rows, Table1Row{
		Application: "memcached", Resource: "memory",
		Mechanism: "LRU object eviction to reduce footprint",
		Effect: fmt.Sprintf("cache %4.0f→%4.0f MB, hit rate %.3f",
			before, mc.CacheMB(), mc.HitRate()),
	})

	// JVM: trigger GC and reduce max heap.
	jv, err := jvm.NewApp(jvm.AppConfig{MaxHeapMB: 12000, LiveMB: 3000, DeflationAware: true})
	if err != nil {
		return r, err
	}
	hBefore := jv.HeapMB()
	_, gcPause := jv.SelfDeflate(restypes.V(0, 8192, 0, 0))
	r.Rows = append(r.Rows, Table1Row{
		Application: "JVM", Resource: "memory",
		Mechanism: "trigger GC and reduce maximum heap size",
		Effect: fmt.Sprintf("heap %5.0f→%5.0f MB, GC pause %v",
			hBefore, jv.HeapMB(), gcPause),
	})

	// Web servers: reduce thread pool.
	web, err := webapp.NewApp(webapp.Config{DeflationAware: true})
	if err != nil {
		return r, err
	}
	tBefore := web.Threads()
	web.SelfDeflate(restypes.V(2, 0, 0, 0))
	r.Rows = append(r.Rows, Table1Row{
		Application: "web servers", Resource: "CPU",
		Mechanism: "reduce size of thread pool",
		Effect:    fmt.Sprintf("threads %d→%d", tBefore, web.Threads()),
	})

	// Spark: reduce the number of tasks (blacklist executors).
	p := workloads.Params{Workers: 4, Slots: 2, Partitions: 16, Iterations: 2}
	cl, err := p.Cluster()
	if err != nil {
		return r, err
	}
	job, err := workloads.KMeans(p)
	if err != nil {
		return r, err
	}
	res, err := spark.RunBatchScenario(cl, job, &spark.PressureSpec{
		AtProgress: 0.4, Deflation: []float64{0.5, 0.5, 0.5, 0.5}, Mechanism: spark.PressureSelf,
	})
	if err != nil {
		return r, err
	}
	r.Rows = append(r.Rows, Table1Row{
		Application: "Spark", Resource: "all",
		Mechanism: "reduce number of tasks (blacklist executors)",
		Effect: fmt.Sprintf("executors 4→%d, recompute %.0fs via lineage",
			len(cl.Alive()), res.RecomputeSecs),
	})
	return r, nil
}

// Table2Result reproduces Table 2 (evaluation workloads) with each
// workload's baseline run.
type Table2Result struct {
	Rows []Table2Row
}

// Table2Row describes one workload and its measured baseline.
type Table2Row struct {
	Workload, Description, Baseline string
}

// Table renders the table.
func (r Table2Result) Table() string {
	var b strings.Builder
	b.WriteString("# Table 2: evaluation workloads (live baselines)\n")
	fmt.Fprintf(&b, "%-10s %-52s %s\n", "workload", "description", "measured baseline")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %-52s %s\n", row.Workload, row.Description, row.Baseline)
	}
	return b.String()
}

// Table2 runs each workload's baseline.
func Table2() (Table2Result, error) {
	var r Table2Result

	mc, err := memcacheAppFig5a(false)
	if err != nil {
		return r, err
	}
	env := hypervisor.Env{VCPUs: 4, PhysCores: 4, EffectiveCores: 4,
		GuestMemMB: 16384, ResidentMB: 16384, EverTouchedMB: 16384,
		KernelMemMB: 256, LocalityFactor: 1, DiskMBps: 400, NetMBps: 1250}
	r.Rows = append(r.Rows, Table2Row{"Memcached",
		"in-memory KV store, zipfian GET/SET load",
		fmt.Sprintf("%.0f kGETS/s", mc.KGETS(env))})

	r.Rows = append(r.Rows, Table2Row{"Kcompile",
		"Linux kernel compile (parallel batch)", "normalized throughput 1.00"})

	jv, err := jvm.NewApp(jvm.AppConfig{MaxHeapMB: 12000, LiveMB: 3000})
	if err != nil {
		return r, err
	}
	r.Rows = append(r.Rows, Table2Row{"SpecJBB",
		"SpecJBB 2015, fixed-IR mode",
		fmt.Sprintf("%.0f µs response time", jv.ResponseTimeUS(env))})

	// The four Spark baselines dominate Table 2's wall-clock; each is one
	// independent sweep cell (own cluster, own job) merged in row order.
	p := workloads.Params{}
	batchCell := func(name, desc string, build func(workloads.Params) (*spark.BatchJob, error)) sweep.Cell[Table2Row] {
		return sweep.Cell[Table2Row]{Run: func(context.Context) (Table2Row, error) {
			cl, err := p.Cluster()
			if err != nil {
				return Table2Row{}, err
			}
			job, err := build(p)
			if err != nil {
				return Table2Row{}, err
			}
			res, err := spark.RunBatchScenario(cl, job, nil)
			if err != nil {
				return Table2Row{}, err
			}
			return Table2Row{name, desc,
				fmt.Sprintf("%.0f s on 8 workers", res.DurationSecs)}, nil
		}}
	}
	trainingCell := func(name, desc string, job *spark.TrainingJob) sweep.Cell[Table2Row] {
		return sweep.Cell[Table2Row]{Run: func(context.Context) (Table2Row, error) {
			run, err := spark.NewTrainingRun(job)
			if err != nil {
				return Table2Row{}, err
			}
			secs, err := run.Run(nil)
			if err != nil {
				return Table2Row{}, err
			}
			return Table2Row{name, desc,
				fmt.Sprintf("%.0f s / %.0f records/s", secs, run.Throughput())}, nil
		}}
	}
	rows, err := runCells("table2", []sweep.Cell[Table2Row]{
		batchCell("ALS", "Spark mllib alternating least squares, 100 GB", workloads.ALS),
		batchCell("K-means", "Spark mllib dense clustering, 50 GB, cached input", workloads.KMeans),
		trainingCell("CNN", "ResNet on CIFAR-10 via BigDL-style sync training", workloads.CNN(false)),
		trainingCell("RNN", "recurrent network on the Shakespeare corpus", workloads.RNN(false)),
	})
	if err != nil {
		return r, err
	}
	r.Rows = append(r.Rows, rows...)
	return r, nil
}
