package experiments

import (
	"context"
	"fmt"
	"strings"

	"deflation/internal/apps/curveapp"
	"deflation/internal/apps/webapp"
	"deflation/internal/cascade"
	"deflation/internal/guestos"
	"deflation/internal/hypervisor"
	"deflation/internal/interactive"
	"deflation/internal/restypes"
	"deflation/internal/spark"
	"deflation/internal/sweep"
	"deflation/internal/vm"
)

// FigSLO sweeps an interactive replicated service under open-loop load
// across arrival rate × replica count × deflation fraction, comparing two
// reclamation policies on the measured p99:
//
//   - slo-target: deflation-aware servers behind the capacity-weighted
//     balancer, with the p99-targeting SLO guard clamping the cascade to
//     measured latency headroom (the Fuerst-style interactive policy);
//   - utility-cascade: deflation-unaware servers deflated by the plain
//     utility-curve cascade, the batch-oriented default.
//
// A final mixed-fleet cell co-locates guarded web replicas with unguarded
// batch VMs on one host and deflates everything, showing full reclamation
// from batch while the web tier keeps its SLO.

// FigSLOConfig sizes the sweep; the zero value is the full experiment.
type FigSLOConfig struct {
	// RPSPerReplica is the arrival-rate axis, expressed as offered load per
	// replica so every fleet size sees the same utilization (default
	// {400, 800} against the webapp's 1600-rps replicas).
	RPSPerReplica []float64
	// Replicas is the fleet-size axis (default {2, 4}).
	Replicas []int
	// DeflationFractions is the x-axis: the fraction of each replica's CPU
	// requested back by the cascade (default 0–0.75 in 0.125 steps).
	DeflationFractions []float64
	// WarmupTicks run before the deflation event and measurement window so
	// the guard deflates against measured load (default 40).
	WarmupTicks int
	// MeasureTicks is the post-deflation measurement window (default 240).
	MeasureTicks int
	// SLOP99MS is the latency SLO (default 50 ms).
	SLOP99MS float64
	// Profile names the arrival profile (default "steady").
	Profile string
	Seed    int64
}

func (c FigSLOConfig) withDefaults() FigSLOConfig {
	if len(c.RPSPerReplica) == 0 {
		c.RPSPerReplica = []float64{400, 800}
	}
	if len(c.Replicas) == 0 {
		c.Replicas = []int{2, 4}
	}
	if len(c.DeflationFractions) == 0 {
		c.DeflationFractions = []float64{0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75}
	}
	if c.WarmupTicks == 0 {
		c.WarmupTicks = 40
	}
	if c.MeasureTicks == 0 {
		c.MeasureTicks = 240
	}
	if c.SLOP99MS == 0 {
		c.SLOP99MS = 50
	}
	if c.Profile == "" {
		c.Profile = interactive.Steady.String()
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// QuickFigSLOConfig returns a reduced sweep for smoke tests: one fleet
// shape, four deflation fractions, short windows.
func QuickFigSLOConfig() FigSLOConfig {
	return FigSLOConfig{
		RPSPerReplica:      []float64{800},
		Replicas:           []int{2},
		DeflationFractions: []float64{0, 0.25, 0.5, 0.625},
		WarmupTicks:        20,
		MeasureTicks:       80,
	}
}

// sloCell identifies one FigSLO sweep cell. It is JSON-serialized into the
// memoization key, so it must fully determine the run.
type sloCell struct {
	Policy        string // "slo-target" or "utility-cascade"
	RPSPerReplica float64
	Replicas      int
	DeflateFrac   float64
	Profile       string
	WarmupTicks   int
	MeasureTicks  int
	SLOP99MS      float64
	Seed          int64
	// BatchVMs co-locates this many unguarded batch VMs on the host and
	// deflates them alongside the web tier (the mixed-fleet cell).
	BatchVMs int
}

const (
	policySLO     = "slo-target"
	policyUtility = "utility-cascade"
)

// sloCellResult is one cell's measurement window summary.
type sloCellResult struct {
	P50MS, P95MS, P99MS, MeanMS float64
	ViolationFraction           float64
	Requests                    float64 // modeled in the measurement window
	ServedRPS, DroppedRPS       float64
	SLOViolated                 bool
	OverloadTicks               int
	// WebReclaimedCores is the CPU actually reclaimed per web replica
	// (after any SLO clamp); BatchReclaimedCores is per batch VM.
	WebReclaimedCores   float64
	BatchReclaimedCores float64
}

// runSLOCell builds one self-owned fleet (host, VMs, service, arrival
// stream), warms it up, applies a single deflation event through the
// cascade, and measures the service over the post-deflation window.
func runSLOCell(c sloCell) (sloCellResult, error) {
	var res sloCellResult
	size := stdVMSize()
	host, err := hypervisor.NewHost(hypervisor.Config{
		Name:     "slo-host",
		Capacity: size.Scale(float64(c.Replicas+c.BatchVMs) * 1.25),
	})
	if err != nil {
		return res, err
	}

	aware := c.Policy == policySLO
	apps := make([]*webapp.App, c.Replicas)
	webVMs := make([]*vm.VM, c.Replicas)
	for i := range apps {
		a, err := webapp.NewApp(webapp.Config{DeflationAware: aware})
		if err != nil {
			return res, err
		}
		dom, err := host.CreateDomain(fmt.Sprintf("web-%d", i), size, guestos.Config{})
		if err != nil {
			return res, err
		}
		dom.MarkWarm()
		v, err := vm.New(dom, a, vm.Config{})
		if err != nil {
			return res, err
		}
		apps[i], webVMs[i] = a, v
	}
	var batchVMs []*vm.VM
	for i := 0; i < c.BatchVMs; i++ {
		dom, err := host.CreateDomain(fmt.Sprintf("batch-%d", i), size, guestos.Config{})
		if err != nil {
			return res, err
		}
		dom.MarkWarm()
		app := curveapp.New(curveapp.Config{
			Name: "spark-cnn", Curve: spark.CurveCNNTraining, Size: size,
			Elastic: true, RSSFraction: 0.5, MinRSSFraction: 0.15,
		})
		v, err := vm.New(dom, app, vm.Config{})
		if err != nil {
			return res, err
		}
		batchVMs = append(batchVMs, v)
	}

	profile, err := interactive.ProfileFromString(c.Profile)
	if err != nil {
		return res, err
	}
	svc, err := interactive.NewServiceWith(interactive.ServiceConfig{
		Web: webapp.Config{DeflationAware: aware},
		Arrivals: interactive.ArrivalConfig{
			Seed:    c.Seed,
			BaseRPS: c.RPSPerReplica * float64(c.Replicas),
			Profile: profile,
		},
		SLOP99MS: c.SLOP99MS,
	}, apps)
	if err != nil {
		return res, err
	}

	envs := func() []hypervisor.Env {
		out := make([]hypervisor.Env, len(webVMs))
		for i, v := range webVMs {
			out[i] = v.Env()
		}
		return out
	}
	for tick := 0; tick < c.WarmupTicks; tick++ {
		if err := svc.Step(envs()); err != nil {
			return res, err
		}
	}

	if c.DeflateFrac > 0 {
		ctrl := cascade.New(cascade.AllLevels())
		if c.Policy == policySLO {
			guard := interactive.NewSLOGuard(svc)
			// Plan against the SLO itself rather than the default safety
			// margin: the point of this figure is the deepest violation-free
			// deflation each policy reaches.
			guard.Headroom = 0.95
			for i, v := range webVMs {
				guard.Register(v.Name(), i)
			}
			ctrl.SetSLOPolicy(guard)
		}
		// One deflation event: reclaim the fraction of each VM's CPU and
		// half that fraction of its memory.
		target := restypes.V(size.CPU*c.DeflateFrac, size.MemoryMB*c.DeflateFrac*0.5, 0, 0)
		for _, v := range webVMs {
			before := v.Allocation().CPU
			if _, err := ctrl.Deflate(v, target); err != nil {
				return res, err
			}
			res.WebReclaimedCores += before - v.Allocation().CPU
		}
		res.WebReclaimedCores /= float64(len(webVMs))
		for _, v := range batchVMs {
			before := v.Allocation().CPU
			if _, err := ctrl.Deflate(v, target); err != nil {
				return res, err
			}
			res.BatchReclaimedCores += before - v.Allocation().CPU
		}
		if len(batchVMs) > 0 {
			res.BatchReclaimedCores /= float64(len(batchVMs))
		}
	}

	svc.ResetStats()
	for tick := 0; tick < c.MeasureTicks; tick++ {
		if err := svc.Step(envs()); err != nil {
			return res, err
		}
	}
	r := svc.Result()
	window := float64(c.MeasureTicks)
	res.P50MS, res.P95MS, res.P99MS, res.MeanMS = r.P50MS, r.P95MS, r.P99MS, r.MeanMS
	res.ViolationFraction = r.ViolationFraction
	res.Requests = r.Requests
	res.ServedRPS = r.Served / window
	res.DroppedRPS = r.Dropped / window
	res.SLOViolated = r.SLOViolated
	res.OverloadTicks = r.OverloadTicks
	return res, nil
}

// sloSweepCell wraps a cell for the engine; cells are pure functions of
// their config, so they memoize across sweeps.
func sloSweepCell(c sloCell) sweep.Cell[sloCellResult] {
	return sweep.Cell[sloCellResult]{
		Key: sweep.Key("experiments.sloCell", c),
		Run: func(context.Context) (sloCellResult, error) {
			return runSLOCell(c)
		},
	}
}

// SLOPanel is one (arrival rate, fleet size) slice of the sweep: measured
// p99 and actually-reclaimed cores per deflation fraction for both
// policies, plus each policy's frontier — the deepest requested deflation
// before its first p99 violation (-1 when even zero deflation violates).
type SLOPanel struct {
	RPSPerReplica float64
	Replicas      int

	SLO, Utility           series // p99 ms per deflation fraction
	SLOCores, UtilityCores series // reclaimed cores per replica

	SLOFrontierPct, UtilityFrontierPct float64
	slo, utility                       []sloCellResult
}

// FigSLOResult holds the sweep output.
type FigSLOResult struct {
	SLOP99MS     float64
	DeflationPct []float64
	Panels       []SLOPanel
	Mixed        SLOMixedResult
}

// SLOMixedResult is the mixed-fleet cell: guarded web replicas and
// unguarded batch VMs sharing a host through one deflation event.
type SLOMixedResult struct {
	WebReplicas, BatchVMs int
	RPSPerReplica         float64
	DeflationPct          float64
	Cell                  sloCellResult
}

// Table renders every panel plus the frontier and mixed-fleet summaries.
func (r FigSLOResult) Table() string {
	var b strings.Builder
	for _, p := range r.Panels {
		title := fmt.Sprintf("fig-slo: p99 (ms) and reclaimed cores/replica, %g rps/replica × %d replicas (SLO %g ms)",
			p.RPSPerReplica, p.Replicas, r.SLOP99MS)
		b.WriteString(renderTable(title, "defl%", r.DeflationPct,
			[]series{p.SLO, p.Utility, p.SLOCores, p.UtilityCores}))
		b.WriteString(fmt.Sprintf("frontier (deepest violation-free request): %s %s, %s %s\n\n",
			policySLO, frontierLabel(p.SLOFrontierPct),
			policyUtility, frontierLabel(p.UtilityFrontierPct)))
	}
	m := r.Mixed
	b.WriteString(fmt.Sprintf(
		"# fig-slo mixed fleet: %d guarded web + %d batch VMs, %g rps/replica, %.3g%% deflation request\n",
		m.WebReplicas, m.BatchVMs, m.RPSPerReplica, m.DeflationPct))
	b.WriteString(fmt.Sprintf(
		"web p99 %.3f ms (violated=%v), reclaimed %.3f cores/web replica vs %.3f cores/batch VM\n",
		m.Cell.P99MS, m.Cell.SLOViolated, m.Cell.WebReclaimedCores, m.Cell.BatchReclaimedCores))
	return b.String()
}

// TotalRequests sums the requests modeled across every cell's measurement
// window — the denominator for the benchmark's per-request metrics.
func (r FigSLOResult) TotalRequests() float64 {
	total := r.Mixed.Cell.Requests
	for _, p := range r.Panels {
		for _, c := range p.slo {
			total += c.Requests
		}
		for _, c := range p.utility {
			total += c.Requests
		}
	}
	return total
}

func frontierLabel(pct float64) string {
	if pct < 0 {
		return "none"
	}
	return fmt.Sprintf("%.3g%%", pct)
}

// frontierPct returns the deepest requested deflation percentage reached
// before the first violating cell, scanning fractions in ascending order;
// -1 when the very first cell violates.
func frontierPct(pct []float64, cells []sloCellResult) float64 {
	deepest := -1.0
	for i, c := range cells {
		if c.SLOViolated {
			break
		}
		deepest = pct[i]
	}
	return deepest
}

// FigSLO runs the sweep.
func FigSLO(cfg FigSLOConfig) (FigSLOResult, error) {
	cfg = cfg.withDefaults()
	res := FigSLOResult{SLOP99MS: cfg.SLOP99MS}
	for _, f := range cfg.DeflationFractions {
		res.DeflationPct = append(res.DeflationPct, f*100)
	}

	base := sloCell{
		Profile:      cfg.Profile,
		WarmupTicks:  cfg.WarmupTicks,
		MeasureTicks: cfg.MeasureTicks,
		SLOP99MS:     cfg.SLOP99MS,
		Seed:         cfg.Seed,
	}
	var cells []sweep.Cell[sloCellResult]
	for _, rps := range cfg.RPSPerReplica {
		for _, n := range cfg.Replicas {
			for _, policy := range []string{policySLO, policyUtility} {
				for _, f := range cfg.DeflationFractions {
					c := base
					c.Policy, c.RPSPerReplica, c.Replicas, c.DeflateFrac = policy, rps, n, f
					cells = append(cells, sloSweepCell(c))
				}
			}
		}
	}
	// The mixed-fleet cell: smallest fleet under a deep (75%) request — the
	// guard holds the web tier at its headroom while the co-located batch
	// VMs give up the full target.
	mixed := base
	mixed.Policy = policySLO
	mixed.RPSPerReplica = cfg.RPSPerReplica[0]
	mixed.Replicas = cfg.Replicas[0]
	mixed.DeflateFrac = 0.75
	mixed.BatchVMs = cfg.Replicas[0]
	cells = append(cells, sloSweepCell(mixed))

	vals, err := runCells("fig-slo", cells)
	if err != nil {
		return res, err
	}

	nf := len(cfg.DeflationFractions)
	i := 0
	for _, rps := range cfg.RPSPerReplica {
		for _, n := range cfg.Replicas {
			p := SLOPanel{
				RPSPerReplica: rps, Replicas: n,
				SLO:          series{Name: "slo p99"},
				Utility:      series{Name: "util p99"},
				SLOCores:     series{Name: "slo cores"},
				UtilityCores: series{Name: "util cores"},
			}
			p.slo = vals[i : i+nf]
			p.utility = vals[i+nf : i+2*nf]
			i += 2 * nf
			for k := 0; k < nf; k++ {
				p.SLO.Values = append(p.SLO.Values, p.slo[k].P99MS)
				p.Utility.Values = append(p.Utility.Values, p.utility[k].P99MS)
				p.SLOCores.Values = append(p.SLOCores.Values, p.slo[k].WebReclaimedCores)
				p.UtilityCores.Values = append(p.UtilityCores.Values, p.utility[k].WebReclaimedCores)
			}
			p.SLOFrontierPct = frontierPct(res.DeflationPct, p.slo)
			p.UtilityFrontierPct = frontierPct(res.DeflationPct, p.utility)
			res.Panels = append(res.Panels, p)
		}
	}
	res.Mixed = SLOMixedResult{
		WebReplicas: mixed.Replicas, BatchVMs: mixed.BatchVMs,
		RPSPerReplica: mixed.RPSPerReplica, DeflationPct: mixed.DeflateFrac * 100,
		Cell: vals[i],
	}
	return res, nil
}
