// Package experiments contains one driver per figure of the paper's
// evaluation (§6). Each driver reconstructs the experiment's setup from the
// repository's substrates, runs it deterministically, and returns the
// series the paper plots, with a Table() rendering for the command-line
// harness (cmd/deflbench) and assertions in the benchmark suite.
package experiments

import (
	"fmt"
	"strings"

	"deflation/internal/apps/memcache"
	"deflation/internal/cascade"
	"deflation/internal/guestos"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/vm"
)

// stdVMSize is the paper's standard VM: 4 vCPUs, 16 GB (§6), with generous
// I/O so CPU and memory dominate.
func stdVMSize() restypes.Vector { return restypes.V(4, 16384, 400, 1250) }

// newHostAndVM boots a single standard VM running app on a fresh host,
// marked warm (long-running, memory host-resident).
func newHostAndVM(app vm.Application) (*vm.VM, error) {
	h, err := hypervisor.NewHost(hypervisor.Config{
		Name:     "exp-host",
		Capacity: restypes.V(16, 65536, 1600, 5000),
	})
	if err != nil {
		return nil, err
	}
	dom, err := h.CreateDomain("exp-vm", stdVMSize(), guestos.Config{})
	if err != nil {
		return nil, err
	}
	dom.MarkWarm()
	return vm.New(dom, app, vm.Config{})
}

// deflateBy reclaims the given per-dimension fractions of the VM's nominal
// size through the configured cascade levels, returning the report.
func deflateBy(v *vm.VM, levels cascade.Levels, frac restypes.Vector) (cascade.Report, error) {
	target := v.Size().Mul(frac)
	return cascade.New(levels).Deflate(v, target)
}

// series is a named sequence of y-values over a shared x-axis.
type series struct {
	Name   string
	Values []float64
}

// renderTable renders x-labels and series as an aligned text table.
func renderTable(title, xlabel string, xs []float64, ss []series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	fmt.Fprintf(&b, "%-14s", xlabel)
	for _, s := range ss {
		fmt.Fprintf(&b, "%16s", s.Name)
	}
	b.WriteByte('\n')
	for i, x := range xs {
		fmt.Fprintf(&b, "%-14.3g", x)
		for _, s := range ss {
			if i < len(s.Values) {
				fmt.Fprintf(&b, "%16.3f", s.Values[i])
			} else {
				fmt.Fprintf(&b, "%16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// memcacheAppFig5a builds the Fig. 5a memcached configuration: an 8 GB
// cache on the 16 GB VM, moderate pressure.
func memcacheAppFig5a(aware bool) (*memcache.App, error) {
	return memcache.NewApp(memcache.AppConfig{
		CacheMB: 8000, DatasetMB: 9000, DeflationAware: aware, Cores: 4,
	})
}

// memcacheAppFig5c builds the Fig. 5c memory-stressed configuration: a
// 14 GB cache filling the VM.
func memcacheAppFig5c(aware bool) (*memcache.App, error) {
	return memcache.NewApp(memcache.AppConfig{
		CacheMB: 14000, DatasetMB: 15500, DeflationAware: aware, Cores: 4,
	})
}
