package experiments

import (
	"reflect"
	"testing"
)

// runFigure is one figure sweep producing its result struct and rendered
// table. The determinism property below runs each twice — serial and
// 8-way parallel — and requires bit-for-bit identical output.
type runFigure struct {
	name string
	run  func() (any, string, error)
	slow bool // skipped under -short
}

func figures() []runFigure {
	wrap := func(run func() (any, string, error), name string, slow bool) runFigure {
		return runFigure{name: name, run: run, slow: slow}
	}
	asAny := func(v interface{ Table() string }, err error) (any, string, error) {
		if err != nil {
			return nil, "", err
		}
		return v, v.Table(), nil
	}
	return []runFigure{
		wrap(func() (any, string, error) { return asAny(Fig1()) }, "fig1", false),
		wrap(func() (any, string, error) { return asAny(Fig5a()) }, "fig5a", false),
		wrap(func() (any, string, error) { return asAny(Fig5b()) }, "fig5b", false),
		wrap(func() (any, string, error) { return asAny(Fig5c()) }, "fig5c", false),
		wrap(func() (any, string, error) { return asAny(Fig5d()) }, "fig5d", false),
		wrap(func() (any, string, error) { return asAny(Fig6(Fig6Workloads()[0])) }, "fig6", false),
		wrap(func() (any, string, error) { return asAny(Fig7a()) }, "fig7a", true),
		wrap(func() (any, string, error) { return asAny(Fig7b()) }, "fig7b", true),
		wrap(func() (any, string, error) { return asAny(Fig8b()) }, "fig8b", false),
		wrap(func() (any, string, error) { return asAny(Fig8c(QuickFig8cConfig())) }, "fig8c", false),
		wrap(func() (any, string, error) { return asAny(Fig8cXL(QuickFig8cXLConfig())) }, "fig8c-xl", true),
		wrap(func() (any, string, error) { return asAny(Fig8d(true, 0)) }, "fig8d", true),
		wrap(func() (any, string, error) { return asAny(Chaos(QuickChaosConfig())) }, "chaos", true),
		wrap(func() (any, string, error) { return asAny(FigMigration(QuickFigMigrationConfig())) }, "migration", true),
		wrap(func() (any, string, error) { return asAny(Revenue(true)) }, "revenue", false),
		wrap(func() (any, string, error) { return asAny(FigSLO(QuickFigSLOConfig())) }, "slo", false),
		wrap(func() (any, string, error) { return asAny(Table2()) }, "table2", true),
	}
}

// TestSweepDeterminism proves every figure sweep is bit-for-bit
// deterministic under parallelism: the result struct (reflect.DeepEqual)
// and the formatted table of an 8-worker run are identical to the legacy
// serial path with the same seeds. Memoization is off, so both runs
// exercise the real simulations.
func TestSweepDeterminism(t *testing.T) {
	SetMemoization(false)
	defer SetParallelism(0)
	for _, f := range figures() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			if f.slow && testing.Short() {
				t.Skip("slow figure; skipped under -short")
			}
			SetParallelism(1)
			serialRes, serialTable, err := f.run()
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			SetParallelism(8)
			parRes, parTable, err := f.run()
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			if !reflect.DeepEqual(serialRes, parRes) {
				t.Errorf("result structs differ between serial and 8-way parallel runs:\nserial:   %#v\nparallel: %#v", serialRes, parRes)
			}
			if serialTable != parTable {
				t.Errorf("formatted tables differ between serial and 8-way parallel runs:\n--- serial ---\n%s\n--- parallel ---\n%s", serialTable, parTable)
			}
		})
	}
}

// TestMemoizationPreservesResults proves enabling the cross-sweep cache
// never changes a figure's output, only its wall-clock: a memoized re-run
// of Fig. 8c (quick) matches the uncached run exactly.
func TestMemoizationPreservesResults(t *testing.T) {
	defer func() {
		SetMemoization(false)
		SetParallelism(0)
	}()
	SetMemoization(false)
	SetParallelism(4)
	plain, err := Fig8c(QuickFig8cConfig())
	if err != nil {
		t.Fatal(err)
	}
	SetMemoization(true)
	warm, err := Fig8c(QuickFig8cConfig()) // populates the cache
	if err != nil {
		t.Fatal(err)
	}
	cached, err := Fig8c(QuickFig8cConfig()) // served from it
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, warm) || !reflect.DeepEqual(plain, cached) {
		t.Errorf("memoization changed Fig8c results:\nplain:  %#v\nwarm:   %#v\ncached: %#v", plain, warm, cached)
	}
	if plain.Table() != cached.Table() {
		t.Errorf("memoization changed the Fig8c table:\n%s\nvs\n%s", plain.Table(), cached.Table())
	}
}
