package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"deflation/internal/cluster"
	"deflation/internal/pricing"
	"deflation/internal/sweep"
	"deflation/internal/trace"
)

// RevenueResult implements the §8 pricing discussion as an experiment:
// provider revenue at 1.6× target overcommitment under three deployments —
// the preemption-only baseline with today's flat spot discount, deflation
// with the same flat discount, and deflation with resource-as-a-service
// pricing.
type RevenueResult struct {
	Rows []RevenueRow
}

// RevenueRow is one deployment's outcome.
type RevenueRow struct {
	Deployment    string
	Revenue       float64
	CoreHoursSold float64
	PreemptProb   float64
}

// Table renders the comparison.
func (r RevenueResult) Table() string {
	var b strings.Builder
	b.WriteString("# §8 pricing: provider revenue at 1.6x target overcommitment\n")
	fmt.Fprintf(&b, "%-28s %12s %14s %12s\n", "deployment", "revenue $", "core-hours", "preempt-p")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-28s %12.2f %14.0f %12.3f\n",
			row.Deployment, row.Revenue, row.CoreHoursSold, row.PreemptProb)
	}
	return b.String()
}

// Revenue runs the comparison. quick shrinks the simulation.
func Revenue(quick bool) (RevenueResult, error) {
	var res RevenueResult
	tr := trace.Config{Count: 4000, MeanInterarrival: 2 * time.Second}
	servers := 0
	if quick {
		tr = trace.Config{Count: 2500, MeanInterarrival: 2 * time.Second, LifetimeMedian: 10 * time.Minute}
		servers = 25
	}
	rates := pricing.DefaultRates()
	configs := []struct {
		name  string
		mode  cluster.Mode
		model pricing.Model
	}{
		{"preemption + flat discount", cluster.ModePreemptionOnly, pricing.FlatDiscount{Rates: rates, Discount: 0.3}},
		{"deflation + flat discount", cluster.ModeDeflation, pricing.FlatDiscount{Rates: rates, Discount: 0.3}},
		{"deflation + RaaS", cluster.ModeDeflation, pricing.ResourceAsAService{Rates: rates, Discount: 0.5}},
	}
	// One cell per deployment; each builds its own meter inside the cell so
	// concurrent deployments accrue revenue independently. Meter cells are
	// never memoized (the meter is a side effect of the run).
	var cells []sweep.Cell[RevenueRow]
	for _, cfg := range configs {
		cfg := cfg
		cells = append(cells, sweep.Cell[RevenueRow]{
			Run: func(context.Context) (RevenueRow, error) {
				meter, err := pricing.NewMeter(cfg.model)
				if err != nil {
					return RevenueRow{}, err
				}
				sim, err := cluster.RunSim(cluster.SimConfig{
					Mode:             cfg.mode,
					TargetOvercommit: 1.6,
					Seed:             42,
					Servers:          servers,
					Trace:            tr,
					Meter:            meter,
				})
				if err != nil {
					return RevenueRow{}, err
				}
				return RevenueRow{
					Deployment:    cfg.name,
					Revenue:       meter.Total(),
					CoreHoursSold: meter.CoreHoursSold,
					PreemptProb:   sim.PreemptionProbability,
				}, nil
			},
		})
	}
	rows, err := runCells("revenue", cells)
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}
