package experiments

import (
	"strings"
	"testing"
)

func TestTable1MechanismsAllFire(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want the 4 Table 1 mechanisms", len(r.Rows))
	}
	apps := map[string]bool{}
	for _, row := range r.Rows {
		apps[row.Application] = true
		if row.Effect == "" || row.Mechanism == "" {
			t.Errorf("empty row: %+v", row)
		}
	}
	for _, want := range []string{"memcached", "JVM", "web servers", "Spark"} {
		if !apps[want] {
			t.Errorf("missing mechanism row for %s", want)
		}
	}
	if !strings.Contains(r.Table(), "Table 1") {
		t.Error("rendering broken")
	}
}

func TestTable2WorkloadsAllRun(t *testing.T) {
	r, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("rows = %d, want the 7 Table 2 workloads", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Baseline == "" {
			t.Errorf("workload %s has no baseline", row.Workload)
		}
	}
	if !strings.Contains(r.Table(), "Table 2") {
		t.Error("rendering broken")
	}
}
