package experiments

import (
	"context"

	"deflation/internal/apps/jvm"
	"deflation/internal/apps/kcompile"
	"deflation/internal/cascade"
	"deflation/internal/restypes"
	"deflation/internal/sweep"
)

// sweepGrid fans a (series × x-points) grid out through the sweep engine:
// cell (si, xi) computes one y-value, and the merged series come back in
// submission order. Each cell builds its own host and VM, so the grid
// parallelizes with no shared state.
func sweepGrid(label string, nSeries, nPoints int, cell func(si, xi int) (float64, error)) ([][]float64, error) {
	var cells []sweep.Cell[float64]
	for si := 0; si < nSeries; si++ {
		for xi := 0; xi < nPoints; xi++ {
			si, xi := si, xi
			cells = append(cells, sweep.Cell[float64]{
				Run: func(context.Context) (float64, error) { return cell(si, xi) },
			})
		}
	}
	vals, err := runCells(label, cells)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, nSeries)
	for si := range out {
		out[si] = vals[si*nPoints : (si+1)*nPoints]
	}
	return out, nil
}

// Fig5aResult reproduces Figure 5a: memcached throughput (normalized) under
// memory-only deflation, comparing hypervisor-only, OS-only, and
// hypervisor+OS reclamation on the unmodified application.
type Fig5aResult struct {
	DeflationPct []float64
	Series       []series // Hypervisor only / OS only / Hypervisor+OS
}

// Table renders the figure.
func (r Fig5aResult) Table() string {
	return renderTable("Figure 5a: memcached memory deflation (no app support)",
		"mem-defl%", r.DeflationPct, r.Series)
}

// Fig5a runs the memory-deflation comparison.
func Fig5a() (Fig5aResult, error) {
	res := Fig5aResult{}
	for d := 0.0; d <= 50; d += 10 {
		res.DeflationPct = append(res.DeflationPct, d)
	}
	configs := []struct {
		name   string
		levels cascade.Levels
	}{
		{"Hypervisor-only", cascade.HypervisorOnly()},
		{"OS-only", cascade.OSOnly()},
		{"Hypervisor+OS", cascade.VMLevel()},
	}
	vals, err := sweepGrid("fig5a", len(configs), len(res.DeflationPct), func(si, xi int) (float64, error) {
		app, err := memcacheAppFig5a(false)
		if err != nil {
			return 0, err
		}
		v, err := newHostAndVM(app)
		if err != nil {
			return 0, err
		}
		frac := restypes.Vector{MemoryMB: res.DeflationPct[xi] / 100}
		if _, err := deflateBy(v, configs[si].levels, frac); err != nil {
			return 0, err
		}
		return v.Throughput(), nil
	})
	if err != nil {
		return res, err
	}
	for si, cfg := range configs {
		res.Series = append(res.Series, series{Name: cfg.name, Values: vals[si]})
	}
	return res, nil
}

// Fig5bResult reproduces Figure 5b: kernel-compile throughput under
// CPU-only deflation across the same three reclamation configurations.
type Fig5bResult struct {
	DeflationPct []float64
	Series       []series
}

// Table renders the figure.
func (r Fig5bResult) Table() string {
	return renderTable("Figure 5b: kernel-compile CPU deflation (no app support)",
		"cpu-defl%", r.DeflationPct, r.Series)
}

// Fig5b runs the CPU-deflation comparison.
func Fig5b() (Fig5bResult, error) {
	res := Fig5bResult{}
	for d := 0.0; d <= 80; d += 10 {
		res.DeflationPct = append(res.DeflationPct, d)
	}
	configs := []struct {
		name   string
		levels cascade.Levels
	}{
		{"Hypervisor-only", cascade.HypervisorOnly()},
		{"OS-only", cascade.OSOnly()},
		{"Hypervisor+OS", cascade.VMLevel()},
	}
	vals, err := sweepGrid("fig5b", len(configs), len(res.DeflationPct), func(si, xi int) (float64, error) {
		v, err := newHostAndVM(kcompile.NewApp(kcompile.AppConfig{}))
		if err != nil {
			return 0, err
		}
		frac := restypes.Vector{CPU: res.DeflationPct[xi] / 100}
		if _, err := deflateBy(v, configs[si].levels, frac); err != nil {
			return 0, err
		}
		return v.Throughput(), nil
	})
	if err != nil {
		return res, err
	}
	for si, cfg := range configs {
		res.Series = append(res.Series, series{Name: cfg.name, Values: vals[si]})
	}
	return res, nil
}

// Fig5cResult reproduces Figure 5c: memcached kGETS/s under memory
// deflation, unmodified (VM-level deflation) versus the deflation-aware
// application (full cascade with the LRU resize policy).
type Fig5cResult struct {
	DeflationPct []float64
	Series       []series // Unmodified / App Deflation, in kGETS/s
}

// Table renders the figure.
func (r Fig5cResult) Table() string {
	return renderTable("Figure 5c: memcached kGETS/s, unmodified vs app deflation",
		"mem-defl%", r.DeflationPct, r.Series)
}

// Fig5c runs the memory-stressed throughput comparison.
func Fig5c() (Fig5cResult, error) {
	res := Fig5cResult{}
	for d := 0.0; d <= 60; d += 10 {
		res.DeflationPct = append(res.DeflationPct, d)
	}
	configs := []struct {
		name   string
		aware  bool
		levels cascade.Levels
	}{
		{"Unmodified", false, cascade.VMLevel()},
		{"App-Deflation", true, cascade.AllLevels()},
	}
	vals, err := sweepGrid("fig5c", len(configs), len(res.DeflationPct), func(si, xi int) (float64, error) {
		app, err := memcacheAppFig5c(configs[si].aware)
		if err != nil {
			return 0, err
		}
		v, err := newHostAndVM(app)
		if err != nil {
			return 0, err
		}
		frac := restypes.Vector{MemoryMB: res.DeflationPct[xi] / 100}
		if _, err := deflateBy(v, configs[si].levels, frac); err != nil {
			return 0, err
		}
		return app.KGETS(v.Env()), nil
	})
	if err != nil {
		return res, err
	}
	for si, cfg := range configs {
		res.Series = append(res.Series, series{Name: cfg.name, Values: vals[si]})
	}
	return res, nil
}

// Fig5dResult reproduces Figure 5d: SpecJBB response time (µs) when CPU and
// memory are deflated together, unmodified versus the deflation-aware JVM
// (GC + heap resize policy).
type Fig5dResult struct {
	DeflationPct []float64
	Series       []series // Unmodified / App Deflation, response time µs
}

// Table renders the figure.
func (r Fig5dResult) Table() string {
	return renderTable("Figure 5d: SpecJBB response time (µs), unmodified vs app deflation",
		"defl%", r.DeflationPct, r.Series)
}

// Fig5d runs the JVM comparison.
func Fig5d() (Fig5dResult, error) {
	res := Fig5dResult{}
	for d := 0.0; d <= 60; d += 10 {
		res.DeflationPct = append(res.DeflationPct, d)
	}
	configs := []struct {
		name   string
		aware  bool
		levels cascade.Levels
	}{
		{"Unmodified", false, cascade.VMLevel()},
		{"App-Deflation", true, cascade.AllLevels()},
	}
	vals, err := sweepGrid("fig5d", len(configs), len(res.DeflationPct), func(si, xi int) (float64, error) {
		app, err := jvm.NewApp(jvm.AppConfig{
			MaxHeapMB: 12000, LiveMB: 3000, DeflationAware: configs[si].aware, Cores: 4,
		})
		if err != nil {
			return 0, err
		}
		v, err := newHostAndVM(app)
		if err != nil {
			return 0, err
		}
		d := res.DeflationPct[xi]
		frac := restypes.Vector{CPU: d / 100, MemoryMB: d / 100}
		if _, err := deflateBy(v, configs[si].levels, frac); err != nil {
			return 0, err
		}
		return app.ResponseTimeUS(v.Env()), nil
	})
	if err != nil {
		return res, err
	}
	for si, cfg := range configs {
		res.Series = append(res.Series, series{Name: cfg.name, Values: vals[si]})
	}
	return res, nil
}
