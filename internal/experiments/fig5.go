package experiments

import (
	"deflation/internal/apps/jvm"
	"deflation/internal/apps/kcompile"
	"deflation/internal/cascade"
	"deflation/internal/restypes"
)

// Fig5aResult reproduces Figure 5a: memcached throughput (normalized) under
// memory-only deflation, comparing hypervisor-only, OS-only, and
// hypervisor+OS reclamation on the unmodified application.
type Fig5aResult struct {
	DeflationPct []float64
	Series       []series // Hypervisor only / OS only / Hypervisor+OS
}

// Table renders the figure.
func (r Fig5aResult) Table() string {
	return renderTable("Figure 5a: memcached memory deflation (no app support)",
		"mem-defl%", r.DeflationPct, r.Series)
}

// Fig5a runs the memory-deflation comparison.
func Fig5a() (Fig5aResult, error) {
	res := Fig5aResult{}
	for d := 0.0; d <= 50; d += 10 {
		res.DeflationPct = append(res.DeflationPct, d)
	}
	configs := []struct {
		name   string
		levels cascade.Levels
	}{
		{"Hypervisor-only", cascade.HypervisorOnly()},
		{"OS-only", cascade.OSOnly()},
		{"Hypervisor+OS", cascade.VMLevel()},
	}
	for _, cfg := range configs {
		s := series{Name: cfg.name}
		for _, d := range res.DeflationPct {
			app, err := memcacheAppFig5a(false)
			if err != nil {
				return res, err
			}
			v, err := newHostAndVM(app)
			if err != nil {
				return res, err
			}
			frac := restypes.Vector{MemoryMB: d / 100}
			if _, err := deflateBy(v, cfg.levels, frac); err != nil {
				return res, err
			}
			s.Values = append(s.Values, v.Throughput())
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig5bResult reproduces Figure 5b: kernel-compile throughput under
// CPU-only deflation across the same three reclamation configurations.
type Fig5bResult struct {
	DeflationPct []float64
	Series       []series
}

// Table renders the figure.
func (r Fig5bResult) Table() string {
	return renderTable("Figure 5b: kernel-compile CPU deflation (no app support)",
		"cpu-defl%", r.DeflationPct, r.Series)
}

// Fig5b runs the CPU-deflation comparison.
func Fig5b() (Fig5bResult, error) {
	res := Fig5bResult{}
	for d := 0.0; d <= 80; d += 10 {
		res.DeflationPct = append(res.DeflationPct, d)
	}
	configs := []struct {
		name   string
		levels cascade.Levels
	}{
		{"Hypervisor-only", cascade.HypervisorOnly()},
		{"OS-only", cascade.OSOnly()},
		{"Hypervisor+OS", cascade.VMLevel()},
	}
	for _, cfg := range configs {
		s := series{Name: cfg.name}
		for _, d := range res.DeflationPct {
			v, err := newHostAndVM(kcompile.NewApp(kcompile.AppConfig{}))
			if err != nil {
				return res, err
			}
			frac := restypes.Vector{CPU: d / 100}
			if _, err := deflateBy(v, cfg.levels, frac); err != nil {
				return res, err
			}
			s.Values = append(s.Values, v.Throughput())
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig5cResult reproduces Figure 5c: memcached kGETS/s under memory
// deflation, unmodified (VM-level deflation) versus the deflation-aware
// application (full cascade with the LRU resize policy).
type Fig5cResult struct {
	DeflationPct []float64
	Series       []series // Unmodified / App Deflation, in kGETS/s
}

// Table renders the figure.
func (r Fig5cResult) Table() string {
	return renderTable("Figure 5c: memcached kGETS/s, unmodified vs app deflation",
		"mem-defl%", r.DeflationPct, r.Series)
}

// Fig5c runs the memory-stressed throughput comparison.
func Fig5c() (Fig5cResult, error) {
	res := Fig5cResult{}
	for d := 0.0; d <= 60; d += 10 {
		res.DeflationPct = append(res.DeflationPct, d)
	}
	configs := []struct {
		name   string
		aware  bool
		levels cascade.Levels
	}{
		{"Unmodified", false, cascade.VMLevel()},
		{"App-Deflation", true, cascade.AllLevels()},
	}
	for _, cfg := range configs {
		s := series{Name: cfg.name}
		for _, d := range res.DeflationPct {
			app, err := memcacheAppFig5c(cfg.aware)
			if err != nil {
				return res, err
			}
			v, err := newHostAndVM(app)
			if err != nil {
				return res, err
			}
			frac := restypes.Vector{MemoryMB: d / 100}
			if _, err := deflateBy(v, cfg.levels, frac); err != nil {
				return res, err
			}
			s.Values = append(s.Values, app.KGETS(v.Env()))
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig5dResult reproduces Figure 5d: SpecJBB response time (µs) when CPU and
// memory are deflated together, unmodified versus the deflation-aware JVM
// (GC + heap resize policy).
type Fig5dResult struct {
	DeflationPct []float64
	Series       []series // Unmodified / App Deflation, response time µs
}

// Table renders the figure.
func (r Fig5dResult) Table() string {
	return renderTable("Figure 5d: SpecJBB response time (µs), unmodified vs app deflation",
		"defl%", r.DeflationPct, r.Series)
}

// Fig5d runs the JVM comparison.
func Fig5d() (Fig5dResult, error) {
	res := Fig5dResult{}
	for d := 0.0; d <= 60; d += 10 {
		res.DeflationPct = append(res.DeflationPct, d)
	}
	configs := []struct {
		name   string
		aware  bool
		levels cascade.Levels
	}{
		{"Unmodified", false, cascade.VMLevel()},
		{"App-Deflation", true, cascade.AllLevels()},
	}
	for _, cfg := range configs {
		s := series{Name: cfg.name}
		for _, d := range res.DeflationPct {
			app, err := jvm.NewApp(jvm.AppConfig{
				MaxHeapMB: 12000, LiveMB: 3000, DeflationAware: cfg.aware, Cores: 4,
			})
			if err != nil {
				return res, err
			}
			v, err := newHostAndVM(app)
			if err != nil {
				return res, err
			}
			frac := restypes.Vector{CPU: d / 100, MemoryMB: d / 100}
			if _, err := deflateBy(v, cfg.levels, frac); err != nil {
				return res, err
			}
			s.Values = append(s.Values, app.ResponseTimeUS(v.Env()))
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}
