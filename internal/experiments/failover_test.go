package experiments

import (
	"strings"
	"testing"
	"time"
)

// tinyFailover keeps the sweep small enough for unit tests while still
// failing the leader over several times per run.
func tinyFailover() FailoverConfig {
	return FailoverConfig{
		Overcommits:       []float64{1.5},
		LeaseTimeout:      30 * time.Second,
		ManagerMTBF:       4 * time.Minute,
		PartitionMTBF:     8 * time.Minute,
		PartitionDuration: 90 * time.Second,
		DiskFailProb:      0.005,
		TraceCount:        1200,
		MeanInterarrival:  2 * time.Second,
		LifetimeMedian:    10 * time.Minute,
		Servers:           15,
	}
}

func TestFailoverZeroFaultRowReproducesFig8cBaseline(t *testing.T) {
	// The acceptance bar: arming the hot standby must cost nothing when no
	// faults fire — the zero-fault row equals the Fig. 8c deflation curve
	// for the same simulation parameters, exactly.
	cfg := tinyFailover()
	fo, err := Failover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig8c, err := Fig8c(Fig8cConfig{
		OvercommitLevels: cfg.Overcommits,
		TraceCount:       cfg.TraceCount,
		MeanInterarrival: cfg.MeanInterarrival,
		LifetimeMedian:   cfg.LifetimeMedian,
		Servers:          cfg.Servers,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfg.Overcommits {
		if got, want := fo.Preemption[0].Values[i], fig8c.Deflation.Values[i]; got != want {
			t.Errorf("oc=%.1f: zero-fault preemption %.6f != Fig 8c deflation %.6f",
				cfg.Overcommits[i], got, want)
		}
	}
	if fo.Failovers[0].Values[0] != 0 {
		t.Errorf("zero-fault cell failed over %v times", fo.Failovers[0].Values[0])
	}
}

func TestFailoverNeverEvictsHealthyVMs(t *testing.T) {
	// The paper-level availability claim: across every fault regime —
	// leader crashes, partitions, disk faults, all at once — standby
	// takeovers never evict a VM that is alive on a reachable node, and
	// every deposed leader is provably fenced off.
	fo, err := Failover(tinyFailover())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(fo.Failovers); n != 5 {
		t.Fatalf("series count = %d", n)
	}
	totalFailovers := 0.0
	for si := range fo.Failovers {
		name := fo.Failovers[si].Name
		for oi, ev := range fo.HealthyEvictions[si].Values {
			if ev != 0 {
				t.Errorf("%s oc[%d]: takeovers evicted %v healthy VMs", name, oi, ev)
			}
		}
		if si > 0 && fo.Failovers[si].Values[0] == 0 {
			t.Errorf("%s: no takeovers under injected faults", name)
		}
		totalFailovers += fo.Failovers[si].Values[0]
		if gp := fo.Goodput[si].Values[0]; gp <= 0 {
			t.Errorf("%s: goodput = %v", name, gp)
		}
	}
	if totalFailovers == 0 {
		t.Fatal("sweep never exercised a failover")
	}
	// Partition regimes heal with the deposed leader still alive; its
	// post-heal command must have been rejected somewhere in the sweep.
	staleSeen := 0.0
	for si := range fo.StaleRejected {
		staleSeen += fo.StaleRejected[si].Values[0]
	}
	if staleSeen == 0 {
		t.Error("no stale-epoch command was ever fenced off")
	}

	table := fo.Table()
	for _, want := range []string{"healthy VMs evicted", "standby takeovers", "no faults", "full chaos", "stale-epoch"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}
