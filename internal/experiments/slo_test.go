package experiments

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"deflation/internal/apps/webapp"
	"deflation/internal/hypervisor"
)

func quickSLO(t *testing.T) FigSLOResult {
	t.Helper()
	r, err := FigSLO(QuickFigSLOConfig())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestFigSLOZeroDeflationMatchesWebapp: the sweep's zero-deflation row must
// reproduce the undeflated webapp model — same latency as the thread-pool
// server's own closed form at the measured per-replica load, and
// essentially all offered traffic served.
func TestFigSLOZeroDeflationMatchesWebapp(t *testing.T) {
	cfg := QuickFigSLOConfig()
	r := quickSLO(t)
	p := r.Panels[0]
	app, err := webapp.NewApp(webapp.Config{DeflationAware: true})
	if err != nil {
		t.Fatal(err)
	}
	env := hypervisor.Env{
		VCPUs: 4, PhysCores: 4, EffectiveCores: 4,
		GuestMemMB: 16384, ResidentMB: 16384, EverTouchedMB: 16384,
		KernelMemMB: 256, LocalityFactor: 1, DiskMBps: 100, NetMBps: 1250,
	}
	for _, cells := range [][]sloCellResult{p.slo, p.utility} {
		zero := cells[0]
		perReplica := zero.ServedRPS / float64(p.Replicas)
		wantMean := app.LatencyMS(env, perReplica)
		if math.Abs(zero.MeanMS-wantMean)/wantMean > 0.05 {
			t.Errorf("zero-deflation mean %g ms, webapp model %g ms at %g rps",
				zero.MeanMS, wantMean, perReplica)
		}
		wantP99 := wantMean * math.Log(100)
		if math.Abs(zero.P99MS-wantP99)/wantP99 > 0.08 {
			t.Errorf("zero-deflation p99 %g ms, webapp closed form %g ms", zero.P99MS, wantP99)
		}
		offered := p.RPSPerReplica * float64(p.Replicas)
		if math.Abs(zero.ServedRPS-offered)/offered > 0.02 {
			t.Errorf("zero-deflation served %g rps, offered %g", zero.ServedRPS, offered)
		}
		if zero.DroppedRPS != 0 || zero.SLOViolated {
			t.Errorf("zero-deflation row dropped %g rps, violated=%v", zero.DroppedRPS, zero.SLOViolated)
		}
	}
	// The two policies are byte-identical fleets at zero deflation: the
	// same seeded arrival stream must produce the same distribution.
	if p.slo[0] != p.utility[0] {
		t.Errorf("zero-deflation rows differ across policies:\n%+v\n%+v", p.slo[0], p.utility[0])
	}
	_ = cfg
}

// TestFigSLOFrontierStrictlyDeeper is the headline acceptance: in every
// panel the SLO-targeting policy sustains strictly deeper deflation than
// the utility-curve cascade before its first p99 violation.
func TestFigSLOFrontierStrictlyDeeper(t *testing.T) {
	r := quickSLO(t)
	for _, p := range r.Panels {
		if !(p.SLOFrontierPct > p.UtilityFrontierPct) {
			t.Errorf("panel %g rps × %d: slo frontier %g%% not strictly deeper than utility %g%%",
				p.RPSPerReplica, p.Replicas, p.SLOFrontierPct, p.UtilityFrontierPct)
		}
		// Every non-violating SLO cell keeps p99 under the SLO, and the
		// guard actually reclaimed something at the deepest request.
		for k, c := range p.slo {
			if !c.SLOViolated && c.P99MS > r.SLOP99MS {
				t.Errorf("panel %g rps × %d, defl %g%%: p99 %g above SLO but not flagged",
					p.RPSPerReplica, p.Replicas, r.DeflationPct[k], c.P99MS)
			}
		}
		if deepest := p.slo[len(p.slo)-1]; deepest.WebReclaimedCores <= 0 {
			t.Errorf("panel %g rps × %d: guard reclaimed nothing at the deepest request",
				p.RPSPerReplica, p.Replicas)
		}
	}
}

// TestFigSLOMixedFleet: on the shared host the unguarded batch VMs give up
// the full deep target while the guarded web tier is clamped at its
// headroom and keeps its SLO.
func TestFigSLOMixedFleet(t *testing.T) {
	r := quickSLO(t)
	m := r.Mixed
	if m.BatchVMs == 0 {
		t.Fatal("mixed cell has no batch VMs")
	}
	if m.Cell.SLOViolated {
		t.Errorf("mixed-fleet web tier violated its SLO: p99 %g ms", m.Cell.P99MS)
	}
	if m.Cell.BatchReclaimedCores <= m.Cell.WebReclaimedCores {
		t.Errorf("batch reclaimed %g cores/VM, web %g — batch should give strictly more under a deep request",
			m.Cell.BatchReclaimedCores, m.Cell.WebReclaimedCores)
	}
	wantBatch := stdVMSize().CPU * m.DeflationPct / 100
	if math.Abs(m.Cell.BatchReclaimedCores-wantBatch) > 1e-9 {
		t.Errorf("batch reclaimed %g cores/VM, want the full %g-core target", m.Cell.BatchReclaimedCores, wantBatch)
	}
}

// TestFigSLOMemoizationSafe: the sweep's cells are pure functions of their
// config, so the cross-sweep cache never changes the result.
func TestFigSLOMemoizationSafe(t *testing.T) {
	defer func() {
		SetMemoization(false)
		SetParallelism(0)
	}()
	SetMemoization(false)
	SetParallelism(4)
	plain := quickSLO(t)
	SetMemoization(true)
	warm := quickSLO(t)   // populates the cache
	cached := quickSLO(t) // served from it
	if !reflect.DeepEqual(plain, warm) || !reflect.DeepEqual(plain, cached) {
		t.Error("memoization changed FigSLO results")
	}
	if plain.Table() != cached.Table() {
		t.Error("memoization changed the FigSLO table")
	}
}

func TestFigSLOTable(t *testing.T) {
	r := quickSLO(t)
	table := r.Table()
	for _, want := range []string{
		"fig-slo", "slo p99", "util p99", "frontier", "mixed fleet",
	} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	if r.TotalRequests() < 1e6 {
		t.Errorf("quick sweep modeled only %g requests, want millions", r.TotalRequests())
	}
}
