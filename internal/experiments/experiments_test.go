package experiments

import (
	"math"
	"strings"
	"testing"

	"deflation/internal/spark"
)

// The tests below assert the *shape* claims of each figure — who wins, by
// roughly what factor, where crossovers fall — not absolute numbers.

func TestFig1ShapeClaims(t *testing.T) {
	r, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 4 || len(r.DeflationPct) != 10 {
		t.Fatalf("series/points: %d/%d", len(r.Series), len(r.DeflationPct))
	}
	for _, s := range r.Series {
		if s.Values[0] < 0.99 {
			t.Errorf("%s at 0%% deflation = %g, want 1", s.Name, s.Values[0])
		}
		// Broadly decreasing (small local noise tolerated).
		if s.Values[len(s.Values)-1] > 0.5 {
			t.Errorf("%s at 90%% deflation = %g, want well degraded", s.Name, s.Values[len(s.Values)-1])
		}
		// Headline: at 50%, degradation stays modest (≥ ~0.5 for all).
		at50, err := r.SeriesValue(s.Name, 50)
		if err != nil {
			t.Fatal(err)
		}
		if at50 < 0.45 {
			t.Errorf("%s at 50%% = %g, want sub-proportional degradation", s.Name, at50)
		}
	}
	// Memcached and Kcompile tolerate 50% deflation with <30% loss.
	for _, name := range []string{"Memcached", "Kcompile"} {
		v, _ := r.SeriesValue(name, 50)
		if v < 0.70 {
			t.Errorf("%s at 50%% = %g, want ≥0.70 (paper: <30%% loss)", name, v)
		}
	}
	if !strings.Contains(r.Table(), "Figure 1") {
		t.Error("table rendering broken")
	}
	if _, err := r.SeriesValue("nope", 50); err == nil {
		t.Error("bogus series lookup succeeded")
	}
}

func TestFig5aShapeClaims(t *testing.T) {
	r, err := Fig5a()
	if err != nil {
		t.Fatal(err)
	}
	hyp, osOnly, both := r.Series[0], r.Series[1], r.Series[2]

	// OS-only: unaffected at moderate deflation, then OOM-killed.
	if osOnly.Values[1] < 0.99 {
		t.Errorf("OS-only at 10%% = %g, want 1 (free memory unplugged)", osOnly.Values[1])
	}
	last := osOnly.Values[len(osOnly.Values)-1]
	if last != 0 {
		t.Errorf("OS-only at 50%% = %g, want 0 (OOM)", last)
	}
	// Hypervisor-only declines gently from early on (black-box cost) and
	// is ≈0.7-0.85 at 50%.
	if hyp.Values[1] >= 0.999 {
		t.Errorf("hypervisor-only at 10%% = %g, want < 1 (wrong pages)", hyp.Values[1])
	}
	h50 := hyp.Values[len(hyp.Values)-1]
	if h50 < 0.6 || h50 > 0.9 {
		t.Errorf("hypervisor-only at 50%% = %g, want ≈0.75 (paper: ~20%% loss)", h50)
	}
	// Hypervisor+OS dominates OS-only at 50% (alive) and hypervisor-only
	// at ≤40% (no black-box cost while unplug suffices).
	for i := 0; i <= 4; i++ {
		if both.Values[i] < hyp.Values[i] {
			t.Errorf("Hyp+OS below hypervisor-only at %g%%", r.DeflationPct[i])
		}
	}
	if both.Values[len(both.Values)-1] <= 0 {
		t.Error("Hyp+OS died at 50%")
	}
}

func TestFig5bShapeClaims(t *testing.T) {
	r, err := Fig5b()
	if err != nil {
		t.Fatal(err)
	}
	hyp, osOnly, both := r.Series[0], r.Series[1], r.Series[2]
	n := len(r.DeflationPct) - 1

	// Lock-holder preemption: hypervisor-only strictly below OS-only at
	// deep CPU deflation, by roughly the paper's ≈22%.
	gap := (osOnly.Values[n] - hyp.Values[n]) / osOnly.Values[n]
	if gap < 0.08 || gap > 0.35 {
		t.Errorf("hypervisor-vs-OS gap at 80%% = %.0f%%, want ≈10-30%%", gap*100)
	}
	// Paper: Hyp+OS at 75% deflation loses only ≈30%.
	i70 := 7 // 70%
	if both.Values[i70] < 0.6 {
		t.Errorf("Hyp+OS at 70%% = %g, want ≥0.6", both.Values[i70])
	}
	// Hyp+OS ≥ hypervisor-only everywhere (unplug first avoids LHP).
	for i := range r.DeflationPct {
		if both.Values[i] < hyp.Values[i]-1e-9 {
			t.Errorf("Hyp+OS below hypervisor-only at %g%%", r.DeflationPct[i])
		}
	}
}

func TestFig5cShapeClaims(t *testing.T) {
	r, err := Fig5c()
	if err != nil {
		t.Fatal(err)
	}
	unmod, aware := r.Series[0], r.Series[1]
	n := len(r.DeflationPct) - 1

	// Peak throughput ≈150 kGETS/s, equal before deflation.
	if unmod.Values[0] < 120 || unmod.Values[0] > 160 {
		t.Errorf("baseline = %g kGETS/s, want ≈150", unmod.Values[0])
	}
	// The paper's headline: app deflation is worth up to ≈6× at high
	// memory deflation.
	ratio := aware.Values[n] / unmod.Values[n]
	if ratio < 3 {
		t.Errorf("aware/unmodified at 60%% = %.1fx, want ≥3x (paper: up to 6x)", ratio)
	}
	// Aware degrades gracefully (hit-rate loss only).
	if aware.Values[n] < aware.Values[0]*0.75 {
		t.Errorf("aware at 60%% = %g, want ≥75%% of baseline %g", aware.Values[n], aware.Values[0])
	}
}

func TestFig5dShapeClaims(t *testing.T) {
	r, err := Fig5d()
	if err != nil {
		t.Fatal(err)
	}
	unmod, aware := r.Series[0], r.Series[1]
	n := len(r.DeflationPct) - 1
	// Equal at zero deflation; aware better at high deflation (paper: ≈20%).
	if math.Abs(unmod.Values[0]-aware.Values[0]) > 1 {
		t.Errorf("baselines differ: %g vs %g", unmod.Values[0], aware.Values[0])
	}
	if aware.Values[n] >= unmod.Values[n] {
		t.Errorf("aware RT %g not below unmodified %g at 60%%", aware.Values[n], unmod.Values[n])
	}
	improvement := 1 - aware.Values[n]/unmod.Values[n]
	if improvement < 0.15 {
		t.Errorf("aware improvement at 60%% = %.0f%%, want ≥15%%", improvement*100)
	}
	// Response times rise monotonically with deflation for both.
	for i := 1; i <= n; i++ {
		if unmod.Values[i] < unmod.Values[i-1]-1 {
			t.Errorf("unmodified RT not monotone at %g%%", r.DeflationPct[i])
		}
	}
}

func TestFig6ShapeClaims(t *testing.T) {
	// ALS (shuffle-heavy): VM < Self < Preempt; policy chooses VM-level.
	als, err := Fig6(WorkloadALS)
	if err != nil {
		t.Fatal(err)
	}
	vm50, _ := als.Value(spark.PressureVMLevel, 0.5)
	self50, _ := als.Value(spark.PressureSelf, 0.5)
	pre50, _ := als.Value(spark.PressurePreempt, 0.5)
	pol50, _ := als.Value(spark.PressurePolicy, 0.5)
	if !(vm50 < self50 && self50 < pre50) {
		t.Errorf("ALS ordering: VM %.2f, Self %.2f, Preempt %.2f", vm50, self50, pre50)
	}
	if vm50 < 1.3 || vm50 > 1.8 {
		t.Errorf("ALS VM-level at 50%% = %.2f, want ≈1.5", vm50)
	}
	if pol50 != vm50 {
		t.Errorf("ALS policy %.2f did not match VM-level %.2f", pol50, vm50)
	}
	for _, c := range als.Chosen {
		if c != spark.PressureVMLevel {
			t.Errorf("ALS policy chose %v, want VM", c)
		}
	}

	// K-means (map-heavy over cached input): policy chooses self; self
	// beats VM-level at 50%.
	km, err := Fig6(WorkloadKMeans)
	if err != nil {
		t.Fatal(err)
	}
	kmSelf, _ := km.Value(spark.PressureSelf, 0.5)
	kmVM, _ := km.Value(spark.PressureVMLevel, 0.5)
	kmPol, _ := km.Value(spark.PressurePolicy, 0.5)
	if kmSelf >= kmVM {
		t.Errorf("K-means self %.2f not below VM %.2f at 50%%", kmSelf, kmVM)
	}
	if kmPol != kmSelf {
		t.Errorf("K-means policy %.2f did not match self %.2f", kmPol, kmSelf)
	}
	if kmSelf < 1.1 || kmSelf > 1.7 {
		t.Errorf("K-means self at 50%% = %.2f, want ≈1.4", kmSelf)
	}

	// CNN (synchronous training): VM-level mild (≈1.2 at 50%); preemption
	// ≈2× worse; policy always VM-level.
	cnn, err := Fig6(WorkloadCNN)
	if err != nil {
		t.Fatal(err)
	}
	cnnVM, _ := cnn.Value(spark.PressureVMLevel, 0.5)
	cnnPre, _ := cnn.Value(spark.PressurePreempt, 0.5)
	if cnnVM < 1.1 || cnnVM > 1.45 {
		t.Errorf("CNN VM-level at 50%% = %.2f, want ≈1.2 (paper: 20%%)", cnnVM)
	}
	if cnnPre/cnnVM < 1.5 {
		t.Errorf("CNN preempt/VM = %.2f, want ≥1.5 (paper ≈2x)", cnnPre/cnnVM)
	}
	for _, c := range cnn.Chosen {
		if c != spark.PressureVMLevel {
			t.Errorf("CNN policy chose %v, want VM", c)
		}
	}

	// RNN: same structure, ≈1.25 at 50% with VM-level.
	rnn, err := Fig6(WorkloadRNN)
	if err != nil {
		t.Fatal(err)
	}
	rnnVM, _ := rnn.Value(spark.PressureVMLevel, 0.5)
	rnnPre, _ := rnn.Value(spark.PressurePreempt, 0.5)
	if rnnVM < 1.15 || rnnVM > 1.5 {
		t.Errorf("RNN VM-level at 50%% = %.2f, want ≈1.25", rnnVM)
	}
	if rnnPre <= rnnVM {
		t.Errorf("RNN preempt %.2f not worse than VM %.2f", rnnPre, rnnVM)
	}
}

func TestFig7aShapeClaims(t *testing.T) {
	r, err := Fig7a()
	if err != nil {
		t.Fatal(err)
	}
	self, vmlvl := r.Series[0], r.Series[1]
	n := len(r.ProgressPct) - 1
	// Early: self better. Late: VM-level better. A crossover in between.
	if self.Values[0] >= vmlvl.Values[0] {
		t.Errorf("early: self %.2f not below VM %.2f", self.Values[0], vmlvl.Values[0])
	}
	if self.Values[n] <= vmlvl.Values[n] {
		t.Errorf("late: self %.2f not above VM %.2f", self.Values[n], vmlvl.Values[n])
	}
	// VM-level overhead trends downward with later deflation.
	for i := 1; i <= n; i++ {
		if vmlvl.Values[i] > vmlvl.Values[i-1]+1e-9 {
			t.Errorf("VM-level overhead rose at progress %g%%", r.ProgressPct[i])
		}
	}
}

func TestFig7bShapeClaims(t *testing.T) {
	r, err := Fig7b()
	if err != nil {
		t.Fatal(err)
	}
	// Baseline is flat at ≈720 records/s.
	if r.Baseline.Max() < 700 || r.Baseline.Max() > 740 {
		t.Errorf("baseline throughput = %g, want ≈720", r.Baseline.Max())
	}
	// Deflation: dips during pressure (minutes 10–40), recovers after.
	during := r.Deflation.At(25 * 60 * 1e9)
	after := r.Deflation.At(70 * 60 * 1e9)
	if during >= r.Baseline.Max()*0.95 {
		t.Errorf("deflation throughput during pressure = %g, want a dip", during)
	}
	if during < r.Baseline.Max()*0.5 {
		t.Errorf("deflation dip = %g, too deep (paper: ≈20-30%%)", during)
	}
	if after < r.Baseline.Max()*0.95 {
		t.Errorf("deflation did not recover: %g", after)
	}
	// Preemption: checkpointing tax even before pressure, and a restart
	// gap (a zero sample) at the pressure start.
	before := r.Preemption.At(5 * 60 * 1e9)
	if before >= r.Baseline.Max()*0.95 {
		t.Errorf("preemption pre-pressure throughput = %g, want checkpoint tax", before)
	}
	sawZero := false
	for _, p := range r.Preemption.Points() {
		if p.V == 0 {
			sawZero = true
		}
	}
	if !sawZero {
		t.Error("preemption series has no restart gap")
	}
	// Deflation's time-averaged throughput beats preemption's (paper:
	// ≈20% better even including the pressure window).
	if r.Deflation.Mean() <= r.Preemption.Mean() {
		t.Errorf("deflation mean %g not above preemption mean %g",
			r.Deflation.Mean(), r.Preemption.Mean())
	}
}

func TestFig8aShapeClaims(t *testing.T) {
	r, err := Fig8a()
	if err != nil {
		t.Fatal(err)
	}
	// Total peaks well above 1 during co-location (paper: ≈1.8).
	peak := r.Total.Max()
	if peak < 1.5 || peak > 1.9 {
		t.Errorf("total peak = %.2f, want ≈1.6-1.8", peak)
	}
	// Spark dips during pressure, recovers fully after.
	during := r.Spark.At(60 * 60 * 1e9)
	after := r.Spark.At(110 * 60 * 1e9)
	if during > 0.9 || during < 0.5 {
		t.Errorf("spark during pressure = %.2f, want ≈0.7 (20-30%% loss)", during)
	}
	if after < 0.99 {
		t.Errorf("spark after pressure = %.2f, want full recovery", after)
	}
	// Memcached serves at (near) full speed while present.
	if mc := r.Memcached.At(60 * 60 * 1e9); mc < 0.9 {
		t.Errorf("memcached during co-location = %.2f", mc)
	}
}

func TestFig8bShapeClaims(t *testing.T) {
	r, err := Fig8b()
	if err != nil {
		t.Fatal(err)
	}
	hyp, both, casc := r.Series[0], r.Series[1], r.Series[2]
	n := len(r.DeflationPct) - 1 // 55%

	// Cascade stays under 100 s even at the deepest deflation (paper).
	if casc.Values[n] > 100 {
		t.Errorf("cascade latency at 55%% = %.0fs, want <100s", casc.Values[n])
	}
	// Without app deflation, latency is 2–3× (and hypervisor-only worse).
	if both.Values[n]/casc.Values[n] < 1.5 {
		t.Errorf("Hyp+OS/cascade = %.1fx, want ≥1.5x (paper: 2-3x)", both.Values[n]/casc.Values[n])
	}
	if hyp.Values[n] <= both.Values[n] {
		t.Errorf("hypervisor-only %.0fs not worse than Hyp+OS %.0fs", hyp.Values[n], both.Values[n])
	}
	// Hypervisor-only ≈300s at 50% (swap-bandwidth bound).
	i50 := n - 1
	if hyp.Values[i50] < 200 || hyp.Values[i50] > 400 {
		t.Errorf("hypervisor-only at 50%% = %.0fs, want ≈300s", hyp.Values[i50])
	}
	// Latency grows with deflation level for every mechanism.
	for _, s := range r.Series {
		for i := 1; i < len(s.Values); i++ {
			if s.Values[i] < s.Values[i-1]-1e-9 {
				t.Errorf("%s latency not monotone at %g%%", s.Name, r.DeflationPct[i])
			}
		}
	}
}

func TestFig8cQuickShapeClaims(t *testing.T) {
	r, err := Fig8c(QuickFig8cConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.OvercommitPct {
		if r.Deflation.Values[i] >= r.PreemptOnly.Values[i] {
			t.Errorf("at %g%%: deflation %.3f not below preemption-only %.3f",
				r.OvercommitPct[i], r.Deflation.Values[i], r.PreemptOnly.Values[i])
		}
	}
	// Deflation near zero at 50% overcommit.
	if r.Deflation.Values[0] > 0.05 {
		t.Errorf("deflation at 50%% overcommit = %.3f, want ≈0", r.Deflation.Values[0])
	}
	// Preemption-only substantial everywhere.
	if r.PreemptOnly.Values[0] < 0.1 {
		t.Errorf("preemption-only at 50%% = %.3f, want ≥0.1", r.PreemptOnly.Values[0])
	}
}

func TestFig8dQuickShapeClaims(t *testing.T) {
	r, err := Fig8d(true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Policies) != 3 {
		t.Fatalf("policies: %v", r.Policies)
	}
	// All policies sustain overcommitment ≈equal mean (the paper's point:
	// deflation masks placement differences).
	for i := 1; i < 3; i++ {
		ratio := r.Mean[i] / r.Mean[0]
		if ratio < 0.85 || ratio > 1.2 {
			t.Errorf("%s mean %.2f far from %s mean %.2f",
				r.Policies[i], r.Mean[i], r.Policies[0], r.Mean[0])
		}
	}
	// And all overcommit beyond 1× nominal.
	for i, m := range r.Mean {
		if m < 1.0 {
			t.Errorf("%s mean overcommit = %.2f, want > 1", r.Policies[i], m)
		}
	}
	if !strings.Contains(r.Table(), "best-fit") {
		t.Error("table rendering broken")
	}
}

func TestRevenueShapeClaims(t *testing.T) {
	r, err := Revenue(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	preempt, deflFlat, deflRaaS := r.Rows[0], r.Rows[1], r.Rows[2]
	// §8's argument: deflation's higher utilization earns the provider
	// more than the preemption-only baseline, under either pricing model.
	if deflFlat.Revenue <= preempt.Revenue {
		t.Errorf("deflation flat %.2f not above preemption %.2f", deflFlat.Revenue, preempt.Revenue)
	}
	if deflRaaS.Revenue <= preempt.Revenue {
		t.Errorf("deflation RaaS %.2f not above preemption %.2f", deflRaaS.Revenue, preempt.Revenue)
	}
	if deflFlat.CoreHoursSold <= preempt.CoreHoursSold {
		t.Errorf("deflation core-hours %.0f not above preemption %.0f",
			deflFlat.CoreHoursSold, preempt.CoreHoursSold)
	}
	// And it does so while preempting far less.
	if deflFlat.PreemptProb >= preempt.PreemptProb/2 {
		t.Errorf("deflation preempt-p %.3f not well below baseline %.3f",
			deflFlat.PreemptProb, preempt.PreemptProb)
	}
	if !strings.Contains(r.Table(), "revenue") {
		t.Error("rendering broken")
	}
}
