package experiments

import (
	"fmt"

	"deflation/internal/apps/jvm"
	"deflation/internal/apps/kcompile"
	"deflation/internal/cascade"
	"deflation/internal/restypes"
	"deflation/internal/spark"
	"deflation/internal/spark/workloads"
	"deflation/internal/vm"
)

// Fig1Result reproduces Figure 1: normalized application performance as a
// whole VM (CPU, memory, and I/O together) is deflated from 0 to 90%, for
// the four motivating workloads.
type Fig1Result struct {
	DeflationPct []float64
	Series       []series
}

// Table renders the figure as text.
func (r Fig1Result) Table() string {
	return renderTable("Figure 1: normalized performance vs deflation %",
		"deflation%", r.DeflationPct, r.Series)
}

// SeriesValue returns workload w's performance at deflation d percent.
func (r Fig1Result) SeriesValue(w string, dPct float64) (float64, error) {
	for _, s := range r.Series {
		if s.Name != w {
			continue
		}
		for i, x := range r.DeflationPct {
			if x == dPct {
				return s.Values[i], nil
			}
		}
	}
	return 0, fmt.Errorf("experiments: no point %q @ %g%%", w, dPct)
}

// fig1DeflatedThroughput builds a fresh VM around app, deflates it
// uniformly by d percent through the full cascade, and returns throughput.
func fig1DeflatedThroughput(app vm.Application, d float64) (float64, error) {
	v, err := newHostAndVM(app)
	if err != nil {
		return 0, err
	}
	if _, err := deflateBy(v, cascade.AllLevels(), restypes.Uniform(d/100)); err != nil {
		return 0, err
	}
	return v.Throughput(), nil
}

// Fig1 measures each workload at increasing uniform deflation, using the
// full cascade with the workload's own deflation policy — the deployment
// the paper motivates. Every (workload, deflation) point is one sweep
// cell with its own host, VM, and application.
func Fig1() (Fig1Result, error) {
	res := Fig1Result{}
	for d := 0.0; d <= 90; d += 10 {
		res.DeflationPct = append(res.DeflationPct, d)
	}

	workloads := []struct {
		name string
		run  func(d float64) (float64, error)
	}{
		{"SpecJBB", func(d float64) (float64, error) {
			app, err := jvm.NewApp(jvm.AppConfig{
				MaxHeapMB: 12000, LiveMB: 1200, DeflationAware: true, Cores: 4,
			})
			if err != nil {
				return 0, err
			}
			return fig1DeflatedThroughput(app, d)
		}},
		{"Kcompile", func(d float64) (float64, error) {
			return fig1DeflatedThroughput(kcompile.NewApp(kcompile.AppConfig{}), d)
		}},
		{"Memcached", func(d float64) (float64, error) {
			app, err := memcacheAppFig5a(true)
			if err != nil {
				return 0, err
			}
			return fig1DeflatedThroughput(app, d)
		}},
		{"Spark-Kmeans", func(d float64) (float64, error) {
			norm, err := kmeansNormalizedRuntime(d / 100)
			if err != nil {
				return 0, err
			}
			return 1 / norm, nil
		}},
	}

	vals, err := sweepGrid("fig1", len(workloads), len(res.DeflationPct), func(si, xi int) (float64, error) {
		return workloads[si].run(res.DeflationPct[xi])
	})
	if err != nil {
		return res, err
	}
	for si, w := range workloads {
		res.Series = append(res.Series, series{Name: w.name, Values: vals[si]})
	}
	return res, nil
}

// kmeansNormalizedRuntime runs the real K-means job on the mini-Spark
// engine with all worker VMs deflated by d from (nearly) the start, under
// the cascade policy, and returns runtime normalized to no deflation.
func kmeansNormalizedRuntime(d float64) (float64, error) {
	p := workloads.Params{}
	base, err := runKMeans(p, nil)
	if err != nil {
		return 0, err
	}
	if d == 0 {
		return 1, nil
	}
	deflation := make([]float64, 8)
	for i := range deflation {
		deflation[i] = d
	}
	pressured, err := runKMeans(p, &spark.PressureSpec{
		AtProgress: 0.01, Deflation: deflation, Mechanism: spark.PressurePolicy,
		Estimator: spark.EstimatorHeuristic,
	})
	if err != nil {
		return 0, err
	}
	return pressured / base, nil
}

func runKMeans(p workloads.Params, spec *spark.PressureSpec) (float64, error) {
	cl, err := p.Cluster()
	if err != nil {
		return 0, err
	}
	job, err := workloads.KMeans(p)
	if err != nil {
		return 0, err
	}
	res, err := spark.RunBatchScenario(cl, job, spec)
	if err != nil {
		return 0, err
	}
	return res.DurationSecs, nil
}
