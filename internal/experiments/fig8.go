package experiments

import (
	"context"
	"fmt"
	"time"

	"deflation/internal/apps/curveapp"
	"deflation/internal/cascade"
	"deflation/internal/cluster"
	"deflation/internal/guestos"
	"deflation/internal/hypervisor"
	"deflation/internal/metrics"
	"deflation/internal/restypes"
	"deflation/internal/spark"
	"deflation/internal/sweep"
	"deflation/internal/trace"
	"deflation/internal/vm"
)

// Fig8aResult reproduces Figure 8a: cluster throughput over time while a
// high-priority memcached cluster arrives on a server running Spark CNN
// training on deflatable VMs, deflating them by ~50%. Each application's
// throughput is normalized to its own full-resource level; the total peaks
// near 1.8×.
type Fig8aResult struct {
	Spark, Memcached, Total *metrics.TimeSeries
}

// Table renders the three timelines.
func (r Fig8aResult) Table() string {
	return r.Spark.Table() + r.Memcached.Table() + r.Total.Table()
}

// Fig8a runs the co-location timeline.
func Fig8a() (Fig8aResult, error) {
	res := Fig8aResult{
		Spark:     metrics.NewTimeSeries("spark (normalized)"),
		Memcached: metrics.NewTimeSeries("memcached (normalized)"),
		Total:     metrics.NewTimeSeries("total cluster throughput"),
	}
	host, err := hypervisor.NewHost(hypervisor.Config{
		Name:     "fig8a",
		Capacity: restypes.V(48, 196608, 4800, 15000),
	})
	if err != nil {
		return res, err
	}
	ctrl := cluster.NewLocalController(host, cascade.AllLevels(), cluster.ModeDeflation)

	// 8 deflatable Spark worker VMs running CNN training.
	sparkSize := restypes.V(4, 16384, 400, 1250)
	for i := 0; i < 8; i++ {
		_, _, err := ctrl.LaunchVM(cluster.LaunchSpec{
			Name: fmt.Sprintf("spark-%d", i), Size: sparkSize,
			Priority: vm.LowPriority, Warm: true,
			NewApp: func(size restypes.Vector) vm.Application {
				// Elastic in memory: the executor heap shrinks under
				// deflation (the Spark worker's agent policy), so the
				// throughput cost is the training curve alone.
				return curveapp.New(curveapp.Config{
					Name: "spark-cnn", Curve: spark.CurveCNNTraining, Size: size,
					Elastic: true, RSSFraction: 0.5, MinRSSFraction: 0.15,
				})
			},
		})
		if err != nil {
			return res, err
		}
	}

	sparkNorm := func() float64 {
		var sum float64
		n := 0
		for _, v := range ctrl.VMs() {
			if v.Priority() == vm.LowPriority {
				sum += v.Throughput()
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	memNorm := func() float64 {
		var sum float64
		n := 0
		for _, v := range ctrl.VMs() {
			if v.Priority() == vm.HighPriority {
				sum += v.Throughput()
				n++
			}
		}
		if n == 0 {
			return 0
		}
		// Normalize to the full 8-VM memcached cluster.
		return sum / 8
	}

	const (
		window   = 120 * time.Minute
		arrive   = 30 * time.Minute
		depart   = 90 * time.Minute
		tickStep = time.Minute
	)
	for tick := time.Duration(0); tick <= window; tick += tickStep {
		if tick == arrive {
			// 8 high-priority memcached VMs: 32 cores of demand against 16
			// free, deflating the Spark VMs by ≈50%.
			for i := 0; i < 8; i++ {
				_, _, err := ctrl.LaunchVM(cluster.LaunchSpec{
					Name: fmt.Sprintf("memcached-%d", i), Size: sparkSize,
					Priority: vm.HighPriority, AppKind: "memcached",
				})
				if err != nil {
					return res, err
				}
			}
		}
		if tick == depart {
			for i := 0; i < 8; i++ {
				if err := ctrl.Release(fmt.Sprintf("memcached-%d", i)); err != nil {
					return res, err
				}
			}
		}
		sp, mc := sparkNorm(), memNorm()
		if err := res.Spark.Add(tick, sp); err != nil {
			return res, err
		}
		if err := res.Memcached.Add(tick, mc); err != nil {
			return res, err
		}
		if err := res.Total.Add(tick, sp+mc); err != nil {
			return res, err
		}
	}
	return res, nil
}

// Fig8bResult reproduces Figure 8b: worst-case deflation latency of a giant
// VM (48 vCPUs, 100 GB) at increasing deflation levels, for hypervisor-only
// reclamation, hypervisor+OS, and the full cascade (with application
// deflation).
type Fig8bResult struct {
	DeflationPct []float64
	Series       []series // latency in seconds
}

// Table renders the figure.
func (r Fig8bResult) Table() string {
	return renderTable("Figure 8b: giant-VM (48 vCPU, 100 GB) deflation latency (s)",
		"defl%", r.DeflationPct, r.Series)
}

// Fig8b measures reclamation latency per level configuration. Each
// (configuration, deflation) point is one independent sweep cell: it builds
// its own host and VM, so cells parallelize freely.
func Fig8b() (Fig8bResult, error) {
	res := Fig8bResult{}
	for d := 10.0; d <= 55; d += 5 {
		res.DeflationPct = append(res.DeflationPct, d)
	}
	configs := []struct {
		name    string
		levels  cascade.Levels
		elastic bool
	}{
		{"Hypervisor", cascade.HypervisorOnly(), false},
		{"Hypervisor+OS", cascade.VMLevel(), false},
		{"Cascade", cascade.AllLevels(), true},
	}
	giant := restypes.V(48, 102400, 2000, 5000)
	var cells []sweep.Cell[float64]
	for _, cfg := range configs {
		cfg := cfg
		for _, d := range res.DeflationPct {
			d := d
			cells = append(cells, sweep.Cell[float64]{
				Run: func(context.Context) (float64, error) {
					host, err := hypervisor.NewHost(hypervisor.Config{
						Name: "giant", Capacity: giant.Scale(1.2),
					})
					if err != nil {
						return 0, err
					}
					dom, err := host.CreateDomain("giant-vm", giant, guestos.Config{CPUs: 48, MemoryMB: giant.MemoryMB})
					if err != nil {
						return 0, err
					}
					dom.MarkWarm()
					app := curveapp.New(curveapp.Config{
						Name: "giant-memcached", Size: giant,
						RSSFraction: 0.6, CacheFraction: 0.2,
						Elastic: cfg.elastic, MinRSSFraction: 0.1,
					})
					v, err := vm.New(dom, app, vm.Config{})
					if err != nil {
						return 0, err
					}
					rep, err := cascade.New(cfg.levels).Deflate(v, giant.Scale(d/100))
					if err != nil {
						return 0, err
					}
					return rep.TotalLatency.Seconds(), nil
				},
			})
		}
	}
	vals, err := runCells("fig8b", cells)
	if err != nil {
		return res, err
	}
	for ci, cfg := range configs {
		res.Series = append(res.Series, series{
			Name:   cfg.name,
			Values: vals[ci*len(res.DeflationPct) : (ci+1)*len(res.DeflationPct)],
		})
	}
	return res, nil
}

// Fig8cConfig sizes the Figure 8c sweep; the zero value is the full
// experiment.
type Fig8cConfig struct {
	// OvercommitLevels are the x-axis points (default 1.1–2.1).
	OvercommitLevels []float64
	// TraceCount is the trace length per point (default 4000).
	TraceCount int
	// MeanInterarrival and LifetimeMedian control offered load (defaults
	// 2s and 1h; the quick mode shortens lifetimes to keep pressure high
	// with a short trace).
	MeanInterarrival time.Duration
	LifetimeMedian   time.Duration
	// Servers overrides the cluster size (default 100; quick mode shrinks
	// the cluster so a short trace still saturates it).
	Servers int
	Seed    int64
}

// QuickFig8cConfig returns a reduced sweep that still saturates the
// cluster: fewer points, a shorter trace with faster churn.
func QuickFig8cConfig() Fig8cConfig {
	return Fig8cConfig{
		OvercommitLevels: []float64{1.5, 1.8},
		TraceCount:       2500,
		MeanInterarrival: 2 * time.Second,
		LifetimeMedian:   10 * time.Minute,
		Servers:          25,
	}
}

// Fig8cResult reproduces Figure 8c: probability of low-priority VM
// preemption versus cluster overcommitment, for deflation and the
// preemption-only baseline, on the trace-driven 100-node simulation.
type Fig8cResult struct {
	OvercommitPct []float64 // (ratio-1)×100, the paper's x-axis
	Deflation     series
	PreemptOnly   series
}

// Table renders the figure.
func (r Fig8cResult) Table() string {
	return renderTable("Figure 8c: preemption probability vs overcommitment (50% low-priority)",
		"overcommit%", r.OvercommitPct, []series{r.Deflation, r.PreemptOnly})
}

// Fig8c runs the sweep.
func Fig8c(cfg Fig8cConfig) (Fig8cResult, error) {
	if len(cfg.OvercommitLevels) == 0 {
		cfg.OvercommitLevels = []float64{1.1, 1.3, 1.5, 1.6, 1.7, 1.9, 2.1}
	}
	if cfg.TraceCount == 0 {
		cfg.TraceCount = 4000
	}
	if cfg.MeanInterarrival == 0 {
		cfg.MeanInterarrival = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	res := Fig8cResult{
		Deflation:   series{Name: "Deflation"},
		PreemptOnly: series{Name: "Preemption-only"},
	}
	modes := []cluster.Mode{cluster.ModeDeflation, cluster.ModePreemptionOnly}
	var cells []sweep.Cell[cluster.SimResult]
	for _, oc := range cfg.OvercommitLevels {
		res.OvercommitPct = append(res.OvercommitPct, (oc-1)*100)
		for _, mode := range modes {
			cells = append(cells, simCell("fig8c", cluster.SimConfig{
				Mode:             mode,
				TargetOvercommit: oc,
				Seed:             cfg.Seed,
				Servers:          cfg.Servers,
				Trace: trace.Config{
					Count:            cfg.TraceCount,
					MeanInterarrival: cfg.MeanInterarrival,
					LifetimeMedian:   cfg.LifetimeMedian,
				},
			}))
		}
	}
	sims, err := runCells("fig8c", cells)
	if err != nil {
		return res, err
	}
	for i := range cfg.OvercommitLevels {
		res.Deflation.Values = append(res.Deflation.Values, sims[i*len(modes)].PreemptionProbability)
		res.PreemptOnly.Values = append(res.PreemptOnly.Values, sims[i*len(modes)+1].PreemptionProbability)
	}
	return res, nil
}

// Fig8cXLConfig sizes the Figure 8c-xl scale sweep; the zero value is the
// full 100/1k/10k-node experiment (the ROADMAP's million-VM-arrival cell).
type Fig8cXLConfig struct {
	// FleetSizes are the x-axis points (default 100, 1000, 10000 servers).
	FleetSizes []int
	// TraceCount is the number of VM arrivals per 100 servers (default
	// 10000). Each cell's trace scales linearly with its fleet — the
	// 10k-node cell of the full sweep runs 1M arrivals, the ROADMAP's
	// million-VM-arrival target — so per-server offered load is identical
	// across the sweep.
	TraceCount int
	// MeanInterarrival is the arrival spacing at the 100-server reference
	// point (default 2s), scaled inversely with fleet size so larger fleets
	// see proportionally faster arrivals at the same per-server rate.
	MeanInterarrival time.Duration
	// LifetimeMedian is the VM lifetime median (default 1h, matching
	// Fig. 8c's offered load of ~18 concurrent VMs per server).
	LifetimeMedian time.Duration
	// SampleEvery thins the O(servers·VMs) state sampling at the
	// 100-server reference point (default 25); each cell's stride scales
	// with its fleet so every cell records the same number of samples —
	// without that, sampling alone is quadratic in fleet size and
	// dominates the 10k-node cell many times over.
	SampleEvery int
	Seed        int64
}

// QuickFig8cXLConfig returns a reduced sweep — 100- and 1k-node cells with
// a shorter trace — sized so the 1k-node cell finishes in seconds.
func QuickFig8cXLConfig() Fig8cXLConfig {
	return Fig8cXLConfig{
		FleetSizes:       []int{100, 1000},
		TraceCount:       4000,
		MeanInterarrival: 500 * time.Millisecond,
		LifetimeMedian:   10 * time.Minute,
		SampleEvery:      50,
	}
}

// Fig8cXLResult extends Figure 8c along the fleet-size axis: preemption
// probability for deflation vs the preemption-only baseline at 1.6× target
// overcommit, plus the achieved overcommit under deflation, on fleets from
// 100 to 10k nodes. Constant per-server offered load means the y-values
// should be roughly scale-invariant; the figure's real payload is that the
// calendar-queue engine and indexed placement keep wall-clock near-linear
// in trace length (see EXPERIMENTS.md for the recorded scaling table).
type Fig8cXLResult struct {
	FleetSizes  []float64
	Deflation   series // preemption probability, deflation mode
	PreemptOnly series // preemption probability, preemption-only baseline
	AchievedOC  series // achieved overcommit, deflation mode
}

// Table renders the figure.
func (r Fig8cXLResult) Table() string {
	return renderTable("Figure 8c-xl: preemption probability vs fleet size (target overcommit 1.6)",
		"nodes", r.FleetSizes, []series{r.Deflation, r.PreemptOnly, r.AchievedOC})
}

// Fig8cXL runs the scale sweep.
func Fig8cXL(cfg Fig8cXLConfig) (Fig8cXLResult, error) {
	if len(cfg.FleetSizes) == 0 {
		cfg.FleetSizes = []int{100, 1000, 10000}
	}
	if cfg.TraceCount == 0 {
		cfg.TraceCount = 10000
	}
	if cfg.MeanInterarrival == 0 {
		cfg.MeanInterarrival = 2 * time.Second
	}
	if cfg.LifetimeMedian == 0 {
		cfg.LifetimeMedian = time.Hour
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 25
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	res := Fig8cXLResult{
		Deflation:   series{Name: "Deflation"},
		PreemptOnly: series{Name: "Preemption-only"},
		AchievedOC:  series{Name: "Achieved OC"},
	}
	modes := []cluster.Mode{cluster.ModeDeflation, cluster.ModePreemptionOnly}
	var cells []sweep.Cell[cluster.SimResult]
	for _, n := range cfg.FleetSizes {
		res.FleetSizes = append(res.FleetSizes, float64(n))
		scale := float64(n) / 100
		for _, mode := range modes {
			cells = append(cells, simCell("fig8c-xl", cluster.SimConfig{
				Mode:             mode,
				TargetOvercommit: 1.6,
				Seed:             cfg.Seed,
				Servers:          n,
				SampleEvery:      int(float64(cfg.SampleEvery) * scale),
				Trace: trace.Config{
					Count:            int(float64(cfg.TraceCount) * scale),
					MeanInterarrival: time.Duration(float64(cfg.MeanInterarrival) / scale),
					LifetimeMedian:   cfg.LifetimeMedian,
				},
			}))
		}
	}
	sims, err := runCells("fig8c-xl", cells)
	if err != nil {
		return res, err
	}
	for i := range cfg.FleetSizes {
		defl, pre := sims[i*len(modes)], sims[i*len(modes)+1]
		res.Deflation.Values = append(res.Deflation.Values, defl.PreemptionProbability)
		res.PreemptOnly.Values = append(res.PreemptOnly.Values, pre.PreemptionProbability)
		res.AchievedOC.Values = append(res.AchievedOC.Values, defl.AchievedOvercommit)
	}
	return res, nil
}

// Fig8dResult reproduces Figure 8d: per-server overcommitment under the
// three placement policies; deflation masks the differences between them.
type Fig8dResult struct {
	Policies []string
	Mean     []float64
	P95      []float64
}

// Table renders the figure.
func (r Fig8dResult) Table() string {
	xs := make([]float64, len(r.Policies))
	for i := range xs {
		xs[i] = float64(i)
	}
	out := "# Figure 8d: server overcommitment by placement policy\n"
	out += fmt.Sprintf("%-12s %12s %12s\n", "policy", "mean", "p95")
	for i, p := range r.Policies {
		out += fmt.Sprintf("%-12s %12.3f %12.3f\n", p, r.Mean[i], r.P95[i])
	}
	return out
}

// Fig8d runs the placement-policy comparison at 1.6× target overcommit.
// quick shortens the trace while keeping the cluster saturated.
func Fig8d(quick bool, seed int64) (Fig8dResult, error) {
	if seed == 0 {
		seed = 42
	}
	tr := trace.Config{Count: 4000, MeanInterarrival: 2 * time.Second}
	servers := 0
	if quick {
		tr = trace.Config{Count: 2500, MeanInterarrival: 2 * time.Second, LifetimeMedian: 10 * time.Minute}
		servers = 25
	}
	var res Fig8dResult
	policies := []cluster.PlacementPolicy{cluster.BestFit, cluster.FirstFit, cluster.TwoChoices}
	var cells []sweep.Cell[cluster.SimResult]
	for _, p := range policies {
		cells = append(cells, simCell("fig8d", cluster.SimConfig{
			Policy:           p,
			Mode:             cluster.ModeDeflation,
			TargetOvercommit: 1.6,
			Seed:             seed,
			Servers:          servers,
			Trace:            tr,
		}))
	}
	sims, err := runCells("fig8d", cells)
	if err != nil {
		return res, err
	}
	for i, p := range policies {
		res.Policies = append(res.Policies, p.String())
		res.Mean = append(res.Mean, sims[i].ServerOvercommitMean)
		res.P95 = append(res.P95, sims[i].ServerOvercommitP95)
	}
	return res, nil
}
