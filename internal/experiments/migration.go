package experiments

import (
	"time"

	"deflation/internal/cluster"
	"deflation/internal/migration"
	"deflation/internal/sweep"
	"deflation/internal/trace"
)

// FigMigrationConfig sizes the migration-vs-deflation experiment: the
// Fig. 8c trace-driven cluster simulation swept over overcommitment under
// four reclamation policies — preemption-only, migration-only (live-migrate
// victims instead of killing them), deflation (the paper's mechanism), and
// deflate-then-migrate (shrink the victim first so it moves cheaply). The
// zero value is the full experiment.
type FigMigrationConfig struct {
	// OvercommitLevels are the x-axis points (default 1.1–2.1).
	OvercommitLevels []float64
	// Migration parameterizes the live-migration model (zero = defaults:
	// dedicated 10 GbE link, 300 ms downtime target).
	Migration migration.Model
	// TraceCount, MeanInterarrival, LifetimeMedian, and Servers mirror
	// Fig8cConfig (defaults 4000, 2s, 1h, 100).
	TraceCount       int
	MeanInterarrival time.Duration
	LifetimeMedian   time.Duration
	Servers          int
	Seed             int64
}

// QuickFigMigrationConfig returns a reduced sweep that still saturates the
// cluster, mirroring QuickFig8cConfig.
func QuickFigMigrationConfig() FigMigrationConfig {
	return FigMigrationConfig{
		OvercommitLevels: []float64{1.5, 1.8},
		TraceCount:       2500,
		MeanInterarrival: 2 * time.Second,
		LifetimeMedian:   10 * time.Minute,
		Servers:          25,
	}
}

// migrationPolicies are the experiment's four reclamation strategies.
// Preempt-only and Deflation are exactly the two Fig. 8c curves (the zero
// ReclaimPreempt policy takes the pre-migration code path bit for bit);
// the other two substitute live migration for preemption.
var migrationPolicies = []struct {
	Name    string
	Mode    cluster.Mode
	Reclaim cluster.ReclaimPolicy
}{
	{"Preempt-only", cluster.ModePreemptionOnly, cluster.ReclaimPreempt},
	{"Migration-only", cluster.ModePreemptionOnly, cluster.ReclaimMigrationOnly},
	{"Deflation", cluster.ModeDeflation, cluster.ReclaimPreempt},
	{"Deflate+migrate", cluster.ModeDeflation, cluster.ReclaimDeflateThenMigrate},
}

// FigMigrationResult reports the sweep, one series per policy across
// overcommitment levels: preemption probability (Fig. 8c's metric), cluster
// goodput, migrations completed, gigabytes moved, and total stop-and-copy
// downtime.
type FigMigrationResult struct {
	OvercommitPct []float64
	Preemption    []series
	Goodput       []series
	Migrations    []series
	MovedGB       []series
	DowntimeSec   []series
}

// Table renders the sweep.
func (r FigMigrationResult) Table() string {
	return renderTable("Migration vs deflation: preemption probability vs overcommitment",
		"overcommit%", r.OvercommitPct, r.Preemption) +
		renderTable("Migration vs deflation: cluster goodput (aggregate normalized throughput)",
			"overcommit%", r.OvercommitPct, r.Goodput) +
		renderTable("Migration vs deflation: live migrations completed",
			"overcommit%", r.OvercommitPct, r.Migrations) +
		renderTable("Migration vs deflation: data moved (GB)",
			"overcommit%", r.OvercommitPct, r.MovedGB) +
		renderTable("Migration vs deflation: total stop-and-copy downtime (s)",
			"overcommit%", r.OvercommitPct, r.DowntimeSec)
}

// FigMigration runs the four-policy sweep.
func FigMigration(cfg FigMigrationConfig) (FigMigrationResult, error) {
	if len(cfg.OvercommitLevels) == 0 {
		cfg.OvercommitLevels = []float64{1.1, 1.3, 1.5, 1.6, 1.7, 1.9, 2.1}
	}
	if cfg.TraceCount == 0 {
		cfg.TraceCount = 4000
	}
	if cfg.MeanInterarrival == 0 {
		cfg.MeanInterarrival = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	var res FigMigrationResult
	for _, oc := range cfg.OvercommitLevels {
		res.OvercommitPct = append(res.OvercommitPct, (oc-1)*100)
	}
	var cells []sweep.Cell[cluster.SimResult]
	for _, pol := range migrationPolicies {
		for _, oc := range cfg.OvercommitLevels {
			cells = append(cells, simCell("migration", cluster.SimConfig{
				Mode:             pol.Mode,
				Reclaim:          pol.Reclaim,
				Migration:        cfg.Migration,
				TargetOvercommit: oc,
				Seed:             cfg.Seed,
				Servers:          cfg.Servers,
				Trace: trace.Config{
					Count:            cfg.TraceCount,
					MeanInterarrival: cfg.MeanInterarrival,
					LifetimeMedian:   cfg.LifetimeMedian,
				},
			}))
		}
	}
	sims, err := runCells("migration", cells)
	if err != nil {
		return res, err
	}
	for pi, pol := range migrationPolicies {
		pp := series{Name: pol.Name}
		gp := series{Name: pol.Name}
		mg := series{Name: pol.Name}
		mv := series{Name: pol.Name}
		dt := series{Name: pol.Name}
		for oi := range cfg.OvercommitLevels {
			sim := sims[pi*len(cfg.OvercommitLevels)+oi]
			pp.Values = append(pp.Values, sim.PreemptionProbability)
			gp.Values = append(gp.Values, sim.Goodput)
			mg.Values = append(mg.Values, float64(sim.Migrations))
			mv.Values = append(mv.Values, sim.MigratedMB/1024)
			dt.Values = append(dt.Values, sim.MigrationDowntime.Seconds())
		}
		res.Preemption = append(res.Preemption, pp)
		res.Goodput = append(res.Goodput, gp)
		res.Migrations = append(res.Migrations, mg)
		res.MovedGB = append(res.MovedGB, mv)
		res.DowntimeSec = append(res.DowntimeSec, dt)
	}
	return res, nil
}
