package experiments

import (
	"strconv"
	"time"

	"deflation/internal/cluster"
	"deflation/internal/faults"
	"deflation/internal/sweep"
	"deflation/internal/trace"
)

// ChaosConfig sizes the chaos experiment: the Fig. 8c trace-driven cluster
// simulation swept over node-failure rate × overcommitment, under deflation
// mode with the fault-tolerant control plane (heartbeat failure detection,
// eviction and re-placement). The zero value is the full experiment.
type ChaosConfig struct {
	// FaultRates are the x-axis cells in crashes per node per day
	// (CrashMTBF = 24h / rate; 0 disables injection entirely, so that row
	// is exactly the Fig. 8c deflation baseline).
	FaultRates []float64
	// Overcommits are the target overcommitment ratios swept per rate
	// (default 1.1–1.9).
	Overcommits []float64
	// CascadeFaultProb is the probability, applied whenever the fault rate
	// is nonzero, of each cascade-level fault: agent failure, agent hang,
	// and partial hot-unplug failure (default 0.02).
	CascadeFaultProb float64
	// RecoveryTime is how long a crashed node stays down (default 5m).
	RecoveryTime time.Duration
	// ManagerMTBF is the mean time between manager crash-restart cycles,
	// applied whenever the node-fault rate is nonzero: each crash loses the
	// manager's memory and recovers it from the write-ahead journal
	// mid-simulation (default 1h; zero-rate rows never crash the manager,
	// keeping the baseline cell exact).
	ManagerMTBF time.Duration
	// TraceCount, MeanInterarrival, LifetimeMedian, and Servers mirror
	// Fig8cConfig (defaults 4000, 2s, 1h, 100).
	TraceCount       int
	MeanInterarrival time.Duration
	LifetimeMedian   time.Duration
	Servers          int
	Seed             int64
}

// QuickChaosConfig returns a reduced sweep that still crashes nodes often
// enough to exercise detection and re-placement.
func QuickChaosConfig() ChaosConfig {
	return ChaosConfig{
		FaultRates:       []float64{0, 8, 32},
		Overcommits:      []float64{1.5, 1.8},
		RecoveryTime:     2 * time.Minute,
		ManagerMTBF:      30 * time.Minute,
		TraceCount:       2500,
		MeanInterarrival: 2 * time.Second,
		LifetimeMedian:   10 * time.Minute,
		Servers:          25,
	}
}

// ChaosResult reports the sweep: preemption probability (capacity plus
// failure-induced, Fig. 8c's metric extended to failures) and cluster
// goodput, one series per fault rate across overcommitment levels.
type ChaosResult struct {
	OvercommitPct []float64
	Preemption    []series
	Goodput       []series
	Crashes       []series
}

// Table renders the sweep.
func (r ChaosResult) Table() string {
	return renderTable("Chaos: preemption probability vs overcommitment by node-failure rate",
		"overcommit%", r.OvercommitPct, r.Preemption) +
		renderTable("Chaos: cluster goodput (aggregate normalized throughput)",
			"overcommit%", r.OvercommitPct, r.Goodput) +
		renderTable("Chaos: node crashes injected",
			"overcommit%", r.OvercommitPct, r.Crashes)
}

// chaosFaults builds the injection config for one fault-rate cell. Rate 0
// returns the zero Config: injection fully disabled, baseline code path.
func chaosFaults(cfg ChaosConfig, rate float64) faults.Config {
	if rate <= 0 {
		return faults.Config{}
	}
	return faults.Config{
		CrashMTBF:        time.Duration(float64(24*time.Hour) / rate),
		RecoveryTime:     cfg.RecoveryTime,
		ManagerCrashMTBF: cfg.ManagerMTBF,
		AgentFailProb:    cfg.CascadeFaultProb,
		AgentHangProb:    cfg.CascadeFaultProb,
		OSFailProb:       cfg.CascadeFaultProb,
	}
}

// Chaos runs the fault-rate × overcommitment sweep.
func Chaos(cfg ChaosConfig) (ChaosResult, error) {
	if len(cfg.FaultRates) == 0 {
		cfg.FaultRates = []float64{0, 1, 4, 16}
	}
	if len(cfg.Overcommits) == 0 {
		cfg.Overcommits = []float64{1.1, 1.3, 1.5, 1.7, 1.9}
	}
	if cfg.CascadeFaultProb == 0 {
		cfg.CascadeFaultProb = 0.02
	}
	if cfg.ManagerMTBF == 0 {
		cfg.ManagerMTBF = time.Hour
	}
	if cfg.TraceCount == 0 {
		cfg.TraceCount = 4000
	}
	if cfg.MeanInterarrival == 0 {
		cfg.MeanInterarrival = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	var res ChaosResult
	for _, oc := range cfg.Overcommits {
		res.OvercommitPct = append(res.OvercommitPct, (oc-1)*100)
	}
	var cells []sweep.Cell[cluster.SimResult]
	for _, rate := range cfg.FaultRates {
		for _, oc := range cfg.Overcommits {
			cells = append(cells, simCell("chaos", cluster.SimConfig{
				Mode:             cluster.ModeDeflation,
				TargetOvercommit: oc,
				Seed:             cfg.Seed,
				Servers:          cfg.Servers,
				Trace: trace.Config{
					Count:            cfg.TraceCount,
					MeanInterarrival: cfg.MeanInterarrival,
					LifetimeMedian:   cfg.LifetimeMedian,
				},
				Faults: chaosFaults(cfg, rate),
			}))
		}
	}
	sims, err := runCells("chaos", cells)
	if err != nil {
		return res, err
	}
	for ri, rate := range cfg.FaultRates {
		pp := series{Name: rateName(rate)}
		gp := series{Name: rateName(rate)}
		cr := series{Name: rateName(rate)}
		for oi := range cfg.Overcommits {
			sim := sims[ri*len(cfg.Overcommits)+oi]
			pp.Values = append(pp.Values, sim.PreemptionProbability)
			gp.Values = append(gp.Values, sim.Goodput)
			cr.Values = append(cr.Values, float64(sim.NodeCrashes))
		}
		res.Preemption = append(res.Preemption, pp)
		res.Goodput = append(res.Goodput, gp)
		res.Crashes = append(res.Crashes, cr)
	}
	return res, nil
}

func rateName(rate float64) string {
	if rate <= 0 {
		return "no faults"
	}
	return strconv.FormatFloat(rate, 'g', -1, 64) + "/node/day"
}
