package experiments

import (
	"time"

	"deflation/internal/cluster"
	"deflation/internal/faults"
	"deflation/internal/sweep"
	"deflation/internal/trace"
)

// FailoverConfig sizes the manager-HA chaos experiment: the Fig. 8c
// trace-driven deflation cluster run with a hot standby, swept over
// overcommitment under four control-plane fault regimes — leader crashes,
// network partitions of the leader, journal disk faults, and all three at
// once — against the zero-fault baseline. The claim under test is that
// failover is invisible to healthy workloads: the standby adopts the
// cluster without evicting a single running VM, and a deposed leader's
// commands are fenced off by the promotion epoch. The zero value is the
// full experiment.
type FailoverConfig struct {
	// Overcommits are the target overcommitment ratios swept per scenario
	// (default 1.1–1.9).
	Overcommits []float64
	// LeaseTimeout is the leadership lease; the cluster runs headless for
	// at most this long after a leader failure before the standby adopts
	// (default 1m).
	LeaseTimeout time.Duration
	// ManagerMTBF is the mean time between leader crashes in the crash and
	// combined scenarios (default 20m).
	ManagerMTBF time.Duration
	// PartitionMTBF and PartitionDuration shape leader partitions in the
	// partition and combined scenarios (defaults 30m, 3m).
	PartitionMTBF     time.Duration
	PartitionDuration time.Duration
	// DiskFailProb is the per-operation journal fault probability in the
	// disk and combined scenarios (default 0.0005).
	DiskFailProb float64
	// TraceCount, MeanInterarrival, LifetimeMedian, and Servers mirror
	// Fig8cConfig (defaults 4000, 2s, 1h, 100).
	TraceCount       int
	MeanInterarrival time.Duration
	LifetimeMedian   time.Duration
	Servers          int
	Seed             int64
}

// QuickFailoverConfig returns a reduced sweep that still fails the leader
// over several times per run.
func QuickFailoverConfig() FailoverConfig {
	return FailoverConfig{
		Overcommits:       []float64{1.5, 1.8},
		LeaseTimeout:      30 * time.Second,
		ManagerMTBF:       5 * time.Minute,
		PartitionMTBF:     10 * time.Minute,
		PartitionDuration: 2 * time.Minute,
		DiskFailProb:      0.002,
		TraceCount:        2500,
		MeanInterarrival:  2 * time.Second,
		LifetimeMedian:    10 * time.Minute,
		Servers:           25,
	}
}

// FailoverResult reports the sweep, one series per fault scenario across
// overcommitment levels. HealthyEvictions is the headline number: VMs that
// were alive on reachable nodes but lost during a takeover — the paper's
// availability claim requires every cell to be zero.
type FailoverResult struct {
	OvercommitPct    []float64
	Preemption       []series
	Goodput          []series
	Failovers        []series
	HealthyEvictions []series
	StaleRejected    []series
}

// Table renders the sweep.
func (r FailoverResult) Table() string {
	return renderTable("Failover: preemption probability vs overcommitment by control-plane fault regime",
		"overcommit%", r.OvercommitPct, r.Preemption) +
		renderTable("Failover: cluster goodput (aggregate normalized throughput)",
			"overcommit%", r.OvercommitPct, r.Goodput) +
		renderTable("Failover: standby takeovers",
			"overcommit%", r.OvercommitPct, r.Failovers) +
		renderTable("Failover: healthy VMs evicted by takeovers (must be zero)",
			"overcommit%", r.OvercommitPct, r.HealthyEvictions) +
		renderTable("Failover: stale-epoch commands fenced off",
			"overcommit%", r.OvercommitPct, r.StaleRejected)
}

// failoverScenario names one fault regime of the sweep.
type failoverScenario struct {
	Name   string
	Faults faults.Config
}

// failoverScenarios builds the sweep's fault regimes. The zero-fault row
// carries a zero faults.Config so injection is fully disabled and the cell
// is exactly the Fig. 8c deflation baseline, HA standby and all.
func failoverScenarios(cfg FailoverConfig) []failoverScenario {
	return []failoverScenario{
		{Name: "no faults"},
		{Name: "leader crashes", Faults: faults.Config{
			ManagerCrashMTBF: cfg.ManagerMTBF,
		}},
		{Name: "partitions", Faults: faults.Config{
			PartitionMTBF:     cfg.PartitionMTBF,
			PartitionDuration: cfg.PartitionDuration,
		}},
		{Name: "disk faults", Faults: faults.Config{
			DiskFailProb: cfg.DiskFailProb,
		}},
		{Name: "full chaos", Faults: faults.Config{
			ManagerCrashMTBF:  cfg.ManagerMTBF,
			PartitionMTBF:     cfg.PartitionMTBF,
			PartitionDuration: cfg.PartitionDuration,
			DiskFailProb:      cfg.DiskFailProb,
		}},
	}
}

// Failover runs the fault-regime × overcommitment sweep.
func Failover(cfg FailoverConfig) (FailoverResult, error) {
	if len(cfg.Overcommits) == 0 {
		cfg.Overcommits = []float64{1.1, 1.3, 1.5, 1.7, 1.9}
	}
	if cfg.LeaseTimeout == 0 {
		cfg.LeaseTimeout = time.Minute
	}
	if cfg.ManagerMTBF == 0 {
		cfg.ManagerMTBF = 20 * time.Minute
	}
	if cfg.PartitionMTBF == 0 {
		cfg.PartitionMTBF = 30 * time.Minute
	}
	if cfg.PartitionDuration == 0 {
		cfg.PartitionDuration = 3 * time.Minute
	}
	if cfg.DiskFailProb == 0 {
		cfg.DiskFailProb = 0.0005
	}
	if cfg.TraceCount == 0 {
		cfg.TraceCount = 4000
	}
	if cfg.MeanInterarrival == 0 {
		cfg.MeanInterarrival = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	scenarios := failoverScenarios(cfg)
	var res FailoverResult
	for _, oc := range cfg.Overcommits {
		res.OvercommitPct = append(res.OvercommitPct, (oc-1)*100)
	}
	var cells []sweep.Cell[cluster.SimResult]
	for _, sc := range scenarios {
		for _, oc := range cfg.Overcommits {
			cells = append(cells, simCell("failover", cluster.SimConfig{
				Mode:             cluster.ModeDeflation,
				TargetOvercommit: oc,
				Seed:             cfg.Seed,
				Servers:          cfg.Servers,
				HAStandby:        true,
				LeaseTimeout:     cfg.LeaseTimeout,
				Trace: trace.Config{
					Count:            cfg.TraceCount,
					MeanInterarrival: cfg.MeanInterarrival,
					LifetimeMedian:   cfg.LifetimeMedian,
				},
				Faults: sc.Faults,
			}))
		}
	}
	sims, err := runCells("failover", cells)
	if err != nil {
		return res, err
	}
	for si, sc := range scenarios {
		pp := series{Name: sc.Name}
		gp := series{Name: sc.Name}
		fo := series{Name: sc.Name}
		ev := series{Name: sc.Name}
		st := series{Name: sc.Name}
		for oi := range cfg.Overcommits {
			sim := sims[si*len(cfg.Overcommits)+oi]
			pp.Values = append(pp.Values, sim.PreemptionProbability)
			gp.Values = append(gp.Values, sim.Goodput)
			fo.Values = append(fo.Values, float64(sim.Failovers))
			ev.Values = append(ev.Values, float64(sim.FailoverEvictions))
			st.Values = append(st.Values, float64(sim.StaleCommandsRejected))
		}
		res.Preemption = append(res.Preemption, pp)
		res.Goodput = append(res.Goodput, gp)
		res.Failovers = append(res.Failovers, fo)
		res.HealthyEvictions = append(res.HealthyEvictions, ev)
		res.StaleRejected = append(res.StaleRejected, st)
	}
	return res, nil
}
