package experiments

import (
	"context"
	"time"

	"deflation/internal/metrics"
	"deflation/internal/spark"
	"deflation/internal/spark/workloads"
	"deflation/internal/sweep"
)

// Fig7aResult reproduces Figure 7a: ALS normalized running time when 50%
// deflation arrives at different points of job progress, for self-deflation
// and VM-level deflation. Early in the job self wins (little to recompute);
// a crossover follows, and both overheads trend down as less of the job
// remains to run deflated.
type Fig7aResult struct {
	ProgressPct []float64
	Series      []series // Self / VM-level
}

// Table renders the figure.
func (r Fig7aResult) Table() string {
	return renderTable("Figure 7a: ALS deflated at different progress points (d=0.5)",
		"progress%", r.ProgressPct, r.Series)
}

// Fig7a runs the progress sweep: the shared baseline first, then one sweep
// cell per (mechanism, progress) point, each running its own ALS job.
func Fig7a() (Fig7aResult, error) {
	res := Fig7aResult{ProgressPct: []float64{20, 30, 40, 50, 60, 70}}
	base, err := runBatch(workloads.ALS, nil)
	if err != nil {
		return res, err
	}
	mechs := []spark.PressureMechanism{spark.PressureSelf, spark.PressureVMLevel}
	vals, err := sweepGrid("fig7a", len(mechs), len(res.ProgressPct), func(si, xi int) (float64, error) {
		run, err := runBatch(workloads.ALS, &spark.PressureSpec{
			AtProgress: res.ProgressPct[xi] / 100,
			Deflation:  jitteredDeflation(8, 0.5),
			Mechanism:  mechs[si],
		})
		if err != nil {
			return 0, err
		}
		return run / base, nil
	})
	if err != nil {
		return res, err
	}
	for si, m := range mechs {
		res.Series = append(res.Series, series{Name: m.String(), Values: vals[si]})
	}
	return res, nil
}

// Fig7bResult reproduces Figure 7b: CNN training throughput over an
// 80-minute window with transient resource pressure between minutes 10 and
// 40, for three deployments: baseline (no pressure, no checkpointing),
// deflation (VM-level, no checkpointing), and preemption (checkpointing
// always on; workers revoked during pressure).
type Fig7bResult struct {
	Baseline, Deflation, Preemption *metrics.TimeSeries
}

// Table renders all three timelines.
func (r Fig7bResult) Table() string {
	return r.Baseline.Table() + r.Deflation.Table() + r.Preemption.Table()
}

// fig7bJob builds a CNN job long enough to span the 80-minute window.
func fig7bJob(ckpt bool) *spark.TrainingJob {
	j := workloads.CNN(ckpt)
	j.Iterations = 400 // 400 × 30 s = 200 min of work; window shows 80 min
	return j
}

// Fig7b produces the three throughput timelines. Each deployment is one
// sweep cell running its own training job start to finish; the timelines
// within a cell stay strictly sequential (virtual time), so the merged
// result is identical at any parallelism.
func Fig7b() (Fig7bResult, error) {
	const (
		pressureStart = 10 * time.Minute
		pressureEnd   = 40 * time.Minute
		window        = 80 * time.Minute
		deflation     = 0.5
	)

	record := func(ts *metrics.TimeSeries, run *spark.TrainingRun) error {
		return ts.Add(time.Duration(run.ElapsedSecs()*float64(time.Second)), run.Throughput())
	}

	baselineCell := func(context.Context) (*metrics.TimeSeries, error) {
		// Baseline: untouched, no checkpointing.
		ts := metrics.NewTimeSeries("baseline records/s")
		base, err := spark.NewTrainingRun(fig7bJob(false))
		if err != nil {
			return ts, err
		}
		for base.ElapsedSecs() < window.Seconds() && !base.Done() {
			if err := base.Step(); err != nil {
				return ts, err
			}
			if err := record(ts, base); err != nil {
				return ts, err
			}
		}
		return ts, nil
	}

	deflationCell := func(context.Context) (*metrics.TimeSeries, error) {
		// Deflation: all workers deflated 50% during the pressure window;
		// the job keeps running throughout.
		ts := metrics.NewTimeSeries("deflation records/s")
		defl, err := spark.NewTrainingRun(fig7bJob(false))
		if err != nil {
			return ts, err
		}
		phase := 0 // 0 = before pressure, 1 = deflated, 2 = restored
		for defl.ElapsedSecs() < window.Seconds() && !defl.Done() {
			el := time.Duration(defl.ElapsedSecs() * float64(time.Second))
			if phase == 0 && el >= pressureStart {
				phase = 1
				for i := 0; i < 8; i++ {
					if err := defl.SetWorkerSpeed(i, 1-deflation); err != nil {
						return ts, err
					}
				}
			}
			if phase == 1 && el >= pressureEnd {
				phase = 2
				for i := 0; i < 8; i++ {
					if err := defl.SetWorkerSpeed(i, 1); err != nil {
						return ts, err
					}
				}
			}
			if err := defl.Step(); err != nil {
				return ts, err
			}
			if err := record(ts, defl); err != nil {
				return ts, err
			}
		}
		return ts, nil
	}

	preemptionCell := func(context.Context) (*metrics.TimeSeries, error) {
		// Preemption: checkpointing always on; half the workers revoked at
		// the pressure start (throughput gap during restart), revived at
		// the end.
		ts := metrics.NewTimeSeries("preemption records/s")
		pre, err := spark.NewTrainingRun(fig7bJob(true))
		if err != nil {
			return ts, err
		}
		prePhase := 0 // 0 = before pressure, 1 = revoked, 2 = revived
		for pre.ElapsedSecs() < window.Seconds() && !pre.Done() {
			el := time.Duration(pre.ElapsedSecs() * float64(time.Second))
			if prePhase == 0 && el >= pressureStart {
				prePhase = 1
				if err := record(ts, pre); err != nil { // last point before the gap
					return ts, err
				}
				if err := pre.KillWorkers(4); err != nil {
					return ts, err
				}
				// The restart gap: zero throughput while the job resubmits.
				if err := ts.Add(el, 0); err != nil {
					return ts, err
				}
			}
			if prePhase == 1 && el >= pressureEnd {
				prePhase = 2
				if err := pre.ReviveWorkers(4); err != nil {
					return ts, err
				}
			}
			if err := pre.Step(); err != nil {
				return ts, err
			}
			if err := record(ts, pre); err != nil {
				return ts, err
			}
		}
		return ts, nil
	}

	timelines, err := runCells("fig7b", []sweep.Cell[*metrics.TimeSeries]{
		{Run: baselineCell}, {Run: deflationCell}, {Run: preemptionCell},
	})
	res := Fig7bResult{}
	if len(timelines) == 3 {
		res.Baseline, res.Deflation, res.Preemption = timelines[0], timelines[1], timelines[2]
	}
	return res, err
}
