package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"deflation/internal/apps/curveapp"
	"deflation/internal/apps/webapp"
	"deflation/internal/cascade"
	"deflation/internal/guestos"
	"deflation/internal/hypervisor"
	"deflation/internal/interactive"
	"deflation/internal/restypes"
	"deflation/internal/simcg"
	"deflation/internal/spark"
	"deflation/internal/substrate"
	"deflation/internal/sweep"
	"deflation/internal/vm"
)

// FigMixed compares the deflation mechanism across substrates: VM-only
// fleets (KVM domains with balloon/hotplug reclamation), container-only
// fleets (cgroup limit writes), and a mixed fleet alternating between the
// two, swept across deflation fraction × workload mix.
//
// Two effects separate the substrates:
//
//   - resize granularity and latency: the hypervisor path quantizes CPU
//     reclamation to whole vCPUs and pays lock-holder preemption when
//     vCPUs outnumber physical cores, so an interactive tier violates its
//     p99 SLO at a shallower requested deflation than the same tier on
//     containers, where a cgroup write applies the exact fractional quota
//     in ~2 ms;
//   - the memory failure mode: VMs absorb memory overcommitment in swap,
//     while a container whose memory.max undershoots its live resident
//     set is OOM-killed. The aggressive panel drives a blind resize past
//     the substrate floor to surface exactly this asymmetry.

// Fleet kinds for the substrate axis.
const (
	fleetVM        = "vm"
	fleetContainer = "container"
	fleetMixed     = "mixed"
)

// Workload mixes for the mix axis.
const (
	mixWeb      = "web"
	mixWebBatch = "web+batch"
)

// FigMixedConfig sizes the sweep; the zero value is the full experiment.
type FigMixedConfig struct {
	// RPSPerReplica is offered load per web replica (default 500 against
	// the webapp's 1600-rps replicas — enough headroom that the frontier
	// lands where vCPU quantization and LHP separate the substrates).
	RPSPerReplica float64
	// Replicas is the web fleet size (default 2); web+batch adds the same
	// number of batch VMs.
	Replicas int
	// Mixes is the workload-mix axis (default {web, web+batch}).
	Mixes []string
	// DeflationFractions is the x-axis: the fraction of each VM's CPU
	// requested back through the cascade (default 0–0.625 in fine steps
	// around the hypervisor quantization boundaries).
	DeflationFractions []float64
	// AggressiveFraction drives the blind-resize panel: every instance is
	// resized straight to size×(1−fraction) with no cascade and no floor
	// check (default 0.9375, far below the container resize floor).
	AggressiveFraction float64
	// WarmupTicks run before the deflation event (default 40).
	WarmupTicks int
	// MeasureTicks is the post-deflation measurement window (default 240).
	MeasureTicks int
	// SLOP99MS is the latency SLO (default 50 ms).
	SLOP99MS float64
	Seed     int64
}

func (c FigMixedConfig) withDefaults() FigMixedConfig {
	if c.RPSPerReplica == 0 {
		c.RPSPerReplica = 500
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if len(c.Mixes) == 0 {
		c.Mixes = []string{mixWeb, mixWebBatch}
	}
	if len(c.DeflationFractions) == 0 {
		c.DeflationFractions = []float64{0, 0.125, 0.25, 0.3125, 0.375, 0.4375, 0.5, 0.5625, 0.625}
	}
	if c.AggressiveFraction == 0 {
		c.AggressiveFraction = 0.9375
	}
	if c.WarmupTicks == 0 {
		c.WarmupTicks = 40
	}
	if c.MeasureTicks == 0 {
		c.MeasureTicks = 240
	}
	if c.SLOP99MS == 0 {
		c.SLOP99MS = 50
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// QuickFigMixedConfig returns a reduced sweep for smoke tests: one mix,
// four deflation fractions, short windows.
func QuickFigMixedConfig() FigMixedConfig {
	return FigMixedConfig{
		Mixes:              []string{mixWeb},
		DeflationFractions: []float64{0, 0.25, 0.375, 0.4375},
		WarmupTicks:        20,
		MeasureTicks:       80,
	}
}

// mixedCell identifies one FigMixed sweep cell. It is JSON-serialized into
// the memoization key, so it must fully determine the run.
type mixedCell struct {
	Fleet         string // fleetVM | fleetContainer | fleetMixed
	Mix           string // mixWeb | mixWebBatch
	RPSPerReplica float64
	Replicas      int
	DeflateFrac   float64
	// Aggressive skips the cascade and blindly resizes every instance to
	// size×(1−DeflateFrac) — no floor check, no clamp.
	Aggressive   bool
	WarmupTicks  int
	MeasureTicks int
	SLOP99MS     float64
	Seed         int64
}

// mixedCellResult is one cell's measurement window summary.
type mixedCellResult struct {
	P99MS       float64
	SLOViolated bool
	Requests    float64 // modeled in the measurement window
	// ReclaimedCores is the CPU actually reclaimed per instance (web and
	// batch alike — the whole fleet sees the same request).
	ReclaimedCores float64
	// MeanResizeMS is the mean end-to-end reclamation latency per
	// instance: full cascade latency in the frontier panel (balloon +
	// hotplug on VMs, one cgroup write on containers), raw
	// Substrate.SetAllocation latency in the aggressive panel.
	MeanResizeMS float64
	// OOMKills counts instances whose post-resize limit undershot their
	// live resident set. Structurally zero on the hypervisor substrate
	// (swap absorbs the overcommit) and in the cascade path (the resize
	// floor clamps the target).
	OOMKills int
}

// onContainer reports whether instance i of the fleet runs on the cgroup
// substrate. The mixed fleet alternates, starting with a VM.
func (c mixedCell) onContainer(i int) bool {
	switch c.Fleet {
	case fleetContainer:
		return true
	case fleetMixed:
		return i%2 == 1
	default:
		return false
	}
}

// runMixedCell builds one self-owned fleet spanning up to two hosts (one
// per substrate), warms the service up, applies a single deflation event,
// and measures the service over the post-deflation window.
func runMixedCell(c mixedCell) (mixedCellResult, error) {
	var res mixedCellResult
	size := stdVMSize()
	total := c.Replicas
	if c.Mix == mixWebBatch {
		total += c.Replicas
	}
	capacity := size.Scale(float64(total) * 1.25)
	hypHost, err := hypervisor.NewHost(hypervisor.Config{Name: "mixed-kvm", Capacity: capacity})
	if err != nil {
		return res, err
	}
	cgHost, err := simcg.NewHost(simcg.Config{Name: "mixed-cg", Capacity: capacity})
	if err != nil {
		return res, err
	}
	newVM := func(i int, name string, app vm.Application) (*vm.VM, error) {
		if c.onContainer(i) {
			inst, err := cgHost.Spawn(name, size, guestos.Config{})
			if err != nil {
				return nil, err
			}
			return vm.NewOn(inst, app, vm.Config{})
		}
		dom, err := hypHost.CreateDomain(name, size, guestos.Config{})
		if err != nil {
			return nil, err
		}
		dom.MarkWarm()
		return vm.New(dom, app, vm.Config{})
	}

	apps := make([]*webapp.App, c.Replicas)
	fleet := make([]*vm.VM, 0, total)
	webVMs := make([]*vm.VM, c.Replicas)
	for i := range apps {
		a, err := webapp.NewApp(webapp.Config{})
		if err != nil {
			return res, err
		}
		v, err := newVM(i, fmt.Sprintf("web-%d", i), a)
		if err != nil {
			return res, err
		}
		apps[i], webVMs[i] = a, v
		fleet = append(fleet, v)
	}
	if c.Mix == mixWebBatch {
		for i := 0; i < c.Replicas; i++ {
			app := curveapp.New(curveapp.Config{
				Name: "spark-cnn", Curve: spark.CurveCNNTraining, Size: size,
				Elastic: true, RSSFraction: 0.5, MinRSSFraction: 0.15,
			})
			// Keep the substrate interleave phase-aligned with the web tier.
			v, err := newVM(c.Replicas+i, fmt.Sprintf("batch-%d", i), app)
			if err != nil {
				return res, err
			}
			fleet = append(fleet, v)
		}
	}

	svc, err := interactive.NewServiceWith(interactive.ServiceConfig{
		Arrivals: interactive.ArrivalConfig{
			Seed:    c.Seed,
			BaseRPS: c.RPSPerReplica * float64(c.Replicas),
		},
		SLOP99MS: c.SLOP99MS,
	}, apps)
	if err != nil {
		return res, err
	}
	envs := func() []substrate.Env {
		out := make([]substrate.Env, len(webVMs))
		for i, v := range webVMs {
			out[i] = v.Env()
		}
		return out
	}
	for tick := 0; tick < c.WarmupTicks; tick++ {
		if err := svc.Step(envs()); err != nil {
			return res, err
		}
	}

	if c.DeflateFrac > 0 {
		var totalLat time.Duration
		if c.Aggressive {
			// The blind path: an external reclaimer writes the new limits
			// straight through the mechanism, ignoring the substrate's
			// reported resize floor. VMs swap; containers OOM.
			blind := size.Scale(1 - c.DeflateFrac)
			for _, v := range fleet {
				before := v.Allocation().CPU
				lat, err := v.Instance().SetAllocation(blind)
				if err != nil {
					return res, err
				}
				totalLat += lat
				res.ReclaimedCores += before - v.Allocation().CPU
			}
		} else {
			// The cascade path: same single deflation event FigSLO uses —
			// reclaim the fraction of each instance's CPU and half that
			// fraction of its memory, floor-clamped per substrate.
			ctrl := cascade.New(cascade.AllLevels())
			target := restypes.V(size.CPU*c.DeflateFrac, size.MemoryMB*c.DeflateFrac*0.5, 0, 0)
			for _, v := range fleet {
				before := v.Allocation().CPU
				rep, err := ctrl.Deflate(v, target)
				if err != nil {
					return res, err
				}
				totalLat += rep.TotalLatency
				res.ReclaimedCores += before - v.Allocation().CPU
			}
		}
		res.ReclaimedCores /= float64(len(fleet))
		res.MeanResizeMS = float64(totalLat.Microseconds()) / 1000 / float64(len(fleet))
	}
	for _, v := range fleet {
		if v.Env().OOMKilled {
			res.OOMKills++
		}
	}

	svc.ResetStats()
	for tick := 0; tick < c.MeasureTicks; tick++ {
		if err := svc.Step(envs()); err != nil {
			return res, err
		}
	}
	r := svc.Result()
	res.P99MS = r.P99MS
	res.SLOViolated = r.SLOViolated
	res.Requests = r.Requests
	return res, nil
}

// mixedSweepCell wraps a cell for the engine; cells are pure functions of
// their config, so they memoize across sweeps.
func mixedSweepCell(c mixedCell) sweep.Cell[mixedCellResult] {
	return sweep.Cell[mixedCellResult]{
		Key: sweep.Key("experiments.mixedCell", c),
		Run: func(context.Context) (mixedCellResult, error) {
			return runMixedCell(c)
		},
	}
}

// MixedPanel is one workload-mix slice of the sweep: measured p99,
// reclaimed cores, and mean resize latency per deflation fraction for all
// three fleets, plus each fleet's frontier — the deepest requested
// deflation before its first p99 violation.
type MixedPanel struct {
	Mix string

	VM, Container, Mixed                series // p99 ms per deflation fraction
	VMCores, ContainerCores, MixedCores series // reclaimed cores per instance
	VMResize, ContainerResize           series // mean resize latency ms

	VMFrontierPct, ContainerFrontierPct, MixedFrontierPct float64
	vm, container, mixed                                  []mixedCellResult
}

// MixedAggressiveCell is one fleet's blind-resize result.
type MixedAggressiveCell struct {
	Fleet        string
	DeflationPct float64
	Cell         mixedCellResult
}

// FigMixedResult holds the sweep output.
type FigMixedResult struct {
	SLOP99MS     float64
	DeflationPct []float64
	Panels       []MixedPanel
	Aggressive   []MixedAggressiveCell
}

// Table renders every panel plus the frontier and aggressive summaries.
func (r FigMixedResult) Table() string {
	var b strings.Builder
	for _, p := range r.Panels {
		title := fmt.Sprintf("fig-mixed [%s]: p99 (ms), reclaimed cores/instance, resize latency (ms) by substrate (SLO %g ms)",
			p.Mix, r.SLOP99MS)
		b.WriteString(renderTable(title, "defl%", r.DeflationPct,
			[]series{p.VM, p.Container, p.Mixed,
				p.VMCores, p.ContainerCores, p.MixedCores,
				p.VMResize, p.ContainerResize}))
		b.WriteString(fmt.Sprintf("frontier (deepest violation-free request): %s %s, %s %s, %s %s\n\n",
			fleetVM, frontierLabel(p.VMFrontierPct),
			fleetContainer, frontierLabel(p.ContainerFrontierPct),
			fleetMixed, frontierLabel(p.MixedFrontierPct)))
	}
	b.WriteString(fmt.Sprintf("# fig-mixed aggressive: blind resize to size×%.3g%%, no cascade, no floor check\n",
		100-r.Aggressive[0].DeflationPct))
	for _, a := range r.Aggressive {
		b.WriteString(fmt.Sprintf(
			"%-9s: oom-kills %d, resize %.3f ms/instance, p99 %.3f ms (violated=%v)\n",
			a.Fleet, a.Cell.OOMKills, a.Cell.MeanResizeMS, a.Cell.P99MS, a.Cell.SLOViolated))
	}
	return b.String()
}

// TotalRequests sums the requests modeled across every cell's measurement
// window — the denominator for the benchmark's per-request metrics.
func (r FigMixedResult) TotalRequests() float64 {
	var total float64
	for _, p := range r.Panels {
		for _, cells := range [][]mixedCellResult{p.vm, p.container, p.mixed} {
			for _, c := range cells {
				total += c.Requests
			}
		}
	}
	for _, a := range r.Aggressive {
		total += a.Cell.Requests
	}
	return total
}

// mixedFrontierPct mirrors frontierPct for mixed cells.
func mixedFrontierPct(pct []float64, cells []mixedCellResult) float64 {
	deepest := -1.0
	for i, c := range cells {
		if c.SLOViolated {
			break
		}
		deepest = pct[i]
	}
	return deepest
}

// FigMixed runs the sweep.
func FigMixed(cfg FigMixedConfig) (FigMixedResult, error) {
	cfg = cfg.withDefaults()
	res := FigMixedResult{SLOP99MS: cfg.SLOP99MS}
	for _, f := range cfg.DeflationFractions {
		res.DeflationPct = append(res.DeflationPct, f*100)
	}

	base := mixedCell{
		RPSPerReplica: cfg.RPSPerReplica,
		Replicas:      cfg.Replicas,
		WarmupTicks:   cfg.WarmupTicks,
		MeasureTicks:  cfg.MeasureTicks,
		SLOP99MS:      cfg.SLOP99MS,
		Seed:          cfg.Seed,
	}
	fleets := []string{fleetVM, fleetContainer, fleetMixed}
	var cells []sweep.Cell[mixedCellResult]
	for _, mix := range cfg.Mixes {
		for _, fleet := range fleets {
			for _, f := range cfg.DeflationFractions {
				c := base
				c.Mix, c.Fleet, c.DeflateFrac = mix, fleet, f
				cells = append(cells, mixedSweepCell(c))
			}
		}
	}
	// The aggressive panel: one blind-resize cell per fleet on the web mix.
	for _, fleet := range fleets {
		c := base
		c.Mix, c.Fleet, c.DeflateFrac, c.Aggressive = mixWeb, fleet, cfg.AggressiveFraction, true
		cells = append(cells, mixedSweepCell(c))
	}

	vals, err := runCells("fig-mixed", cells)
	if err != nil {
		return res, err
	}

	nf := len(cfg.DeflationFractions)
	i := 0
	for _, mix := range cfg.Mixes {
		p := MixedPanel{
			Mix:             mix,
			VM:              series{Name: "vm p99"},
			Container:       series{Name: "ctr p99"},
			Mixed:           series{Name: "mix p99"},
			VMCores:         series{Name: "vm cores"},
			ContainerCores:  series{Name: "ctr cores"},
			MixedCores:      series{Name: "mix cores"},
			VMResize:        series{Name: "vm rsz ms"},
			ContainerResize: series{Name: "ctr rsz ms"},
		}
		p.vm = vals[i : i+nf]
		p.container = vals[i+nf : i+2*nf]
		p.mixed = vals[i+2*nf : i+3*nf]
		i += 3 * nf
		for k := 0; k < nf; k++ {
			p.VM.Values = append(p.VM.Values, p.vm[k].P99MS)
			p.Container.Values = append(p.Container.Values, p.container[k].P99MS)
			p.Mixed.Values = append(p.Mixed.Values, p.mixed[k].P99MS)
			p.VMCores.Values = append(p.VMCores.Values, p.vm[k].ReclaimedCores)
			p.ContainerCores.Values = append(p.ContainerCores.Values, p.container[k].ReclaimedCores)
			p.MixedCores.Values = append(p.MixedCores.Values, p.mixed[k].ReclaimedCores)
			p.VMResize.Values = append(p.VMResize.Values, p.vm[k].MeanResizeMS)
			p.ContainerResize.Values = append(p.ContainerResize.Values, p.container[k].MeanResizeMS)
		}
		p.VMFrontierPct = mixedFrontierPct(res.DeflationPct, p.vm)
		p.ContainerFrontierPct = mixedFrontierPct(res.DeflationPct, p.container)
		p.MixedFrontierPct = mixedFrontierPct(res.DeflationPct, p.mixed)
		res.Panels = append(res.Panels, p)
	}
	for k, fleet := range fleets {
		res.Aggressive = append(res.Aggressive, MixedAggressiveCell{
			Fleet:        fleet,
			DeflationPct: cfg.AggressiveFraction * 100,
			Cell:         vals[i+k],
		})
	}
	return res, nil
}
