package experiments

import (
	"strings"
	"testing"
	"time"
)

// tinyChaos keeps the sweep small enough for unit tests while still crashing
// nodes.
func tinyChaos() ChaosConfig {
	return ChaosConfig{
		FaultRates:       []float64{0, 32},
		Overcommits:      []float64{1.5},
		RecoveryTime:     2 * time.Minute,
		TraceCount:       1200,
		MeanInterarrival: 2 * time.Second,
		LifetimeMedian:   10 * time.Minute,
		Servers:          15,
	}
}

func TestChaosZeroRateReproducesFig8cBaseline(t *testing.T) {
	// The acceptance bar: the chaos sweep's zero-fault row must equal the
	// Fig. 8c deflation curve for the same simulation parameters, exactly.
	cfg := tinyChaos()
	chaos, err := Chaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig8c, err := Fig8c(Fig8cConfig{
		OvercommitLevels: cfg.Overcommits,
		TraceCount:       cfg.TraceCount,
		MeanInterarrival: cfg.MeanInterarrival,
		LifetimeMedian:   cfg.LifetimeMedian,
		Servers:          cfg.Servers,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfg.Overcommits {
		if got, want := chaos.Preemption[0].Values[i], fig8c.Deflation.Values[i]; got != want {
			t.Errorf("oc=%.1f: zero-fault preemption %.6f != Fig 8c deflation %.6f",
				cfg.Overcommits[i], got, want)
		}
	}
}

func TestChaosFaultsDegradeTheCluster(t *testing.T) {
	chaos, err := Chaos(tinyChaos())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(chaos.Preemption); n != 2 {
		t.Fatalf("series count = %d", n)
	}
	base, faulty := chaos.Preemption[0].Values[0], chaos.Preemption[1].Values[0]
	if faulty <= base {
		t.Errorf("preemption probability under faults %.4f not above baseline %.4f", faulty, base)
	}
	if chaos.Crashes[0].Values[0] != 0 {
		t.Errorf("zero-fault cell injected %v crashes", chaos.Crashes[0].Values[0])
	}
	if chaos.Crashes[1].Values[0] == 0 {
		t.Error("faulty cell injected no crashes")
	}
	if gp := chaos.Goodput[1].Values[0]; gp <= 0 {
		t.Errorf("goodput under faults = %v", gp)
	}

	table := chaos.Table()
	for _, want := range []string{"preemption probability", "goodput", "no faults", "32/node/day"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}
