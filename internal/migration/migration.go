// Package migration models pre-copy live migration with an explicit
// performance model, in the spirit of the paper's comparison between
// deflation and the two classical transient-reclamation mechanisms
// (preemption and migration).
//
// The model is the textbook iterative pre-copy loop: round 1 transfers the
// VM's resident set over the migration link; while round i is in flight the
// guest dirties pages at its dirty-page rate, and round i+1 must re-transfer
// exactly those pages. The iteration stops — suspending the guest for the
// final stop-and-copy — once the remaining dirty set can be moved within the
// configured downtime target. When the dirty rate approaches the link rate
// the remaining set never shrinks and the migration cannot converge; the
// model detects this upfront and reports the bandwidth wasted before the
// source aborts. An optional post-copy mode resumes the guest on the
// destination immediately (tiny downtime) but pays for it with remote-fault
// slowdown while pages stream in.
package migration

import (
	"math"
	"time"
)

// Model parameterizes the migration simulator. The zero value is usable:
// WithDefaults fills in a 10 GbE link and libvirt-flavored defaults.
type Model struct {
	// LinkMBps is the migration link rate in MB/s (default 1250, i.e. a
	// dedicated 10 GbE path). Per-migration callers may pass a lower
	// effective rate to Simulate when the NIC is contended.
	LinkMBps float64 `json:"link_mbps,omitempty"`
	// DowntimeTarget is the stop-and-copy budget: pre-copy iterates until
	// the remaining dirty set transfers within this window (default 300ms).
	DowntimeTarget time.Duration `json:"downtime_target,omitempty"`
	// SuspendResume is the fixed cost of pausing the guest on the source
	// and resuming it on the destination (default 50ms). It is paid once,
	// as part of the downtime.
	SuspendResume time.Duration `json:"suspend_resume,omitempty"`
	// MaxRounds caps pre-copy iterations; when reached, the model forces
	// stop-and-copy regardless of the downtime target, mirroring
	// auto-converge behaviour (default 30).
	MaxRounds int `json:"max_rounds,omitempty"`
	// ConvergenceRatio is the dirty-rate/link-rate ratio above which
	// pre-copy is declared non-convergent (default 0.9): each round then
	// shrinks the remaining set so slowly that the iteration is futile.
	ConvergenceRatio float64 `json:"convergence_ratio,omitempty"`
	// AbortRounds is how many futile rounds a non-convergent migration
	// wastes bandwidth on before the source gives up (default 3).
	AbortRounds int `json:"abort_rounds,omitempty"`
	// PostCopy switches to post-copy mode: the guest resumes on the
	// destination after one suspend/resume and faults pages in remotely.
	PostCopy bool `json:"post_copy,omitempty"`
	// RemoteFaultPenalty is the throughput factor (0,1] applied to the
	// migrating VM while post-copy pages stream in (default 0.6).
	RemoteFaultPenalty float64 `json:"remote_fault_penalty,omitempty"`
}

// WithDefaults returns the model with zero fields replaced by defaults.
func (m Model) WithDefaults() Model {
	if m.LinkMBps <= 0 {
		m.LinkMBps = 1250
	}
	if m.DowntimeTarget <= 0 {
		m.DowntimeTarget = 300 * time.Millisecond
	}
	if m.SuspendResume <= 0 {
		m.SuspendResume = 50 * time.Millisecond
	}
	if m.MaxRounds <= 0 {
		m.MaxRounds = 30
	}
	if m.ConvergenceRatio <= 0 {
		m.ConvergenceRatio = 0.9
	}
	if m.AbortRounds <= 0 {
		m.AbortRounds = 3
	}
	if m.RemoteFaultPenalty <= 0 || m.RemoteFaultPenalty > 1 {
		m.RemoteFaultPenalty = 0.6
	}
	return m
}

// Result reports one simulated migration.
type Result struct {
	// PostCopy records which mode produced the result.
	PostCopy bool `json:"post_copy,omitempty"`
	// Rounds is the number of copy rounds performed (including the
	// stop-and-copy round, and including futile rounds on abort).
	Rounds int `json:"rounds"`
	// TransferredMB is the total bytes moved over the link, counting
	// re-transfers of re-dirtied pages — the network cost of the migration.
	TransferredMB float64 `json:"transferred_mb"`
	// Duration is total wall-clock time the stream occupies the link.
	Duration time.Duration `json:"duration"`
	// Downtime is how long the guest is paused (zero on abort).
	Downtime time.Duration `json:"downtime"`
	// Converged is false when pre-copy aborted: the VM stays on the source
	// and TransferredMB/Duration report the wasted work.
	Converged bool `json:"converged"`
	// SlowdownFactor is the throughput multiplier the migrating VM runs at
	// after switchover until Duration elapses (1.0 for pre-copy; the
	// remote-fault penalty for post-copy).
	SlowdownFactor float64 `json:"slowdown_factor"`
}

// Simulate runs the model for a VM with residentMB of migratable state being
// dirtied at dirtyRateMBps, over an effective link of linkMBps (values <= 0
// or above the model's LinkMBps are clamped to the model's LinkMBps — the
// model rate is the dedicated-path ceiling).
func (m Model) Simulate(residentMB, dirtyRateMBps, linkMBps float64) Result {
	m = m.WithDefaults()
	link := linkMBps
	if link <= 0 || link > m.LinkMBps {
		link = m.LinkMBps
	}
	if residentMB < 0 {
		residentMB = 0
	}
	if dirtyRateMBps < 0 {
		dirtyRateMBps = 0
	}

	if m.PostCopy {
		return Result{
			PostCopy:       true,
			Rounds:         1,
			TransferredMB:  residentMB,
			Duration:       m.SuspendResume + mbDuration(residentMB, link),
			Downtime:       m.SuspendResume,
			Converged:      true,
			SlowdownFactor: m.RemoteFaultPenalty,
		}
	}

	// targetMB is the largest dirty set that still fits the downtime budget.
	targetMB := link * m.DowntimeTarget.Seconds()

	if dirtyRateMBps >= m.ConvergenceRatio*link && residentMB > targetMB {
		// Non-convergent: each round re-dirties nearly everything it
		// copies. Model the futile rounds the source wastes before
		// aborting; the guest never pauses and stays on the source.
		res := Result{Converged: false, SlowdownFactor: 1}
		remaining := residentMB
		for i := 0; i < m.AbortRounds; i++ {
			t := remaining / link
			res.TransferredMB += remaining
			res.Duration += mbDuration(remaining, link)
			res.Rounds++
			remaining = math.Min(dirtyRateMBps*t, residentMB)
			if remaining <= 0 {
				break
			}
		}
		return res
	}

	res := Result{Converged: true, SlowdownFactor: 1}
	remaining := residentMB
	for round := 1; ; round++ {
		if remaining <= targetMB || round >= m.MaxRounds {
			// Stop-and-copy: suspend, drain the final dirty set, resume.
			res.Rounds = round
			res.TransferredMB += remaining
			res.Downtime = m.SuspendResume + mbDuration(remaining, link)
			res.Duration += res.Downtime
			return res
		}
		t := remaining / link
		res.TransferredMB += remaining
		res.Duration += mbDuration(remaining, link)
		remaining = math.Min(dirtyRateMBps*t, residentMB)
	}
}

func mbDuration(mb, mbps float64) time.Duration {
	if mbps <= 0 {
		return 0
	}
	return time.Duration(mb / mbps * float64(time.Second))
}
