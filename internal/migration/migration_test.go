package migration

import (
	"testing"
	"time"
)

func TestPreCopyConvergesQuicklyForIdleGuest(t *testing.T) {
	m := Model{} // defaults: 1250 MB/s link, 300ms target
	res := m.Simulate(8192, 0, 0)
	if !res.Converged {
		t.Fatal("idle guest did not converge")
	}
	if res.Rounds != 2 {
		t.Errorf("idle guest took %d rounds, want 2 (one copy + empty stop-and-copy)", res.Rounds)
	}
	if res.TransferredMB != 8192 {
		t.Errorf("transferred %.0f MB, want exactly the resident set", res.TransferredMB)
	}
	// Nothing re-dirties, so downtime is just the suspend/resume floor.
	if res.Downtime != 50*time.Millisecond {
		t.Errorf("downtime %v, want bare suspend/resume", res.Downtime)
	}
}

func TestPreCopyIteratesAndMeetsDowntimeTarget(t *testing.T) {
	m := Model{}.WithDefaults()
	// 16 GB resident, dirtying 250 MB/s over a 1250 MB/s link: ratio 0.2,
	// each round shrinks the set 5x, so a handful of rounds converge.
	res := m.Simulate(16384, 250, 0)
	if !res.Converged {
		t.Fatal("moderate writer did not converge")
	}
	if res.Rounds < 2 {
		t.Errorf("rounds = %d, want iterative copy (>1)", res.Rounds)
	}
	if res.TransferredMB <= 16384 {
		t.Errorf("transferred %.0f MB, want > resident set (re-dirtied pages recopied)", res.TransferredMB)
	}
	// Final dirty set fit the 300ms budget, plus 50ms suspend/resume.
	if res.Downtime > 350*time.Millisecond {
		t.Errorf("downtime %v exceeds target+suspend", res.Downtime)
	}
	if res.Downtime <= 0 || res.Duration < res.Downtime {
		t.Errorf("inconsistent times: duration %v downtime %v", res.Duration, res.Downtime)
	}
}

func TestDirtyRateAboveLinkDoesNotConverge(t *testing.T) {
	m := Model{}.WithDefaults()
	res := m.Simulate(16384, 1300, 0) // dirties faster than the link drains
	if res.Converged {
		t.Fatal("writer outpacing the link converged")
	}
	if res.Downtime != 0 {
		t.Errorf("aborted migration paused the guest for %v", res.Downtime)
	}
	if res.TransferredMB <= 0 || res.Duration <= 0 {
		t.Error("abort reported no wasted work")
	}
	if res.Rounds != m.AbortRounds {
		t.Errorf("wasted %d rounds, want %d", res.Rounds, m.AbortRounds)
	}
}

func TestDeflatedVMMigratesCheaper(t *testing.T) {
	// The deflate-then-migrate premise: shrinking the resident set (and,
	// with it, the dirty rate) must strictly reduce bytes moved, total
	// duration, and downtime.
	m := Model{}.WithDefaults()
	full := m.Simulate(16384, 600, 0)
	deflated := m.Simulate(4096, 150, 0)
	if !full.Converged || !deflated.Converged {
		t.Fatal("both variants should converge")
	}
	if deflated.TransferredMB >= full.TransferredMB {
		t.Errorf("deflated moved %.0f MB, full %.0f MB", deflated.TransferredMB, full.TransferredMB)
	}
	if deflated.Duration >= full.Duration {
		t.Errorf("deflated took %v, full %v", deflated.Duration, full.Duration)
	}
	if deflated.Downtime > full.Downtime {
		t.Errorf("deflated downtime %v above full %v", deflated.Downtime, full.Downtime)
	}
}

func TestContendedLinkSlowsMigration(t *testing.T) {
	m := Model{}.WithDefaults()
	fast := m.Simulate(8192, 200, 1250)
	slow := m.Simulate(8192, 200, 400) // NIC contended: 400 MB/s effective
	if slow.Duration <= fast.Duration {
		t.Errorf("contended link duration %v not above dedicated %v", slow.Duration, fast.Duration)
	}
	// A heavy writer that converges on the full link fails on the slice.
	if res := m.Simulate(8192, 700, 400); res.Converged {
		t.Error("700 MB/s writer converged over a 400 MB/s slice")
	}
}

func TestPostCopyTradesDowntimeForSlowdown(t *testing.T) {
	pre := Model{}.WithDefaults()
	post := Model{PostCopy: true}.WithDefaults()
	a := pre.Simulate(16384, 600, 0)
	b := post.Simulate(16384, 600, 0)
	if !b.Converged || !b.PostCopy {
		t.Fatal("post-copy must always converge")
	}
	if b.Downtime >= a.Downtime {
		t.Errorf("post-copy downtime %v not below pre-copy %v", b.Downtime, a.Downtime)
	}
	if b.TransferredMB != 16384 {
		t.Errorf("post-copy moved %.0f MB, want exactly the resident set", b.TransferredMB)
	}
	if b.SlowdownFactor >= 1 || b.SlowdownFactor <= 0 {
		t.Errorf("post-copy slowdown %v not in (0,1)", b.SlowdownFactor)
	}
	if a.SlowdownFactor != 1 {
		t.Errorf("pre-copy slowdown %v, want 1", a.SlowdownFactor)
	}
}

func TestMaxRoundsForcesStopAndCopy(t *testing.T) {
	// Just under the convergence ratio: rounds shrink the set very slowly,
	// so MaxRounds trips and forces a (long) stop-and-copy instead of
	// iterating forever.
	m := Model{MaxRounds: 5}.WithDefaults()
	res := m.Simulate(16384, 1100, 0) // ratio 0.88 < 0.9
	if !res.Converged {
		t.Fatal("sub-ratio writer should force-converge at MaxRounds")
	}
	if res.Rounds != 5 {
		t.Errorf("rounds = %d, want MaxRounds", res.Rounds)
	}
	if res.Downtime <= 300*time.Millisecond {
		t.Error("forced stop-and-copy should blow the downtime target")
	}
}

func TestZeroResidentIsTrivial(t *testing.T) {
	res := Model{}.Simulate(0, 0, 0)
	if !res.Converged || res.TransferredMB != 0 {
		t.Errorf("zero-resident migration: %+v", res)
	}
}
