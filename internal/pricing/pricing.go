// Package pricing implements the deflatable-VM pricing models the paper
// discusses in §8: flat discounted prices (today's spot/preemptible
// offerings) and the resource-as-a-service model, where "providers can
// dynamically charge VMs based on the amount of resources allocated". A
// Meter integrates per-VM allocations over (virtual) time so cluster
// experiments can compare provider revenue under the different models.
package pricing

import (
	"fmt"
	"time"

	"deflation/internal/restypes"
)

// Rates prices the two primary resource dimensions per hour. The defaults
// approximate on-demand cloud pricing: $0.05 per core-hour and $0.007 per
// GB-hour.
type Rates struct {
	PerCoreHour float64
	PerGBHour   float64
}

// DefaultRates returns the baseline on-demand rates.
func DefaultRates() Rates { return Rates{PerCoreHour: 0.05, PerGBHour: 0.007} }

// hourly returns the price of holding v for one hour.
func (r Rates) hourly(v restypes.Vector) float64 {
	return v.CPU*r.PerCoreHour + v.MemoryMB/1024*r.PerGBHour
}

// Model prices one interval of a VM's existence.
type Model interface {
	// Name identifies the model.
	Name() string
	// Charge prices dt of a VM whose nominal size is nominal and whose
	// physical allocation during the interval was allocated.
	Charge(nominal, allocated restypes.Vector, dt time.Duration) float64
}

// OnDemand charges the full nominal price, allocation-independent — the
// non-revocable baseline (high-priority VMs).
type OnDemand struct{ Rates Rates }

// Name implements Model.
func (OnDemand) Name() string { return "on-demand" }

// Charge implements Model.
func (m OnDemand) Charge(nominal, _ restypes.Vector, dt time.Duration) float64 {
	return m.Rates.hourly(nominal) * dt.Hours()
}

// FlatDiscount charges a discounted nominal price regardless of how far the
// VM is deflated — today's spot/preemptible pricing ("providers could
// continue to offer flat discounted prices").
type FlatDiscount struct {
	Rates Rates
	// Discount is the price multiplier (default-worthy value 0.3: the
	// paper's "7-10x cheaper" spot pricing corresponds to 0.1-0.15; the
	// higher utility of deflatable VMs supports a smaller discount).
	Discount float64
}

// Name implements Model.
func (m FlatDiscount) Name() string { return fmt.Sprintf("flat-%.0f%%", m.Discount*100) }

// Charge implements Model.
func (m FlatDiscount) Charge(nominal, _ restypes.Vector, dt time.Duration) float64 {
	return m.Rates.hourly(nominal) * m.Discount * dt.Hours()
}

// ResourceAsAService charges for the resources actually allocated, at a
// discounted rate — the RaaS model the paper cites as the natural fit for
// deflatable VMs.
type ResourceAsAService struct {
	Rates    Rates
	Discount float64
}

// Name implements Model.
func (m ResourceAsAService) Name() string { return fmt.Sprintf("raas-%.0f%%", m.Discount*100) }

// Charge implements Model.
func (m ResourceAsAService) Charge(_, allocated restypes.Vector, dt time.Duration) float64 {
	return m.Rates.hourly(allocated) * m.Discount * dt.Hours()
}

// Usage is one VM's state during a metering interval.
type Usage struct {
	Nominal      restypes.Vector
	Allocated    restypes.Vector
	HighPriority bool
}

// Meter integrates revenue over time: high-priority VMs are charged
// on-demand, low-priority (deflatable) VMs under the configured transient
// model.
type Meter struct {
	onDemand  Model
	transient Model

	last    time.Duration
	started bool

	HighRevenue float64
	LowRevenue  float64
	// CoreHoursSold integrates allocated core-hours (utilization revenue
	// is made of).
	CoreHoursSold float64
}

// NewMeter builds a meter with on-demand pricing for high-priority VMs and
// the given model for low-priority ones.
func NewMeter(transient Model) (*Meter, error) {
	if transient == nil {
		return nil, fmt.Errorf("pricing: nil transient model")
	}
	return &Meter{onDemand: OnDemand{Rates: DefaultRates()}, transient: transient}, nil
}

// TransientModel returns the model applied to low-priority VMs.
func (m *Meter) TransientModel() Model { return m.transient }

// Sample accrues revenue for the interval since the previous sample, during
// which the given usages were in effect. The first call only establishes
// the time origin.
func (m *Meter) Sample(now time.Duration, usages []Usage) {
	if !m.started {
		m.started = true
		m.last = now
		return
	}
	dt := now - m.last
	m.last = now
	if dt <= 0 {
		return
	}
	for _, u := range usages {
		if u.HighPriority {
			m.HighRevenue += m.onDemand.Charge(u.Nominal, u.Allocated, dt)
		} else {
			m.LowRevenue += m.transient.Charge(u.Nominal, u.Allocated, dt)
		}
		m.CoreHoursSold += u.Allocated.CPU * dt.Hours()
	}
}

// Total returns accrued revenue across both classes.
func (m *Meter) Total() float64 { return m.HighRevenue + m.LowRevenue }
