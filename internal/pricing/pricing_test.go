package pricing

import (
	"math"
	"testing"
	"time"

	"deflation/internal/restypes"
)

func v4() restypes.Vector { return restypes.V(4, 16384, 100, 100) }
func v2() restypes.Vector { return restypes.V(2, 8192, 50, 50) }

func TestOnDemandCharge(t *testing.T) {
	m := OnDemand{Rates: DefaultRates()}
	// 4 cores × $0.05 + 16 GB × $0.007 = $0.312/hour.
	got := m.Charge(v4(), v2(), time.Hour)
	if math.Abs(got-0.312) > 1e-9 {
		t.Errorf("charge = %g, want 0.312 (allocation-independent)", got)
	}
	if m.Name() != "on-demand" {
		t.Errorf("name = %q", m.Name())
	}
}

func TestFlatDiscountIgnoresDeflation(t *testing.T) {
	m := FlatDiscount{Rates: DefaultRates(), Discount: 0.3}
	full := m.Charge(v4(), v4(), time.Hour)
	deflated := m.Charge(v4(), v2(), time.Hour)
	if full != deflated {
		t.Errorf("flat pricing varied with allocation: %g vs %g", full, deflated)
	}
	if math.Abs(full-0.312*0.3) > 1e-9 {
		t.Errorf("charge = %g, want 30%% of on-demand", full)
	}
}

func TestRaaSFollowsAllocation(t *testing.T) {
	m := ResourceAsAService{Rates: DefaultRates(), Discount: 0.5}
	full := m.Charge(v4(), v4(), time.Hour)
	deflated := m.Charge(v4(), v2(), time.Hour)
	if math.Abs(deflated-full/2) > 1e-9 {
		t.Errorf("half allocation not half price: %g vs %g", deflated, full)
	}
}

func TestMeterIntegration(t *testing.T) {
	if _, err := NewMeter(nil); err == nil {
		t.Error("nil model accepted")
	}
	m, err := NewMeter(ResourceAsAService{Rates: DefaultRates(), Discount: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if m.TransientModel() == nil {
		t.Error("model accessor nil")
	}

	usage := []Usage{
		{Nominal: v4(), Allocated: v4(), HighPriority: true},
		{Nominal: v4(), Allocated: v2(), HighPriority: false},
	}
	m.Sample(0, usage) // origin only
	m.Sample(time.Hour, usage)
	// High: on-demand $0.312; low: RaaS on 2c/8GB at 50% = $0.078.
	if math.Abs(m.HighRevenue-0.312) > 1e-9 {
		t.Errorf("high revenue = %g", m.HighRevenue)
	}
	if math.Abs(m.LowRevenue-0.078) > 1e-9 {
		t.Errorf("low revenue = %g", m.LowRevenue)
	}
	if math.Abs(m.Total()-(m.HighRevenue+m.LowRevenue)) > 1e-12 {
		t.Error("total inconsistent")
	}
	if math.Abs(m.CoreHoursSold-6) > 1e-9 {
		t.Errorf("core-hours = %g, want 6", m.CoreHoursSold)
	}

	// Zero and negative intervals accrue nothing.
	before := m.Total()
	m.Sample(time.Hour, usage)
	m.Sample(time.Minute, usage)
	if m.Total() != before {
		t.Error("non-positive interval accrued revenue")
	}
}

func TestModelNames(t *testing.T) {
	if (FlatDiscount{Discount: 0.3}).Name() != "flat-30%" {
		t.Error("flat name wrong")
	}
	if (ResourceAsAService{Discount: 0.5}).Name() != "raas-50%" {
		t.Error("raas name wrong")
	}
}
