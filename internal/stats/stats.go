// Package stats is the repository's shared statistics toolkit: the
// clamped sorted-sample quantile the cluster simulator reports (hardened
// against out-of-range q by the PR-5 fuzzing), the exponential bucket
// constructor used for telemetry latency histograms, and a streaming
// fixed-bucket histogram (Stream) that tracks quantiles over millions of
// weighted observations without retaining samples — the backbone of the
// interactive subsystem's per-request latency tracking.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Quantile returns the q-quantile of an ascending-sorted sample using the
// nearest-rank method. Out-of-range q (or a rounding excursion at q≈1) is
// clamped to the data, never indexing out of bounds; the empty sample
// yields 0.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// ExpBuckets returns n exponential bucket upper bounds starting at start
// and growing by factor — the shape for latencies that span orders of
// magnitude (milliseconds of CPU unplug to minutes of swap-bound memory
// reclamation, microseconds of fast-path requests to saturated tails).
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Stream is a streaming fixed-bucket histogram over float64-weighted
// observations. Unlike telemetry.Histogram it is not safe for concurrent
// use and not tied to a metrics registry: it is the in-simulation
// accumulator for distributions too large to retain (millions of request
// latencies per sweep cell), with interpolated quantiles.
//
// Buckets are upper bounds in ascending order; an implicit +Inf bucket
// catches the tail. Weights may be fractional — analytic models spread a
// tick's worth of requests across buckets by CDF mass.
type Stream struct {
	bounds []float64 // ascending upper bounds; +Inf implicit
	counts []float64 // len(bounds)+1
	count  float64
	sum    float64 // sum of v·w as given by callers
}

// NewStream builds a stream over the given bucket upper bounds (sorted,
// deduplicated copies; at least one bound is required).
func NewStream(bounds []float64) (*Stream, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("stats: stream needs at least one bucket bound")
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	dedup := bs[:1]
	for _, b := range bs[1:] {
		if b != dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	for _, b := range dedup {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("stats: bucket bound %v", b)
		}
	}
	return &Stream{bounds: dedup, counts: make([]float64, len(dedup)+1)}, nil
}

// Add records one observation of v.
func (s *Stream) Add(v float64) { s.AddWeighted(v, 1) }

// AddWeighted records w observations of v (w may be fractional; w <= 0 is
// ignored). NaN values are ignored rather than poisoning the quantiles.
func (s *Stream) AddWeighted(v, w float64) {
	if w <= 0 || math.IsNaN(v) || math.IsNaN(w) {
		return
	}
	i := sort.SearchFloat64s(s.bounds, v)
	s.counts[i] += w
	s.count += w
	s.sum += v * w
}

// Bounds returns the stream's finite bucket upper bounds (shared slice;
// callers must not mutate it).
func (s *Stream) Bounds() []float64 { return s.bounds }

// Count returns the total observation weight.
func (s *Stream) Count() float64 { return s.count }

// Sum returns the weighted sum of observed values.
func (s *Stream) Sum() float64 { return s.sum }

// Mean returns the weighted mean of observed values (0 when empty).
func (s *Stream) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / s.count
}

// Quantile returns the interpolated q-quantile: the bucket containing the
// q-th weight is located, then the value is linearly interpolated between
// the bucket's bounds by the weight fraction inside it. q is clamped to
// [0, 1]; the empty stream yields 0. Mass in the +Inf tail reports the
// last finite bound (the stream cannot see past its buckets — size them
// so the tail is empty for meaningful quantiles).
func (s *Stream) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * s.count
	var cum float64
	for i, c := range s.counts {
		if cum+c < target || c == 0 {
			cum += c
			continue
		}
		if i == len(s.bounds) {
			// +Inf tail: no finite upper bound to interpolate toward.
			return s.bounds[len(s.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.bounds[i-1]
		}
		frac := (target - cum) / c
		return lo + frac*(s.bounds[i]-lo)
	}
	return s.bounds[len(s.bounds)-1]
}

// TailWeight returns the observation weight recorded above the last finite
// bound — nonzero tail weight means the bucket range clipped the
// distribution and high quantiles are underestimates.
func (s *Stream) TailWeight() float64 { return s.counts[len(s.counts)-1] }
