package stats

import (
	"math"
	"testing"
)

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
	if got := Mean([]float64{1, 2, 3, 6}); got != 3 {
		t.Errorf("Mean = %g, want 3", got)
	}
}

func TestQuantileClamps(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.5, 3}, {1, 5},
		{-3, 1},   // below range clamps to minimum
		{7.5, 5},  // above range clamps to maximum
		{0.99, 4}, // nearest rank
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %g, want %g", c.q, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(empty) = %g", got)
	}
}

func TestExpBuckets(t *testing.T) {
	bs := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if bs[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", bs, want)
		}
	}
}

func TestStreamValidation(t *testing.T) {
	if _, err := NewStream(nil); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := NewStream([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN bound accepted")
	}
	if _, err := NewStream([]float64{1, math.Inf(1)}); err == nil {
		t.Error("+Inf bound accepted")
	}
}

func TestStreamBasics(t *testing.T) {
	s, err := NewStream([]float64{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g", got)
	}
	s.Add(0.5)
	s.AddWeighted(3, 2)
	s.AddWeighted(100, 1) // +Inf tail
	s.AddWeighted(1, -5)  // ignored
	s.AddWeighted(math.NaN(), 1)
	if got := s.Count(); got != 4 {
		t.Errorf("count = %g, want 4", got)
	}
	if want := 0.5 + 3*2 + 100; s.Sum() != want {
		t.Errorf("sum = %g, want %g", s.Sum(), want)
	}
	if got := s.TailWeight(); got != 1 {
		t.Errorf("tail weight = %g, want 1", got)
	}
	if got := s.Mean(); math.Abs(got-106.5/4) > 1e-12 {
		t.Errorf("mean = %g", got)
	}
}

// TestStreamQuantileInterpolation checks the interpolated quantile against
// a uniform distribution spread over one bucket: the q-quantile of weight
// uniformly inside (2, 4] is 2 + 2q.
func TestStreamQuantileInterpolation(t *testing.T) {
	s, err := NewStream([]float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	s.AddWeighted(3, 10) // all weight in the (2, 4] bucket
	for _, q := range []float64{0.1, 0.5, 0.9} {
		want := 2 + 2*q
		if got := s.Quantile(q); math.Abs(got-want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", q, got, want)
		}
	}
	// Clamped q.
	if got := s.Quantile(-1); got != 2 {
		t.Errorf("Quantile(-1) = %g, want 2", got)
	}
	if got := s.Quantile(2); got != 4 {
		t.Errorf("Quantile(2) = %g, want 4", got)
	}
}

// TestStreamExponentialQuantiles spreads an exponential distribution's CDF
// mass across fine buckets — the interactive latency model's exact usage —
// and checks the recovered p50/p99 against the closed form.
func TestStreamExponentialQuantiles(t *testing.T) {
	mean := 10.0 // ms
	s, err := NewStream(ExpBuckets(0.25, 1.15, 80))
	if err != nil {
		t.Fatal(err)
	}
	cdf := func(x float64) float64 { return 1 - math.Exp(-x/mean) }
	lo := 0.0
	for _, b := range ExpBuckets(0.25, 1.15, 80) {
		s.AddWeighted((lo+b)/2, 1e6*(cdf(b)-cdf(lo)))
		lo = b
	}
	if tail := s.TailWeight(); tail != 0 {
		// spread only placed mass at finite midpoints
		t.Fatalf("tail weight %g", tail)
	}
	for _, c := range []struct{ q, want float64 }{
		{0.5, mean * math.Ln2},
		{0.99, mean * math.Log(100)},
	} {
		got := s.Quantile(c.q)
		if math.Abs(got-c.want)/c.want > 0.08 {
			t.Errorf("Quantile(%g) = %g, want ≈%g", c.q, got, c.want)
		}
	}
}

func TestStreamDedupsBounds(t *testing.T) {
	s, err := NewStream([]float64{4, 1, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.bounds) != 3 {
		t.Errorf("bounds = %v, want deduped sorted 3", s.bounds)
	}
}
