// Package vm composes a hypervisor domain, its guest OS, and an application
// into a deflatable VM — the unit the paper's cascade deflation and cluster
// manager operate on (§3, §5).
//
// A deflatable VM carries a priority class (high-priority VMs are never
// deflated or preempted), an optional minimum size m_i below which deflation
// is unsafe and preemption is used instead, and the application whose
// deflation policy participates in the cascade.
package vm

import (
	"fmt"
	"time"

	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
)

// Priority classifies a VM for reclamation purposes.
type Priority int

const (
	// LowPriority VMs are deflatable (and, past their minimum size,
	// preemptible). These are the transient VMs.
	LowPriority Priority = iota
	// HighPriority VMs are non-deflatable and non-preemptible.
	HighPriority
)

// String returns "low" or "high".
func (p Priority) String() string {
	if p == HighPriority {
		return "high"
	}
	return "low"
}

// Application is implemented by workloads that run inside a deflatable VM.
// Implementations live in internal/apps and internal/spark.
//
// All methods are invoked from the single-threaded simulation loop.
type Application interface {
	// Name identifies the workload (for logs and reports).
	Name() string

	// Footprint returns the application's current memory footprint: its
	// resident set and the page cache it generates. The VM propagates this
	// to the guest OS after every change.
	Footprint() (rssMB, pageCacheMB float64)

	// SelfDeflate asks the application to voluntarily relinquish resources
	// toward the reclamation target (absolute amounts). It returns what was
	// actually relinquished — possibly zero for inelastic applications —
	// and the latency of the application-level mechanism (LRU eviction,
	// GC, task termination). Per §3.2.1 this is best-effort: applications
	// may ignore the request entirely.
	SelfDeflate(target restypes.Vector) (relinquished restypes.Vector, latency time.Duration)

	// Reinflate notifies the application that previously reclaimed
	// resources are available again, with its new full environment.
	Reinflate(env hypervisor.Env)

	// Throughput returns the application's normalized performance (1 = full
	// allocation) in the given environment. Returns 0 once OOM-killed.
	Throughput(env hypervisor.Env) float64
}

// EnvObserver is optionally implemented by applications that need to track
// their effective environment as it changes (e.g. a Spark worker updating
// its executor's task speed after VM-level deflation). The cascade
// controller calls ObserveEnv after every deflation and reinflation.
type EnvObserver interface {
	ObserveEnv(env hypervisor.Env)
}

// ObserveEnv pushes the VM's current environment to the application if it
// implements EnvObserver.
func (v *VM) ObserveEnv() {
	if obs, ok := v.app.(EnvObserver); ok {
		obs.ObserveEnv(v.dom.Env())
	}
}

// VM is a deflatable (or high-priority, non-deflatable) virtual machine.
type VM struct {
	dom      *hypervisor.Domain
	app      Application
	priority Priority
	minSize  restypes.Vector // m_i: deflation floor; zero means "fully deflatable"
}

// Config bundles VM creation parameters.
type Config struct {
	Priority Priority
	// MinSize is the minimum viable allocation m_i (§5). Deflating below it
	// is refused by policy; the cluster manager preempts instead. A zero
	// vector (the default) means the VM tolerates arbitrary deflation.
	MinSize restypes.Vector
}

// New wraps a booted domain and its application as a deflatable VM.
func New(dom *hypervisor.Domain, app Application, cfg Config) (*VM, error) {
	if dom == nil {
		return nil, fmt.Errorf("vm: nil domain")
	}
	if app == nil {
		return nil, fmt.Errorf("vm: nil application")
	}
	if !cfg.MinSize.Fits(dom.Size()) {
		return nil, fmt.Errorf("vm: min size %v exceeds VM size %v", cfg.MinSize, dom.Size())
	}
	v := &VM{dom: dom, app: app, priority: cfg.Priority, minSize: cfg.MinSize}
	v.SyncFootprint()
	return v, nil
}

// Name returns the underlying domain name.
func (v *VM) Name() string { return v.dom.Name() }

// Domain returns the underlying hypervisor domain.
func (v *VM) Domain() *hypervisor.Domain { return v.dom }

// App returns the application running in the VM.
func (v *VM) App() Application { return v.app }

// Priority returns the VM's priority class.
func (v *VM) Priority() Priority { return v.priority }

// Size returns the nominal booted size M_i.
func (v *VM) Size() restypes.Vector { return v.dom.Size() }

// Allocation returns the current physical allocation.
func (v *VM) Allocation() restypes.Vector { return v.dom.Allocation() }

// MinSize returns the deflation floor m_i.
func (v *VM) MinSize() restypes.Vector { return v.minSize }

// Deflatable returns how much can still be reclaimed from this VM before it
// hits its minimum size: allocation − m_i for low-priority VMs, zero for
// high-priority VMs. This is the Deflatable_j term of the placement
// availability vector (§5, Eq. 4).
func (v *VM) Deflatable() restypes.Vector {
	if v.priority == HighPriority {
		return restypes.Vector{}
	}
	return v.dom.Allocation().Sub(v.minSize).ClampNonNegative()
}

// Env returns the application's current effective environment.
func (v *VM) Env() hypervisor.Env { return v.dom.Env() }

// Throughput returns the application's current normalized performance.
func (v *VM) Throughput() float64 { return v.app.Throughput(v.dom.Env()) }

// SyncFootprint propagates the application's memory footprint to the guest
// OS (which uses it to bound safe unplugging and to detect OOM). Call after
// any operation that may change the footprint.
func (v *VM) SyncFootprint() {
	rss, cache := v.app.Footprint()
	v.dom.Guest().SetAppFootprint(rss, cache)
}

// Preempt destroys the VM — the fail-stop reclamation used by today's
// transient-VM offerings, and the fallback when deflation below m_i would
// be required.
func (v *VM) Preempt() { v.dom.Destroy() }

// Preempted reports whether the VM has been preempted (domain destroyed).
func (v *VM) Preempted() bool { return v.dom.Destroyed() }

// Snapshot is the transferable state of a VM: the domain-plus-guest snapshot
// and the VM-level policy attributes that must follow it to the destination.
type Snapshot struct {
	Domain   hypervisor.DomainSnapshot `json:"domain"`
	Priority Priority                  `json:"priority"`
	MinSize  restypes.Vector           `json:"min_size"`
}

// Snapshot captures the VM's transferable state for live migration.
func (v *VM) Snapshot() Snapshot {
	return Snapshot{Domain: v.dom.Snapshot(), Priority: v.priority, MinSize: v.minSize}
}

// Restore materializes a migrated VM on host from a snapshot, attaching app
// as its application. The snapshot's guest footprint is authoritative — it
// is NOT overwritten from the application's Footprint, so a live application
// object handed off in-process stays exactly in sync, and a registry-built
// replacement converges through later deflate/reinflate cycles.
func Restore(host *hypervisor.Host, s Snapshot, app Application) (*VM, error) {
	if app == nil {
		return nil, fmt.Errorf("vm: nil application")
	}
	if !s.MinSize.Fits(s.Domain.Size) {
		return nil, fmt.Errorf("vm: min size %v exceeds VM size %v", s.MinSize, s.Domain.Size)
	}
	dom, err := host.RestoreDomain(s.Domain)
	if err != nil {
		return nil, err
	}
	return &VM{dom: dom, app: app, priority: s.Priority, minSize: s.MinSize}, nil
}
