// Package vm composes a substrate instance (a hypervisor domain or a
// container cgroup) and an application into a deflatable VM — the unit the
// paper's cascade deflation and cluster manager operate on (§3, §5).
//
// A deflatable VM carries a priority class (high-priority VMs are never
// deflated or preempted), an optional minimum size m_i below which deflation
// is unsafe and preemption is used instead, and the application whose
// deflation policy participates in the cascade.
package vm

import (
	"fmt"
	"time"

	"deflation/internal/guestos"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/substrate"
)

// Priority classifies a VM for reclamation purposes.
type Priority int

const (
	// LowPriority VMs are deflatable (and, past their minimum size,
	// preemptible). These are the transient VMs.
	LowPriority Priority = iota
	// HighPriority VMs are non-deflatable and non-preemptible.
	HighPriority
)

// String returns "low" or "high".
func (p Priority) String() string {
	if p == HighPriority {
		return "high"
	}
	return "low"
}

// Application is implemented by workloads that run inside a deflatable VM.
// Implementations live in internal/apps and internal/spark.
//
// All methods are invoked from the single-threaded simulation loop.
type Application interface {
	// Name identifies the workload (for logs and reports).
	Name() string

	// Footprint returns the application's current memory footprint: its
	// resident set and the page cache it generates. The VM propagates this
	// to the substrate after every change.
	Footprint() (rssMB, pageCacheMB float64)

	// SelfDeflate asks the application to voluntarily relinquish resources
	// toward the reclamation target (absolute amounts). It returns what was
	// actually relinquished — possibly zero for inelastic applications —
	// and the latency of the application-level mechanism (LRU eviction,
	// GC, task termination). Per §3.2.1 this is best-effort: applications
	// may ignore the request entirely.
	SelfDeflate(target restypes.Vector) (relinquished restypes.Vector, latency time.Duration)

	// Reinflate notifies the application that previously reclaimed
	// resources are available again, with its new full environment.
	Reinflate(env hypervisor.Env)

	// Throughput returns the application's normalized performance (1 = full
	// allocation) in the given environment. Returns 0 once OOM-killed.
	Throughput(env hypervisor.Env) float64
}

// EnvObserver is optionally implemented by applications that need to track
// their effective environment as it changes (e.g. a Spark worker updating
// its executor's task speed after VM-level deflation). The cascade
// controller calls ObserveEnv after every deflation and reinflation.
type EnvObserver interface {
	ObserveEnv(env hypervisor.Env)
}

// ObserveEnv pushes the VM's current environment to the application if it
// implements EnvObserver.
func (v *VM) ObserveEnv() {
	if obs, ok := v.app.(EnvObserver); ok {
		obs.ObserveEnv(v.inst.Env())
	}
}

// VM is a deflatable (or high-priority, non-deflatable) virtual machine —
// or, on the container substrate, a deflatable container. The historical
// name sticks: the policy layers treat both uniformly.
type VM struct {
	inst     substrate.Instance
	app      Application
	priority Priority
	minSize  restypes.Vector // m_i: deflation floor; zero means "fully deflatable"
}

// Config bundles VM creation parameters.
type Config struct {
	Priority Priority
	// MinSize is the minimum viable allocation m_i (§5). Deflating below it
	// is refused by policy; the cluster manager preempts instead. A zero
	// vector (the default) means the VM tolerates arbitrary deflation.
	MinSize restypes.Vector
}

// New wraps a booted hypervisor domain and its application as a deflatable
// VM. NewOn is the substrate-generic spelling.
func New(dom *hypervisor.Domain, app Application, cfg Config) (*VM, error) {
	if dom == nil {
		return nil, fmt.Errorf("vm: nil domain")
	}
	return NewOn(dom, app, cfg)
}

// NewOn wraps a booted substrate instance and its application as a
// deflatable VM.
func NewOn(inst substrate.Instance, app Application, cfg Config) (*VM, error) {
	if inst == nil {
		return nil, fmt.Errorf("vm: nil instance")
	}
	if app == nil {
		return nil, fmt.Errorf("vm: nil application")
	}
	if !cfg.MinSize.Fits(inst.Size()) {
		return nil, fmt.Errorf("vm: min size %v exceeds VM size %v", cfg.MinSize, inst.Size())
	}
	v := &VM{inst: inst, app: app, priority: cfg.Priority, minSize: cfg.MinSize}
	v.SyncFootprint()
	return v, nil
}

// Name returns the underlying instance name.
func (v *VM) Name() string { return v.inst.Name() }

// Instance returns the underlying substrate instance.
func (v *VM) Instance() substrate.Instance { return v.inst }

// Substrate returns the instance's substrate kind.
func (v *VM) Substrate() substrate.Kind { return v.inst.Kind() }

// Domain returns the underlying hypervisor domain, or nil when the VM runs
// on a non-hypervisor substrate. Policy code must treat nil as "no
// VM-level mechanisms" — prefer Instance for substrate-portable paths.
func (v *VM) Domain() *hypervisor.Domain {
	d, _ := v.inst.(*hypervisor.Domain)
	return d
}

// Guest returns the guest OS kernel for guest-backed (hypervisor)
// instances, or nil on substrates without one. The cascade's OS level and
// anything touching balloon/hotplug must gate on this.
func (v *VM) Guest() *guestos.GuestOS {
	if gb, ok := v.inst.(substrate.GuestBacked); ok {
		return gb.Guest()
	}
	return nil
}

// App returns the application running in the VM.
func (v *VM) App() Application { return v.app }

// Priority returns the VM's priority class.
func (v *VM) Priority() Priority { return v.priority }

// Size returns the nominal booted size M_i.
func (v *VM) Size() restypes.Vector { return v.inst.Size() }

// Allocation returns the current physical allocation.
func (v *VM) Allocation() restypes.Vector { return v.inst.Allocation() }

// MinSize returns the deflation floor m_i.
func (v *VM) MinSize() restypes.Vector { return v.minSize }

// Deflatable returns how much can still be reclaimed from this VM before it
// hits its minimum size: allocation − m_i for low-priority VMs, zero for
// high-priority VMs. This is the Deflatable_j term of the placement
// availability vector (§5, Eq. 4). On substrates that report a resize
// floor (containers: live RSS + runtime overhead), the memory component is
// additionally capped at allocation − floor, so planners never target a
// reclamation the substrate would answer with an OOM kill. Hypervisor
// domains report a zero floor, leaving the historical value untouched.
func (v *VM) Deflatable() restypes.Vector {
	if v.priority == HighPriority {
		return restypes.Vector{}
	}
	d := v.inst.Allocation().Sub(v.minSize).ClampNonNegative()
	if floor := v.inst.ResizeFloorMB(); floor > 0 {
		if maxMem := v.inst.Allocation().MemoryMB - floor; maxMem < d.MemoryMB {
			if maxMem < 0 {
				maxMem = 0
			}
			d.MemoryMB = maxMem
		}
	}
	return d
}

// Env returns the application's current effective environment.
func (v *VM) Env() hypervisor.Env { return v.inst.Env() }

// Throughput returns the application's current normalized performance.
func (v *VM) Throughput() float64 { return v.app.Throughput(v.inst.Env()) }

// SyncFootprint propagates the application's memory footprint to the
// substrate (which uses it to bound safe unplugging, track the resize
// floor, and detect OOM). Call after any operation that may change the
// footprint.
func (v *VM) SyncFootprint() {
	rss, cache := v.app.Footprint()
	v.inst.SetAppFootprint(rss, cache)
}

// Preempt destroys the VM — the fail-stop reclamation used by today's
// transient-VM offerings, and the fallback when deflation below m_i would
// be required.
func (v *VM) Preempt() { v.inst.Destroy() }

// Preempted reports whether the VM has been preempted (instance destroyed).
func (v *VM) Preempted() bool { return v.inst.Destroyed() }

// Snapshot is the transferable state of a VM: the substrate snapshot and
// the VM-level policy attributes that must follow it to the destination.
// The field keeps its historical name "domain" (JSON included) — it now
// carries the tagged substrate union.
type Snapshot struct {
	Domain   hypervisor.DomainSnapshot `json:"domain"`
	Priority Priority                  `json:"priority"`
	MinSize  restypes.Vector           `json:"min_size"`
}

// Snapshot captures the VM's transferable state for live migration.
func (v *VM) Snapshot() Snapshot {
	return Snapshot{Domain: v.inst.Snapshot(), Priority: v.priority, MinSize: v.minSize}
}

// Restore materializes a migrated VM on a hypervisor host from a snapshot.
// RestoreOn is the substrate-generic spelling.
func Restore(host *hypervisor.Host, s Snapshot, app Application) (*VM, error) {
	if host == nil {
		return nil, fmt.Errorf("vm: nil host")
	}
	return RestoreOn(host, s, app)
}

// RestoreOn materializes a migrated VM on a substrate from a snapshot,
// attaching app as its application. The snapshot's footprint is
// authoritative — it is NOT overwritten from the application's Footprint,
// so a live application object handed off in-process stays exactly in
// sync, and a registry-built replacement converges through later
// deflate/reinflate cycles. The substrate rejects snapshots of a different
// kind with substrate.ErrKindMismatch.
func RestoreOn(sub substrate.Substrate, s Snapshot, app Application) (*VM, error) {
	if app == nil {
		return nil, fmt.Errorf("vm: nil application")
	}
	if !s.MinSize.Fits(s.Domain.Size) {
		return nil, fmt.Errorf("vm: min size %v exceeds VM size %v", s.MinSize, s.Domain.Size)
	}
	inst, err := sub.RestoreInstance(s.Domain)
	if err != nil {
		return nil, err
	}
	return &VM{inst: inst, app: app, priority: s.Priority, minSize: s.MinSize}, nil
}
