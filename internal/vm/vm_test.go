package vm

import (
	"testing"

	"deflation/internal/apps/apptest"
	"deflation/internal/guestos"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
)

func newDomain(t *testing.T) *hypervisor.Domain {
	t.Helper()
	h, err := hypervisor.NewHost(hypervisor.Config{Name: "h", Capacity: restypes.V(16, 65536, 400, 400)})
	if err != nil {
		t.Fatal(err)
	}
	d, err := h.CreateDomain("vm0", restypes.V(4, 16384, 100, 100), guestos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	d := newDomain(t)
	app := apptest.New("a")
	if _, err := New(nil, app, Config{}); err == nil {
		t.Error("nil domain accepted")
	}
	if _, err := New(d, nil, Config{}); err == nil {
		t.Error("nil app accepted")
	}
	if _, err := New(d, app, Config{MinSize: restypes.V(8, 1, 1, 1)}); err == nil {
		t.Error("min size larger than VM accepted")
	}
}

func TestNewSyncsFootprint(t *testing.T) {
	d := newDomain(t)
	app := apptest.New("a")
	app.RSSMB, app.CacheMB = 4000, 1000
	if _, err := New(d, app, Config{}); err != nil {
		t.Fatal(err)
	}
	if d.Guest().AppRSSMB() != 4000 || d.Guest().PageCacheMB() != 1000 {
		t.Errorf("guest footprint = %g/%g, want 4000/1000",
			d.Guest().AppRSSMB(), d.Guest().PageCacheMB())
	}
}

func TestDeflatable(t *testing.T) {
	d := newDomain(t)
	min := restypes.V(1, 4096, 10, 10)
	v, err := New(d, apptest.New("a"), Config{MinSize: min})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := v.Deflatable(), restypes.V(3, 12288, 90, 90); got != want {
		t.Errorf("Deflatable = %v, want %v", got, want)
	}
}

func TestHighPriorityNotDeflatable(t *testing.T) {
	d := newDomain(t)
	v, err := New(d, apptest.New("a"), Config{Priority: HighPriority})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Deflatable().IsZero() {
		t.Errorf("high-priority deflatable = %v, want zero", v.Deflatable())
	}
	if v.Priority().String() != "high" {
		t.Errorf("priority string = %q", v.Priority().String())
	}
	if LowPriority.String() != "low" {
		t.Errorf("low priority string = %q", LowPriority.String())
	}
}

func TestPreempt(t *testing.T) {
	d := newDomain(t)
	v, err := New(d, apptest.New("a"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Preempted() {
		t.Error("fresh VM reports preempted")
	}
	v.Preempt()
	if !v.Preempted() {
		t.Error("preempted VM reports alive")
	}
}

func TestAccessors(t *testing.T) {
	d := newDomain(t)
	min := restypes.V(1, 4096, 10, 10)
	app := apptest.New("a")
	v, err := New(d, app, Config{MinSize: min})
	if err != nil {
		t.Fatal(err)
	}
	if v.Name() != "vm0" || v.Domain() != d || v.App() != Application(app) {
		t.Error("identity accessors wrong")
	}
	if v.Size() != restypes.V(4, 16384, 100, 100) || v.Allocation() != v.Size() {
		t.Error("size/allocation wrong")
	}
	if v.MinSize() != min {
		t.Error("min size wrong")
	}
	if env := v.Env(); env.VCPUs != 4 || env.GuestMemMB != 16384 {
		t.Errorf("env = %+v", env)
	}
}

// observingApp records environments pushed via ObserveEnv.
type observingApp struct {
	*apptest.App
	seen []hypervisor.Env
}

func (o *observingApp) ObserveEnv(env hypervisor.Env) { o.seen = append(o.seen, env) }

func TestObserveEnv(t *testing.T) {
	d := newDomain(t)
	obs := &observingApp{App: apptest.New("a")}
	v, err := New(d, obs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	v.ObserveEnv()
	if len(obs.seen) != 1 || obs.seen[0].VCPUs != 4 {
		t.Errorf("observed = %+v", obs.seen)
	}
	// Non-observer apps are a no-op.
	v2, err := New(newDomain2(t), apptest.New("b"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	v2.ObserveEnv()
}

func newDomain2(t *testing.T) *hypervisor.Domain {
	t.Helper()
	h, err := hypervisor.NewHost(hypervisor.Config{Name: "h2", Capacity: restypes.V(16, 65536, 400, 400)})
	if err != nil {
		t.Fatal(err)
	}
	d, err := h.CreateDomain("vm1", restypes.V(4, 16384, 100, 100), guestos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestThroughputDelegates(t *testing.T) {
	d := newDomain(t)
	app := apptest.New("a")
	app.ThroughputFn = func(hypervisor.Env) float64 { return 0.42 }
	v, err := New(d, app, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Throughput(); got != 0.42 {
		t.Errorf("Throughput = %g, want 0.42", got)
	}
}

func TestSnapshotRestoreMigratesDeflatedState(t *testing.T) {
	src, err := hypervisor.NewHost(hypervisor.Config{Name: "src", Capacity: restypes.V(16, 65536, 400, 400)})
	if err != nil {
		t.Fatal(err)
	}
	d, err := src.CreateDomain("vm0", restypes.V(4, 16384, 100, 100), guestos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	app := apptest.New("a")
	app.RSSMB, app.CacheMB = 4000, 1000
	v, err := New(d, app, Config{Priority: LowPriority, MinSize: restypes.V(1, 4096, 10, 10)})
	if err != nil {
		t.Fatal(err)
	}
	d.MarkWarm()
	// Deflate to half allocation: the destination must admit by this
	// deflated footprint, not the nominal size.
	if _, err := d.SetAllocation(restypes.V(2, 8192, 50, 50)); err != nil {
		t.Fatal(err)
	}

	snap := v.Snapshot()

	// A destination too small for the nominal size but big enough for the
	// deflated allocation accepts the restore — the deflate-then-migrate
	// placement advantage.
	tight, err := hypervisor.NewHost(hypervisor.Config{Name: "tight", Capacity: restypes.V(3, 12000, 60, 60)})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(tight, snap, app)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "vm0" || r.Priority() != LowPriority || r.MinSize() != v.MinSize() {
		t.Errorf("restored identity diverges: %s/%v/%v", r.Name(), r.Priority(), r.MinSize())
	}
	if r.Allocation() != v.Allocation() {
		t.Errorf("restored alloc %v != source %v", r.Allocation(), v.Allocation())
	}
	if r.Size() != v.Size() {
		t.Errorf("restored nominal size %v != source %v", r.Size(), v.Size())
	}
	if got, want := r.Env().EverTouchedMB, v.Env().EverTouchedMB; got != want {
		t.Errorf("restored ever-touched %g != source %g", got, want)
	}
	if r.Env().OOMKilled {
		t.Error("restore OOM-killed the guest")
	}

	// Duplicate restore on the same host must fail (no double-placement).
	if _, err := Restore(tight, snap, app); err == nil {
		t.Error("duplicate restore accepted")
	}
}
