package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"deflation/internal/restypes"
)

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(4)
	for i := 1; i <= 10; i++ {
		tr.Record(CascadeEvent{VM: fmt.Sprintf("vm-%d", i)})
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	got := tr.Last(0)
	if len(got) != 4 {
		t.Fatalf("Last(0) returned %d events, want 4", len(got))
	}
	for i, e := range got {
		wantVM := fmt.Sprintf("vm-%d", 7+i) // chronological: vm-7 .. vm-10
		if e.VM != wantVM || e.Seq != uint64(7+i) {
			t.Errorf("event[%d] = {vm %s seq %d}, want {vm %s seq %d}", i, e.VM, e.Seq, wantVM, 7+i)
		}
	}
	// Last(n) smaller than retained: the most recent n.
	last2 := tr.Last(2)
	if len(last2) != 2 || last2[0].VM != "vm-9" || last2[1].VM != "vm-10" {
		t.Errorf("Last(2) = %+v, want vm-9, vm-10", last2)
	}
	// Larger than retained: clamped.
	if n := len(tr.Last(100)); n != 4 {
		t.Errorf("Last(100) returned %d, want 4", n)
	}
}

func TestTracerStampsTimeAndSeq(t *testing.T) {
	tr := NewTracer(2)
	tr.Record(CascadeEvent{VM: "a"})
	e := tr.Last(1)[0]
	if e.Seq != 1 {
		t.Errorf("seq = %d, want 1", e.Seq)
	}
	if e.Time.IsZero() {
		t.Error("time not stamped")
	}
}

func TestSinkHTTPEndpoints(t *testing.T) {
	s := NewSink()
	s.Registry.Counter("defl_test_total", "test counter", nil).Add(5)
	// A histogram's snapshot carries a +Inf tail bucket; it must survive the
	// JSON round trip (encoding/json rejects bare ±Inf floats).
	s.Registry.Histogram("defl_test_seconds", "test histogram", []float64{0.1, 1}, nil).Observe(0.5)
	s.Tracer.Record(CascadeEvent{
		Kind: "deflate", VM: "web-1", Node: "s0", Levels: "app+os+hypervisor",
		Target: restypes.V(2, 4096, 0, 0), LevelReached: "hypervisor",
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "defl_test_total 5") {
		t.Errorf("/metrics = %d %q", code, body)
	}

	code, body = get("/metrics?format=json")
	if code != 200 {
		t.Fatalf("/metrics?format=json = %d", code)
	}
	var snaps []MetricSnapshot
	if err := json.Unmarshal([]byte(body), &snaps); err != nil {
		t.Fatalf("bad JSON snapshot: %v", err)
	}
	if len(snaps) != 2 {
		t.Fatalf("JSON snapshot = %+v, want 2 metrics", snaps)
	}
	var hist, ctr *MetricSnapshot
	for i := range snaps {
		switch snaps[i].Type {
		case "histogram":
			hist = &snaps[i]
		case "counter":
			ctr = &snaps[i]
		}
	}
	if ctr == nil || ctr.Value != 5 {
		t.Errorf("counter snapshot = %+v", ctr)
	}
	if hist == nil || hist.Count != 1 || len(hist.Buckets) != 3 {
		t.Fatalf("histogram snapshot = %+v", hist)
	}
	tail := hist.Buckets[len(hist.Buckets)-1]
	if !math.IsInf(tail.UpperBound, 1) || tail.CumulativeCount != 1 {
		t.Errorf("+Inf tail bucket did not round-trip: %+v", tail)
	}

	code, body = get("/debug/trace?n=10")
	if code != 200 {
		t.Fatalf("/debug/trace = %d", code)
	}
	var tr TraceResponse
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("bad trace JSON: %v", err)
	}
	if tr.Total != 1 || len(tr.Events) != 1 || tr.Events[0].VM != "web-1" || tr.Events[0].LevelReached != "hypervisor" {
		t.Errorf("trace = %+v", tr)
	}

	if code, _ := get("/debug/trace?n=bogus"); code != 400 {
		t.Errorf("bad n = %d, want 400", code)
	}

	// pprof index answers (the profiles themselves are exercised by pprof's
	// own tests; we only assert the wiring).
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}
