package telemetry

import (
	"sync"
	"time"

	"deflation/internal/restypes"
)

// CascadeEvent records one cascade deflation (or reinflation) decision —
// which VM was targeted, what each level contributed, how deep the cascade
// had to go, and how injected faults or deadlines shaped the outcome. This
// is the per-decision audit record Fig. 3 implies: the runtime equivalent of
// the offline experiment statistics in internal/metrics.
type CascadeEvent struct {
	// Seq is a monotonically increasing sequence number (1-based); gaps in a
	// scraped window mean the ring buffer wrapped.
	Seq uint64 `json:"seq"`
	// Time is the wall-clock time the decision completed.
	Time time.Time `json:"time"`
	// Kind is "deflate" or "reinflate".
	Kind string `json:"kind"`
	// Node is the server whose controller ran the cascade ("" when the
	// cascade runs outside a named controller).
	Node string `json:"node,omitempty"`
	// VM is the target VM.
	VM string `json:"vm"`
	// Levels are the cascade levels enabled on the controller.
	Levels string `json:"levels"`
	// Target is the requested reclamation (or reinflation) vector.
	Target restypes.Vector `json:"target"`
	// AppReclaimed, OSReclaimed, and HypReclaimed are the per-level
	// contributions.
	AppReclaimed restypes.Vector `json:"app_reclaimed"`
	OSReclaimed  restypes.Vector `json:"os_reclaimed"`
	HypReclaimed restypes.Vector `json:"hyp_reclaimed"`
	// LevelReached is the deepest level that reclaimed a nonzero amount:
	// "app", "os", "hypervisor", or "none".
	LevelReached string `json:"level_reached"`
	// AppFailed and OSFailed report fault-hook outcomes: the level failed
	// (or hung past the budget) and the cascade degraded to the next level.
	AppFailed bool `json:"app_failed,omitempty"`
	OSFailed  bool `json:"os_failed,omitempty"`
	// DeadlineExceeded reports that the controller's deadline truncated the
	// higher levels.
	DeadlineExceeded bool `json:"deadline_exceeded,omitempty"`
	// Shortfall is the portion of the target no enabled level could reclaim.
	Shortfall restypes.Vector `json:"shortfall"`
	// Duration is the end-to-end (simulated) reclamation latency.
	Duration time.Duration `json:"duration_ns"`
	// Err records a cascade error ("" on success).
	Err string `json:"err,omitempty"`
}

// DefaultTraceCapacity is the tracer ring size used by NewSink.
const DefaultTraceCapacity = 1024

// Tracer is a bounded ring buffer of cascade events. Writers pay one short
// mutex-guarded copy; the buffer never grows, so a daemon that deflates
// forever holds memory proportional to the capacity, not the history.
type Tracer struct {
	mu  sync.Mutex
	buf []CascadeEvent
	// next is the slot the next event lands in; len counts filled slots.
	next int
	len  int
	seq  uint64
}

// NewTracer returns a tracer holding the last capacity events (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]CascadeEvent, capacity)}
}

// Record appends an event, stamping its sequence number. The event's Time
// should already be set by the caller (or is stamped here if zero).
func (t *Tracer) Record(e CascadeEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	e.Seq = t.seq
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	t.buf[t.next] = e
	t.next = (t.next + 1) % len(t.buf)
	if t.len < len(t.buf) {
		t.len++
	}
}

// Last returns up to n most recent events in chronological order. n ≤ 0
// means everything retained.
func (t *Tracer) Last(n int) []CascadeEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.len {
		n = t.len
	}
	out := make([]CascadeEvent, 0, n)
	// Oldest retained event lives at next-len (mod cap); we want the last n.
	start := t.next - n
	for start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < n; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}

// Total returns the number of events ever recorded (recorded − retained =
// events the ring dropped).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Len returns the number of events currently retained.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.len
}

// Sink bundles the registry and tracer a component needs to emit telemetry.
// A nil *Sink disables instrumentation entirely (every instrumented code
// path nil-checks its sink), so un-instrumented benchmarks and simulations
// run the exact pre-telemetry code.
type Sink struct {
	Registry *Registry
	Tracer   *Tracer
}

// NewSink returns a sink with a fresh registry and a DefaultTraceCapacity
// tracer.
func NewSink() *Sink {
	return &Sink{Registry: NewRegistry(), Tracer: NewTracer(DefaultTraceCapacity)}
}
