package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests", nil)
	c.Inc()
	c.Add(2.5)
	c.Add(-4) // ignored: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	if again := r.Counter("reqs_total", "requests", nil); again != c {
		t.Fatal("get-or-create returned a different counter instance")
	}

	g := r.Gauge("temp", "temperature", Labels{"zone": "a"})
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
	// Distinct labels → distinct children of the same family.
	g2 := r.Gauge("temp", "temperature", Labels{"zone": "b"})
	if g2 == g {
		t.Fatal("distinct labels returned the same gauge")
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 41.0
	r.GaugeFunc("computed", "computed at scrape", nil, func() float64 { return v })
	v = 42
	snaps := r.Snapshot()
	if len(snaps) != 1 || snaps[0].Value != 42 {
		t.Fatalf("snapshot = %+v, want one gauge of 42", snaps)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 2, 4}, nil)

	// Values exactly on a bound land in that bound's bucket (le is ≤).
	h.Observe(1)
	h.Observe(2)
	h.Observe(4)
	// Below the first bound, between bounds, and past the last bound (+Inf).
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(100)

	bks := h.snapshotBuckets()
	wantCum := []uint64{2, 3, 5, 6} // le=1, le=2, le=4, le=+Inf
	if len(bks) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(bks), len(wantCum))
	}
	for i, b := range bks {
		if b.CumulativeCount != wantCum[i] {
			t.Errorf("bucket[%d] (le=%v) = %d, want %d", i, b.UpperBound, b.CumulativeCount, wantCum[i])
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 1+2+4+0.5+3+100.0; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	if !math.IsInf(bks[len(bks)-1].UpperBound, 1) {
		t.Errorf("last bucket bound = %v, want +Inf", bks[len(bks)-1].UpperBound)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{10, 20, 40}, nil)

	// Empty histogram: NaN.
	if q := h.Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("quantile of empty histogram = %v, want NaN", q)
	}

	// 10 observations in (0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	// Median sits at the boundary of the first bucket.
	if q := h.Quantile(0.5); q != 10 {
		t.Errorf("p50 = %v, want 10", q)
	}
	// p25 interpolates to the middle of the first bucket (rank 5 of 10 in [0,10]).
	if q := h.Quantile(0.25); q != 5 {
		t.Errorf("p25 = %v, want 5", q)
	}
	// p100 = top of the occupied range.
	if q := h.Quantile(1); q != 20 {
		t.Errorf("p100 = %v, want 20", q)
	}
	// Out-of-range q clamps.
	if q := h.Quantile(-1); q != h.Quantile(0) {
		t.Errorf("q=-1 -> %v, want clamp to q=0 (%v)", q, h.Quantile(0))
	}

	// Tail past the last finite bound clamps to that bound.
	h2 := r.Histogram("lat2", "", []float64{1, 2}, nil)
	h2.Observe(50)
	if q := h2.Quantile(0.99); q != 2 {
		t.Errorf("quantile in +Inf bucket = %v, want clamp to 2", q)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.5, 2, 4)
	want := []float64{0.5, 1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

// TestPrometheusExpositionGolden pins the exact text format: HELP/TYPE
// headers, label rendering and escaping, histogram bucket/sum/count lines,
// and deterministic family and child ordering.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("defl_ops_total", "operations", Labels{"op": "deflate"}).Add(3)
	r.Counter("defl_ops_total", "operations", Labels{"op": "reinflate"}).Inc()
	r.Gauge("defl_free_mb", `memory "free"`, nil).Set(1536.5)
	h := r.Histogram("defl_latency_seconds", "cascade latency", []float64{0.5, 1}, Labels{"level": "os"})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(9)

	want := strings.Join([]string{
		`# HELP defl_free_mb memory "free"`,
		`# TYPE defl_free_mb gauge`,
		`defl_free_mb 1536.5`,
		`# HELP defl_latency_seconds cascade latency`,
		`# TYPE defl_latency_seconds histogram`,
		`defl_latency_seconds_bucket{le="0.5",level="os"} 1`,
		`defl_latency_seconds_bucket{le="1",level="os"} 2`,
		`defl_latency_seconds_bucket{le="+Inf",level="os"} 3`,
		`defl_latency_seconds_sum{level="os"} 10`,
		`defl_latency_seconds_count{level="os"} 3`,
		`# HELP defl_ops_total operations`,
		`# TYPE defl_ops_total counter`,
		`defl_ops_total{op="deflate"} 3`,
		`defl_ops_total{op="reinflate"} 1`,
		``,
	}, "\n")
	if got := r.Text(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "", Labels{"path": `a\b"c` + "\n"}).Set(1)
	want := `g{path="a\\b\"c\n"} 1` + "\n" + ""
	got := r.Text()
	if !strings.Contains(got, want) {
		t.Errorf("escaped exposition = %q, want to contain %q", got, want)
	}
}

func TestSnapshotJSONForm(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "help text", Labels{"k": "v"}).Add(2)
	h := r.Histogram("h_seconds", "", []float64{1}, nil)
	h.Observe(0.5)

	snaps := r.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("len(snaps) = %d, want 2", len(snaps))
	}
	c := snaps[0]
	if c.Name != "c_total" || c.Type != "counter" || c.Value != 2 || c.Labels["k"] != "v" || c.Help != "help text" {
		t.Errorf("counter snapshot = %+v", c)
	}
	hs := snaps[1]
	if hs.Type != "histogram" || hs.Count != 1 || hs.Sum != 0.5 || len(hs.Buckets) != 2 {
		t.Errorf("histogram snapshot = %+v", hs)
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "", nil)
}
