// Package telemetry is the runtime observability layer of the control plane:
// a dependency-free metrics registry (atomic counters, gauges, fixed-bucket
// histograms) with Prometheus text exposition and a JSON snapshot form, plus
// a structured tracer that records every cascade deflation decision into a
// bounded ring buffer (tracer.go).
//
// The offline statistics package internal/metrics computes experiment
// results after a run; this package answers the operational question "what
// is this daemon doing right now". Every metric is safe for concurrent
// scrape-while-update: counters, gauges, and histogram buckets are plain
// atomics, so instrumented hot paths pay a few atomic adds and no locks.
//
// Naming follows the Prometheus conventions: a metric family has one name,
// one type, one help string, and any number of label-distinguished children.
// The registry is get-or-create — asking for the same name+labels twice
// returns the same instance — so instrumented code can hold metric pointers
// and never touch a map on the hot path.
package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"deflation/internal/stats"
)

// Labels distinguishes children of one metric family, e.g.
// {"level": "os"}. Label sets are part of metric identity.
type Labels map[string]string

// key serializes labels into a canonical identity string.
func (l Labels) key() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(l[k])
	}
	return b.String()
}

// promLabels renders the {k="v",...} exposition suffix ("" when unlabeled).
func (l Labels) promLabels() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// atomicFloat is a float64 updated with compare-and-swap, so counters can
// accumulate fractional quantities (seconds, megabytes) and still be read
// torn-free during a concurrent scrape.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(delta float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

func (f *atomicFloat) set(v float64)  { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value. Float-valued so that resource
// amounts (cores, MB) accumulate exactly like event counts.
type Counter struct{ v atomicFloat }

// Inc adds 1.
func (c *Counter) Inc() { c.v.add(1) }

// Add adds delta (must be non-negative to keep the counter monotonic;
// negative deltas are ignored).
func (c *Counter) Add(delta float64) {
	if delta > 0 {
		c.v.add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.value() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.v.set(v) }

// Add adjusts the gauge by delta (negative allowed).
func (g *Gauge) Add(delta float64) { g.v.add(delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.value() }

// Histogram is a fixed-bucket cumulative histogram. Buckets are upper bounds
// in ascending order; an implicit +Inf bucket catches the tail. Observations
// are lock-free: one atomic add in the owning bucket plus a CAS on the sum.
type Histogram struct {
	bounds []float64       // ascending upper bounds, +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1; counts[i] = observations ≤ bounds[i]
	count  atomic.Uint64
	sum    atomicFloat
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.value() }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the owning bucket, Prometheus histogram_quantile style. The +Inf
// bucket clamps to the highest finite bound. Returns NaN with no data.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(h.bounds) { // +Inf bucket
				if len(h.bounds) == 0 {
					return math.NaN()
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshotBuckets returns cumulative bucket counts aligned with bounds plus
// the +Inf total.
func (h *Histogram) snapshotBuckets() []BucketSnapshot {
	out := make([]BucketSnapshot, 0, len(h.bounds)+1)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		out = append(out, BucketSnapshot{UpperBound: b, CumulativeCount: cum})
	}
	cum += h.counts[len(h.bounds)].Load()
	out = append(out, BucketSnapshot{UpperBound: math.Inf(1), CumulativeCount: cum})
	return out
}

// DefBuckets are general-purpose wall-clock latency buckets (seconds),
// matching the Prometheus client defaults.
func DefBuckets() []float64 {
	return []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}
}

// ExpBuckets returns n exponential buckets starting at start and growing by
// factor — the shape for simulated reclamation latencies, which span
// milliseconds (CPU unplug) to minutes (swap-bound memory reclamation).
// The constructor is shared with the offline accumulators in
// internal/stats.
func ExpBuckets(start, factor float64, n int) []float64 {
	return stats.ExpBuckets(start, factor, n)
}

// metricKind is the exposition type of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	}
	return "histogram"
}

// child is one label-distinguished instance within a family.
type child struct {
	labels Labels
	ctr    *Counter
	gauge  *Gauge
	gaugeF func() float64
	hist   *Histogram
}

// family is one named metric with its children.
type family struct {
	name     string
	help     string
	kind     metricKind
	children map[string]*child // by Labels.key()
}

// Registry holds metric families. Get-or-create methods are mutex-guarded
// (cold path, at instrumentation setup); reads and writes of the returned
// metrics are lock-free.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind metricKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, children: make(map[string]*child)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %v (was %v)", name, kind, f.kind))
	}
	return f
}

// Counter returns (creating if needed) the counter name with labels.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindCounter)
	k := labels.key()
	if c, ok := f.children[k]; ok {
		return c.ctr
	}
	c := &child{labels: labels, ctr: &Counter{}}
	f.children[k] = c
	return c.ctr
}

// Gauge returns (creating if needed) the gauge name with labels.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGauge)
	k := labels.key()
	if c, ok := f.children[k]; ok {
		return c.gauge
	}
	c := &child{labels: labels, gauge: &Gauge{}}
	f.children[k] = c
	return c.gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time — the
// cheap way to expose state the system already tracks (allocations, VM
// counts) without touching the hot path. The callback must be safe to call
// concurrently with the system's own mutations (take the owning lock).
// Re-registering the same name+labels replaces the callback.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGauge)
	f.children[labels.key()] = &child{labels: labels, gaugeF: fn}
}

// Histogram returns (creating if needed) the histogram name with labels and
// the given ascending bucket upper bounds. Bucket bounds are fixed by the
// first registration of the family.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindHistogram)
	k := labels.key()
	if c, ok := f.children[k]; ok {
		return c.hist
	}
	if len(buckets) == 0 {
		buckets = DefBuckets()
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	f.children[k] = &child{labels: labels, hist: h}
	return h
}

// BucketSnapshot is one cumulative histogram bucket in a snapshot.
type BucketSnapshot struct {
	UpperBound      float64 `json:"le"`
	CumulativeCount uint64  `json:"count"`
}

// bucketWire is the JSON form of a bucket. The upper bound is a string
// because the tail bucket's bound is +Inf, which JSON cannot encode as a
// number (encoding/json rejects it and kills the response mid-stream).
type bucketWire struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// MarshalJSON implements json.Marshaler.
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	return json.Marshal(bucketWire{LE: formatFloat(b.UpperBound), Count: b.CumulativeCount})
}

// UnmarshalJSON implements json.Unmarshaler.
func (b *BucketSnapshot) UnmarshalJSON(data []byte) error {
	var w bucketWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	switch w.LE {
	case "+Inf":
		b.UpperBound = math.Inf(1)
	case "-Inf":
		b.UpperBound = math.Inf(-1)
	default:
		v, err := strconv.ParseFloat(w.LE, 64)
		if err != nil {
			return fmt.Errorf("telemetry: bad bucket bound %q: %w", w.LE, err)
		}
		b.UpperBound = v
	}
	b.CumulativeCount = w.Count
	return nil
}

// MetricSnapshot is the JSON form of one metric child at scrape time.
type MetricSnapshot struct {
	Name   string `json:"name"`
	Type   string `json:"type"`
	Help   string `json:"help,omitempty"`
	Labels Labels `json:"labels,omitempty"`
	// Value is set for counters and gauges.
	Value float64 `json:"value"`
	// Count, Sum, and Buckets are set for histograms.
	Count   uint64           `json:"count,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Snapshot captures every metric in deterministic order (family name, then
// label signature) — the JSON scrape form consumed by deflctl.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []MetricSnapshot
	for _, n := range names {
		f := r.families[n]
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			c := f.children[k]
			s := MetricSnapshot{Name: f.name, Type: f.kind.String(), Help: f.help, Labels: c.labels}
			switch {
			case c.ctr != nil:
				s.Value = c.ctr.Value()
			case c.gauge != nil:
				s.Value = c.gauge.Value()
			case c.gaugeF != nil:
				s.Value = c.gaugeF()
			case c.hist != nil:
				s.Count = c.hist.Count()
				s.Sum = c.hist.Sum()
				s.Buckets = c.hist.snapshotBuckets()
			}
			out = append(out, s)
		}
	}
	return out
}

// Text renders the registry in the Prometheus text exposition format
// (version 0.0.4), deterministically ordered: families by name, children by
// label signature, one # HELP / # TYPE header per family.
func (r *Registry) Text() string {
	var b strings.Builder
	lastFamily := ""
	for _, s := range r.Snapshot() {
		if s.Name != lastFamily {
			if s.Help != "" {
				b.WriteString("# HELP " + s.Name + " " + escapeHelp(s.Help) + "\n")
			}
			b.WriteString("# TYPE " + s.Name + " " + s.Type + "\n")
			lastFamily = s.Name
		}
		if s.Type == "histogram" {
			for _, bk := range s.Buckets {
				b.WriteString(s.Name + "_bucket" + labelsWithLE(s.Labels, bk.UpperBound) + " " + strconv.FormatUint(bk.CumulativeCount, 10) + "\n")
			}
			b.WriteString(s.Name + "_sum" + s.Labels.promLabels() + " " + formatFloat(s.Sum) + "\n")
			b.WriteString(s.Name + "_count" + s.Labels.promLabels() + " " + strconv.FormatUint(s.Count, 10) + "\n")
		} else {
			b.WriteString(s.Name + s.Labels.promLabels() + " " + formatFloat(s.Value) + "\n")
		}
	}
	return b.String()
}

// labelsWithLE renders labels plus the le bucket label.
func labelsWithLE(l Labels, le float64) string {
	merged := make(Labels, len(l)+1)
	for k, v := range l {
		merged[k] = v
	}
	merged["le"] = formatFloat(le)
	return merged.promLabels()
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
