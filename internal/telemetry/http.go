package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Attach mounts the sink's introspection endpoints on mux:
//
//	GET /metrics             — Prometheus text exposition
//	GET /metrics?format=json — JSON snapshot ([]MetricSnapshot)
//	GET /debug/trace?n=K     — last K cascade events as JSON (default 32)
//	GET /debug/pprof/...     — net/http/pprof profiles
//
// The endpoints live on the daemon's existing http.Server, so the existing
// graceful-shutdown path (Server.Shutdown) tears them down with the rest of
// the API.
func (s *Sink) Attach(mux *http.ServeMux) {
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/trace", s.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler returns a standalone handler serving only the sink's endpoints —
// for embedding telemetry into servers that build their own mux.
func (s *Sink) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Attach(mux)
	return mux
}

func (s *Sink) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(s.Registry.Snapshot()); err != nil {
			_ = err // headers already sent
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(s.Registry.Text()))
}

// TraceResponse is the /debug/trace payload.
type TraceResponse struct {
	// Total is the number of events ever recorded; Retained is how many the
	// ring currently holds.
	Total    uint64         `json:"total"`
	Retained int            `json:"retained"`
	Events   []CascadeEvent `json:"events"`
}

func (s *Sink) handleTrace(w http.ResponseWriter, r *http.Request) {
	n := 32
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, "telemetry: bad n: "+q, http.StatusBadRequest)
			return
		}
		n = v
	}
	resp := TraceResponse{
		Total:    s.Tracer.Total(),
		Retained: s.Tracer.Len(),
		Events:   s.Tracer.Last(n),
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		_ = err
	}
}
