package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentScrapeWhileUpdate hammers every metric type from writer
// goroutines while scrapers render text and JSON snapshots and the tracer is
// read — the exact interleaving a live daemon sees when Prometheus scrapes
// mid-deflation. Run under -race this verifies the lock-free update paths;
// the final assertions verify no updates were lost.
func TestConcurrentScrapeWhileUpdate(t *testing.T) {
	s := NewSink()
	const writers = 8
	const perWriter = 2000

	ctr := s.Registry.Counter("race_total", "", nil)
	gauge := s.Registry.Gauge("race_gauge", "", nil)
	hist := s.Registry.Histogram("race_seconds", "", []float64{0.25, 0.5, 0.75}, nil)
	s.Registry.GaugeFunc("race_func", "", nil, func() float64 { return ctr.Value() })

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				ctr.Inc()
				ctr.Add(0.5)
				gauge.Set(float64(i))
				hist.Observe(float64(i%100) / 100)
				s.Tracer.Record(CascadeEvent{VM: fmt.Sprintf("vm-%d-%d", w, i), Kind: "deflate"})
				// Writers also race metric creation (distinct labels).
				s.Registry.Counter("race_labeled_total", "", Labels{"w": fmt.Sprint(w)}).Inc()
			}
		}(w)
	}

	done := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for i := 0; i < 4; i++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = s.Registry.Text()
				_ = s.Registry.Snapshot()
				_ = s.Tracer.Last(16)
				_ = s.Tracer.Total()
				_ = hist.Quantile(0.95)
			}
		}()
	}

	wg.Wait()
	close(done)
	scrapeWG.Wait()

	if got, want := ctr.Value(), float64(writers*perWriter)*1.5; got != want {
		t.Errorf("counter = %v, want %v (lost updates)", got, want)
	}
	if got, want := hist.Count(), uint64(writers*perWriter); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	if got, want := s.Tracer.Total(), uint64(writers*perWriter); got != want {
		t.Errorf("tracer total = %d, want %d", got, want)
	}
	for w := 0; w < writers; w++ {
		c := s.Registry.Counter("race_labeled_total", "", Labels{"w": fmt.Sprint(w)})
		if c.Value() != perWriter {
			t.Errorf("labeled counter w=%d = %v, want %d", w, c.Value(), perWriter)
		}
	}
}
