package interactive

import (
	"deflation/internal/telemetry"
)

// serviceTelemetry instruments a Service with deflation_interactive_*
// metrics. A nil receiver (no sink attached) keeps the un-instrumented
// simulation path exact, matching the repo-wide nil-sink convention.
type serviceTelemetry struct {
	requests, served, dropped *telemetry.Counter
	violations                *telemetry.Counter
	overloadTicks             *telemetry.Counter
	tickMeanMS                *telemetry.Histogram
	offeredRPS                *telemetry.Gauge
	p50, p95, p99             *telemetry.Gauge

	lastViolations float64
	lastServedSum  float64
	lastSumMS      float64
}

// AttachTelemetry registers the service's metrics in sink's registry
// (labels distinguish services; nil sink is a no-op). Call before the
// first Step.
func (s *Service) AttachTelemetry(sink *telemetry.Sink, labels telemetry.Labels) {
	if sink == nil || sink.Registry == nil {
		return
	}
	r := sink.Registry
	s.tel = &serviceTelemetry{
		requests: r.Counter("deflation_interactive_requests_total",
			"Requests offered to the interactive service.", labels),
		served: r.Counter("deflation_interactive_served_total",
			"Requests admitted and served.", labels),
		dropped: r.Counter("deflation_interactive_dropped_total",
			"Requests dropped by admission control or overload.", labels),
		violations: r.Counter("deflation_interactive_slo_violations_total",
			"Requests past the p99 SLO (analytic tail mass) plus drops.", labels),
		overloadTicks: r.Counter("deflation_interactive_overload_ticks_total",
			"Ticks with zero live service capacity.", labels),
		tickMeanMS: r.Histogram("deflation_interactive_tick_latency_ms",
			"Per-tick mean response time (ms).",
			telemetry.ExpBuckets(0.5, 2, 14), labels),
		offeredRPS: r.Gauge("deflation_interactive_offered_rps",
			"Admitted request rate over the last tick.", labels),
		p50: r.Gauge("deflation_interactive_p50_ms",
			"Running interpolated p50 response time (ms).", labels),
		p95: r.Gauge("deflation_interactive_p95_ms",
			"Running interpolated p95 response time (ms).", labels),
		p99: r.Gauge("deflation_interactive_p99_ms",
			"Running interpolated p99 response time (ms).", labels),
	}
}

// observeTick records one tick's worth of counters and refreshes the
// quantile gauges. Nil-safe.
func (t *serviceTelemetry) observeTick(s *Service, offered, served, dropped float64) {
	if t == nil {
		return
	}
	t.requests.Add(offered)
	t.served.Add(served)
	t.dropped.Add(dropped)
	if d := s.ps.Violations() - t.lastViolations; d > 0 {
		t.violations.Add(d)
	}
	t.lastViolations = s.ps.Violations()
	if s.overloadTicks > 0 && served == 0 && offered > 0 {
		t.overloadTicks.Inc()
	}
	// Mean latency of just this tick, from the exact running sums.
	if dServed := s.ps.Served() - t.lastServedSum; dServed > 0 {
		t.tickMeanMS.Observe((s.ps.sumMS - t.lastSumMS) / dServed)
	}
	t.lastServedSum = s.ps.Served()
	t.lastSumMS = s.ps.sumMS
	t.offeredRPS.Set(s.TotalOfferedRPS())
	t.p50.Set(s.ps.Quantile(0.50))
	t.p95.Set(s.ps.Quantile(0.95))
	t.p99.Set(s.ps.Quantile(0.99))
}
