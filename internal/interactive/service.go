package interactive

import (
	"fmt"

	"deflation/internal/apps/webapp"
	"deflation/internal/hypervisor"
)

// ServiceConfig describes one replicated interactive service.
type ServiceConfig struct {
	// Web configures each replica's thread-pool server (webapp.Config
	// defaults apply).
	Web webapp.Config
	// Replicas is the replica count (required, ≥ 1).
	Replicas int
	// Arrivals drives the open-loop offered load; Arrivals.TickSeconds is
	// the service's simulation step.
	Arrivals ArrivalConfig
	// SLOP99MS is the service's p99 latency SLO in milliseconds
	// (default 50).
	SLOP99MS float64
}

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.SLOP99MS == 0 {
		c.SLOP99MS = 50
	}
	return c
}

// Service is a replicated interactive application under open-loop load:
// one webapp server per replica, a deflation-aware balancer splitting each
// tick's arrivals by live capacity, and a pooled PS latency model tracking
// the response-time distribution against the SLO.
//
// The Service does not own VMs; each Step reads the replicas' current
// hypervisor envelopes, so deflation and reinflation between ticks are
// reflected immediately. Not safe for concurrent use.
type Service struct {
	cfg  ServiceConfig
	apps []*webapp.App
	lb   *webapp.LoadBalancer
	gen  *Generator
	ps   *PSModel

	// offered tracks each replica's admitted request rate over the last
	// tick — the measured load the SLO guard deflates against.
	offered []float64

	overloadTicks int
	tel           *serviceTelemetry
}

// NewService builds the replicas and the balancer. The same webapp.Config
// is applied to every replica.
func NewService(cfg ServiceConfig) (*Service, error) {
	cfg = cfg.withDefaults()
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("interactive: need at least 1 replica, got %d", cfg.Replicas)
	}
	apps := make([]*webapp.App, cfg.Replicas)
	for i := range apps {
		a, err := webapp.NewApp(cfg.Web)
		if err != nil {
			return nil, err
		}
		apps[i] = a
	}
	return newServiceWith(cfg, apps)
}

// NewServiceWith wraps existing replica servers (already attached to VMs)
// instead of constructing fresh ones — the cluster-integration path, where
// the webapp.App instances must be the ones the cascade deflates.
func NewServiceWith(cfg ServiceConfig, apps []*webapp.App) (*Service, error) {
	cfg = cfg.withDefaults()
	if len(apps) == 0 {
		return nil, fmt.Errorf("interactive: need at least 1 replica")
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = len(apps)
	}
	if cfg.Replicas != len(apps) {
		return nil, fmt.Errorf("interactive: %d apps for %d configured replicas", len(apps), cfg.Replicas)
	}
	return newServiceWith(cfg, apps)
}

func newServiceWith(cfg ServiceConfig, apps []*webapp.App) (*Service, error) {
	gen, err := NewGenerator(cfg.Arrivals)
	if err != nil {
		return nil, err
	}
	ps, err := NewPSModel(cfg.SLOP99MS)
	if err != nil {
		return nil, err
	}
	lb, err := webapp.NewLoadBalancer(apps)
	if err != nil {
		return nil, err
	}
	return &Service{
		cfg: cfg, apps: apps, lb: lb, gen: gen, ps: ps,
		offered: make([]float64, len(apps)),
	}, nil
}

// Apps returns the replica servers (index-aligned with envs in Step).
func (s *Service) Apps() []*webapp.App { return s.apps }

// OfferedRPS returns replica i's admitted request rate over the last tick
// — the measured load the SLO-targeting deflation policy budgets against.
func (s *Service) OfferedRPS(i int) float64 {
	if i < 0 || i >= len(s.offered) {
		return 0
	}
	return s.offered[i]
}

// TotalOfferedRPS returns the sum of per-replica admitted rates from the
// last tick.
func (s *Service) TotalOfferedRPS() float64 {
	var t float64
	for _, o := range s.offered {
		t += o
	}
	return t
}

// ResetStats discards the accumulated latency distribution and SLO
// accounting, keeping the arrival stream, replica pool, and last-tick
// offered-load measurements intact. Sweeps call it after a warmup window
// so Result() covers only the measurement period.
func (s *Service) ResetStats() {
	ps, err := NewPSModel(s.cfg.SLOP99MS)
	if err != nil {
		// cfg was validated at construction; an invalid SLO cannot appear here.
		panic(err)
	}
	s.ps = ps
	s.overloadTicks = 0
	if s.tel != nil {
		s.tel.lastViolations = 0
		s.tel.lastServedSum = 0
		s.tel.lastSumMS = 0
	}
}

// Step advances one tick: draw the tick's arrivals, split them across
// replicas in proportion to live capacity in envs, and feed each replica's
// share through the PS model. A tick with zero live capacity is an
// explicit overload — every arrival is dropped and counted against the
// SLO.
func (s *Service) Step(envs []hypervisor.Env) error {
	if len(envs) != len(s.apps) {
		return fmt.Errorf("interactive: %d envs for %d replicas", len(envs), len(s.apps))
	}
	n := s.gen.Next()
	tickSec := s.gen.TickSeconds()
	weights, err := s.lb.Weights(envs)
	if err != nil {
		return err
	}
	var live float64
	for _, w := range weights {
		live += w
	}
	if live == 0 {
		// All replicas fully deflated or OOM-killed: nothing can serve.
		s.overloadTicks++
		for i := range s.offered {
			s.offered[i] = 0
		}
		s.ps.Observe(float64(n), baseLatencyMS(s.cfg.Web), 0, tickSec)
		s.tel.observeTick(s, float64(n), 0, float64(n))
		return nil
	}
	var served, dropped float64
	for i, a := range s.apps {
		share := float64(n) * weights[i]
		sv, dr := s.ps.Observe(share, baseLatencyMS(s.cfg.Web), a.CapacityRPS(envs[i]), tickSec)
		s.offered[i] = sv / tickSec
		served += sv
		dropped += dr
	}
	s.tel.observeTick(s, float64(n), served, dropped)
	return nil
}

// baseLatencyMS mirrors webapp's default so the PS model and the server
// agree on the unloaded service time.
func baseLatencyMS(c webapp.Config) float64 {
	if c.BaseLatencyMS != 0 {
		return c.BaseLatencyMS
	}
	return 4
}

// Result summarizes a service run.
type Result struct {
	Requests, Served, Dropped float64
	// Violations counts requests past the p99 SLO (analytic tail mass)
	// plus every dropped request.
	Violations        float64
	ViolationFraction float64
	MeanMS            float64
	P50MS, P95MS      float64
	P99MS             float64
	// SLOViolated is the figure-of-merit: measured p99 above the SLO, or
	// more than 1% of requests past it (equivalent statements when the
	// histogram is exact; both are reported for robustness), or any
	// whole-service overload tick.
	SLOViolated   bool
	OverloadTicks int
}

// Result computes the run summary so far.
func (s *Service) Result() Result {
	r := Result{
		Requests:          s.ps.Requests(),
		Served:            s.ps.Served(),
		Dropped:           s.ps.Dropped(),
		Violations:        s.ps.Violations(),
		ViolationFraction: s.ps.ViolationFraction(),
		MeanMS:            s.ps.MeanMS(),
		P50MS:             s.ps.Quantile(0.50),
		P95MS:             s.ps.Quantile(0.95),
		P99MS:             s.ps.Quantile(0.99),
		OverloadTicks:     s.overloadTicks,
	}
	r.SLOViolated = r.P99MS > s.ps.SLOMS() || r.ViolationFraction > 0.01 || s.overloadTicks > 0
	return r
}
