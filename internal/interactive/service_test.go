package interactive

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"deflation/internal/apps/webapp"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/telemetry"
)

// replicaEnv is a webapp replica's full envelope (4 cores, 16 GB — the
// paper's standard VM).
func replicaEnv(cores float64) hypervisor.Env {
	return hypervisor.Env{
		VCPUs: 4, PhysCores: cores, EffectiveCores: cores,
		GuestMemMB: 16384, ResidentMB: 16384, EverTouchedMB: 16384,
		KernelMemMB: 256, LocalityFactor: 1, DiskMBps: 100, NetMBps: 1250,
	}
}

func steadyService(t *testing.T, replicas int, rps float64) *Service {
	t.Helper()
	s, err := NewService(ServiceConfig{
		Web:      webapp.Config{DeflationAware: true},
		Replicas: replicas,
		Arrivals: ArrivalConfig{Seed: 11, BaseRPS: rps},
		SLOP99MS: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestServiceValidation(t *testing.T) {
	if _, err := NewService(ServiceConfig{Replicas: 0, Arrivals: ArrivalConfig{BaseRPS: 1}}); err == nil {
		t.Error("zero replicas accepted")
	}
	if _, err := NewService(ServiceConfig{Replicas: 1}); err == nil {
		t.Error("zero arrival rate accepted")
	}
	if _, err := NewServiceWith(ServiceConfig{Replicas: 2, Arrivals: ArrivalConfig{BaseRPS: 1}},
		[]*webapp.App{nil}); err == nil || !strings.Contains(err.Error(), "2 configured") {
		t.Errorf("replica/app mismatch accepted: %v", err)
	}
}

func TestServiceStepEnvMismatch(t *testing.T) {
	s := steadyService(t, 2, 1000)
	if err := s.Step([]hypervisor.Env{replicaEnv(4)}); err == nil {
		t.Error("env count mismatch accepted")
	}
}

// TestUndeflatedMatchesWebapp: at zero deflation the service's mean
// latency must match the webapp queueing model at the same per-replica
// load, and essentially everything offered must be served.
func TestUndeflatedMatchesWebapp(t *testing.T) {
	const replicas, rps = 4, 3200.0 // 800 rps per replica on 1600-capacity servers
	s := steadyService(t, replicas, rps)
	envs := []hypervisor.Env{replicaEnv(4), replicaEnv(4), replicaEnv(4), replicaEnv(4)}
	for tick := 0; tick < 400; tick++ {
		if err := s.Step(envs); err != nil {
			t.Fatal(err)
		}
	}
	r := s.Result()
	if r.Dropped != 0 {
		t.Errorf("undeflated service dropped %g of %g", r.Dropped, r.Requests)
	}
	if r.SLOViolated {
		t.Errorf("undeflated service violated SLO: p99 %g ms, violations %g", r.P99MS, r.Violations)
	}
	// The service's measured per-replica load → webapp's own latency model.
	app := s.Apps()[0]
	perReplica := s.OfferedRPS(0)
	want := app.LatencyMS(replicaEnv(4), perReplica)
	// Requests arrive Poisson, so realized ρ fluctuates around nominal;
	// mean-of-means lands within a few percent of the fixed-rate model.
	if math.Abs(r.MeanMS-want)/want > 0.05 {
		t.Errorf("service mean %g ms, webapp model %g ms at %g rps", r.MeanMS, want, perReplica)
	}
	// Throughput consistency: served rate ≈ offered base rate.
	if served := r.Served / (400 * 1); math.Abs(served-rps)/rps > 0.02 {
		t.Errorf("served rate %g, want ≈%g", served, rps)
	}
}

// TestDeflationShiftsTrafficAndRaisesTail: deflating one replica moves
// load away from it and the pooled p99 rises but stays finite.
func TestDeflationShiftsTraffic(t *testing.T) {
	s := steadyService(t, 2, 2000)
	full := replicaEnv(4)
	envs := []hypervisor.Env{full, full}
	for tick := 0; tick < 50; tick++ {
		if err := s.Step(envs); err != nil {
			t.Fatal(err)
		}
	}
	even := s.OfferedRPS(0) / s.OfferedRPS(1)
	if math.Abs(even-1) > 0.1 {
		t.Fatalf("balanced split ratio %g", even)
	}
	// Deflate replica 1 to 1 core; the aware pool shrinks via SelfDeflate.
	s.Apps()[1].SelfDeflate(restypes.V(3, 0, 0, 0))
	envs[1] = replicaEnv(1)
	for tick := 0; tick < 200; tick++ {
		if err := s.Step(envs); err != nil {
			t.Fatal(err)
		}
	}
	if s.OfferedRPS(1) >= s.OfferedRPS(0)*0.5 {
		t.Errorf("deflated replica still serving %g vs %g", s.OfferedRPS(1), s.OfferedRPS(0))
	}
	if r := s.Result(); r.OverloadTicks != 0 {
		t.Errorf("overload ticks %d with one full replica", r.OverloadTicks)
	}
}

// TestServiceOverloadExplicit: a fleet with zero live capacity drops the
// whole offered load explicitly.
func TestServiceOverloadExplicit(t *testing.T) {
	s := steadyService(t, 2, 1000)
	dead := replicaEnv(4)
	dead.OOMKilled = true
	for tick := 0; tick < 10; tick++ {
		if err := s.Step([]hypervisor.Env{dead, dead}); err != nil {
			t.Fatal(err)
		}
	}
	r := s.Result()
	if r.OverloadTicks != 10 {
		t.Errorf("overload ticks %d, want 10", r.OverloadTicks)
	}
	if r.Served != 0 || r.Dropped != r.Requests || r.Requests == 0 {
		t.Errorf("overload accounting: served %g dropped %g of %g", r.Served, r.Dropped, r.Requests)
	}
	if !r.SLOViolated {
		t.Error("total overload not an SLO violation")
	}
	if s.TotalOfferedRPS() != 0 {
		t.Errorf("offered rps %g under total overload", s.TotalOfferedRPS())
	}
}

// TestServiceRunDeterminism: two identical service runs produce exactly
// the same Result struct.
func TestServiceRunDeterminism(t *testing.T) {
	run := func() Result {
		s := steadyService(t, 3, 3000)
		envs := []hypervisor.Env{replicaEnv(4), replicaEnv(2), replicaEnv(4)}
		for tick := 0; tick < 150; tick++ {
			if err := s.Step(envs); err != nil {
				t.Fatal(err)
			}
		}
		return s.Result()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("service runs diverge:\n%#v\n%#v", a, b)
	}
}

func TestServiceTelemetry(t *testing.T) {
	sink := telemetry.NewSink()
	s := steadyService(t, 2, 1000)
	s.AttachTelemetry(sink, telemetry.Labels{"service": "web"})
	envs := []hypervisor.Env{replicaEnv(4), replicaEnv(4)}
	for tick := 0; tick < 20; tick++ {
		if err := s.Step(envs); err != nil {
			t.Fatal(err)
		}
	}
	text := sink.Registry.Text()
	for _, want := range []string{
		"deflation_interactive_requests_total",
		"deflation_interactive_served_total",
		"deflation_interactive_p99_ms",
		"deflation_interactive_tick_latency_ms",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing metric %s", want)
		}
	}
	// Nil sink stays inert.
	s2 := steadyService(t, 2, 1000)
	s2.AttachTelemetry(nil, nil)
	if s2.tel != nil {
		t.Error("nil sink attached telemetry")
	}
}

func TestOfferedRPSOutOfRange(t *testing.T) {
	s := steadyService(t, 1, 100)
	if got := s.OfferedRPS(-1); got != 0 {
		t.Errorf("OfferedRPS(-1) = %g", got)
	}
	if got := s.OfferedRPS(5); got != 0 {
		t.Errorf("OfferedRPS(5) = %g", got)
	}
}
