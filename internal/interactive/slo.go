package interactive

import (
	"math"

	"deflation/internal/apps/webapp"
	"deflation/internal/hypervisor"
	"deflation/internal/perfmodel"
	"deflation/internal/restypes"
	"deflation/internal/substrate"
	"deflation/internal/vm"
)

// SLOGuard is the Fuerst-style SLO-targeting deflation policy: latency-
// sensitive VMs are deflated only down to their measured p99 headroom,
// while unregistered (batch) VMs pass through untouched and keep the
// existing utility-curve cascade. It implements cascade.SLOPolicy.
//
// The guard inverts the service's processor-sharing latency model: given a
// replica's measured offered load λ, the minimum capacity that keeps
// predicted p99 within Headroom×SLO is μ_need = RequiredCapacityRPS(...);
// the thread-pool model then converts μ_need back into cores, and CPU
// deflation is clamped so at least that many cores remain. Memory
// deflation is clamped so the post-shrink resident set (RSS + thread
// stacks + kernel reserve) stays host-resident — swap on an interactive
// path destroys tail latency long before it shows up in the mean.
type SLOGuard struct {
	svc *Service
	web webapp.Config // defaults resolved

	// Headroom scales the SLO the guard plans for (default 0.85): p99 is
	// targeted at Headroom×SLO so profile swings and estimation error
	// burn margin before they burn the SLO.
	Headroom float64

	// MemSlackFraction pads the protected resident set (default 0.10).
	MemSlackFraction float64

	replicas map[string]int
}

// NewSLOGuard builds a guard for svc's replicas. VMs are opted in by
// Register; everything else is left to the utility-curve cascade.
func NewSLOGuard(svc *Service) *SLOGuard {
	return &SLOGuard{
		svc:              svc,
		web:              svc.cfg.Web.WithDefaults(),
		Headroom:         0.85,
		MemSlackFraction: 0.10,
		replicas:         make(map[string]int),
	}
}

// Register marks the named VM as replica i of the guarded service.
func (g *SLOGuard) Register(vmName string, replica int) { g.replicas[vmName] = replica }

// Registered reports whether the guard protects the named VM.
func (g *SLOGuard) Registered(vmName string) bool {
	_, ok := g.replicas[vmName]
	return ok
}

// planRPS returns the offered load the guard budgets replica i for: the
// measured admitted rate of the last tick, floored by the service's
// long-run per-replica share so a quiet instant cannot justify deflating
// below what steady load needs.
func (g *SLOGuard) planRPS(i int) float64 {
	measured := g.svc.OfferedRPS(i)
	steady := g.svc.cfg.Arrivals.BaseRPS / float64(len(g.svc.apps))
	if measured > steady {
		return measured
	}
	return steady
}

// coresFor converts a required service capacity into the cores the
// deflation-aware thread-pool server needs to provide it cleanly (pool
// shrunk to ThreadsPerCore×cores, no oversubscription penalty). This is an
// optimistic lower bound: the cascade's actual mechanisms lose some of the
// remaining allocation to multiplexing, which the planner below models.
func (g *SLOGuard) coresFor(capacityRPS float64) float64 {
	perCore := g.web.ThreadsPerCore * g.web.RPSPerThread
	if perCore <= 0 {
		return 0
	}
	return capacityRPS / perCore
}

// effectiveCoresAfter predicts the envelope's effective cores once the
// cascade reclaims x CPU from a VM currently allocated allocCPU: whole
// vCPUs hot-unplug (⌊x⌋), the hypervisor takes the fractional remainder
// black-box, and vCPUs multiplexed onto fewer physical cores pay the
// lock-holder-preemption penalty. Container replicas have neither
// mechanism: a cgroup CPU quota is fractional and runs on the host
// scheduler, so the post-cascade envelope is exactly the remaining quota —
// the planner must not project VM quantization onto them or it would plan
// too shallow (wasting reclamation) or model phantom LHP cliffs.
func effectiveCoresAfter(env hypervisor.Env, allocCPU, x float64) float64 {
	if env.Kind == substrate.KindContainer {
		phys := allocCPU - x
		if phys <= 0 {
			return 0
		}
		return phys
	}
	unplug := int(math.Floor(x))
	if max := env.VCPUs - 1; unplug > max {
		unplug = max
	}
	if unplug < 0 {
		unplug = 0
	}
	vcpus := float64(env.VCPUs - unplug)
	phys := allocCPU - x
	if phys > vcpus {
		phys = vcpus
	}
	if phys <= 0 {
		return 0
	}
	if vcpus > phys {
		return phys * perfmodel.LockHolderPenalty(vcpus/phys)
	}
	return phys
}

// cpuPlanGrain is the planner's CPU resolution. Erring a grain shallow is
// safe; erring deep is an SLO violation, so the scan accepts the deepest
// grid point whose predicted capacity still clears the requirement.
const cpuPlanGrain = 1.0 / 64

// maxReclaimableCPU returns the deepest CPU reclamation x ≤ want that
// keeps the replica's predicted post-cascade capacity at or above needRPS.
// Capacity is not monotone in x — each whole-vCPU unplug removes a slice
// of lock-holder penalty — so the planner scans rather than bisects.
func maxReclaimableCPU(app *webapp.App, env hypervisor.Env, allocCPU, want, needRPS float64) float64 {
	if want <= 0 {
		return 0
	}
	ok := func(x float64) bool {
		return app.PlannedCapacityRPS(x, effectiveCoresAfter(env, allocCPU, x)) >= needRPS
	}
	if ok(want) {
		return want
	}
	for k := int(math.Floor(want / cpuPlanGrain)); k > 0; k-- {
		if x := float64(k) * cpuPlanGrain; x < want && ok(x) {
			return x
		}
	}
	return 0
}

// ClampTarget implements cascade.SLOPolicy: the portion of target that can
// be reclaimed from v without the service's predicted p99 crossing
// Headroom×SLO. Unregistered VMs get the full target back.
func (g *SLOGuard) ClampTarget(v *vm.VM, target restypes.Vector) restypes.Vector {
	i, ok := g.replicas[v.Name()]
	if !ok {
		return target
	}
	alloc := v.Allocation()
	out := target.ClampNonNegative()

	// CPU: keep enough post-cascade capacity for the measured load. The
	// planner predicts the envelope each candidate reclamation leaves
	// behind (vCPU unplug quantization, multiplexing penalty, pool shrink)
	// and admits the deepest one whose capacity still meets the SLO.
	needRPS := RequiredCapacityRPS(g.web.BaseLatencyMS, g.planRPS(i), g.Headroom*g.svc.ps.SLOMS())
	if math.IsInf(needRPS, 1) || i >= len(g.svc.apps) {
		out.CPU = 0 // no CPU headroom at all
	} else {
		out.CPU = maxReclaimableCPU(g.svc.apps[i], v.Env(), alloc.CPU, out.CPU, needRPS)
	}

	// Memory: protect the post-shrink resident set. Thread stacks are
	// sized for the pool the remaining cores sustain.
	remainingCores := alloc.CPU - out.CPU
	threadsAfter := g.web.ThreadsPerCore * remainingCores
	if max := float64(g.web.Threads); threadsAfter > max {
		threadsAfter = max
	}
	residentMB := (g.web.RSSMB + 2*threadsAfter + v.Env().KernelMemMB) * (1 + g.MemSlackFraction)
	if residentMB >= alloc.MemoryMB {
		out.MemoryMB = 0
	} else if maxMem := alloc.MemoryMB - residentMB; out.MemoryMB > maxMem {
		out.MemoryMB = maxMem
	}
	return out
}

// HeadroomCores reports how many cores replica i could still lose under
// the current measured load — the planning view of the frontier sweep.
func (g *SLOGuard) HeadroomCores(v *vm.VM) float64 {
	i, ok := g.replicas[v.Name()]
	if !ok || i >= len(g.svc.apps) {
		return 0
	}
	needRPS := RequiredCapacityRPS(g.web.BaseLatencyMS, g.planRPS(i), g.Headroom*g.svc.ps.SLOMS())
	if math.IsInf(needRPS, 1) {
		return 0
	}
	alloc := v.Allocation().CPU
	return maxReclaimableCPU(g.svc.apps[i], v.Env(), alloc, alloc, needRPS)
}

var _ interface {
	ClampTarget(v *vm.VM, target restypes.Vector) restypes.Vector
} = (*SLOGuard)(nil)
