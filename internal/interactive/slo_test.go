package interactive

import (
	"fmt"
	"math"
	"testing"

	"deflation/internal/apps/webapp"
	"deflation/internal/cascade"
	"deflation/internal/guestos"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/vm"
)

// guardedFleet builds a host with `replicas` webapp VMs attached to a
// Service and an SLOGuard registered for each, plus one batch VM the guard
// does not know.
func guardedFleet(t *testing.T, replicas int, rps float64) (*Service, *SLOGuard, []*vm.VM, *vm.VM) {
	t.Helper()
	host, err := hypervisor.NewHost(hypervisor.Config{
		Name:     "slo-host",
		Capacity: restypes.V(64, 262144, 6400, 20000),
	})
	if err != nil {
		t.Fatal(err)
	}
	size := restypes.V(4, 16384, 400, 1250)
	apps := make([]*webapp.App, replicas)
	vms := make([]*vm.VM, replicas)
	for i := range apps {
		a, err := webapp.NewApp(webapp.Config{DeflationAware: true})
		if err != nil {
			t.Fatal(err)
		}
		dom, err := host.CreateDomain(fmt.Sprintf("web-%d", i), size, guestos.Config{})
		if err != nil {
			t.Fatal(err)
		}
		dom.MarkWarm()
		v, err := vm.New(dom, a, vm.Config{})
		if err != nil {
			t.Fatal(err)
		}
		apps[i], vms[i] = a, v
	}
	svc, err := NewServiceWith(ServiceConfig{
		Arrivals: ArrivalConfig{Seed: 5, BaseRPS: rps},
		SLOP99MS: 50,
	}, apps)
	if err != nil {
		t.Fatal(err)
	}
	guard := NewSLOGuard(svc)
	for i, v := range vms {
		guard.Register(v.Name(), i)
	}

	bdom, err := host.CreateDomain("batch-0", size, guestos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	bdom.MarkWarm()
	batchApp, err := webapp.NewApp(webapp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := vm.New(bdom, batchApp, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return svc, guard, vms, batch
}

func envsOf(vms []*vm.VM) []hypervisor.Env {
	envs := make([]hypervisor.Env, len(vms))
	for i, v := range vms {
		envs[i] = v.Env()
	}
	return envs
}

// TestGuardClampsToHeadroom: under moderate load the guard permits some
// CPU deflation but never past the cores the measured load needs; the
// post-deflation predicted p99 stays under the planning SLO.
func TestGuardClampsToHeadroom(t *testing.T) {
	svc, guard, vms, _ := guardedFleet(t, 2, 1600) // 800 rps/replica on 1600 capacity
	for tick := 0; tick < 30; tick++ {
		if err := svc.Step(envsOf(vms)); err != nil {
			t.Fatal(err)
		}
	}
	ctrl := cascade.New(cascade.AllLevels())
	ctrl.SetSLOPolicy(guard)

	// Ask for a brutal 3.5-core reclamation; the guard must withhold some.
	rep, err := ctrl.Deflate(vms[0], restypes.V(3.5, 8192, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.SLOWithheld.CPU <= 0 {
		t.Fatalf("nothing withheld: %+v", rep.SLOWithheld)
	}
	remaining := vms[0].Allocation().CPU
	needRPS := RequiredCapacityRPS(4, svc.OfferedRPS(0), guard.Headroom*50)
	needCores := guard.coresFor(needRPS)
	if remaining < needCores-1e-9 {
		t.Errorf("deflated below headroom: %g cores left, need %g", remaining, needCores)
	}
	// The service keeps meeting its SLO on the clamped fleet.
	for tick := 0; tick < 100; tick++ {
		if err := svc.Step(envsOf(vms)); err != nil {
			t.Fatal(err)
		}
	}
	if r := svc.Result(); r.SLOViolated {
		t.Errorf("SLO violated after guarded deflation: p99 %g ms", r.P99MS)
	}
}

// TestGuardPermitsDeflationUnderLightLoad: a lightly loaded replica has
// real headroom and the guard passes a modest target through unclamped.
func TestGuardPermitsDeflationUnderLightLoad(t *testing.T) {
	svc, guard, vms, _ := guardedFleet(t, 2, 400) // 200 rps/replica: ~12% utilization
	for tick := 0; tick < 30; tick++ {
		if err := svc.Step(envsOf(vms)); err != nil {
			t.Fatal(err)
		}
	}
	ctrl := cascade.New(cascade.AllLevels())
	ctrl.SetSLOPolicy(guard)
	rep, err := ctrl.Deflate(vms[0], restypes.V(1, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SLOWithheld.IsZero() {
		t.Errorf("light-load deflation clamped: withheld %v", rep.SLOWithheld)
	}
	if got := vms[0].Allocation().CPU; got != 3 {
		t.Errorf("allocation %g cores, want 3", got)
	}
	if h := guard.HeadroomCores(vms[0]); h <= 0 {
		t.Errorf("headroom %g after 1-core deflation of idle replica", h)
	}
}

// TestGuardIgnoresBatchVMs: unregistered VMs keep the utility-curve
// cascade untouched.
func TestGuardIgnoresBatchVMs(t *testing.T) {
	svc, guard, vms, batch := guardedFleet(t, 2, 1600)
	_ = svc
	ctrl := cascade.New(cascade.AllLevels())
	ctrl.SetSLOPolicy(guard)
	target := restypes.V(3, 8192, 0, 0)
	rep, err := ctrl.Deflate(batch, target)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SLOWithheld.IsZero() {
		t.Errorf("batch VM clamped: %v", rep.SLOWithheld)
	}
	if got := batch.Allocation().CPU; got != 1 {
		t.Errorf("batch allocation %g cores, want full 3-core reclamation", got)
	}
	if guard.Registered(batch.Name()) {
		t.Error("batch VM registered")
	}
	if h := guard.HeadroomCores(batch); h != 0 {
		t.Errorf("headroom %g for unregistered VM", h)
	}
	_ = vms
}

// TestGuardMemoryFloor: memory deflation is clamped so the resident set
// stays host-resident.
func TestGuardMemoryFloor(t *testing.T) {
	svc, guard, vms, _ := guardedFleet(t, 2, 400)
	for tick := 0; tick < 10; tick++ {
		if err := svc.Step(envsOf(vms)); err != nil {
			t.Fatal(err)
		}
	}
	// Ask to reclaim nearly all memory; the guard must keep the working
	// set (1024 RSS + stacks + kernel, plus slack).
	clamped := guard.ClampTarget(vms[0], restypes.V(0, 16000, 0, 0))
	kept := vms[0].Allocation().MemoryMB - clamped.MemoryMB
	if kept < 1024 {
		t.Errorf("only %g MB protected", kept)
	}
	if clamped.MemoryMB >= 16000 {
		t.Error("memory target not clamped")
	}
	// An unachievable SLO zeroes CPU reclamation rather than going NaN.
	svc.ps.sloMS = 1 // below base p99
	out := guard.ClampTarget(vms[0], restypes.V(2, 0, 0, 0))
	if out.CPU != 0 || math.IsNaN(out.MemoryMB) {
		t.Errorf("unachievable SLO clamp: %v", out)
	}
}
