package interactive

import (
	"math"
	"sync"
	"testing"
)

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(ArrivalConfig{}); err == nil {
		t.Error("zero BaseRPS accepted")
	}
	if _, err := NewGenerator(ArrivalConfig{BaseRPS: 100, Amplitude: 1.5}); err == nil {
		t.Error("amplitude ≥ 1 accepted")
	}
	if _, err := NewGenerator(ArrivalConfig{BaseRPS: 100, BurstFactor: 0.5}); err == nil {
		t.Error("burst factor < 1 accepted")
	}
}

func TestProfileRoundTrip(t *testing.T) {
	for _, p := range []Profile{Steady, Diurnal, Bursty} {
		got, err := ProfileFromString(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v → %q → %v, err %v", p, p.String(), got, err)
		}
	}
	if _, err := ProfileFromString("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestRateProfiles(t *testing.T) {
	diurnal, err := NewGenerator(ArrivalConfig{BaseRPS: 1000, Profile: Diurnal, PeriodTicks: 100, Amplitude: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if got := diurnal.Rate(25); math.Abs(got-1400) > 1 {
		t.Errorf("diurnal peak rate = %g, want ≈1400", got)
	}
	if got := diurnal.Rate(75); math.Abs(got-600) > 1 {
		t.Errorf("diurnal trough rate = %g, want ≈600", got)
	}
	if got := diurnal.PeakRPS(); got != 1400 {
		t.Errorf("diurnal peak = %g", got)
	}

	bursty, err := NewGenerator(ArrivalConfig{BaseRPS: 1000, Profile: Bursty, BurstEveryTicks: 50, BurstTicks: 5, BurstFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := bursty.Rate(2); got != 3000 {
		t.Errorf("burst rate = %g, want 3000", got)
	}
	if got := bursty.Rate(10); got != 1000 {
		t.Errorf("base rate = %g, want 1000", got)
	}
}

// drawStream collects the full arrival stream for a config.
func drawStream(t *testing.T, cfg ArrivalConfig, ticks int) []int {
	t.Helper()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, ticks)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// TestGeneratorDeterminism: same seed ⇒ bit-identical arrival stream,
// different seed ⇒ a different one.
func TestGeneratorDeterminism(t *testing.T) {
	for _, profile := range []Profile{Steady, Diurnal, Bursty} {
		cfg := ArrivalConfig{Seed: 42, BaseRPS: 2000, Profile: profile}
		a := drawStream(t, cfg, 500)
		b := drawStream(t, cfg, 500)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: streams diverge at tick %d: %d vs %d", profile, i, a[i], b[i])
			}
		}
		cfg.Seed = 43
		c := drawStream(t, cfg, 500)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%v: different seeds produced identical streams", profile)
		}
	}
}

// TestGeneratorDeterminismUnderParallelism draws the same seeded stream
// from 8 concurrent goroutines, each with its own generator (the sweep
// engine's cell-ownership model), and requires all to be bit-identical to
// the serial stream.
func TestGeneratorDeterminismUnderParallelism(t *testing.T) {
	cfg := ArrivalConfig{Seed: 7, BaseRPS: 5000, Profile: Bursty}
	want := drawStream(t, cfg, 300)
	var wg sync.WaitGroup
	streams := make([][]int, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g, err := NewGenerator(cfg)
			if err != nil {
				return
			}
			s := make([]int, 300)
			for i := range s {
				s[i] = g.Next()
			}
			streams[w] = s
		}(w)
	}
	wg.Wait()
	for w, s := range streams {
		if len(s) != len(want) {
			t.Fatalf("worker %d stream missing", w)
		}
		for i := range want {
			if s[i] != want[i] {
				t.Fatalf("worker %d diverges at tick %d: %d vs %d", w, i, s[i], want[i])
			}
		}
	}
}

// TestGeneratorMeanRate: over many ticks the thinned stream's mean tracks
// the profile's long-run average (law of large numbers; 2% tolerance).
func TestGeneratorMeanRate(t *testing.T) {
	cases := []struct {
		cfg  ArrivalConfig
		want float64
	}{
		{ArrivalConfig{Seed: 3, BaseRPS: 2000}, 2000},
		{ArrivalConfig{Seed: 3, BaseRPS: 2000, Profile: Diurnal, PeriodTicks: 100}, 2000},
		// Bursty long-run mean: base×(1 + (factor−1)×duty cycle).
		{ArrivalConfig{Seed: 3, BaseRPS: 2000, Profile: Bursty, BurstEveryTicks: 50, BurstTicks: 5, BurstFactor: 3}, 2000 * 1.2},
	}
	for _, c := range cases {
		const ticks = 4000
		var total int
		for _, n := range drawStream(t, c.cfg, ticks) {
			total += n
		}
		got := float64(total) / ticks
		if math.Abs(got-c.want)/c.want > 0.02 {
			t.Errorf("%v: mean rate %g, want ≈%g", c.cfg.Profile, got, c.want)
		}
	}
}

// TestPoissonSampler checks both sampler regimes (Knuth and normal
// approximation) for mean and variance ≈ λ.
func TestPoissonSampler(t *testing.T) {
	g, _ := NewGenerator(ArrivalConfig{Seed: 9, BaseRPS: 1})
	for _, mean := range []float64{4, 200} {
		const n = 20000
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			x := float64(poisson(g.rng, mean))
			sum += x
			sum2 += x * x
		}
		m := sum / n
		v := sum2/n - m*m
		if math.Abs(m-mean)/mean > 0.05 {
			t.Errorf("poisson(%g): mean %g", mean, m)
		}
		if math.Abs(v-mean)/mean > 0.10 {
			t.Errorf("poisson(%g): variance %g, want ≈%g", mean, v, mean)
		}
	}
	if got := poisson(g.rng, 0); got != 0 {
		t.Errorf("poisson(0) = %d", got)
	}
}
