package interactive

import (
	"math"
	"testing"
)

func TestPSModelValidation(t *testing.T) {
	if _, err := NewPSModel(0); err == nil {
		t.Error("zero SLO accepted")
	}
}

// TestPSAgainstClosedFormMM1PS drives the model at fixed λ against fixed
// capacity and checks the measured mean sojourn against the closed-form
// M/M/1-PS expectation in utilization terms, E[T] = E[S]/(1−ρ) — for a
// normalized single server (capacity μ = 1/E[S]) this is exactly
// 1/(μ−λ) — and the p99 against the exponential-sojourn tail E[T]·ln(100).
func TestPSAgainstClosedFormMM1PS(t *testing.T) {
	const (
		baseMS = 4.0    // E[S]
		capRPS = 1600.0 // pooled service capacity
	)
	for _, rho := range []float64{0.3, 0.6, 0.9} {
		m, err := NewPSModel(1000) // wide SLO: exercise the distribution, not the clamp
		if err != nil {
			t.Fatal(err)
		}
		lambda := rho * capRPS
		for tick := 0; tick < 200; tick++ {
			m.Observe(lambda, baseMS, capRPS, 1)
		}
		wantMeanMS := baseMS / (1 - rho)
		if got := m.MeanMS(); math.Abs(got-wantMeanMS)/wantMeanMS > 1e-9 {
			t.Errorf("ρ=%g: mean %g ms, closed form %g ms", rho, got, wantMeanMS)
		}
		wantP99 := wantMeanMS * math.Log(100)
		if got := m.Quantile(0.99); math.Abs(got-wantP99)/wantP99 > 0.05 {
			t.Errorf("ρ=%g: p99 %g ms, closed form %g ms", rho, got, wantP99)
		}
		if m.Dropped() != 0 {
			t.Errorf("ρ=%g: dropped %g below admission threshold", rho, m.Dropped())
		}
	}
}

// TestPSNormalizedSingleServer pins the exact M/M/1-PS form: with
// E[S] = 1/μ (base latency the reciprocal of capacity), the measured mean
// equals 1/(μ−λ).
func TestPSNormalizedSingleServer(t *testing.T) {
	const mu = 250.0 // rps
	baseMS := 1000 / mu
	for _, lambda := range []float64{50, 125, 200} {
		m, _ := NewPSModel(1000)
		m.Observe(lambda, baseMS, mu, 1)
		want := 1000 / (mu - lambda) // ms
		if got := m.MeanMS(); math.Abs(got-want)/want > 1e-9 {
			t.Errorf("λ=%g: mean %g ms, want 1/(μ−λ) = %g ms", lambda, got, want)
		}
	}
}

// TestPSUtilizationScaling: the sojourn depends on capacity only through
// utilization (E[T] = E[S]/(1−ρ), the PS insensitivity property) — equal ρ
// at any pool size gives the same mean, and at equal λ more capacity
// strictly lowers it.
func TestPSUtilizationScaling(t *testing.T) {
	mk := func(capRPS, lambda float64) float64 {
		m, _ := NewPSModel(1000)
		m.Observe(lambda, 4, capRPS, 1)
		return m.MeanMS()
	}
	if a, b := mk(1600, 800), mk(3200, 1600); math.Abs(a-b) > 1e-9 {
		t.Errorf("equal-ρ means differ: %g vs %g", a, b)
	}
	if loaded, relaxed := mk(1600, 800), mk(3200, 800); relaxed >= loaded {
		t.Errorf("doubling capacity at fixed λ did not lower mean: %g vs %g", relaxed, loaded)
	}
}

func TestPSAdmissionControlAndViolations(t *testing.T) {
	m, err := NewPSModel(50)
	if err != nil {
		t.Fatal(err)
	}
	// Offered 2× capacity: 0.95×cap served, rest dropped and violating.
	served, dropped := m.Observe(3200, 4, 1600, 1)
	if math.Abs(served-1520) > 1e-9 {
		t.Errorf("served %g, want 1520", served)
	}
	if math.Abs(dropped-1680) > 1e-9 {
		t.Errorf("dropped %g, want 1680", dropped)
	}
	if m.Violations() < dropped {
		t.Errorf("violations %g below dropped %g", m.Violations(), dropped)
	}
	if m.ViolationFraction() <= 0.5 {
		t.Errorf("violation fraction %g, want > 0.5", m.ViolationFraction())
	}
}

func TestPSZeroCapacityDropsAll(t *testing.T) {
	m, _ := NewPSModel(50)
	served, dropped := m.Observe(100, 4, 0, 1)
	if served != 0 || dropped != 100 {
		t.Errorf("served %g dropped %g, want 0/100", served, dropped)
	}
	if m.Violations() != 100 {
		t.Errorf("violations %g, want 100", m.Violations())
	}
	if s2, d2 := m.Observe(0, 4, 1600, 1); s2 != 0 || d2 != 0 {
		t.Errorf("zero requests observed something: %g/%g", s2, d2)
	}
}

func TestPredictAndRequiredCapacityInverse(t *testing.T) {
	const baseMS, sloMS = 4.0, 50.0
	for _, lambda := range []float64{100, 1000, 2000} {
		need := RequiredCapacityRPS(baseMS, lambda, sloMS)
		if math.IsInf(need, 1) {
			t.Fatalf("λ=%g: unachievable SLO", lambda)
		}
		// At exactly the required capacity, predicted p99 ≤ SLO…
		if p99 := PredictP99MS(baseMS, need, lambda); p99 > sloMS+1e-9 {
			t.Errorf("λ=%g: p99 %g at required capacity, above SLO %g", lambda, p99, sloMS)
		}
		// …and 2%% less capacity violates it (tight inverse).
		if p99 := PredictP99MS(baseMS, need*0.98, lambda); !(p99 > sloMS) {
			t.Errorf("λ=%g: p99 %g below SLO with deficient capacity", lambda, p99)
		}
	}
	// SLO below the unloaded p99 is unachievable.
	if !math.IsInf(RequiredCapacityRPS(4, 100, 4*math.Log(100)*0.9), 1) {
		t.Error("unachievable SLO reported achievable")
	}
	// Saturation predicts +Inf.
	if !math.IsInf(PredictP99MS(4, 100, 95), 1) {
		t.Error("saturated replica predicted finite p99")
	}
}
