package interactive

import (
	"fmt"
	"testing"

	"deflation/internal/apps/webapp"
	"deflation/internal/guestos"
	"deflation/internal/restypes"
	"deflation/internal/simcg"
	"deflation/internal/substrate"
	"deflation/internal/vm"
)

// Satellite regression: whole-vCPU quantization and lock-holder preemption
// are hypervisor-substrate artifacts. On a container env the post-cascade
// envelope is exactly the remaining fractional quota.
func TestEffectiveCoresContainerIsFractional(t *testing.T) {
	ctr := substrate.Env{Kind: substrate.KindContainer, VCPUs: 4, PhysCores: 4, EffectiveCores: 4}
	hyp := substrate.Env{VCPUs: 4, PhysCores: 4, EffectiveCores: 4} // zero Kind = hypervisor

	for _, x := range []float64{0.25, 0.5, 1.5, 2.75, 3.5} {
		if got, want := effectiveCoresAfter(ctr, 4, x), 4-x; got != want {
			t.Errorf("container cores after reclaiming %g = %g, want exactly %g", x, got, want)
		}
	}
	// The same fractional reclamation on a VM pays quantization + LHP:
	// 1.5 cores reclaimed unplugs ⌊1.5⌋ = 1 vCPU, leaving 3 vCPUs
	// multiplexed on 2.5 physical cores.
	if got := effectiveCoresAfter(hyp, 4, 1.5); got >= 2.5 {
		t.Errorf("hypervisor cores after 1.5 = %g, want < 2.5 (LHP penalty)", got)
	}
	// Reclaiming everything lands on zero either way.
	if got := effectiveCoresAfter(ctr, 4, 4); got != 0 {
		t.Errorf("container cores after full reclaim = %g", got)
	}
}

// A container-backed interactive fleet under light load: the guard must
// permit fractional CPU deflation (no whole-vCPU rounding) and the clamp's
// memory floor must respect the substrate's RSS-based resize floor through
// vm.Deflatable.
func TestGuardContainerReplicaFractionalDeflation(t *testing.T) {
	host, err := simcg.NewHost(simcg.Config{
		Name:     "slo-cg",
		Capacity: restypes.V(64, 262144, 6400, 20000),
	})
	if err != nil {
		t.Fatal(err)
	}
	size := restypes.V(4, 16384, 400, 1250)
	const replicas = 4
	apps := make([]*webapp.App, replicas)
	vms := make([]*vm.VM, replicas)
	for i := range apps {
		a, err := webapp.NewApp(webapp.Config{DeflationAware: true})
		if err != nil {
			t.Fatal(err)
		}
		inst, err := host.Spawn(fmt.Sprintf("web-%d", i), size, guestos.Config{})
		if err != nil {
			t.Fatal(err)
		}
		v, err := vm.NewOn(inst, a, vm.Config{})
		if err != nil {
			t.Fatal(err)
		}
		apps[i], vms[i] = a, v
	}
	svc, err := NewServiceWith(ServiceConfig{
		Arrivals: ArrivalConfig{Seed: 5, BaseRPS: 40}, // light load on 4 replicas
		SLOP99MS: 50,
	}, apps)
	if err != nil {
		t.Fatal(err)
	}
	guard := NewSLOGuard(svc)
	for i, v := range vms {
		guard.Register(v.Name(), i)
	}
	for i := 0; i < 50; i++ {
		if err := svc.Step(envsOf(vms)); err != nil {
			t.Fatal(err)
		}
	}

	// Ask for a deliberately fractional CPU reclamation: the allowed target
	// must keep a fractional grain, not round down to whole vCPUs.
	target := restypes.Vector{CPU: 1.25}
	allowed := guard.ClampTarget(vms[0], target)
	if allowed.CPU <= 0 {
		t.Fatalf("light-load clamp allowed no CPU: %v", allowed)
	}
	if allowed.CPU != target.CPU {
		t.Errorf("allowed CPU = %g, want the full fractional %g under light load", allowed.CPU, target.CPU)
	}
	// Applying it leaves a fractional quota — and exactly that many
	// effective cores (no LHP on containers).
	if _, err := vms[0].Instance().SetAllocation(size.Sub(allowed)); err != nil {
		t.Fatal(err)
	}
	env := vms[0].Env()
	if env.EffectiveCores != size.CPU-allowed.CPU {
		t.Errorf("effective cores = %g, want %g", env.EffectiveCores, size.CPU-allowed.CPU)
	}

	// The guard's memory clamp must never exceed what the substrate floor
	// allows: the deflatable memory already excludes RSS + overhead.
	deepMem := restypes.Vector{MemoryMB: size.MemoryMB}
	allowedMem := guard.ClampTarget(vms[1], deepMem)
	if maxSafe := vms[1].Deflatable().MemoryMB; allowedMem.MemoryMB > maxSafe {
		t.Errorf("clamp allowed %g MB, above the %g MB substrate floor allows", allowedMem.MemoryMB, maxSafe)
	}
}
