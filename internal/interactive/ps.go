package interactive

import (
	"fmt"
	"math"

	"deflation/internal/stats"
)

// The processor-sharing latency model. Each replica serves its admitted
// request rate λ from a service capacity μ (requests/second, derived from
// the replica's live deflated envelope via the webapp thread-pool model).
// Under M/G/1-PS the mean sojourn time depends on the service distribution
// only through its mean (the PS insensitivity property):
//
//	E[T] = E[S] / (1 − ρ),  ρ = λ/μ,  E[S] = base service time
//
// which equals the closed-form M/M/1-PS sojourn 1/(μ − λ). The sojourn
// distribution is approximated as exponential with that mean — exact for
// M/M/1-FCFS and the standard heavy-traffic shape for PS tails — and each
// tick's worth of requests is spread across the latency histogram by CDF
// mass: analytic, deterministic, and allocation-free regardless of how
// many requests the tick carries.

// latencyBuckets spans 0.25 ms to ≈ 28 s in 5% steps — fine enough that
// interpolated p99s are within a few percent of the analytic value.
func latencyBuckets() []float64 { return stats.ExpBuckets(0.25, 1.155, 81) }

// PSModel accumulates the response-time distribution of one service (all
// replicas pooled) and its SLO accounting.
type PSModel struct {
	sloMS float64
	hist  *stats.Stream

	requests   float64 // offered
	served     float64
	dropped    float64 // admission-control rejections + overload
	violations float64 // served past the SLO, plus every drop
	sumMS      float64 // exact Σ served·E[T] (the histogram is for quantiles)
}

// NewPSModel builds a model tracking violations of the given p99 SLO
// (milliseconds).
func NewPSModel(sloMS float64) (*PSModel, error) {
	if sloMS <= 0 {
		return nil, fmt.Errorf("interactive: SLO must be positive, got %g ms", sloMS)
	}
	h, err := stats.NewStream(latencyBuckets())
	if err != nil {
		return nil, err
	}
	return &PSModel{sloMS: sloMS, hist: h}, nil
}

// Observe records one replica-tick: requests offered to a replica with
// base service latency baseMS and live capacity capacityRPS over a tick of
// tickSec seconds. Requests beyond 95% of capacity are dropped (admission
// control — an open-loop queue past saturation has no steady state), and
// every dropped request counts as an SLO violation. Returns served and
// dropped counts.
func (m *PSModel) Observe(requests, baseMS, capacityRPS, tickSec float64) (served, dropped float64) {
	if requests <= 0 {
		return 0, 0
	}
	m.requests += requests
	if capacityRPS <= 0 || baseMS <= 0 || tickSec <= 0 {
		m.dropped += requests
		m.violations += requests
		return 0, requests
	}
	offeredRPS := requests / tickSec
	admittedRPS := offeredRPS
	if max := 0.95 * capacityRPS; admittedRPS > max {
		admittedRPS = max
	}
	served = admittedRPS * tickSec
	dropped = requests - served
	rho := admittedRPS / capacityRPS
	meanMS := baseMS / (1 - rho)

	// Spread the served requests across the histogram buckets by the
	// exponential CDF, and count the analytic tail past the SLO as
	// violations.
	lo := 0.0
	for _, b := range m.hist.Bounds() {
		mass := served * (math.Exp(-lo/meanMS) - math.Exp(-b/meanMS))
		m.hist.AddWeighted((lo+b)/2, mass)
		lo = b
	}
	// Whatever the finite buckets did not cover lands mid-tail.
	if tail := served * math.Exp(-lo/meanMS); tail > 0 {
		m.hist.AddWeighted(lo+meanMS, tail)
	}
	m.served += served
	m.dropped += dropped
	m.sumMS += served * meanMS
	m.violations += dropped + served*math.Exp(-m.sloMS/meanMS)
	return served, dropped
}

// SLOMS returns the model's p99 target in milliseconds.
func (m *PSModel) SLOMS() float64 { return m.sloMS }

// Requests, Served, Dropped, Violations return the running totals.
func (m *PSModel) Requests() float64   { return m.requests }
func (m *PSModel) Served() float64     { return m.served }
func (m *PSModel) Dropped() float64    { return m.dropped }
func (m *PSModel) Violations() float64 { return m.violations }

// MeanMS returns the exact mean sojourn over all served requests.
func (m *PSModel) MeanMS() float64 {
	if m.served == 0 {
		return 0
	}
	return m.sumMS / m.served
}

// Quantile returns the interpolated latency quantile in milliseconds over
// every served request so far.
func (m *PSModel) Quantile(q float64) float64 { return m.hist.Quantile(q) }

// ViolationFraction returns violations over offered requests (0 when no
// requests were offered).
func (m *PSModel) ViolationFraction() float64 {
	if m.requests == 0 {
		return 0
	}
	return m.violations / m.requests
}

// PredictP99MS returns the model's analytic p99 for a replica serving
// offeredRPS at capacityRPS with base latency baseMS: the exponential
// sojourn approximation gives p99 = E[T]·ln(100). Saturated or dead
// replicas predict +Inf. This is the forward model the SLO-targeting
// deflation policy inverts.
func PredictP99MS(baseMS, capacityRPS, offeredRPS float64) float64 {
	if capacityRPS <= 0 || offeredRPS >= 0.95*capacityRPS {
		return math.Inf(1)
	}
	rho := offeredRPS / capacityRPS
	return baseMS / (1 - rho) * math.Log(100)
}

// RequiredCapacityRPS inverts PredictP99MS: the minimum replica capacity
// that keeps predicted p99 at or under sloMS while serving offeredRPS.
// Returns +Inf when the SLO is unachievable even unloaded (sloMS below the
// base p99).
func RequiredCapacityRPS(baseMS, offeredRPS, sloMS float64) float64 {
	if offeredRPS <= 0 {
		offeredRPS = 0
	}
	headroom := 1 - baseMS*math.Log(100)/sloMS
	if headroom <= 0 {
		return math.Inf(1)
	}
	need := offeredRPS / headroom
	// Admission control rejects past 95% utilization; keep capacity high
	// enough that the offered load is actually admitted.
	if floor := offeredRPS / 0.95; need < floor {
		need = floor
	}
	return need
}
