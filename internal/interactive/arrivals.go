// Package interactive models the open-loop, SLO-driven workload class the
// deflation paper's batch-shaped applications leave out: replicated
// request-serving services under heavy user traffic (Fuerst & Shenoy,
// "Cloud-scale VM Deflation for Running Interactive Applications on
// Transient Servers").
//
// The package has three layers:
//
//   - an open-loop arrival generator (this file): seeded Poisson thinning
//     against diurnal/bursty rate profiles, producing per-tick arrival
//     counts — millions of simulated user requests per sweep cell with no
//     per-request allocation;
//   - a processor-sharing latency model (ps.go): each replica is an
//     M/G/1-PS queue whose service capacity is derived from its live
//     deflated CPU/memory envelope, spreading every tick's requests across
//     a streaming latency histogram analytically;
//   - a replicated Service (service.go) with a deflation-aware balancer
//     and tracked p50/p95/p99 against a latency SLO, plus an SLOGuard
//     (slo.go) that plugs into cascade deflation so latency-sensitive VMs
//     are deflated only down to measured p99 headroom.
package interactive

import (
	"fmt"
	"math"
	"math/rand"
)

// Profile selects the shape of the offered arrival rate over time.
type Profile int

const (
	// Steady offers BaseRPS at every tick.
	Steady Profile = iota
	// Diurnal modulates BaseRPS sinusoidally with the configured period
	// and amplitude — the day/night cycle of a user-facing service.
	Diurnal
	// Bursty offers BaseRPS with periodic multiplicative bursts — flash
	// crowds on top of the base load.
	Bursty
)

// String names the profile for tables and telemetry labels.
func (p Profile) String() string {
	switch p {
	case Diurnal:
		return "diurnal"
	case Bursty:
		return "bursty"
	default:
		return "steady"
	}
}

// ProfileFromString parses a profile name (the inverse of String).
func ProfileFromString(s string) (Profile, error) {
	switch s {
	case "steady", "":
		return Steady, nil
	case "diurnal":
		return Diurnal, nil
	case "bursty":
		return Bursty, nil
	}
	return Steady, fmt.Errorf("interactive: unknown arrival profile %q", s)
}

// ArrivalConfig parameterizes the open-loop generator. The zero value of
// every field has a sensible default; only BaseRPS is required.
type ArrivalConfig struct {
	// Seed makes the arrival stream reproducible; same seed, same
	// bit-identical stream (default 1).
	Seed int64
	// BaseRPS is the long-run mean offered request rate.
	BaseRPS float64
	// Profile shapes the instantaneous rate (default Steady).
	Profile Profile
	// TickSeconds is the generator's interval length (default 1s).
	TickSeconds float64
	// PeriodTicks is the diurnal period (default 240 ticks).
	PeriodTicks int
	// Amplitude is the diurnal modulation depth in (0, 1) (default 0.4):
	// rate swings between Base×(1−A) and Base×(1+A).
	Amplitude float64
	// BurstEveryTicks and BurstTicks place a burst of BurstTicks length
	// every BurstEveryTicks (defaults 60 and 6).
	BurstEveryTicks, BurstTicks int
	// BurstFactor multiplies the base rate during bursts (default 3).
	BurstFactor float64
}

func (c ArrivalConfig) withDefaults() ArrivalConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TickSeconds == 0 {
		c.TickSeconds = 1
	}
	if c.PeriodTicks == 0 {
		c.PeriodTicks = 240
	}
	if c.Amplitude == 0 {
		c.Amplitude = 0.4
	}
	if c.BurstEveryTicks == 0 {
		c.BurstEveryTicks = 60
	}
	if c.BurstTicks == 0 {
		c.BurstTicks = 6
	}
	if c.BurstFactor == 0 {
		c.BurstFactor = 3
	}
	return c
}

// Generator produces per-tick arrival counts for a non-homogeneous Poisson
// process by thinning: each tick draws the homogeneous count at the
// profile's peak rate, then accepts each arrival with probability
// rate(t)/peak. The generator is deterministic per seed and allocates
// nothing per request. Not safe for concurrent use — each sweep cell owns
// its own generator.
type Generator struct {
	cfg  ArrivalConfig
	rng  *rand.Rand
	tick int
}

// NewGenerator validates cfg and seeds the stream.
func NewGenerator(cfg ArrivalConfig) (*Generator, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseRPS <= 0 {
		return nil, fmt.Errorf("interactive: BaseRPS must be positive, got %g", cfg.BaseRPS)
	}
	if cfg.Amplitude < 0 || cfg.Amplitude >= 1 {
		return nil, fmt.Errorf("interactive: diurnal amplitude %g outside [0, 1)", cfg.Amplitude)
	}
	if cfg.BurstFactor < 1 {
		return nil, fmt.Errorf("interactive: burst factor %g below 1", cfg.BurstFactor)
	}
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Rate returns the instantaneous offered rate Λ(t) at the given tick.
func (g *Generator) Rate(tick int) float64 {
	c := g.cfg
	switch c.Profile {
	case Diurnal:
		phase := 2 * math.Pi * float64(tick%c.PeriodTicks) / float64(c.PeriodTicks)
		return c.BaseRPS * (1 + c.Amplitude*math.Sin(phase))
	case Bursty:
		if tick%c.BurstEveryTicks < c.BurstTicks {
			return c.BaseRPS * c.BurstFactor
		}
		return c.BaseRPS
	default:
		return c.BaseRPS
	}
}

// PeakRPS returns the profile's maximum instantaneous rate — the
// homogeneous rate the thinning draws against.
func (g *Generator) PeakRPS() float64 {
	c := g.cfg
	switch c.Profile {
	case Diurnal:
		return c.BaseRPS * (1 + c.Amplitude)
	case Bursty:
		return c.BaseRPS * c.BurstFactor
	default:
		return c.BaseRPS
	}
}

// Tick returns the index of the next tick Next will generate.
func (g *Generator) Tick() int { return g.tick }

// TickSeconds returns the configured interval length.
func (g *Generator) TickSeconds() float64 { return g.cfg.TickSeconds }

// Next returns the arrival count for the current tick and advances the
// clock: a Poisson draw at the peak rate, thinned to the instantaneous
// rate by per-arrival acceptance.
func (g *Generator) Next() int {
	peakMean := g.PeakRPS() * g.cfg.TickSeconds
	n := poisson(g.rng, peakMean)
	p := g.Rate(g.tick) / g.PeakRPS()
	g.tick++
	if p >= 1 {
		return n
	}
	// Thin: accept each arrival of the peak-rate process independently
	// with probability Λ(t)/Λpeak. One uniform per candidate arrival, no
	// allocation.
	kept := 0
	for i := 0; i < n; i++ {
		if g.rng.Float64() < p {
			kept++
		}
	}
	return kept
}

// poisson draws from Poisson(mean). Small means use Knuth's product
// method (exact); large means use the normal approximation with continuity
// correction, which is standard for rate-level simulation and keeps the
// draw O(1) instead of O(mean). Both paths are deterministic for a seeded
// rng.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 64 {
		l := math.Exp(-mean)
		k, p := 0, 1.0
		for p > l {
			k++
			p *= rng.Float64()
		}
		return k - 1
	}
	n := math.Round(mean + math.Sqrt(mean)*rng.NormFloat64())
	if n < 0 {
		return 0
	}
	return int(n)
}
