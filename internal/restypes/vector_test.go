package restypes

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{CPU: "cpu", Memory: "memory", Disk: "disk", Net: "net"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("invalid kind string = %q", got)
	}
}

func TestAtWithRoundTrip(t *testing.T) {
	v := V(4, 16384, 100, 200)
	for _, k := range Kinds() {
		got := v.With(k, 7).At(k)
		if got != 7 {
			t.Errorf("With/At roundtrip for %v: got %g, want 7", k, got)
		}
	}
}

func TestAtPanicsOnInvalidKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(NumKinds) did not panic")
		}
	}()
	V(1, 1, 1, 1).At(NumKinds)
}

func TestArithmetic(t *testing.T) {
	a, b := V(1, 2, 3, 4), V(4, 3, 2, 1)
	if got := a.Add(b); got != V(5, 5, 5, 5) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-3, -1, 1, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Sub(b).ClampNonNegative(); got != V(0, 0, 1, 3) {
		t.Errorf("ClampNonNegative = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Mul(b); got != V(4, 6, 6, 4) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Min(b); got != V(1, 2, 2, 1) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != V(4, 3, 3, 4) {
		t.Errorf("Max = %v", got)
	}
	if got := a.Dot(b); got != 4+6+6+4 {
		t.Errorf("Dot = %g", got)
	}
}

func TestCosineSimilarity(t *testing.T) {
	a := V(1, 0, 0, 0)
	if got := a.CosineSimilarity(a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self similarity = %g, want 1", got)
	}
	b := V(0, 1, 0, 0)
	if got := a.CosineSimilarity(b); got != 0 {
		t.Errorf("orthogonal similarity = %g, want 0", got)
	}
	if got := a.CosineSimilarity(Vector{}); got != 0 {
		t.Errorf("zero-vector similarity = %g, want 0", got)
	}
	// Scaled vectors have identical similarity: the fitness is shape-based.
	d := V(2, 8192, 10, 10)
	if got, want := d.CosineSimilarity(d.Scale(3)), 1.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("scaled similarity = %g, want 1", got)
	}
}

func TestFits(t *testing.T) {
	cap := V(4, 16384, 100, 100)
	if !V(4, 16384, 100, 100).Fits(cap) {
		t.Error("exact fit rejected")
	}
	if !V(2, 1024, 50, 50).Fits(cap) {
		t.Error("smaller vector rejected")
	}
	if V(4.1, 1, 1, 1).Fits(cap) {
		t.Error("oversized CPU accepted")
	}
	if V(1, 1, 1, 101).Fits(cap) {
		t.Error("oversized net accepted")
	}
}

func TestFractionOf(t *testing.T) {
	v := V(2, 8192, 0, 50)
	w := V(4, 16384, 0, 100)
	got := v.FractionOf(w)
	want := V(0.5, 0.5, 0, 0.5)
	if got != want {
		t.Errorf("FractionOf = %v, want %v", got, want)
	}
	if f := V(1, 0, 0, 0).FractionOf(Vector{}); !math.IsInf(f.CPU, 1) {
		t.Errorf("nonzero/zero fraction = %v, want +Inf", f.CPU)
	}
}

func TestMaxComponentSumUniform(t *testing.T) {
	if got := V(1, 9, 3, 4).MaxComponent(); got != 9 {
		t.Errorf("MaxComponent = %g", got)
	}
	if got := V(1, 2, 3, 4).Sum(); got != 10 {
		t.Errorf("Sum = %g", got)
	}
	if got := Uniform(0.5); got != V(0.5, 0.5, 0.5, 0.5) {
		t.Errorf("Uniform = %v", got)
	}
}

func TestPositiveIsZero(t *testing.T) {
	if !V(1, 1, 1, 1).Positive() {
		t.Error("all-positive vector not Positive")
	}
	if V(1, 0, 1, 1).Positive() {
		t.Error("vector with a zero component is Positive")
	}
	if !(Vector{}).IsZero() {
		t.Error("zero vector not IsZero")
	}
	if V(0, 0, 0, 1).IsZero() {
		t.Error("nonzero vector IsZero")
	}
}

func TestString(t *testing.T) {
	got := V(4, 16384, 100, 100).String()
	want := "{cpu:4 mem:16384MB disk:100MB/s net:100MB/s}"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// small constrains quick-check inputs to a well-conditioned range.
func small(x float64) float64 { return math.Mod(math.Abs(x), 1024) }

func sanitize(v Vector) Vector {
	return V(small(v.CPU), small(v.MemoryMB), small(v.DiskMBps), small(v.NetMBps))
}

func TestQuickAddSubInverse(t *testing.T) {
	f := func(a, b Vector) bool {
		a, b = sanitize(a), sanitize(b)
		got := a.Add(b).Sub(b)
		const eps = 1e-9
		return math.Abs(got.CPU-a.CPU) < eps && math.Abs(got.MemoryMB-a.MemoryMB) < eps &&
			math.Abs(got.DiskMBps-a.DiskMBps) < eps && math.Abs(got.NetMBps-a.NetMBps) < eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMinFitsMax(t *testing.T) {
	f := func(a, b Vector) bool {
		a, b = sanitize(a), sanitize(b)
		return a.Min(b).Fits(a) && a.Min(b).Fits(b) && a.Fits(a.Max(b)) && b.Fits(a.Max(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCosineBounds(t *testing.T) {
	f := func(a, b Vector) bool {
		a, b = sanitize(a), sanitize(b)
		c := a.CosineSimilarity(b)
		// All components are non-negative after sanitize, so cosine ∈ [0,1].
		return c >= -1e-12 && c <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickClampNonNegative(t *testing.T) {
	f := func(a, b Vector) bool {
		d := sanitize(a).Sub(sanitize(b)).ClampNonNegative()
		return d.CPU >= 0 && d.MemoryMB >= 0 && d.DiskMBps >= 0 && d.NetMBps >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	// Vectors cross the REST control plane; the wire format is stable
	// exported-field JSON.
	v := V(4, 16384, 100, 1250)
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"CPU":4,"MemoryMB":16384,"DiskMBps":100,"NetMBps":1250}`
	if string(data) != want {
		t.Errorf("wire form = %s, want %s", data, want)
	}
	var back Vector
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != v {
		t.Errorf("round trip = %v, want %v", back, v)
	}
}
