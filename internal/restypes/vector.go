// Package restypes defines the multi-dimensional resource quantities that
// deflation operates on. A resource allocation is a Vector over four
// dimensions — CPU cores, memory, disk bandwidth, and network bandwidth —
// matching the (CPU, Memory, Disk, Network) reclamation-target vector of the
// paper's cascade-deflation pseudo-code (Fig. 3).
package restypes

import (
	"fmt"
	"math"
)

// Kind identifies one resource dimension of a Vector.
type Kind int

// The four resource dimensions managed by deflation.
const (
	CPU Kind = iota
	Memory
	Disk
	Net
	NumKinds // number of dimensions; not itself a Kind
)

// String returns the lowercase dimension name.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "cpu"
	case Memory:
		return "memory"
	case Disk:
		return "disk"
	case Net:
		return "net"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds lists every resource dimension, in canonical order.
func Kinds() [NumKinds]Kind { return [NumKinds]Kind{CPU, Memory, Disk, Net} }

// Vector is a resource quantity: CPU in cores, memory in MB, and disk and
// network bandwidth in MB/s. The zero Vector is an empty allocation.
//
// Vectors are small value types; all arithmetic returns new values.
type Vector struct {
	CPU      float64 // cores (fractional cores are allowed)
	MemoryMB float64 // mebibytes
	DiskMBps float64 // disk bandwidth, MB/s
	NetMBps  float64 // network bandwidth, MB/s
}

// V is shorthand for constructing a Vector.
func V(cpu, memMB, diskMBps, netMBps float64) Vector {
	return Vector{CPU: cpu, MemoryMB: memMB, DiskMBps: diskMBps, NetMBps: netMBps}
}

// At returns the component for dimension k.
func (v Vector) At(k Kind) float64 {
	switch k {
	case CPU:
		return v.CPU
	case Memory:
		return v.MemoryMB
	case Disk:
		return v.DiskMBps
	case Net:
		return v.NetMBps
	}
	panic(fmt.Sprintf("restypes: invalid kind %d", int(k)))
}

// With returns a copy of v with dimension k set to x.
func (v Vector) With(k Kind, x float64) Vector {
	switch k {
	case CPU:
		v.CPU = x
	case Memory:
		v.MemoryMB = x
	case Disk:
		v.DiskMBps = x
	case Net:
		v.NetMBps = x
	default:
		panic(fmt.Sprintf("restypes: invalid kind %d", int(k)))
	}
	return v
}

// Add returns v + w element-wise.
func (v Vector) Add(w Vector) Vector {
	return Vector{v.CPU + w.CPU, v.MemoryMB + w.MemoryMB, v.DiskMBps + w.DiskMBps, v.NetMBps + w.NetMBps}
}

// Sub returns v - w element-wise. Components may go negative; use
// ClampNonNegative when a deficit is not meaningful.
func (v Vector) Sub(w Vector) Vector {
	return Vector{v.CPU - w.CPU, v.MemoryMB - w.MemoryMB, v.DiskMBps - w.DiskMBps, v.NetMBps - w.NetMBps}
}

// Scale returns v scaled by s element-wise.
func (v Vector) Scale(s float64) Vector {
	return Vector{v.CPU * s, v.MemoryMB * s, v.DiskMBps * s, v.NetMBps * s}
}

// Mul returns the element-wise (Hadamard) product of v and w.
func (v Vector) Mul(w Vector) Vector {
	return Vector{v.CPU * w.CPU, v.MemoryMB * w.MemoryMB, v.DiskMBps * w.DiskMBps, v.NetMBps * w.NetMBps}
}

// Min returns the element-wise minimum of v and w.
func (v Vector) Min(w Vector) Vector {
	return Vector{math.Min(v.CPU, w.CPU), math.Min(v.MemoryMB, w.MemoryMB),
		math.Min(v.DiskMBps, w.DiskMBps), math.Min(v.NetMBps, w.NetMBps)}
}

// Max returns the element-wise maximum of v and w.
func (v Vector) Max(w Vector) Vector {
	return Vector{math.Max(v.CPU, w.CPU), math.Max(v.MemoryMB, w.MemoryMB),
		math.Max(v.DiskMBps, w.DiskMBps), math.Max(v.NetMBps, w.NetMBps)}
}

// ClampNonNegative returns v with every negative component replaced by zero.
func (v Vector) ClampNonNegative() Vector { return v.Max(Vector{}) }

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) float64 {
	return v.CPU*w.CPU + v.MemoryMB*w.MemoryMB + v.DiskMBps*w.DiskMBps + v.NetMBps*w.NetMBps
}

// Norm returns the Euclidean magnitude of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// CosineSimilarity returns the cosine of the angle between v and w. This is
// the placement "fitness" of §5: fitness(D, A) = A·D / (|A||D|). It returns
// 0 when either vector is zero.
func (v Vector) CosineSimilarity(w Vector) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	return v.Dot(w) / (nv * nw)
}

// Fits reports whether v fits within w, i.e. every component of v is at most
// the corresponding component of w (with a tiny epsilon for float error).
func (v Vector) Fits(w Vector) bool {
	const eps = 1e-9
	return v.CPU <= w.CPU+eps && v.MemoryMB <= w.MemoryMB+eps &&
		v.DiskMBps <= w.DiskMBps+eps && v.NetMBps <= w.NetMBps+eps
}

// IsZero reports whether every component is exactly zero.
func (v Vector) IsZero() bool { return v == Vector{} }

// Positive reports whether every component is strictly positive.
func (v Vector) Positive() bool {
	return v.CPU > 0 && v.MemoryMB > 0 && v.DiskMBps > 0 && v.NetMBps > 0
}

// FractionOf returns the element-wise ratio v/w. Dimensions where w is zero
// yield 0 when v is also zero there, and +Inf otherwise.
func (v Vector) FractionOf(w Vector) Vector {
	div := func(a, b float64) float64 {
		if b == 0 {
			if a == 0 {
				return 0
			}
			return math.Inf(1)
		}
		return a / b
	}
	return Vector{div(v.CPU, w.CPU), div(v.MemoryMB, w.MemoryMB),
		div(v.DiskMBps, w.DiskMBps), div(v.NetMBps, w.NetMBps)}
}

// MaxComponent returns the largest component of v.
func (v Vector) MaxComponent() float64 {
	return math.Max(math.Max(v.CPU, v.MemoryMB), math.Max(v.DiskMBps, v.NetMBps))
}

// Sum returns the sum of all components. Only meaningful for dimensionless
// vectors such as fractions.
func (v Vector) Sum() float64 { return v.CPU + v.MemoryMB + v.DiskMBps + v.NetMBps }

// String renders the vector compactly, e.g.
// "{cpu:4 mem:16384MB disk:100MB/s net:100MB/s}".
func (v Vector) String() string {
	return fmt.Sprintf("{cpu:%g mem:%gMB disk:%gMB/s net:%gMB/s}",
		v.CPU, v.MemoryMB, v.DiskMBps, v.NetMBps)
}

// Uniform returns a Vector with every component set to x. Useful for
// expressing uniform deflation fractions.
func Uniform(x float64) Vector { return Vector{x, x, x, x} }
