// Package substrate defines the mechanism surface that the reclamation
// layers (cascade, cluster, migration, interactive) consume: spawn a
// workload of a nominal size, resize its physical allocation, observe the
// effective execution environment, snapshot/restore it for migration, and
// enumerate the host's inventory.
//
// The paper's deflation mechanisms are VM-shaped (balloon, hot-unplug,
// hypervisor cgroup dampening), but the *policy* layer above them is
// substrate-agnostic. Two implementations exist:
//
//   - internal/hypervisor — the paper's KVM model ("simkvm"): whole-vCPU
//     hot-unplug, balloon convergence latency, lock-holder preemption when
//     vCPUs outnumber physical cores, host swap when the memory limit
//     undershoots the touched footprint.
//   - internal/simcg — a cgroup/container model: near-instant cpu.max /
//     memory.max writes, fractional CPU shares (no quantization, no LHP),
//     shared host page cache, but weaker isolation — shrinking memory.max
//     below the live RSS OOM-kills the workload instead of swapping.
//
// Policy code that must stay substrate-portable keys off Instance and Env
// only; VM-only mechanisms (guest OS hotplug, balloon) are reached through
// optional capability interfaces (GuestBacked) and must never leak into
// shared paths.
package substrate

import (
	"errors"
	"time"

	"deflation/internal/guestos"
	"deflation/internal/restypes"
)

// Kind names a substrate implementation. The zero value ("") is treated as
// KindHypervisor everywhere for compatibility with state written before the
// abstraction existed.
type Kind string

const (
	// KindHypervisor is the simulated KVM hypervisor (internal/hypervisor).
	KindHypervisor Kind = "hypervisor"
	// KindContainer is the simulated cgroup/container backend (internal/simcg).
	KindContainer Kind = "container"
)

// Normalize maps the zero value to KindHypervisor (pre-abstraction state).
func (k Kind) Normalize() Kind {
	if k == "" {
		return KindHypervisor
	}
	return k
}

// Sentinel errors shared by every substrate's host and instance operations.
// internal/hypervisor aliases these under its historical names
// (ErrDomainExists etc.), so errors.Is works across substrates.
var (
	ErrInsufficientCapacity = errors.New("substrate: insufficient physical capacity")
	ErrInstanceExists       = errors.New("substrate: instance already exists")
	ErrInstanceNotFound     = errors.New("substrate: instance not found")
	ErrInstanceDestroyed    = errors.New("substrate: instance destroyed")
	// ErrKindMismatch is returned when restoring a snapshot onto a substrate
	// of a different kind (a container checkpoint cannot boot as a VM).
	ErrKindMismatch = errors.New("substrate: snapshot kind does not match substrate")
)

// Instance is one running workload on a substrate: a VM (hypervisor domain)
// or a container (cgroup). It exposes exactly the mechanism surface the
// reclamation policy layers use.
type Instance interface {
	// Name returns the instance name, unique on its substrate.
	Name() string
	// Kind identifies the backing substrate.
	Kind() Kind
	// Size returns the nominal (booted/requested) size.
	Size() restypes.Vector
	// Allocation returns the current physical allocation (cgroup limits).
	Allocation() restypes.Vector
	// SetAllocation adjusts the physical allocation toward target
	// (element-wise clamped to the nominal size). It returns the mechanism
	// latency: swap-out time on the hypervisor substrate, a cgroup write on
	// the container substrate. The mechanism performs the resize even when
	// it is harmful (a container memory.max below live RSS OOM-kills the
	// workload) — honoring ResizeFloorMB is the policy layer's job.
	SetAllocation(target restypes.Vector) (time.Duration, error)
	// ResizeFloorMB is the substrate-reported memory floor below which
	// SetAllocation would kill rather than squeeze the workload. Zero means
	// the substrate degrades gracefully below any floor (the hypervisor
	// swaps); the container substrate reports live RSS plus runtime
	// overhead, and the cascade/SLOGuard must not plan below it.
	ResizeFloorMB() float64
	// SetAppFootprint tells the substrate the application's resident set
	// and page-cache appetite, so accounting (and OOM checks) track it.
	SetAppFootprint(rssMB, pageCacheMB float64)
	// DirtyRateMBps is the instance's page-dirtying rate, which live
	// migration's pre-copy convergence model consumes.
	DirtyRateMBps() float64
	// MarkWarm records that the workload has run long enough to have
	// touched all of its memory (no-op on substrates without a
	// touched-footprint model).
	MarkWarm()
	// Env computes the effective execution environment the application
	// sees; performance models consume this snapshot.
	Env() Env
	// Snapshot captures the instance's transferable state.
	Snapshot() Snapshot
	// Destroy terminates the instance and releases its allocation.
	Destroy()
	// Destroyed reports whether the instance has been destroyed.
	Destroyed() bool
}

// GuestBacked is implemented by instances that run a guest OS kernel
// (hypervisor domains). OS-level deflation mechanisms — vCPU hot-unplug,
// balloon, memory hot-unplug — exist only behind this capability; container
// instances do not implement it and the cascade skips the OS level for
// them.
type GuestBacked interface {
	Guest() *guestos.GuestOS
}

// Substrate is a host-level mechanism provider: one physical machine's
// worth of capacity plus the inventory of instances it runs.
type Substrate interface {
	// Name returns the host name.
	Name() string
	// Kind identifies the implementation.
	Kind() Kind
	// Capacity returns the host's physical capacity.
	Capacity() restypes.Vector
	// Allocated returns the sum of all instances' current allocations.
	Allocated() restypes.Vector
	// FreePhysical returns unallocated, unreserved physical capacity.
	FreePhysical() restypes.Vector
	// Reserve sets aside capacity outside any instance (migration streams).
	Reserve(v restypes.Vector) error
	// Unreserve returns previously reserved capacity.
	Unreserve(v restypes.Vector)
	// Reserved returns the currently reserved capacity.
	Reserved() restypes.Vector
	// Spawn boots an instance of the given nominal size. The guest config
	// parameterizes the workload's kernel/runtime model; substrates without
	// a guest OS consume only the footprint-relevant fields.
	Spawn(name string, size restypes.Vector, guestCfg guestos.Config) (Instance, error)
	// RestoreInstance materializes a migrated instance from a snapshot,
	// admitting by the snapshot's (possibly deflated) allocation. It fails
	// with ErrKindMismatch when the snapshot came from a different
	// substrate kind.
	RestoreInstance(s Snapshot) (Instance, error)
	// Instances returns all live instances sorted by name.
	Instances() []Instance
	// Lookup finds a live instance by name.
	Lookup(name string) (Instance, error)
}

// Env is the effective execution environment an instance's application
// sees. Application performance models consume this snapshot. The zero
// Kind means hypervisor (pre-abstraction Env literals remain valid).
type Env struct {
	// Kind identifies the substrate that produced this environment, so
	// substrate-aware planners (SLOGuard) can model its resize mechanics —
	// whole-vCPU quantization on hypervisors, fractional shares on
	// containers.
	Kind Kind
	// VCPUs is the number of vCPUs plugged into the guest. On containers
	// it is the scheduler-visible CPU count (ceil of the share), reported
	// for sizing heuristics only — no quantization applies.
	VCPUs int
	// PhysCores is the physical CPU capacity backing those vCPUs.
	PhysCores float64
	// EffectiveCores is PhysCores after the lock-holder-preemption penalty
	// for multiplexing VCPUs onto fewer physical cores (hypervisor only —
	// container shares carry no LHP).
	EffectiveCores float64
	// GuestMemMB is the memory the guest OS (and application) believes it
	// has — what application-level sizing policies observe.
	GuestMemMB float64
	// ResidentMB is the host-resident (ever-touched) guest memory actually
	// backed by physical frames; the remainder (SwappedMB) lives on the
	// host swap device.
	ResidentMB float64
	// SwappedMB is host-resident guest memory currently swapped out.
	// Always zero on containers: cgroups v2 memory.max undershoot
	// OOM-kills instead of swapping in this model.
	SwappedMB float64
	// EverTouchedMB is the guest memory the host considers live (see
	// MarkWarm); swap victims are drawn from it.
	EverTouchedMB float64
	// KernelMemMB is the guest kernel reserve (container runtime overhead
	// on the container substrate), so application models can separate
	// their own pages from the rest of the footprint.
	KernelMemMB float64
	// LocalityFactor degrades the workload's access locality when host
	// swapping (rather than the application) chose the evicted pages.
	LocalityFactor float64
	// DiskMBps and NetMBps are the throttled I/O bandwidths.
	DiskMBps, NetMBps float64
	// OOMKilled reports that the OOM killer terminated the app — the guest
	// kernel's on VMs, the host kernel's on containers.
	OOMKilled bool
}

// ContainerState is the container-specific half of a Snapshot: the cgroup
// model's live footprint. (The hypervisor half is guestos.Snapshot.)
type ContainerState struct {
	// RSSMB is the application resident set charged against memory.max.
	RSSMB float64 `json:"rss_mb"`
	// PageCacheMB is the container's share of the host's page cache (not
	// charged against memory.max in this model).
	PageCacheMB float64 `json:"page_cache_mb"`
	// OOMKilled records that the host OOM killer fired in the cgroup.
	OOMKilled bool `json:"oom_killed,omitempty"`
}

// Snapshot is the transferable state of an instance, as shipped by live
// migration. It is a tagged union: Kind selects which substrate half is
// populated (Guest for hypervisor domains, Container for cgroups). The
// zero Kind means hypervisor, so snapshots journaled before the
// abstraction restore correctly.
type Snapshot struct {
	Kind          Kind              `json:"kind,omitempty"`
	Name          string            `json:"name"`
	Size          restypes.Vector   `json:"size"`
	Alloc         restypes.Vector   `json:"alloc"`
	EverTouchedMB float64           `json:"ever_touched_mb,omitempty"`
	Guest         *guestos.Snapshot `json:"guest,omitempty"`
	Container     *ContainerState   `json:"container,omitempty"`
}
