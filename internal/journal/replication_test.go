package journal

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestRecordsAfterStreamsTail(t *testing.T) {
	j, err := Open(t.TempDir(), Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 5; i++ {
		mustAppend(t, j, "event", payload{VM: fmt.Sprintf("vm-%d", i)})
	}

	b, err := j.RecordsAfter(0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Seq != 5 || b.Snapshot != nil || len(b.Records) != 5 {
		t.Fatalf("full batch: seq=%d snapshot=%v records=%d", b.Seq, b.Snapshot != nil, len(b.Records))
	}
	for i, rec := range b.Records {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d out of order: seq %d", i, rec.Seq)
		}
	}

	// A caught-up follower gets only what it misses.
	b, err = j.RecordsAfter(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Records) != 2 || b.Records[0].Seq != 4 {
		t.Fatalf("tail batch after 3: %+v", b.Records)
	}
	b, err = j.RecordsAfter(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Records) != 0 {
		t.Fatalf("caught-up follower got %d records", len(b.Records))
	}
}

func TestRecordsAfterCompactedPositionCarriesSnapshot(t *testing.T) {
	j, err := Open(t.TempDir(), Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 4; i++ {
		mustAppend(t, j, "event", payload{VM: fmt.Sprintf("vm-%d", i)})
	}
	if err := j.Snapshot(map[string]int{"vms": 4}); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, "event", payload{VM: "vm-post"})

	// A follower behind the compaction point must reset from the snapshot.
	b, err := j.RecordsAfter(2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Snapshot == nil || b.SnapshotSeq != 4 {
		t.Fatalf("compacted poll carried no snapshot: %+v", b)
	}
	if len(b.Records) != 1 || b.Records[0].Seq != 5 {
		t.Fatalf("post-snapshot tail: %+v", b.Records)
	}

	// A follower at or past the compaction point streams records only.
	b, err = j.RecordsAfter(4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Snapshot != nil || len(b.Records) != 1 {
		t.Fatalf("caught-up poll re-sent snapshot: snap=%v records=%d", b.Snapshot != nil, len(b.Records))
	}
}

func TestRecordsAfterIndexSurvivesReopenAndCompaction(t *testing.T) {
	// RecordsAfter serves deltas through a seq→offset index instead of
	// re-reading the log from byte 0; the index must stay correct across the
	// two events that change the log's shape: a reopen (index rebuilt from
	// the tail scan) and a compaction (log truncated, index reset).
	dir := t.TempDir()
	j, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mustAppend(t, j, "event", payload{VM: fmt.Sprintf("vm-%d", i)})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j, err = Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	b, err := j.RecordsAfter(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Records) != 2 || b.Records[0].Seq != 2 || b.Records[1].Seq != 3 {
		t.Fatalf("reopened index served wrong tail: %+v", b.Records)
	}

	// Appends after a reopen extend the rebuilt index seamlessly.
	mustAppend(t, j, "event", payload{VM: "vm-3"})
	if b, err = j.RecordsAfter(3); err != nil || len(b.Records) != 1 || b.Records[0].Seq != 4 {
		t.Fatalf("post-reopen append not indexed: %+v (%v)", b.Records, err)
	}

	// Compaction truncates the log; the index restarts from the new tail.
	if err := j.Snapshot(map[string]int{"vms": 4}); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, "event", payload{VM: "vm-4"})
	mustAppend(t, j, "event", payload{VM: "vm-5"})
	if b, err = j.RecordsAfter(4); err != nil || len(b.Records) != 2 || b.Records[0].Seq != 5 {
		t.Fatalf("post-compaction tail: %+v (%v)", b.Records, err)
	}
	if b, err = j.RecordsAfter(5); err != nil || len(b.Records) != 1 || b.Records[0].Seq != 6 {
		t.Fatalf("post-compaction delta: %+v (%v)", b.Records, err)
	}
}

func TestInjectedAppendErrorPoisonsJournal(t *testing.T) {
	fail := false
	j, err := Open(t.TempDir(), Options{
		SyncEvery: 1,
		FailOp: func(op string) error {
			if fail && op == "append" {
				return errors.New("injected disk error")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	mustAppend(t, j, "event", payload{VM: "ok"})

	fail = true
	if _, err := j.Append("event", payload{VM: "doomed"}); err == nil {
		t.Fatal("append succeeded through injected disk error")
	}
	// Fail-stop: the journal refuses everything from now on, even after the
	// fault clears — a storage layer that has lied once cannot be trusted
	// not to have diverged.
	fail = false
	if _, err := j.Append("event", payload{VM: "after"}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after poison: %v, want ErrPoisoned", err)
	}
	if err := j.Sync(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("sync after poison: %v, want ErrPoisoned", err)
	}
	if err := j.Snapshot(map[string]int{}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("snapshot after poison: %v, want ErrPoisoned", err)
	}
	if !j.Stats().Poisoned {
		t.Error("stats do not report the poisoning")
	}
	if j.Err() == nil {
		t.Error("Err() nil on a poisoned journal")
	}
	// Reads still serve what was durably written before the poison — the
	// replication stream a standby promotes from.
	b, err := j.RecordsAfter(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Records) != 1 || b.Records[0].Seq != 1 {
		t.Fatalf("poisoned journal lost its durable records: %+v", b.Records)
	}
}

func TestInjectedSyncErrorPoisons(t *testing.T) {
	boom := errors.New("fsync gone wrong")
	armed := false
	j, err := Open(t.TempDir(), Options{
		SyncEvery: 1,
		FailOp: func(op string) error {
			if armed && op == "sync" {
				return boom
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	armed = true
	err = func() error { _, e := j.Append("event", payload{VM: "a"}); return e }()
	if !errors.Is(err, ErrPoisoned) || !strings.Contains(err.Error(), boom.Error()) {
		t.Fatalf("append did not surface the fsync error as poisoning: %v", err)
	}
	if _, err := j.Append("event", payload{VM: "b"}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("journal not poisoned after fsync error: %v", err)
	}
}

func TestEpochPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if j.Epoch() != 0 {
		t.Fatalf("fresh journal epoch = %d", j.Epoch())
	}
	j.SetEpoch(3)
	mustAppend(t, j, "event", payload{VM: "a"})
	b, err := j.RecordsAfter(0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Epoch != 3 || b.Records[0].Epoch != 3 {
		t.Fatalf("epoch not stamped: batch=%d record=%d", b.Epoch, b.Records[0].Epoch)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// The epoch survives a reopen through the records...
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if j2.Epoch() != 3 {
		t.Fatalf("epoch after reopen = %d, want 3", j2.Epoch())
	}
	// ...and through the snapshot envelope once the log is compacted away.
	if err := j2.Snapshot(map[string]int{}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Epoch() != 3 {
		t.Fatalf("epoch after compaction+reopen = %d, want 3", j3.Epoch())
	}

	// Regressions are a bug, loudly.
	defer func() {
		if recover() == nil {
			t.Error("epoch regression did not panic")
		}
	}()
	j3.SetEpoch(2)
}
