package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// frameRecord produces one valid on-disk frame for the corpus seeds,
// mirroring the Append path's framing exactly.
func frameRecord(seq uint64, typ string, data string) []byte {
	line, _ := json.Marshal(Record{Seq: seq, Type: typ, Data: json.RawMessage(data)})
	return []byte(fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(line), line))
}

// FuzzJournalDecode fuzzes the WAL frame decoder and the recovery path it
// feeds: arbitrary log bytes — corrupt checksums, torn tails, truncated
// frames, binary garbage — must never panic. parseLine must either return
// a record whose frame round-trips, or an error; Open must always recover
// to a usable journal that accepts appends.
func FuzzJournalDecode(f *testing.F) {
	valid := frameRecord(1, "deflate", `{"vm":3}`)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-5])                         // torn final record
	f.Add(bytes.Repeat([]byte{0xff}, 64))               // binary garbage
	f.Add([]byte("00000000 {}\n"))                      // checksum mismatch
	f.Add([]byte("zzzzzzzz {}\n"))                      // non-hex checksum
	f.Add([]byte("short\n"))                            // under-length frame
	f.Add(append(append([]byte{}, valid...), valid...)) // two good records
	mid := append(append([]byte{}, valid...), []byte("41414141 corrupt\n")...)
	f.Add(append(mid, frameRecord(2, "inflate", `{"vm":4}`)...)) // corruption mid-log

	f.Fuzz(func(t *testing.T, data []byte) {
		// The frame decoder alone: per-line, never panics, and a line it
		// accepts must actually carry a checksummed JSON payload.
		for _, line := range bytes.Split(data, []byte("\n")) {
			rec, err := parseLine(line)
			if err != nil {
				continue
			}
			if len(line) < 10 || line[8] != ' ' {
				t.Fatalf("parseLine accepted an unframed line: %q", line)
			}
			if fmt.Sprintf("%08x", crc32.ChecksumIEEE(line[9:])) != string(bytes.ToLower(line[:8])) {
				t.Fatalf("parseLine accepted a line whose checksum does not verify: %q", line)
			}
			if rec.Data != nil && !json.Valid(rec.Data) {
				t.Fatalf("parseLine returned invalid JSON data %q from line %q", rec.Data, line)
			}
		}

		// The recovery path: Open on the fuzzed log must never panic and
		// must leave a journal that accepts a fresh append.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := Open(dir, Options{})
		if err != nil {
			return // a rejected log is fine; crashing is not
		}
		if _, err := j.Append("fuzz-probe", map[string]int{"x": 1}); err != nil {
			t.Fatalf("recovered journal rejects appends: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("recovered journal fails to close: %v", err)
		}

		// The truncated log left behind must now be fully valid: reopening
		// replays every surviving record without error.
		j2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("journal unreadable after recovery+append: %v", err)
		}
		j2.Close()
	})
}
