// Package journal implements the durability substrate of the cluster
// manager: an append-only write-ahead log of JSON-line records, each framed
// by a CRC32 checksum so torn or corrupted tails are detected on recovery,
// plus periodic compacted snapshots of the full state written atomically
// (temp file + rename). Appends hit the OS immediately (no userspace
// buffering — a crashed process loses nothing the kernel accepted); fsyncs
// are batched every Options.SyncEvery appends to bound the cost of
// durability on the placement hot path.
//
// The on-disk layout inside a journal directory is two files:
//
//	journal.log    one record per line: "<crc32-hex8> <json>\n" where the
//	               JSON is {"seq":N,"type":T,"data":...}; seq increases
//	               strictly and survives restarts
//	snapshot.json  {"seq":N,"taken_unix_nano":...,"crc":C,"state":...};
//	               records with seq ≤ N are redundant with the snapshot
//
// Open loads both, verifies every checksum, truncates a torn final record
// (the only corruption a crash can produce), and positions the log for
// appending; a corrupt record followed by valid ones indicates real disk
// damage and fails loudly instead. Snapshot writes the state, then compacts
// the log — crash-safe in either order because replay skips records the
// snapshot already covers.
package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"deflation/internal/telemetry"
)

// ErrPoisoned marks a journal that has seen a write or fsync failure. A
// failed append means durability can no longer be promised: continuing would
// let the in-memory state silently diverge from what a recovery (or a
// replicating standby) would reconstruct. The journal therefore fail-stops —
// every subsequent Append, Sync, and Snapshot returns an error wrapping
// ErrPoisoned until the process restarts on healthy storage.
var ErrPoisoned = errors.New("journal: poisoned by prior write failure")

const (
	logName  = "journal.log"
	snapName = "snapshot.json"
)

// Options configures a journal.
type Options struct {
	// SyncEvery batches fsyncs: the log is synced after every SyncEvery-th
	// append (default 8; 1 syncs every append). Snapshots and Close always
	// sync.
	SyncEvery int

	// FailOp, when non-nil, is consulted before every disk operation with
	// the operation name ("append", "sync", "snapshot"); a non-nil return is
	// treated exactly like the corresponding disk write failing. It exists
	// for deterministic fault injection (internal/faults wires its seeded
	// disk stream here) — production journals leave it nil.
	FailOp func(op string) error
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 8
	}
	return o
}

// Record is one journaled state transition.
type Record struct {
	Seq  uint64          `json:"seq"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data,omitempty"`
	// Epoch is the fencing epoch of the leader that wrote the record
	// (0 on journals predating leadership epochs). It lets a replica
	// reject a stale leader's records and lets recovery learn the last
	// leadership term without a separate file.
	Epoch uint64 `json:"epoch,omitempty"`
}

// snapEnvelope is the on-disk snapshot framing.
type snapEnvelope struct {
	Seq   uint64          `json:"seq"`
	Taken int64           `json:"taken_unix_nano"`
	CRC   uint32          `json:"crc"`
	Epoch uint64          `json:"epoch,omitempty"`
	State json.RawMessage `json:"state"`
}

// Stats is a point-in-time view of the journal's counters.
type Stats struct {
	// Seq is the sequence number of the last record written or loaded.
	Seq uint64
	// Appended counts records appended by this process (not replayed ones).
	Appended uint64
	// Fsyncs counts log fsyncs issued (batched per Options.SyncEvery).
	Fsyncs uint64
	// AppendErrors counts appends that failed to reach the log.
	AppendErrors uint64
	// SnapshotSeq is the sequence the last snapshot covers (0 = none).
	SnapshotSeq uint64
	// SnapshotBytes is the last snapshot's state size.
	SnapshotBytes int
	// SnapshotTime is when the last snapshot was taken (zero = none).
	SnapshotTime time.Time
	// TornTail reports whether Open truncated a torn final record.
	TornTail bool
	// Epoch is the fencing epoch stamped into new records.
	Epoch uint64
	// Poisoned reports whether a write/fsync failure has fail-stopped the
	// journal (see ErrPoisoned).
	Poisoned bool
}

// recOffset maps one record's sequence number to its byte offset in the
// log file. The journal keeps one entry per on-disk record so replication
// polls seek straight to the follower's position instead of rescanning the
// file; compaction clears the index along with the log.
type recOffset struct {
	seq uint64
	off int64
}

// Journal is an open write-ahead log. Safe for concurrent use, though the
// cluster manager serializes all writes through its API mutex anyway.
type Journal struct {
	mu   sync.Mutex
	dir  string
	opts Options
	log  *os.File

	seq       uint64
	epoch     uint64
	sinceSync int
	stats     Stats
	snapData  json.RawMessage // state of the latest snapshot, nil if none
	tail      []Record        // records after the snapshot, loaded at Open
	index     []recOffset     // seq → offset for every record in the log file
	logSize   int64           // bytes of valid log, end offset for appends
	closed    bool
	poisoned  error // first write/fsync failure; non-nil fail-stops the journal
}

// Open creates or loads the journal in dir, verifying checksums, truncating
// a torn tail, and positioning the log for appends that continue the
// sequence.
func Open(dir string, opts Options) (*Journal, error) {
	if dir == "" {
		return nil, fmt.Errorf("journal: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir, opts: opts.withDefaults()}

	if err := j.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := j.loadLog(); err != nil {
		return nil, err
	}
	return j, nil
}

func (j *Journal) loadSnapshot() error {
	raw, err := os.ReadFile(filepath.Join(j.dir, snapName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("journal: reading snapshot: %w", err)
	}
	var env snapEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return fmt.Errorf("journal: corrupt snapshot: %w", err)
	}
	if crc32.ChecksumIEEE(env.State) != env.CRC {
		return fmt.Errorf("journal: snapshot checksum mismatch (seq %d)", env.Seq)
	}
	j.snapData = env.State
	j.seq = env.Seq
	j.epoch = env.Epoch
	j.stats.SnapshotSeq = env.Seq
	j.stats.SnapshotBytes = len(env.State)
	j.stats.SnapshotTime = time.Unix(0, env.Taken)
	return nil
}

// parseLine decodes one framed record line (without its trailing newline).
func parseLine(line []byte) (Record, error) {
	var rec Record
	if len(line) < 10 || line[8] != ' ' {
		return rec, fmt.Errorf("journal: short or unframed record")
	}
	crc, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return rec, fmt.Errorf("journal: bad checksum frame: %w", err)
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != uint32(crc) {
		return rec, fmt.Errorf("journal: record checksum mismatch")
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("journal: corrupt record: %w", err)
	}
	return rec, nil
}

func (j *Journal) loadLog() error {
	path := filepath.Join(j.dir, logName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}

	valid := 0 // byte offset of the end of the last good record
	offset := 0
	for offset < len(data) {
		nl := bytes.IndexByte(data[offset:], '\n')
		if nl < 0 {
			// No terminating newline: a torn final record.
			break
		}
		rec, err := parseLine(data[offset : offset+nl])
		if err != nil {
			break
		}
		j.index = append(j.index, recOffset{seq: rec.Seq, off: int64(offset)})
		if rec.Seq > j.stats.SnapshotSeq {
			j.tail = append(j.tail, rec)
		}
		if rec.Seq > j.seq {
			j.seq = rec.Seq
		}
		if rec.Epoch > j.epoch {
			j.epoch = rec.Epoch
		}
		offset += nl + 1
		valid = offset
	}
	if valid < len(data) {
		// Something after the valid prefix failed to parse. A crash can only
		// tear the final record; if any *later* line still parses, the
		// damage is mid-file corruption and replaying around it would
		// silently drop acknowledged state — fail instead.
		rest := data[valid:]
		for {
			nl := bytes.IndexByte(rest, '\n')
			if nl < 0 {
				break
			}
			if _, err := parseLine(rest[:nl]); err == nil {
				f.Close()
				return fmt.Errorf("journal: corrupt record mid-log at offset %d (valid records follow)", valid)
			}
			rest = rest[nl+1:]
		}
		j.stats.TornTail = true
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	j.log = f
	j.logSize = int64(valid)
	return nil
}

// Dir returns the journal's directory.
func (j *Journal) Dir() string { return j.dir }

// SnapshotData returns the state payload of the latest snapshot — loaded at
// Open or written since (nil if none exists). The bytes are owned by the
// journal.
func (j *Journal) SnapshotData() json.RawMessage { return j.snapData }

// Batch is one streamed slice of the journal, the wire unit of WAL
// replication. When Snapshot is non-nil the requested position was already
// compacted away and the follower must reset from the snapshot before
// applying Records (which then cover (SnapshotSeq, Seq]).
type Batch struct {
	// Seq is the journal's last sequence number at read time.
	Seq uint64 `json:"seq"`
	// Epoch is the journal's current fencing epoch.
	Epoch uint64 `json:"epoch"`
	// SnapshotSeq is the sequence the included (or latest) snapshot covers.
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// Snapshot is the compacted state, present only when the caller's
	// position predates the snapshot.
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
	// Records are the log records after the caller's position (or after the
	// snapshot, when one is included), in sequence order.
	Records []Record `json:"records,omitempty"`
}

// RecordsAfter returns every record with sequence greater than after,
// reading the live log file so records appended since Open are included.
// If the position has been compacted into a snapshot, the batch carries the
// snapshot plus the full log tail instead. This is the leader half of WAL
// replication: a follower polls with its applied sequence and applies what
// comes back. The journal's seq→offset index makes each poll proportional
// to the records actually returned, not to the log size: a caught-up
// follower's poll seeks straight past everything it has already applied.
func (j *Journal) RecordsAfter(after uint64) (Batch, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return Batch{}, fmt.Errorf("journal: closed")
	}
	b := Batch{Seq: j.seq, Epoch: j.epoch, SnapshotSeq: j.stats.SnapshotSeq}
	floor := after
	if after < j.stats.SnapshotSeq {
		b.Snapshot = j.snapData
		floor = j.stats.SnapshotSeq
	}
	if floor >= j.seq {
		return b, nil
	}
	// Sequence numbers increase strictly through the file, so the index is
	// sorted: binary-search for the first record past the floor and read
	// only from its offset on.
	i := sort.Search(len(j.index), func(k int) bool { return j.index[k].seq > floor })
	if i == len(j.index) {
		return b, nil
	}
	start := j.index[i].off
	data := make([]byte, j.logSize-start)
	if _, err := j.log.ReadAt(data, start); err != nil {
		return Batch{}, fmt.Errorf("journal: reading log: %w", err)
	}
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn in-flight write; the next poll will see it whole
		}
		rec, err := parseLine(data[:nl])
		if err != nil {
			break
		}
		if rec.Seq > floor {
			b.Records = append(b.Records, rec)
		}
		data = data[nl+1:]
	}
	return b, nil
}

// Tail returns the records loaded at Open that the snapshot does not cover,
// in sequence order.
func (j *Journal) Tail() []Record { return j.tail }

// Seq returns the last written (or loaded) sequence number.
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Stats returns a snapshot of the journal's counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.stats
	st.Seq = j.seq
	st.Epoch = j.epoch
	st.Poisoned = j.poisoned != nil
	return st
}

// Epoch returns the fencing epoch stamped into new records (the highest
// epoch loaded from disk until SetEpoch raises it).
func (j *Journal) Epoch() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.epoch
}

// SetEpoch sets the fencing epoch stamped into every subsequent record.
// Epochs are monotone: lowering is a bug and panics loudly rather than
// letting a stale leader silently re-stamp history.
func (j *Journal) SetEpoch(epoch uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if epoch < j.epoch {
		panic(fmt.Sprintf("journal: epoch regression %d -> %d", j.epoch, epoch))
	}
	j.epoch = epoch
}

// Err returns the write/fsync failure that poisoned the journal, or nil if
// it is healthy.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.poisoned
}

// poisonLocked records the first disk failure and returns an error carrying
// both ErrPoisoned (for errors.Is) and the root cause.
func (j *Journal) poisonLocked(op string, cause error) error {
	if j.poisoned == nil {
		j.poisoned = fmt.Errorf("journal: %s: %w", op, cause)
	}
	return fmt.Errorf("%w: %v", ErrPoisoned, j.poisoned)
}

// failOpLocked runs the injected fault hook for op, if any.
func (j *Journal) failOpLocked(op string) error {
	if j.opts.FailOp == nil {
		return nil
	}
	return j.opts.FailOp(op)
}

// Append writes one record, assigns it the next sequence number, and
// returns it. The write reaches the kernel before Append returns; it is
// fsynced per the batching policy. A write or fsync failure poisons the
// journal: the error is surfaced, and every later Append fails with
// ErrPoisoned instead of letting acknowledged state silently diverge from
// what recovery would replay.
func (j *Journal) Append(typ string, data any) (uint64, error) {
	payload, err := json.Marshal(data)
	if err != nil {
		return 0, fmt.Errorf("journal: marshaling %s record: %w", typ, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, fmt.Errorf("journal: closed")
	}
	if j.poisoned != nil {
		j.stats.AppendErrors++
		return 0, fmt.Errorf("%w: %v", ErrPoisoned, j.poisoned)
	}
	j.seq++
	rec := Record{Seq: j.seq, Type: typ, Data: payload, Epoch: j.epoch}
	line, err := json.Marshal(rec)
	if err != nil {
		j.seq--
		j.stats.AppendErrors++
		return 0, fmt.Errorf("journal: %w", err)
	}
	if err := j.failOpLocked("append"); err != nil {
		j.seq--
		j.stats.AppendErrors++
		return 0, j.poisonLocked("appending", err)
	}
	framed := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(line), line)
	if _, err := j.log.WriteString(framed); err != nil {
		j.seq--
		j.stats.AppendErrors++
		return 0, j.poisonLocked("appending", err)
	}
	j.index = append(j.index, recOffset{seq: rec.Seq, off: j.logSize})
	j.logSize += int64(len(framed))
	j.stats.Appended++
	j.sinceSync++
	if j.sinceSync >= j.opts.SyncEvery {
		if err := j.syncLocked(); err != nil {
			return j.seq, err
		}
	}
	return j.seq, nil
}

// Sync forces any batched appends to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	// Poison outranks the nothing-pending shortcut: a journal that has lied
	// once must never again report a clean sync.
	if j.poisoned != nil {
		return fmt.Errorf("%w: %v", ErrPoisoned, j.poisoned)
	}
	if j.closed || j.sinceSync == 0 {
		return nil
	}
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if err := j.failOpLocked("sync"); err != nil {
		return j.poisonLocked("fsync", err)
	}
	if err := j.log.Sync(); err != nil {
		return j.poisonLocked("fsync", err)
	}
	j.stats.Fsyncs++
	j.sinceSync = 0
	return nil
}

// Snapshot atomically persists the full state at the current sequence and
// compacts the log: records the snapshot covers are dropped. Crash-safe at
// every step — replay skips records with seq ≤ the snapshot's.
func (j *Journal) Snapshot(state any) error {
	raw, err := json.Marshal(state)
	if err != nil {
		return fmt.Errorf("journal: marshaling snapshot: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	if j.poisoned != nil {
		return fmt.Errorf("%w: %v", ErrPoisoned, j.poisoned)
	}
	if j.sinceSync > 0 {
		if err := j.syncLocked(); err != nil {
			return err
		}
	}
	if err := j.failOpLocked("snapshot"); err != nil {
		return fmt.Errorf("journal: writing snapshot: %w", err)
	}
	env := snapEnvelope{Seq: j.seq, Taken: time.Now().UnixNano(), CRC: crc32.ChecksumIEEE(raw), Epoch: j.epoch, State: raw}
	buf, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	tmp := filepath.Join(j.dir, snapName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("journal: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, snapName)); err != nil {
		return fmt.Errorf("journal: publishing snapshot: %w", err)
	}
	// Compact: every logged record is now redundant with the snapshot.
	if err := j.log.Close(); err != nil {
		return j.poisonLocked("compacting", err)
	}
	nf, err := os.OpenFile(filepath.Join(j.dir, logName), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return j.poisonLocked("reopening log", err)
	}
	j.log = nf
	j.sinceSync = 0
	j.index = nil
	j.logSize = 0
	j.snapData = raw
	j.stats.SnapshotSeq = j.seq
	j.stats.SnapshotBytes = len(raw)
	j.stats.SnapshotTime = time.Unix(0, env.Taken)
	return nil
}

// Close syncs and closes the log. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.sinceSync > 0 {
		if err := j.log.Sync(); err == nil {
			j.stats.Fsyncs++
		}
	}
	return j.log.Close()
}

// SetTelemetry registers scrape-time gauges over the journal's counters:
// sequence number, records appended, fsyncs, append errors, and snapshot
// size/age — the operational view of durability health.
func (j *Journal) SetTelemetry(sink *telemetry.Sink) {
	if sink == nil {
		return
	}
	r := sink.Registry
	stat := func(name, help string, read func(Stats) float64) {
		r.GaugeFunc(name, help, nil, func() float64 { return read(j.Stats()) })
	}
	stat("deflation_journal_seq", "last written journal sequence number",
		func(s Stats) float64 { return float64(s.Seq) })
	stat("deflation_journal_records_appended", "journal records appended by this process",
		func(s Stats) float64 { return float64(s.Appended) })
	stat("deflation_journal_fsyncs", "batched log fsyncs issued",
		func(s Stats) float64 { return float64(s.Fsyncs) })
	stat("deflation_journal_append_errors", "journal appends that failed to reach the log",
		func(s Stats) float64 { return float64(s.AppendErrors) })
	stat("deflation_journal_poisoned", "1 when a write/fsync failure has fail-stopped the journal",
		func(s Stats) float64 {
			if s.Poisoned {
				return 1
			}
			return 0
		})
	stat("deflation_journal_epoch", "fencing epoch stamped into new records",
		func(s Stats) float64 { return float64(s.Epoch) })
	stat("deflation_journal_snapshot_seq", "sequence number the last snapshot covers",
		func(s Stats) float64 { return float64(s.SnapshotSeq) })
	stat("deflation_journal_snapshot_bytes", "size of the last compacted snapshot",
		func(s Stats) float64 { return float64(s.SnapshotBytes) })
	stat("deflation_journal_snapshot_age_seconds", "time since the last snapshot was taken",
		func(s Stats) float64 {
			if s.SnapshotTime.IsZero() {
				return 0
			}
			return time.Since(s.SnapshotTime).Seconds()
		})
}
