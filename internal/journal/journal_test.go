package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	VM   string `json:"vm"`
	Node string `json:"node,omitempty"`
}

func mustAppend(t *testing.T, j *Journal, typ string, p payload) uint64 {
	t.Helper()
	seq, err := j.Append(typ, p)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestAppendLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SyncEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range []payload{{VM: "a", Node: "n0"}, {VM: "b", Node: "n1"}, {VM: "a"}} {
		if seq := mustAppend(t, j, "event", ev); seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	tail := j2.Tail()
	if len(tail) != 3 {
		t.Fatalf("tail = %d records, want 3", len(tail))
	}
	var p payload
	if err := json.Unmarshal(tail[1].Data, &p); err != nil {
		t.Fatal(err)
	}
	if p.VM != "b" || p.Node != "n1" || tail[1].Seq != 2 || tail[1].Type != "event" {
		t.Errorf("record 2 = %+v / %+v", tail[1], p)
	}
	// Appends continue the sequence after reopen.
	if seq := mustAppend(t, j2, "event", payload{VM: "c"}); seq != 4 {
		t.Errorf("post-reopen seq = %d, want 4", seq)
	}
}

func TestTornFinalRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, "event", payload{VM: "a"})
	mustAppend(t, j, "event", payload{VM: "b"})
	j.Close()

	// Tear the final record mid-line, as a crash during write would.
	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !j2.Stats().TornTail {
		t.Error("torn tail not reported")
	}
	if n := len(j2.Tail()); n != 1 {
		t.Fatalf("tail = %d records after tear, want 1", n)
	}
	// The torn bytes are gone: the next append must not corrupt the log.
	mustAppend(t, j2, "event", payload{VM: "c"})
	j2.Close()
	j3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if n := len(j3.Tail()); n != 2 {
		t.Errorf("tail = %d records after post-tear append, want 2", n)
	}
}

func TestMidLogCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, "event", payload{VM: "a"})
	mustAppend(t, j, "event", payload{VM: "b"})
	mustAppend(t, j, "event", payload{VM: "c"})
	j.Close()

	path := filepath.Join(dir, logName)
	data, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(data), "\n")
	// Flip a byte inside the second record's payload: valid records follow.
	corrupt := []byte(lines[1])
	corrupt[len(corrupt)/2] ^= 0xff
	mangled := lines[0] + string(corrupt) + lines[2]
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("mid-log corruption with valid records after it must fail, not silently truncate")
	}
}

func TestSnapshotCompactsAndLoads(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, "event", payload{VM: "a"})
	mustAppend(t, j, "event", payload{VM: "b"})
	state := map[string]string{"a": "n0", "b": "n1"}
	if err := j.Snapshot(state); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.SnapshotSeq != 2 || st.SnapshotBytes == 0 || st.SnapshotTime.IsZero() {
		t.Errorf("snapshot stats: %+v", st)
	}
	// Records after the snapshot survive compaction; earlier ones are gone.
	mustAppend(t, j, "event", payload{VM: "c"})
	j.Close()

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var got map[string]string
	if err := json.Unmarshal(j2.SnapshotData(), &got); err != nil {
		t.Fatal(err)
	}
	if got["a"] != "n0" || got["b"] != "n1" {
		t.Errorf("snapshot state = %v", got)
	}
	tail := j2.Tail()
	if len(tail) != 1 || tail[0].Seq != 3 {
		t.Fatalf("tail after compaction = %+v, want single seq-3 record", tail)
	}
	if j2.Seq() != 3 {
		t.Errorf("seq = %d, want 3", j2.Seq())
	}
}

func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, "event", payload{VM: "a"})
	if err := j.Snapshot(map[string]string{"a": "n0"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	path := filepath.Join(dir, snapName)
	data, _ := os.ReadFile(path)
	// Flip a byte inside the state payload: the stored CRC must catch it.
	i := strings.Index(string(data), `"state"`) + 10
	data[i] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt snapshot must be rejected")
	}
}

func TestFsyncBatching(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SyncEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 7; i++ {
		mustAppend(t, j, "event", payload{VM: "x"})
	}
	if got := j.Stats().Fsyncs; got != 1 {
		t.Errorf("fsyncs after 7 appends at SyncEvery=4: %d, want 1", got)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := j.Stats().Fsyncs; got != 2 {
		t.Errorf("fsyncs after explicit Sync: %d, want 2", got)
	}
}
