package trace

import (
	"testing"
	"testing/quick"
	"time"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Count: 0}); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := Generate(Config{Count: 10, HighPriorityFraction: 2}); err == nil {
		t.Error("bad priority fraction accepted")
	}
	if _, err := Generate(Config{Count: 10, SizeMix: []SizeClass{{Weight: -1}}}); err == nil {
		t.Error("bad size mix accepted")
	}
	if _, err := Generate(Config{Count: 10, SizeMix: []SizeClass{}}); err == nil {
		t.Error("empty size mix accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Count: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(Config{Count: 200, Seed: 5})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across identical seeds", i)
		}
	}
	c, _ := Generate(Config{Count: 200, Seed: 6})
	same := 0
	for i := range a {
		if a[i].Size == c[i].Size && a[i].Lifetime == c[i].Lifetime {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical traces")
	}
}

func TestArrivalsSortedAndPositive(t *testing.T) {
	events, err := Generate(Config{Count: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var prev time.Duration
	for i, e := range events {
		if e.Arrival < prev {
			t.Fatalf("event %d arrives before its predecessor", i)
		}
		prev = e.Arrival
		if e.Lifetime < time.Minute {
			t.Errorf("event %d lifetime %v below floor", i, e.Lifetime)
		}
		if !e.Size.Positive() {
			t.Errorf("event %d has non-positive size %v", i, e.Size)
		}
	}
}

func TestPriorityFraction(t *testing.T) {
	events, err := Generate(Config{Count: 2000, Seed: 2, HighPriorityFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	st := Summarize(events)
	frac := float64(st.HighPriority) / float64(st.Count)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("high-priority fraction = %.3f, want ≈0.5", frac)
	}
}

func TestLifetimesHeavyTailed(t *testing.T) {
	events, err := Generate(Config{Count: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := Summarize(events)
	// Log-normal: mean well above median.
	if st.MeanLifetime < st.MedianLifetime*3/2 {
		t.Errorf("mean %v not well above median %v: tail too light",
			st.MeanLifetime, st.MedianLifetime)
	}
}

func TestSizeMixDominatedBySmall(t *testing.T) {
	events, err := Generate(Config{Count: 2000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	small := 0
	for _, e := range events {
		if e.Size.CPU <= 2 {
			small++
		}
	}
	if frac := float64(small) / float64(len(events)); frac < 0.6 {
		t.Errorf("small-VM fraction = %.2f, want ≥ 0.6", frac)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if st := Summarize(nil); st.Count != 0 {
		t.Errorf("empty summary: %+v", st)
	}
}

func TestQuickGenerateInvariants(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		count := int(n%50) + 1
		events, err := Generate(Config{Count: count, Seed: seed})
		if err != nil {
			return false
		}
		if len(events) != count {
			return false
		}
		seen := map[string]bool{}
		for _, e := range events {
			if seen[e.ID] {
				return false // duplicate IDs
			}
			seen[e.ID] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
